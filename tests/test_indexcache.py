"""Couple scatter-map cache, DLᵀ buffer, and fan-in accumulation."""

import numpy as np
import pytest

from repro.core.factor import NumericFactor
from repro.core.factorization import facing_cblks, factorize_sequential
from repro.dag import TaskKind, build_dag
from repro.kernels.cost import index_overhead_flops
from repro.kernels.indexcache import CoupleMapCache, get_couple_cache
from repro.kernels.panel import update_slice
from repro.runtime.scheduling import WorkStealingScheduler
from repro.runtime.threaded import factorize_threaded
from repro.runtime.tracing import ExecutionTrace
from repro.symbolic import analyze
from repro.verify import stale_couple_map, verify_couple_cache


def _setup(mat):
    res = analyze(mat)
    return res, mat.permute(res.perm.perm)


class TestCoupleMapCache:
    def test_maps_match_update_slice(self, grid2d_small):
        """Every cached map equals what the uncached kernel derives."""
        res, permuted = _setup(grid2d_small)
        factor = NumericFactor.assemble(res.symbol, permuted, "llt")
        cache = CoupleMapCache(res.symbol)
        sym = res.symbol
        n_checked = 0
        for k in range(sym.n_cblk):
            for t in facing_cblks(sym, k):
                t = int(t)
                cm = cache.lookup(k, t)
                assert cm is not None
                i0, i1, rk = update_slice(factor, k, t)
                assert cm.i0 == i0 and cm.i1 == i1
                assert cm.rk_size == rk.size
                assert np.array_equal(
                    cm.rows_local, np.searchsorted(factor.rows[t], rk[i0:])
                )
                assert np.array_equal(
                    cm.cols_local, rk[i0:i1] - sym.cblk_ptr[t]
                )
                n_checked += 1
        assert n_checked == cache.n_couples > 0

    def test_facing_lists_match_enumeration(self, grid2d_small):
        res, _ = _setup(grid2d_small)
        cache = CoupleMapCache(res.symbol)
        for k in range(res.symbol.n_cblk):
            assert np.array_equal(
                cache.facing[k], facing_cblks(res.symbol, k)
            )

    def test_lookup_counts_and_miss(self, grid2d_small):
        res, _ = _setup(grid2d_small)
        cache = CoupleMapCache(res.symbol)
        k, t = next(iter(sorted(cache.maps)))
        assert cache.lookup(k, t) is not None
        assert cache.lookup(t, k) is None  # couples never point downward
        assert cache.hits == 1 and cache.misses == 1
        stats = cache.stats()
        assert stats["couples"] == cache.n_couples
        assert stats["nbytes"] > 0

    def test_memoized_on_symbol(self, grid2d_small):
        res, _ = _setup(grid2d_small)
        c1 = get_couple_cache(res.symbol)
        c2 = get_couple_cache(res.symbol)
        assert c1 is c2


class TestBitIdenticalFactors:
    @pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
    def test_cached_equals_uncached(self, grid2d_small, factotype):
        res, permuted = _setup(grid2d_small)
        ref = factorize_sequential(
            res.symbol, permuted, factotype, index_cache=False
        )
        cached = factorize_sequential(
            res.symbol, permuted, factotype, index_cache=True
        )
        for a, b in zip(ref.L, cached.L):
            assert np.array_equal(a, b)
        if factotype == "ldlt":
            for a, b in zip(ref.D, cached.D):
                assert np.array_equal(a, b)
        if factotype == "lu":
            for a, b in zip(ref.U, cached.U):
                assert np.array_equal(a, b)

    def test_dl_buffer_equals_recompute(self, grid2d_small):
        res, permuted = _setup(grid2d_small)
        ref = factorize_sequential(
            res.symbol, permuted, "ldlt", dl_buffer=False
        )
        buf = factorize_sequential(
            res.symbol, permuted, "ldlt", dl_buffer=True
        )
        for a, b in zip(ref.L, buf.L):
            assert np.array_equal(a, b)
        for a, b in zip(ref.D, buf.D):
            assert np.array_equal(a, b)

    def test_dl_buffer_ignored_for_llt(self, grid2d_small):
        res, permuted = _setup(grid2d_small)
        f = factorize_sequential(
            res.symbol, permuted, "llt", dl_buffer=True
        )
        assert f.dl_buffer is False and f.DL is None

    def test_cache_reused_across_factorizations(self, grid2d_small):
        """Same symbol, new values: one cache build, hits keep growing."""
        res, permuted = _setup(grid2d_small)
        f1 = factorize_sequential(res.symbol, permuted, "llt")
        cache = f1.index_cache
        assert cache is get_couple_cache(res.symbol)
        hits_after_first = cache.hits
        assert hits_after_first >= cache.n_couples

        rescaled = grid2d_small.permute(res.perm.perm)
        rescaled.values[:] = rescaled.values * 2.0
        f2 = factorize_sequential(res.symbol, rescaled, "llt")
        assert f2.index_cache is cache
        assert cache.hits >= 2 * hits_after_first
        for a, b in zip(f1.L, f2.L):
            # Cholesky of 2·A is √2·L — the values really differed.
            assert np.allclose(np.sqrt(2.0) * a, b, atol=1e-10)


class TestFanInAccumulation:
    @pytest.mark.parametrize("scheduler", ["fifo", "ws", "priority",
                                           "affinity"])
    def test_matches_sequential(self, grid2d_medium, scheduler):
        res, permuted = _setup(grid2d_medium)
        ref = factorize_sequential(res.symbol, permuted, "llt")
        par = factorize_threaded(
            res.symbol, permuted, "llt", n_workers=4,
            scheduler=scheduler, accumulate=True,
        )
        for a, b in zip(ref.L, par.L):
            assert np.allclose(a, b, atol=1e-10)

    def test_ldlt_with_all_toggles(self, grid2d_medium):
        res, permuted = _setup(grid2d_medium)
        ref = factorize_sequential(res.symbol, permuted, "ldlt")
        par = factorize_threaded(
            res.symbol, permuted, "ldlt", n_workers=4,
            accumulate=True, dl_buffer=True,
        )
        for a, b in zip(ref.L, par.L):
            assert np.allclose(a, b, atol=1e-10)
        for a, b in zip(ref.D, par.D):
            assert np.allclose(a, b, atol=1e-10)

    def test_trace_meta_stamps(self, grid2d_small):
        res, permuted = _setup(grid2d_small)
        trace = ExecutionTrace()
        factorize_threaded(
            res.symbol, permuted, "llt", n_workers=2, trace=trace,
            accumulate=True,
        )
        assert trace.meta["index_cache"] is True
        assert trace.meta["accumulate"] is True
        assert trace.meta["dl_buffer"] is False
        assert trace.meta["index_cache_stats"]["couples"] > 0
        assert trace.meta["accumulate_stats"]["batches"] >= 0

    def test_trace_is_valid_schedule(self, grid2d_medium):
        """Batched completions must still honour every DAG edge."""
        res, permuted = _setup(grid2d_medium)
        trace = ExecutionTrace()
        factorize_threaded(
            res.symbol, permuted, "llt", n_workers=4, trace=trace,
            accumulate=True,
        )
        dag = build_dag(res.symbol, "llt", granularity="2d")
        trace.validate(
            dag, exclusive_resources=[], check_mutex=False, tol=1e-5
        )


class TestPopSameTarget:
    def _two_same_target_updates(self, symbol):
        dag = build_dag(symbol, "llt", granularity="2d")
        upd = np.flatnonzero(dag.kind == int(TaskKind.UPDATE))
        by_target: dict[int, list[int]] = {}
        for t in upd:
            by_target.setdefault(int(dag.target[t]), []).append(int(t))
        for tgt in sorted(by_target):
            if len(by_target[tgt]) >= 2:
                return dag, tgt, by_target[tgt][:2]
        pytest.skip("symbol has no fan-in target")

    def test_pops_from_own_deque(self, grid2d_medium):
        res, _ = _setup(grid2d_medium)
        dag, tgt, (t1, t2) = self._two_same_target_updates(res.symbol)
        sched = WorkStealingScheduler()
        sched.bind(dag, 2)
        sched.push(t1, 0)
        sched.push(t2, 0)
        first = sched.pop(0)
        assert first in (t1, t2)
        second = sched.pop_same_target(0, tgt)
        assert second == (t2 if first == t1 else t1)
        assert sched.pop_same_target(0, tgt) is None
        assert sched.stats()["batched_pops"] == 1

    def test_steals_from_victim(self, grid2d_medium):
        res, _ = _setup(grid2d_medium)
        dag, tgt, (t1, t2) = self._two_same_target_updates(res.symbol)
        sched = WorkStealingScheduler()
        sched.bind(dag, 2)
        sched.push(t1, 0)
        sched.push(t2, 1)  # same-target update on the other worker
        assert sched.pop(0) == t1
        assert sched.pop_same_target(0, tgt) == t2
        assert sched.pop(1) is None


class TestVerifyAudit:
    def test_fresh_cache_passes(self, grid2d_small):
        res, _ = _setup(grid2d_small)
        cache = CoupleMapCache(res.symbol)
        report = verify_couple_cache(res.symbol, cache)
        assert report.ok, report.format()
        assert report.stats["map_mismatches"] == 0

    def test_stale_map_caught(self, grid2d_small):
        res, _ = _setup(grid2d_small)
        cache = CoupleMapCache(res.symbol)
        corrupted, couple = stale_couple_map(cache)
        report = verify_couple_cache(res.symbol, corrupted)
        assert not report.ok
        assert any(f.code == "N507" for f in report.errors())
        assert couple in corrupted.maps
        # The pristine cache is untouched by the injection.
        assert verify_couple_cache(res.symbol, cache).ok

    def test_missing_couple_caught(self, grid2d_small):
        res, _ = _setup(grid2d_small)
        corrupted = CoupleMapCache(res.symbol).clone()
        key = next(iter(sorted(corrupted.maps)))
        del corrupted.maps[key]
        report = verify_couple_cache(res.symbol, corrupted)
        assert not report.ok
        assert any(f.code == "N508" for f in report.errors())


class TestIndexOverheadModel:
    def test_only_updates_charged(self, grid2d_small):
        res, _ = _setup(grid2d_small)
        dag = build_dag(res.symbol, "llt", granularity="2d")
        out = index_overhead_flops(dag)
        assert out.shape == (dag.n_tasks,)
        upd = dag.kind == int(TaskKind.UPDATE)
        assert np.all(out[~upd] == 0.0)
        assert np.all(out[upd] > 0.0)
        assert np.all(np.isfinite(out))
        # Purely symbolic: identical on every call.
        assert np.array_equal(out, index_overhead_flops(dag))
