"""Block triangular solve tests."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core.factorization import factorize_sequential
from repro.core.triangular import backward_solve, forward_solve, solve_factored
from repro.symbolic import analyze


@pytest.fixture(scope="module")
def llt_setup(grid2d_small):
    res = analyze(grid2d_small)
    permuted = grid2d_small.permute(res.perm.perm)
    factor = factorize_sequential(res.symbol, permuted, "llt")
    L = factor.lower_csc().to_dense()
    return factor, L, permuted


def test_forward_matches_dense(llt_setup):
    factor, L, _ = llt_setup
    b = np.random.default_rng(0).standard_normal(L.shape[0])
    y = forward_solve(factor, b)
    ref = sla.solve_triangular(L, b, lower=True)
    assert np.allclose(y, ref, atol=1e-10)


def test_backward_matches_dense(llt_setup):
    factor, L, _ = llt_setup
    b = np.random.default_rng(1).standard_normal(L.shape[0])
    x = backward_solve(factor, b)
    ref = sla.solve_triangular(L.T, b, lower=False)
    assert np.allclose(x, ref, atol=1e-10)


def test_solve_factored_full(llt_setup):
    factor, _, permuted = llt_setup
    b = np.random.default_rng(2).standard_normal(permuted.n_rows)
    x = solve_factored(factor, b)
    assert np.allclose(permuted.matvec(x), b, atol=1e-9)


@pytest.mark.parametrize("factotype", ["ldlt", "lu"])
def test_solve_factored_other_types(grid2d_small, factotype):
    res = analyze(grid2d_small)
    permuted = grid2d_small.permute(res.perm.perm)
    factor = factorize_sequential(res.symbol, permuted, factotype)
    b = np.random.default_rng(3).standard_normal(permuted.n_rows)
    x = solve_factored(factor, b)
    assert np.allclose(permuted.matvec(x), b, atol=1e-9)


def test_solve_factored_complex(helmholtz_small):
    res = analyze(helmholtz_small)
    permuted = helmholtz_small.permute(res.perm.perm)
    factor = factorize_sequential(res.symbol, permuted, "ldlt")
    rng = np.random.default_rng(4)
    b = rng.standard_normal(permuted.n_rows) + 1j * rng.standard_normal(permuted.n_rows)
    x = solve_factored(factor, b)
    assert np.allclose(permuted.matvec(x), b, atol=1e-9)


def test_multiple_solves_same_factor(llt_setup):
    factor, _, permuted = llt_setup
    rng = np.random.default_rng(5)
    for _ in range(3):
        b = rng.standard_normal(permuted.n_rows)
        x = solve_factored(factor, b)
        assert np.allclose(permuted.matvec(x), b, atol=1e-9)
