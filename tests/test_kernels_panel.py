"""Panel kernel and sparse-GEMM tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.factor import NumericFactor
from repro.core.factorization import facing_cblks, factorize_sequential
from repro.kernels.panel import panel_factorize, panel_update, update_slice
from repro.kernels.sparse_gemm import row_runs, sparse_gemm_scatter
from repro.symbolic import analyze
from tests.conftest import permutation_matrix


class TestRowRuns:
    def test_single_run(self):
        assert row_runs(np.array([3, 4, 5])) == [(0, 3, 3)]

    def test_multiple_runs(self):
        assert row_runs(np.array([0, 1, 5, 6, 9])) == [
            (0, 0, 2), (2, 5, 2), (4, 9, 1),
        ]

    def test_empty(self):
        assert row_runs(np.empty(0, dtype=np.int64)) == []


class TestSparseGemmScatter:
    def test_matches_workspace_path(self):
        rng = np.random.default_rng(0)
        m, n, w = 9, 4, 3
        a = rng.standard_normal((m, w))
        b = rng.standard_normal((n, w))
        rows = np.array([0, 1, 4, 5, 6, 8, 10, 11, 12])
        cols = np.array([1, 2, 5, 7])
        c1 = rng.standard_normal((13, 8))
        c2 = c1.copy()
        c1[np.ix_(rows, cols)] -= a @ b.T
        sparse_gemm_scatter(a, b, c2, rows, cols)
        assert np.allclose(c1, c2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sparse_gemm_scatter(
                np.ones((3, 2)), np.ones((2, 2)), np.ones((5, 5)),
                np.array([0, 1]), np.array([0, 1]),
            )

    def test_empty_noop(self):
        c = np.ones((3, 3))
        sparse_gemm_scatter(
            np.empty((0, 2)), np.empty((0, 2)), c,
            np.empty(0, np.int64), np.empty(0, np.int64),
        )
        assert np.all(c == 1.0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_property_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(1, 12)
        n = rng.integers(1, 8)
        w = rng.integers(1, 6)
        ch, cw = m + 10, n + 10
        rows = np.sort(rng.choice(ch, size=m, replace=False)).astype(np.int64)
        cols = np.sort(rng.choice(cw, size=n, replace=False)).astype(np.int64)
        a = rng.standard_normal((m, w))
        b = rng.standard_normal((n, w))
        c1 = rng.standard_normal((ch, cw))
        c2 = c1.copy()
        c1[np.ix_(rows, cols)] -= a @ b.T
        sparse_gemm_scatter(a, b, c2, rows, cols)
        assert np.allclose(c1, c2)


class TestPanelKernels:
    def _factor_dense(self, mat, factotype):
        """Run the supernodal factorization and rebuild L densely."""
        res = analyze(mat)
        permuted = mat.permute(res.perm.perm)
        factor = factorize_sequential(res.symbol, permuted, factotype)
        return res, permuted, factor

    def test_update_slice_locates_rows(self, grid2d_small):
        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        factor = NumericFactor.assemble(res.symbol, permuted, "llt")
        sym = res.symbol
        for k in range(sym.n_cblk):
            for t in facing_cblks(sym, k):
                i0, i1, rk = update_slice(factor, k, int(t))
                assert i0 < i1
                inside = rk[i0:i1]
                assert np.all(inside >= sym.cblk_ptr[t])
                assert np.all(inside < sym.cblk_ptr[t + 1])

    def test_llt_factor_reconstructs(self, grid2d_small):
        res, permuted, factor = self._factor_dense(grid2d_small, "llt")
        L = factor.lower_csc().to_dense()
        assert np.allclose(L @ L.T, permuted.to_dense(), atol=1e-10)

    def test_ldlt_factor_reconstructs(self, grid2d_small):
        res, permuted, factor = self._factor_dense(grid2d_small, "ldlt")
        L = factor.lower_csc().to_dense()
        d = np.concatenate(factor.D)
        assert np.allclose(L @ np.diag(d) @ L.T, permuted.to_dense(), atol=1e-10)

    def test_lu_panels_consistent(self, grid2d_small):
        res, permuted, factor = self._factor_dense(grid2d_small, "lu")
        n = res.n
        L = factor.lower_csc().to_dense()
        # Build U from the U panels + packed diagonal blocks.
        U = np.zeros((n, n))
        sym = res.symbol
        for k in range(sym.n_cblk):
            f, l = int(sym.cblk_ptr[k]), int(sym.cblk_ptr[k + 1])
            w = l - f
            U[f:l, f:l] = np.triu(factor.L[k][:w, :w])
            rows = factor.rows[k][w:]
            if rows.size:
                U[f:l, rows] = factor.U[k][w:, :].T
        assert np.allclose(L @ U, permuted.to_dense(), atol=1e-10)

    def test_unknown_factotype(self, grid2d_small):
        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        factor = NumericFactor.assemble(res.symbol, permuted, "llt")
        factor.factotype = "qr"
        with pytest.raises(ValueError):
            panel_factorize(factor, 0)

    def test_update_noop_when_not_facing(self, grid2d_small):
        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        factor = NumericFactor.assemble(res.symbol, permuted, "llt")
        sym = res.symbol
        # Find a (k, t) couple that does NOT face each other.
        faces0 = set(int(x) for x in facing_cblks(sym, 0))
        non = next(
            (t for t in range(1, sym.n_cblk) if t not in faces0), None
        )
        if non is not None:
            before = factor.L[non].copy()
            panel_factorize(factor, 0)
            panel_update(factor, 0, non)
            assert np.array_equal(before, factor.L[non])
