"""Ordering tests: permutations, RCM, minimum degree, nested dissection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.adjacency import Graph
from repro.ordering import (
    NestedDissectionOptions,
    Permutation,
    minimum_degree,
    nested_dissection,
    reverse_cuthill_mckee,
)
from repro.sparse.generators import grid_laplacian_2d, random_pattern_spd


def fill_in(mat, perm: Permutation) -> int:
    """nnz of the Cholesky factor of the permuted matrix (dense check)."""
    d = mat.permute(perm.perm).to_dense()
    L = np.linalg.cholesky(d)
    return int((np.abs(L) > 1e-12).sum())


class TestPermutation:
    def test_identity(self):
        p = Permutation.identity(4)
        assert np.array_equal(p.perm, [0, 1, 2, 3])
        assert p.inverse() == p

    def test_validation(self):
        with pytest.raises(ValueError):
            Permutation(np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            Permutation(np.array([0, 3]))

    def test_iperm_roundtrip(self):
        p = Permutation(np.array([2, 0, 1]))
        assert np.array_equal(Permutation.from_iperm(p.iperm).perm, p.perm)

    def test_compose_is_sequential_application(self):
        a = Permutation.random(6, seed=1)
        b = Permutation.random(6, seed=2)
        c = a @ b
        x = np.arange(6.0)
        assert np.allclose(
            c.apply_to_vector(x), b.apply_to_vector(a.apply_to_vector(x))
        )

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            Permutation.identity(3) @ Permutation.identity(4)

    def test_apply_undo_roundtrip(self):
        p = Permutation.random(8, seed=3)
        x = np.random.default_rng(0).standard_normal(8)
        assert np.allclose(p.undo_on_vector(p.apply_to_vector(x)), x)

    def test_apply_matches_matrix_convention(self, grid2d_small):
        # x permuted like matrix rows: (PAP^T)(Px) = P(Ax)
        p = Permutation.random(grid2d_small.n_rows, seed=4)
        x = np.random.default_rng(1).standard_normal(grid2d_small.n_rows)
        lhs = grid2d_small.permute(p.perm).matvec(p.apply_to_vector(x))
        rhs = p.apply_to_vector(grid2d_small.matvec(x))
        assert np.allclose(lhs, rhs)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 30), seed=st.integers(0, 999))
    def test_property_inverse_composes_to_identity(self, n, seed):
        p = Permutation.random(n, seed=seed)
        assert (p @ p.inverse()) == Permutation.identity(n)


class TestRCM:
    def test_is_permutation(self):
        g = Graph.from_matrix(grid_laplacian_2d(6))
        p = reverse_cuthill_mckee(g)
        assert p.n == 36

    def test_reduces_bandwidth(self):
        m = random_pattern_spd(80, 5.0, seed=7)
        g = Graph.from_matrix(m)
        p = reverse_cuthill_mckee(g)

        def bandwidth(mat):
            r, c, _ = mat.to_coo()
            return int(np.abs(r - c).max())

        assert bandwidth(m.permute(p.perm)) < bandwidth(m)

    def test_matches_scipy_quality(self):
        import scipy.sparse as sp
        from scipy.sparse.csgraph import reverse_cuthill_mckee as sp_rcm

        m = random_pattern_spd(60, 5.0, seed=8)
        g = Graph.from_matrix(m)
        ours = reverse_cuthill_mckee(g)
        ref_iperm = sp_rcm(m.to_scipy(), symmetric_mode=True)
        ref = Permutation.from_iperm(ref_iperm.astype(np.int64))

        def bandwidth(mat):
            r, c, _ = mat.to_coo()
            return int(np.abs(r - c).max())

        ours_bw = bandwidth(m.permute(ours.perm))
        ref_bw = bandwidth(m.permute(ref.perm))
        assert ours_bw <= 2 * ref_bw

    def test_handles_disconnected(self):
        g = Graph.from_edges(5, [0, 3], [1, 4])
        p = reverse_cuthill_mckee(g)
        assert p.n == 5


class TestMinimumDegree:
    def test_is_permutation(self):
        g = Graph.from_matrix(grid_laplacian_2d(5))
        assert minimum_degree(g).n == 25

    def test_reduces_fill_vs_natural(self, grid2d_small):
        g = Graph.from_matrix(grid2d_small)
        p = minimum_degree(g)
        assert fill_in(grid2d_small, p) <= fill_in(
            grid2d_small, Permutation.identity(grid2d_small.n_rows)
        )

    def test_star_graph_center_last(self):
        # Eliminating the hub first would create a clique: min degree
        # eliminates all the leaves (degree 1) before the hub.
        n = 8
        g = Graph.from_edges(n, np.zeros(n - 1, dtype=np.int64),
                             np.arange(1, n, dtype=np.int64))
        p = minimum_degree(g)
        # The hub keeps degree >= 2 until only two vertices remain, so it
        # must be one of the last two eliminated.
        assert p.perm[0] >= n - 2

    def test_rejects_unknown_tiebreak(self):
        g = Graph.from_matrix(grid_laplacian_2d(3))
        with pytest.raises(ValueError):
            minimum_degree(g, tie_break="random")


class TestNestedDissection:
    def test_is_permutation(self, grid2d_medium):
        p = nested_dissection(grid2d_medium)
        assert p.n == grid2d_medium.n_rows

    def test_beats_natural_fill_on_grid(self):
        m = grid_laplacian_2d(12)
        p = nested_dissection(m)
        assert fill_in(m, p) < fill_in(m, Permutation.identity(m.n_rows))

    def test_leaf_orderings(self, grid2d_small):
        for leaf in ("natural", "rcm", "mindeg"):
            p = nested_dissection(
                grid2d_small,
                NestedDissectionOptions(leaf_size=16, leaf_ordering=leaf),
            )
            assert p.n == grid2d_small.n_rows

    def test_multilevel_separator_engine(self, grid2d_small):
        p = nested_dissection(
            grid2d_small, NestedDissectionOptions(separator="multilevel")
        )
        assert p.n == grid2d_small.n_rows

    def test_disconnected_graph(self):
        import scipy.sparse as sp
        from repro.sparse.csc import SparseMatrixCSC

        a = grid_laplacian_2d(5).to_scipy()
        blk = sp.block_diag([a, a]).tocsc()
        m = SparseMatrixCSC.from_scipy(blk)
        p = nested_dissection(m)
        assert p.n == 50

    def test_bad_options(self):
        with pytest.raises(ValueError):
            NestedDissectionOptions(leaf_ordering="bogus")
        with pytest.raises(ValueError):
            NestedDissectionOptions(separator="bogus")

    def test_accepts_graph_input(self, grid2d_small):
        g = Graph.from_matrix(grid2d_small)
        assert nested_dissection(g).n == g.n

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(20, 80))
    def test_property_always_valid_permutation(self, seed, n):
        m = random_pattern_spd(n, 5.0, seed=seed, locality=0.4)
        p = nested_dissection(m)
        assert np.array_equal(np.sort(p.perm), np.arange(n))
