"""Numerical factorization correctness against SciPy and dense references."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla
from hypothesis import given, settings, strategies as st

from repro.core.factorization import factorize_sequential
from repro.core.triangular import solve_factored
from repro.symbolic import SymbolicOptions, analyze
from repro.sparse.csc import SparseMatrixCSC
from tests.conftest import random_spd_dense


def solve_via_factor(mat, factotype, *, workspace=True, options=None):
    res = analyze(mat, options)
    permuted = mat.permute(res.perm.perm)
    factor = factorize_sequential(
        res.symbol, permuted, factotype, workspace=workspace
    )
    rng = np.random.default_rng(42)
    b = rng.standard_normal(mat.n_rows)
    if np.issubdtype(factor.dtype, np.complexfloating):
        b = b + 1j * rng.standard_normal(mat.n_rows)
    pb = res.perm.apply_to_vector(b.astype(factor.dtype))
    px = solve_factored(factor, pb)
    x = res.perm.undo_on_vector(px)
    resid = np.linalg.norm(b - mat.matvec(x)) / np.linalg.norm(b)
    return x, resid


FACTOTYPES = ("llt", "ldlt", "lu")


class TestRealGrids:
    @pytest.mark.parametrize("factotype", FACTOTYPES)
    def test_grid2d(self, grid2d_medium, factotype):
        _, resid = solve_via_factor(grid2d_medium, factotype)
        assert resid < 1e-12

    @pytest.mark.parametrize("factotype", FACTOTYPES)
    def test_grid3d(self, grid3d_small, factotype):
        _, resid = solve_via_factor(grid3d_small, factotype)
        assert resid < 1e-12

    @pytest.mark.parametrize("factotype", FACTOTYPES)
    def test_random_pattern(self, random_spd_small, factotype):
        _, resid = solve_via_factor(random_spd_small, factotype)
        assert resid < 1e-11

    def test_scatter_kernel_path_identical(self, grid2d_small):
        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        f1 = factorize_sequential(res.symbol, permuted, "llt", workspace=True)
        f2 = factorize_sequential(res.symbol, permuted, "llt", workspace=False)
        for a, b in zip(f1.L, f2.L):
            assert np.allclose(a, b, atol=1e-14)

    def test_matches_scipy_spsolve(self, grid2d_medium):
        x, _ = solve_via_factor(grid2d_medium, "llt")
        b = np.random.default_rng(42).standard_normal(grid2d_medium.n_rows)
        ref = spla.spsolve(grid2d_medium.to_scipy().tocsc(), b)
        assert np.allclose(x, ref, atol=1e-8)


class TestComplex:
    def test_zldlt(self, helmholtz_small):
        _, resid = solve_via_factor(helmholtz_small, "ldlt")
        assert resid < 1e-12

    def test_zlu(self, helmholtz_small):
        _, resid = solve_via_factor(helmholtz_small, "lu")
        assert resid < 1e-12


class TestOptionsInteraction:
    @pytest.mark.parametrize("ratio", [None, 0.0, 0.12, 0.5])
    def test_amalgamation_does_not_change_answer(self, grid2d_small, ratio):
        _, resid = solve_via_factor(
            grid2d_small, "llt",
            options=SymbolicOptions(amalgamation_ratio=ratio),
        )
        assert resid < 1e-12

    @pytest.mark.parametrize("width", [None, 4, 16, 1000])
    def test_splitting_does_not_change_answer(self, grid2d_small, width):
        _, resid = solve_via_factor(
            grid2d_small, "llt",
            options=SymbolicOptions(split_max_width=width),
        )
        assert resid < 1e-12

    def test_natural_ordering_still_correct(self, grid2d_small):
        _, resid = solve_via_factor(
            grid2d_small, "llt", options=SymbolicOptions(ordering="natural")
        )
        assert resid < 1e-12


@settings(max_examples=15, deadline=None)
@given(n=st.integers(5, 40), seed=st.integers(0, 5000))
def test_property_llt_solves_random_spd(n, seed):
    d = random_spd_dense(n, 0.25, seed)
    m = SparseMatrixCSC.from_dense(d)
    _, resid = solve_via_factor(m, "llt")
    assert resid < 1e-10


@settings(max_examples=10, deadline=None)
@given(n=st.integers(5, 30), seed=st.integers(0, 5000))
def test_property_lu_solves_random_dominant(n, seed):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.3)
    m = SparseMatrixCSC.from_dense(d + d.T * 0.3 + np.eye(n) * (np.abs(d).sum() + 1))
    _, resid = solve_via_factor(m, "lu")
    assert resid < 1e-10
