"""Vertex separator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.adjacency import Graph
from repro.graph.separator import (
    level_set_separator,
    separator_from_edge_cut,
    thin_separator,
)
from repro.sparse.generators import grid_laplacian_2d, random_pattern_spd


def assert_valid_separator(g: Graph, sep, pa, pb):
    """sep ∪ pa ∪ pb partitions V and no edge joins pa to pb."""
    all_v = np.sort(np.concatenate([sep, pa, pb]))
    assert np.array_equal(all_v, np.arange(g.n))
    side = np.zeros(g.n, dtype=int)
    side[pa] = 1
    side[pb] = 2
    src = np.repeat(np.arange(g.n), np.diff(g.xadj))
    bad = (side[src] == 1) & (side[g.adjncy] == 2)
    assert not np.any(bad), "edge crosses the separator"


class TestLevelSet:
    def test_grid_separator_valid(self):
        g = Graph.from_matrix(grid_laplacian_2d(8))
        sep, pa, pb = level_set_separator(g)
        assert_valid_separator(g, sep, pa, pb)
        assert sep.size > 0 and pa.size > 0 and pb.size > 0

    def test_grid_separator_small(self):
        # A k x k grid has a separator of ~k vertices; level sets should
        # stay within a small factor of that.
        g = Graph.from_matrix(grid_laplacian_2d(12))
        sep, pa, pb = level_set_separator(g)
        assert sep.size <= 3 * 12

    def test_balance(self):
        g = Graph.from_matrix(grid_laplacian_2d(10))
        sep, pa, pb = level_set_separator(g)
        assert max(pa.size, pb.size) <= 4 * min(pa.size, pb.size)

    def test_single_vertex(self):
        g = Graph.from_edges(1, [], [])
        sep, pa, pb = level_set_separator(g)
        assert sep.size == 0 and pa.size + pb.size == 1

    def test_complete_graph(self):
        n = 5
        u, v = np.triu_indices(n, 1)
        g = Graph.from_edges(n, u, v)
        sep, pa, pb = level_set_separator(g)
        assert_valid_separator(g, sep, pa, pb)


class TestThinning:
    def test_thinning_never_invalidates(self):
        g = Graph.from_matrix(grid_laplacian_2d(7))
        sep, pa, pb = level_set_separator(g)
        sep2, pa2, pb2 = thin_separator(g, sep, pa, pb)
        assert_valid_separator(g, sep2, pa2, pb2)
        assert sep2.size <= sep.size

    def test_thinning_releases_one_sided(self):
        # Path 0-1-2: separator {0, 1}, parts {} and {2}; vertex 0 only
        # touches the separator side and must be released.
        g = Graph.from_edges(3, [0, 1], [1, 2])
        sep, pa, pb = thin_separator(
            g, np.array([0, 1]), np.array([], dtype=np.int64), np.array([2])
        )
        assert 0 not in sep


class TestEdgeCutDerived:
    def test_separator_from_cut(self):
        g = Graph.from_matrix(grid_laplacian_2d(6))
        part = (np.arange(g.n) % 36 >= 18).astype(np.int8)  # top/bottom halves
        sep, pa, pb = separator_from_edge_cut(g, part)
        assert_valid_separator(g, sep, pa, pb)
        assert sep.size <= 6  # one grid row


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(10, 60))
def test_property_levelset_always_valid(seed, n):
    m = random_pattern_spd(n, 4.0, seed=seed, locality=0.3)
    g = Graph.from_matrix(m)
    sep, pa, pb = level_set_separator(g)
    assert_valid_separator(g, sep, pa, pb)
