"""Tests for leaf-subtree task fusion (the paper's §VI future-work
granularity coarsening)."""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.dag.tasks import TaskKind
from repro.machine import mirage, simulate
from repro.runtime import get_policy
from repro.symbolic import analyze


@pytest.fixture(scope="module")
def sym(grid2d_medium):
    return analyze(grid2d_medium).symbol


class TestStructure:
    def test_zero_threshold_is_plain_2d(self, sym):
        plain = build_dag(sym, "llt")
        fused = build_dag(sym, "llt", fuse_subtree_flops=None)
        assert fused.n_tasks == plain.n_tasks

    def test_fusion_reduces_tasks(self, sym):
        plain = build_dag(sym, "llt")
        fused = build_dag(sym, "llt", fuse_subtree_flops=1e4)
        assert fused.n_tasks < plain.n_tasks
        assert np.any(fused.kind == TaskKind.SUBTREE)
        fused.validate()

    def test_total_flops_preserved(self, sym):
        plain = build_dag(sym, "llt")
        for thr in (1e3, 1e5, 1e7):
            fused = build_dag(sym, "llt", fuse_subtree_flops=thr)
            assert fused.total_flops() == pytest.approx(plain.total_flops())

    def test_bigger_threshold_fewer_tasks(self, sym):
        counts = [
            build_dag(sym, "llt", fuse_subtree_flops=thr).n_tasks
            for thr in (1e3, 1e4, 1e6)
        ]
        assert counts[0] >= counts[1] >= counts[2]

    def test_huge_threshold_single_task(self, sym):
        fused = build_dag(sym, "llt", fuse_subtree_flops=1e18)
        # Whole tree fits: one SUBTREE task per root of the supernode
        # forest, no updates survive.
        assert np.all(fused.kind == TaskKind.SUBTREE)
        assert fused.n_edges == 0

    def test_subtree_tasks_have_no_deps(self, sym):
        fused = build_dag(sym, "llt", fuse_subtree_flops=1e5)
        subtree = np.flatnonzero(fused.kind == TaskKind.SUBTREE)
        assert np.all(fused.n_deps[subtree] == 0)

    def test_surviving_updates_target_unfused_panels(self, sym):
        fused = build_dag(sym, "llt", fuse_subtree_flops=1e5)
        panel_cblks = set(
            int(fused.cblk[t])
            for t in np.flatnonzero(fused.kind == TaskKind.PANEL)
        )
        for t in np.flatnonzero(fused.kind == TaskKind.UPDATE):
            assert int(fused.target[t]) in panel_cblks

    def test_components_recorded(self, sym):
        fused = build_dag(sym, "llt", fuse_subtree_flops=1e5)
        subtree = np.flatnonzero(fused.kind == TaskKind.SUBTREE)
        for t in subtree:
            comps = fused.fused_components[int(t)]
            assert any(c[0] == "panel" for c in comps)


class TestSimulation:
    @pytest.mark.parametrize("policy", ["native", "parsec", "starpu"])
    def test_fused_schedule_valid(self, sym, policy):
        fused = build_dag(sym, "llt", fuse_subtree_flops=1e5)
        r = simulate(fused, mirage(n_cores=4), get_policy(policy))
        r.trace.validate(fused)
        assert len(r.trace.events) == fused.n_tasks

    def test_fusion_cuts_overhead_on_many_cores(self, sym):
        """With a high per-task overhead, fusing the flop-poor bottom of
        the tree must reduce the makespan."""
        plain = build_dag(sym, "llt")
        fused = build_dag(sym, "llt", fuse_subtree_flops=2e4)
        pol = lambda: get_policy("parsec", task_overhead_s=20e-6)
        t_plain = simulate(plain, mirage(4), pol(), collect_trace=False).makespan
        t_fused = simulate(fused, mirage(4), pol(), collect_trace=False).makespan
        assert t_fused < t_plain

    def test_subtrees_stay_on_cpu(self, sym):
        fused = build_dag(sym, "llt", fuse_subtree_flops=1e5)
        r = simulate(fused, mirage(4, n_gpus=2), get_policy("parsec"))
        for e in r.trace.events:
            if e.resource.startswith("gpu"):
                assert fused.kind[e.task] == TaskKind.UPDATE
