"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.csc import SparseMatrixCSC, coo_to_csc
from repro.sparse.generators import (
    grid_laplacian_2d,
    grid_laplacian_3d,
    helmholtz_like_2d,
    random_pattern_spd,
)


def random_spd_dense(n: int, density: float, seed: int) -> np.ndarray:
    """Dense random SPD matrix with a sparse off-diagonal pattern."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) * (rng.random((n, n)) < density)
    a = (a + a.T) / 2
    np.fill_diagonal(a, np.abs(a).sum(axis=1) + 1.0)
    return a


def random_spd_csc(n: int, density: float, seed: int) -> SparseMatrixCSC:
    return SparseMatrixCSC.from_dense(random_spd_dense(n, density, seed))


def permutation_matrix(perm: np.ndarray) -> np.ndarray:
    """Dense P with (P A Pᵀ)[perm[i], perm[j]] = A[i, j]."""
    n = perm.size
    p = np.zeros((n, n))
    p[perm, np.arange(n)] = 1.0
    return p


@pytest.fixture(scope="session")
def grid2d_small() -> SparseMatrixCSC:
    return grid_laplacian_2d(8, jitter=0.05, seed=3)


@pytest.fixture(scope="session")
def grid2d_medium() -> SparseMatrixCSC:
    return grid_laplacian_2d(16, jitter=0.05, seed=5)


@pytest.fixture(scope="session")
def grid3d_small() -> SparseMatrixCSC:
    return grid_laplacian_3d(6, jitter=0.05, seed=7)


@pytest.fixture(scope="session")
def helmholtz_small() -> SparseMatrixCSC:
    return helmholtz_like_2d(8, seed=11)


@pytest.fixture(scope="session")
def random_spd_small() -> SparseMatrixCSC:
    return random_pattern_spd(60, 6.0, seed=13, locality=0.5)
