"""Flop-count model tests."""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.kernels.cost import (
    complex_multiplier,
    flops_gemm,
    flops_getrf,
    flops_ldlt,
    flops_panel,
    flops_potrf,
    flops_total,
    flops_trsm,
    flops_update,
)
from repro.symbolic import analyze


def count_flops_potrf_brute(w: int) -> float:
    """Count multiply+add+div+sqrt of the textbook Cholesky loop."""
    total = 0.0
    for j in range(w):
        total += 1            # sqrt
        total += w - j - 1    # column scale (div)
        for i in range(j + 1, w):
            total += 2 * (w - i)  # fused multiply-add pairs on the trail
    return total


class TestFormulas:
    def test_potrf_matches_brute_force(self):
        for w in (1, 2, 5, 16):
            assert flops_potrf(w) == pytest.approx(
                count_flops_potrf_brute(w), rel=0.35
            )

    def test_potrf_cubic_leading_term(self):
        assert flops_potrf(300) == pytest.approx(300**3 / 3, rel=0.01)

    def test_getrf_twice_potrf(self):
        assert flops_getrf(200) == pytest.approx(2 * flops_potrf(200), rel=0.02)

    def test_gemm(self):
        assert flops_gemm(3, 4, 5) == 120.0

    def test_trsm(self):
        assert flops_trsm(4, 10) == 160.0

    def test_ldlt_cubic(self):
        assert flops_ldlt(300) == pytest.approx(flops_potrf(300), rel=0.01)

    def test_complex_multiplier(self):
        assert complex_multiplier(np.float64) == 1
        assert complex_multiplier(np.complex128) == 4
        assert complex_multiplier(np.float32) == 1


class TestPanelUpdate:
    def test_panel_llt(self):
        assert flops_panel(4, 10, "llt") == flops_potrf(4) + flops_trsm(4, 10)

    def test_panel_lu_double_trsm(self):
        assert flops_panel(4, 10, "lu") == flops_getrf(4) + 2 * flops_trsm(4, 10)

    def test_panel_unknown(self):
        with pytest.raises(ValueError):
            flops_panel(4, 10, "qr")

    def test_update_llt(self):
        assert flops_update(10, 4, 3, "llt") == flops_gemm(10, 4, 3)

    def test_update_ldlt_recompute_extra(self):
        base = flops_update(10, 4, 3, "ldlt", recompute_ld=False)
        extra = flops_update(10, 4, 3, "ldlt", recompute_ld=True)
        assert extra == base + 4 * 3

    def test_update_lu_two_gemms(self):
        got = flops_update(10, 4, 3, "lu")
        assert got == flops_gemm(10, 4, 3) + flops_gemm(6, 4, 3)

    def test_update_unknown(self):
        with pytest.raises(ValueError):
            flops_update(1, 1, 1, "qr")


class TestTotals:
    def test_total_matches_dag_sum(self, grid2d_medium):
        res = analyze(grid2d_medium)
        for ft in ("llt", "ldlt", "lu"):
            total = flops_total(res.symbol, ft, np.float64)
            dag = build_dag(res.symbol, ft, recompute_ld=False)
            assert dag.total_flops() == pytest.approx(total, rel=1e-12)

    def test_total_1d_equals_2d(self, grid2d_small):
        res = analyze(grid2d_small)
        d1 = build_dag(res.symbol, "llt", granularity="1d")
        d2 = build_dag(res.symbol, "llt", granularity="2d")
        assert d1.total_flops() == pytest.approx(d2.total_flops())

    def test_complex_is_4x(self, grid2d_small):
        res = analyze(grid2d_small)
        real = flops_total(res.symbol, "lu", np.float64)
        cplx = flops_total(res.symbol, "lu", np.complex128)
        assert cplx == pytest.approx(4 * real)

    def test_lu_costs_more_than_llt(self, grid2d_small):
        res = analyze(grid2d_small)
        assert flops_total(res.symbol, "lu") > 1.3 * flops_total(res.symbol, "llt")

    def test_dense_matches_closed_form(self):
        """A fully dense matrix must cost ~n³/3 regardless of blocking."""
        from tests.conftest import random_spd_csc

        m = random_spd_csc(60, 1.0, 0)
        res = analyze(m)
        total = flops_total(res.symbol, "llt")
        assert total == pytest.approx(60**3 / 3, rel=0.25)
