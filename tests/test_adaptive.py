"""Adaptive scheduler: history model, cold-start identity, determinism,
A9xx provenance audit, and the RV405 lint regression."""

import json

import numpy as np
import pytest

from repro.dag import build_dag
from repro.resilience.health import bucket_key
from repro.runtime.adaptive import (
    MODEL_VERSION,
    AdaptiveScheduler,
    PerfHistory,
    suggest_config,
)
from repro.runtime.scheduling import THREAD_SCHEDULERS, get_thread_scheduler
from repro.runtime.threaded import factorize_threaded
from repro.runtime.tracing import ExecutionTrace
from repro.symbolic import analyze
from repro.verify import skew_model_stamp, verify_adaptive


def _setup(mat, factotype="llt"):
    res = analyze(mat)
    permuted = mat.permute(res.perm.perm)
    return res, permuted


def _run(res, permuted, scheduler, n_workers=2, accumulate=True):
    trace = ExecutionTrace()
    factor = factorize_threaded(
        res.symbol, permuted, "llt", n_workers=n_workers, trace=trace,
        scheduler=scheduler, accumulate=accumulate,
    )
    return trace, factor


# ----------------------------------------------------------------------
# Shared bucketing (the key-format pin: health EWMA and PerfHistory must
# never drift apart).
# ----------------------------------------------------------------------
def test_bucket_key_format_pin():
    assert bucket_key(3, 1024.0) == "3:10"
    assert bucket_key(2, 0.0) == "2:0"  # log2 floor clamps at 1 flop
    assert bucket_key(1, 1.5) == "1:0"
    assert bucket_key(0, 2.0**20 + 5.0) == "0:20"


def test_bucket_key_single_source():
    """Every measured-duration consumer aliases the one shared helper."""
    import repro.machine.simulator as simulator
    import repro.resilience.health as health
    import repro.runtime.adaptive as adaptive
    import repro.runtime.threaded as threaded

    assert threaded.bucket_key is health.bucket_key
    assert simulator.bucket_key is health.bucket_key
    assert adaptive.bucket_key is health.bucket_key


# ----------------------------------------------------------------------
# PerfHistory: seeding, prediction fallbacks, persistence.
# ----------------------------------------------------------------------
def test_perf_history_observe_and_predict():
    h = PerfHistory()
    assert not h.has_samples()
    assert h.predict(0, 1e6) == 0.0

    key = bucket_key(0, 2.0**20)
    h.observe(key, 2.0**20, 0.5)
    h.observe(key, 2.0**20, 0.5)
    assert h.has_samples()
    assert h.rate(key) == pytest.approx(2.0**21)
    # Exact bucket.
    assert h.predict(0, 2.0**20) == pytest.approx(0.5)
    # Nearest same-kernel bucket (no exact sample at 2**10).
    assert h.predict(0, 2.0**10) == pytest.approx(2.0**10 / 2.0**21)
    # Different kernel falls back to the global rate.
    assert h.predict(1, 2.0**20) == pytest.approx(0.5)
    # Non-positive durations are rejected, not folded.
    h.observe(key, 2.0**20, 0.0)
    assert h.rate(key) == pytest.approx(2.0**21)


def test_perf_history_json_roundtrip():
    h = PerfHistory()
    h.observe("0:10", 1024.0, 0.25)
    text = h.to_json()
    h2 = PerfHistory.from_json(text)
    assert h2.rate("0:10") == pytest.approx(h.rate("0:10"))
    assert h2.global_rate() == pytest.approx(h.global_rate())
    assert h2.to_json() == text  # byte-stable round trip

    bad = json.loads(text)
    bad["model_version"] = MODEL_VERSION + 1
    with pytest.raises(ValueError, match="model_version"):
        PerfHistory.from_json(json.dumps(bad))


def test_seed_from_results(tmp_path):
    report = {
        "bench": "threaded",
        "calib_gflops": 4.0,
        "cells": [
            {"matrix": "audi", "scheduler": "fifo", "n_workers": 1,
             "flops": 2e9, "wall_s": 1.0},
            {"matrix": "audi", "scheduler": "fifo", "n_workers": 4,
             "flops": 2e9, "wall_s": 0.3},
        ],
    }
    (tmp_path / "BENCH_threaded.json").write_text(json.dumps(report))
    h = PerfHistory()
    assert h.seed_from_results(tmp_path) == 1  # only the serial cell
    assert h.n_seeded == 1
    assert h.global_rate() == pytest.approx(2e9)
    # Seeding fills only the global tier: predictions stay proportional
    # to flops, i.e. the static priority ordering.
    assert h.predict(0, 4e9) == pytest.approx(2.0)

    # No serial cell -> the calibration is folded as one weak sample.
    report["cells"] = [report["cells"][1]]
    (tmp_path / "BENCH_threaded.json").write_text(json.dumps(report))
    h2 = PerfHistory()
    assert h2.seed_from_results(tmp_path) == 1
    assert h2.global_rate() == pytest.approx(4e9)

    # Missing corpus: zero samples, no error.
    assert PerfHistory().seed_from_results(tmp_path / "nope") == 0


# ----------------------------------------------------------------------
# Cold start: bit-identical to the static priority scheduler.
# ----------------------------------------------------------------------
def test_cold_start_identical_to_priority(grid2d_small):
    res, permuted = _setup(grid2d_small)
    t_prio, f_prio = _run(res, permuted, get_thread_scheduler("priority"),
                          n_workers=1)
    t_cold, f_cold = _run(res, permuted, AdaptiveScheduler(), n_workers=1)
    # Same execution order...
    order_p = [e.task for e in t_prio.sorted_events()]
    order_c = [e.task for e in t_cold.sorted_events()]
    assert order_p == order_c
    # ...and bit-identical factors.
    for a, b in zip(f_prio.L, f_cold.L):
        assert np.array_equal(a, b)
    assert t_cold.meta["adaptive"]["cold_start"] is True


# ----------------------------------------------------------------------
# Same-seed determinism: identical fingerprints, cold and warm.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_workers", [1, 2, 4])
@pytest.mark.parametrize("accumulate", [False, True])
def test_same_seed_fingerprint_identity(grid2d_small, n_workers,
                                        accumulate):
    res, permuted = _setup(grid2d_small)
    h1, h2 = PerfHistory(), PerfHistory()

    # Cold pair: two identically-configured runs must stamp and
    # fingerprint identically.
    ta, _ = _run(res, permuted, AdaptiveScheduler(history=h1),
                 n_workers=n_workers, accumulate=accumulate)
    tb, _ = _run(res, permuted, AdaptiveScheduler(history=h2),
                 n_workers=n_workers, accumulate=accumulate)
    assert ta.meta["adaptive"] == tb.meta["adaptive"]
    assert ta.fingerprint() == tb.fingerprint()

    # Warm pair: the histories now hold measured (host-dependent)
    # durations, but the stamp is a function of the task set alone, so
    # the fingerprints must still match.
    tc, _ = _run(res, permuted, AdaptiveScheduler(history=h1),
                 n_workers=n_workers, accumulate=accumulate)
    td, _ = _run(res, permuted, AdaptiveScheduler(history=h2),
                 n_workers=n_workers, accumulate=accumulate)
    assert tc.meta["adaptive"]["cold_start"] is False
    assert tc.meta["adaptive"] == td.meta["adaptive"]
    assert tc.fingerprint() == td.fingerprint()
    # Cold and warm runs differ in the stamp (provenance is part of the
    # trace identity).
    assert ta.fingerprint() != tc.fingerprint()


# ----------------------------------------------------------------------
# A9xx: stamped provenance audited against the trace.
# ----------------------------------------------------------------------
def test_verify_adaptive_clean_and_skewed(grid2d_small):
    res, permuted = _setup(grid2d_small)
    dag = build_dag(res.symbol, "llt", granularity="2d")
    sched = AdaptiveScheduler()
    trace, _ = _run(res, permuted, sched, n_workers=2)

    stamp = trace.meta["adaptive"]
    assert stamp["model_version"] == MODEL_VERSION
    assert stamp["observed"] == len(trace.events)
    assert sum(stamp["buckets"].values()) == stamp["observed"]

    rep = verify_adaptive(dag, trace)
    assert rep.ok, rep.format()

    forged = skew_model_stamp(trace)
    bad = verify_adaptive(dag, forged)
    assert not bad.ok
    codes = {f.code for f in bad.findings}
    assert "A902" in codes  # bucket sum no longer matches observed
    assert "A904" in codes  # bucket drift vs rebuilt counts


def test_verify_adaptive_provenance_mismatch(grid2d_small):
    res, permuted = _setup(grid2d_small)
    dag = build_dag(res.symbol, "llt", granularity="2d")
    # A priority-produced trace must not carry an adaptive stamp.
    trace, _ = _run(res, permuted, get_thread_scheduler("priority"))
    assert "adaptive" not in trace.meta
    trace.meta["adaptive"] = {"model_version": 1, "cold_start": True,
                              "seeded": 0, "keys_at_bind": 0,
                              "observed": 0, "buckets": {}}
    rep = verify_adaptive(dag, trace)
    assert not rep.ok
    assert {f.code for f in rep.findings} == {"A901"}

    # And a trace with no task events cannot have been skewed.
    with pytest.raises(ValueError, match="no adaptive model stamp"):
        skew_model_stamp(ExecutionTrace())


# ----------------------------------------------------------------------
# Registry and corpus-driven configuration.
# ----------------------------------------------------------------------
def test_adaptive_registered():
    assert "adaptive" in THREAD_SCHEDULERS
    assert isinstance(get_thread_scheduler("adaptive"), AdaptiveScheduler)


def test_suggest_config(tmp_path):
    report = {
        "bench": "threaded",
        "cells": [
            {"matrix": "audi", "scheduler": "priority", "n_workers": 4,
             "variant": "opt", "model_makespan_s": 2.0},
            {"matrix": "audi", "scheduler": "adaptive", "n_workers": 4,
             "variant": "opt", "model_makespan_s": 1.5},
            {"matrix": "audi", "scheduler": "inverse-priority",
             "n_workers": 4, "variant": "opt", "model_makespan_s": 0.1},
            {"matrix": "audi", "scheduler": "ws", "n_workers": 2,
             "variant": "base", "model_makespan_s": 1.0},
        ],
    }
    path = tmp_path / "BENCH_threaded.json"
    path.write_text(json.dumps(report))

    cfg = suggest_config("audi", path=path)
    assert cfg["scheduler"] == "ws"  # global minimum
    assert cfg["n_workers"] == 2
    assert cfg["accumulate"] is cfg["index_cache"] is False

    cfg4 = suggest_config("audi", n_workers=4, path=path)
    # inverse-priority is fault-injection-only: never suggested even
    # when it posts the best makespan.
    assert cfg4["scheduler"] == "adaptive"
    assert cfg4["accumulate"] is cfg4["dl_buffer"] is True

    with pytest.raises(ValueError, match="no usable cells"):
        suggest_config("nosuchmatrix", path=path)


def test_warm_ranking_still_valid_schedule(grid2d_medium):
    """A genuinely warm (measured, non-uniform) model must still yield a
    dependency-respecting schedule and correct factors."""
    from repro.core.factorization import factorize_sequential

    res, permuted = _setup(grid2d_medium)
    ref = factorize_sequential(res.symbol, permuted, "llt")
    hist = PerfHistory()
    _run(res, permuted, AdaptiveScheduler(history=hist), n_workers=4)
    trace, factor = _run(res, permuted, AdaptiveScheduler(history=hist),
                         n_workers=4)
    assert trace.meta["adaptive"]["cold_start"] is False
    dag = build_dag(res.symbol, "llt", granularity="2d")
    trace.validate(dag, exclusive_resources=[], check_mutex=False,
                   tol=1e-5)
    for a, b in zip(ref.L, factor.L):
        assert np.allclose(a, b, atol=1e-10)


# ----------------------------------------------------------------------
# RV405: the lint regression for the unguarded has_work() bug.
# ----------------------------------------------------------------------
_RACY_HAS_WORK = '''
import heapq, threading

class S:
    def __init__(self):
        self._lock = threading.Lock()
        self._heap = []

    def push(self, t, w):
        with self._lock:
            heapq.heappush(self._heap, t)
        return 0

    def has_work(self):
        return bool(self._heap)
'''


def test_rv405_flags_unguarded_has_work():
    from repro.verify import lockdiscipline_sources

    findings = lockdiscipline_sources({"s.py": _RACY_HAS_WORK})
    assert [(f.code, f.line) for f in findings] == [("RV405", 15)]
    assert "self._heap" in findings[0].message

    fixed = _RACY_HAS_WORK.replace(
        "    def has_work(self):\n        return bool(self._heap)\n",
        "    def has_work(self):\n"
        "        with self._lock:\n"
        "            return bool(self._heap)\n",
    )
    assert lockdiscipline_sources({"s.py": fixed}) == []


def test_rv405_default_scope_clean():
    from repro.verify import lockdiscipline_paths

    assert [f for f in lockdiscipline_paths()
            if f.code == "RV405"] == []
