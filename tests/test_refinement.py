"""Iterative refinement tests."""

import numpy as np
import pytest

from repro.core.refinement import iterative_refinement
from repro.sparse.csc import SparseMatrixCSC
from tests.conftest import random_spd_dense


def make_system(n=20, seed=0):
    d = random_spd_dense(n, 0.4, seed)
    m = SparseMatrixCSC.from_dense(d)
    b = np.random.default_rng(seed).standard_normal(n)
    return d, m, b


def test_exact_solver_converges_immediately():
    d, m, b = make_system()
    inv = np.linalg.inv(d)
    result = iterative_refinement(m, lambda r: inv @ r, b, tol=1e-12)
    assert result.converged
    assert result.iterations <= 1
    assert result.residual_norm < 1e-12


def test_sloppy_solver_improves():
    d, m, b = make_system()
    inv = np.linalg.inv(d)
    noisy_inv = inv * (1 + 1e-3)  # 0.1% relative error operator
    result = iterative_refinement(m, lambda r: noisy_inv @ r, b,
                                  tol=1e-12, max_iter=20)
    assert result.converged
    assert result.iterations >= 1
    # history strictly improves until convergence
    assert all(b < a for a, b in zip(result.history, result.history[1:]))


def test_zero_rhs():
    _, m, _ = make_system()
    result = iterative_refinement(m, lambda r: r, np.zeros(20))
    assert result.converged
    assert np.all(result.x == 0)


def test_stagnation_stops_early():
    d, m, b = make_system()
    # A useless solver (identity): residual can't improve much.
    result = iterative_refinement(m, lambda r: r * 1e-6, b, max_iter=10)
    assert not result.converged
    assert result.iterations < 10


def test_max_iter_respected():
    d, m, b = make_system()
    inv = np.linalg.inv(d)
    wobbly = inv * (1 + 0.2)
    result = iterative_refinement(m, lambda r: wobbly @ r, b,
                                  tol=1e-16, max_iter=3)
    assert len(result.history) <= 3


def test_result_solves_system():
    d, m, b = make_system(seed=3)
    inv = np.linalg.inv(d)
    result = iterative_refinement(m, lambda r: inv @ r, b)
    assert np.allclose(d @ result.x, b, atol=1e-9)
