"""ILU(k) incomplete factorization tests."""

import numpy as np
import pytest

from repro.core.krylov import bicgstab, conjugate_gradient, gmres
from repro.ordering import nested_dissection
from repro.precond import IncompleteLU, ilu_symbolic
from repro.sparse.csc import SparseMatrixCSC
from tests.conftest import random_spd_dense


class TestSymbolic:
    def test_ilu0_pattern_equals_a(self, grid2d_small):
        lower, upper = ilu_symbolic(grid2d_small, 0)
        csr = grid2d_small.to_scipy().tocsr()
        for i in range(grid2d_small.n_rows):
            cols = set(csr.indices[csr.indptr[i]: csr.indptr[i + 1]].tolist())
            cols.add(i)
            got = set(lower[i].tolist()) | set(upper[i].tolist())
            assert got == cols

    def test_levels_grow_pattern(self, grid2d_small):
        sizes = []
        for level in (0, 1, 2):
            lower, upper = ilu_symbolic(grid2d_small, level)
            sizes.append(sum(l.size + u.size for l, u in zip(lower, upper)))
        assert sizes[0] < sizes[1] < sizes[2]

    def test_large_level_reaches_exact_fill(self):
        d = random_spd_dense(12, 0.4, 0)
        m = SparseMatrixCSC.from_dense(d)
        lower, upper = ilu_symbolic(m, 50)
        total = sum(l.size + u.size for l, u in zip(lower, upper))
        L = np.linalg.cholesky(d)
        exact = 2 * int((np.abs(L) > 1e-14).sum()) - 12
        assert total >= exact  # superset of (here: equals) the true fill

    def test_diagonal_always_present(self, grid2d_small):
        _, upper = ilu_symbolic(grid2d_small, 0)
        for i, up in enumerate(upper):
            assert up.size and up[0] == i

    def test_validation(self, grid2d_small):
        from repro.sparse.csc import coo_to_csc

        with pytest.raises(ValueError):
            ilu_symbolic(coo_to_csc(2, 3, [0], [0], [1.0]), 0)
        with pytest.raises(ValueError):
            ilu_symbolic(grid2d_small, -1)


class TestNumeric:
    def test_high_level_is_nearly_exact(self):
        d = random_spd_dense(15, 0.4, 1)
        m = SparseMatrixCSC.from_dense(d)
        ilu = IncompleteLU(m, level=20)
        b = np.random.default_rng(0).standard_normal(15)
        x = ilu.solve(b)
        assert np.allclose(d @ x, b, atol=1e-8)

    def test_lu_product_matches_on_pattern_ilu0(self, grid2d_small):
        """ILU(0) property: (L·U) agrees with A exactly on A's pattern."""
        ilu = IncompleteLU(grid2d_small, level=0)
        L, U = ilu.factors()
        n = grid2d_small.n_rows
        prod = (L.to_scipy() + np.eye(n)) @ U.to_scipy()
        a = grid2d_small.to_dense()
        mask = a != 0
        assert np.allclose(np.asarray(prod)[mask], a[mask], atol=1e-10)

    def test_quality_improves_with_level(self, grid2d_medium):
        norms = [
            IncompleteLU(grid2d_medium, level=k).residual_operator_norm()
            for k in (0, 1, 3)
        ]
        assert norms[2] < norms[0]

    def test_complex_support(self, helmholtz_small):
        ilu = IncompleteLU(helmholtz_small, level=1)
        b = np.ones(helmholtz_small.n_rows, dtype=np.complex128)
        x = ilu.solve(b)
        assert np.iscomplexobj(x)
        assert np.isfinite(x).all()

    def test_with_ordering(self, grid2d_small):
        perm = nested_dissection(grid2d_small)
        ilu = IncompleteLU(grid2d_small, level=1, ordering=perm)
        b = np.random.default_rng(1).standard_normal(grid2d_small.n_rows)
        x = ilu.solve(b)
        # Preconditioner quality: residual much smaller than b.
        r = b - grid2d_small.matvec(x)
        assert np.linalg.norm(r) < 0.8 * np.linalg.norm(b)


class TestAsPreconditioner:
    def test_cg_converges_faster(self, grid2d_medium):
        b = np.random.default_rng(2).standard_normal(grid2d_medium.n_rows)
        plain = conjugate_gradient(grid2d_medium, b, tol=1e-10, max_iter=400)
        ilu = IncompleteLU(grid2d_medium, level=1)
        pre = conjugate_gradient(
            grid2d_medium, b, precondition=ilu.solve, tol=1e-10, max_iter=400
        )
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_gmres_with_ilu(self, grid2d_medium):
        b = np.ones(grid2d_medium.n_rows)
        ilu = IncompleteLU(grid2d_medium, level=1)
        r = gmres(grid2d_medium, b, precondition=ilu.solve, tol=1e-9)
        assert r.converged
        assert np.allclose(grid2d_medium.matvec(r.x), b, atol=1e-6)

    def test_bicgstab_with_ilu_unsym(self):
        rng = np.random.default_rng(3)
        d = rng.standard_normal((60, 60)) * (rng.random((60, 60)) < 0.15)
        np.fill_diagonal(d, np.abs(d).sum(axis=1) + 1.0)
        m = SparseMatrixCSC.from_dense(d)
        b = rng.standard_normal(60)
        ilu = IncompleteLU(m, level=0)
        r = bicgstab(m, b, precondition=ilu.solve, tol=1e-10)
        assert r.converged

    def test_nnz_reported(self, grid2d_small):
        ilu = IncompleteLU(grid2d_small, level=0)
        assert ilu.nnz >= grid2d_small.nnz
