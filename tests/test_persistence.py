"""Analysis save/load tests."""

import numpy as np
import pytest

from repro.core.factorization import factorize_sequential
from repro.core.triangular import solve_factored
from repro.symbolic import analyze, load_analysis, save_analysis


@pytest.fixture(scope="module")
def analysis(grid2d_medium):
    return analyze(grid2d_medium)


def test_roundtrip_structure(analysis, tmp_path):
    path = tmp_path / "analysis.npz"
    save_analysis(analysis, path)
    back = load_analysis(path)
    assert back.n == analysis.n
    assert np.array_equal(back.perm.perm, analysis.perm.perm)
    assert np.array_equal(back.parent, analysis.parent)
    assert np.array_equal(back.counts, analysis.counts)
    assert np.array_equal(back.symbol.cblk_ptr, analysis.symbol.cblk_ptr)
    assert np.array_equal(back.symbol.blok_frow, analysis.symbol.blok_frow)
    back.symbol.validate()


def test_loaded_analysis_factorizes(analysis, grid2d_medium, tmp_path):
    path = tmp_path / "analysis.npz"
    save_analysis(analysis, path)
    back = load_analysis(path)
    permuted = grid2d_medium.permute(back.perm.perm)
    factor = factorize_sequential(back.symbol, permuted, "llt")
    b = np.ones(grid2d_medium.n_rows)
    x = back.perm.undo_on_vector(
        solve_factored(factor, back.perm.apply_to_vector(b))
    )
    resid = np.linalg.norm(b - grid2d_medium.matvec(x)) / np.linalg.norm(b)
    assert resid < 1e-10


def test_facing_index_rebuilt(analysis, tmp_path):
    path = tmp_path / "a.npz"
    save_analysis(analysis, path)
    back = load_analysis(path)
    for k in range(min(back.symbol.n_cblk, 20)):
        assert np.array_equal(
            back.symbol.facing_bloks(k), analysis.symbol.facing_bloks(k)
        )


def test_version_check(analysis, tmp_path):
    path = tmp_path / "a.npz"
    save_analysis(analysis, path)
    data = dict(np.load(path))
    data["format_version"] = np.int64(99)
    np.savez(path, **data)
    with pytest.raises(ValueError, match="version"):
        load_analysis(path)
