"""R6xx resilience auditor tests (synthetic traces + injectors).

Each check is exercised twice: once on a hand-built trace that
violates exactly one invariant, and once on a clean trace to pin down
the negative.  The injector helpers (``drop_recovery`` /
``double_complete``) are the verify-the-verifier corruptions wired to
``python -m repro verify --inject``.
"""

import pytest

from repro.runtime.tracing import ExecutionTrace
from repro.verify import double_complete, drop_recovery, verify_resilience


def _clean_retry_trace():
    """One task fails once, recovers, re-executes after its backoff."""
    t = ExecutionTrace()
    t.record_fault("task-fault", 3, 1, "cpu0", 0.0, 1.0, 1)
    t.record_recovery("requeue", 3, 1, "cpu0", 1.0, 1, 0.5)
    t.record(3, "cpu1", 1.6, 2.5)  # 1.6 >= 1.0 + 0.5
    t.record(4, "cpu0", 2.5, 3.0)
    return t


def codes(report):
    return sorted({f.code for f in report.findings})


class TestR601Pairing:
    def test_clean_pairing_passes(self):
        rep = verify_resilience(_clean_retry_trace())
        assert rep.ok, rep.format()
        assert rep.stats["faults"] == 1.0
        assert rep.stats["recoveries"] == 1.0
        assert rep.stats["tasks_hit"] == 1.0

    def test_unanswered_fault_fails(self):
        t = ExecutionTrace()
        t.record_fault("task-fault", 3, 1, "cpu0", 0.0, 1.0, 1)
        t.record(3, "cpu1", 1.5, 2.5)
        rep = verify_resilience(t)
        assert codes(rep) == ["R601"]
        assert "task 3" in rep.format(verbose=True)

    def test_recovery_before_fault_does_not_pair(self):
        t = ExecutionTrace()
        t.record_fault("task-fault", 3, 1, "cpu0", 0.0, 1.0, 1)
        # Decided at t=0.5, before the failed attempt even ended:
        # bookkeeping fiction, not a recovery.
        t.record_recovery("requeue", 3, 1, "cpu0", 0.5, 1, 0.0)
        t.record(3, "cpu1", 1.5, 2.5)
        rep = verify_resilience(t)
        assert set(codes(rep)) == {"R601", "R603"}

    def test_straggler_absorbed_at_start(self):
        t = ExecutionTrace()
        # A straggler is absorbed when the attempt starts, not at its
        # (stretched) end — the recovery at t=0 must pair.
        t.record_fault("straggler", 2, 0, "cpu0", 0.0, 4.0, 1)
        t.record_recovery("absorb", 2, 0, "cpu0", 0.0, 1)
        t.record(2, "cpu0", 0.0, 4.0)
        rep = verify_resilience(t)
        assert rep.ok, rep.format()

    def test_attempt_number_is_part_of_the_key(self):
        t = ExecutionTrace()
        t.record_fault("task-fault", 3, 1, "cpu0", 0.0, 1.0, 1)
        t.record_fault("task-fault", 3, 1, "cpu0", 1.2, 2.0, 2)
        # Two recoveries for attempt 1, none for attempt 2.
        t.record_recovery("requeue", 3, 1, "cpu0", 1.0, 1, 0.1)
        t.record_recovery("requeue", 3, 1, "cpu0", 2.0, 1, 0.1)
        t.record(3, "cpu0", 2.2, 3.0)
        rep = verify_resilience(t)
        assert set(codes(rep)) == {"R601", "R603"}


class TestR602DoubleComplete:
    def test_retry_with_interleaved_fault_is_legal(self):
        t = ExecutionTrace()
        t.record(5, "cpu0", 0.0, 1.0)
        t.record_fault("task-fault", 5, 2, "cpu0", 1.0, 1.5, 1)
        t.record_recovery("requeue", 5, 2, "cpu0", 1.5, 1, 0.0)
        t.record(5, "cpu1", 1.6, 2.6)
        rep = verify_resilience(t)
        assert rep.ok, rep.format()

    def test_double_completion_without_fault_fails(self):
        t = ExecutionTrace()
        t.record(5, "cpu0", 0.0, 1.0)
        t.record(5, "cpu1", 1.5, 2.5)
        rep = verify_resilience(t)
        assert codes(rep) == ["R602"]
        assert "task 5 completes twice" in rep.format(verbose=True)

    def test_flag_disables_the_check(self):
        t = ExecutionTrace()
        t.record(5, "cpu0", 0.0, 1.0)
        t.record(5, "cpu1", 1.5, 2.5)
        rep = verify_resilience(t, check_double_complete=False)
        assert rep.ok, rep.format()


class TestR603Orphans:
    def test_orphan_recovery_fails(self):
        t = ExecutionTrace()
        t.record(1, "cpu0", 0.0, 1.0)
        t.record_recovery("requeue", 1, 0, "cpu0", 1.0, 1, 0.0)
        rep = verify_resilience(t)
        assert codes(rep) == ["R603"]
        assert "answers no recorded fault" in rep.format(verbose=True)


class TestR604Backoff:
    def test_reexecution_before_backoff_fails(self):
        t = ExecutionTrace()
        t.record_fault("task-fault", 3, 1, "cpu0", 0.0, 1.0, 1)
        t.record_recovery("requeue", 3, 1, "cpu0", 1.0, 1, 0.5)
        t.record(3, "cpu1", 1.2, 2.5)  # 1.2 < 1.0 + 0.5: too early
        rep = verify_resilience(t)
        assert codes(rep) == ["R604"]
        assert "before its recovery decision" in rep.format(verbose=True)

    def test_fault_window_past_horizon_fails(self):
        t = ExecutionTrace()
        t.record(3, "cpu0", 0.0, 1.0)
        # A fault "after the end of time" that no event accounts for.
        t.record_fault("task-fault", 7, 1, "cpu0", 2.0, 3.0, 1)
        t.record_recovery("requeue", 7, 1, "cpu0", 3.0, 1, 0.0)
        rep = verify_resilience(t)
        assert "R604" in codes(rep)
        assert "cannot be free" in rep.format(verbose=True)

    def test_trailing_writeback_retry_is_covered_by_data_events(self):
        t = ExecutionTrace()
        t.record(3, "cpu0", 0.0, 1.0)
        # A d2h writeback retried after the last task event: the data
        # event extends the horizon, so the window is accounted for.
        t.record_fault("transfer-fail", -1, 4, "link0", 1.0, 1.5, 1,
                       nbytes=800.0)
        t.record_recovery("retry-transfer", -1, 4, "link0", 1.5, 1, 0.1)
        t.record_data("d2h", 4, 0, 800.0, 1.6, 2.0, "writeback")
        rep = verify_resilience(t)
        assert rep.ok, rep.format()

    def test_retried_transfer_with_no_data_event_fails(self):
        t = ExecutionTrace()
        t.record(3, "cpu0", 0.0, 5.0)
        t.record_fault("transfer-fail", -1, 4, "link0", 1.0, 1.5, 1,
                       nbytes=800.0)
        t.record_recovery("retry-transfer", -1, 4, "link0", 1.5, 1, 0.1)
        # No h2d/d2h of panel 4 on link 0 at/after t=1.6: the retry
        # claims to have happened but the bytes never moved.
        rep = verify_resilience(t)
        assert "R604" in codes(rep)
        assert "no data event" in rep.format(verbose=True)


class TestR605DeadDevice:
    def _lost_gpu_trace(self):
        t = ExecutionTrace()
        t.record(1, "cpu0", 0.0, 1.0)
        t.record_fault("gpu-loss", -1, -1, "gpu0", 2.0, 2.5)
        t.record_recovery("reroute-cpu", -1, -1, "gpu0", 2.5)
        t.record(3, "cpu1", 2.5, 5.0)  # the run outlives the loss window
        return t

    def test_clean_loss_passes(self):
        rep = verify_resilience(self._lost_gpu_trace())
        assert rep.ok, rep.format()

    def test_task_on_dead_device_fails(self):
        t = self._lost_gpu_trace()
        t.record(2, "gpu0s1", 3.0, 4.0)
        rep = verify_resilience(t)
        assert "R605" in codes(rep)
        assert "after the device was lost" in rep.format(verbose=True)

    def test_transfer_to_dead_device_fails(self):
        t = self._lost_gpu_trace()
        t.record_data("h2d", 7, 0, 800.0, 3.0, 3.5)
        rep = verify_resilience(t)
        assert "R605" in codes(rep)

    def test_drain_inside_the_loss_window_is_legal(self):
        t = self._lost_gpu_trace()
        # Committed writeback draining inside [2.0, 2.5] is the modelled
        # drain, not use of a dead device.
        t.record_data("d2h", 7, 0, 800.0, 2.1, 2.4, "writeback")
        rep = verify_resilience(t)
        assert rep.ok, rep.format()

    def test_other_gpu_unaffected(self):
        t = self._lost_gpu_trace()
        t.record(2, "gpu1s0", 3.0, 4.0)
        t.record_data("h2d", 7, 1, 800.0, 2.8, 3.0)
        rep = verify_resilience(t)
        assert rep.ok, rep.format()


class TestInjectors:
    def test_drop_recovery_breaks_r601(self):
        corrupted = drop_recovery(_clean_retry_trace())
        rep = verify_resilience(corrupted)
        assert "R601" in codes(rep)

    def test_drop_recovery_requires_recoveries(self):
        with pytest.raises(ValueError, match="no recovery events"):
            drop_recovery(ExecutionTrace())

    def test_double_complete_breaks_r602(self):
        corrupted = double_complete(_clean_retry_trace())
        rep = verify_resilience(corrupted)
        assert "R602" in codes(rep)

    def test_double_complete_requires_events(self):
        with pytest.raises(ValueError, match="no task events"):
            double_complete(ExecutionTrace())

    def test_injectors_do_not_mutate_the_original(self):
        t = _clean_retry_trace()
        n_rec, n_ev = len(t.recovery_events), len(t.events)
        drop_recovery(t)
        double_complete(t)
        assert len(t.recovery_events) == n_rec
        assert len(t.events) == n_ev
        assert verify_resilience(t).ok
