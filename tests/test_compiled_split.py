"""Compiled-kernel backend and tall-panel 2D row splitting.

Covers the ``kernels="numpy"|"compiled"`` toggle end to end (selection,
graceful degradation without numba, trace stamping, tolerance vs. the
numpy reference, bit-identity of the numpy path), the 2D row-block
splitter (``rowblock_bounds`` / ``plan_update_rowblocks`` / split DAG
structure and its exact flop tiling), the auditors that police split
DAGs (H110 hazards, N509 symbolic costs, the ``stale_split`` injector),
and the measured-rate blocking advisor (``PerfHistory`` bucket seeding +
``suggest_blocking``).

The jit kernels re-associate the update reduction, so compiled results
are held to a pinned ``allclose`` bound; everything the fallback routes
through plain numpy is held to bit equality.  Tests that only make
sense on one side of the numba divide carry skip markers.
"""

import json

import numpy as np
import pytest

from repro.core.factorization import factorize_sequential
from repro.core.options import SolverOptions
from repro.dag import build_dag
from repro.kernels.compiled import (
    HAVE_NUMBA,
    fused_gemm_scatter,
    gather_assign,
    merge_add,
    resolve_kernels,
)
from repro.kernels.cost import flops_update, flops_update_part
from repro.runtime.threaded import factorize_threaded
from repro.runtime.tracing import ExecutionTrace
from repro.sparse.generators import grid_laplacian_2d
from repro.symbolic import SymbolicOptions, analyze
from repro.symbolic.splitting import plan_update_rowblocks, rowblock_bounds
from repro.verify.hazards import analyze_hazards
from repro.verify.symbols import stale_split, verify_dag_costs

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba not installed (the [compiled] extra)"
)
without_numba = pytest.mark.skipif(
    HAVE_NUMBA, reason="degradation contract only observable sans numba"
)

#: Pinned roundoff bound for compiled-vs-numpy factors: the fused jit
#: kernel re-associates each GEMM reduction but performs the same
#: number of multiply-adds, so the deviation stays at roundoff scale.
RTOL, ATOL = 1e-9, 1e-12


def _setup(mat, *, split_max_width=16):
    res = analyze(mat, SymbolicOptions(split_max_width=split_max_width))
    return res, mat.permute(res.perm.perm)


def _assert_factors_close(ref, got, *, exact):
    for k in range(ref.n_cblk):
        if exact:
            assert np.array_equal(ref.L[k], got.L[k]), f"panel {k}"
        else:
            assert np.allclose(ref.L[k], got.L[k], rtol=RTOL, atol=ATOL), (
                f"panel {k}: max dev "
                f"{np.max(np.abs(ref.L[k] - got.L[k])):.3e}"
            )
    if ref.D is not None:
        for k in range(ref.n_cblk):
            if exact:
                assert np.array_equal(ref.D[k], got.D[k])
            else:
                assert np.allclose(ref.D[k], got.D[k],
                                   rtol=RTOL, atol=ATOL)
    if getattr(ref, "U", None) is not None:
        for k in range(ref.n_cblk):
            if exact:
                assert np.array_equal(ref.U[k], got.U[k])
            else:
                assert np.allclose(ref.U[k], got.U[k],
                                   rtol=RTOL, atol=ATOL)


# ----------------------------------------------------------------------
# Backend selection and graceful degradation.
# ----------------------------------------------------------------------
def test_resolve_kernels():
    assert resolve_kernels("numpy") == "numpy"
    expected = "compiled" if HAVE_NUMBA else "numpy"
    assert resolve_kernels("compiled") == expected
    with pytest.raises(ValueError):
        resolve_kernels("fortran")


def test_solver_options_validate_kernels():
    assert SolverOptions(kernels="compiled").kernels == "compiled"
    with pytest.raises(ValueError):
        SolverOptions(kernels="cuda")


def test_trace_meta_stamps(grid2d_small):
    res, permuted = _setup(grid2d_small)
    trace = ExecutionTrace()
    factorize_threaded(
        res.symbol, permuted, "llt", n_workers=2, trace=trace,
        kernels="compiled", split_rows=8,
    )
    assert trace.meta["kernels"] == resolve_kernels("compiled")
    assert trace.meta["kernels_requested"] == "compiled"
    assert trace.meta["split_rows"] == 8


def test_trace_meta_numpy_default(grid2d_small):
    res, permuted = _setup(grid2d_small)
    trace = ExecutionTrace()
    factorize_threaded(res.symbol, permuted, "llt", n_workers=2,
                       trace=trace)
    assert trace.meta["kernels"] == "numpy"
    assert "split_rows" not in trace.meta


@without_numba
def test_sequential_compiled_degrades_bit_identically(grid2d_small):
    """Without numba, kernels="compiled" must be byte-equal to numpy."""
    res, permuted = _setup(grid2d_small)
    ref = factorize_sequential(res.symbol, permuted, "llt")
    deg = factorize_sequential(res.symbol, permuted, "llt",
                               kernels="compiled")
    assert deg.kernels == "numpy"
    _assert_factors_close(ref, deg, exact=True)


def test_numpy_kernels_bit_identical_threaded(grid2d_small):
    """kernels="numpy" is the bit-identity reference: a single-worker
    run (deterministic task order) must be byte-equal to the default
    path, with and without the 2D split."""
    res, permuted = _setup(grid2d_small)
    ref = factorize_threaded(res.symbol, permuted, "llt", n_workers=1)
    for split in (None, 8):
        got = factorize_threaded(
            res.symbol, permuted, "llt", n_workers=1,
            kernels="numpy", split_rows=split,
        )
        _assert_factors_close(ref, got, exact=True)


# ----------------------------------------------------------------------
# Compiled-vs-numpy tolerance across the matrix of configurations.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
@pytest.mark.parametrize("scheduler", ["ws", "priority"])
@pytest.mark.parametrize("accumulate", [False, True])
def test_compiled_matches_numpy(grid2d_medium, factotype, scheduler,
                                accumulate):
    res, permuted = _setup(grid2d_medium)
    ref = factorize_sequential(res.symbol, permuted, factotype)
    got = factorize_threaded(
        res.symbol, permuted, factotype, n_workers=4,
        scheduler=scheduler, accumulate=accumulate,
        kernels="compiled", split_rows=12,
    )
    # Without numba the fallback is exact numpy; the threaded update
    # order still commutes (disjoint scatters under the target mutex),
    # so only the jit path needs the roundoff allowance.
    _assert_factors_close(ref, got, exact=False)


@needs_numba
def test_jit_backend_really_selected(grid2d_small):
    res, permuted = _setup(grid2d_small)
    seq = factorize_sequential(res.symbol, permuted, "llt",
                               kernels="compiled")
    assert seq.kernels == "compiled"


# ----------------------------------------------------------------------
# The jit kernels' numpy twins (unit level).
# ----------------------------------------------------------------------
def test_fused_gemm_scatter_matches_reference():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((20, 6))
    b = rng.standard_normal((5, 6))
    rows = np.sort(rng.choice(40, size=20, replace=False)).astype(np.int64)
    cols = np.arange(5, dtype=np.int64)
    out = rng.standard_normal((40, 5))
    expect = out.copy()
    expect[np.ix_(rows, cols)] -= a @ b.T
    fused_gemm_scatter(a, b, out, rows, cols)
    assert np.allclose(out, expect, rtol=RTOL, atol=ATOL)
    if not HAVE_NUMBA:
        assert np.array_equal(out, expect)


def test_merge_and_gather_bit_identical():
    rng = np.random.default_rng(1)
    acc = np.zeros((30, 4))
    rows = np.sort(rng.choice(30, size=12, replace=False)).astype(np.int64)
    cols = np.arange(4, dtype=np.int64)
    contrib = rng.standard_normal((12, 4))
    expect = acc.copy()
    expect[np.ix_(rows, cols)] += contrib
    merge_add(acc, rows, cols, contrib)
    assert np.array_equal(acc, expect)

    panel = np.zeros((30, 4))
    vals = rng.standard_normal(12)
    cloc = np.zeros(12, dtype=np.int64)
    expect = panel.copy()
    expect[rows, cloc] = vals
    gather_assign(panel, rows, cloc, vals)
    assert np.array_equal(panel, expect)


# ----------------------------------------------------------------------
# Row-block tiling and the split DAG.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("m,max_rows", [(1, 1), (7, 3), (100, 100),
                                        (100, 99), (257, 64), (5, 100)])
def test_rowblock_bounds_tile_exactly(m, max_rows):
    bounds = rowblock_bounds(m, max_rows)
    assert bounds[0][0] == 0 and bounds[-1][1] == m
    for (lo, hi), (lo2, _hi2) in zip(bounds, bounds[1:]):
        assert hi == lo2
    sizes = [hi - lo for lo, hi in bounds]
    assert all(0 < s <= max_rows for s in sizes)
    # Near-equal: sizes differ by at most one row.
    assert max(sizes) - min(sizes) <= 1


def test_rowblock_bounds_edge_cases():
    assert rowblock_bounds(0, 8) == []
    with pytest.raises(ValueError):
        rowblock_bounds(10, 0)


def test_plan_update_rowblocks_covers_every_couple(grid2d_medium):
    from repro.dag.builder import update_couples

    res, _ = _setup(grid2d_medium)
    src, tgt, ms, _ns = update_couples(res.symbol)
    plan = plan_update_rowblocks(res.symbol, max_rows=8)
    assert len(plan) == src.size
    for i in range(src.size):
        parts = plan[(int(src[i]), int(tgt[i]))]
        assert parts[0][0] == 0 and parts[-1][1] == int(ms[i])


@pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
@pytest.mark.parametrize("recompute_ld", [False, True])
def test_split_dag_structure_and_flop_tiling(grid2d_medium, factotype,
                                             recompute_ld):
    from repro.dag.builder import update_couples

    res, _ = _setup(grid2d_medium)
    plain = build_dag(res.symbol, factotype, granularity="2d",
                      recompute_ld=recompute_ld)
    split = build_dag(res.symbol, factotype, granularity="2d",
                      recompute_ld=recompute_ld, split_rows=8)
    split.validate()
    assert split.split_rows == 8
    assert split.n_tasks > plain.n_tasks
    # Parts sum exactly to the unsplit couple's flops, for every couple.
    src, tgt, ms, ns = update_couples(res.symbol)
    widths = {int(s): res.symbol.cblk_width(int(s)) for s in src}
    totals: dict[tuple[int, int], float] = {}
    for t in range(split.n_tasks):
        lo = int(split.row_lo[t])
        if lo < 0:
            continue
        key = (int(split.cblk[t]), int(split.target[t]))
        totals[key] = totals.get(key, 0.0) + float(split.flops[t])
    for i in range(src.size):
        key = (int(src[i]), int(tgt[i]))
        # Real-dtype problem: complex multiplier is 1.
        expect = flops_update(
            int(ms[i]), int(ns[i]), widths[int(src[i])], factotype,
            recompute_ld=recompute_ld,
        )
        assert totals[key] == pytest.approx(expect, rel=1e-12), key
    assert split.flops.sum() == pytest.approx(plain.flops.sum(),
                                              rel=1e-12)


def test_flops_update_part_partition_identity():
    for factotype in ("llt", "ldlt", "lu"):
        for recompute_ld in (False, True):
            m, n, w = 37, 9, 5
            whole = flops_update(m, n, w, factotype,
                                 recompute_ld=recompute_ld)
            parts = sum(
                flops_update_part(m, n, w, factotype, lo, hi,
                                  recompute_ld=recompute_ld)
                for lo, hi in rowblock_bounds(m, 4)
            )
            assert parts == pytest.approx(whole, rel=1e-12)


def test_split_requires_plain_2d(grid2d_small):
    res, _ = _setup(grid2d_small)
    with pytest.raises(ValueError):
        build_dag(res.symbol, "llt", granularity="1d", split_rows=8)


# ----------------------------------------------------------------------
# Auditors on split DAGs: clean passes and seeded corruption.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
def test_auditors_clean_on_split_dag(grid2d_medium, factotype):
    res, _ = _setup(grid2d_medium)
    dag = build_dag(res.symbol, factotype, granularity="2d", split_rows=8)
    rep = verify_dag_costs(dag)
    assert rep.ok, rep.format()
    rep = analyze_hazards(dag)
    assert rep.ok, rep.format()


def test_stale_split_caught_by_both_auditors(grid2d_medium):
    res, _ = _setup(grid2d_medium)
    dag = build_dag(res.symbol, "llt", granularity="2d", split_rows=8)
    bad, task = stale_split(dag)
    assert bad.row_hi[task] == dag.row_hi[task] + 1
    hrep = analyze_hazards(bad)
    assert not hrep.ok
    assert "H110" in {f.code for f in hrep.findings}, hrep.format()
    srep = verify_dag_costs(bad)
    assert not srep.ok
    assert "N509" in {f.code for f in srep.findings}, srep.format()


def test_stale_split_rejects_unsplit_dag(grid2d_small):
    res, _ = _setup(grid2d_small)
    dag = build_dag(res.symbol, "llt", granularity="2d")
    with pytest.raises(ValueError):
        stale_split(dag)


# ----------------------------------------------------------------------
# Measured-rate blocking: bucket seeding + suggest_blocking.
# ----------------------------------------------------------------------
def _kernels_payload(rate_flops_s: float) -> dict:
    from repro.dag.tasks import TaskKind
    from repro.resilience.health import bucket_key

    buckets = {}
    for flops in (2.0**14, 2.0**17, 2.0**20):
        buckets[bucket_key(int(TaskKind.UPDATE), flops)] = [
            8.0, 8.0 * flops, 8.0 * flops / rate_flops_s,
        ]
    return {"bench": "kernels", "schema_version": 1, "cells": [],
            "buckets": buckets}


def test_seed_from_results_consumes_buckets(tmp_path):
    from repro.runtime.adaptive import PerfHistory

    path = tmp_path / "BENCH_kernels.json"
    path.write_text(json.dumps(_kernels_payload(2.0e9)))
    hist = PerfHistory()
    assert hist.seed_from_results(path) == 3
    assert hist.global_rate() == pytest.approx(2.0e9, rel=1e-6)


def test_suggest_blocking_from_measured_rates(tmp_path):
    from repro.runtime.adaptive import PerfHistory, suggest_blocking

    path = tmp_path / "BENCH_kernels.json"
    path.write_text(json.dumps(_kernels_payload(2.0e9)))
    hist = PerfHistory()
    hist.seed_from_results(path)
    out = suggest_blocking(hist, target_task_s=2e-3)
    w, rows = out["split_max_width"], out["split_rows"]
    assert 8 <= w <= 256
    assert w <= rows <= 4096
    assert out["rate_gflops"] > 0
    # Faster machine => coarser blocking (monotone in the rate).
    path.write_text(json.dumps(_kernels_payload(2.0e11)))
    fast = PerfHistory()
    fast.seed_from_results(path)
    out_fast = suggest_blocking(fast, target_task_s=2e-3)
    assert out_fast["split_max_width"] >= w
    assert out_fast["split_rows"] >= rows


def test_suggest_blocking_rejects_empty_history():
    from repro.runtime.adaptive import PerfHistory, suggest_blocking

    with pytest.raises(ValueError):
        suggest_blocking(PerfHistory())
    seeded = PerfHistory()
    seeded.observe("1:20", 1e6, 1e-3)
    with pytest.raises(ValueError):
        suggest_blocking(seeded, target_task_s=0.0)


def test_suggest_config_reports_kernels(tmp_path):
    from repro.runtime.adaptive import PerfHistory, suggest_config

    cells = [
        {"matrix": "audi", "scheduler": "ws", "n_workers": 4,
         "scale": 1.0, "variant": variant, "wall_s": wall, "flops": 1e9,
         "model_makespan_s": wall}
        for variant, wall in (("base", 1.0), ("opt", 0.8),
                              ("compiled", 0.6))
    ]
    path = tmp_path / "BENCH_threaded.json"
    path.write_text(json.dumps({"bench": "threaded", "cells": cells}))
    cfg = suggest_config("audi", path=path)
    assert cfg["kernels"] == "compiled"
    assert cfg["accumulate"] is True
