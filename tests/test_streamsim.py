"""Figure-3 stream-burst simulator tests."""

import pytest

from repro.machine.perfmodel import CUBLAS_PEAK_GFLOPS
from repro.machine.streamsim import simulate_kernel_burst


class TestBurst:
    def test_result_fields(self):
        r = simulate_kernel_burst("cublas", 1000, streams=2)
        assert r.kernel == "cublas" and r.streams == 2
        assert r.gflops > 0 and r.elapsed > 0
        assert r.n_calls == 100

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            simulate_kernel_burst("magma", 1000)

    def test_never_exceeds_peak(self):
        for m in (128, 1000, 10000):
            for s in (1, 2, 3):
                r = simulate_kernel_burst("cublas", m, streams=s)
                assert r.gflops <= CUBLAS_PEAK_GFLOPS

    def test_streams_help_small_kernels(self):
        """Paper: 'One stream always gives the worst performance. Adding
        a second stream increases the performance of all implementations
        and especially for small cases'."""
        for kern in ("cublas", "astra", "sparse"):
            r1 = simulate_kernel_burst(kern, 300, streams=1)
            r2 = simulate_kernel_burst(kern, 300, streams=2)
            assert r2.gflops > 1.3 * r1.gflops

    def test_third_stream_only_helps_small(self):
        """Paper: 'The third one is an improvement for matrices with M
        smaller than 1000, and is similar to two streams over 1000'."""
        small2 = simulate_kernel_burst("cublas", 400, streams=2)
        small3 = simulate_kernel_burst("cublas", 400, streams=3)
        assert small3.gflops > 1.05 * small2.gflops
        big2 = simulate_kernel_burst("cublas", 4000, streams=2)
        big3 = simulate_kernel_burst("cublas", 4000, streams=3)
        assert abs(big3.gflops - big2.gflops) < 0.1 * big2.gflops

    def test_kernel_ordering_everywhere(self):
        """cublas >= astra >= sparse across the sweep (Fig. 3 line order)."""
        for m in (128, 1000, 5000):
            for s in (1, 3):
                c = simulate_kernel_burst("cublas", m, streams=s).gflops
                a = simulate_kernel_burst("astra", m, streams=s).gflops
                sp = simulate_kernel_burst("sparse", m, streams=s).gflops
                assert c >= a >= sp

    def test_monotone_in_m_single_stream(self):
        prev = 0.0
        for m in (128, 500, 1000, 5000, 10000):
            g = simulate_kernel_burst("astra", m, streams=1).gflops
            assert g >= prev
            prev = g

    def test_height_ratio_degrades_sparse(self):
        flat = simulate_kernel_burst("sparse", 2000, height_ratio=1.0)
        tall = simulate_kernel_burst("sparse", 2000, height_ratio=3.0)
        assert tall.gflops < flat.gflops

    def test_work_conservation(self):
        r = simulate_kernel_burst("cublas", 1000, streams=3, n_calls=30)
        total = 2.0 * 1000 * 128 * 128 * 30
        assert r.gflops == pytest.approx(total / r.elapsed / 1e9)

    def test_bytes_touched_accounting(self):
        r = simulate_kernel_burst("cublas", 1000, n_calls=10)
        # Dense GEMM: A(m×k) + B(n×k) + C(m×n) doubles, per call.
        m, n, k = 1000, 128, 128
        per_call = 8.0 * (m * k + n * k + m * n)
        assert r.bytes_touched == pytest.approx(per_call * 10)

    def test_sparse_kernel_touches_fewer_c_bytes(self):
        dense = simulate_kernel_burst("cublas", 2000, n_calls=10)
        sparse = simulate_kernel_burst("sparse", 2000, n_calls=10,
                                       height_ratio=0.5)
        # The sparse kernel only scatters into the compacted rows, so
        # its C traffic shrinks with the height ratio.
        assert sparse.bytes_touched < dense.bytes_touched
