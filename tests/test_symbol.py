"""Block symbolic structure (SymbolMatrix) and splitting tests."""

import numpy as np
import pytest

from repro.symbolic import analyze, SymbolicOptions
from repro.symbolic.splitting import split_supernodes
from repro.symbolic.structures import build_symbol


class TestBuildSymbol:
    def test_validates_on_grids(self, grid2d_small, grid3d_small):
        for mat in (grid2d_small, grid3d_small):
            res = analyze(mat)
            res.symbol.validate()

    def test_nnz_exact_without_amalgamation(self, grid2d_medium):
        res = analyze(
            grid2d_medium,
            SymbolicOptions(amalgamation_ratio=None, split_max_width=None),
        )
        assert res.symbol.nnz() == res.counts.sum()

    def test_nnz_lu_counts_both_factors(self, grid2d_small):
        res = analyze(grid2d_small)
        lower = res.symbol.nnz(factotype="llt")
        assert res.symbol.nnz(factotype="lu") == 2 * lower - res.n

    def test_nnz_rejects_unknown(self, grid2d_small):
        with pytest.raises(ValueError):
            analyze(grid2d_small).symbol.nnz(factotype="qr")

    def test_diagonal_blok_first(self, grid2d_small):
        sym = analyze(grid2d_small).symbol
        for k in range(sym.n_cblk):
            d = sym.blok(int(sym.blok_ptr[k]))
            assert d.frow == sym.cblk_ptr[k]
            assert d.lrow == sym.cblk_ptr[k + 1]
            assert d.face == k

    def test_cblk_rows_sorted(self, grid2d_small):
        sym = analyze(grid2d_small).symbol
        for k in range(sym.n_cblk):
            rows = sym.cblk_rows(k)
            assert np.all(np.diff(rows) > 0)
            assert rows.size == sym.cblk_height(k)

    def test_facing_lists_consistent(self, grid2d_small):
        sym = analyze(grid2d_small).symbol
        for k in range(sym.n_cblk):
            for b in sym.facing_bloks(k):
                assert sym.blok_face[b] == k
                assert sym.blok_owner[b] != k
        total_off = sum(
            sym.facing_bloks(k).size for k in range(sym.n_cblk)
        )
        assert total_off == np.count_nonzero(sym.blok_face != sym.blok_owner)

    def test_col2cblk(self, grid2d_small):
        sym = analyze(grid2d_small).symbol
        for k in range(sym.n_cblk):
            cols = np.arange(sym.cblk_ptr[k], sym.cblk_ptr[k + 1])
            assert np.all(sym.col2cblk[cols] == k)

    def test_validate_catches_broken_face(self, grid2d_small):
        sym = analyze(grid2d_small).symbol
        off = np.flatnonzero(sym.blok_face != sym.blok_owner)
        if off.size:
            sym.blok_face[off[0]] = int(sym.blok_owner[off[0]])
            with pytest.raises(AssertionError):
                sym.validate()


class TestSplitting:
    def _base(self, mat, **kw):
        return analyze(mat, SymbolicOptions(split_max_width=None, **kw))

    def test_split_bounds_widths(self, grid2d_medium):
        res = self._base(grid2d_medium)
        snptr = res.symbol.cblk_ptr
        rowsets = [
            res.symbol.cblk_rows(k)[res.symbol.cblk_width(k):]
            for k in range(res.symbol.n_cblk)
        ]
        s2, r2 = split_supernodes(snptr, rowsets, max_width=8)
        assert np.diff(s2).max() <= 8
        sym2 = build_symbol(res.n, s2, r2)
        sym2.validate()

    def test_split_preserves_nnz_plus_intra(self, grid2d_small):
        # Splitting adds no structural entries: the union of the panels'
        # (cols x rows) regions is exactly the original supernode region.
        full = analyze(grid2d_small, SymbolicOptions(split_max_width=None))
        split = analyze(grid2d_small, SymbolicOptions(split_max_width=4))
        assert split.symbol.nnz() == full.symbol.nnz()

    def test_split_increases_cblk_count(self, grid2d_medium):
        full = analyze(grid2d_medium, SymbolicOptions(split_max_width=None))
        split = analyze(grid2d_medium, SymbolicOptions(split_max_width=8))
        assert split.symbol.n_cblk > full.symbol.n_cblk

    def test_min_panels_forces_decomposition(self, grid2d_small):
        one = analyze(grid2d_small, SymbolicOptions(split_max_width=1000))
        forced = analyze(
            grid2d_small,
            SymbolicOptions(split_max_width=1000, min_panels=2),
        )
        assert forced.symbol.n_cblk > one.symbol.n_cblk

    def test_split_never_exceeds_columns(self):
        # max_width=1: every panel is a single column.
        snptr = np.array([0, 5], dtype=np.int64)
        rowsets = [np.array([7, 9], dtype=np.int64)]
        s2, r2 = split_supernodes(snptr, rowsets, max_width=1)
        assert np.array_equal(s2, [0, 1, 2, 3, 4, 5])
        assert np.array_equal(r2[0], [1, 2, 3, 4, 7, 9])
        assert np.array_equal(r2[-1], [7, 9])

    def test_bad_width(self):
        with pytest.raises(ValueError):
            split_supernodes(np.array([0, 3]), [np.empty(0, np.int64)],
                             max_width=0)
