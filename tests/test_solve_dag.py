"""Solve-phase DAG tests."""

import numpy as np
import pytest

from repro.dag import build_dag, build_solve_dag, critical_path, update_couples
from repro.dag.tasks import TaskKind
from repro.machine import mirage, simulate
from repro.runtime import get_policy
from repro.symbolic import analyze


@pytest.fixture(scope="module")
def sym(grid2d_medium):
    return analyze(grid2d_medium).symbol


@pytest.fixture(scope="module")
def sdag(sym):
    return build_solve_dag(sym, "llt")


class TestStructure:
    def test_task_count(self, sym, sdag):
        n_upd = update_couples(sym)[0].size
        assert sdag.n_tasks == 2 * (sym.n_cblk + n_upd)
        assert sdag.phase == "solve"

    def test_acyclic_and_valid(self, sdag):
        sdag.validate()

    def test_forward_before_backward(self, sym, sdag):
        """Pf(k) -> Pb(k) edges join the two sweeps."""
        n_upd = update_couples(sym)[0].size
        K = sym.n_cblk
        for k in range(K):
            assert (K + n_upd + k) in sdag.successors(k)

    def test_backward_edges_reversed(self, sym, sdag):
        """Backward updates depend on the *target* panel's backward task."""
        src, tgt, _, _ = update_couples(sym)
        K = sym.n_cblk
        n_upd = src.size
        for i in range(min(n_upd, 50)):
            ub = 2 * K + n_upd + i
            pb_tgt = K + n_upd + int(tgt[i])
            assert ub in sdag.successors(pb_tgt)

    def test_flops_scale_with_nrhs(self, sym):
        one = build_solve_dag(sym, "llt", nrhs=1)
        four = build_solve_dag(sym, "llt", nrhs=4)
        assert four.total_flops() == pytest.approx(4 * one.total_flops())

    def test_complex_multiplier(self, sym):
        real = build_solve_dag(sym, "ldlt", dtype=np.float64)
        cplx = build_solve_dag(sym, "ldlt", dtype=np.complex128)
        assert cplx.total_flops() == pytest.approx(4 * real.total_flops())

    def test_solve_flops_much_smaller_than_facto(self):
        # On a 3D problem the solve is a small fraction of the
        # factorization (O(nnz) vs O(n²)-ish).
        from repro.sparse.generators import grid_laplacian_3d

        sym3 = analyze(grid_laplacian_3d(10, jitter=0.05, seed=2)).symbol
        facto = build_dag(sym3, "llt")
        solve = build_solve_dag(sym3, "llt")
        assert solve.total_flops() < 0.1 * facto.total_flops()


class TestSimulation:
    @pytest.mark.parametrize("policy", ["native", "parsec", "starpu"])
    def test_schedule_valid(self, sdag, policy):
        r = simulate(sdag, mirage(n_cores=4), get_policy(policy))
        r.trace.validate(sdag)
        assert len(r.trace.events) == sdag.n_tasks

    def test_nothing_runs_on_gpu(self, sdag):
        r = simulate(sdag, mirage(n_cores=4, n_gpus=2), get_policy("parsec"))
        assert all(not e.resource.startswith("gpu") for e in r.trace.events)

    def test_solve_throughput_far_below_facto(self, sym, sdag):
        """The solve phase is bandwidth-bound: its achieved GFlop/s on 12
        cores must sit far below the factorization's."""
        fdag = build_dag(sym, "llt")
        gf_facto = simulate(fdag, mirage(12), get_policy("parsec"),
                            collect_trace=False).gflops
        gf_solve = simulate(sdag, mirage(12), get_policy("parsec"),
                            collect_trace=False).gflops
        assert gf_solve < 0.4 * gf_facto

    def test_critical_path_two_sweeps(self, sym, sdag):
        """The solve critical path spans both triangular sweeps: it is at
        least twice the depth of the supernode tree in panel tasks."""
        _, path = critical_path(sdag)
        panel_tasks = [t for t in path if sdag.kind[t] != TaskKind.UPDATE]
        assert len(panel_tasks) >= 4
