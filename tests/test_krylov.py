"""Krylov solver tests (GMRES / CG / BiCGstab, with and without the
direct factorization as preconditioner)."""

import numpy as np
import pytest

from repro import SolverOptions, SparseSolver
from repro.core.krylov import bicgstab, conjugate_gradient, gmres
from repro.sparse.csc import SparseMatrixCSC
from tests.conftest import random_spd_dense


@pytest.fixture(scope="module")
def spd_system():
    d = random_spd_dense(50, 0.3, 7)
    m = SparseMatrixCSC.from_dense(d)
    b = np.random.default_rng(1).standard_normal(50)
    return m, b


@pytest.fixture(scope="module")
def unsym_system():
    rng = np.random.default_rng(2)
    d = rng.standard_normal((40, 40)) * (rng.random((40, 40)) < 0.3)
    np.fill_diagonal(d, np.abs(d).sum(axis=1) + 2.0)
    m = SparseMatrixCSC.from_dense(d)
    b = rng.standard_normal(40)
    return m, b


class TestUnpreconditioned:
    def test_gmres_solves_spd(self, spd_system):
        m, b = spd_system
        r = gmres(m, b, tol=1e-10, max_iter=300)
        assert r.converged
        assert np.allclose(m.matvec(r.x), b, atol=1e-7)

    def test_cg_solves_spd(self, spd_system):
        m, b = spd_system
        r = conjugate_gradient(m, b, tol=1e-10)
        assert r.converged
        assert np.allclose(m.matvec(r.x), b, atol=1e-7)

    def test_bicgstab_solves_unsym(self, unsym_system):
        m, b = unsym_system
        r = bicgstab(m, b, tol=1e-10)
        assert r.converged
        assert np.allclose(m.matvec(r.x), b, atol=1e-7)

    def test_gmres_solves_unsym(self, unsym_system):
        m, b = unsym_system
        r = gmres(m, b, tol=1e-10)
        assert r.converged

    def test_gmres_complex(self):
        rng = np.random.default_rng(3)
        d = rng.standard_normal((20, 20)) + 1j * rng.standard_normal((20, 20))
        d += np.diag(np.full(20, 20.0))
        m = SparseMatrixCSC.from_dense(d)
        b = rng.standard_normal(20) + 1j * rng.standard_normal(20)
        r = gmres(m, b, tol=1e-10)
        assert r.converged
        assert np.allclose(m.matvec(r.x), b, atol=1e-6)

    def test_bicgstab_complex(self):
        rng = np.random.default_rng(4)
        d = rng.standard_normal((20, 20)) + 1j * rng.standard_normal((20, 20))
        d += np.diag(np.full(20, 20.0))
        m = SparseMatrixCSC.from_dense(d)
        b = rng.standard_normal(20) + 0j
        r = bicgstab(m, b, tol=1e-10)
        assert r.converged

    def test_zero_rhs(self, spd_system):
        m, _ = spd_system
        for solver in (gmres, conjugate_gradient, bicgstab):
            r = solver(m, np.zeros(50))
            assert r.converged and np.all(r.x == 0)

    def test_history_decreases_overall(self, spd_system):
        m, b = spd_system
        r = conjugate_gradient(m, b, tol=1e-12)
        assert r.history[-1] < r.history[0]

    def test_max_iter_cap(self, spd_system):
        m, b = spd_system
        r = conjugate_gradient(m, b, tol=1e-16, max_iter=2)
        assert not r.converged
        assert r.iterations <= 2

    def test_x0_used(self, spd_system):
        m, b = spd_system
        exact = np.linalg.solve(m.to_dense(), b)
        r = gmres(m, b, x0=exact, tol=1e-10)
        assert r.iterations == 0


class TestPreconditioned:
    def test_gmres_with_exact_preconditioner(self, spd_system):
        m, b = spd_system
        inv = np.linalg.inv(m.to_dense())
        r = gmres(m, b, precondition=lambda v: inv @ v, tol=1e-12)
        assert r.converged
        assert r.iterations <= 2  # exact M: one Krylov step suffices

    def test_cg_preconditioned_faster(self, spd_system):
        m, b = spd_system
        plain = conjugate_gradient(m, b, tol=1e-10)
        diag = m.diagonal()
        jacobi = conjugate_gradient(
            m, b, precondition=lambda v: v / diag, tol=1e-10
        )
        assert jacobi.converged
        assert jacobi.iterations <= plain.iterations + 2


class TestSolverIntegration:
    @pytest.mark.parametrize("method", ["gmres", "bicgstab", "cg"])
    def test_solver_methods(self, grid2d_small, method):
        s = SparseSolver(grid2d_small)
        b = np.random.default_rng(5).standard_normal(grid2d_small.n_rows)
        x = s.solve(b, method=method)
        assert s.residual_norm(x, b) < 1e-9
        # Direct factorization preconditioner => almost immediate.
        assert s.last_refinement.iterations <= 3

    def test_solver_method_none(self, grid2d_small):
        s = SparseSolver(grid2d_small)
        b = np.ones(grid2d_small.n_rows)
        x = s.solve(b, method="none")
        assert s.residual_norm(x, b) < 1e-10

    def test_unknown_method(self, grid2d_small):
        s = SparseSolver(grid2d_small)
        with pytest.raises(ValueError):
            s.solve(np.ones(grid2d_small.n_rows), method="sor")

    def test_gmres_on_complex_system(self, helmholtz_small):
        s = SparseSolver(helmholtz_small, SolverOptions(factotype="lu"))
        rng = np.random.default_rng(6)
        b = rng.standard_normal(helmholtz_small.n_rows) * (1 + 1j)
        x = s.solve(b, method="gmres")
        assert s.residual_norm(x, b) < 1e-9
