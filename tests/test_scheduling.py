"""Unit tests for the pluggable thread schedulers and their plumbing."""

import numpy as np
import pytest

from repro.dag import build_dag, longest_path_levels
from repro.dag.analysis import critical_path
from repro.dag.tasks import TaskKind
from repro.runtime.scheduling import (
    THREAD_SCHEDULERS,
    CriticalPathScheduler,
    GlobalFifoScheduler,
    InversePriorityScheduler,
    LastPanelAffinityScheduler,
    ThreadScheduler,
    WorkStealingScheduler,
    get_thread_scheduler,
)
from repro.symbolic import analyze


@pytest.fixture(scope="module")
def dag(grid2d_small):
    res = analyze(grid2d_small)
    return build_dag(res.symbol, "llt", granularity="2d")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_names_resolve(self):
        for name, cls in THREAD_SCHEDULERS.items():
            sched = get_thread_scheduler(name)
            assert isinstance(sched, cls)
            assert sched.name == name

    def test_instance_passthrough(self):
        inst = GlobalFifoScheduler()
        assert get_thread_scheduler(inst) is inst

    def test_class_is_instantiated(self):
        assert isinstance(
            get_thread_scheduler(WorkStealingScheduler),
            WorkStealingScheduler,
        )

    def test_unknown_name_lists_registry(self):
        with pytest.raises(KeyError, match="fifo"):
            get_thread_scheduler("lottery")

    def test_expected_policies_registered(self):
        assert {"fifo", "ws", "priority", "affinity"} <= set(
            THREAD_SCHEDULERS
        )


# ----------------------------------------------------------------------
# longest-path levels
# ----------------------------------------------------------------------
class TestLongestPathLevels:
    def test_levels_bound_by_own_weight_and_edges(self, dag):
        levels = longest_path_levels(dag)
        assert levels.shape == (dag.n_tasks,)
        assert np.all(levels >= np.maximum(dag.flops, 0))
        for t in range(dag.n_tasks):
            for s in dag.successors(t):
                # level is the task's own weight plus the heaviest
                # downstream chain, so every edge obeys the recurrence.
                assert levels[t] >= dag.flops[t] + levels[s] - 1e-9

    def test_max_level_is_critical_path(self, dag):
        levels = longest_path_levels(dag)
        cp_len, _ = critical_path(dag)
        assert np.isclose(levels.max(), cp_len)

    def test_custom_weights(self, dag):
        unit = np.ones(dag.n_tasks)
        levels = longest_path_levels(dag, weights=unit)
        # Unit weights turn the level into (longest chain length in
        # tasks); sinks sit at exactly 1.
        sinks = [t for t in range(dag.n_tasks) if dag.successors(t).size == 0]
        assert sinks and all(levels[t] == 1.0 for t in sinks)
        assert levels.max() >= levels.min() >= 1.0


# ----------------------------------------------------------------------
# scheduler contract: everything pushed comes out exactly once
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(THREAD_SCHEDULERS))
def test_exactly_once_drain(dag, name):
    sched = get_thread_scheduler(name)
    sched.bind(dag, n_workers=3)
    for t in range(dag.n_tasks):
        hint = sched.push(t, -1)
        assert -1 <= hint < 3
    assert sched.has_work()
    popped = []
    worker = 0
    while True:
        t = sched.pop(worker)
        if t is None:
            break
        popped.append(t)
        worker = (worker + 1) % 3
    assert sorted(popped) == list(range(dag.n_tasks))
    assert not sched.has_work()
    assert sched.pop(0) is None


@pytest.mark.parametrize("name", sorted(THREAD_SCHEDULERS))
def test_rebind_resets_state(dag, name):
    sched = get_thread_scheduler(name)
    sched.bind(dag, n_workers=2)
    sched.push(0, -1)
    sched.bind(dag, n_workers=2)  # re-bind: queue must be empty again
    assert not sched.has_work()
    assert sched.snapshot() == []


# ----------------------------------------------------------------------
# policy-specific behaviour
# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_pops_highest_level_first(self, dag):
        sched = CriticalPathScheduler()
        sched.bind(dag, n_workers=1)
        levels = longest_path_levels(dag)
        for t in range(dag.n_tasks):
            sched.push(t, -1)
        order = [sched.pop(0) for _ in range(dag.n_tasks)]
        got = levels[np.array(order)]
        assert np.all(got[:-1] >= got[1:] - 1e-9)

    def test_inverse_pops_lowest_first(self, dag):
        sched = InversePriorityScheduler()
        sched.bind(dag, n_workers=1)
        levels = longest_path_levels(dag)
        for t in range(dag.n_tasks):
            sched.push(t, -1)
        order = [sched.pop(0) for _ in range(dag.n_tasks)]
        got = levels[np.array(order)]
        assert np.all(got[:-1] <= got[1:] + 1e-9)


class TestWorkStealing:
    def test_local_pop_is_lifo(self, dag):
        sched = WorkStealingScheduler()
        sched.bind(dag, n_workers=2)
        for t in (0, 1, 2):
            assert sched.push(t, 0) == 0  # routed to the pushing worker
        assert sched.pop(0) == 2  # own deque: newest first

    def test_steal_takes_oldest(self, dag):
        sched = WorkStealingScheduler()
        sched.bind(dag, n_workers=2)
        for t in (0, 1, 2):
            sched.push(t, 0)
        assert sched.pop(1) == 0  # victim's cold end: oldest first
        assert sched.stats()["steals"] == 1

    def test_initial_seeding_round_robins(self, dag):
        sched = WorkStealingScheduler()
        sched.bind(dag, n_workers=3)
        hints = [sched.push(t, -1) for t in range(6)]
        assert hints == [0, 1, 2, 0, 1, 2]

    def test_victim_order_is_seeded(self, dag):
        a = WorkStealingScheduler()
        b = WorkStealingScheduler()
        a.bind(dag, n_workers=4)
        b.bind(dag, n_workers=4)
        for _ in range(5):
            a._rngs[0].shuffle(a._victims[0])
            b._rngs[0].shuffle(b._victims[0])
            assert a._victims[0] == b._victims[0]


class TestAffinity:
    def test_update_routes_to_last_toucher(self, dag):
        updates = [
            t for t in range(dag.n_tasks)
            if int(dag.kind[t]) == int(TaskKind.UPDATE)
        ]
        assert updates, "2d DAG must contain update tasks"
        u = updates[0]
        panel = int(dag.target[u])

        sched = LastPanelAffinityScheduler()
        sched.bind(dag, n_workers=3)
        # Nobody touched the panel yet: falls back to ws routing.
        assert sched.push(u, 1) == 1
        assert sched.pop(1) == u
        # Worker 2 touches the panel; the same update re-pushed from
        # worker 1 must now land on worker 2's deque.
        sched.on_complete(u, 2)
        assert sched.push(u, 1) == 2
        assert sched.pop(2) == u
        assert sched.stats()["affine_routes"] == 1
        assert panel == int(dag.target[u])

    def test_panel_completion_claims_ownership(self, dag):
        panels = [
            t for t in range(dag.n_tasks)
            if int(dag.kind[t]) != int(TaskKind.UPDATE)
        ]
        sched = LastPanelAffinityScheduler()
        sched.bind(dag, n_workers=2)
        p = panels[0]
        sched.on_complete(p, 1)
        assert sched._owner[int(dag.target[p])] == 1


# ----------------------------------------------------------------------
# provenance: trace.meta stamp + S208 audit
# ----------------------------------------------------------------------
class TestProvenance:
    def test_threaded_run_stamps_meta(self, grid2d_small):
        from repro.runtime.threaded import factorize_threaded
        from repro.runtime.tracing import ExecutionTrace

        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        trace = ExecutionTrace()
        factorize_threaded(
            res.symbol, permuted, "llt", n_workers=2,
            trace=trace, scheduler="priority",
        )
        assert trace.meta["scheduler"] == "priority"
        assert trace.meta["n_workers"] == 2

    def test_verifier_accepts_known_scheduler(self, dag, grid2d_small):
        from repro.runtime.threaded import factorize_threaded
        from repro.runtime.tracing import ExecutionTrace
        from repro.verify import verify_schedule

        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        trace = ExecutionTrace()
        factorize_threaded(
            res.symbol, permuted, "llt", n_workers=2,
            trace=trace, scheduler="ws",
        )
        report = verify_schedule(
            dag, trace, exclusive_resources=[], check_mutex=False, tol=1e-5
        )
        assert report.ok
        assert report.stats["scheduler"] == "ws"

    def test_verifier_flags_unknown_scheduler(self, dag, grid2d_small):
        from repro.runtime.threaded import factorize_threaded
        from repro.runtime.tracing import ExecutionTrace
        from repro.verify import verify_schedule

        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        trace = ExecutionTrace()
        factorize_threaded(
            res.symbol, permuted, "llt", n_workers=2, trace=trace,
        )
        trace.meta["scheduler"] = "lottery"
        report = verify_schedule(
            dag, trace, exclusive_resources=[], check_mutex=False, tol=1e-5
        )
        assert not report.ok
        assert any(f.code == "S208" for f in report.findings)


# ----------------------------------------------------------------------
# custom scheduler injection
# ----------------------------------------------------------------------
def test_custom_scheduler_instance(grid2d_small):
    """factorize_threaded accepts a ThreadScheduler instance directly."""
    from repro.core.factorization import factorize_sequential
    from repro.runtime.threaded import factorize_threaded

    class NoisyFifo(GlobalFifoScheduler):
        name = "fifo"  # keep a registered name for the S208 audit

        def setup(self):
            super().setup()
            self.pushes = 0

        def push(self, task, worker):
            self.pushes += 1
            return super().push(task, worker)

    res = analyze(grid2d_small)
    permuted = grid2d_small.permute(res.perm.perm)
    sched = NoisyFifo()
    ref = factorize_sequential(res.symbol, permuted, "llt")
    par = factorize_threaded(
        res.symbol, permuted, "llt", n_workers=2, scheduler=sched
    )
    assert sched.pushes > 0
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)
    assert isinstance(sched, ThreadScheduler)
