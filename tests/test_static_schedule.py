"""Static (analysis-time) scheduling tests."""

import numpy as np
import pytest

from repro.dag import build_dag, critical_path
from repro.machine import mirage, simulate
from repro.runtime import get_policy
from repro.runtime.static_schedule import (
    StaticPolicy,
    StaticSchedule,
    static_schedule,
)
from repro.symbolic import analyze


@pytest.fixture(scope="module")
def dag(grid2d_medium):
    return build_dag(analyze(grid2d_medium).symbol, "llt")


@pytest.fixture(scope="module")
def durations(dag):
    # Simple duration model: proportional to flops with a floor.
    return dag.flops / 5e9 + 1e-7


@pytest.fixture(scope="module")
def model_durations(dag):
    """Durations matching the machine simulator's CPU model."""
    from repro.dag.tasks import TaskKind
    from repro.machine.perfmodel import CpuPerfModel

    cm = CpuPerfModel()
    peak = 10.68e9
    sym = dag.symbol
    widths = np.diff(sym.cblk_ptr)
    out = np.empty(dag.n_tasks)
    for t in range(dag.n_tasks):
        if dag.kind[t] == TaskKind.UPDATE:
            eff = cm.update_eff(
                int(dag.gemm_m[t]), int(dag.gemm_n[t]), int(dag.gemm_k[t])
            )
        else:
            k = int(dag.cblk[t])
            eff = cm.panel_eff(float(widths[k]), float(sym.cblk_below(k)))
        out[t] = dag.flops[t] / (peak * eff)
    return out


class TestListScheduling:
    def test_all_tasks_assigned(self, dag, durations):
        s = static_schedule(dag, durations, 4)
        assert np.all(s.core_of >= 0)
        assert np.all(s.core_of < 4)
        total = sum(s.core_list(c).size for c in range(4))
        assert total == dag.n_tasks

    def test_predicted_starts_respect_deps(self, dag, durations):
        s = static_schedule(dag, durations, 4)
        for t in range(dag.n_tasks):
            for succ in dag.successors(t):
                assert s.start[succ] >= s.start[t] + durations[t] - 1e-12

    def test_no_core_overlap(self, dag, durations):
        s = static_schedule(dag, durations, 3)
        for c in range(3):
            tasks = s.core_list(c)
            ends = s.start[tasks] + durations[tasks]
            assert np.all(s.start[tasks][1:] >= ends[:-1] - 1e-12)

    def test_makespan_at_least_critical_path(self, dag, durations):
        s = static_schedule(dag, durations, 16)
        cp, _ = critical_path(dag, weights=durations)
        assert s.makespan >= cp - 1e-12

    def test_more_cores_never_longer(self, dag, durations):
        m = [static_schedule(dag, durations, c).makespan for c in (1, 2, 4, 8)]
        for slow, fast in zip(m, m[1:]):
            assert fast <= slow * 1.01

    def test_single_core_is_serial_sum(self, dag, durations):
        s = static_schedule(dag, durations, 1)
        assert s.makespan == pytest.approx(durations.sum())

    def test_validation(self, dag, durations):
        with pytest.raises(ValueError):
            static_schedule(dag, durations[:-1], 2)
        with pytest.raises(ValueError):
            static_schedule(dag, durations, 0)


class TestReplay:
    def test_replay_trace_valid(self, dag, durations):
        plan = static_schedule(dag, durations, 4)
        r = simulate(dag, mirage(n_cores=4), StaticPolicy(plan))
        r.trace.validate(dag)
        assert len(r.trace.events) == dag.n_tasks

    def test_replay_with_stealing_valid(self, dag, durations):
        plan = static_schedule(dag, durations, 4)
        r = simulate(
            dag, mirage(n_cores=4), StaticPolicy(plan, work_stealing=True)
        )
        r.trace.validate(dag)

    def test_plan_prediction_vs_dynamic_execution(self, dag, model_durations):
        """The paper's historical narrative in one test: the cost-model
        *prediction* is excellent (within the dynamic scheduler's actual
        makespan), but a strict replay is brittle — even small unmodelled
        effects (per-task overhead, cache bonus, mutex reordering) cost
        tens of percent, which is why PaStiX added dynamic scheduling."""
        plan = static_schedule(dag, model_durations, 8)
        t_dyn = simulate(
            dag, mirage(n_cores=8), get_policy("native"), collect_trace=False
        ).makespan
        assert plan.makespan <= 1.05 * t_dyn  # the model's promise...
        t_static = simulate(
            dag, mirage(n_cores=8), StaticPolicy(plan, work_stealing=True),
            collect_trace=False,
        ).makespan
        assert t_static <= 1.8 * t_dyn        # ...its brittle delivery
        assert t_static >= t_dyn              # dynamic never loses here

    def test_stealing_absorbs_model_error(self, dag, durations):
        """Plan with badly perturbed durations: work stealing must not
        hurt, and typically recovers part of the damage (the paper's
        motivation for the dynamic NUMA scheduler)."""
        rng = np.random.default_rng(5)
        wrong = durations * rng.uniform(0.2, 5.0, size=durations.size)
        plan = static_schedule(dag, wrong, 8)
        t_rigid = simulate(
            dag, mirage(n_cores=8), StaticPolicy(plan), collect_trace=False
        ).makespan
        t_steal = simulate(
            dag, mirage(n_cores=8), StaticPolicy(plan, work_stealing=True),
            collect_trace=False,
        ).makespan
        assert t_steal <= t_rigid * 1.001

    def test_fewer_sim_cores_than_planned(self, dag, durations):
        """Plans fold gracefully onto fewer cores (modulo placement)."""
        plan = static_schedule(dag, durations, 8)
        r = simulate(dag, mirage(n_cores=3), StaticPolicy(plan))
        r.trace.validate(dag)
