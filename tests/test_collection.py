"""Table-I matrix collection tests."""

import numpy as np
import pytest

from repro.sparse.collection import (
    MATRIX_COLLECTION,
    collection_names,
    load_matrix,
)


class TestRegistry:
    def test_nine_entries_in_paper_order(self):
        names = collection_names()
        assert len(names) == 9
        assert names[0] == "afshell10"
        assert names[-1] == "Serena"

    def test_paper_stats_recorded(self):
        info = MATRIX_COLLECTION["Serena"]
        assert info.paper_tflop == 47.0
        assert info.paper_size == 1.4e6
        assert info.method == "LDLT"

    def test_precisions(self):
        assert MATRIX_COLLECTION["FilterV2"].prec == "Z"
        assert MATRIX_COLLECTION["pmlDF"].dtype == np.complex128
        assert MATRIX_COLLECTION["audi"].dtype == np.float64

    def test_methods_match_paper(self):
        expected = {
            "afshell10": "LU", "FilterV2": "LU", "Flan": "LLT",
            "audi": "LLT", "MHD": "LU", "Geo1438": "LLT",
            "pmlDF": "LDLT", "HOOK": "LU", "Serena": "LDLT",
        }
        for name, method in expected.items():
            assert MATRIX_COLLECTION[name].method == method

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown matrix"):
            load_matrix("bcsstk01")


class TestGeneration:
    @pytest.mark.parametrize("name", collection_names())
    def test_builds_small_scale(self, name):
        m = load_matrix(name, scale=0.25)
        m.check()
        assert m.is_square
        assert m.dtype == MATRIX_COLLECTION[name].dtype
        # symmetric pattern (required by the analysis)
        s = m.symmetrize_pattern()
        assert s.nnz == m.pattern().nnz

    def test_deterministic(self):
        a = load_matrix("audi", scale=0.3)
        b = load_matrix("audi", scale=0.3)
        assert np.array_equal(a.values, b.values)

    def test_seed_changes_values(self):
        a = load_matrix("audi", scale=0.3, seed=0)
        b = load_matrix("audi", scale=0.3, seed=1)
        assert not np.array_equal(a.values, b.values)

    def test_scale_grows_problem(self):
        small = load_matrix("Geo1438", scale=0.2)
        large = load_matrix("Geo1438", scale=0.4)
        assert large.n_rows > 4 * small.n_rows  # 3D: ~scale³

    def test_complex_entries_are_complex_symmetric(self):
        m = load_matrix("pmlDF", scale=0.2)
        d = m.to_dense()
        assert np.allclose(d, d.T)
        assert np.abs(d.imag).max() > 0


class TestSolvability:
    @pytest.mark.parametrize("name", ["afshell10", "audi", "MHD", "pmlDF"])
    def test_factorizable_at_tiny_scale(self, name):
        from repro import SolverOptions, SparseSolver

        info = MATRIX_COLLECTION[name]
        m = load_matrix(name, scale=0.12)
        s = SparseSolver(m, SolverOptions(factotype=info.method.lower()))
        rng = np.random.default_rng(0)
        b = rng.standard_normal(m.n_rows).astype(info.dtype)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-10
