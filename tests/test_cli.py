"""CLI (`python -m repro`) tests."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.sparse.io import write_matrix_market


@pytest.fixture()
def mtx_file(tmp_path, grid2d_small):
    path = tmp_path / "grid.mtx"
    write_matrix_market(grid2d_small, path)
    return str(path)


def test_analyze_command(mtx_file, capsys):
    assert main(["analyze", mtx_file]) == 0
    out = capsys.readouterr().out
    assert "nnz(L)" in out and "parallelism" in out


def test_solve_command(mtx_file, capsys, tmp_path):
    out_file = tmp_path / "x.txt"
    assert main(["solve", mtx_file, "--output", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "residual" in out
    x = np.loadtxt(out_file)
    assert x.size > 0


def test_solve_with_rhs(mtx_file, tmp_path, grid2d_small, capsys):
    from repro.sparse.csc import coo_to_csc

    n = grid2d_small.n_rows
    rhs = coo_to_csc(n, 1, np.arange(n), np.zeros(n, dtype=np.int64),
                     np.linspace(1, 2, n))
    rhs_path = tmp_path / "b.mtx"
    write_matrix_market(rhs, rhs_path)
    assert main(["solve", mtx_file, "--rhs", str(rhs_path)]) == 0
    out = capsys.readouterr().out
    assert "residual: " in out
    resid = float(out.split("residual: ")[1].split()[0])
    assert resid < 1e-10


def test_solve_threaded(mtx_file, capsys):
    assert main(["solve", mtx_file, "--workers", "2"]) == 0
    assert "residual" in capsys.readouterr().out


def test_simulate_command(capsys):
    assert main([
        "simulate", "--collection", "audi", "--scale", "0.3",
        "--policy", "parsec", "--cores", "4", "--factotype", "llt",
    ]) == 0
    out = capsys.readouterr().out
    assert "GFlop/s" in out


def test_simulate_with_gpu_and_gantt(capsys):
    assert main([
        "simulate", "--collection", "MHD", "--scale", "0.3",
        "--policy", "starpu", "--cores", "4", "--gpus", "1", "--gantt",
        "--factotype", "lu",
    ]) == 0
    out = capsys.readouterr().out
    assert "PCIe" in out and "makespan" in out


def test_missing_matrix_errors():
    with pytest.raises(SystemExit):
        main(["analyze"])


def test_collection_solve(capsys):
    assert main([
        "solve", "--collection", "afshell10", "--scale", "0.15",
        "--factotype", "lu",
    ]) == 0
    assert "residual" in capsys.readouterr().out
