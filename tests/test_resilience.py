"""Fault-injection and recovery tests across the execution layers.

Covers the resilience subsystem end to end: the seeded
:class:`~repro.resilience.FaultModel`, recovery in the machine
simulator (worker crash, GPU loss, transfer retry, stragglers), the
distributed simulator (node failure, message resend), and the hardened
threaded runtime (bounded retry, quarantine, watchdog).  Every
recovered trace must satisfy the R6xx auditor and the regular schedule
validator — recovery that produces an infeasible schedule is a bug,
not a feature.
"""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.distributed import ClusterSpec, map_cblks, simulate_distributed
from repro.machine import mirage, simulate
from repro.resilience import (
    FAULT_KINDS,
    PERSISTENT_KINDS,
    FaultModel,
    FaultSpec,
    RecoveryPolicy,
    UnrecoverableError,
)
from repro.runtime import get_policy
from repro.runtime.native import NativePolicy
from repro.runtime.tracing import ExecutionTrace
from repro.symbolic import analyze
from repro.verify import verify_resilience, verify_schedule

MACHINE = mirage(n_cores=4, n_gpus=1, streams_per_gpu=2)

# 4 cores vs 2 GPUs: a CPU pool small enough that both cost-model
# schedulers offload the GPU-path test problem, so transfer and
# device-loss faults hit real traffic.
GPU_MACHINE = mirage(n_cores=4, n_gpus=2, streams_per_gpu=2)


@pytest.fixture(scope="module")
def sym(grid2d_medium):
    return analyze(grid2d_medium).symbol


@pytest.fixture(scope="module")
def gsym():
    from repro.sparse.generators import grid_laplacian_2d
    from repro.symbolic import SymbolicOptions

    matrix = grid_laplacian_2d(40, jitter=0.05, seed=0)
    return analyze(matrix, SymbolicOptions(split_max_width=32)).symbol


def _policy(name):
    if name == "native":
        return get_policy(name)
    # Low offload threshold so the small test problem exercises the
    # GPU fault paths; the native policy is CPU-only.
    return get_policy(name, gpu_flops_threshold=1e3)


def _dag(sym, name):
    pol = _policy(name)
    return pol, build_dag(
        sym, "llt",
        granularity=pol.traits.granularity,
        recompute_ld=pol.traits.recompute_ld,
    )


def _assert_recovered(dag, result):
    assert len(result.trace.events) == dag.n_tasks
    rep = verify_resilience(result.trace, dag)
    assert rep.ok, rep.format()
    srep = verify_schedule(dag, result.trace)
    assert srep.ok, srep.format()


# ----------------------------------------------------------------------
# FaultModel
# ----------------------------------------------------------------------
class TestFaultModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor-strike")
        for kind in FAULT_KINDS:
            if kind in PERSISTENT_KINDS:
                # Persistent conditions must pin a resource and window.
                FaultSpec(kind, resource=0, until=1.0)
                with pytest.raises(ValueError, match="pin a resource"):
                    FaultSpec(kind, until=1.0)
                with pytest.raises(ValueError, match="until > time"):
                    FaultSpec(kind, resource=0, time=1.0, until=1.0)
            else:
                FaultSpec(kind)  # one-shot kinds construct bare

    def test_spec_fires_once(self):
        fm = FaultModel([FaultSpec("task-fault", task=7)])
        assert fm.task_fault(7, 0, 0.0) == "task-fault"
        assert fm.task_fault(7, 0, 1.0) is None

    def test_spec_time_and_resource_filters(self):
        fm = FaultModel([FaultSpec("worker-crash", time=1.0, resource=2)])
        assert fm.task_fault(5, 2, 0.5) is None  # too early
        assert fm.task_fault(5, 1, 1.5) is None  # wrong worker
        assert fm.task_fault(5, 2, 1.5) == "worker-crash"

    def test_worker_crash_never_hits_gpu_attempts(self):
        fm = FaultModel([FaultSpec("worker-crash")])
        assert fm.task_fault(3, -1, 0.0) is None  # GPU attempt: worker -1
        assert fm.task_fault(3, 0, 0.0) == "worker-crash"

    def test_rate_draws_are_seeded(self):
        a = FaultModel(seed=42, task_fail_rate=0.3)
        b = FaultModel(seed=42, task_fail_rate=0.3)
        seq_a = [a.task_fault(t, 0, 0.0) for t in range(50)]
        seq_b = [b.task_fault(t, 0, 0.0) for t in range(50)]
        assert seq_a == seq_b
        assert any(k is not None for k in seq_a)
        c = FaultModel(seed=43, task_fail_rate=0.3)
        seq_c = [c.task_fault(t, 0, 0.0) for t in range(50)]
        assert seq_c != seq_a

    def test_fresh_resets_consumed_state(self):
        fm = FaultModel([FaultSpec("straggler", task=1, factor=8.0)],
                        seed=9, transfer_fail_rate=0.5)
        assert fm.straggler(1, 0.0) == 8.0
        draws = [fm.transfer_fails(0, c, 0.0) for c in range(20)]
        re = fm.fresh()
        assert re.straggler(1, 0.0) == 8.0
        assert [re.transfer_fails(0, c, 0.0) for c in range(20)] == draws

    def test_pop_timed_extracts_only_that_kind(self):
        fm = FaultModel([FaultSpec("gpu-loss", time=1e-3),
                         FaultSpec("task-fault", task=2)])
        taken = fm.pop_timed("gpu-loss")
        assert [s.kind for s in taken] == ["gpu-loss"]
        assert fm.task_fault(2, 0, 0.0) == "task-fault"


# ----------------------------------------------------------------------
# machine simulator
# ----------------------------------------------------------------------
class TestMachineSimulator:
    @pytest.mark.parametrize("name", ["native", "starpu", "parsec"])
    def test_zero_fault_runs_bit_identical(self, sym, name):
        pol, dag = _dag(sym, name)
        base = simulate(dag, MACHINE, pol)
        armed = simulate(dag, MACHINE, _policy(name), faults=None,
                         recovery=RecoveryPolicy())
        assert armed.makespan == base.makespan
        assert armed.trace.events == base.trace.events
        assert armed.trace.data_events == base.trace.data_events
        assert armed.n_faults == 0 and armed.n_reexecuted == 0

    @pytest.mark.parametrize("name", ["native", "starpu", "parsec"])
    def test_worker_crash_recovers(self, sym, name):
        pol, dag = _dag(sym, name)
        faults = FaultModel([FaultSpec("worker-crash", resource=0)], seed=1)
        r = simulate(dag, MACHINE, pol, faults=faults,
                     recovery=RecoveryPolicy())
        assert r.n_faults >= 1 and r.n_reexecuted >= 1
        crash = next(f for f in r.trace.fault_events
                     if f.kind == "worker-crash")
        # The crashed worker never runs anything after its fault.
        after = [e for e in r.trace.events
                 if e.resource == crash.resource and e.end > crash.end]
        assert not after
        _assert_recovered(dag, r)

    @pytest.mark.parametrize("name", ["starpu", "parsec"])
    def test_gpu_loss_blacklists_device(self, gsym, name):
        pol, dag = _dag(gsym, name)
        clean = simulate(dag, GPU_MACHINE, pol)
        # Only meaningful when the scheduler actually offloads to gpu0.
        assert any(e.resource.startswith("gpu0") for e in clean.trace.events)
        faults = FaultModel(
            [FaultSpec("gpu-loss", time=0.25 * clean.makespan, resource=0)],
            seed=2,
        )
        r = simulate(dag, GPU_MACHINE, _policy(name), faults=faults,
                     recovery=RecoveryPolicy())
        loss = next(f for f in r.trace.fault_events
                    if f.kind == "gpu-loss" and f.task < 0)
        after = [e for e in r.trace.events
                 if e.resource.startswith("gpu0") and e.end > loss.end]
        assert not after
        _assert_recovered(dag, r)

    def test_gpu_loss_without_blacklist_is_fatal(self, gsym):
        pol, dag = _dag(gsym, "starpu")
        clean = simulate(dag, GPU_MACHINE, pol)
        assert any(e.resource.startswith("gpu") for e in clean.trace.events)
        faults = FaultModel(
            [FaultSpec("gpu-loss", time=0.25 * clean.makespan, resource=0)],
        )
        with pytest.raises(UnrecoverableError, match="gpu_blacklist"):
            simulate(dag, GPU_MACHINE, _policy("starpu"), faults=faults,
                     recovery=RecoveryPolicy(gpu_blacklist=False))

    def test_transfer_retry_pays_backoff(self, gsym):
        pol, dag = _dag(gsym, "starpu")
        faults = FaultModel(seed=3, transfer_fail_rate=0.2)
        r = simulate(dag, GPU_MACHINE, pol, faults=faults,
                     recovery=RecoveryPolicy())
        assert r.bytes_retransferred > 0
        assert any(f.kind == "transfer-fail" for f in r.trace.fault_events)
        assert any(rec.kind == "retry-transfer"
                   for rec in r.trace.recovery_events)
        _assert_recovered(dag, r)

    def test_straggler_stretches_one_task(self, sym):
        pol, dag = _dag(sym, "native")
        faults = FaultModel([FaultSpec("straggler", task=0, factor=5.0)])
        r = simulate(dag, MACHINE, pol, faults=faults,
                     recovery=RecoveryPolicy())
        f = next(f for f in r.trace.fault_events if f.kind == "straggler")
        assert f.task == 0
        e = next(e for e in r.trace.events if e.task == 0)
        # The fault window spans the stretched execution.
        assert e.duration == pytest.approx(f.end - f.start)
        assert r.n_reexecuted == 0  # absorbed in place, not re-run
        _assert_recovered(dag, r)

    def test_retry_budget_exhaustion_names_task(self, sym):
        pol, dag = _dag(sym, "native")
        faults = FaultModel([FaultSpec("task-fault", task=5)] * 4)
        with pytest.raises(UnrecoverableError, match=r"task 5 .*max_retries"):
            simulate(dag, MACHINE, pol, faults=faults,
                     recovery=RecoveryPolicy(max_retries=2))

    def test_combined_chaos_completes(self, gsym):
        pol, dag = _dag(gsym, "parsec")
        clean = simulate(dag, GPU_MACHINE, pol)
        faults = FaultModel(
            [FaultSpec("worker-crash", resource=1),
             FaultSpec("gpu-loss", time=0.3 * clean.makespan, resource=0)],
            seed=4, task_fail_rate=0.03, straggler_rate=0.02,
        )
        r = simulate(dag, GPU_MACHINE, _policy("parsec"), faults=faults,
                     recovery=RecoveryPolicy(max_retries=6))
        assert r.n_faults > 0
        assert r.makespan >= clean.makespan  # faults are never free
        _assert_recovered(dag, r)

    def test_same_seed_same_recovered_schedule(self, sym):
        pol, dag = _dag(sym, "native")
        runs = []
        for _ in range(2):
            faults = FaultModel(seed=7, task_fail_rate=0.05)
            r = simulate(dag, MACHINE, _policy("native"), faults=faults,
                         recovery=RecoveryPolicy())
            runs.append((r.makespan, tuple(r.trace.events)))
        assert runs[0] == runs[1]

    def test_stall_reports_blocked_frontier(self, sym):
        class LossyPolicy(NativePolicy):
            """Drops one released task on the floor (a scheduler bug)."""

            def __init__(self, lost):
                super().__init__()
                self._lost = lost

            def on_ready(self, task):
                if task != self._lost:
                    super().on_ready(task)

        dag = build_dag(sym, "llt", granularity="1d")
        lost = dag.n_tasks - 1
        with pytest.raises(RuntimeError) as err:
            simulate(dag, MACHINE, LossyPolicy(lost))
        msg = str(err.value)
        assert "blocked frontier" in msg
        assert f"{lost}(deps_left=0)" in msg


# ----------------------------------------------------------------------
# distributed simulator
# ----------------------------------------------------------------------
class TestDistributed:
    @pytest.fixture(scope="class")
    def dist(self, sym):
        # Cyclic mapping: the subtree strategy puts this small problem
        # almost entirely on node 0, and the fault paths need real
        # cross-node traffic and in-flight work on node 1.
        owner = map_cblks(sym, 2, strategy="cyclic")
        cluster = ClusterSpec(n_nodes=2, cores_per_node=4)
        return sym, owner, cluster

    def test_zero_fault_identical(self, dist):
        sym, owner, cluster = dist
        base = simulate_distributed(sym, owner, cluster,
                                    collect_trace=True)
        armed = simulate_distributed(sym, owner, cluster,
                                     collect_trace=True, faults=None,
                                     recovery=RecoveryPolicy())
        assert armed.makespan == base.makespan
        assert armed.trace.events == base.trace.events
        assert armed.n_faults == 0

    def test_node_failure_restarts_inflight_work(self, dist):
        sym, owner, cluster = dist
        clean = simulate_distributed(sym, owner, cluster)
        faults = FaultModel(
            [FaultSpec("node-fail", time=0.3 * clean.makespan, resource=1)],
            seed=5,
        )
        r = simulate_distributed(sym, owner, cluster, collect_trace=True,
                                 faults=faults, recovery=RecoveryPolicy())
        assert r.n_faults >= 1
        assert any(f.kind == "node-fail" for f in r.trace.fault_events)
        assert any(rec.kind == "restart" for rec in r.trace.recovery_events)
        assert r.makespan >= clean.makespan
        rep = verify_resilience(r.trace, check_double_complete=False)
        assert rep.ok, rep.format()

    def test_message_loss_resends(self, dist):
        sym, owner, cluster = dist
        faults = FaultModel(seed=6, transfer_fail_rate=0.3)
        r = simulate_distributed(sym, owner, cluster, collect_trace=True,
                                 faults=faults, recovery=RecoveryPolicy())
        assert r.bytes_retransferred > 0
        assert any(rec.kind in ("resend", "retry-transfer")
                   for rec in r.trace.recovery_events)
        rep = verify_resilience(r.trace, check_double_complete=False)
        assert rep.ok, rep.format()

    def test_task_fault_budget_is_enforced(self, dist):
        sym, owner, cluster = dist
        faults = FaultModel(seed=8, task_fail_rate=0.9)
        with pytest.raises(UnrecoverableError, match="max_retries"):
            simulate_distributed(sym, owner, cluster, faults=faults,
                                 recovery=RecoveryPolicy(max_retries=1))


# ----------------------------------------------------------------------
# threaded runtime
# ----------------------------------------------------------------------
class TestThreaded:
    @pytest.fixture()
    def run_parts(self, grid2d_small):
        from repro.core.factor import NumericFactor
        from repro.runtime.threaded import _ThreadedRun

        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        factor = NumericFactor.assemble(res.symbol, permuted, "llt")
        dag = build_dag(res.symbol, "llt", granularity="2d",
                        dtype=factor.dtype)
        return _ThreadedRun, factor, dag

    @staticmethod
    def _flaky(run, victim, n_failures):
        """Make task ``victim``'s body raise on its first N attempts."""
        original = run._execute
        fails = {"left": n_failures}

        def execute(t, worker):
            if t == victim and fails["left"] > 0:
                fails["left"] -= 1
                raise RuntimeError(f"transient failure on task {t}")
            original(t, worker)

        run._execute = execute

    def test_retry_recovers_transient_failure(self, run_parts):
        cls, factor, dag = run_parts
        trace = ExecutionTrace()
        run = cls(factor, dag, 3, True, trace, max_retries=2)
        self._flaky(run, victim=0, n_failures=2)
        run.run()  # must not raise: two failures, budget of two retries
        assert run.n_done == dag.n_tasks
        assert not run.quarantined
        faults = [f for f in trace.fault_events if f.kind == "task-error"]
        assert len(faults) == 2
        assert all(f.task == 0 for f in faults)
        assert len([r for r in trace.recovery_events
                    if r.kind == "requeue"]) == 2
        # Exactly-once completion still holds for every task.
        assert sorted(e.task for e in trace.events) == list(range(dag.n_tasks))

    def test_quarantine_spares_independent_tasks(self, run_parts):
        cls, factor, dag = run_parts
        run = cls(factor, dag, 3, True, None, max_retries=1)
        self._flaky(run, victim=0, n_failures=99)
        with pytest.raises(RuntimeError, match="transient failure on task 0"):
            run.run()
        # The failing task and its descendants are abandoned; every
        # independent task still ran (no whole-run abort).
        assert 0 in run.abandoned
        assert run.n_done + len(run.abandoned) == dag.n_tasks
        assert run.n_done > 0

    def test_watchdog_names_the_wedge(self, run_parts):
        import threading

        cls, factor, dag = run_parts
        release = threading.Event()
        run = cls(factor, dag, 2, True, None, watchdog_s=0.25)
        original = run._execute

        def execute(t, worker):
            if t == 0:
                release.wait(timeout=10.0)  # wedge until the test frees us
            original(t, worker)

        run._execute = execute
        try:
            with pytest.raises(RuntimeError, match="no progress"):
                run.run()
        finally:
            release.set()
        probe = run._watchdog_message()
        assert "done" in probe and "ready queue" in probe

    def test_worker_exception_propagates(self, run_parts):
        cls, factor, dag = run_parts
        run = cls(factor, dag, 2, True, None)  # max_retries=0

        def execute(t, worker):
            raise ValueError(f"boom on task {t}")

        run._execute = execute
        with pytest.raises(ValueError, match="boom on task"):
            run.run()

    def test_factorize_threaded_passthrough(self, grid2d_small):
        from repro.core.factorization import factorize_sequential
        from repro.runtime.threaded import factorize_threaded

        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        ref = factorize_sequential(res.symbol, permuted, "llt")
        par = factorize_threaded(res.symbol, permuted, "llt", n_workers=3,
                                 max_retries=1, watchdog_s=30.0)
        for a, b in zip(ref.L, par.L):
            assert np.allclose(a, b, atol=1e-10)


# ----------------------------------------------------------------------
# satellite edge cases
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_gflops_on_zero_makespan(self):
        from repro.machine.simulator import SimulationResult

        r = SimulationResult(policy="native", machine=MACHINE,
                             makespan=0.0, flops=1e9, trace=None,
                             n_cpu_workers=4, bytes_h2d=0.0,
                             bytes_d2h=0.0, busy={})
        assert r.gflops == 0.0

    def test_busy_time_on_empty_trace(self):
        t = ExecutionTrace()
        assert t.busy_time() == {}
        assert t.makespan == 0.0
