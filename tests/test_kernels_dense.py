"""Dense kernel tests."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings, strategies as st

from repro.kernels.dense import (
    getrf_nopiv,
    ldlt_nopiv,
    potrf,
    trsm_lower_right,
    trsm_unit_lower_left,
)
from tests.conftest import random_spd_dense


class TestPotrf:
    def test_matches_numpy(self):
        a = random_spd_dense(8, 0.6, 0)
        assert np.allclose(potrf(a), np.linalg.cholesky(a))

    def test_rejects_complex(self):
        with pytest.raises(TypeError):
            potrf(np.eye(3, dtype=np.complex128))


class TestLdlt:
    def test_reconstruction_real(self):
        a = random_spd_dense(9, 0.5, 1)
        L, d = ldlt_nopiv(a)
        assert np.allclose(L @ np.diag(d) @ L.T, a)
        assert np.allclose(np.diag(L), 1.0)
        assert np.allclose(np.triu(L, 1), 0.0)

    def test_reconstruction_complex_symmetric(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        a = (a + a.T) / 2  # complex symmetric (plain transpose)
        a += np.diag(np.full(6, 10.0 + 5j))
        L, d = ldlt_nopiv(a)
        assert np.allclose(L @ np.diag(d) @ L.T, a)

    def test_zero_pivot_raises(self):
        with pytest.raises(ZeroDivisionError):
            ldlt_nopiv(np.zeros((3, 3)))

    def test_input_not_mutated(self):
        a = random_spd_dense(5, 0.5, 3)
        a0 = a.copy()
        ldlt_nopiv(a)
        assert np.array_equal(a, a0)


class TestGetrf:
    def test_reconstruction(self):
        a = random_spd_dense(8, 0.5, 4) + np.triu(np.ones((8, 8)), 1) * 0.1
        lu = getrf_nopiv(a)
        L = np.tril(lu, -1) + np.eye(8)
        U = np.triu(lu)
        assert np.allclose(L @ U, a)

    def test_matches_scipy_on_dominant(self):
        a = random_spd_dense(7, 0.8, 5)
        lu = getrf_nopiv(a)
        # scipy with pivoting on a diagonally dominant SPD matrix picks
        # the diagonal anyway.
        p, l, u = sla.lu(a)
        assert np.allclose(p, np.eye(7))
        assert np.allclose(np.tril(lu, -1) + np.eye(7), l)
        assert np.allclose(np.triu(lu), u)

    def test_zero_pivot_raises(self):
        with pytest.raises(ZeroDivisionError):
            getrf_nopiv(np.array([[0.0, 1.0], [1.0, 0.0]]))


class TestTrsm:
    def test_lower_right(self):
        a = random_spd_dense(6, 0.7, 6)
        L = np.linalg.cholesky(a)
        rng = np.random.default_rng(7)
        b = rng.standard_normal((4, 6))
        x = trsm_lower_right(L, b)
        assert np.allclose(x @ L.T, b)

    def test_lower_right_unit(self):
        L = np.tril(np.ones((4, 4)), -1) * 0.3 + np.diag([9, 9, 9, 9.0])
        rng = np.random.default_rng(8)
        b = rng.standard_normal((3, 4))
        x = trsm_lower_right(L, b, unit=True)
        Lu = np.tril(L, -1) + np.eye(4)
        assert np.allclose(x @ Lu.T, b)

    def test_unit_lower_left(self):
        L = np.tril(np.random.default_rng(9).standard_normal((5, 5)), -1)
        b = np.random.default_rng(10).standard_normal((5, 2))
        x = trsm_unit_lower_left(L, b)
        assert np.allclose((L + np.eye(5)) @ x, b)

    def test_complex_plain_transpose(self):
        rng = np.random.default_rng(11)
        L = np.tril(rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4)))
        L += np.diag(np.full(4, 5.0))
        b = rng.standard_normal((2, 4)) + 1j * rng.standard_normal((2, 4))
        x = trsm_lower_right(L, b)
        assert np.allclose(x @ L.T, b)  # .T, never .conj().T


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 12), seed=st.integers(0, 5000))
def test_property_ldlt_solves(n, seed):
    a = random_spd_dense(n, 0.4, seed)
    L, d = ldlt_nopiv(a)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n)
    y = sla.solve_triangular(L, b, lower=True, unit_diagonal=True)
    x = sla.solve_triangular(L, y / d, lower=True, unit_diagonal=True, trans="T")
    assert np.allclose(a @ x, b, atol=1e-8)
