"""Public SparseSolver API tests."""

import numpy as np
import pytest

from repro import SolverOptions, SparseSolver
from repro.symbolic import SymbolicOptions


class TestBasics:
    @pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
    def test_solve_all_factotypes(self, grid2d_medium, factotype):
        s = SparseSolver(grid2d_medium, SolverOptions(factotype=factotype))
        b = np.random.default_rng(0).standard_normal(grid2d_medium.n_rows)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-12

    def test_complex(self, helmholtz_small):
        s = SparseSolver(helmholtz_small, SolverOptions(factotype="ldlt"))
        rng = np.random.default_rng(1)
        b = rng.standard_normal(helmholtz_small.n_rows) * (1 + 1j)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-12

    def test_factorize_info(self, grid2d_small):
        s = SparseSolver(grid2d_small)
        info = s.factorize()
        assert info.n == grid2d_small.n_rows
        assert info.flops > 0
        assert info.elapsed > 0
        assert info.gflops > 0
        assert info.nnz_factor == s.analysis.symbol.nnz()

    def test_analysis_cached(self, grid2d_small):
        s = SparseSolver(grid2d_small)
        a1 = s.analyze()
        a2 = s.analyze()
        assert a1 is a2

    def test_solve_triggers_factorize(self, grid2d_small):
        s = SparseSolver(grid2d_small)
        b = np.ones(grid2d_small.n_rows)
        s.solve(b)
        assert s.factor is not None
        assert s.last_info is not None

    def test_multiple_rhs(self, grid2d_small):
        s = SparseSolver(grid2d_small)
        rng = np.random.default_rng(2)
        for _ in range(3):
            b = rng.standard_normal(grid2d_small.n_rows)
            x = s.solve(b)
            assert s.residual_norm(x, b) < 1e-12

    def test_refinement_recorded(self, grid2d_small):
        s = SparseSolver(grid2d_small)
        s.solve(np.ones(grid2d_small.n_rows))
        assert s.last_refinement is not None
        assert s.last_refinement.converged

    def test_no_refinement(self, grid2d_small):
        s = SparseSolver(grid2d_small, SolverOptions(refine=False))
        b = np.ones(grid2d_small.n_rows)
        x = s.solve(b)
        assert s.last_refinement is None
        assert s.residual_norm(x, b) < 1e-10


class TestValidation:
    def test_rejects_rectangular(self):
        from repro.sparse.csc import coo_to_csc

        with pytest.raises(ValueError):
            SparseSolver(coo_to_csc(2, 3, [0], [0], [1.0]))

    def test_rejects_pattern_only(self, grid2d_small):
        with pytest.raises(ValueError):
            SparseSolver(grid2d_small.pattern())

    def test_rejects_bad_rhs_shape(self, grid2d_small):
        s = SparseSolver(grid2d_small)
        with pytest.raises(ValueError):
            s.solve(np.ones(3))

    def test_options_validation(self):
        with pytest.raises(ValueError):
            SolverOptions(factotype="qr")
        with pytest.raises(ValueError):
            SolverOptions(runtime="mpi")
        with pytest.raises(ValueError):
            SolverOptions(n_workers=0)


class TestRuntimes:
    def test_threaded_runtime_matches(self, grid2d_medium):
        b = np.random.default_rng(3).standard_normal(grid2d_medium.n_rows)
        ref = SparseSolver(grid2d_medium).solve(b)
        thr = SparseSolver(
            grid2d_medium, SolverOptions(runtime="threaded", n_workers=3)
        ).solve(b)
        assert np.allclose(ref, thr, atol=1e-9)

    @pytest.mark.parametrize("runtime", ["native", "starpu", "parsec"])
    def test_policy_runtimes_solve(self, grid2d_small, runtime):
        # Policy names select simulated scheduling; numerics are identical.
        s = SparseSolver(grid2d_small, SolverOptions(runtime=runtime))
        b = np.ones(grid2d_small.n_rows)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-12

    def test_symbolic_options_flow_through(self, grid2d_small):
        s = SparseSolver(
            grid2d_small,
            SolverOptions(symbolic=SymbolicOptions(split_max_width=4)),
        )
        s.analyze()
        assert np.diff(s.analysis.symbol.cblk_ptr).max() <= 4


class TestBlockAndReuse:
    def test_block_rhs(self, grid2d_small):
        s = SparseSolver(grid2d_small, SolverOptions(factotype="ldlt"))
        B = np.random.default_rng(7).standard_normal((grid2d_small.n_rows, 5))
        X = s.solve(B)
        assert X.shape == B.shape
        resid = np.linalg.norm(B - grid2d_small.matvec(X))
        assert resid / np.linalg.norm(B) < 1e-12

    def test_block_rhs_no_refine(self, grid2d_small):
        s = SparseSolver(grid2d_small, SolverOptions(refine=False))
        B = np.ones((grid2d_small.n_rows, 3))
        X = s.solve(B, method="none")
        resid = np.linalg.norm(B - grid2d_small.matvec(X))
        assert resid / np.linalg.norm(B) < 1e-10

    def test_block_rhs_rejects_krylov(self, grid2d_small):
        s = SparseSolver(grid2d_small)
        with pytest.raises(ValueError, match="block right-hand"):
            s.solve(np.ones((grid2d_small.n_rows, 2)), method="gmres")

    def test_update_values_reuses_analysis(self, grid2d_small):
        from repro.sparse.generators import grid_laplacian_2d

        s = SparseSolver(grid2d_small)
        s.factorize()
        analysis = s.analysis
        fresh = grid_laplacian_2d(8, jitter=0.3, seed=99)
        s.update_values(fresh)
        assert s.analysis is analysis          # analyze phase kept
        assert s.factor is None                # numeric factor dropped
        b = np.ones(fresh.n_rows)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-12   # solves the NEW system

    def test_update_values_rejects_new_pattern(self, grid2d_small):
        from repro.sparse.generators import grid_laplacian_2d

        s = SparseSolver(grid2d_small)
        with pytest.raises(ValueError, match="pattern"):
            s.update_values(grid_laplacian_2d(8, stencil=9, seed=1))

    def test_update_values_rejects_wrong_shape(self, grid2d_small, grid3d_small):
        s = SparseSolver(grid2d_small)
        with pytest.raises(ValueError, match="shape"):
            s.update_values(grid3d_small)

    def test_pivot_threshold_option(self, grid2d_small):
        import numpy as np

        dense = grid2d_small.to_dense().copy()
        dense[0, 0] = 1e-14
        from repro.sparse.csc import SparseMatrixCSC

        mat = SparseMatrixCSC.from_dense(dense)
        s = SparseSolver(
            mat, SolverOptions(factotype="lu", pivot_threshold=1e-8,
                               refine_max_iter=30, refine_tol=1e-8),
        )
        info = s.factorize()
        assert info.n_pivots_perturbed >= 1
        b = np.ones(mat.n_rows)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-6

    def test_pivot_threshold_validation(self):
        with pytest.raises(ValueError):
            SolverOptions(pivot_threshold=-1.0)


class TestErrorPaths:
    def test_complex_llt_fails_cleanly(self, helmholtz_small):
        s = SparseSolver(helmholtz_small, SolverOptions(factotype="llt"))
        with pytest.raises(TypeError, match="potrf"):
            s.factorize()

    def test_indefinite_llt_fails(self, grid2d_small):
        import numpy as np
        from repro.sparse.csc import SparseMatrixCSC

        d = -grid2d_small.to_dense()
        s = SparseSolver(SparseMatrixCSC.from_dense(d))
        with pytest.raises(np.linalg.LinAlgError):
            s.factorize()
