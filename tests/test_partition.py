"""Multilevel bisection tests (matching, coarsening, refinement)."""

import numpy as np
import pytest

from repro.graph.adjacency import Graph
from repro.graph.coarsen import coarsen_graph, heavy_edge_matching
from repro.graph.partition import (
    edge_cut,
    grow_bisection,
    multilevel_bisection,
    refine_bisection,
)
from repro.sparse.generators import grid_laplacian_2d


class TestMatching:
    def test_matching_is_symmetric(self):
        g = Graph.from_matrix(grid_laplacian_2d(6))
        match = heavy_edge_matching(g, seed=1)
        for v in range(g.n):
            assert match[match[v]] == v

    def test_matching_pairs_are_edges(self):
        g = Graph.from_matrix(grid_laplacian_2d(5))
        match = heavy_edge_matching(g, seed=2)
        for v in range(g.n):
            u = match[v]
            if u != v:
                assert u in g.neighbors(v)

    def test_matching_covers_most_vertices(self):
        g = Graph.from_matrix(grid_laplacian_2d(8))
        match = heavy_edge_matching(g, seed=3)
        unmatched = np.count_nonzero(match == np.arange(g.n))
        assert unmatched <= g.n // 4


class TestCoarsen:
    def test_weights_conserved(self):
        g = Graph.from_matrix(grid_laplacian_2d(6))
        match = heavy_edge_matching(g, seed=0)
        coarse, cmap = coarsen_graph(g, match)
        coarse.check()
        assert coarse.total_weight == g.total_weight
        assert cmap.size == g.n

    def test_coarse_edges_project_back(self):
        g = Graph.from_matrix(grid_laplacian_2d(5))
        match = heavy_edge_matching(g, seed=0)
        coarse, cmap = coarsen_graph(g, match)
        # Any coarse edge must come from at least one fine edge.
        src = np.repeat(np.arange(coarse.n), np.diff(coarse.xadj))
        fine_src = np.repeat(np.arange(g.n), np.diff(g.xadj))
        fine_pairs = set(zip(cmap[fine_src].tolist(), cmap[g.adjncy].tolist()))
        for a, b in zip(src.tolist(), coarse.adjncy.tolist()):
            assert (a, b) in fine_pairs

    def test_matched_pairs_merge(self):
        g = Graph.from_edges(4, [0, 2], [1, 3])
        match = np.array([1, 0, 3, 2])
        coarse, cmap = coarsen_graph(g, match)
        assert coarse.n == 2
        assert cmap[0] == cmap[1] and cmap[2] == cmap[3]


class TestBisection:
    def test_partition_is_binary_and_balanced(self):
        g = Graph.from_matrix(grid_laplacian_2d(10))
        part = multilevel_bisection(g, seed=0)
        assert set(np.unique(part)) <= {0, 1}
        w0 = part.tolist().count(0)
        assert 0.25 <= w0 / g.n <= 0.75

    def test_cut_quality_on_grid(self):
        # Optimal bisection of a k x k grid cuts ~k edges; allow 4x.
        k = 12
        g = Graph.from_matrix(grid_laplacian_2d(k))
        part = multilevel_bisection(g, seed=1)
        assert edge_cut(g, part) <= 4 * k

    def test_refinement_never_worsens(self):
        g = Graph.from_matrix(grid_laplacian_2d(8))
        part = grow_bisection(g, seed=5)
        before = edge_cut(g, part)
        after = edge_cut(g, refine_bisection(g, part))
        assert after <= before

    def test_tiny_graphs(self):
        assert multilevel_bisection(Graph.from_edges(1, [], [])).size == 1
        p2 = multilevel_bisection(Graph.from_edges(2, [0], [1]))
        assert set(p2.tolist()) == {0, 1}

    def test_edge_cut_matches_networkx(self):
        import networkx as nx

        g = Graph.from_matrix(grid_laplacian_2d(6))
        part = multilevel_bisection(g, seed=2)
        ref = nx.Graph()
        src = np.repeat(np.arange(g.n), np.diff(g.xadj))
        ref.add_edges_from(zip(src.tolist(), g.adjncy.tolist()))
        ref_cut = nx.cut_size(ref, set(np.flatnonzero(part == 0).tolist()))
        assert edge_cut(g, part) == ref_cut
