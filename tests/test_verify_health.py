"""R7xx graceful-degradation auditor tests (synthetic traces + injectors).

Each check is exercised on a hand-built trace that violates exactly one
invariant, plus a clean trace to pin the negative.  The injector
helpers (``double_commit_hedge`` / ``steal_from_quarantined`` /
``illegal_transition``) are the verify-the-verifier corruptions wired
to ``python -m repro verify --inject``.
"""

import pytest

from repro.runtime.tracing import ExecutionTrace
from repro.verify import (
    double_commit_hedge,
    illegal_transition,
    steal_from_quarantined,
    verify_health,
)


def codes(report):
    return sorted({f.code for f in report.findings})


def _monitored(hedge=True):
    t = ExecutionTrace()
    t.meta["health"] = {"hedge": hedge}
    return t


def _clean_hedged_trace():
    """cpu0 limps, escalates to quarantined; its stuck task 7 is hedged
    on cpu1 which wins; cpu0's late duplicate is cancelled."""
    t = _monitored()
    t.record_health("cpu0", "healthy", "suspect", 1.0, 2.5)
    t.record_health("cpu0", "suspect", "degraded", 2.0, 5.0)
    t.record_health("cpu0", "degraded", "quarantined", 3.0, 10.0)
    t.record_hedge("launch", 7, "cpu1", 2.5, "cpu0")
    t.record_hedge("win", 7, "cpu1", 3.5, "cpu0")
    t.record_hedge("cancel", 7, "cpu0", 4.0, "cpu0")
    t.record(7, "cpu1", 2.5, 3.5)
    t.record(8, "cpu1", 3.5, 4.5)
    return t


class TestClean:
    def test_clean_hedged_trace_passes(self):
        rep = verify_health(_clean_hedged_trace())
        assert rep.ok, rep.format()
        assert rep.stats["hedged_tasks"] == 1.0
        assert rep.stats["quarantine_windows"] == 1.0

    def test_empty_unmonitored_trace_passes(self):
        rep = verify_health(ExecutionTrace())
        assert rep.ok


class TestR701ExactlyOnce:
    def test_double_commit_fails(self):
        t = _clean_hedged_trace()
        t.record(7, "cpu0", 4.0, 5.0)  # the loser commits too
        rep = verify_health(t)
        assert "R701" in codes(rep)

    def test_commit_on_wrong_resource_fails(self):
        t = _monitored()
        t.record_hedge("launch", 7, "cpu1", 2.5, "cpu0")
        t.record_hedge("win", 7, "cpu1", 3.5, "cpu0")
        t.record_hedge("cancel", 7, "cpu0", 4.0, "cpu0")
        t.record(7, "cpu0", 2.0, 5.0)  # completion on the cancelled side
        rep = verify_health(t)
        assert "R701" in codes(rep)

    def test_vanished_completion_fails(self):
        t = _clean_hedged_trace()
        t.events = [e for e in t.events if e.task != 7]
        rep = verify_health(t)
        assert "R701" in codes(rep)


class TestR702Transitions:
    def test_illegal_edge_fails(self):
        t = _monitored()
        t.record_health("cpu0", "healthy", "quarantined", 1.0, 9.0)
        rep = verify_health(t)
        assert "R702" in codes(rep)

    def test_broken_chain_fails(self):
        t = _monitored()
        t.record_health("cpu0", "healthy", "suspect", 1.0, 2.5)
        # Next transition claims to start from "degraded".
        t.record_health("cpu0", "degraded", "quarantined", 2.0, 9.0)
        rep = verify_health(t)
        assert "R702" in codes(rep)

    def test_chain_must_start_healthy(self):
        t = _monitored()
        t.record_health("cpu0", "suspect", "degraded", 1.0, 5.0)
        rep = verify_health(t)
        assert "R702" in codes(rep)

    def test_unknown_state_fails(self):
        t = _monitored()
        t.record_health("cpu0", "healthy", "zombie", 1.0, 2.0)
        rep = verify_health(t)
        assert "R702" in codes(rep)


class TestR703Quarantine:
    def test_dispatch_into_window_fails(self):
        t = _clean_hedged_trace()
        t.record(9, "cpu0", 3.5, 3.6)  # inside [3.0, inf)
        rep = verify_health(t)
        assert "R703" in codes(rep)

    def test_dispatch_after_probe_out_passes(self):
        t = _clean_hedged_trace()
        t.record_health("cpu0", "quarantined", "probation", 5.0, 1.0)
        t.record(9, "cpu0", 5.5, 5.6)  # after the window closed
        rep = verify_health(t)
        assert rep.ok, rep.format()

    def test_hedge_launch_on_quarantined_fails(self):
        t = _clean_hedged_trace()
        t.record_hedge("launch", 8, "cpu0", 3.5, "cpu1")
        t.record_hedge("win", 8, "cpu0", 4.0, "cpu1")
        t.record_hedge("cancel", 8, "cpu1", 4.1, "cpu1")
        rep = verify_health(t)
        assert "R703" in codes(rep)


class TestR704Accounting:
    def test_win_without_launch_fails(self):
        t = _monitored()
        t.record_hedge("win", 7, "cpu1", 3.5, "cpu0")
        t.record(7, "cpu1", 2.5, 3.5)
        rep = verify_health(t)
        assert "R704" in codes(rep)

    def test_launch_without_cancel_fails(self):
        t = _monitored()
        t.record_hedge("launch", 7, "cpu1", 2.5, "cpu0")
        t.record_hedge("win", 7, "cpu1", 3.5, "cpu0")
        t.record(7, "cpu1", 2.5, 3.5)
        rep = verify_health(t)
        assert "R704" in codes(rep)

    def test_two_wins_fail(self):
        t = _clean_hedged_trace()
        t.record_hedge("win", 7, "cpu0", 4.2, "cpu0")
        rep = verify_health(t)
        assert "R704" in codes(rep)

    def test_win_before_launch_fails(self):
        t = _monitored()
        t.record_hedge("launch", 7, "cpu1", 3.0, "cpu0")
        t.record_hedge("win", 7, "cpu1", 2.0, "cpu0")
        t.record_hedge("cancel", 7, "cpu0", 4.0, "cpu0")
        t.record(7, "cpu1", 1.0, 2.0)
        rep = verify_health(t)
        assert "R704" in codes(rep)


class TestR705Identity:
    def test_health_event_without_meta_fails(self):
        t = ExecutionTrace()  # no meta["health"] stamp
        t.record_health("cpu0", "healthy", "suspect", 1.0, 2.5)
        rep = verify_health(t)
        assert codes(rep) == ["R705"]

    def test_hedge_event_without_meta_fails(self):
        t = ExecutionTrace()
        t.record_hedge("launch", 7, "cpu1", 2.5, "cpu0")
        rep = verify_health(t)
        assert codes(rep) == ["R705"]

    def test_hedge_event_with_hedging_disabled_fails(self):
        t = _monitored(hedge=False)
        t.record_hedge("launch", 7, "cpu1", 2.5, "cpu0")
        rep = verify_health(t)
        assert "R705" in codes(rep)


class TestInjectors:
    def test_double_commit_hedge_caught(self):
        bad = double_commit_hedge(_clean_hedged_trace())
        rep = verify_health(bad)
        assert "R701" in codes(rep)

    def test_steal_from_quarantined_caught(self):
        bad = steal_from_quarantined(_clean_hedged_trace())
        rep = verify_health(bad)
        assert "R703" in codes(rep)

    def test_illegal_transition_caught(self):
        bad = illegal_transition(_clean_hedged_trace())
        rep = verify_health(bad)
        assert "R702" in codes(rep)

    def test_injectors_do_not_mutate_original(self):
        t = _clean_hedged_trace()
        n_ev, n_he = len(t.events), len(t.health_events)
        double_commit_hedge(t)
        illegal_transition(t)
        steal_from_quarantined(t)
        assert len(t.events) == n_ev
        assert len(t.health_events) == n_he
        assert verify_health(t).ok

    def test_injectors_raise_when_inapplicable(self):
        empty = ExecutionTrace()
        with pytest.raises(ValueError):
            double_commit_hedge(empty)
        with pytest.raises(ValueError):
            steal_from_quarantined(empty)
        with pytest.raises(ValueError):
            illegal_transition(empty)
