"""Smoke tests: every example script must run end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py", "8")
    assert "OK" in out
    assert "residual" in out


def test_scheduler_comparison():
    out = run_example("scheduler_comparison.py", "MHD", "0.4")
    for policy in ("native", "starpu", "parsec"):
        assert policy in out
    assert "makespan" in out  # gantt printed


def test_hybrid_gpu_speedup():
    out = run_example("hybrid_gpu_speedup.py", "0.4")
    assert "Serena" in out and "afshell10" in out
    assert "PCIe traffic" in out


def test_threaded_factorization():
    out = run_example("threaded_factorization.py", "8", "2")
    assert "speedup" in out
    assert "residual" in out


def test_complex_helmholtz():
    out = run_example("complex_helmholtz.py", "16")
    assert "ldlt" in out and "lu" in out
    assert "LU factor storage" in out


def test_distributed_fanin():
    out = run_example("distributed_fanin.py", "MHD", "0.5")
    assert "strong scaling" in out
    assert "fan-in" in out


def test_preconditioned_iterative():
    out = run_example("preconditioned_iterative.py", "7")
    assert "ILU(1)" in out
    assert "exact factorization" in out
