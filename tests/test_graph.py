"""Graph substrate tests (adjacency, BFS, components)."""

import numpy as np
import pytest

from repro.graph.adjacency import Graph
from repro.graph.bfs import bfs_levels, connected_components, pseudo_peripheral_vertex
from repro.sparse.generators import grid_laplacian_2d


def path_graph(n: int) -> Graph:
    u = np.arange(n - 1, dtype=np.int64)
    return Graph.from_edges(n, u, u + 1)


class TestGraph:
    def test_from_matrix_drops_diagonal(self):
        m = grid_laplacian_2d(3)
        g = Graph.from_matrix(m)
        g.check()
        src = np.repeat(np.arange(g.n), np.diff(g.xadj))
        assert not np.any(src == g.adjncy)

    def test_from_matrix_degrees(self):
        g = Graph.from_matrix(grid_laplacian_2d(3))
        # 3x3 grid: corner=2, edge=3, center=4
        assert sorted(g.degrees().tolist()) == [2, 2, 2, 2, 3, 3, 3, 3, 4]

    def test_from_edges_dedupes(self):
        g = Graph.from_edges(3, [0, 0, 1], [1, 1, 2])
        assert g.n_edges == 2

    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [0], [0])

    def test_networkx_equivalence(self):
        import networkx as nx

        m = grid_laplacian_2d(4, jitter=0.1, seed=1)
        g = Graph.from_matrix(m)
        ref = nx.grid_2d_graph(4, 4)
        assert g.n_edges == ref.number_of_edges()

    def test_subgraph_structure(self):
        g = Graph.from_matrix(grid_laplacian_2d(4))
        # first row of the grid: a path of 4 vertices
        sub, mapping = g.subgraph(np.array([0, 1, 2, 3]))
        sub.check()
        assert sub.n == 4
        assert sub.n_edges == 3
        assert np.array_equal(mapping, [0, 1, 2, 3])

    def test_subgraph_empty_adjacency(self):
        g = Graph.from_matrix(grid_laplacian_2d(4))
        sub, _ = g.subgraph(np.array([0, 15]))  # opposite corners
        assert sub.n_edges == 0

    def test_subgraph_preserves_weights(self):
        g = path_graph(5)
        g.vwgt = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        sub, _ = g.subgraph(np.array([1, 3]))
        assert np.array_equal(sub.vwgt, [2, 4])


class TestBFS:
    def test_levels_path(self):
        g = path_graph(5)
        assert np.array_equal(bfs_levels(g, 0), [0, 1, 2, 3, 4])
        assert np.array_equal(bfs_levels(g, 2), [2, 1, 0, 1, 2])

    def test_levels_multi_source(self):
        g = path_graph(5)
        lv = bfs_levels(g, np.array([0, 4]))
        assert np.array_equal(lv, [0, 1, 2, 1, 0])

    def test_unreachable_is_minus_one(self):
        g = Graph.from_edges(4, [0], [1])  # vertices 2,3 isolated
        lv = bfs_levels(g, 0)
        assert lv[2] == -1 and lv[3] == -1

    def test_pseudo_peripheral_path(self):
        g = path_graph(9)
        v, levels = pseudo_peripheral_vertex(g, 4)
        assert v in (0, 8)
        assert levels.max() == 8

    def test_pseudo_peripheral_grid_eccentricity(self):
        import networkx as nx

        g = Graph.from_matrix(grid_laplacian_2d(5))
        v, levels = pseudo_peripheral_vertex(g, 12)  # start from center
        ref = nx.grid_2d_graph(5, 5)
        diameter = nx.diameter(ref)
        assert levels.max() >= diameter - 1

    def test_components(self):
        g = Graph.from_edges(6, [0, 1, 3], [1, 2, 4])
        comp = connected_components(g)
        assert comp[0] == comp[1] == comp[2]
        assert comp[3] == comp[4]
        assert comp[5] not in (comp[0], comp[3])
        assert len(set(comp.tolist())) == 3

    def test_components_single(self):
        g = path_graph(7)
        assert len(set(connected_components(g).tolist())) == 1
