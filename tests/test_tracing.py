"""Execution-trace container tests (including violation detection)."""

import numpy as np
import pytest

from repro.dag.tasks import TaskDAG
from repro.runtime.tracing import ExecutionTrace, TraceEvent


def chain_dag(n=3):
    kind = np.zeros(n, dtype=np.int8)
    idx = np.arange(n, dtype=np.int64)
    succ_ptr = np.concatenate([np.arange(n, dtype=np.int64), [n - 1]])
    succ_list = np.arange(1, n, dtype=np.int64)
    mutex = np.full(n, -1, dtype=np.int64)
    return TaskDAG(kind, idx, idx, np.ones(n),
                   np.zeros(n, np.int64), np.zeros(n, np.int64),
                   np.zeros(n, np.int64), succ_ptr, succ_list, mutex, "2d")


def test_valid_trace_passes():
    dag = chain_dag()
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu0", 1.0, 2.0)
    tr.record(2, "cpu1", 2.0, 3.0)
    tr.validate(dag)
    assert tr.makespan == 3.0


def test_missing_task_detected():
    dag = chain_dag()
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu0", 1.0, 2.0)
    with pytest.raises(AssertionError, match="!= once"):
        tr.validate(dag)


def test_double_execution_detected():
    dag = chain_dag(2)
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(0, "cpu1", 0.0, 1.0)
    tr.record(1, "cpu0", 1.0, 2.0)
    with pytest.raises(AssertionError):
        tr.validate(dag)


def test_dependency_violation_detected():
    dag = chain_dag()
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu1", 0.5, 1.5)  # starts before task 0 ends
    tr.record(2, "cpu1", 2.0, 3.0)
    with pytest.raises(AssertionError, match="dependency"):
        tr.validate(dag)


def test_overlap_on_cpu_detected():
    # Two independent tasks overlapping on one core.
    kind = np.zeros(2, dtype=np.int8)
    idx = np.arange(2, dtype=np.int64)
    dag = TaskDAG(kind, idx, idx, np.ones(2),
                  np.zeros(2, np.int64), np.zeros(2, np.int64),
                  np.zeros(2, np.int64),
                  np.array([0, 0, 0], dtype=np.int64),
                  np.empty(0, dtype=np.int64),
                  np.full(2, -1, dtype=np.int64), "2d")
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu0", 0.5, 1.5)
    with pytest.raises(AssertionError, match="overlap"):
        tr.validate(dag)


def test_gpu_overlap_allowed():
    kind = np.zeros(2, dtype=np.int8)
    idx = np.arange(2, dtype=np.int64)
    dag = TaskDAG(kind, idx, idx, np.ones(2),
                  np.zeros(2, np.int64), np.zeros(2, np.int64),
                  np.zeros(2, np.int64),
                  np.array([0, 0, 0], dtype=np.int64),
                  np.empty(0, dtype=np.int64),
                  np.full(2, -1, dtype=np.int64), "2d")
    tr = ExecutionTrace()
    tr.record(0, "gpu0", 0.0, 1.0)
    tr.record(1, "gpu0", 0.5, 1.5)  # concurrent kernels: fine
    tr.validate(dag)


def test_mutex_violation_detected():
    kind = np.zeros(2, dtype=np.int8)
    idx = np.arange(2, dtype=np.int64)
    mutex = np.array([7, 7], dtype=np.int64)
    target = np.array([7, 7], dtype=np.int64)
    from repro.dag.tasks import TaskKind

    kind[:] = TaskKind.UPDATE
    dag = TaskDAG(kind, idx, target, np.ones(2),
                  np.ones(2, np.int64), np.ones(2, np.int64),
                  np.ones(2, np.int64),
                  np.array([0, 0, 0], dtype=np.int64),
                  np.empty(0, dtype=np.int64), mutex, "2d")
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "gpu0", 0.5, 1.5)
    with pytest.raises(AssertionError, match="mutex"):
        tr.validate(dag)


def test_busy_time_and_resources():
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu1", 0.0, 2.0)
    assert tr.busy_time() == {"cpu0": 1.0, "cpu1": 2.0}
    assert tr.resources() == ["cpu0", "cpu1"]
    assert tr.start_end(1) == (0.0, 2.0)
    with pytest.raises(KeyError):
        tr.start_end(99)


def test_gantt_renders():
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    txt = tr.gantt(width=20)
    assert "cpu0" in txt and "#" in txt


def test_csv_roundtrip(tmp_path):
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.25)
    path = tmp_path / "trace.csv"
    tr.to_csv(path)
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "task,resource,start,end"
    assert lines[1].startswith("0,cpu0,0.0,")


def test_chrome_trace_export(tmp_path):
    import json

    from repro.dag import build_dag
    from repro.machine import mirage, simulate
    from repro.runtime import get_policy
    from repro.sparse.generators import grid_laplacian_2d
    from repro.symbolic import analyze

    sym = analyze(grid_laplacian_2d(8, jitter=0.05, seed=3)).symbol
    dag = build_dag(sym, "llt")
    r = simulate(dag, mirage(n_cores=2, n_gpus=1), get_policy("parsec"))
    path = tmp_path / "trace.json"
    r.trace.to_chrome_trace(path, dag)
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    tasks = [e for e in events if e.get("cat") == "task"]
    assert len(tasks) == dag.n_tasks
    assert any(e["name"].startswith("panel") for e in tasks)
    assert any(e.get("cat") == "transfer" for e in events) or r.bytes_h2d == 0
    # metadata rows name each resource
    names = [e for e in events if e.get("ph") == "M"]
    assert any("cpu0" in str(e["args"]) for e in names)
