"""Execution-trace container tests (including violation detection).

Schedule feasibility itself is checked by :mod:`repro.verify.schedule`;
these tests exercise both the ``ExecutionTrace.validate`` wrapper (the
historical entry point) and the report-producing ``verify_schedule``.
"""

import numpy as np
import pytest

from repro.dag.tasks import TaskDAG, TaskKind
from repro.runtime.tracing import ExecutionTrace, TraceEvent
from repro.verify import ScheduleError, assert_valid_schedule, verify_schedule


def chain_dag(n=3):
    kind = np.zeros(n, dtype=np.int8)
    idx = np.arange(n, dtype=np.int64)
    succ_ptr = np.concatenate([np.arange(n, dtype=np.int64), [n - 1]])
    succ_list = np.arange(1, n, dtype=np.int64)
    mutex = np.full(n, -1, dtype=np.int64)
    return TaskDAG(kind, idx, idx, np.ones(n),
                   np.zeros(n, np.int64), np.zeros(n, np.int64),
                   np.zeros(n, np.int64), succ_ptr, succ_list, mutex, "2d")


def independent_dag(n=2, kind_value=TaskKind.PANEL, mutex_value=-1):
    kind = np.full(n, int(kind_value), dtype=np.int8)
    idx = np.arange(n, dtype=np.int64)
    return TaskDAG(kind, idx, idx, np.ones(n),
                   np.zeros(n, np.int64), np.zeros(n, np.int64),
                   np.zeros(n, np.int64),
                   np.zeros(n + 1, dtype=np.int64),
                   np.empty(0, dtype=np.int64),
                   np.full(n, mutex_value, dtype=np.int64), "2d")


def test_valid_trace_passes():
    dag = chain_dag()
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu0", 1.0, 2.0)
    tr.record(2, "cpu1", 2.0, 3.0)
    tr.validate(dag)
    assert verify_schedule(dag, tr).ok
    assert tr.makespan == 3.0  # noqa: RV302 -- exact literals above


def test_missing_task_detected():
    dag = chain_dag()
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu0", 1.0, 2.0)
    with pytest.raises(AssertionError, match="!= once"):
        tr.validate(dag)
    rep = verify_schedule(dag, tr)
    assert [f.code for f in rep.errors()] == ["S201"]
    assert 2 in rep.errors()[0].tasks


def test_double_execution_detected():
    dag = chain_dag(2)
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(0, "cpu1", 0.0, 1.0)
    tr.record(1, "cpu0", 1.0, 2.0)
    with pytest.raises(AssertionError):
        tr.validate(dag)
    assert any(f.code == "S201" for f in verify_schedule(dag, tr).errors())


def test_dependency_violation_detected():
    dag = chain_dag()
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu1", 0.5, 1.5)  # starts before task 0 ends
    tr.record(2, "cpu1", 2.0, 3.0)
    with pytest.raises(AssertionError, match="dependency"):
        tr.validate(dag)
    rep = verify_schedule(dag, tr)
    assert any(f.code == "S203" and f.tasks == (0, 1) for f in rep.errors())


def test_overlap_on_cpu_detected():
    # Two independent tasks overlapping on one core.
    dag = independent_dag(2)
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu0", 0.5, 1.5)
    with pytest.raises(AssertionError, match="overlap"):
        tr.validate(dag)
    rep = verify_schedule(dag, tr)
    assert any(f.code == "S204" and f.tasks == (0, 1) for f in rep.errors())
    # Exclusivity can be waived explicitly (wall-clock traces).
    assert verify_schedule(dag, tr, exclusive_resources=()).ok


def test_gpu_overlap_allowed():
    # Concurrent UPDATE kernels on one GPU's streams are fine; mutexes
    # differ so the scatter-add windows are into distinct panels.
    dag = independent_dag(2, kind_value=TaskKind.UPDATE)
    dag.mutex[:] = dag.target
    tr = ExecutionTrace()
    tr.record(0, "gpu0", 0.0, 1.0)
    tr.record(1, "gpu0", 0.5, 1.5)  # concurrent kernels: fine
    tr.validate(dag)
    assert verify_schedule(dag, tr).ok


def test_gpu_wrong_kind_detected():
    # A PANEL factorization must never be offloaded (paper §V-B).
    dag = chain_dag(2)
    tr = ExecutionTrace()
    tr.record(0, "gpu0", 0.0, 1.0)
    tr.record(1, "cpu0", 1.0, 2.0)
    with pytest.raises(AssertionError, match="GPU"):
        tr.validate(dag)
    rep = verify_schedule(dag, tr)
    assert any(f.code == "S206" and f.tasks == (0,) for f in rep.errors())
    assert verify_schedule(dag, tr, check_gpu_kind=False).ok


def test_mutex_violation_detected():
    dag = independent_dag(2, kind_value=TaskKind.UPDATE, mutex_value=7)
    dag.target[:] = 7
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "gpu0", 0.5, 1.5)
    with pytest.raises(AssertionError, match="mutex"):
        tr.validate(dag)
    rep = verify_schedule(dag, tr)
    assert any(f.code == "S205" and f.tasks == (0, 1) for f in rep.errors())
    assert verify_schedule(dag, tr, check_mutex=False).ok


def test_negative_duration_and_unknown_task_detected():
    dag = independent_dag(2, kind_value=TaskKind.UPDATE)
    dag.mutex[:] = dag.target
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 1.0, 0.5)  # ends before it starts
    tr.record(1, "cpu1", 0.0, 1.0)
    tr.record(9, "cpu2", 0.0, 1.0)  # no such task
    rep = verify_schedule(dag, tr)
    codes = {f.code for f in rep.errors()}
    assert "S202" in codes and "S207" in codes


def test_schedule_error_carries_report():
    dag = chain_dag(2)
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    with pytest.raises(ScheduleError) as exc:
        assert_valid_schedule(dag, tr)
    assert not exc.value.report.ok
    assert any(f.code == "S201" for f in exc.value.report.errors())


def test_sorted_events_and_resource_iteration():
    tr = ExecutionTrace()
    tr.record(2, "cpu1", 2.0, 3.0)
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu0", 1.0, 2.0)
    assert [e.task for e in tr.sorted_events()] == [0, 1, 2]
    by_res = tr.events_by_resource()
    assert sorted(by_res) == ["cpu0", "cpu1"]
    assert [e.task for e in by_res["cpu0"]] == [0, 1]
    assert [e.task for e in tr.iter_resource("cpu1")] == [2]
    assert list(tr.iter_resource("gpu9")) == []
    # Ties on start break by (end, task) so ordering is deterministic.
    tie = ExecutionTrace(events=[
        TraceEvent(5, "gpu0", 0.0, 2.0),
        TraceEvent(3, "gpu0", 0.0, 1.0),
        TraceEvent(4, "gpu0", 0.0, 1.0),
    ])
    assert [e.task for e in tie.sorted_events()] == [3, 4, 5]


def test_busy_time_and_resources():
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    tr.record(1, "cpu1", 0.0, 2.0)
    assert tr.busy_time() == {"cpu0": 1.0, "cpu1": 2.0}
    assert tr.resources() == ["cpu0", "cpu1"]
    assert tr.start_end(1) == (0.0, 2.0)
    with pytest.raises(KeyError):
        tr.start_end(99)


def test_gantt_renders():
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.0)
    txt = tr.gantt(width=20)
    assert "cpu0" in txt and "#" in txt


def test_csv_roundtrip(tmp_path):
    tr = ExecutionTrace()
    tr.record(0, "cpu0", 0.0, 1.25)
    path = tmp_path / "trace.csv"
    tr.to_csv(path)
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "task,resource,start,end"
    assert lines[1].startswith("0,cpu0,0.0,")


def test_chrome_trace_export(tmp_path):
    import json

    from repro.dag import build_dag
    from repro.machine import mirage, simulate
    from repro.runtime import get_policy
    from repro.sparse.generators import grid_laplacian_2d
    from repro.symbolic import analyze

    sym = analyze(grid_laplacian_2d(8, jitter=0.05, seed=3)).symbol
    dag = build_dag(sym, "llt")
    r = simulate(dag, mirage(n_cores=2, n_gpus=1), get_policy("parsec"))
    path = tmp_path / "trace.json"
    r.trace.to_chrome_trace(path, dag)
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    tasks = [e for e in events if e.get("cat") == "task"]
    assert len(tasks) == dag.n_tasks
    assert any(e["name"].startswith("panel") for e in tasks)
    assert any(e.get("cat") == "transfer" for e in events) or r.bytes_h2d == 0
    # metadata rows name each resource
    names = [e for e in events if e.get("ph") == "M"]
    assert any("cpu0" in str(e["args"]) for e in names)


# ----------------------------------------------------------------------
# Data-movement events (the M4xx auditor's input stream).
# ----------------------------------------------------------------------
def test_record_data_mirrors_transfers():
    tr = ExecutionTrace()
    tr.record_data("h2d", 3, 0, 1024.0, 0.0, 1.0)
    tr.record_data("d2h", 3, 0, 1024.0, 2.0, 3.0, reason="writeback")
    tr.record_data("evict", 3, 0, 1024.0, 4.0, 4.0, reason="capacity")
    assert len(tr.data_events) == 3
    # Transfers keep the legacy lane rows; evictions do not.
    assert [t.resource for t in tr.transfers] == ["link0:h2d", "link0:d2h"]
    ev = tr.data_events[0]
    assert (ev.kind, ev.cblk, ev.gpu, ev.reason) == ("h2d", 3, 0, "demand")


def test_bytes_moved_filters_by_kind():
    tr = ExecutionTrace()
    tr.record_data("h2d", 0, 0, 100.0, 0.0, 1.0)
    tr.record_data("h2d", 1, 1, 50.0, 0.0, 1.0)
    tr.record_data("d2h", 0, 0, 25.0, 1.0, 2.0)
    tr.record_data("evict", 1, 1, 50.0, 2.0, 2.0)
    assert tr.bytes_moved("h2d") == 150.0  # noqa: RV302 -- exact literals
    assert tr.bytes_moved("d2h") == 25.0   # noqa: RV302 -- exact literals
    assert tr.bytes_moved("evict") == 50.0  # noqa: RV302 -- exact literals


def test_sorted_data_events_order():
    tr = ExecutionTrace()
    tr.record_data("h2d", 5, 0, 1.0, 1.0, 2.0)
    tr.record_data("h2d", 2, 0, 1.0, 0.0, 2.0)
    tr.record_data("h2d", 9, 0, 1.0, 0.0, 1.0)
    # Ordered by (end, start, cblk): ties on end break by start.
    assert [e.cblk for e in tr.sorted_data_events()] == [9, 2, 5]
