"""D8xx determinism audit + RV5xx event-loop lint + trace fingerprints."""

import pickle

import numpy as np
import pytest

from repro.dag import build_dag
from repro.distributed import ClusterSpec, map_cblks, simulate_distributed
from repro.machine import mirage, simulate
from repro.machine.streamsim import simulate_kernel_burst
from repro.resilience import FaultModel, FaultSpec, RecoveryPolicy
from repro.runtime import get_policy
from repro.runtime.scheduling import THREAD_SCHEDULERS
from repro.runtime.seq import MonotonicCounter, monotonic_counter
from repro.runtime.threaded import factorize_threaded
from repro.runtime.tracing import ExecutionTrace
from repro.symbolic import analyze
from repro.verify.determinism import (
    drop_seq,
    reorder_ties,
    reseed_midrun,
    trace_diff,
    verify_determinism,
)
from repro.verify.eventloop import eventloop_paths, eventloop_sources


@pytest.fixture(scope="module")
def res(grid2d_small):
    return analyze(grid2d_small)


@pytest.fixture(scope="module")
def dag(res):
    return build_dag(res.symbol, "llt", granularity="2d")


def _machine_trace(dag, seed=0, with_faults=True):
    machine = mirage(n_cores=2, n_gpus=1, streams_per_gpu=2)
    faults = None
    recovery = None
    if with_faults:
        specs = [
            FaultSpec("worker-crash", time=0.0, resource=0),
            FaultSpec("straggler", time=0.0, factor=3.0),
        ]
        faults = FaultModel(specs, seed=seed, task_fail_rate=0.05)
        recovery = RecoveryPolicy()
    r = simulate(dag, machine, get_policy("parsec"),
                 faults=faults, recovery=recovery)
    return r.trace


def _distributed_trace(res, seed=0):
    owner = map_cblks(res.symbol, 2)
    cluster = ClusterSpec(n_nodes=2, cores_per_node=2)
    specs = [FaultSpec("straggler", time=0.0, factor=2.0)]
    r = simulate_distributed(
        res.symbol, owner, cluster, collect_trace=True,
        faults=FaultModel(specs, seed=seed, task_fail_rate=0.05),
        recovery=RecoveryPolicy(),
    )
    return r.trace


def _burst_trace():
    tr = ExecutionTrace()
    simulate_kernel_burst("cublas", 500, streams=3, n_calls=40, trace=tr)
    return tr


def _threaded_trace(res, matrix, scheduler, accumulate):
    permuted = matrix.permute(res.perm.perm)
    trace = ExecutionTrace()
    factorize_threaded(
        res.symbol, permuted, "llt", n_workers=2, trace=trace,
        scheduler=scheduler, accumulate=accumulate,
    )
    return trace


# ----------------------------------------------------------------------
# fingerprint stability
# ----------------------------------------------------------------------
class TestFingerprintStability:
    def test_machine_same_seed_identical(self, dag):
        a = _machine_trace(dag, seed=3)
        b = _machine_trace(dag, seed=3)
        assert a.fingerprint() == b.fingerprint()
        assert trace_diff(a, b) is None

    def test_machine_different_seed_diverges(self, dag):
        a = _machine_trace(dag, seed=3)
        b = _machine_trace(dag, seed=4)
        assert a.fingerprint() != b.fingerprint()
        assert "divergence" in (trace_diff(a, b) or "")

    def test_distributed_same_seed_identical(self, res):
        a = _distributed_trace(res, seed=7)
        b = _distributed_trace(res, seed=7)
        assert a.fingerprint() == b.fingerprint()

    def test_streamsim_double_run_identical(self):
        assert _burst_trace().fingerprint() == _burst_trace().fingerprint()

    @pytest.mark.parametrize("scheduler", sorted(THREAD_SCHEDULERS))
    @pytest.mark.parametrize("accumulate", [False, True])
    def test_threaded_fingerprint_stable(self, res, grid2d_small,
                                         scheduler, accumulate):
        a = _threaded_trace(res, grid2d_small, scheduler, accumulate)
        b = _threaded_trace(res, grid2d_small, scheduler, accumulate)
        assert a.meta["clock"] == "wall"
        assert a.fingerprint() == b.fingerprint()

    def test_pickle_round_trip_preserves_fingerprint(self, dag):
        a = _machine_trace(dag, seed=5)
        b = pickle.loads(pickle.dumps(a))
        assert b.fingerprint() == a.fingerprint()
        assert b.next_seq == a.next_seq

    def test_meta_outside_whitelist_ignored(self, dag):
        a = _machine_trace(dag, seed=5)
        b = pickle.loads(pickle.dumps(a))
        b.meta["wall_s"] = 123.456
        assert b.fingerprint() == a.fingerprint()
        b.meta["seed"] = 999  # whitelisted -> participates
        assert b.fingerprint() != a.fingerprint()


# ----------------------------------------------------------------------
# the D8xx audit itself
# ----------------------------------------------------------------------
class TestDeterminismAudit:
    def test_clean_machine_replay_passes(self, dag):
        rep = verify_determinism(lambda: _machine_trace(dag, seed=2),
                                 name="determinism[test]")
        assert rep.ok, rep.format()
        assert rep.stats["replayed"] == 1
        assert rep.stats["rng_draws"] > 0

    def test_clean_burst_replay_passes(self):
        rep = verify_determinism(_burst_trace)
        assert rep.ok, rep.format()

    def test_reorder_ties_caught(self, dag):
        trace = reorder_ties(_machine_trace(dag, seed=2))
        rep = verify_determinism(lambda: _machine_trace(dag, seed=2),
                                 trace=trace)
        codes = {f.code for f in rep.findings}
        assert not rep.ok
        assert "D802" in codes and "D801" in codes

    def test_drop_seq_caught_without_replay(self, dag):
        trace = drop_seq(_machine_trace(dag, seed=2))
        rep = verify_determinism(lambda: trace, trace=trace, replay=False)
        assert not rep.ok
        assert any(f.code == "D802" for f in rep.findings)

    def test_reseed_midrun_caught(self, dag):
        trace = reseed_midrun(_machine_trace(dag, seed=2))
        rep = verify_determinism(lambda: _machine_trace(dag, seed=2),
                                 trace=trace)
        codes = {f.code for f in rep.findings}
        assert not rep.ok
        assert "D803" in codes or "D801" in codes

    def test_divergence_is_localized(self, dag):
        trace = reseed_midrun(_machine_trace(dag, seed=2))
        rep = verify_determinism(lambda: _machine_trace(dag, seed=2),
                                 trace=trace)
        d804 = [f for f in rep.findings if f.code == "D804"]
        assert d804 and "divergence" in d804[0].message

    def test_missing_meta_flagged(self):
        trace = ExecutionTrace()
        trace.record(0, "cpu0", 0.0, 1.0)
        rep = verify_determinism(lambda: trace, trace=trace, replay=False)
        codes = {f.code for f in rep.findings}
        assert "D805" in codes  # no producer, no rng stamp

    def test_backwards_time_flagged(self):
        trace = ExecutionTrace()
        trace.meta.update(producer="test", clock="virtual", rng=None)
        trace.record(0, "cpu0", 2.0, 1.0)
        rep = verify_determinism(lambda: trace, trace=trace, replay=False)
        assert any(f.code == "D802" and "backwards" in f.message
                   for f in rep.findings)

    def test_injectors_refuse_empty_material(self):
        empty = ExecutionTrace()
        with pytest.raises(ValueError):
            reorder_ties(empty)
        with pytest.raises(ValueError):
            drop_seq(empty)
        with pytest.raises(ValueError):
            reseed_midrun(empty)  # no rng stamp to forge

    def test_injectors_do_not_mutate_input(self, dag):
        a = _machine_trace(dag, seed=2)
        before = a.fingerprint()
        reorder_ties(a)
        drop_seq(a)
        reseed_midrun(a)
        assert a.fingerprint() == before


# ----------------------------------------------------------------------
# the monotonic counter (blessed tie-break helper)
# ----------------------------------------------------------------------
class TestMonotonicCounter:
    def test_counts_and_pickles(self):
        c = monotonic_counter()
        assert isinstance(c, MonotonicCounter)
        assert [next(c) for _ in range(3)] == [0, 1, 2]
        assert c.count == 3
        c2 = pickle.loads(pickle.dumps(c))
        assert next(c2) == 3

    def test_start_offset(self):
        c = monotonic_counter(10)
        assert next(c) == 10


# ----------------------------------------------------------------------
# RV5xx event-loop lint
# ----------------------------------------------------------------------
def _codes(src):
    return [f.code for f in eventloop_sources({"x.py": src})]


class TestEventloopLint:
    def test_default_scope_clean(self):
        assert eventloop_paths() == []

    def test_rv501_non_tuple_and_missing_tiebreak(self):
        src = (
            "import heapq\n"
            "heapq.heappush(h, when)\n"
            "heapq.heappush(h, (when, fn))\n"
        )
        assert _codes(src) == ["RV501", "RV501"]

    def test_rv505_misplaced_tiebreak_and_lambda(self):
        src = (
            "import heapq\n"
            "heapq.heappush(h, (when, fn, next(ctr)))\n"
            "heapq.heappush(h, (when, next(ctr), lambda: 0))\n"
        )
        assert _codes(src) == ["RV505", "RV505"]

    def test_blessed_shape_clean(self):
        src = "import heapq\nheapq.heappush(h, (when, next(ctr), fn, a))\n"
        assert _codes(src) == []

    def test_rv502_clock_equality(self):
        assert _codes("if a.time == b.time:\n    pass\n") == ["RV502"]
        assert _codes("if a.time <= b.time:\n    pass\n") == []

    def test_rv503_set_iteration_and_pop(self):
        src = (
            "idle: set[int] = set()\n"
            "for c in idle:\n    pass\n"
            "x = idle.pop()\n"
            "per_node: list[set[int]] = []\n"
            "for c in per_node[0]:\n    pass\n"
            "y = per_node[1].pop()\n"
        )
        assert _codes(src) == ["RV503"] * 4

    def test_rv503_sorted_is_clean(self):
        src = "idle: set[int] = set()\nfor c in sorted(idle):\n    pass\n"
        assert _codes(src) == []

    def test_rv504_wall_clock_and_rng(self):
        src = (
            "import time, random\n"
            "import numpy as np\n"
            "t = time.time()\n"
            "r = random.random()\n"
            "x = np.random.rand()\n"
            "g = np.random.default_rng()\n"
        )
        assert _codes(src) == ["RV504"] * 4

    def test_rv504_seeded_rng_clean(self):
        src = "import numpy as np\ng = np.random.default_rng(42)\n"
        assert _codes(src) == []

    def test_noqa_suppresses(self):
        src = "t = time.time()  # noqa: RV504\nimport time\n"
        assert _codes(src) == []

    def test_syntax_error_is_rv500(self):
        assert _codes("def broken(:\n") == ["RV500"]


# ----------------------------------------------------------------------
# widened RV306 (project linter)
# ----------------------------------------------------------------------
class TestWidenedRV306:
    def _codes(self, src):
        from repro.verify.lint import lint_sources
        return [f.code for f in lint_sources({"x.py": src})]

    def test_subscript_of_set_container(self):
        src = (
            "elems: list[set[int]] = []\n"
            "for e in elems[0]:\n    pass\n"
        )
        assert self._codes(src) == ["RV306"]

    def test_set_pop_flagged(self):
        src = "s = {1}\nx = s.pop()\n"
        assert self._codes(src) == ["RV306"]

    def test_defaultdict_set_tracked(self):
        src = (
            "from collections import defaultdict\n"
            "by_node = defaultdict(set)\n"
            "for v in by_node[3]:\n    pass\n"
        )
        assert self._codes(src) == ["RV306"]

    def test_list_pop_not_flagged(self):
        src = "stack = [1, 2]\nx = stack.pop()\n"
        assert self._codes(src) == []

    def test_dict_pop_with_key_not_flagged(self):
        src = "d: dict[int, set[int]] = {}\nx = d.pop(3, None)\n"
        assert self._codes(src) == []

    def test_repo_is_clean(self):
        from pathlib import Path

        import repro
        from repro.verify.lint import lint_paths

        assert lint_paths([Path(repro.__file__).parent]) == []


# ----------------------------------------------------------------------
# determinism-fix regression: distributed idle-core choice
# ----------------------------------------------------------------------
class TestDistributedCoreChoice:
    def test_lowest_idle_core_wins(self, res):
        # Two same-seed runs must agree on core placement event-for-event
        # (the old set.pop() choice was hash-order dependent).
        a = _distributed_trace(res, seed=1)
        b = _distributed_trace(res, seed=1)
        ra = [(e.task, e.resource, e.seq) for e in a.sorted_events()]
        rb = [(e.task, e.resource, e.seq) for e in b.sorted_events()]
        assert ra == rb
