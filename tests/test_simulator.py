"""Machine-simulator tests: schedule validity, resource semantics,
coherence, GPU behaviour."""

import numpy as np
import pytest

from repro.dag import build_dag, critical_path
from repro.machine import MachineSpec, mirage, simulate
from repro.machine.perfmodel import CpuPerfModel
from repro.runtime import get_policy
from repro.symbolic import analyze


@pytest.fixture(scope="module")
def sym(grid2d_medium):
    return analyze(grid2d_medium).symbol


@pytest.fixture(scope="module")
def dag2d(sym):
    return build_dag(sym, "llt", granularity="2d")


def run(dag, machine, policy_name, **kw):
    return simulate(dag, machine, get_policy(policy_name), **kw)


class TestScheduleValidity:
    @pytest.mark.parametrize("policy", ["native", "starpu", "parsec"])
    @pytest.mark.parametrize("cores", [1, 4])
    def test_cpu_only_traces_valid(self, dag2d, policy, cores):
        r = run(dag2d, mirage(n_cores=cores), policy)
        r.trace.validate(dag2d)
        assert r.makespan > 0
        assert len(r.trace.events) == dag2d.n_tasks

    @pytest.mark.parametrize("policy", ["starpu", "parsec"])
    def test_gpu_traces_valid(self, dag2d, policy):
        r = run(dag2d, mirage(n_cores=4, n_gpus=2), policy)
        r.trace.validate(dag2d)

    def test_multistream_trace_valid(self, dag2d):
        r = run(dag2d, mirage(n_cores=4, n_gpus=1, streams_per_gpu=3), "parsec")
        r.trace.validate(dag2d)

    def test_all_work_accounted(self, dag2d):
        r = run(dag2d, mirage(n_cores=2), "native")
        busy = sum(r.busy.values())
        # busy time excludes idle; it must be at most cores * makespan
        assert busy <= 2 * r.makespan + 1e-9


class TestSemantics:
    def test_deterministic(self, dag2d):
        a = run(dag2d, mirage(n_cores=4), "parsec")
        b = run(dag2d, mirage(n_cores=4), "parsec")
        # Exact equality on purpose: determinism means bitwise identical.
        assert a.makespan == b.makespan  # noqa: RV302

    def test_more_cores_not_slower(self, dag2d):
        times = [
            run(dag2d, mirage(n_cores=c), "native", collect_trace=False).makespan
            for c in (1, 2, 4, 8)
        ]
        for slow, fast in zip(times, times[1:]):
            assert fast <= slow * 1.05  # small scheduling noise allowed

    def test_single_core_near_serial_sum(self, dag2d):
        r = run(dag2d, mirage(n_cores=1), "native")
        serial = sum(r.trace.busy_time().values())
        assert r.makespan == pytest.approx(serial, rel=1e-6)

    def test_makespan_bounded_by_critical_path(self, dag2d):
        """Infinite cores: makespan ≈ critical path duration."""
        r = run(dag2d, mirage(n_cores=12), "native", collect_trace=False)
        r_inf = run(
            dag2d, MachineSpec(n_cores=256), "native", collect_trace=False
        )
        assert r_inf.makespan <= r.makespan + 1e-12

    def test_gflops_definition(self, dag2d):
        r = run(dag2d, mirage(n_cores=2), "native", collect_trace=False)
        assert r.gflops == pytest.approx(
            dag2d.total_flops() / r.makespan / 1e9
        )

    def test_cpu_only_no_transfers(self, dag2d):
        r = run(dag2d, mirage(n_cores=4), "parsec", collect_trace=False)
        assert r.bytes_h2d == 0 and r.bytes_d2h == 0

    def test_gpu_run_transfers_data(self, dag2d):
        r = run(dag2d, mirage(n_cores=4, n_gpus=1), "parsec",
                collect_trace=False)
        if any(res.startswith("gpu") for res in (r.busy or {})):
            assert r.bytes_h2d > 0

    def test_dedicated_workers_reduce_cpu_pool(self, dag2d):
        r = run(dag2d, mirage(n_cores=4, n_gpus=2), "starpu",
                collect_trace=False)
        assert r.n_cpu_workers == 2
        r2 = run(dag2d, mirage(n_cores=4, n_gpus=2), "parsec",
                 collect_trace=False)
        assert r2.n_cpu_workers == 4

    def test_custom_cpu_model(self, dag2d):
        slow = CpuPerfModel(gemm_eff_max=0.2, panel_eff_max=0.2)
        fast = CpuPerfModel(gemm_eff_max=0.9, panel_eff_max=0.6)
        ms = run(dag2d, mirage(2), "native", cpu_model=slow,
                 collect_trace=False).makespan
        mf = run(dag2d, mirage(2), "native", cpu_model=fast,
                 collect_trace=False).makespan
        assert ms > mf

    def test_complex_dtype_moves_more_bytes(self, sym):
        dag_z = build_dag(sym, "ldlt", dtype=np.complex128)
        rz = run(dag_z, mirage(4, n_gpus=1), "parsec",
                 dtype=np.complex128, collect_trace=False)
        rd = run(dag_z, mirage(4, n_gpus=1), "parsec",
                 dtype=np.float64, collect_trace=False)
        if rz.bytes_h2d and rd.bytes_h2d:
            assert rz.bytes_h2d > rd.bytes_h2d


class TestGpuBehaviour:
    def test_gpu_speeds_up_large_problem(self, grid3d_small):
        res = analyze(grid3d_small)
        dag = build_dag(res.symbol, "llt")
        cpu = run(dag, mirage(n_cores=4), "parsec", collect_trace=False)
        gpu = run(dag, mirage(n_cores=4, n_gpus=1), "parsec",
                  collect_trace=False)
        assert gpu.makespan <= cpu.makespan * 1.1

    def test_tiny_gpu_memory_still_completes(self, dag2d):
        from repro.machine.model import GpuSpec

        spec = MachineSpec(
            n_cores=2, n_gpus=1,
            gpu=GpuSpec(memory_bytes=1 << 16),  # 64 KiB: forces eviction
        )
        r = run(dag2d, spec, "parsec")
        r.trace.validate(dag2d)

    def test_panel_tasks_never_on_gpu(self, dag2d):
        from repro.dag.tasks import TaskKind

        r = run(dag2d, mirage(n_cores=2, n_gpus=2), "parsec")
        for e in r.trace.events:
            if e.resource.startswith("gpu"):
                assert dag2d.kind[e.task] == TaskKind.UPDATE

    def test_stall_detection_machinery(self, dag2d):
        # Sanity: simulation completes all tasks (stall raises).
        r = run(dag2d, mirage(n_cores=1, n_gpus=3, streams_per_gpu=3),
                "starpu")
        assert len(r.trace.events) == dag2d.n_tasks


class TestMachineSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(n_cores=0)
        with pytest.raises(ValueError):
            MachineSpec(n_gpus=-1)
        with pytest.raises(ValueError):
            MachineSpec(streams_per_gpu=5)

    def test_with_(self):
        m = mirage(12)
        m2 = m.with_(n_gpus=2, streams_per_gpu=3)
        assert m2.n_gpus == 2 and m2.n_cores == 12

    def test_mirage_defaults(self):
        m = mirage()
        assert m.n_cores == 12
        assert m.cpu.peak_gflops == pytest.approx(10.68)
