"""Machine-simulator tests: schedule validity, resource semantics,
coherence, GPU behaviour."""

import numpy as np
import pytest

from repro.dag import build_dag, critical_path
from repro.machine import MachineSpec, mirage, simulate
from repro.machine.perfmodel import CpuPerfModel
from repro.runtime import get_policy
from repro.symbolic import analyze


@pytest.fixture(scope="module")
def sym(grid2d_medium):
    return analyze(grid2d_medium).symbol


@pytest.fixture(scope="module")
def dag2d(sym):
    return build_dag(sym, "llt", granularity="2d")


def run(dag, machine, policy_name, **kw):
    return simulate(dag, machine, get_policy(policy_name), **kw)


class TestScheduleValidity:
    @pytest.mark.parametrize("policy", ["native", "starpu", "parsec"])
    @pytest.mark.parametrize("cores", [1, 4])
    def test_cpu_only_traces_valid(self, dag2d, policy, cores):
        r = run(dag2d, mirage(n_cores=cores), policy)
        r.trace.validate(dag2d)
        assert r.makespan > 0
        assert len(r.trace.events) == dag2d.n_tasks

    @pytest.mark.parametrize("policy", ["starpu", "parsec"])
    def test_gpu_traces_valid(self, dag2d, policy):
        r = run(dag2d, mirage(n_cores=4, n_gpus=2), policy)
        r.trace.validate(dag2d)

    def test_multistream_trace_valid(self, dag2d):
        r = run(dag2d, mirage(n_cores=4, n_gpus=1, streams_per_gpu=3), "parsec")
        r.trace.validate(dag2d)

    def test_all_work_accounted(self, dag2d):
        r = run(dag2d, mirage(n_cores=2), "native")
        busy = sum(r.busy.values())
        # busy time excludes idle; it must be at most cores * makespan
        assert busy <= 2 * r.makespan + 1e-9


class TestSemantics:
    def test_deterministic(self, dag2d):
        a = run(dag2d, mirage(n_cores=4), "parsec")
        b = run(dag2d, mirage(n_cores=4), "parsec")
        # Exact equality on purpose: determinism means bitwise identical.
        assert a.makespan == b.makespan  # noqa: RV302

    def test_more_cores_not_slower(self, dag2d):
        times = [
            run(dag2d, mirage(n_cores=c), "native", collect_trace=False).makespan
            for c in (1, 2, 4, 8)
        ]
        for slow, fast in zip(times, times[1:]):
            assert fast <= slow * 1.05  # small scheduling noise allowed

    def test_single_core_near_serial_sum(self, dag2d):
        r = run(dag2d, mirage(n_cores=1), "native")
        serial = sum(r.trace.busy_time().values())
        assert r.makespan == pytest.approx(serial, rel=1e-6)

    def test_makespan_bounded_by_critical_path(self, dag2d):
        """Infinite cores: makespan ≈ critical path duration."""
        r = run(dag2d, mirage(n_cores=12), "native", collect_trace=False)
        r_inf = run(
            dag2d, MachineSpec(n_cores=256), "native", collect_trace=False
        )
        assert r_inf.makespan <= r.makespan + 1e-12

    def test_gflops_definition(self, dag2d):
        r = run(dag2d, mirage(n_cores=2), "native", collect_trace=False)
        assert r.gflops == pytest.approx(
            dag2d.total_flops() / r.makespan / 1e9
        )

    def test_cpu_only_no_transfers(self, dag2d):
        r = run(dag2d, mirage(n_cores=4), "parsec", collect_trace=False)
        assert r.bytes_h2d == 0 and r.bytes_d2h == 0

    def test_gpu_run_transfers_data(self, dag2d):
        r = run(dag2d, mirage(n_cores=4, n_gpus=1), "parsec",
                collect_trace=False)
        if any(res.startswith("gpu") for res in (r.busy or {})):
            assert r.bytes_h2d > 0

    def test_dedicated_workers_reduce_cpu_pool(self, dag2d):
        r = run(dag2d, mirage(n_cores=4, n_gpus=2), "starpu",
                collect_trace=False)
        assert r.n_cpu_workers == 2
        r2 = run(dag2d, mirage(n_cores=4, n_gpus=2), "parsec",
                 collect_trace=False)
        assert r2.n_cpu_workers == 4

    def test_custom_cpu_model(self, dag2d):
        slow = CpuPerfModel(gemm_eff_max=0.2, panel_eff_max=0.2)
        fast = CpuPerfModel(gemm_eff_max=0.9, panel_eff_max=0.6)
        ms = run(dag2d, mirage(2), "native", cpu_model=slow,
                 collect_trace=False).makespan
        mf = run(dag2d, mirage(2), "native", cpu_model=fast,
                 collect_trace=False).makespan
        assert ms > mf

    def test_complex_dtype_moves_more_bytes(self, sym):
        dag_z = build_dag(sym, "ldlt", dtype=np.complex128)
        rz = run(dag_z, mirage(4, n_gpus=1), "parsec",
                 dtype=np.complex128, collect_trace=False)
        rd = run(dag_z, mirage(4, n_gpus=1), "parsec",
                 dtype=np.float64, collect_trace=False)
        if rz.bytes_h2d and rd.bytes_h2d:
            assert rz.bytes_h2d > rd.bytes_h2d


class TestGpuBehaviour:
    def test_gpu_speeds_up_large_problem(self, grid3d_small):
        res = analyze(grid3d_small)
        dag = build_dag(res.symbol, "llt")
        cpu = run(dag, mirage(n_cores=4), "parsec", collect_trace=False)
        gpu = run(dag, mirage(n_cores=4, n_gpus=1), "parsec",
                  collect_trace=False)
        assert gpu.makespan <= cpu.makespan * 1.1

    def test_tiny_gpu_memory_still_completes(self, dag2d):
        from repro.machine.model import GpuSpec

        spec = MachineSpec(
            n_cores=2, n_gpus=1,
            gpu=GpuSpec(memory_bytes=1 << 16),  # 64 KiB: forces eviction
        )
        r = run(dag2d, spec, "parsec")
        r.trace.validate(dag2d)

    def test_panel_tasks_never_on_gpu(self, dag2d):
        from repro.dag.tasks import TaskKind

        r = run(dag2d, mirage(n_cores=2, n_gpus=2), "parsec")
        for e in r.trace.events:
            if e.resource.startswith("gpu"):
                assert dag2d.kind[e.task] == TaskKind.UPDATE

    def test_stall_detection_machinery(self, dag2d):
        # Sanity: simulation completes all tasks (stall raises).
        r = run(dag2d, mirage(n_cores=1, n_gpus=3, streams_per_gpu=3),
                "starpu")
        assert len(r.trace.events) == dag2d.n_tasks


class TestMachineSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(n_cores=0)
        with pytest.raises(ValueError):
            MachineSpec(n_gpus=-1)
        with pytest.raises(ValueError):
            MachineSpec(streams_per_gpu=5)

    def test_with_(self):
        m = mirage(12)
        m2 = m.with_(n_gpus=2, streams_per_gpu=3)
        assert m2.n_gpus == 2 and m2.n_cores == 12

    def test_mirage_defaults(self):
        m = mirage()
        assert m.n_cores == 12
        assert m.cpu.peak_gflops == pytest.approx(10.68)


class TestMemorySystemUnits:
    """Direct unit coverage of the simulator's device-memory machinery:
    prefetch, transfer_estimate, LRU eviction, and the over-capacity
    (everything-pinned) escape hatch."""

    def _sim(self, dag, memory_bytes=None):
        from repro.machine.model import GpuSpec
        from repro.machine.simulator import _Simulator

        if memory_bytes is None:
            machine = mirage(n_cores=2, n_gpus=1)
        else:
            machine = MachineSpec(
                n_cores=2, n_gpus=1,
                gpu=GpuSpec(memory_bytes=memory_bytes),
            )
        return _Simulator(dag, machine, get_policy("starpu"))

    def _update_task(self, dag):
        from repro.dag.tasks import TaskKind

        upd = np.flatnonzero(
            (dag.kind == TaskKind.UPDATE) & (dag.cblk != dag.target)
        )
        return int(upd[0])

    def test_transfer_estimate_shrinks_with_prefetch(self, dag2d):
        sim = self._sim(dag2d)
        t = self._update_task(dag2d)
        src, tgt = int(dag2d.cblk[t]), int(dag2d.target[t])
        est0 = sim.transfer_estimate(0, t)
        assert est0 > 0
        sim.prefetch(0, src)
        est1 = sim.transfer_estimate(0, t)
        assert 0 < est1 < est0
        sim.prefetch(0, tgt)
        assert sim.transfer_estimate(0, t) == 0.0

    def test_prefetch_idempotent(self, dag2d):
        sim = self._sim(dag2d)
        t = self._update_task(dag2d)
        src = int(dag2d.cblk[t])
        sim.prefetch(0, src)
        n = len(sim.trace.data_events)
        sim.prefetch(0, src)  # already valid: no second transfer
        assert len(sim.trace.data_events) == n
        ev = sim.trace.data_events[0]
        assert ev.kind == "h2d" and ev.reason == "prefetch"
        assert ev.cblk == src and ev.nbytes == sim.panel_bytes[src]

    def test_prefetch_evicts_lru_when_full(self, dag2d):
        probe = self._sim(dag2d)
        a, b = 0, 1
        mem = int(max(probe.panel_bytes[a], probe.panel_bytes[b]))
        sim = self._sim(dag2d, memory_bytes=mem)
        sim.prefetch(0, a)
        g = sim.gpus[0]
        assert a in g.resident
        sim.prefetch(0, b)  # no room for both: a must go
        evicts = [e for e in sim.trace.data_events if e.kind == "evict"]
        assert [e.cblk for e in evicts] == [a]
        assert evicts[0].reason == "capacity"
        assert a not in g.resident and b in g.resident
        assert g.resident_bytes <= mem
        # The evicted copy is no longer valid on the device.
        assert not sim._loc_valid(a, 0)
        assert sim.transfer_estimate(0, self._update_task(dag2d)) > 0

    def test_pinned_panels_over_subscribe_gracefully(self, dag2d):
        probe = self._sim(dag2d)
        a, b = 0, 1
        mem = int(max(probe.panel_bytes[a], probe.panel_bytes[b]))
        sim = self._sim(dag2d, memory_bytes=mem)
        g = sim.gpus[0]
        sim.prefetch(0, a)
        g.pinned[a] = 1  # a staged task still needs panel a
        sim.prefetch(0, b)
        # Nothing evictable: the model over-subscribes rather than
        # deadlocking, and both copies stay resident.
        assert a in g.resident and b in g.resident
        assert g.resident_bytes > mem
        assert g.peak_bytes == g.resident_bytes

    def test_peak_bytes_tracks_high_water_mark(self, dag2d):
        sim = self._sim(dag2d)
        total = 0.0
        for c in range(4):
            sim.prefetch(0, c)
            total += float(sim.panel_bytes[c])
        g = sim.gpus[0]
        assert g.peak_bytes == pytest.approx(total)


class TestDataMovementTrace:
    """The DataEvent stream: emitted on offloaded runs, mirrored into
    the legacy transfer rows, and consistent with the byte counters."""

    @pytest.fixture(scope="class")
    def offload_run(self):
        from repro.sparse.generators import grid_laplacian_2d
        from repro.symbolic import SymbolicOptions

        res = analyze(grid_laplacian_2d(32, jitter=0.05, seed=0),
                      SymbolicOptions(split_max_width=32))
        pol = get_policy("parsec", gpu_flops_threshold=1e3)
        dag = build_dag(res.symbol, "llt",
                        granularity=pol.traits.granularity,
                        recompute_ld=pol.traits.recompute_ld)
        machine = mirage(n_cores=4, n_gpus=1, streams_per_gpu=2)
        return dag, machine, simulate(dag, machine, pol)

    def test_data_events_emitted(self, offload_run):
        _, _, r = offload_run
        kinds = {e.kind for e in r.trace.data_events}
        assert "h2d" in kinds
        assert all(k in ("h2d", "d2h", "evict") for k in kinds)
        reasons = {e.reason for e in r.trace.data_events}
        assert reasons <= {"demand", "prefetch", "writeback", "capacity"}

    def test_bytes_moved_matches_counters(self, offload_run):
        _, _, r = offload_run
        assert r.trace.bytes_moved("h2d") == pytest.approx(r.bytes_h2d)
        assert r.trace.bytes_moved("d2h") == pytest.approx(r.bytes_d2h)

    def test_transfers_mirror_data_events(self, offload_run):
        _, _, r = offload_run
        moved = [e for e in r.trace.data_events if e.kind != "evict"]
        assert len(r.trace.transfers) == len(moved)
        lanes = {t.resource for t in r.trace.transfers}
        assert lanes <= {"link0:h2d", "link0:d2h"}

    def test_peak_gpu_bytes_positive_and_bounded(self, offload_run):
        _, machine, r = offload_run
        assert 0 < r.peak_gpu_bytes <= machine.gpu.memory_bytes

    def test_sorted_data_events_ordered_by_end(self, offload_run):
        _, _, r = offload_run
        ends = [e.end for e in r.trace.sorted_data_events()]
        assert ends == sorted(ends)

    def test_cpu_only_run_has_no_data_events(self, dag2d):
        r = run(dag2d, mirage(n_cores=4), "parsec")
        assert r.trace.data_events == []
        assert r.peak_gpu_bytes == 0.0
