"""C7xx concurrency auditor + RV4xx lock-discipline lint tests.

Live coverage: sync-instrumented threaded runs must come out clean for
every scheduler and both fan-in accumulation modes, and instrumentation
off must mean *off* (no events, no meta, unchanged numerics).  Checker
coverage: each C7xx code is triggered either by one of the shipped
fault injectors or by a surgical hand-corruption of a real trace.
RV4xx coverage: each lint rule on synthetic sources, plus the
noqa-stripped real runtime tree.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.dag import build_dag
from repro.runtime.threaded import factorize_threaded
from repro.runtime.tracing import ExecutionTrace, SyncEvent
from repro.symbolic import analyze
from repro.verify.concurrency import (
    _restamp,
    drop_sync_event,
    swallow_wakeup,
    unlocked_scatter,
    verify_concurrency,
)
from repro.verify.lockdiscipline import (
    lockdiscipline_paths,
    lockdiscipline_report,
    lockdiscipline_sources,
)


def _traced_run(mat, factotype="llt", *, accumulate=False,
                scheduler="ws", n_workers=3, record_sync=True):
    res = analyze(mat)
    permuted = mat.permute(res.perm.perm)
    trace = ExecutionTrace()
    factor = factorize_threaded(
        res.symbol, permuted, factotype, n_workers=n_workers,
        trace=trace, scheduler=scheduler, accumulate=accumulate,
        record_sync=record_sync,
    )
    dag = build_dag(res.symbol, factotype, granularity="2d",
                    dtype=factor.dtype)
    return dag, trace, factor


def _codes(report, errors_only=True):
    return {f.code for f in report.findings
            if not errors_only or f.severity == "error"}


# ----------------------------------------------------------------------
# clean runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler",
                         ["fifo", "ws", "priority", "affinity",
                          "inverse-priority"])
@pytest.mark.parametrize("accumulate", [False, True])
def test_clean_run_passes(grid2d_small, scheduler, accumulate):
    dag, trace, _ = _traced_run(grid2d_small, accumulate=accumulate,
                                scheduler=scheduler)
    rep = verify_concurrency(dag, trace)
    assert rep.ok, rep.format()
    assert rep.stats["sync_events"] > 0
    assert rep.stats["lock_windows"] > 0
    assert rep.stats["mutex_groups"] > 0


def test_solve_run_passes(grid2d_small):
    from repro.core.triangular import solve_factored
    from repro.dag.solve_builder import build_solve_dag
    from repro.runtime.threaded import solve_threaded

    res = analyze(grid2d_small)
    permuted = grid2d_small.permute(res.perm.perm)
    factor = factorize_threaded(res.symbol, permuted, "llt", n_workers=3)
    b = np.random.default_rng(7).standard_normal(permuted.n_rows)
    trace = ExecutionTrace()
    x = solve_threaded(factor, b, n_workers=3, trace=trace,
                       record_sync=True)
    assert np.allclose(x, solve_factored(factor, b), atol=1e-11)
    dag = build_solve_dag(res.symbol, "llt", dtype=factor.dtype)
    rep = verify_concurrency(dag, trace)
    assert rep.ok, rep.format()


def test_ldlt_accumulate_run_passes(grid2d_small):
    dag, trace, _ = _traced_run(grid2d_small, "ldlt", accumulate=True)
    rep = verify_concurrency(dag, trace)
    assert rep.ok, rep.format()


# ----------------------------------------------------------------------
# zero-overhead-when-off
# ----------------------------------------------------------------------
def test_off_records_nothing(grid2d_small):
    dag, trace, _ = _traced_run(grid2d_small, record_sync=False)
    assert trace.sync_events == []
    assert "sync_trace" not in trace.meta
    assert "sync_stats" not in trace.meta
    rep = verify_concurrency(dag, trace)
    # Uninstrumented: the auditor abstains with an INFO, not a failure.
    assert rep.ok
    assert "C700" in _codes(rep, errors_only=False)


def test_instrumentation_does_not_change_numerics(grid2d_small):
    """One-worker runs are deterministic, so the factors with tracing
    on and off must agree *bitwise* — instrumentation reads clocks but
    never reorders or perturbs the numeric schedule."""
    _, _, off = _traced_run(grid2d_small, n_workers=1,
                            record_sync=False)
    _, _, on = _traced_run(grid2d_small, n_workers=1, record_sync=True)
    for a, b in zip(off.L, on.L):
        assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# meta provenance (sync_stats stamp)
# ----------------------------------------------------------------------
def test_meta_sync_stats_match_events(grid2d_small):
    _, trace, _ = _traced_run(grid2d_small, accumulate=True)
    assert trace.meta["sync_trace"] is True
    stats = trace.meta["sync_stats"]
    counts = {}
    held = wait = 0.0
    for e in trace.sync_events:
        counts[e.kind] = counts.get(e.kind, 0) + 1
        if e.kind == "lock":
            held += e.duration
            wait += e.wait_s
    assert stats["counts"] == counts
    assert stats["lock_held_s"] == pytest.approx(held, abs=1e-9)
    assert stats["lock_wait_s"] == pytest.approx(wait, abs=1e-9)
    # The per-object aggregation agrees with the stamped total.
    assert sum(trace.lock_held_time().values()) == pytest.approx(
        held, abs=1e-9)


def test_stale_meta_is_convicted(grid2d_small):
    dag, trace, _ = _traced_run(grid2d_small)
    trace.meta["sync_stats"] = dict(trace.meta["sync_stats"],
                                    lock_held_s=123.0)
    assert "C707" in _codes(verify_concurrency(dag, trace))


# ----------------------------------------------------------------------
# the shipped injectors
# ----------------------------------------------------------------------
def test_drop_sync_event_caught(grid2d_small):
    dag, trace, _ = _traced_run(grid2d_small)
    bad = drop_sync_event(trace)
    codes = _codes(verify_concurrency(dag, bad))
    assert "C707" in codes
    # The original trace is untouched (injectors clone).
    assert verify_concurrency(dag, trace).ok


def test_unlocked_scatter_caught(grid2d_small):
    dag, trace, _ = _traced_run(grid2d_small)
    bad = unlocked_scatter(trace)
    rep = verify_concurrency(dag, bad)
    codes = _codes(rep)
    assert "C703" in codes
    assert "C707" not in codes      # counts/totals were preserved
    assert verify_concurrency(dag, trace).ok


def test_swallow_wakeup_caught(grid2d_small):
    dag, trace, _ = _traced_run(grid2d_small)
    bad = swallow_wakeup(trace, dag)
    rep = verify_concurrency(dag, bad)
    assert _codes(rep) == {"C705"}  # a *runtime* bug: only C705 convicts
    assert verify_concurrency(dag, trace).ok


def test_injectors_raise_when_impossible(grid2d_small):
    dag, trace, _ = _traced_run(grid2d_small, record_sync=False)
    with pytest.raises(ValueError):
        drop_sync_event(trace)
    with pytest.raises(ValueError):
        unlocked_scatter(trace)


# ----------------------------------------------------------------------
# hand-built corruptions for the remaining codes
# ----------------------------------------------------------------------
def test_c701_overlapping_holds(grid2d_small):
    """Two overlapping hold windows of one panel mutex on different
    workers: mutual exclusion provably failed."""
    dag, trace, _ = _traced_run(grid2d_small)
    hold = next(e for e in trace.sorted_sync_events()
                if e.kind == "lock" and e.obj.startswith("panel"))
    # A phantom second hold of the same object, same window, from a
    # worker index far outside the pool (keeps program order and the
    # nesting scan out of the picture).
    trace.sync_events.append(SyncEvent(
        "lock", hold.worker + 100, hold.obj, -5, hold.start, hold.end))
    _restamp(trace)
    assert "C701" in _codes(verify_concurrency(dag, trace))


def test_c702_unpublished_read(grid2d_small):
    """Delay one interior task's publish past a successor's start: the
    successor read a completion nobody had published yet."""
    dag, trace, _ = _traced_run(grid2d_small)
    pred = succ = None
    for e in trace.sorted_events():
        succs = dag.successors(int(e.task))
        if len(succs):
            pred, succ = int(e.task), int(succs[0])
            break
    assert pred is not None
    succ_start = next(e.start for e in trace.events if e.task == succ)
    trace.sync_events = [
        (SyncEvent(e.kind, e.worker, e.obj, e.task, succ_start + 1.0,
                   succ_start + 1.0)
         if e.kind == "publish" and e.task == pred else e)
        for e in trace.sync_events
    ]
    _restamp(trace)
    assert "C702" in _codes(verify_concurrency(dag, trace))


def test_c704_flush_after_publish(grid2d_small):
    """A batched update whose locked flush lands *after* its completion
    was published: successors could read the panel too early."""
    dag, trace, _ = _traced_run(grid2d_small)
    mutex = dag.mutex
    victim = next(t for t in (e.task for e in trace.sorted_events())
                  if int(mutex[t]) >= 0)
    pub = next(e for e in trace.sync_events
               if e.kind == "publish" and e.task == victim)
    obj = f"panel{int(mutex[victim])}"
    trace.sync_events.append(SyncEvent(
        "flush", 0, obj, victim, pub.start + 0.5, pub.start + 1.0, n=2))
    _restamp(trace)
    assert "C704" in _codes(verify_concurrency(dag, trace))


def test_c706_lock_order_cycle(grid2d_small):
    """Hand-crafted nested holds in opposite orders on two (phantom)
    workers: nesting warns, the A->B->A cycle errors."""
    dag, trace, _ = _traced_run(grid2d_small)
    t0 = max(e.end for e in trace.events) + 1.0
    for w, (first, second) in ((50, ("lkA", "lkB")),
                               (51, ("lkB", "lkA"))):
        trace.sync_events.append(SyncEvent(
            "lock", w, first, -5, t0, t0 + 1.0))
        trace.sync_events.append(SyncEvent(
            "lock", w, second, -5, t0 + 0.2, t0 + 0.4))
    _restamp(trace)
    rep = verify_concurrency(dag, trace)
    errors = [f for f in rep.findings
              if f.code == "C706" and f.severity == "error"]
    warnings = [f for f in rep.findings
                if f.code == "C706" and f.severity == "warning"]
    assert errors and "lkA" in errors[0].message
    assert len(warnings) == 2       # each nesting is itself warned


# ----------------------------------------------------------------------
# RV4xx lock-discipline lint
# ----------------------------------------------------------------------
_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_real_tree_is_clean():
    findings = lockdiscipline_paths()
    assert findings == []
    rep = lockdiscipline_report()
    assert rep.ok


def test_noqa_stripped_tree_flags_the_counters():
    """The four best-effort counters are deliberate and carry ``noqa``;
    stripping the suppressions must expose exactly them (the linter
    sees the sites, the tree just vouches for them)."""
    sources = {}
    for name in ("runtime/threaded.py", "runtime/scheduling.py"):
        p = _SRC / name
        sources[str(p)] = re.sub(r"#\s*noqa: RV401", "", p.read_text())
    findings = lockdiscipline_sources(sources)
    assert [f.code for f in findings] == ["RV401"] * 4
    by_file = {}
    for f in findings:
        by_file.setdefault(Path(f.path).name, 0)
        by_file[Path(f.path).name] += 1
    assert by_file == {"threaded.py": 3, "scheduling.py": 1}


def test_rv401_unlocked_shared_write():
    src = """
import threading
class Pool:
    def __init__(self):
        self.lock = threading.Lock()
        self.n_done = 0
        self.n_done += 1          # setup method: exempt
    def good(self):
        with self.lock:
            self.n_done += 1
    def bad(self):
        self.n_done += 1
    def vouched(self):
        self.n_done += 1  # noqa: RV401
    def local_ok(self):
        n = 0
        n += 1
"""
    findings = lockdiscipline_sources({"m.py": src})
    assert [(f.code, f.line) for f in findings] == [("RV401", 12)]


def test_rv401_inherited_locks_and_lock_tables():
    src = """
import threading
class Base:
    def setup(self):
        self.locks = [threading.Lock() for _ in range(4)]
        self.count = 0
class Child(Base):
    def bad(self):
        self.count += 1
    def good(self):
        with self.locks[0]:
            self.count += 1
class NoLocks:
    def fine(self):
        self.count += 1
"""
    findings = lockdiscipline_sources({"m.py": src})
    assert [(f.code, f.line) for f in findings] == [("RV401", 9)]


def test_rv402_wait_without_predicate_loop():
    src = """
import threading
class Waiter:
    def __init__(self):
        self.cv = threading.Condition()
        self.ready = False
    def bad(self):
        with self.cv:
            self.cv.wait()
    def good(self):
        with self.cv:
            while not self.ready:
                self.cv.wait()
"""
    findings = lockdiscipline_sources({"m.py": src})
    assert [(f.code, f.line) for f in findings] == [("RV402", 9)]


def test_rv403_inconsistent_lock_order():
    src = """
import threading
class TwoLocks:
    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()
    def one(self):
        with self.a:
            with self.b:
                pass
    def two(self):
        with self.b:
            with self.a:
                pass
"""
    findings = lockdiscipline_sources({"m.py": src})
    assert [f.code for f in findings] == ["RV403"]
    assert "->" in findings[0].message


def test_rv403_consistent_order_is_clean():
    src = """
import threading
class TwoLocks:
    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()
    def one(self):
        with self.a:
            with self.b:
                pass
    def two(self):
        with self.a:
            with self.b:
                pass
"""
    assert lockdiscipline_sources({"m.py": src}) == []


def test_rv404_sleep_as_synchronization():
    src = """
import time
def poll():
    time.sleep(0.05)
def vouched():
    time.sleep(0.05)  # noqa: RV404
"""
    findings = lockdiscipline_sources({"m.py": src})
    assert [(f.code, f.line) for f in findings] == [("RV404", 4)]
