"""Column-count (Gilbert–Ng–Peyton) tests: always compared against the
exact factor computed densely."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic.colcount import column_counts
from repro.symbolic.etree import elimination_tree, postorder
from tests.conftest import random_spd_dense


def exact_counts(dense: np.ndarray) -> np.ndarray:
    L = np.linalg.cholesky(dense)
    return (np.abs(L) > 1e-14).sum(axis=0)


def gnp_counts(mat: SparseMatrixCSC) -> np.ndarray:
    parent = elimination_tree(mat)
    return column_counts(mat, parent, postorder(parent))


def test_tridiagonal():
    import scipy.sparse as sp

    t = sp.diags([np.ones(5) * -0.4, np.full(6, 2.0), np.ones(5) * -0.4],
                 [-1, 0, 1]).tocsc()
    m = SparseMatrixCSC.from_scipy(t)
    assert np.array_equal(gnp_counts(m), [2, 2, 2, 2, 2, 1])


def test_dense_matrix():
    d = random_spd_dense(7, 1.0, 0)
    m = SparseMatrixCSC.from_dense(d)
    assert np.array_equal(gnp_counts(m), np.arange(7, 0, -1))


def test_diagonal_matrix():
    m = SparseMatrixCSC.identity(5)
    assert np.array_equal(gnp_counts(m), np.ones(5))


def test_grid(grid2d_small):
    d = grid2d_small.to_dense()
    # jittered grids have no exact cancellation
    assert np.array_equal(gnp_counts(grid2d_small), exact_counts(d))


def test_arrow():
    n = 8
    d = np.eye(n) * n
    d[-1, :] = 1
    d[:, -1] = 1
    d[-1, -1] = n * n
    m = SparseMatrixCSC.from_dense(d)
    assert np.array_equal(gnp_counts(m), exact_counts(d))


def test_sum_equals_factor_nnz(grid3d_small):
    counts = gnp_counts(grid3d_small)
    L = np.linalg.cholesky(grid3d_small.to_dense())
    assert counts.sum() == (np.abs(L) > 1e-14).sum()


@settings(max_examples=25, deadline=None)
@given(n=st.integers(3, 18), seed=st.integers(0, 5000))
def test_property_counts_exact_on_random_spd(n, seed):
    d = random_spd_dense(n, 0.3, seed)
    m = SparseMatrixCSC.from_dense(d)
    assert np.array_equal(gnp_counts(m), exact_counts(d))
