"""Health monitoring and graceful-degradation tests.

Covers the :class:`~repro.resilience.HealthMonitor` state machine in
isolation (escalation, recovery, probation, quarantine dwell, the
signal floor, expectation learning, hedge thresholds), its wiring into
the machine and distributed simulators (limplock detection, degraded
routing, backpressure, hedged re-execution, monitoring-off identity),
and the jittered recovery backoff satellite.
"""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.distributed import ClusterSpec, map_cblks, simulate_distributed
from repro.machine import mirage, simulate
from repro.resilience import (
    FaultModel,
    FaultSpec,
    HealthMonitor,
    HealthPolicy,
    RecoveryPolicy,
)
from repro.resilience.health import (
    HEALTH_RANK,
    HEALTH_STATES,
    LEGAL_TRANSITIONS,
)
from repro.runtime import get_policy
from repro.symbolic import SymbolicOptions, analyze
from repro.verify import verify_health, verify_resilience, verify_schedule

MACHINE = mirage(n_cores=4, n_gpus=0)


@pytest.fixture(scope="module")
def gsym():
    from repro.sparse.generators import grid_laplacian_2d

    matrix = grid_laplacian_2d(40, jitter=0.05, seed=0)
    return analyze(matrix, SymbolicOptions(split_max_width=32)).symbol


def _native_dag(sym):
    pol = get_policy("native")
    return build_dag(sym, "llt", granularity=pol.traits.granularity,
                     recompute_ld=pol.traits.recompute_ld)


# ----------------------------------------------------------------------
# the state machine in isolation
# ----------------------------------------------------------------------
class TestHealthMonitor:
    POL = HealthPolicy(ewma_alpha=1.0, min_samples=1)

    def _observe_n(self, mon, res, ratio, n, t0=0.0):
        out = []
        for i in range(n):
            out += mon.observe(res, "k", ratio, t0 + i, expected=1.0)
        return out

    def test_starts_healthy(self):
        mon = HealthMonitor(["a", "b"])
        assert mon.state("a") == "healthy"
        assert mon.rank("a") == 0
        assert mon.ewma("a") == 1.0
        mon.register("a")  # idempotent
        assert mon.counts()["healthy"] == 2

    def test_unknown_resource_defaults_healthy(self):
        mon = HealthMonitor()
        assert mon.state("ghost") == "healthy"
        assert mon.rank("ghost") == 0

    def test_escalation_chain(self):
        mon = HealthMonitor(["a", "b"], policy=self.POL)
        trans = self._observe_n(mon, "a", 50.0, 3)
        chain = [(s, d) for (_, s, d, *_rest) in trans]
        assert chain == [("healthy", "suspect"), ("suspect", "degraded"),
                         ("degraded", "quarantined")]
        assert mon.state("a") == "quarantined"
        assert mon.rank("a") == 2
        for edge in chain:
            assert edge in LEGAL_TRANSITIONS

    def test_min_samples_gates_transitions(self):
        mon = HealthMonitor(["a"], policy=HealthPolicy(
            ewma_alpha=1.0, min_samples=5))
        assert self._observe_n(mon, "a", 50.0, 4) == []
        assert mon.state("a") == "healthy"
        assert self._observe_n(mon, "a", 50.0, 1, t0=4.0) != []

    def test_suspect_recovers(self):
        mon = HealthMonitor(["a"], policy=self.POL)
        self._observe_n(mon, "a", 3.0, 1)
        assert mon.state("a") == "suspect"
        trans = self._observe_n(mon, "a", 1.0, 1, t0=1.0)
        assert [(s, d) for (_, s, d, *_r) in trans] == \
            [("suspect", "healthy")]

    def test_degraded_probation_then_healthy(self):
        pol = HealthPolicy(ewma_alpha=1.0, min_samples=1,
                           probation_tasks=2)
        mon = HealthMonitor(["a"], policy=pol)
        self._observe_n(mon, "a", 5.0, 2)
        assert mon.state("a") == "degraded"
        trans = self._observe_n(mon, "a", 1.0, 1, t0=2.0)
        assert [(s, d) for (_, s, d, *_r) in trans] == \
            [("degraded", "probation")]
        # EWMA resets on probation entry; two clean tasks go healthy.
        trans = self._observe_n(mon, "a", 1.0, 2, t0=3.0)
        assert [(s, d) for (_, s, d, *_r) in trans] == \
            [("probation", "healthy")]

    def test_probation_relapse(self):
        mon = HealthMonitor(["a"], policy=self.POL)
        self._observe_n(mon, "a", 5.0, 2)
        self._observe_n(mon, "a", 1.0, 1, t0=2.0)
        assert mon.state("a") == "probation"
        trans = self._observe_n(mon, "a", 10.0, 1, t0=3.0)
        assert [(s, d) for (_, s, d, *_r) in trans] == \
            [("probation", "suspect")]

    def test_quarantine_dwell_probes_out(self):
        pol = HealthPolicy(ewma_alpha=1.0, min_samples=1,
                           quarantine_s=5.0)
        mon = HealthMonitor(["a", "b"], policy=pol)
        self._observe_n(mon, "a", 50.0, 3)
        assert mon.state("a") == "quarantined"
        assert mon.tick(3.0) == []  # dwell not over
        trans = mon.tick(100.0)
        assert [(s, d) for (_, s, d, *_r) in trans] == \
            [("quarantined", "probation")]
        assert mon.tick(101.0) == []  # no repeat

    def test_never_quarantines_last_resource(self):
        mon = HealthMonitor(["a"], policy=self.POL)
        self._observe_n(mon, "a", 50.0, 5)
        # Only resource: may degrade but never quarantine (deadlock).
        assert mon.state("a") == "degraded"

    def test_allow_quarantine_off(self):
        pol = HealthPolicy(ewma_alpha=1.0, min_samples=1,
                           allow_quarantine=False)
        mon = HealthMonitor(["a", "b"], policy=pol)
        self._observe_n(mon, "a", 50.0, 5)
        assert mon.state("a") == "degraded"

    def test_signal_floor(self):
        pol = HealthPolicy(ewma_alpha=1.0, min_samples=1,
                           min_duration_s=1e-3)
        mon = HealthMonitor(["a"], policy=pol)
        # Both duration and expectation under the floor: pure noise.
        for i in range(5):
            assert mon.observe("a", "k", 50e-6, float(i),
                               expected=1e-6) == []
        assert mon.state("a") == "healthy"
        # A duration *above* the floor against a tiny expectation is
        # the limplock signature and must still count.
        trans = mon.observe("a", "k", 5e-3, 10.0, expected=1e-6)
        assert trans and trans[0][2] == "suspect"

    def test_learned_expectation_excludes_flagged(self):
        mon = HealthMonitor(["a", "b"], policy=self.POL)
        mon.observe("a", "k", 1.0, 0.0)  # learns mean = 1.0
        assert mon.expected("k") == pytest.approx(1.0)
        self._observe_n(mon, "b", 50.0, 2, t0=1.0)  # b -> degraded
        assert mon.state("b") == "degraded"
        before = mon.expected("k")
        mon.observe("b", "k", 100.0, 5.0)  # rank>0: must not learn
        assert mon.expected("k") == pytest.approx(before)

    def test_hedge_after(self):
        mon = HealthMonitor(["a"])  # hedge off by default
        assert mon.hedge_after("k") is None
        pol = HealthPolicy(hedge=True, hedge_ratio=3.0, hedge_min_s=0.5)
        mon = HealthMonitor(["a"], policy=pol)
        assert mon.hedge_after("k") == pytest.approx(0.5)  # no basis
        mon.observe("a", "k", 1.0, 0.0)
        assert mon.hedge_after("k") == pytest.approx(3.0)
        mon.observe("a", "tiny", 0.01, 1.0)
        assert mon.hedge_after("tiny") == pytest.approx(0.5)  # floored

    def test_rank_table_covers_all_states(self):
        assert set(HEALTH_RANK) == set(HEALTH_STATES)


# ----------------------------------------------------------------------
# machine simulator integration
# ----------------------------------------------------------------------
class TestMachineSimHealth:
    def _run(self, dag, *, faults=None, health=None):
        return simulate(dag, MACHINE, get_policy("native"),
                        faults=faults, health=health)

    def _limp(self, horizon, factor=50.0, seed=0):
        return FaultModel(
            [FaultSpec("limplock", time=0.1 * horizon, resource=0,
                       factor=factor)], seed=seed)

    def _health(self, horizon, hedge):
        return HealthPolicy(
            min_samples=3, quarantine_ratio=3.0, quarantine_s=0.6 * horizon,
            hedge=hedge, hedge_ratio=3.0)

    def test_monitoring_off_identity(self, gsym):
        dag = _native_dag(gsym)
        plain = self._run(dag)
        rerun = self._run(dag)
        assert rerun.trace.fingerprint() == plain.trace.fingerprint()
        armed = self._run(dag, health=HealthPolicy())
        # No faults: every observation matches the model exactly, so
        # monitoring may add its meta stamp but must not perturb the
        # schedule in any way.
        assert armed.makespan == plain.makespan
        assert [(e.task, e.resource, e.start, e.end)
                for e in armed.trace.sorted_events()] == \
            [(e.task, e.resource, e.start, e.end)
             for e in plain.trace.sorted_events()]
        assert armed.n_health_transitions == 0
        assert not armed.trace.health_events
        assert plain.trace.meta.get("health") is None

    def test_limplock_detected_and_quarantined(self, gsym):
        dag = _native_dag(gsym)
        mk = self._run(dag).makespan
        r = self._run(dag, faults=self._limp(mk),
                      health=self._health(mk, hedge=False))
        assert r.n_health_transitions > 0
        chain = [(e.src, e.dst) for e in r.trace.sorted_health_events()
                 if e.resource == "cpu0"]
        assert ("degraded", "quarantined") in chain
        for edge in chain:
            assert edge in LEGAL_TRANSITIONS
        # All tasks still complete, once each.
        assert sorted(e.task for e in r.trace.events) == \
            list(range(dag.n_tasks))

    def test_limplock_trace_passes_all_audits(self, gsym):
        dag = _native_dag(gsym)
        mk = self._run(dag).makespan
        r = self._run(dag, faults=self._limp(mk),
                      health=self._health(mk, hedge=True))
        for rep in (verify_health(r.trace),
                    verify_resilience(r.trace, dag),
                    verify_schedule(dag, r.trace)):
            assert rep.ok, rep.format()

    def test_hedging_reduces_makespan(self, gsym):
        dag = _native_dag(gsym)
        mk = self._run(dag).makespan
        off = self._run(dag, faults=self._limp(mk),
                        health=self._health(mk, hedge=False))
        on = self._run(dag, faults=self._limp(mk),
                       health=self._health(mk, hedge=True))
        assert on.n_hedges > 0
        assert on.makespan < off.makespan
        kinds = {e.kind for e in on.trace.hedge_events}
        assert kinds == {"launch", "win", "cancel"}

    def test_health_armed_replay_identity(self, gsym):
        dag = _native_dag(gsym)
        mk = self._run(dag).makespan

        def armed():
            return self._run(dag, faults=self._limp(mk),
                             health=self._health(mk, hedge=True))

        a, b = armed(), armed()
        assert a.makespan == b.makespan
        assert a.trace.fingerprint() == b.trace.fingerprint()


# ----------------------------------------------------------------------
# distributed simulator integration
# ----------------------------------------------------------------------
class TestDistributedHealth:
    def _run(self, sym, nodes=3, **kw):
        owner = map_cblks(sym, nodes)
        cluster = ClusterSpec(n_nodes=nodes, cores_per_node=2)
        return simulate_distributed(sym, owner, cluster,
                                    collect_trace=True, **kw)

    def test_monitoring_off_identity(self, gsym):
        plain = self._run(gsym)
        rerun = self._run(gsym)
        assert rerun.trace.fingerprint() == plain.trace.fingerprint()
        armed = self._run(gsym, health=HealthPolicy())
        assert armed.makespan == plain.makespan
        assert [(e.task, e.resource, e.start, e.end)
                for e in armed.trace.sorted_events()] == \
            [(e.task, e.resource, e.start, e.end)
             for e in plain.trace.sorted_events()]
        assert armed.n_health_transitions == 0

    def test_limplock_node_degrades_not_quarantined(self, gsym):
        clean = self._run(gsym)
        faults = FaultModel(
            [FaultSpec("limplock", time=0.1 * clean.makespan, resource=0,
                       factor=40.0)], seed=3)
        r = self._run(gsym, faults=faults,
                      health=HealthPolicy(min_samples=3))
        assert r.n_health_transitions > 0
        states = {e.dst for e in r.trace.sorted_health_events()}
        # Owner-bound tasks: quarantine is forced off for the
        # distributed engine — degradation caps at backpressure.
        assert "quarantined" not in states
        assert "degraded" in states or "suspect" in states
        rep = verify_health(r.trace)
        assert rep.ok, rep.format()

    def test_limplock_completes_and_audits_clean(self, gsym):
        clean = self._run(gsym)
        faults = FaultModel(
            [FaultSpec("limplock", time=0.1 * clean.makespan, resource=0,
                       factor=40.0)], seed=3)
        r = self._run(gsym, faults=faults,
                      health=HealthPolicy(min_samples=3))
        assert r.makespan >= clean.makespan
        rep = verify_resilience(r.trace)
        assert rep.ok, rep.format()


# ----------------------------------------------------------------------
# jittered recovery backoff (satellite)
# ----------------------------------------------------------------------
class TestBackoffJitter:
    def test_zero_jitter_is_deterministic(self):
        pol = RecoveryPolicy(backoff_s=0.1, backoff_factor=2.0)
        assert pol.backoff(0) == pytest.approx(0.1)
        assert pol.backoff(1) == pytest.approx(0.2)
        assert pol.backoff(2) == pytest.approx(0.4)
        # u is ignored when jitter is off.
        assert pol.backoff(1, 0.123) == pytest.approx(0.2)

    def test_jitter_requires_draw(self):
        pol = RecoveryPolicy(backoff_s=0.1, jitter=1.0)
        with pytest.raises(ValueError):
            pol.backoff(0)

    def test_full_jitter_spans_zero_to_base(self):
        pol = RecoveryPolicy(backoff_s=0.1, backoff_factor=2.0,
                             jitter=1.0)
        base = 0.4  # attempt 2
        assert pol.backoff(2, 0.0) == pytest.approx(0.0)
        assert pol.backoff(2, 1.0) == pytest.approx(base)
        assert pol.backoff(2, 0.5) == pytest.approx(0.5 * base)

    def test_partial_jitter_keeps_floor(self):
        pol = RecoveryPolicy(backoff_s=0.1, backoff_factor=2.0,
                             jitter=0.5)
        base = 0.4
        assert pol.backoff(2, 0.0) == pytest.approx(0.5 * base)
        assert pol.backoff(2, 1.0) == pytest.approx(base)

    def test_backoff_jitter_draws_are_seeded(self):
        a = FaultModel(seed=5)
        b = FaultModel(seed=5)
        ua = [a.backoff_jitter() for _ in range(4)]
        ub = [b.backoff_jitter() for _ in range(4)]
        assert ua == ub
        assert all(0.0 <= u < 1.0 for u in ua)
        assert a.n_draws == b.n_draws

    def test_jittered_recovery_replays_bit_identically(self, gsym):
        dag = _native_dag(gsym)

        def run():
            faults = FaultModel(
                [FaultSpec("worker-crash", time=0.0, resource=0)],
                seed=11, task_fail_rate=0.02)
            return simulate(
                dag, MACHINE, get_policy("native"), faults=faults,
                recovery=RecoveryPolicy(jitter=1.0))

        a, b = run(), run()
        assert a.makespan == b.makespan
        assert a.trace.fingerprint() == b.trace.fingerprint()

    def test_jitter_desynchronizes_retries(self, gsym):
        """Two policies, same scenario: full jitter must change the
        paid delays vs the synchronized schedule (that is its job)."""
        dag = _native_dag(gsym)

        def run(jitter):
            faults = FaultModel(
                [FaultSpec("worker-crash", time=0.0, resource=0)],
                seed=11, task_fail_rate=0.05)
            return simulate(
                dag, MACHINE, get_policy("native"), faults=faults,
                recovery=RecoveryPolicy(jitter=jitter))

        plain = run(0.0)
        jit = run(1.0)
        d0 = [e.delay_s for e in plain.trace.sorted_recovery_events()
              if e.delay_s > 0.0]
        d1 = [e.delay_s for e in jit.trace.sorted_recovery_events()
              if e.delay_s > 0.0]
        assert d0 and d1
        assert d0 != d1
