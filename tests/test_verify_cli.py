"""End-to-end tests of ``python -m repro verify`` (in-process)."""

import pytest

from repro.__main__ import main


def run(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


def test_clean_run_exits_zero(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--cores", "2", "--gpus", "1"], capsys)
    assert code == 0
    assert "hazards[2d]" in out
    assert "hazards[1d]" in out
    assert "hazards[subtree]" in out
    assert "schedule[parsec]" in out
    assert "lint[" in out
    assert "0 error finding(s)" in out


def test_single_granularity_and_policy(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "8",
                     "--granularity", "2d", "--policy", "native",
                     "--no-lint", "--cores", "2", "--gpus", "0"], capsys)
    assert code == 0
    assert "hazards[2d]" in out and "hazards[1d]" not in out
    assert "schedule[native]" in out


def test_inject_drop_edge_fails_and_names_pair(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--granularity", "2d", "--no-schedule", "--no-lint",
                     "--inject", "drop-edge"], capsys)
    assert code == 1
    assert "drop-edge" in out
    assert "missing dependency path" in out
    # The offending pair is named: "missing dependency path U -> V".
    import re

    assert re.search(r"missing dependency path \d+ -> \d+", out)


def test_inject_overlap_trace_fails(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--no-hazards", "--no-lint", "--cores", "2",
                     "--gpus", "0", "--inject", "overlap-trace"], capsys)
    assert code == 1
    assert "overlap on cpu" in out
    import re

    assert re.search(r"tasks \d+ and \d+", out)


def test_inject_break_mutex_fails(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--no-hazards", "--no-lint", "--cores", "2",
                     "--gpus", "1", "--inject", "break-mutex"], capsys)
    assert code == 1
    assert "violated" in out


def test_lint_only_flags_bad_tree(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class F:\n"
        "    x: int\n"
        "def f():\n"
        "    t = F(1)\n"
        "    t.x = 2\n"
    )
    code, out = run(["verify", "--no-hazards", "--no-schedule",
                     "--lint-path", str(tmp_path)], capsys)
    assert code == 1
    assert "RV301" in out


def test_verbose_shows_info_findings(capsys):
    # 1D accum groups surface as info (H109) only with --verbose.
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--granularity", "1d", "--no-schedule", "--no-lint",
                     "-v"], capsys)
    assert code == 0
    assert "H109" in out


def test_unknown_matrix_name_exits_with_message():
    with pytest.raises(SystemExit, match="neither a generator name"):
        main(["verify", "--matrix", "/nonexistent/mat.mtx",
              "--no-lint", "--no-schedule"])
    with pytest.raises(SystemExit, match="lap2d"):
        main(["verify", "--matrix", "lapd2", "--no-lint", "--no-schedule"])


def test_clean_run_includes_memory_and_symbolic_passes(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--no-lint", "--cores", "2", "--gpus", "1"], capsys)
    assert code == 0
    assert "memory[parsec]" in out
    assert "symbolic[exact]" in out
    assert "symbolic[amalgamated]" in out
    assert "dag-costs[2d]" in out


def test_passes_can_be_disabled(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--no-lint", "--no-hazards", "--no-memory",
                     "--no-symbolic", "--cores", "2", "--gpus", "1"], capsys)
    assert code == 0
    assert "memory[" not in out
    assert "symbolic[" not in out
    assert "schedule[" in out


def test_inject_drop_transfer_fails_naming_task_and_panel(capsys):
    # The memory injections need a problem large enough that the
    # scheduler offloads at the forced threshold (hence --size 32).
    code, out = run(["verify", "--matrix", "lap2d", "--size", "32",
                     "--no-lint", "--no-hazards", "--no-symbolic",
                     "--policy", "parsec", "--cores", "2", "--gpus", "1",
                     "--inject", "drop-transfer"], capsys)
    assert code == 1
    assert "memory[parsec+drop-transfer]" in out
    assert "M401" in out
    import re

    assert re.search(r"task \d+", out) and re.search(r"panel \d+", out)


def test_inject_overflow_residency_fails_naming_gpu_and_panel(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "32",
                     "--no-lint", "--no-hazards", "--no-symbolic",
                     "--policy", "parsec", "--cores", "2", "--gpus", "1",
                     "--inject", "overflow-residency"], capsys)
    assert code == 1
    assert "memory[parsec+overflow-residency]" in out
    assert "M402" in out
    import re

    assert re.search(r"gpu\d+ over capacity", out)
    assert re.search(r"panel \d+", out)


def test_inject_skew_flops_fails_naming_task(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--no-lint", "--no-hazards", "--no-schedule",
                     "--inject", "skew-flops"], capsys)
    assert code == 1
    assert "N504" in out
    import re

    assert re.search(r"dag-costs\[2d\+skew-flops\(task \d+\)\]", out)


def test_memory_inject_without_gpu_refused():
    with pytest.raises(SystemExit, match="needs at least one GPU"):
        main(["verify", "--matrix", "lap2d", "--size", "32", "--no-lint",
              "--gpus", "0", "--inject", "drop-transfer"])


def test_inject_stale_split_fails_naming_task(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--no-lint", "--no-hazards", "--no-schedule",
                     "--inject", "stale-split"], capsys)
    assert code == 1
    assert "N509" in out and "H110" in out
    import re

    assert re.search(r"2d-split\(\d+\)\+stale-split\(task \d+\)", out)


def test_stale_split_inject_requires_symbolic_pass():
    with pytest.raises(SystemExit, match="corrupts the symbolic pass"):
        main(["verify", "--matrix", "lap2d", "--size", "10", "--no-lint",
              "--no-symbolic", "--inject", "stale-split"])


def test_resilience_pass_runs_clean(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "12",
                     "--no-hazards", "--no-symbolic", "--no-lint",
                     "--no-schedule", "--policy", "native"], capsys)
    assert code == 0
    assert "resilience[native]" in out
    assert "schedule[native+faults]" in out


def test_inject_drop_recovery_fails_naming_fault(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "12",
                     "--no-hazards", "--no-symbolic", "--no-lint",
                     "--no-schedule", "--policy", "native",
                     "--inject", "drop-recovery"], capsys)
    assert code == 1
    assert "resilience[native+drop-recovery]" in out
    assert "R601" in out
    assert "has no matching recovery" in out


def test_inject_double_complete_fails_naming_task(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "12",
                     "--no-hazards", "--no-symbolic", "--no-lint",
                     "--no-schedule", "--policy", "native",
                     "--inject", "double-complete"], capsys)
    assert code == 1
    assert "resilience[native+double-complete]" in out
    assert "R602" in out
    assert "completes twice" in out


def test_resilience_inject_without_resilience_pass_refused():
    with pytest.raises(SystemExit, match="resilience"):
        main(["verify", "--matrix", "lap2d", "--size", "12", "--no-lint",
              "--no-resilience", "--inject", "drop-recovery"])


_DET_BASE = ["verify", "--matrix", "lap2d", "--size", "12",
             "--no-hazards", "--no-schedule", "--no-symbolic",
             "--no-resilience", "--no-concurrency", "--no-lint",
             "--policy", "native", "--cores", "2", "--gpus", "0"]


def test_determinism_pass_runs_clean(capsys):
    code, out = run(list(_DET_BASE), capsys)
    assert code == 0
    assert "determinism[native+faults]" in out
    assert "determinism[burst]" in out
    assert "rng_draws" in out


def test_inject_reorder_ties_fails(capsys):
    code, out = run(_DET_BASE + ["--inject", "reorder-ties"], capsys)
    assert code == 1
    assert "reorder-ties" in out
    assert "D802" in out and "D801" in out


def test_inject_reseed_midrun_fails(capsys):
    code, out = run(_DET_BASE + ["--inject", "reseed-midrun"], capsys)
    assert code == 1
    assert "reseed-midrun" in out
    assert "D801" in out or "D803" in out


def test_inject_drop_seq_fails(capsys):
    code, out = run(_DET_BASE + ["--inject", "drop-seq"], capsys)
    assert code == 1
    assert "drop-seq" in out
    assert "D802" in out


def test_determinism_inject_without_pass_refused():
    with pytest.raises(SystemExit, match="determinism"):
        main(["verify", "--matrix", "lap2d", "--size", "12", "--no-lint",
              "--no-determinism", "--inject", "drop-seq"])


def test_lint_pass_includes_eventloop(capsys):
    code, out = run(["verify", "--no-hazards", "--no-schedule",
                     "--no-symbolic", "--no-resilience",
                     "--no-concurrency", "--no-determinism"], capsys)
    assert code == 0
    assert "eventloop" in out
