"""End-to-end tests of ``python -m repro verify`` (in-process)."""

import pytest

from repro.__main__ import main


def run(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


def test_clean_run_exits_zero(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--cores", "2", "--gpus", "1"], capsys)
    assert code == 0
    assert "hazards[2d]" in out
    assert "hazards[1d]" in out
    assert "hazards[subtree]" in out
    assert "schedule[parsec]" in out
    assert "lint[" in out
    assert "0 error finding(s)" in out


def test_single_granularity_and_policy(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "8",
                     "--granularity", "2d", "--policy", "native",
                     "--no-lint", "--cores", "2", "--gpus", "0"], capsys)
    assert code == 0
    assert "hazards[2d]" in out and "hazards[1d]" not in out
    assert "schedule[native]" in out


def test_inject_drop_edge_fails_and_names_pair(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--granularity", "2d", "--no-schedule", "--no-lint",
                     "--inject", "drop-edge"], capsys)
    assert code == 1
    assert "drop-edge" in out
    assert "missing dependency path" in out
    # The offending pair is named: "missing dependency path U -> V".
    import re

    assert re.search(r"missing dependency path \d+ -> \d+", out)


def test_inject_overlap_trace_fails(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--no-hazards", "--no-lint", "--cores", "2",
                     "--gpus", "0", "--inject", "overlap-trace"], capsys)
    assert code == 1
    assert "overlap on cpu" in out
    import re

    assert re.search(r"tasks \d+ and \d+", out)


def test_inject_break_mutex_fails(capsys):
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--no-hazards", "--no-lint", "--cores", "2",
                     "--gpus", "1", "--inject", "break-mutex"], capsys)
    assert code == 1
    assert "violated" in out


def test_lint_only_flags_bad_tree(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class F:\n"
        "    x: int\n"
        "def f():\n"
        "    t = F(1)\n"
        "    t.x = 2\n"
    )
    code, out = run(["verify", "--no-hazards", "--no-schedule",
                     "--lint-path", str(tmp_path)], capsys)
    assert code == 1
    assert "RV301" in out


def test_verbose_shows_info_findings(capsys):
    # 1D accum groups surface as info (H109) only with --verbose.
    code, out = run(["verify", "--matrix", "lap2d", "--size", "10",
                     "--granularity", "1d", "--no-schedule", "--no-lint",
                     "-v"], capsys)
    assert code == 0
    assert "H109" in out


def test_unknown_matrix_name_exits_with_message():
    with pytest.raises(SystemExit, match="neither a generator name"):
        main(["verify", "--matrix", "/nonexistent/mat.mtx",
              "--no-lint", "--no-schedule"])
    with pytest.raises(SystemExit, match="lap2d"):
        main(["verify", "--matrix", "lapd2", "--no-lint", "--no-schedule"])
