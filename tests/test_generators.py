"""Tests for the matrix generators."""

import numpy as np
import pytest

from repro.sparse.generators import (
    elasticity_like_3d,
    grid_laplacian_2d,
    grid_laplacian_3d,
    helmholtz_like_2d,
    random_pattern_spd,
    shell_like_2d,
)


def _is_symmetric(mat) -> bool:
    d = mat.to_dense()
    return np.allclose(d, d.T)


def _min_eig(mat) -> float:
    return float(np.linalg.eigvalsh(mat.to_dense()).min())


class TestGrid2D:
    def test_size_and_symmetry(self):
        m = grid_laplacian_2d(5, 4)
        assert m.shape == (20, 20)
        assert _is_symmetric(m)
        m.check()

    def test_spd(self):
        assert _min_eig(grid_laplacian_2d(6)) > 0

    def test_spd_with_jitter(self):
        assert _min_eig(grid_laplacian_2d(6, jitter=0.3, seed=1)) > 0

    def test_nine_point_has_more_nnz(self):
        m5 = grid_laplacian_2d(6, stencil=5)
        m9 = grid_laplacian_2d(6, stencil=9)
        assert m9.nnz > m5.nnz

    def test_bad_stencil(self):
        with pytest.raises(ValueError):
            grid_laplacian_2d(4, stencil=7)

    def test_deterministic(self):
        a = grid_laplacian_2d(5, jitter=0.2, seed=9)
        b = grid_laplacian_2d(5, jitter=0.2, seed=9)
        assert np.array_equal(a.values, b.values)

    def test_interior_degree_5pt(self):
        m = grid_laplacian_2d(5)
        # interior vertex has 4 neighbours + diagonal = 5 entries
        counts = np.diff(m.colptr)
        assert counts.max() == 5


class TestGrid3D:
    def test_size(self):
        m = grid_laplacian_3d(3, 4, 5)
        assert m.shape == (60, 60)
        m.check()

    def test_spd(self):
        assert _min_eig(grid_laplacian_3d(3)) > 0

    def test_27_point_stencil(self):
        m7 = grid_laplacian_3d(4, stencil=7)
        m27 = grid_laplacian_3d(4, stencil=27)
        assert m27.nnz > 2 * m7.nnz
        assert _is_symmetric(m27)

    def test_27_point_interior_degree(self):
        m = grid_laplacian_3d(5, stencil=27)
        assert np.diff(m.colptr).max() == 27

    def test_bad_stencil(self):
        with pytest.raises(ValueError):
            grid_laplacian_3d(3, stencil=9)

    def test_complex_dtype(self):
        m = grid_laplacian_3d(3, dtype=np.complex128, jitter=0.1, seed=2)
        assert np.issubdtype(m.dtype, np.complexfloating)
        assert _is_symmetric(m)  # complex symmetric, not Hermitian


class TestOthers:
    def test_random_pattern_spd(self):
        m = random_pattern_spd(40, 5.0, seed=1)
        assert _is_symmetric(m)
        assert _min_eig(m) > 0

    def test_random_pattern_locality_reduces_bandwidth(self):
        loc = random_pattern_spd(100, 6.0, seed=2, locality=0.9)
        uni = random_pattern_spd(100, 6.0, seed=2, locality=0.0)
        def bw(m):
            r, c, _ = m.to_coo()
            return int(np.abs(r - c).max())
        assert bw(loc) < bw(uni)

    def test_elasticity_blocks(self):
        m = elasticity_like_3d(2, dofs_per_node=3)
        assert m.shape == (24, 24)
        assert _is_symmetric(m)
        assert _min_eig(m) > 0
        # Intra-node coupling: dense 3x3 diagonal blocks.
        d = m.to_dense()
        assert np.all(d[:3, :3] != 0)

    def test_helmholtz_complex_symmetric(self):
        m = helmholtz_like_2d(5)
        d = m.to_dense()
        assert np.allclose(d, d.T)
        assert not np.allclose(d, np.conj(d.T))  # NOT Hermitian
        assert np.all(np.diag(d).imag > 0)

    def test_shell_shape(self):
        m = shell_like_2d(8, 5)
        assert m.shape == (40, 40)
        assert _min_eig(m) > 0

    def test_all_have_full_diagonal(self):
        for m in (grid_laplacian_2d(4), grid_laplacian_3d(3),
                  elasticity_like_3d(2), helmholtz_like_2d(4),
                  shell_like_2d(4, 3), random_pattern_spd(20, 4.0)):
            assert np.all(m.diagonal() != 0)
