"""Condition-estimation tests."""

import numpy as np
import pytest

from repro import SparseSolver
from repro.core.condest import condest, inverse_norm1_estimate, norm1
from repro.sparse.csc import SparseMatrixCSC
from tests.conftest import random_spd_dense


class TestNorm1:
    def test_exact_on_dense(self):
        d = np.array([[1.0, -4.0], [2.0, 1.0]])
        m = SparseMatrixCSC.from_dense(d)
        assert norm1(m) == 5.0

    def test_matches_numpy(self):
        d = random_spd_dense(20, 0.4, 0)
        m = SparseMatrixCSC.from_dense(d)
        assert norm1(m) == pytest.approx(np.linalg.norm(d, 1))

    def test_pattern_rejected(self):
        with pytest.raises(ValueError):
            norm1(SparseMatrixCSC.identity(3).pattern())


class TestInverseEstimate:
    @pytest.mark.parametrize("seed", range(4))
    def test_within_factor_of_truth(self, seed):
        d = random_spd_dense(25, 0.4, seed)
        inv = np.linalg.inv(d)
        true = np.linalg.norm(inv, 1)
        est = inverse_norm1_estimate(
            lambda v: np.linalg.solve(d, v),
            lambda v: np.linalg.solve(d.T, v),
            25,
        )
        assert est <= true * (1 + 1e-10)   # lower bound
        assert est >= true / 3.0           # close in practice

    def test_identity(self):
        est = inverse_norm1_estimate(lambda v: v, lambda v: v, 10)
        assert est == pytest.approx(1.0)


class TestCondest:
    def test_spd_grid(self, grid2d_small):
        d = grid2d_small.to_dense()
        true = np.linalg.cond(d, 1)
        s = SparseSolver(grid2d_small)
        est = s.condest()
        assert est <= true * (1 + 1e-8)
        assert est >= true / 5.0

    def test_ill_conditioned_detected(self):
        d = np.diag(np.logspace(0, 8, 20))
        m = SparseMatrixCSC.from_dense(d)
        est = condest(m, lambda v: np.linalg.solve(d, v))
        assert est > 1e7

    def test_well_conditioned_small(self):
        m = SparseMatrixCSC.identity(15)
        est = condest(m, lambda v: v)
        assert est == pytest.approx(1.0)
