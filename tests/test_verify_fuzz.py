"""Property-based fuzzing of the hazard analyzer.

Random sparse problems × granularities: every builder-produced DAG must
analyze clean, and deleting a random edge must be detected — except when
the edge is transitive (possible in 1D DAGs only), in which case the
hazard genuinely stays covered and networkx confirms it.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dag import build_dag
from repro.sparse.generators import random_pattern_spd
from repro.symbolic import SymbolicOptions, analyze
from repro.verify import analyze_hazards, drop_edge, verify_schedule


def build(symbol, granularity, factotype="llt"):
    if granularity == "subtree":
        return build_dag(symbol, factotype, fuse_subtree_flops=1e5)
    return build_dag(symbol, factotype, granularity=granularity)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(20, 120),
    granularity=st.sampled_from(["2d", "1d", "1d-left", "subtree"]),
    factotype=st.sampled_from(["llt", "ldlt", "lu"]),
    split=st.sampled_from([None, 8, 32]),
)
def test_fuzz_builder_dags_are_hazard_free(seed, n, granularity, factotype,
                                           split):
    mat = random_pattern_spd(n, 5.0, seed=seed, locality=0.4)
    res = analyze(mat, SymbolicOptions(split_max_width=split))
    dag = build(res.symbol, granularity, factotype)
    rep = analyze_hazards(dag)
    assert rep.ok, rep.format()
    assert rep.stats["uncovered_pairs"] == 0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(25, 110),
    granularity=st.sampled_from(["2d", "1d", "subtree"]),
)
def test_fuzz_dropped_edge_is_detected(seed, n, granularity):
    import networkx as nx

    mat = random_pattern_spd(n, 5.0, seed=seed, locality=0.4)
    res = analyze(mat, SymbolicOptions(split_max_width=16))
    dag = build(res.symbol, granularity)
    if dag.n_edges == 0:
        return
    rng = np.random.default_rng(seed)
    e = int(rng.integers(dag.n_edges))
    heads = np.repeat(np.arange(dag.n_tasks, dtype=np.int64),
                      np.diff(dag.succ_ptr))
    u, v = int(heads[e]), int(dag.succ_list[e])
    mutant = drop_edge(dag, e)
    rep = analyze_hazards(mutant)

    g = nx.DiGraph()
    g.add_nodes_from(range(mutant.n_tasks))
    mheads = np.repeat(np.arange(mutant.n_tasks, dtype=np.int64),
                       np.diff(mutant.succ_ptr))
    g.add_edges_from(zip(mheads.tolist(), mutant.succ_list.tolist()))
    still_covered = nx.has_path(g, u, v)

    if granularity in ("2d", "subtree"):
        # Every builder edge at these granularities is hazard-critical.
        assert not still_covered
    assert rep.ok == still_covered, (
        f"edge {u}->{v} ({granularity}): detected={not rep.ok}, "
        f"covered elsewhere={still_covered}\n" + rep.format()
    )
    if not still_covered:
        assert any(f.tasks == (u, v) for f in rep.errors())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(25, 90))
def test_fuzz_simulated_trace_verifies(seed, n):
    from repro.machine import mirage, simulate
    from repro.runtime import get_policy

    mat = random_pattern_spd(n, 5.0, seed=seed, locality=0.4)
    res = analyze(mat)
    pol = get_policy("parsec")
    dag = build_dag(res.symbol, "llt",
                    granularity=pol.traits.granularity,
                    recompute_ld=pol.traits.recompute_ld)
    r = simulate(dag, mirage(n_cores=3, n_gpus=1), pol)
    rep = verify_schedule(dag, r.trace)
    assert rep.ok, rep.format()
    # Corrupting the trace afterwards must be caught.
    from repro.runtime.tracing import ExecutionTrace, TraceEvent

    if len(r.trace.events) >= 2:
        evs = sorted(r.trace.events, key=lambda e: e.start)
        a, rest = evs[0], evs[1:]
        shifted = TraceEvent(a.task, a.resource, a.start + 1.0, a.end + 1.0)
        bad = ExecutionTrace(events=[shifted] + rest,
                             transfers=r.trace.transfers)
        if np.diff(dag.succ_ptr)[a.task] > 0:
            assert not verify_schedule(dag, bad).ok
