"""Distributed-memory simulation tests (mapping + fan-in communication)."""

import numpy as np
import pytest

from repro.distributed import (
    ClusterSpec,
    map_cblks,
    simulate_distributed,
    subtree_loads,
)
from repro.distributed.mapping import _snode_tree
from repro.symbolic import analyze


@pytest.fixture(scope="module")
def sym(grid2d_medium):
    return analyze(grid2d_medium).symbol


class TestCluster:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(cores_per_node=0)

    def test_transfer_time(self):
        c = ClusterSpec(net_gbps=1.0, net_latency_s=1e-6)
        assert c.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)
        assert c.total_cores == c.n_nodes * c.cores_per_node


class TestMapping:
    def test_snode_tree_is_forest(self, sym):
        parent = _snode_tree(sym)
        nonroot = parent >= 0
        assert np.all(parent[nonroot] > np.flatnonzero(nonroot))

    def test_subtree_loads_accumulate(self, sym):
        own, subtree, parent = subtree_loads(sym)
        assert np.all(subtree >= own)
        roots = np.flatnonzero(parent == -1)
        assert subtree[roots].sum() == pytest.approx(own.sum())

    @pytest.mark.parametrize("strategy", ["subtree", "block", "cyclic"])
    def test_all_strategies_valid(self, sym, strategy):
        for n in (1, 2, 4, 7):
            owner = map_cblks(sym, n, strategy=strategy)
            assert owner.shape == (sym.n_cblk,)
            assert owner.min() >= 0 and owner.max() < n
            if n > 1 and strategy != "block":
                assert len(np.unique(owner)) > 1

    def test_subtree_balances_load(self, sym):
        own, _, _ = subtree_loads(sym)
        owner = map_cblks(sym, 4)
        per_node = np.zeros(4)
        np.add.at(per_node, owner, own)
        assert per_node.max() <= 3.0 * per_node.mean()

    def test_unknown_strategy(self, sym):
        with pytest.raises(ValueError):
            map_cblks(sym, 2, strategy="metis")

    def test_single_node_all_zero(self, sym):
        assert np.all(map_cblks(sym, 1) == 0)


class TestSimulation:
    def _run(self, sym, nodes, *, fanin=True, strategy="subtree", **kw):
        owner = map_cblks(sym, nodes, strategy=strategy)
        cluster = ClusterSpec(n_nodes=nodes, cores_per_node=4, **kw)
        return simulate_distributed(sym, owner, cluster, fanin=fanin)

    def test_single_node_no_messages(self, sym):
        r = self._run(sym, 1)
        assert r.n_messages == 0 and r.bytes_on_wire == 0
        assert r.makespan > 0

    def test_multi_node_communicates(self, sym):
        r = self._run(sym, 4)
        assert r.n_messages > 0
        assert r.bytes_on_wire > 0

    def test_fanin_reduces_messages_and_bytes(self, sym):
        fi = self._run(sym, 4, fanin=True)
        fo = self._run(sym, 4, fanin=False)
        assert fi.n_messages < fo.n_messages / 3
        assert fi.bytes_on_wire <= fo.bytes_on_wire

    def test_fanin_wins_on_high_latency(self, sym):
        """The §VI trade: accumulating pays when messages are expensive."""
        kw = dict(net_latency_s=200e-6, net_gbps=1.0)
        fi = self._run(sym, 4, fanin=True, **kw)
        fo = self._run(sym, 4, fanin=False, **kw)
        assert fi.makespan < fo.makespan

    def test_deterministic(self, sym):
        a = self._run(sym, 3)
        b = self._run(sym, 3)
        # Exact equality on purpose: re-running the same deterministic
        # simulation must be bitwise identical.
        assert a.makespan == b.makespan  # noqa: RV302
        assert a.n_messages == b.n_messages

    def test_more_nodes_not_slower(self, sym):
        t1 = self._run(sym, 1).makespan
        t4 = self._run(sym, 4).makespan
        assert t4 <= t1 * 1.1

    def test_subtree_beats_cyclic_on_communication(self, sym):
        sub = self._run(sym, 4, strategy="subtree")
        cyc = self._run(sym, 4, strategy="cyclic")
        assert sub.bytes_on_wire < cyc.bytes_on_wire

    def test_trace_collection(self, sym):
        owner = map_cblks(sym, 2)
        r = simulate_distributed(
            sym, owner, ClusterSpec(n_nodes=2, cores_per_node=2),
            collect_trace=True,
        )
        assert r.trace is not None
        assert len(r.trace.events) > sym.n_cblk  # panels + updates (+acc)
        resources = r.trace.resources()
        assert any(res.startswith("n0c") for res in resources)
        assert any(res.startswith("n1c") for res in resources)

    def test_busy_consistent_with_makespan(self, sym):
        r = self._run(sym, 2)
        for busy in r.node_busy:
            assert busy <= 4 * r.makespan + 1e-9
        assert r.load_imbalance >= 1.0

    def test_owner_validation(self, sym):
        cluster = ClusterSpec(n_nodes=2, cores_per_node=2)
        with pytest.raises(ValueError):
            simulate_distributed(sym, np.zeros(3, dtype=np.int64), cluster)
        bad = np.full(sym.n_cblk, 5, dtype=np.int64)
        with pytest.raises(ValueError):
            simulate_distributed(sym, bad, cluster)

    def test_complex_dtype_more_bytes(self, sym):
        owner = map_cblks(sym, 4)
        cluster = ClusterSpec(n_nodes=4, cores_per_node=2)
        rd = simulate_distributed(sym, owner, cluster, factotype="ldlt",
                                  dtype=np.float64)
        rz = simulate_distributed(sym, owner, cluster, factotype="ldlt",
                                  dtype=np.complex128)
        assert rz.bytes_on_wire > rd.bytes_on_wire
