"""Property-based fuzzing of the scheduling stack.

Random sparse problems × policies × machine shapes: every combination
must produce a complete, feasible schedule (the trace checker enforces
dependencies, CPU exclusivity, and update mutexes) that conserves work.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import build_dag
from repro.machine import MachineSpec, mirage, simulate
from repro.runtime import get_policy
from repro.sparse.generators import random_pattern_spd
from repro.symbolic import SymbolicOptions, analyze
from repro.verify import assert_valid_schedule


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(20, 120),
    policy=st.sampled_from(["native", "starpu", "parsec"]),
    cores=st.integers(1, 6),
    gpus=st.integers(0, 2),
    streams=st.integers(1, 3),
    factotype=st.sampled_from(["llt", "ldlt", "lu"]),
    split=st.sampled_from([None, 8, 32]),
)
def test_fuzz_simulated_schedules(seed, n, policy, cores, gpus, streams,
                                  factotype, split):
    mat = random_pattern_spd(n, 5.0, seed=seed, locality=0.4)
    res = analyze(mat, SymbolicOptions(split_max_width=split))
    pol = get_policy(policy)
    dag = build_dag(
        res.symbol, factotype,
        granularity=pol.traits.granularity,
        recompute_ld=pol.traits.recompute_ld,
    )
    machine = mirage(n_cores=cores, n_gpus=gpus,
                     streams_per_gpu=streams if gpus else 1)
    r = simulate(dag, machine, pol)
    assert_valid_schedule(dag, r.trace)
    assert len(r.trace.events) == dag.n_tasks
    assert r.makespan > 0
    # Work conservation: busy time never exceeds capacity x makespan.
    cpu_busy = sum(v for k, v in r.busy.items() if k.startswith("cpu"))
    assert cpu_busy <= r.n_cpu_workers * r.makespan * (1 + 1e-9)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(30, 100),
    nodes=st.integers(1, 5),
    fanin=st.booleans(),
    strategy=st.sampled_from(["subtree", "block", "cyclic"]),
)
def test_fuzz_distributed(seed, n, nodes, fanin, strategy):
    from repro.distributed import ClusterSpec, map_cblks, simulate_distributed

    mat = random_pattern_spd(n, 5.0, seed=seed, locality=0.4)
    res = analyze(mat)
    owner = map_cblks(res.symbol, nodes, strategy=strategy)
    r = simulate_distributed(
        res.symbol, owner,
        ClusterSpec(n_nodes=nodes, cores_per_node=2),
        fanin=fanin,
    )
    assert r.makespan > 0
    if nodes == 1:
        assert r.n_messages == 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(30, 90))
def test_fuzz_subtree_fusion_preserves_flops(seed, n):
    mat = random_pattern_spd(n, 4.0, seed=seed, locality=0.5)
    res = analyze(mat)
    plain = build_dag(res.symbol, "llt")
    rng = np.random.default_rng(seed)
    thr = float(rng.uniform(1e2, 1e7))
    fused = build_dag(res.symbol, "llt", fuse_subtree_flops=thr)
    fused.validate()
    assert fused.total_flops() == pytest.approx(plain.total_flops())
    r = simulate(fused, mirage(n_cores=3), get_policy("parsec"))
    assert_valid_schedule(fused, r.trace)
