"""SVG chart renderer tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz import SvgChart
from repro.viz.svgchart import _fmt, _nice_ticks


def parse(svg: str):
    return ET.fromstring(svg)


class TestHelpers:
    def test_nice_ticks_cover_range(self):
        ticks = _nice_ticks(0.0, 87.0)
        assert ticks[0] <= 0.0 and ticks[-1] >= 87.0
        steps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(abs(s - steps[0]) < 1e-9 for s in steps)

    def test_nice_ticks_degenerate(self):
        assert len(_nice_ticks(5.0, 5.0)) >= 2

    def test_fmt(self):
        assert _fmt(12.0) == "12"
        assert _fmt(0.5) == "0.5"


class TestLines:
    def test_renders_valid_xml(self):
        c = SvgChart(title="t", xlabel="x", ylabel="y")
        c.add_line([1, 2, 3], [1.0, 4.0, 2.0], "series")
        root = parse(c.render())
        assert root.tag.endswith("svg")

    def test_contains_polyline_and_legend(self):
        c = SvgChart()
        c.add_line([1, 2], [3.0, 4.0], "abc")
        svg = c.render()
        assert "polyline" in svg
        assert "abc" in svg

    def test_log_x(self):
        c = SvgChart(log_x=True)
        c.add_line([10, 100, 1000], [1.0, 2.0, 3.0], "s")
        svg = c.render()
        parse(svg)
        assert "100" in svg  # decade ticks

    def test_hline(self):
        c = SvgChart()
        c.add_line([0, 1], [0.0, 1.0], "s")
        c.add_hline(0.5, "peak")
        assert "peak" in c.render()

    def test_mismatched_lengths(self):
        c = SvgChart()
        with pytest.raises(ValueError):
            c.add_line([1, 2], [1.0], "s")

    def test_save(self, tmp_path):
        c = SvgChart()
        c.add_line([0, 1], [0.0, 1.0], "s")
        path = tmp_path / "c.svg"
        c.save(path)
        parse(path.read_text())


class TestBars:
    def test_grouped_bars(self):
        c = SvgChart()
        c.add_bar_groups(["a", "b"], {"s1": [1.0, 2.0], "s2": [2.0, 1.0]})
        svg = c.render()
        parse(svg)
        assert svg.count("<rect") >= 5  # frame + background + 4 bars

    def test_bar_length_mismatch(self):
        c = SvgChart()
        with pytest.raises(ValueError):
            c.add_bar_groups(["a", "b"], {"s": [1.0]})


class TestMakeFigures:
    def test_make_figures_from_results(self, tmp_path, monkeypatch):
        """End-to-end: synthesize tiny CSVs and render all figures."""
        import importlib.util
        import sys
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        sys.path.insert(0, str(bench_dir))
        try:
            import common as bench_common

            monkeypatch.setattr(bench_common, "RESULTS_DIR", tmp_path)
            spec = importlib.util.spec_from_file_location(
                "make_figures", bench_dir / "make_figures.py"
            )
            mod = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(mod)
            monkeypatch.setattr(mod, "RESULTS_DIR", tmp_path)

            (tmp_path / "fig2_cpu_scaling.csv").write_text(
                "Matrix,Scheduler,1 cores,12 cores\n"
                + "".join(
                    f"{m},{s},1.0,10.0\n"
                    for m in ("audi", "Serena", "pmlDF")
                    for s in ("native", "starpu", "parsec")
                )
            )
            (tmp_path / "fig3_gemm_streams.csv").write_text(
                "M,cublas-1s,sparse-3s\n128,50,30\n1000,200,120\n"
            )
            (tmp_path / "fig4_gpu_scaling.csv").write_text(
                "Matrix,Config,0 GPU,1 GPU\n"
                + "".join(
                    f"{m},pastix(cpu),20,-\n{m},parsec-1s,20,30\n"
                    for m in ("Serena", "afshell10", "Geo1438")
                )
            )
            paths = mod.figure2() + mod.figure3() + mod.figure4()
            for p in paths:
                ET.fromstring(Path(p).read_text())
        finally:
            sys.path.remove(str(bench_dir))


def test_log_x_rejects_nonpositive():
    c = SvgChart(log_x=True)
    with pytest.raises(ValueError, match="positive"):
        c.add_line([0, 10], [1.0, 2.0], "s")
