"""Threaded runtime tests (real parallel execution)."""

import numpy as np
import pytest

from repro.core.factorization import factorize_sequential
from repro.runtime.threaded import factorize_threaded
from repro.runtime.tracing import ExecutionTrace
from repro.dag import build_dag
from repro.symbolic import analyze


def _setup(mat, factotype):
    res = analyze(mat)
    permuted = mat.permute(res.perm.perm)
    return res, permuted


@pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
def test_matches_sequential(grid2d_medium, factotype):
    res, permuted = _setup(grid2d_medium, factotype)
    ref = factorize_sequential(res.symbol, permuted, factotype)
    par = factorize_threaded(res.symbol, permuted, factotype, n_workers=4)
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)
    if factotype == "ldlt":
        for a, b in zip(ref.D, par.D):
            assert np.allclose(a, b, atol=1e-10)
    if factotype == "lu":
        for a, b in zip(ref.U, par.U):
            assert np.allclose(a, b, atol=1e-10)


@pytest.mark.parametrize("n_workers", [1, 2, 8])
def test_worker_counts(grid2d_small, n_workers):
    res, permuted = _setup(grid2d_small, "llt")
    ref = factorize_sequential(res.symbol, permuted, "llt")
    par = factorize_threaded(
        res.symbol, permuted, "llt", n_workers=n_workers
    )
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)


def test_complex_threaded(helmholtz_small):
    res, permuted = _setup(helmholtz_small, "ldlt")
    ref = factorize_sequential(res.symbol, permuted, "ldlt")
    par = factorize_threaded(res.symbol, permuted, "ldlt", n_workers=3)
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)


def test_trace_is_valid_schedule(grid2d_small):
    res, permuted = _setup(grid2d_small, "llt")
    trace = ExecutionTrace()
    factorize_threaded(res.symbol, permuted, "llt", n_workers=3, trace=trace)
    dag = build_dag(res.symbol, "llt", granularity="2d")
    # Real threads introduce timing noise; dependencies and exactly-once
    # execution must still hold (small tolerance for clock skew).
    trace.validate(dag, exclusive_resources=[], check_mutex=False, tol=1e-5)


def test_scatter_kernel_path(grid2d_small):
    res, permuted = _setup(grid2d_small, "llt")
    ref = factorize_sequential(res.symbol, permuted, "llt")
    par = factorize_threaded(
        res.symbol, permuted, "llt", n_workers=2, workspace=False
    )
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)


def test_failure_propagates(grid2d_small):
    res, permuted = _setup(grid2d_small, "llt")
    bad = permuted.to_dense()
    bad[0, 0] = 0.0  # not SPD any more
    np.fill_diagonal(bad, -1.0)
    from repro.sparse.csc import SparseMatrixCSC

    broken = SparseMatrixCSC.from_dense(bad)
    with pytest.raises(Exception):
        factorize_threaded(res.symbol, broken, "llt", n_workers=2)


class TestThreadedSolve:
    @pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
    def test_matches_sequential_solve(self, grid2d_medium, factotype):
        from repro.core.triangular import solve_factored
        from repro.runtime.threaded import solve_threaded

        res, permuted = _setup(grid2d_medium, factotype)
        factor = factorize_sequential(res.symbol, permuted, factotype)
        b = np.random.default_rng(11).standard_normal(permuted.n_rows)
        ref = solve_factored(factor, b)
        par = solve_threaded(factor, b, n_workers=4)
        assert np.allclose(ref, par, atol=1e-11)

    def test_complex_threaded_solve(self, helmholtz_small):
        from repro.core.triangular import solve_factored
        from repro.runtime.threaded import solve_threaded

        res, permuted = _setup(helmholtz_small, "ldlt")
        factor = factorize_sequential(res.symbol, permuted, "ldlt")
        rng = np.random.default_rng(12)
        b = rng.standard_normal(permuted.n_rows) * (1 - 2j)
        ref = solve_factored(factor, b)
        par = solve_threaded(factor, b, n_workers=3)
        assert np.allclose(ref, par, atol=1e-11)

    def test_actually_solves(self, grid2d_small):
        from repro.runtime.threaded import solve_threaded

        res, permuted = _setup(grid2d_small, "llt")
        factor = factorize_sequential(res.symbol, permuted, "llt")
        b = np.ones(permuted.n_rows)
        x = solve_threaded(factor, b, n_workers=2)
        assert np.allclose(permuted.matvec(x), b, atol=1e-9)

    @pytest.mark.parametrize("n_workers", [1, 8])
    def test_worker_counts_solve(self, grid2d_small, n_workers):
        from repro.core.triangular import solve_factored
        from repro.runtime.threaded import solve_threaded

        res, permuted = _setup(grid2d_small, "lu")
        factor = factorize_sequential(res.symbol, permuted, "lu")
        b = np.random.default_rng(13).standard_normal(permuted.n_rows)
        assert np.allclose(
            solve_threaded(factor, b, n_workers=n_workers),
            solve_factored(factor, b),
            atol=1e-11,
        )
