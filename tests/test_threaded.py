"""Threaded runtime tests (real parallel execution)."""

import numpy as np
import pytest

from repro.core.factorization import factorize_sequential
from repro.runtime.threaded import factorize_threaded
from repro.runtime.tracing import ExecutionTrace
from repro.dag import build_dag
from repro.symbolic import analyze


def _setup(mat, factotype):
    res = analyze(mat)
    permuted = mat.permute(res.perm.perm)
    return res, permuted


@pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
def test_matches_sequential(grid2d_medium, factotype):
    res, permuted = _setup(grid2d_medium, factotype)
    ref = factorize_sequential(res.symbol, permuted, factotype)
    par = factorize_threaded(res.symbol, permuted, factotype, n_workers=4)
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)
    if factotype == "ldlt":
        for a, b in zip(ref.D, par.D):
            assert np.allclose(a, b, atol=1e-10)
    if factotype == "lu":
        for a, b in zip(ref.U, par.U):
            assert np.allclose(a, b, atol=1e-10)


@pytest.mark.parametrize("n_workers", [1, 2, 8])
def test_worker_counts(grid2d_small, n_workers):
    res, permuted = _setup(grid2d_small, "llt")
    ref = factorize_sequential(res.symbol, permuted, "llt")
    par = factorize_threaded(
        res.symbol, permuted, "llt", n_workers=n_workers
    )
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)


def test_complex_threaded(helmholtz_small):
    res, permuted = _setup(helmholtz_small, "ldlt")
    ref = factorize_sequential(res.symbol, permuted, "ldlt")
    par = factorize_threaded(res.symbol, permuted, "ldlt", n_workers=3)
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)


def test_trace_is_valid_schedule(grid2d_small):
    res, permuted = _setup(grid2d_small, "llt")
    trace = ExecutionTrace()
    factorize_threaded(res.symbol, permuted, "llt", n_workers=3, trace=trace)
    dag = build_dag(res.symbol, "llt", granularity="2d")
    # Real threads introduce timing noise; dependencies and exactly-once
    # execution must still hold (small tolerance for clock skew).
    trace.validate(dag, exclusive_resources=[], check_mutex=False, tol=1e-5)


def test_scatter_kernel_path(grid2d_small):
    res, permuted = _setup(grid2d_small, "llt")
    ref = factorize_sequential(res.symbol, permuted, "llt")
    par = factorize_threaded(
        res.symbol, permuted, "llt", n_workers=2, workspace=False
    )
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)


def test_failure_propagates(grid2d_small):
    res, permuted = _setup(grid2d_small, "llt")
    bad = permuted.to_dense()
    bad[0, 0] = 0.0  # not SPD any more
    np.fill_diagonal(bad, -1.0)
    from repro.sparse.csc import SparseMatrixCSC

    broken = SparseMatrixCSC.from_dense(bad)
    with pytest.raises(Exception):
        factorize_threaded(res.symbol, broken, "llt", n_workers=2)


@pytest.mark.parametrize("scheduler", ["fifo", "ws", "priority", "affinity"])
def test_all_schedulers_match_sequential(grid2d_small, scheduler):
    res, permuted = _setup(grid2d_small, "llt")
    ref = factorize_sequential(res.symbol, permuted, "llt")
    par = factorize_threaded(
        res.symbol, permuted, "llt", n_workers=3, scheduler=scheduler
    )
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)


def test_ldlt_pivot_threshold_threaded(grid2d_medium):
    """Static pivot perturbation is order-independent: the threaded LDLᵀ
    with a biting threshold must agree with the sequential driver, and
    the thread-safe monitor must count the same perturbations."""
    res, permuted = _setup(grid2d_medium, "ldlt")
    threshold = 3.0  # above the smallest pivot (~2.4): guaranteed to bite
    ref = factorize_sequential(
        res.symbol, permuted, "ldlt", pivot_threshold=threshold
    )
    par = factorize_threaded(
        res.symbol, permuted, "ldlt", n_workers=4,
        pivot_threshold=threshold,
    )
    for a, b in zip(ref.L, par.L):
        assert np.allclose(a, b, atol=1e-10)
    for a, b in zip(ref.D, par.D):
        assert np.allclose(a, b, atol=1e-10)
    assert par.pivot_monitor is not None
    assert ref.pivot_monitor.n_perturbed > 0  # the threshold really bit
    assert par.pivot_monitor.n_perturbed == ref.pivot_monitor.n_perturbed


@pytest.mark.parametrize("scheduler", ["fifo", "ws", "priority", "affinity"])
def test_retry_before_mutation_is_clean(grid2d_small, scheduler):
    """A task that fails *before* touching its panel re-runs under every
    scheduler and still produces the exact sequential factor."""
    from repro.core.factor import NumericFactor
    from repro.dag import build_dag as _build
    from repro.runtime.threaded import _ThreadedRun

    res, permuted = _setup(grid2d_small, "llt")
    ref = factorize_sequential(res.symbol, permuted, "llt")
    factor = NumericFactor.assemble(res.symbol, permuted, "llt")
    dag = _build(res.symbol, "llt", granularity="2d", dtype=factor.dtype)
    run = _ThreadedRun(factor, dag, 3, True, None, max_retries=1,
                       scheduler=scheduler)
    original = run._execute
    fails = {"left": 1}

    def execute(t, worker):
        # Raise before _run_task: no panel bytes were written yet.
        if t == dag.n_tasks // 2 and fails["left"] > 0:
            fails["left"] -= 1
            raise RuntimeError("transient failure before mutation")
        original(t, worker)

    run._execute = execute
    run.run()
    assert run.n_done == dag.n_tasks
    for a, b in zip(ref.L, factor.L):
        assert np.allclose(a, b, atol=1e-10)


def test_solve_dag_phase_field(grid2d_small):
    """The solve DAG carries an explicit per-task backward flag; the
    runtime must not infer the phase from task numbering."""
    from repro.dag.solve_builder import build_solve_dag

    res, _ = _setup(grid2d_small, "llt")
    dag = build_solve_dag(res.symbol, "llt")
    assert dag.solve_backward.dtype == np.bool_
    assert dag.solve_backward.shape == (dag.n_tasks,)
    # Both phases are populated, and every backward task is downstream
    # of the phase barrier: no forward task depends on a backward one.
    assert 0 < int(dag.solve_backward.sum()) < dag.n_tasks
    for t in range(dag.n_tasks):
        if dag.solve_backward[t]:
            for s in dag.successors(int(t)):
                assert dag.solve_backward[s]


class TestThreadedSolve:
    @pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
    def test_matches_sequential_solve(self, grid2d_medium, factotype):
        from repro.core.triangular import solve_factored
        from repro.runtime.threaded import solve_threaded

        res, permuted = _setup(grid2d_medium, factotype)
        factor = factorize_sequential(res.symbol, permuted, factotype)
        b = np.random.default_rng(11).standard_normal(permuted.n_rows)
        ref = solve_factored(factor, b)
        par = solve_threaded(factor, b, n_workers=4)
        assert np.allclose(ref, par, atol=1e-11)

    def test_complex_threaded_solve(self, helmholtz_small):
        from repro.core.triangular import solve_factored
        from repro.runtime.threaded import solve_threaded

        res, permuted = _setup(helmholtz_small, "ldlt")
        factor = factorize_sequential(res.symbol, permuted, "ldlt")
        rng = np.random.default_rng(12)
        b = rng.standard_normal(permuted.n_rows) * (1 - 2j)
        ref = solve_factored(factor, b)
        par = solve_threaded(factor, b, n_workers=3)
        assert np.allclose(ref, par, atol=1e-11)

    def test_actually_solves(self, grid2d_small):
        from repro.runtime.threaded import solve_threaded

        res, permuted = _setup(grid2d_small, "llt")
        factor = factorize_sequential(res.symbol, permuted, "llt")
        b = np.ones(permuted.n_rows)
        x = solve_threaded(factor, b, n_workers=2)
        assert np.allclose(permuted.matvec(x), b, atol=1e-9)

    @pytest.mark.parametrize("scheduler", ["fifo", "ws", "priority"])
    def test_solve_schedulers(self, grid2d_small, scheduler):
        from repro.core.triangular import solve_factored
        from repro.runtime.threaded import solve_threaded

        res, permuted = _setup(grid2d_small, "llt")
        factor = factorize_sequential(res.symbol, permuted, "llt")
        b = np.random.default_rng(17).standard_normal(permuted.n_rows)
        assert np.allclose(
            solve_threaded(factor, b, n_workers=3, scheduler=scheduler),
            solve_factored(factor, b),
            atol=1e-11,
        )

    def test_solve_watchdog_names_the_wedge(self, grid2d_small):
        """The solve pool inherits the factorization watchdog: a wedged
        task turns into a named diagnostic instead of a hung join."""
        import threading

        from repro.dag.solve_builder import build_solve_dag
        from repro.runtime.threaded import _ThreadedSolveRun

        res, permuted = _setup(grid2d_small, "llt")
        factor = factorize_sequential(res.symbol, permuted, "llt")
        x = np.ones(permuted.n_rows, dtype=factor.dtype)
        dag = build_solve_dag(res.symbol, "llt", dtype=factor.dtype)
        release = threading.Event()
        run = _ThreadedSolveRun(factor, x, dag, 2, watchdog_s=0.25)
        original = run._execute

        def execute(t, worker):
            if t == 0:
                release.wait(timeout=10.0)
            original(t, worker)

        run._execute = execute
        try:
            with pytest.raises(RuntimeError, match="no progress"):
                run.run()
        finally:
            release.set()
        assert "solve" in run._watchdog_message()

    @pytest.mark.parametrize("n_workers", [1, 8])
    def test_worker_counts_solve(self, grid2d_small, n_workers):
        from repro.core.triangular import solve_factored
        from repro.runtime.threaded import solve_threaded

        res, permuted = _setup(grid2d_small, "lu")
        factor = factorize_sequential(res.symbol, permuted, "lu")
        b = np.random.default_rng(13).standard_normal(permuted.n_rows)
        assert np.allclose(
            solve_threaded(factor, b, n_workers=n_workers),
            solve_factored(factor, b),
            atol=1e-11,
        )


class TestInversePriorityHardening:
    """Watchdog + quarantine under the inverse-priority scheduler with
    fan-in accumulation on: the anti-critical-path heap maximizes how
    long failed work's descendants linger ready, and batching adds the
    drain/flush machinery to the failure path — the hardening must hold
    regardless."""

    @staticmethod
    def _run_parts(mat):
        from repro.core.factor import NumericFactor

        res, permuted = _setup(mat, "llt")
        ref = factorize_sequential(res.symbol, permuted, "llt")
        factor = NumericFactor.assemble(res.symbol, permuted, "llt")
        dag = build_dag(res.symbol, "llt", granularity="2d",
                        dtype=factor.dtype)
        return ref, factor, dag

    def test_retry_recovers_with_accumulate(self, grid2d_small):
        from repro.runtime.threaded import _ThreadedRun

        ref, factor, dag = self._run_parts(grid2d_small)
        run = _ThreadedRun(factor, dag, 3, True, None, max_retries=2,
                           scheduler="inverse-priority", accumulate=True)
        original = run._execute
        fails = {"left": 2}

        def execute(t, worker):
            if t == dag.n_tasks // 3 and fails["left"] > 0:
                fails["left"] -= 1
                raise RuntimeError("transient failure")
            original(t, worker)

        run._execute = execute
        run.run()
        assert run.n_done == dag.n_tasks
        assert not run.quarantined
        for a, b in zip(ref.L, factor.L):
            assert np.allclose(a, b, atol=1e-10)

    def test_quarantine_spares_independent_tasks(self, grid2d_small):
        from repro.runtime.threaded import _ThreadedRun

        _, factor, dag = self._run_parts(grid2d_small)
        run = _ThreadedRun(factor, dag, 3, True, None, max_retries=1,
                           scheduler="inverse-priority", accumulate=True)
        original = run._execute

        def execute(t, worker):
            if t == 0:
                raise RuntimeError("permanent failure on task 0")
            original(t, worker)

        run._execute = execute
        with pytest.raises(RuntimeError, match="permanent failure"):
            run.run()
        assert 0 in run.abandoned
        assert run.n_done + len(run.abandoned) == dag.n_tasks
        assert run.n_done > 0

    def test_watchdog_names_the_wedge(self, grid2d_small):
        import threading

        from repro.runtime.threaded import _ThreadedRun

        _, factor, dag = self._run_parts(grid2d_small)
        release = threading.Event()
        run = _ThreadedRun(factor, dag, 2, True, None, watchdog_s=0.25,
                           scheduler="inverse-priority", accumulate=True)
        original = run._execute

        def execute(t, worker):
            if t == 0:
                release.wait(timeout=10.0)
            original(t, worker)

        run._execute = execute
        try:
            with pytest.raises(RuntimeError, match="no progress"):
                run.run()
        finally:
            release.set()
        assert "factorization" in run._watchdog_message()


class TestPopSameTargetProbe:
    """Regression tests for the batching probe's victim scan: emptiness
    must be decided under the victim's deque lock (the unlocked
    pre-probe had a TOCTOU window that hid freshly pushed siblings)."""

    @staticmethod
    def _bound_scheduler(mat, n_workers=2):
        from repro.runtime.scheduling import WorkStealingScheduler

        res, _ = _setup(mat, "llt")
        dag = build_dag(res.symbol, "llt", granularity="2d")
        sched = WorkStealingScheduler()
        sched.bind(dag, n_workers)
        return dag, sched

    @staticmethod
    def _updates_by_target(dag):
        from collections import Counter

        from repro.dag.tasks import TaskKind

        upd = [t for t in range(dag.n_tasks)
               if int(dag.kind[t]) == int(TaskKind.UPDATE)]
        tgt, _ = Counter(
            int(dag.target[t]) for t in upd).most_common(1)[0]
        return tgt, [t for t in upd if int(dag.target[t]) == tgt]

    def test_probe_sees_victim_work(self, grid2d_small):
        dag, sched = self._bound_scheduler(grid2d_small)
        tgt, siblings = self._updates_by_target(dag)
        assert len(siblings) >= 2
        mine, theirs = siblings[0], siblings[1]
        sched.push(mine, 0)
        sched.push(theirs, 1)          # lives on the victim's deque
        assert sched.pop_same_target(0, tgt) == mine   # own LIFO first
        assert sched.pop_same_target(0, tgt) == theirs  # victim steal
        assert sched.pop_same_target(0, tgt) is None    # drained: None

    def test_probe_ignores_other_targets(self, grid2d_small):
        dag, sched = self._bound_scheduler(grid2d_small)
        tgt, siblings = self._updates_by_target(dag)
        other = next(
            t for t in range(dag.n_tasks)
            if int(dag.target[t]) not in (-1, tgt)
        )
        sched.push(other, 1)
        assert sched.pop_same_target(0, tgt) is None
        assert sched.pop(1) == other   # still there for a normal pop

    def test_concurrent_push_is_never_missed(self, grid2d_small):
        """Hammer the probe while a victim's deque flaps between empty
        and one matching update: with the locked probe, every pushed
        sibling is eventually found and returned exactly once."""
        import threading

        dag, sched = self._bound_scheduler(grid2d_small)
        tgt, siblings = self._updates_by_target(dag)
        n_rounds = 400
        fed = [siblings[i % len(siblings)] for i in range(n_rounds)]

        def pusher():
            for t in fed:
                sched.push(t, 1)

        got = []

        def popper():
            while len(got) < n_rounds:
                t = sched.pop_same_target(0, tgt)
                if t is not None:
                    got.append(t)

        threads = [threading.Thread(target=pusher),
                   threading.Thread(target=popper)]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=30.0)
        assert not any(th.is_alive() for th in threads)
        assert got == fed              # exactly once, FIFO per victim
        assert not sched.has_work()


# ----------------------------------------------------------------------
# Graceful degradation: injected slowdowns (straggler + limplock) under
# every scheduler x fan-in-accumulation combination, with worker health
# monitoring armed.  Faults in the threaded runtime are purely temporal
# (sleeps proportional to measured kernel time), so numerics must stay
# within roundoff of the sequential factor, and the trace must satisfy
# the S2xx schedule, R6xx resilience, R7xx degradation, and C7xx
# happens-before audits simultaneously.
class TestThreadedDegradation:
    # Conservative thresholds for wall-clock runs: the min_duration_s
    # floor keeps micro-task jitter out of the state machine, and the
    # wide ratios keep the monitor armed without destabilizing a run
    # whose injected limp is mild.
    POL = dict(min_duration_s=2e-3, min_samples=5, suspect_ratio=3.0,
               degraded_ratio=8.0, quarantine_ratio=15.0,
               recover_ratio=2.0)

    @staticmethod
    def _faulty_run(mat, scheduler, accumulate, *, hedge=False):
        from repro.dag.tasks import TaskKind
        from repro.resilience import FaultModel, FaultSpec, HealthPolicy

        res, permuted = _setup(mat, "llt")
        dag = build_dag(res.symbol, "llt", granularity="2d")
        upd = next(
            t for t in range(dag.n_tasks)
            if int(dag.kind[t]) == int(TaskKind.UPDATE)
        )
        faults = FaultModel([
            FaultSpec("straggler", task=upd, factor=30.0),
            FaultSpec("limplock", time=0.0, until=0.05,
                      resource=0, factor=3.0),
        ], seed=0)
        trace = ExecutionTrace()
        par = factorize_threaded(
            res.symbol, permuted, "llt", n_workers=3,
            scheduler=scheduler, accumulate=accumulate, trace=trace,
            record_sync=True, faults=faults,
            health=HealthPolicy(hedge=hedge, **TestThreadedDegradation.POL),
        )
        return res, permuted, dag, trace, par

    @pytest.mark.parametrize("scheduler",
                             ["fifo", "ws", "priority", "affinity"])
    @pytest.mark.parametrize("accumulate", [False, True])
    def test_faulty_run_audits_clean(self, grid2d_small, scheduler,
                                     accumulate):
        from repro.verify import (
            verify_concurrency,
            verify_health,
            verify_resilience,
        )

        res, permuted, dag, trace, par = self._faulty_run(
            grid2d_small, scheduler, accumulate)
        ref = factorize_sequential(res.symbol, permuted, "llt")
        for a, b in zip(ref.L, par.L):
            assert np.allclose(a, b, atol=1e-10)
        # The injected straggler is trace-visible and absorbed in place.
        assert any(f.kind == "straggler" for f in trace.fault_events)
        assert any(f.kind == "limplock" for f in trace.fault_events)
        trace.validate(dag, exclusive_resources=[], check_mutex=False,
                       tol=1e-5)
        for rep in (verify_health(trace),
                    verify_resilience(trace, dag),
                    verify_concurrency(dag, trace)):
            assert rep.ok, rep.format()

    def test_single_worker_faults_are_purely_temporal(self, grid2d_small):
        """With one worker there is no interleaving: a faulted run must
        be bitwise identical to a fault-free one."""
        from repro.resilience import FaultModel, FaultSpec, HealthPolicy

        res, permuted = _setup(grid2d_small, "llt")
        plain = factorize_threaded(
            res.symbol, permuted, "llt", n_workers=1)
        faults = FaultModel([
            FaultSpec("straggler", task=0, factor=20.0),
            FaultSpec("limplock", time=0.0, until=0.05,
                      resource=0, factor=3.0),
        ])
        limped = factorize_threaded(
            res.symbol, permuted, "llt", n_workers=1, faults=faults,
            health=HealthPolicy(**self.POL))
        for a, b in zip(plain.L, limped.L):
            assert np.array_equal(a, b)

    def test_tail_straggler_is_hedged(self):
        """A task-pinned straggler wedging a tail update triggers a
        speculative duplicate: launch/win/cancel fire, the task commits
        exactly once, and the numerics survive the race."""
        from repro.resilience import FaultModel, FaultSpec, HealthPolicy
        from repro.sparse.generators import grid_laplacian_2d
        from repro.verify import verify_health

        from repro.dag.tasks import TaskKind

        mat = grid_laplacian_2d(30, jitter=0.05, seed=0)
        res, permuted = _setup(mat, "llt")
        dag = build_dag(res.symbol, "llt", granularity="2d")
        last = int(dag.symbol.n_cblk) - 1
        # The biggest *update* feeding the last column block: wedging
        # it parks the critical path behind one limping worker, which
        # is the configuration hedging exists for.  (Panel tasks have
        # target == cblk but are never hedgeable — their bodies mutate
        # shared panels in place.)
        big = max(
            (t for t in range(dag.n_tasks)
             if int(dag.kind[t]) == int(TaskKind.UPDATE)
             and int(dag.target[t]) == last),
            key=lambda t: (int(dag.cblk[t]), float(dag.flops[t])),
        )
        faults = FaultModel(
            [FaultSpec("straggler", task=big, factor=5000.0)])
        trace = ExecutionTrace()
        par = factorize_threaded(
            res.symbol, permuted, "llt", n_workers=2, trace=trace,
            faults=faults,
            health=HealthPolicy(hedge=True, hedge_ratio=2.0,
                                hedge_min_s=4e-3, **self.POL))
        kinds = {h.kind for h in trace.hedge_events}
        assert kinds == {"launch", "win", "cancel"}
        assert sorted(e.task for e in trace.events) == \
            list(range(dag.n_tasks))
        rep = verify_health(trace)
        assert rep.ok, rep.format()
        ref = factorize_sequential(res.symbol, permuted, "llt")
        for a, b in zip(ref.L, par.L):
            assert np.allclose(a, b, atol=1e-10)

    def test_watchdog_dump_names_worker_health(self, grid2d_small):
        """The stall report includes each worker's health state, time
        since its last completion, and in-flight task ages."""
        from repro.core.factor import NumericFactor
        from repro.resilience import HealthPolicy
        from repro.runtime.threaded import _ThreadedRun

        res, permuted = _setup(grid2d_small, "llt")
        factor = NumericFactor.assemble(res.symbol, permuted, "llt")
        dag = build_dag(res.symbol, "llt", granularity="2d",
                        dtype=factor.dtype)
        run = _ThreadedRun(factor, dag, 2, True, None, watchdog_s=0.25,
                           health=HealthPolicy(**self.POL))
        run._inflight[3] = (1, run._now())
        msg = run._watchdog_message()
        assert "worker health [" in msg
        assert "cpu0:healthy" in msg and "cpu1:healthy" in msg
        assert "last_done=" in msg
        assert "in-flight task ages" in msg and "on cpu1" in msg
