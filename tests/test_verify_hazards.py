"""Hazard-analyzer tests: coverage on clean DAGs, detection on mutants.

The analyzer must (a) pass every DAG the builder produces, at every
granularity, and (b) reliably flag a DAG whose edge set no longer covers
some RAW/ACCUM hazard — that is the whole point of the pass.  NetworkX
serves as the independent reachability oracle where one is needed.
"""

import time

import numpy as np
import pytest

from repro.dag import build_dag
from repro.dag.builder import update_couples
from repro.dag.tasks import TaskDAG, TaskKind
from repro.sparse.generators import grid_laplacian_2d, random_pattern_spd
from repro.symbolic import SymbolicOptions, analyze
from repro.symbolic.structures import build_symbol
from repro.verify import (
    ReachabilityOracle,
    analyze_hazards,
    drop_edge,
    find_cycle,
    find_redundant_edges,
)


@pytest.fixture(scope="module")
def symbol():
    return analyze(grid_laplacian_2d(10, jitter=0.05, seed=1),
                   SymbolicOptions(split_max_width=16)).symbol


def edge_endpoints(dag):
    heads = np.repeat(np.arange(dag.n_tasks, dtype=np.int64),
                      np.diff(dag.succ_ptr))
    return heads, dag.succ_list


def nx_digraph(dag):
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(dag.n_tasks))
    heads, tails = edge_endpoints(dag)
    g.add_edges_from(zip(heads.tolist(), tails.tolist()))
    return g


# ----------------------------------------------------------------------
# Clean DAGs must pass.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("granularity", ["2d", "1d", "1d-left"])
def test_clean_dag_passes(symbol, granularity):
    dag = build_dag(symbol, "llt", granularity=granularity)
    rep = analyze_hazards(dag)
    assert rep.ok, rep.format()
    assert rep.stats["uncovered_pairs"] == 0
    assert rep.stats["hazard_pairs"] > 0


@pytest.mark.parametrize("threshold", [1e4, 1e6, 1e12])
def test_clean_subtree_dag_passes(symbol, threshold):
    dag = build_dag(symbol, "llt", fuse_subtree_flops=threshold)
    rep = analyze_hazards(dag)
    assert rep.ok, rep.format()
    assert rep.stats["uncovered_pairs"] == 0


def test_clean_dag_other_factotypes(symbol):
    for factotype in ("ldlt", "lu"):
        rep = analyze_hazards(build_dag(symbol, factotype))
        assert rep.ok, rep.format()


# ----------------------------------------------------------------------
# Mutation: a dropped edge must be detected (or provably redundant).
# ----------------------------------------------------------------------
def test_every_dropped_edge_detected_2d(symbol):
    dag = build_dag(symbol, "llt")
    heads, tails = edge_endpoints(dag)
    for e in range(dag.n_edges):
        mutant = drop_edge(dag, e)
        rep = analyze_hazards(mutant)
        u, v = int(heads[e]), int(tails[e])
        assert not rep.ok, f"dropping edge {u}->{v} went unnoticed"
        assert any(f.tasks == (u, v) for f in rep.errors()), (
            f"edge {u}->{v}: offending pair not named\n" + rep.format()
        )


def test_dropped_subtree_edge_detected(symbol):
    dag = build_dag(symbol, "llt", fuse_subtree_flops=1e6)
    assert np.any(dag.kind == TaskKind.SUBTREE)
    heads, tails = edge_endpoints(dag)
    rng = np.random.default_rng(0)
    for e in rng.choice(dag.n_edges, size=min(25, dag.n_edges), replace=False):
        mutant = drop_edge(dag, int(e))
        rep = analyze_hazards(mutant)
        u, v = int(heads[e]), int(tails[e])
        assert not rep.ok, f"dropping edge {u}->{v} went unnoticed"
        assert any((u, v) == f.tasks for f in rep.errors())


def test_dropped_1d_edge_detected_unless_transitive(symbol):
    # 1D DAGs carry transitive edges; deleting one of those leaves the
    # hazard pair covered by the remaining path (correctly no finding).
    import networkx as nx

    dag = build_dag(symbol, "llt", granularity="1d")
    heads, tails = edge_endpoints(dag)
    n_detected = 0
    for e in range(dag.n_edges):
        u, v = int(heads[e]), int(tails[e])
        mutant = drop_edge(dag, e)
        rep = analyze_hazards(mutant)
        still_covered = nx.has_path(nx_digraph(mutant), u, v)
        assert rep.ok == still_covered, (
            f"edge {u}->{v}: detected={not rep.ok}, "
            f"covered elsewhere={still_covered}"
        )
        if not rep.ok:
            n_detected += 1
            assert any(f.tasks == (u, v) for f in rep.errors())
    assert n_detected > 0  # at least the critical edges must trip


def test_drop_edge_container_semantics(symbol):
    dag = build_dag(symbol, "llt")
    heads, tails = edge_endpoints(dag)
    e = dag.n_edges // 2
    mutant = drop_edge(dag, e)
    assert mutant.n_edges == dag.n_edges - 1
    assert mutant.n_tasks == dag.n_tasks
    u, v = int(heads[e]), int(tails[e])
    assert dag.has_edge(u, v)
    # The (u, v) multiplicity drops by exactly one.
    assert np.count_nonzero(mutant.successors(u) == v) \
        == np.count_nonzero(dag.successors(u) == v) - 1
    with pytest.raises(IndexError):
        drop_edge(dag, dag.n_edges)
    with pytest.raises(IndexError):
        drop_edge(dag, -1)


# ----------------------------------------------------------------------
# Structural defects: cycles, reversed edges, broken mutexes.
# ----------------------------------------------------------------------
def two_cycle_dag():
    n = 2
    kind = np.zeros(n, dtype=np.int8)
    idx = np.arange(n, dtype=np.int64)
    return TaskDAG(kind, idx, idx, np.ones(n),
                   np.zeros(n, np.int64), np.zeros(n, np.int64),
                   np.zeros(n, np.int64),
                   np.array([0, 1, 2], dtype=np.int64),
                   np.array([1, 0], dtype=np.int64),
                   np.full(n, -1, dtype=np.int64), "2d")


def test_cycle_detected():
    dag = two_cycle_dag()
    assert sorted(find_cycle(dag)) == [0, 1]
    rep = analyze_hazards(dag)
    assert [f.code for f in rep.errors()] == ["H104"]


def test_acyclic_has_no_cycle(symbol):
    assert find_cycle(build_dag(symbol, "llt")) == []


def with_edges(dag, edges):
    """Rebuild ``dag`` with an explicit edge list (test mutations)."""
    n = dag.n_tasks
    edges = sorted(edges)
    heads = np.array([u for u, _ in edges], dtype=np.int64)
    tails = np.array([v for _, v in edges], dtype=np.int64)
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(ptr, heads + 1, 1)
    np.cumsum(ptr, out=ptr)
    out = TaskDAG(dag.kind, dag.cblk, dag.target, dag.flops,
                  dag.gemm_m, dag.gemm_n, dag.gemm_k,
                  ptr, tails, dag.mutex, dag.granularity,
                  symbol=dag.symbol, factotype=dag.factotype)
    out.phase = dag.phase
    return out


def test_reversed_edge_reported_as_wrong_direction(symbol):
    dag = build_dag(symbol, "llt")
    # Pick an UPDATE task and reverse its panel(src) -> update edge.
    upd = int(np.flatnonzero(dag.kind == TaskKind.UPDATE)[0])
    pred = int(dag.predecessors(upd)[0])
    assert dag.kind[pred] == TaskKind.PANEL
    heads, tails = edge_endpoints(dag)
    edges = list(zip(heads.tolist(), tails.tolist()))
    edges.remove((pred, upd))
    edges.append((upd, pred))
    rep = analyze_hazards(with_edges(dag, edges))
    assert any(f.code == "H103" and set(f.tasks) == {pred, upd}
               for f in rep.errors()), rep.format()


def test_mutex_mismatch_detected(symbol):
    dag = build_dag(symbol, "llt")
    # Find a facing panel hit by at least two updates and detach one
    # update from the shared mutex group.
    upd = np.flatnonzero(dag.kind == TaskKind.UPDATE)
    tgt = dag.target[upd]
    vals, counts = np.unique(tgt, return_counts=True)
    panel = int(vals[np.argmax(counts)])
    assert counts.max() >= 2
    victim = int(upd[tgt == panel][0])
    mutex = dag.mutex.copy()
    mutex[victim] = -1
    mutant = TaskDAG(dag.kind, dag.cblk, dag.target, dag.flops,
                     dag.gemm_m, dag.gemm_n, dag.gemm_k,
                     dag.succ_ptr, dag.succ_list, mutex, dag.granularity,
                     symbol=dag.symbol, factotype=dag.factotype)
    rep = analyze_hazards(mutant)
    assert any(f.code == "H107" and victim in f.tasks for f in rep.errors()), \
        rep.format()


def test_unmatched_update_task_reported(symbol):
    dag = build_dag(symbol, "llt")
    upd = int(np.flatnonzero(dag.kind == TaskKind.UPDATE)[0])
    target = dag.target.copy()
    target[upd] = int(dag.cblk[upd])  # self-couple: symbolically absent
    mutant = TaskDAG(dag.kind, dag.cblk, target, dag.flops,
                     dag.gemm_m, dag.gemm_n, dag.gemm_k,
                     dag.succ_ptr, dag.succ_list, dag.mutex,
                     dag.granularity, symbol=dag.symbol,
                     factotype=dag.factotype)
    rep = analyze_hazards(mutant)
    assert any(f.code == "H106" for f in rep.errors()), rep.format()


def test_solve_phase_rejected(symbol):
    from repro.dag.solve_builder import build_solve_dag

    sdag = build_solve_dag(symbol)
    with pytest.raises(NotImplementedError):
        analyze_hazards(sdag)


def test_missing_symbol_rejected(symbol):
    dag = build_dag(symbol, "llt")
    dag.symbol = None
    with pytest.raises(ValueError):
        analyze_hazards(dag)


# ----------------------------------------------------------------------
# Redundant (transitive) edges.
# ----------------------------------------------------------------------
def test_2d_dag_has_no_redundant_edges(symbol):
    dag = build_dag(symbol, "llt")
    assert find_redundant_edges(dag) == []
    rep = analyze_hazards(dag, find_redundant=True)
    assert rep.stats["redundant_edges"] == 0


def test_1d_redundant_edges_are_really_transitive(symbol):
    import networkx as nx

    dag = build_dag(symbol, "llt", granularity="1d")
    redundant = find_redundant_edges(dag)
    g = nx_digraph(dag)
    for u, v in redundant[:20]:
        assert g.has_edge(u, v)
        g.remove_edge(u, v)
        assert nx.has_path(g, u, v), f"{u}->{v} reported but critical"
        g.add_edge(u, v)
    if redundant:
        rep = analyze_hazards(dag, find_redundant=True)
        assert rep.ok  # transitive edges are info, not errors
        assert rep.stats["redundant_edges"] == len(redundant)


# ----------------------------------------------------------------------
# Reachability oracle against networkx, including non-builder shapes.
# ----------------------------------------------------------------------
def test_oracle_matches_networkx_on_random_dags():
    import networkx as nx

    rng = np.random.default_rng(7)
    for trial in range(8):
        n = int(rng.integers(10, 45))
        p = rng.uniform(0.02, 0.25)
        edges = [(u, v) for u in range(n) for v in range(u + 1, n)
                 if rng.random() < p]
        kind = np.zeros(n, dtype=np.int8)
        idx = np.arange(n, dtype=np.int64)
        proto = TaskDAG(kind, idx, idx, np.ones(n),
                        np.zeros(n, np.int64), np.zeros(n, np.int64),
                        np.zeros(n, np.int64),
                        np.zeros(n + 1, dtype=np.int64),
                        np.empty(0, dtype=np.int64),
                        np.full(n, -1, dtype=np.int64), "2d")
        dag = with_edges(proto, edges)
        g = nx_digraph(dag)
        oracle = ReachabilityOracle(dag)
        us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        us, vs = us.ravel(), vs.ravel()
        got = oracle.reachable_many(us, vs)
        for u, v, r in zip(us, vs, got):
            expect = u != v and nx.has_path(g, int(u), int(v))
            assert bool(r) == expect, f"trial {trial}: {u}->{v}"


# ----------------------------------------------------------------------
# Scale: >= 50k tasks analyzed in under 10 seconds.
# ----------------------------------------------------------------------
def banded_symbol(n_cblk, width=8, band=3):
    """Synthetic banded block structure: cblk k couples to k+1..k+band.

    Satisfies the facing-subset property by construction, so it behaves
    exactly like a (huge) analyzed matrix without the symbolic pipeline.
    """
    snptr = np.arange(n_cblk + 1, dtype=np.int64) * width
    n = int(snptr[-1])
    rowsets = [
        np.arange(snptr[k + 1], snptr[min(k + 1 + band, n_cblk)],
                  dtype=np.int64)
        for k in range(n_cblk)
    ]
    return build_symbol(n, snptr, rowsets)


def test_hazard_analyzer_scales_to_50k_tasks():
    sym = banded_symbol(17_000)
    src, tgt, _, _ = update_couples(sym)
    assert src.size + sym.n_cblk >= 50_000
    dag = build_dag(sym, "llt")
    assert dag.n_tasks >= 50_000
    t0 = time.perf_counter()
    rep = analyze_hazards(dag)
    elapsed = time.perf_counter() - t0
    assert rep.ok, rep.format()
    assert rep.stats["hazard_pairs"] >= src.size
    assert elapsed < 10.0, f"hazard analysis took {elapsed:.2f}s"
