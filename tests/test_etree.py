"""Elimination-tree tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic.etree import (
    EliminationTree,
    elimination_tree,
    postorder,
    tree_depths,
)
from tests.conftest import random_spd_dense


def reference_etree(dense: np.ndarray) -> np.ndarray:
    """O(n³) reference: parent[j] = min{i > j : L[i,j] != 0} via dense
    symbolic factorization."""
    n = dense.shape[0]
    pattern = (dense != 0).astype(float)
    np.fill_diagonal(pattern, 1.0)
    # Symbolic Cholesky by elimination.
    struct = pattern.copy()
    for j in range(n):
        below = np.flatnonzero(struct[j + 1:, j]) + j + 1
        for i in below:
            struct[np.ix_(below[below >= i], [i])] = 1.0
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        below = np.flatnonzero(struct[j + 1:, j])
        if below.size:
            parent[j] = below[0] + j + 1
    return parent


class TestEtree:
    def test_tridiagonal_chain(self):
        import scipy.sparse as sp

        t = sp.diags([np.ones(5), np.ones(6), np.ones(5)], [-1, 0, 1]).tocsc()
        parent = elimination_tree(SparseMatrixCSC.from_scipy(t))
        assert np.array_equal(parent, [1, 2, 3, 4, 5, -1])

    def test_arrow_matrix(self):
        # Arrow pointing to the last column: every column's first
        # below-diagonal nonzero is n-1.
        n = 6
        d = np.eye(n)
        d[-1, :] = 1
        d[:, -1] = 1
        parent = elimination_tree(SparseMatrixCSC.from_dense(d))
        assert np.array_equal(parent[:-1], np.full(n - 1, n - 1))
        assert parent[-1] == -1

    def test_diagonal_matrix_forest(self):
        parent = elimination_tree(SparseMatrixCSC.identity(4))
        assert np.array_equal(parent, [-1, -1, -1, -1])

    def test_matches_reference_on_random(self):
        for seed in range(5):
            d = random_spd_dense(14, 0.3, seed)
            m = SparseMatrixCSC.from_dense(d)
            assert np.array_equal(elimination_tree(m), reference_etree(d))

    def test_rejects_rectangular(self):
        from repro.sparse.csc import coo_to_csc

        with pytest.raises(ValueError):
            elimination_tree(coo_to_csc(2, 3, [0], [0], [1.0]))


class TestPostorder:
    def test_children_before_parents(self):
        parent = np.array([2, 2, 4, 4, -1], dtype=np.int64)
        post = postorder(parent)
        pos = np.empty(5, dtype=np.int64)
        pos[post] = np.arange(5)
        for j in range(5):
            if parent[j] >= 0:
                assert pos[j] < pos[parent[j]]

    def test_is_permutation(self):
        parent = np.array([1, 4, 3, 4, -1, -1], dtype=np.int64)
        assert np.array_equal(np.sort(postorder(parent)), np.arange(6))

    def test_cycle_detection(self):
        with pytest.raises(ValueError):
            postorder(np.array([1, 0], dtype=np.int64))

    def test_deterministic(self):
        parent = np.array([3, 3, 3, -1], dtype=np.int64)
        assert np.array_equal(postorder(parent), postorder(parent))


class TestDepthsAndBundle:
    def test_depths(self):
        parent = np.array([1, 2, -1, 2], dtype=np.int64)
        assert np.array_equal(tree_depths(parent), [2, 1, 0, 1])

    def test_is_postordered(self):
        chain = EliminationTree(
            np.array([1, 2, -1], dtype=np.int64), np.arange(3)
        )
        assert chain.is_postordered()
        bad = EliminationTree(
            np.array([-1, 0, 1], dtype=np.int64), np.array([2, 1, 0])
        )
        assert not bad.is_postordered()

    def test_n_roots(self):
        t = EliminationTree(np.array([-1, -1, 1], dtype=np.int64), np.arange(3))
        assert t.n_roots == 2

    def test_from_pattern(self, grid2d_small):
        t = EliminationTree.from_pattern(
            grid2d_small.symmetrize_pattern().with_full_diagonal()
        )
        assert t.n == grid2d_small.n_rows


@settings(max_examples=20, deadline=None)
@given(n=st.integers(3, 16), seed=st.integers(0, 5000))
def test_property_etree_matches_reference(n, seed):
    d = random_spd_dense(n, 0.35, seed)
    m = SparseMatrixCSC.from_dense(d)
    assert np.array_equal(elimination_tree(m), reference_etree(d))
