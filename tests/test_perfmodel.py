"""Performance-model tests (CPU and GPU kernel curves)."""

import numpy as np
import pytest

from repro.machine.perfmodel import (
    CUBLAS_PEAK_GFLOPS,
    CpuPerfModel,
    GpuKernelModel,
    astra_rate,
    cublas_rate,
    gemm_occupancy,
    sparse_astra_rate,
)


class TestGpuCurves:
    def test_cublas_monotone_in_m(self):
        rates = [cublas_rate(m, 128, 128) for m in (100, 500, 2000, 10000)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_cublas_never_exceeds_peak(self):
        for m in (100, 1000, 10000, 100000):
            assert cublas_rate(m, 2000, 2000) <= CUBLAS_PEAK_GFLOPS

    def test_peak_not_reached_on_update_shape(self):
        """Paper: 'This peak is never reached with the particular
        configuration case studied here' (N = K = 128)."""
        assert cublas_rate(1e9, 128, 128) < CUBLAS_PEAK_GFLOPS

    def test_astra_fifteen_percent_below(self):
        c = cublas_rate(5000, 128, 128)
        a = astra_rate(5000, 128, 128)
        assert a == pytest.approx(0.85 * c)

    def test_texture_cost(self):
        with_t = astra_rate(5000, 128, 128, textures=True)
        without = astra_rate(5000, 128, 128, textures=False)
        assert without == pytest.approx(0.95 * with_t)

    def test_sparse_below_astra(self):
        a = astra_rate(5000, 128, 128, textures=False)
        s = sparse_astra_rate(5000, 128, 128, height_ratio=2.0)
        assert s < a

    def test_sparse_taller_panel_slower(self):
        """Paper: 'the taller the panel, the lower the performance'."""
        rates = [
            sparse_astra_rate(3000, 128, 128, height_ratio=h)
            for h in (1.0, 1.5, 2.0, 4.0)
        ]
        assert all(b < a for a, b in zip(rates, rates[1:]))

    def test_degenerate_shapes(self):
        assert cublas_rate(0, 128, 128) == 0.0

    def test_occupancy_bounds_and_monotone(self):
        occs = [gemm_occupancy(m, 128, 128) for m in (1, 100, 1000, 100000)]
        assert all(0 < o <= 1 for o in occs)
        assert all(b >= a for a, b in zip(occs, occs[1:]))

    def test_kernel_model_dispatch(self):
        for name in ("cublas", "astra", "sparse"):
            model = GpuKernelModel(name)
            assert model.rate(1000, 128, 128) > 0
        with pytest.raises(ValueError):
            GpuKernelModel("magma").rate(10, 10, 10)


class TestCpuModel:
    def test_gemm_eff_bounds(self):
        m = CpuPerfModel()
        for dims in ((8, 8, 8), (100, 100, 100), (5000, 200, 200)):
            eff = m.gemm_eff(*dims)
            assert 0 < eff < 1

    def test_gemm_eff_grows_with_size(self):
        m = CpuPerfModel()
        assert m.gemm_eff(10, 10, 10) < m.gemm_eff(500, 500, 500)

    def test_large_gemm_near_max(self):
        m = CpuPerfModel()
        assert m.gemm_eff(4000, 4000, 4000) > 0.9 * m.gemm_eff_max

    def test_update_eff_scatter_penalty(self):
        m = CpuPerfModel()
        assert m.update_eff(100, 100, 100) == pytest.approx(
            m.gemm_eff(100, 100, 100) * m.scatter_penalty
        )

    def test_ldlt_recompute_penalty_only_when_asked(self):
        m = CpuPerfModel()
        plain = m.update_eff(50, 50, 50, factotype="ldlt", recompute_ld=False)
        pen = m.update_eff(50, 50, 50, factotype="ldlt", recompute_ld=True)
        assert pen == pytest.approx(plain * m.ldlt_recompute_penalty)
        llt = m.update_eff(50, 50, 50, factotype="llt", recompute_ld=True)
        assert llt == pytest.approx(plain)

    def test_panel_eff_blends_toward_gemm_when_tall(self):
        m = CpuPerfModel()
        short = m.panel_eff(64, 0)
        tall = m.panel_eff(64, 2000)
        assert tall > short
