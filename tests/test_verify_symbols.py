"""N5xx symbolic-auditor tests.

The auditor re-derives nnz(L), per-column counts, and per-task flops
from the elimination tree and must agree exactly with the stored
structures on amalgamation-free analyses, dominate on amalgamated ones,
and catch seeded corruptions (skewed flop annotations, broken heights).
"""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.dag.builder import update_couples
from repro.sparse.generators import (
    grid_laplacian_2d,
    grid_laplacian_3d,
    helmholtz_like_2d,
    random_pattern_spd,
)
from repro.symbolic import SymbolicOptions, analyze
from repro.verify import (
    derive_couples_by_target,
    skew_flops,
    verify_dag_costs,
    verify_symbolic,
)

EXACT = SymbolicOptions(split_max_width=32, amalgamation_ratio=None)


def matrices():
    return [
        ("lap2d16", grid_laplacian_2d(16, jitter=0.05, seed=0)),
        ("lap3d8", grid_laplacian_3d(8, jitter=0.05, seed=1)),
        ("helm10", helmholtz_like_2d(10)),
        ("rand", random_pattern_spd(80, 6.0, locality=0.4, seed=2)),
    ]


@pytest.mark.parametrize("label,matrix", matrices(),
                         ids=[m[0] for m in matrices()])
def test_exact_audit_clean_on_generators(label, matrix):
    res = analyze(matrix, EXACT)
    rep = verify_symbolic(matrix, res, exact=True)
    assert rep.ok, rep.format()
    # The acceptance bar: nnz agreement is exact, not approximate.
    assert rep.stats["nnz_symbol"] == rep.stats["nnz_colcount"]
    assert rep.stats["column_mismatches"] == 0


@pytest.mark.parametrize("label,matrix", matrices(),
                         ids=[m[0] for m in matrices()])
def test_amalgamated_audit_dominates(label, matrix):
    res = analyze(matrix, SymbolicOptions(split_max_width=32))
    rep = verify_symbolic(matrix, res, exact=False)
    assert rep.ok, rep.format()
    assert rep.stats["nnz_symbol"] >= rep.stats["nnz_colcount"]


def test_pattern_mismatch_detected():
    matrix = grid_laplacian_2d(12, jitter=0.05, seed=0)
    other = helmholtz_like_2d(12)  # same n, different sparsity pattern
    assert other.n_rows == matrix.n_rows
    res = analyze(matrix, EXACT)
    rep = verify_symbolic(other, res, exact=True)
    assert [f.code for f in rep.findings] == ["N500"]


def test_corrupted_heights_detected():
    matrix = grid_laplacian_2d(12, jitter=0.05, seed=0)
    res = analyze(matrix, EXACT)
    sym = res.symbol
    # Truncate the last blok of the last off-diagonal-bearing panel:
    # the structure now stores fewer entries than the factor needs.
    b = int(np.flatnonzero(sym.blok_lrow - sym.blok_frow > 1)[-1])
    sym.blok_lrow[b] -= 1
    rep = verify_symbolic(matrix, res, exact=True)
    found = {f.code for f in rep.findings}
    assert found & {"N501", "N502", "N503"}, rep.format()
    sym.blok_lrow[b] += 1  # restore (analysis objects may be shared)


# ----------------------------------------------------------------------
# Couple enumeration: per-target traversal vs the builder's per-source.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label,matrix", matrices()[:2],
                         ids=[m[0] for m in matrices()[:2]])
def test_couples_by_target_match_builder(label, matrix):
    sym = analyze(matrix, EXACT).symbol
    src, tgt, m, n = update_couples(sym)
    mine = derive_couples_by_target(sym)
    assert sum(len(v) for v in mine.values()) == src.size
    for i in range(src.size):
        pair = (int(src[i]), int(tgt[i]))
        assert (int(m[i]), int(n[i])) in mine[pair]


# ----------------------------------------------------------------------
# DAG cost audit.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
@pytest.mark.parametrize("granularity", ["2d", "1d", "1d-left"])
def test_dag_costs_clean(factotype, granularity):
    sym = analyze(grid_laplacian_2d(16, jitter=0.05, seed=0), EXACT).symbol
    dag = build_dag(sym, factotype, granularity=granularity)
    rep = verify_dag_costs(dag)
    assert rep.ok, rep.format()


def test_dag_costs_clean_complex_and_fused():
    sym = analyze(grid_laplacian_2d(16, jitter=0.05, seed=0), EXACT).symbol
    dag = build_dag(sym, "ldlt", dtype=np.complex128)
    assert verify_dag_costs(dag, dtype=np.complex128).ok
    fused = build_dag(sym, "llt", granularity="1d",
                      fuse_subtree_flops=1e5)
    assert verify_dag_costs(fused).ok


def test_skew_flops_caught_naming_task():
    sym = analyze(grid_laplacian_2d(16, jitter=0.05, seed=0), EXACT).symbol
    dag = build_dag(sym, "llt")
    bad, task = skew_flops(dag)
    assert bad.flops[task] == pytest.approx(1.5 * dag.flops[task])
    rep = verify_dag_costs(bad)
    assert not rep.ok
    found = {f.code for f in rep.findings}
    assert "N504" in found and "N506" in found, rep.format()
    assert any(task in f.tasks for f in rep.findings if f.code == "N504")


def test_symbolless_dag_rejected():
    sym = analyze(grid_laplacian_2d(12, jitter=0.05, seed=0), EXACT).symbol
    dag = build_dag(sym, "llt")
    dag.symbol = None
    rep = verify_dag_costs(dag)
    assert [f.code for f in rep.findings] == ["N505"]
