"""Scheduler-policy tests."""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.dag.tasks import TaskDAG
from repro.machine import mirage, simulate
from repro.runtime import (
    NativePolicy,
    ParsecPolicy,
    StarPUPolicy,
    bottom_levels,
    get_policy,
)
from repro.symbolic import analyze


def chain_dag(weights):
    n = len(weights)
    kind = np.zeros(n, dtype=np.int8)
    idx = np.arange(n, dtype=np.int64)
    succ_ptr = np.concatenate([np.arange(n, dtype=np.int64), [n - 1]])
    succ_list = np.arange(1, n, dtype=np.int64)
    return TaskDAG(kind, idx, idx, np.asarray(weights, dtype=np.float64),
                   np.zeros(n, np.int64), np.zeros(n, np.int64),
                   np.zeros(n, np.int64), succ_ptr, succ_list,
                   np.full(n, -1, dtype=np.int64), "2d")


class TestBottomLevels:
    def test_chain(self):
        bl = bottom_levels(chain_dag([1.0, 2.0, 4.0]))
        assert np.array_equal(bl, [7.0, 6.0, 4.0])

    def test_fork(self):
        # 0 -> 1, 0 -> 2 with weights 1, 5, 3
        kind = np.zeros(3, dtype=np.int8)
        idx = np.arange(3, dtype=np.int64)
        dag = TaskDAG(kind, idx, idx, np.array([1.0, 5.0, 3.0]),
                      np.zeros(3, np.int64), np.zeros(3, np.int64),
                      np.zeros(3, np.int64),
                      np.array([0, 2, 2, 2], dtype=np.int64),
                      np.array([1, 2], dtype=np.int64),
                      np.full(3, -1, dtype=np.int64), "2d")
        assert np.array_equal(bottom_levels(dag), [6.0, 5.0, 3.0])


class TestRegistry:
    def test_get_policy_names(self):
        assert isinstance(get_policy("native"), NativePolicy)
        assert isinstance(get_policy("starpu"), StarPUPolicy)
        assert isinstance(get_policy("parsec"), ParsecPolicy)

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            get_policy("openmp")

    def test_kwargs_forwarded(self):
        p = get_policy("parsec", gpu_flops_threshold=123.0)
        assert p.gpu_flops_threshold == 123.0


class TestTraits:
    def test_native_traits(self):
        t = NativePolicy().traits
        assert t.cache_reuse and not t.dedicated_gpu_workers
        assert not t.recompute_ld

    def test_starpu_traits(self):
        t = StarPUPolicy().traits
        assert not t.cache_reuse
        assert t.dedicated_gpu_workers and t.prefetch and t.recompute_ld

    def test_parsec_traits(self):
        t = ParsecPolicy().traits
        assert t.cache_reuse and not t.dedicated_gpu_workers
        assert t.recompute_ld

    def test_overhead_ordering(self):
        # The paper's ranking: native < parsec < starpu dispatch cost.
        assert (
            NativePolicy().traits.task_overhead_s
            < ParsecPolicy().traits.task_overhead_s
            < StarPUPolicy().traits.task_overhead_s
        )


class TestBehaviour:
    @pytest.fixture(scope="class")
    def dag(self, grid2d_medium):
        return build_dag(analyze(grid2d_medium).symbol, "llt")

    def test_native_fastest_single_core_llt(self, dag):
        """Lowest overhead + cache reuse wins at 1 core."""
        times = {
            p: simulate(dag, mirage(1), get_policy(p),
                        collect_trace=False).makespan
            for p in ("native", "starpu", "parsec")
        }
        assert times["native"] <= times["parsec"] <= times["starpu"] * 1.01

    def test_parsec_beats_starpu_multicore(self, dag):
        """The paper's §V-A observation (cache reuse) at 8 cores."""
        p = simulate(dag, mirage(8), get_policy("parsec"),
                     collect_trace=False).makespan
        s = simulate(dag, mirage(8), get_policy("starpu"),
                     collect_trace=False).makespan
        assert p <= s

    def test_ldlt_native_advantage(self, grid2d_medium):
        """Temp-buffer LDLT updates: native beats the generic runtimes
        by more on LDLT than on LLT (paper Fig. 2, pmlDF/Serena)."""
        sym = analyze(grid2d_medium).symbol

        def ratio(ft):
            dn = build_dag(sym, ft, recompute_ld=False)
            dg = build_dag(sym, ft, recompute_ld=True)
            tn = simulate(dn, mirage(4), get_policy("native"),
                          collect_trace=False).makespan
            tp = simulate(dg, mirage(4), get_policy("parsec"),
                          collect_trace=False).makespan
            return tp / tn

        assert ratio("ldlt") > ratio("llt")

    def test_native_updates_follow_panel_core(self, dag):
        """1D placement: a panel's updates run on the core that ran the
        panel (unless stolen)."""
        r = simulate(dag, mirage(4), get_policy("native"))
        core_of_panel = {}
        from repro.dag.tasks import TaskKind

        for e in sorted(r.trace.events, key=lambda e: e.start):
            if dag.kind[e.task] != TaskKind.UPDATE:
                core_of_panel[int(dag.cblk[e.task])] = e.resource
        same = 0
        total = 0
        for e in r.trace.events:
            if dag.kind[e.task] == TaskKind.UPDATE:
                total += 1
                if e.resource == core_of_panel[int(dag.cblk[e.task])]:
                    same += 1
        assert same / total > 0.5
