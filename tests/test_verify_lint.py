"""AST-linter tests: each rule on synthetic snippets, plus a clean run
over the real package (the linter gates tier-1, so ``src/repro`` itself
must lint clean)."""

from pathlib import Path

import pytest

from repro.verify import lint_paths, lint_report, lint_sources

FROZEN_PRELUDE = """
from dataclasses import dataclass

@dataclass(frozen=True)
class PolicyTraits:
    name: str
"""


def codes(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# RV301: frozen-dataclass mutation.
# ----------------------------------------------------------------------
def test_rv301_local_variable_mutation():
    src = FROZEN_PRELUDE + """
def f():
    t = PolicyTraits("a")
    t.name = "b"
"""
    found = lint_sources({"x.py": src})
    assert codes(found) == ["RV301"]
    assert "PolicyTraits" in found[0].message
    assert found[0].line == src.splitlines().index('    t.name = "b"') + 1


def test_rv301_annotated_parameter_mutation():
    src = FROZEN_PRELUDE + """
def f(tr: PolicyTraits):
    tr.name = "b"
    tr.name += "c"
"""
    assert codes(lint_sources({"x.py": src})) == ["RV301", "RV301"]


def test_rv301_object_setattr():
    src = FROZEN_PRELUDE + """
def f():
    t = PolicyTraits("a")
    object.__setattr__(t, "name", "b")
"""
    assert codes(lint_sources({"x.py": src})) == ["RV301"]


def test_rv301_object_setattr_on_self_allowed():
    # The sanctioned __post_init__ idiom.
    src = FROZEN_PRELUDE + """
@dataclass(frozen=True)
class Other:
    x: int

    def __post_init__(self):
        object.__setattr__(self, "x", 2 * self.x)
"""
    assert lint_sources({"x.py": src}) == []


def test_rv301_cross_file_discovery():
    # The frozen class is defined in one file, mutated in another.
    use = """
from defs import PolicyTraits

def f():
    t = PolicyTraits("a")
    t.name = "b"
"""
    found = lint_sources({"defs.py": FROZEN_PRELUDE, "use.py": use})
    assert codes(found) == ["RV301"]
    assert found[0].path == "use.py"


def test_rv301_unfrozen_dataclass_untouched():
    src = """
from dataclasses import dataclass

@dataclass
class Mutable:
    x: int

def f():
    m = Mutable(1)
    m.x = 2
"""
    assert lint_sources({"x.py": src}) == []


# ----------------------------------------------------------------------
# RV302: float equality between simulation times.
# ----------------------------------------------------------------------
def test_rv302_time_vs_time_and_literal():
    src = """
def f(start, end, makespan, count):
    a = start == end
    b = makespan != 0.0
    c = count == 3          # int-ish: fine
    d = start == 3          # int literal: fine
    e = abs(start - end) <= 1e-9   # the sanctioned idiom
    return a, b, c, d, e
"""
    assert codes(lint_sources({"x.py": src})) == ["RV302", "RV302"]


def test_rv302_attributes_and_chained():
    src = """
def f(ev, other):
    if ev.start == other.end:
        pass
    if ev.start == other.end == 0.0:
        pass
"""
    found = lint_sources({"x.py": src})
    # The chained compare holds two flagged comparisons.
    assert codes(found) == ["RV302", "RV302", "RV302"]


def test_rv302_runtime_is_not_time_like():
    # "runtime" contains "time" as a substring but is not a time name.
    src = """
def f(runtime):
    return runtime == "starpu"
"""
    assert lint_sources({"x.py": src}) == []


# ----------------------------------------------------------------------
# RV303: SchedulerPolicy subclasses define traits.
# ----------------------------------------------------------------------
def test_rv303_missing_traits():
    src = """
class SchedulerPolicy:
    pass

class Bad(SchedulerPolicy):
    def __init__(self):
        self.other = 1
"""
    found = lint_sources({"x.py": src})
    assert codes(found) == ["RV303"]
    assert "Bad" in found[0].message


def test_rv303_satisfied_variants():
    src = """
from abc import ABC

class SchedulerPolicy:
    pass

class ViaInit(SchedulerPolicy):
    def __init__(self):
        self.traits = 1

class ViaClassAttr(SchedulerPolicy):
    traits = 1

class ViaAnnotated(SchedulerPolicy):
    traits: int = 1

class StillAbstract(SchedulerPolicy, ABC):
    pass
"""
    assert lint_sources({"x.py": src}) == []


# ----------------------------------------------------------------------
# RV304: numpy-array truthiness.
# ----------------------------------------------------------------------
def test_rv304_boolean_contexts():
    src = """
import numpy as np

def f(x):
    if np.flatnonzero(x):
        pass
    while np.where(x):
        break
    assert np.unique(x)
    y = 1 if np.diff(x) else 2
    z = bool(x) and np.nonzero(x)
    w = not np.intersect1d(x, x)
    return y, z, w
"""
    assert codes(lint_sources({"x.py": src})) == ["RV304"] * 6


def test_rv304_size_test_is_clean():
    src = """
import numpy as np

def f(x):
    if np.flatnonzero(x).size:
        pass
    arr = np.flatnonzero(x)
    if len(arr):
        pass
"""
    assert lint_sources({"x.py": src}) == []


# ----------------------------------------------------------------------
# Suppression, syntax errors, path/report wrappers.
# ----------------------------------------------------------------------
def test_noqa_suppression():
    src = FROZEN_PRELUDE + """
def f(tr: PolicyTraits):
    tr.name = "a"  # noqa
    tr.name = "b"  # noqa: RV301
    tr.name = "c"  # noqa: RV999
"""
    found = lint_sources({"x.py": src})
    assert codes(found) == ["RV301"]  # only the mismatched code survives
    assert found[0].line == src.splitlines().index(
        '    tr.name = "c"  # noqa: RV999') + 1


def test_syntax_error_reported_not_raised():
    found = lint_sources({"x.py": "def broken(:\n"})
    assert codes(found) == ["RV300"]


def test_lint_paths_and_report(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(FROZEN_PRELUDE + """
def f():
    t = PolicyTraits("a")
    t.name = "b"
""")
    (tmp_path / "sub").mkdir()
    good = tmp_path / "sub" / "good.py"
    good.write_text("x = 1\n")
    found = lint_paths([tmp_path])
    assert codes(found) == ["RV301"]
    assert found[0].location == f"{bad}:{found[0].line}"
    rep = lint_report([tmp_path])
    assert not rep.ok
    assert rep.stats["findings"] == 1
    rep_good = lint_report([good])
    assert rep_good.ok and rep_good.stats["findings"] == 0


def test_repro_package_lints_clean():
    root = Path(__file__).resolve().parents[1] / "src" / "repro"
    rep = lint_report([root])
    assert rep.ok, rep.format()


# ----------------------------------------------------------------------
# RV305: mutable dataclass defaults.
# ----------------------------------------------------------------------
def test_rv305_mutable_defaults_flagged():
    src = """
from dataclasses import dataclass, field
from collections import defaultdict

@dataclass
class Config:
    items: list = []
    table: dict = {}
    seen: set = set()
    by_key = defaultdict(list)
    squares: list = [i * i for i in range(4)]
"""
    found = lint_sources({"x.py": src})
    assert codes(found) == ["RV305"] * 5
    assert "items" in found[0].message
    assert "field(default_factory=" in found[0].message


def test_rv305_field_and_immutable_defaults_clean():
    src = """
from dataclasses import dataclass, field

@dataclass
class Config:
    items: list = field(default_factory=list)
    count: int = 0
    name: str = "x"
    pair: tuple = (1, 2)
    anything = None
"""
    assert lint_sources({"x.py": src}) == []


def test_rv305_non_dataclass_untouched():
    # Class-level mutables on a plain class are a deliberate idiom
    # (shared registries); only @dataclass fields are flagged.
    src = """
class Registry:
    entries: list = []
    table = {}
"""
    assert lint_sources({"x.py": src}) == []


def test_rv305_frozen_dataclass_also_checked():
    src = """
from dataclasses import dataclass

@dataclass(frozen=True)
class Frozen:
    deps: list = []
"""
    assert codes(lint_sources({"x.py": src})) == ["RV305"]


# ----------------------------------------------------------------------
# RV306: iteration over unordered sets.
# ----------------------------------------------------------------------
def test_rv306_direct_set_iteration():
    src = """
def f(items):
    for x in set(items):
        print(x)
    for y in {1, 2, 3}:
        print(y)
    return [z for z in frozenset(items)]
"""
    assert codes(lint_sources({"x.py": src})) == ["RV306"] * 3


def test_rv306_set_typed_names():
    src = """
def f():
    ready: set[int] = set()
    for t in ready:
        print(t)

def g(pending):
    waiting = {1, 2}
    total = sum(w for w in waiting)
    return total
"""
    assert codes(lint_sources({"x.py": src})) == ["RV306"] * 2


def test_rv306_sorted_iteration_clean():
    src = """
def f(items):
    ready: set[int] = set()
    for x in sorted(set(items)):
        print(x)
    for t in sorted(ready):
        print(t)
    for y in [1, 2, 3]:
        print(y)
"""
    assert lint_sources({"x.py": src}) == []


def test_rv306_noqa_suppression():
    src = """
def f(items):
    for x in set(items):  # noqa: RV306
        print(x)
"""
    assert lint_sources({"x.py": src}) == []


# ----------------------------------------------------------------------
# RV307: unseeded randomness.
# ----------------------------------------------------------------------
def test_rv307_legacy_numpy_sampler():
    src = """
import numpy as np

def f():
    return np.random.random(4)
"""
    found = lint_sources({"x.py": src})
    assert codes(found) == ["RV307"]
    assert "np.random" in found[0].message


def test_rv307_argless_default_rng():
    src = """
import numpy as np

def f():
    return np.random.default_rng()
"""
    found = lint_sources({"x.py": src})
    assert codes(found) == ["RV307"]


def test_rv307_stdlib_random_sampler():
    src = """
import random

def f():
    return random.choice([1, 2, 3])
"""
    found = lint_sources({"x.py": src})
    assert codes(found) == ["RV307"]


def test_rv307_argless_random_instance():
    src = """
import random

def f():
    return random.Random()
"""
    found = lint_sources({"x.py": src})
    assert codes(found) == ["RV307"]


def test_rv307_seeded_randomness_clean():
    src = """
import numpy as np
import random

def f(seed):
    rng = np.random.default_rng(seed)
    r = random.Random(seed)
    return rng.random(4), rng.standard_normal(3), r.random()
"""
    assert lint_sources({"x.py": src}) == []


def test_rv307_noqa_suppression():
    src = """
import random

def f():
    return random.random()  # noqa: RV307
"""
    assert lint_sources({"x.py": src}) == []
