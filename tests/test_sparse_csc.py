"""Unit tests for the CSC container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse.csc import SparseMatrixCSC, coo_to_csc


class TestConstruction:
    def test_coo_to_csc_basic(self):
        m = coo_to_csc(3, 3, [0, 2, 1], [0, 1, 2], [1.0, 2.0, 3.0])
        assert m.shape == (3, 3)
        assert m.nnz == 3
        m.check()
        d = m.to_dense()
        assert d[0, 0] == 1.0 and d[2, 1] == 2.0 and d[1, 2] == 3.0

    def test_duplicates_summed(self):
        m = coo_to_csc(2, 2, [0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0])
        assert m.nnz == 2
        assert m.to_dense()[0, 0] == 3.0

    def test_duplicates_rejected_when_disallowed(self):
        with pytest.raises(ValueError, match="duplicate"):
            coo_to_csc(2, 2, [0, 0], [0, 0], [1.0, 2.0], sum_duplicates=False)

    def test_out_of_range_row(self):
        with pytest.raises(ValueError, match="row index"):
            coo_to_csc(2, 2, [2], [0], [1.0])

    def test_out_of_range_col(self):
        with pytest.raises(ValueError, match="column index"):
            coo_to_csc(2, 2, [0], [5], [1.0])

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError, match="identical shapes"):
            coo_to_csc(2, 2, [0, 1], [0], None)

    def test_pattern_only(self):
        m = coo_to_csc(3, 3, [0, 1], [1, 2])
        assert m.is_pattern
        assert m.values is None
        with pytest.raises(ValueError):
            m.col_values(1)

    def test_empty_matrix(self):
        m = coo_to_csc(4, 4, [], [])
        assert m.nnz == 0
        m.check()

    def test_identity(self):
        m = SparseMatrixCSC.identity(5)
        assert np.allclose(m.to_dense(), np.eye(5))

    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        d = rng.standard_normal((6, 4)) * (rng.random((6, 4)) < 0.4)
        m = SparseMatrixCSC.from_dense(d)
        assert np.allclose(m.to_dense(), d)

    def test_from_scipy_roundtrip(self):
        import scipy.sparse as sp

        s = sp.random(10, 10, 0.3, random_state=1, format="csc")
        m = SparseMatrixCSC.from_scipy(s)
        assert np.allclose(m.to_dense(), s.toarray())
        back = m.to_scipy()
        assert np.allclose(back.toarray(), s.toarray())

    def test_check_rejects_bad_colptr(self):
        m = SparseMatrixCSC.identity(3)
        m.colptr = m.colptr[:-1]
        with pytest.raises(ValueError):
            m.check()


class TestTransforms:
    def test_transpose(self):
        m = coo_to_csc(3, 2, [0, 2, 1], [0, 0, 1], [1.0, 2.0, 3.0])
        t = m.transpose()
        assert t.shape == (2, 3)
        assert np.allclose(t.to_dense(), m.to_dense().T)

    def test_symmetrize_pattern(self):
        m = coo_to_csc(3, 3, [0, 1], [1, 2], [1.0, 1.0])
        s = m.symmetrize_pattern()
        d = s.to_dense()
        assert d[0, 1] == d[1, 0] == 1.0
        assert d[1, 2] == d[2, 1] == 1.0
        assert s.is_pattern

    def test_symmetrize_requires_square(self):
        m = coo_to_csc(2, 3, [0], [1], [1.0])
        with pytest.raises(ValueError):
            m.symmetrize_pattern()

    def test_symmetrize_values(self):
        m = coo_to_csc(2, 2, [0, 1], [1, 0], [2.0, 4.0])
        s = m.symmetrize_values()
        d = s.to_dense()
        assert d[0, 1] == d[1, 0] == 3.0

    def test_lower_triangle(self):
        d = np.arange(9, dtype=float).reshape(3, 3) + 1
        m = SparseMatrixCSC.from_dense(d)
        low = m.lower_triangle()
        assert np.allclose(low.to_dense(), np.tril(d))
        strict = m.lower_triangle(strict=True)
        assert np.allclose(strict.to_dense(), np.tril(d, -1))

    def test_with_full_diagonal(self):
        m = coo_to_csc(3, 3, [0, 2], [1, 0], [1.0, 1.0])
        full = m.with_full_diagonal()
        rows, cols, _ = full.to_coo()
        diag = set(zip(rows[rows == cols].tolist(), cols[rows == cols].tolist()))
        assert diag == {(0, 0), (1, 1), (2, 2)}

    def test_with_full_diagonal_noop(self):
        m = SparseMatrixCSC.identity(3)
        assert m.with_full_diagonal() is m

    def test_permute_matches_dense(self):
        rng = np.random.default_rng(2)
        d = rng.standard_normal((5, 5))
        m = SparseMatrixCSC.from_dense(d)
        perm = np.array([2, 0, 4, 1, 3])
        p = np.zeros((5, 5))
        p[perm, np.arange(5)] = 1
        assert np.allclose(m.permute(perm).to_dense(), p @ d @ p.T)

    def test_permute_rejects_bad_length(self):
        m = SparseMatrixCSC.identity(3)
        with pytest.raises(ValueError):
            m.permute(np.array([0, 1]))

    def test_pattern_drops_values(self):
        m = SparseMatrixCSC.identity(3)
        assert m.pattern().is_pattern


class TestNumeric:
    def test_matvec_matches_dense(self):
        rng = np.random.default_rng(3)
        d = rng.standard_normal((7, 7)) * (rng.random((7, 7)) < 0.5)
        m = SparseMatrixCSC.from_dense(d)
        x = rng.standard_normal(7)
        assert np.allclose(m.matvec(x), d @ x)

    def test_matvec_complex(self):
        d = np.array([[1 + 1j, 0], [2j, 3.0]])
        m = SparseMatrixCSC.from_dense(d)
        x = np.array([1.0, 1j])
        assert np.allclose(m.matvec(x), d @ x)

    def test_diagonal(self):
        d = np.diag([1.0, 2.0, 3.0])
        d[0, 2] = 5.0
        m = SparseMatrixCSC.from_dense(d)
        assert np.allclose(m.diagonal(), [1.0, 2.0, 3.0])

    def test_scale_diagonal_dominant(self):
        rng = np.random.default_rng(4)
        d = rng.standard_normal((6, 6))
        np.fill_diagonal(d, 0.1)
        m = SparseMatrixCSC.from_dense(d).scale_diagonal_dominant(1.5)
        dd = m.to_dense()
        for j in range(6):
            off = np.abs(dd[:, j]).sum() - abs(dd[j, j])
            assert abs(dd[j, j]) > off

    def test_matvec_requires_values(self):
        with pytest.raises(ValueError):
            SparseMatrixCSC.identity(3).pattern().matvec(np.ones(3))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 12),
    seed=st.integers(0, 10_000),
)
def test_property_transpose_involution(n, seed):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.4)
    m = SparseMatrixCSC.from_dense(d)
    assert np.allclose(m.transpose().transpose().to_dense(), d)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 12), seed=st.integers(0, 10_000))
def test_property_permute_preserves_nnz_and_values(n, seed):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.5)
    m = SparseMatrixCSC.from_dense(d)
    perm = rng.permutation(n)
    pm = m.permute(perm)
    assert pm.nnz == m.nnz
    assert np.allclose(sorted(pm.values), sorted(m.values))


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 10), seed=st.integers(0, 10_000))
def test_property_symmetrize_is_symmetric(n, seed):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.4)
    m = SparseMatrixCSC.from_dense(d)
    s = m.symmetrize_pattern().to_dense()
    assert np.array_equal(s, s.T)
