"""End-to-end tests of the benchmark command-line entry points.

Each ``bench_*.py`` main() is run in-process at a tiny scale on a subset
of matrices: the full sweep logic, table formatting, and CSV output all
execute, just on cheap inputs.  This is the regression net for the
harness itself (deliverable d).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture()
def bench_env(tmp_path, monkeypatch):
    """Import benchmark modules with results redirected to tmp_path."""
    sys.path.insert(0, str(BENCH_DIR))
    import common

    monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
    monkeypatch.setattr(common, "CACHE_DIR", tmp_path / ".cache")
    common._memory_cache.clear()

    def load(name):
        spec = importlib.util.spec_from_file_location(
            name, BENCH_DIR / f"{name}.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    yield load, tmp_path
    sys.path.remove(str(BENCH_DIR))
    common._memory_cache.clear()


def test_table1_main(bench_env, capsys):
    load, tmp = bench_env
    mod = load("bench_table1")
    mod.main(["--scale", "0.25", "--matrices", "afshell10", "MHD"])
    out = capsys.readouterr().out
    assert "afshell10" in out and "MHD" in out
    assert (tmp / "table1.csv").exists()


def test_fig2_main(bench_env, capsys):
    load, tmp = bench_env
    mod = load("bench_fig2_cpu_scaling")
    mod.main(["--scale", "0.3", "--matrices", "audi"])
    out = capsys.readouterr().out
    for policy in ("native", "starpu", "parsec"):
        assert policy in out
    csv = (tmp / "fig2_cpu_scaling.csv").read_text()
    assert csv.count("\n") == 4  # header + 3 policies


def test_fig3_main(bench_env, capsys):
    load, tmp = bench_env
    mod = load("bench_fig3_gemm_streams")
    mod.main([])
    out = capsys.readouterr().out
    assert "cuBLAS square-matrix peak" in out
    assert (tmp / "fig3_gemm_streams.csv").exists()


def test_fig4_main(bench_env, capsys):
    load, tmp = bench_env
    mod = load("bench_fig4_gpu_scaling")
    mod.main(["--scale", "0.3", "--matrices", "MHD"])
    out = capsys.readouterr().out
    assert "pastix(cpu)" in out and "parsec-3s" in out
    csv = (tmp / "fig4_gpu_scaling.csv").read_text()
    assert csv.count("\n") == 5  # header + 4 configs


def test_distributed_main(bench_env, capsys):
    load, tmp = bench_env
    mod = load("bench_distributed")
    mod.main(["--scale", "0.4"])
    out = capsys.readouterr().out
    assert "strong scaling" in out
    assert "latency sensitivity" in out
    assert "mapping strategies" in out
    for f in ("distributed_scaling.csv", "distributed_latency.csv",
              "distributed_mapping.csv"):
        assert (tmp / f).exists()


def test_common_table_formatting(bench_env):
    load, _ = bench_env
    import common

    txt = common.format_table(["a", "bb"], [["1", "22"], ["333", "4"]])
    lines = txt.splitlines()
    assert len(lines) == 4
    assert all(len(l) == len(lines[0]) for l in lines)


def test_common_analysis_cache(bench_env):
    load, tmp = bench_env
    import common

    a = common.analyzed("afshell10", 0.2)
    b = common.analyzed("afshell10", 0.2)
    assert a is b  # memory cache
    common._memory_cache.clear()
    c = common.analyzed("afshell10", 0.2)  # disk cache
    assert c.symbol.nnz() == a.symbol.nnz()


# ----------------------------------------------------------------------
# Machine-readable BENCH_*.json payloads and the --verify gate.
# ----------------------------------------------------------------------
def test_table1_writes_bench_json(bench_env, capsys):
    import json

    load, tmp = bench_env
    mod = load("bench_table1")
    mod.main(["--scale", "0.25", "--matrices", "MHD", "--verify"])
    data = json.loads((tmp / "BENCH_table1.json").read_text())
    assert data["figure"] == "table1" and data["verified"] is True
    (cell,) = data["cells"]
    assert cell["matrix"] == "MHD"
    assert cell["nnz_l"] >= cell["nnz_a"] > 0
    assert cell["flops"] > 0


def test_fig2_bench_json_and_verify(bench_env, capsys):
    import json

    load, tmp = bench_env
    mod = load("bench_fig2_cpu_scaling")
    mod.main(["--scale", "0.3", "--matrices", "audi", "--verify"])
    data = json.loads((tmp / "BENCH_fig2_cpu_scaling.json").read_text())
    cells = data["cells"]
    assert {c["policy"] for c in cells} == {"native", "starpu", "parsec"}
    for c in cells:
        assert c["gflops"] > 0 and c["makespan_s"] > 0
        assert c["verified"] is True
        assert c["n_gpus"] == 0 and c["bytes_h2d"] == 0.0


def test_fig3_bench_json(bench_env, capsys):
    import json

    load, tmp = bench_env
    mod = load("bench_fig3_gemm_streams")
    mod.main([])
    data = json.loads((tmp / "BENCH_fig3_gemm_streams.json").read_text())
    assert data["cublas_peak_gflops"] > 0
    assert all(c["bytes_touched"] > 0 for c in data["cells"])


def test_fig4_bench_json_reports_traffic(bench_env, capsys):
    import json

    load, tmp = bench_env
    mod = load("bench_fig4_gpu_scaling")
    # MHD offloads from scale 0.5 up; smaller problems stay CPU-only
    # under the scheduler's opportunistic offload heuristic.
    mod.main(["--scale", "0.5", "--matrices", "MHD", "--verify"])
    data = json.loads((tmp / "BENCH_fig4_gpu_scaling.json").read_text())
    cells = data["cells"]
    # 1 CPU-only reference + 3 hybrid configs x 4 GPU counts.
    assert len(cells) == 13
    assert {c["label"] for c in cells} == {
        "pastix(cpu)", "starpu", "parsec-1s", "parsec-3s",
    }
    gpu_cells = [c for c in cells if c["n_gpus"] > 0]
    assert gpu_cells
    # GPU configurations move bytes and occupy device memory.
    assert any(c["bytes_h2d"] > 0 for c in gpu_cells)
    assert any(c["peak_gpu_bytes"] > 0 for c in gpu_cells)
    assert all(c["verified"] is True for c in cells)


def test_simulate_cell_verify_gate(bench_env):
    load, _ = bench_env
    import common

    cell = common.simulate_cell("MHD", "parsec", scale=0.3, n_cores=4,
                                n_gpus=1, streams=2, verify=True)
    assert cell["verified"] is True
    assert cell["gflops"] > 0


# ----------------------------------------------------------------------
# Threaded-scheduler sweep + perf-regression gate.
# ----------------------------------------------------------------------
def test_bench_threaded_quick(bench_env, capsys):
    import json

    load, tmp = bench_env
    mod = load("bench_threaded")
    out_path = tmp / "bt.json"
    mod.main(["--scale", "0.3", "--matrices", "audi", "--workers", "2",
              "--repeats", "1", "--verify", "--out", str(out_path)])
    out = capsys.readouterr().out
    for sched in ("fifo", "ws", "priority", "affinity", "adaptive"):
        assert sched in out
    data = json.loads(out_path.read_text())
    assert data["bench"] == "threaded"
    assert data["calib_gflops"] > 0
    # 5 schedulers x 3 hot-path variants (base/opt/compiled).
    assert len(data["cells"]) == 15
    assert {c["variant"] for c in data["cells"]} == {
        "base", "opt", "compiled",
    }
    for c in data["cells"]:
        assert c["wall_s"] > 0
        assert c["model_makespan_s"] >= c["model_cp_s"] > 0
        assert c["verified"] is True
        # Compiled cells record the 2D split and the effective backend
        # (which degrades to "numpy" when numba is absent).
        if c["variant"] == "compiled":
            assert c["split_rows"] == mod.SPLIT_ROWS
            assert c["kernels"] in ("numpy", "compiled")
        else:
            assert c["split_rows"] is None
            assert c["kernels"] == "numpy"
    # The summary compares each scheduler against the fifo baseline.
    assert {s["scheduler"] for s in data["summary"]} == {
        "ws", "priority", "affinity", "adaptive",
    }
    # Every scheduler gets both ladder pairings (opt/base,
    # compiled/opt).
    assert {(s["scheduler"], s["pair"])
            for s in data["variant_summary"]} == {
        (sched, pair)
        for sched in ("fifo", "ws", "priority", "affinity", "adaptive")
        for pair in ("opt/base", "compiled/opt")
    }
    for s in data["variant_summary"]:
        assert s["model_speedup"] > 0


def test_perf_compare_pass_and_regression(bench_env, capsys):
    import copy
    import json

    load, tmp = bench_env
    bt = load("bench_threaded")
    pc = load("perf_compare")
    base_path = tmp / "base.json"
    bt.main(["--scale", "0.3", "--matrices", "audi", "--workers", "2",
             "--repeats", "1", "--out", str(base_path)])
    capsys.readouterr()

    # Identical report: must pass.
    assert pc.main([str(base_path), str(base_path)]) == 0
    assert "PASS" in capsys.readouterr().out

    # Doctor one cell's replay makespan beyond the 15% gate: must fail.
    doctored = copy.deepcopy(json.loads(base_path.read_text()))
    doctored["cells"][0]["model_makespan_s"] *= 1.5
    bad_path = tmp / "bad.json"
    bad_path.write_text(json.dumps(doctored))
    assert pc.main([str(base_path), str(bad_path)]) == 1
    assert "REGRESSION(model)" in capsys.readouterr().out

    # A gross wall slowdown trips the lax wall backstop even when the
    # replay metric is untouched.
    slow = copy.deepcopy(json.loads(base_path.read_text()))
    for c in slow["cells"]:
        c["wall_s"] *= 2.0
    slow_path = tmp / "slow.json"
    slow_path.write_text(json.dumps(slow))
    assert pc.main([str(base_path), str(slow_path)]) == 1
    assert "REGRESSION(wall)" in capsys.readouterr().out
    # ... but --no-wall ignores it.
    assert pc.main(["--no-wall", str(base_path), str(slow_path)]) == 0


def test_perf_compare_rejects_disjoint_reports(bench_env, capsys):
    import json

    load, tmp = bench_env
    pc = load("perf_compare")
    a = {"bench": "threaded", "cells": [
        {"matrix": "x", "scheduler": "fifo", "n_workers": 1, "scale": 1.0,
         "wall_s": 1.0, "model_makespan_s": 1.0}]}
    b = {"bench": "threaded", "cells": [
        {"matrix": "y", "scheduler": "fifo", "n_workers": 1, "scale": 1.0,
         "wall_s": 1.0, "model_makespan_s": 1.0}]}
    pa, pb = tmp / "a.json", tmp / "b.json"
    pa.write_text(json.dumps(a))
    pb.write_text(json.dumps(b))
    assert pc.main([str(pa), str(pb)]) == 1
    assert "no comparable cells" in capsys.readouterr().out


def test_bench_threaded_mis_prioritize_is_caught(bench_env, capsys):
    """The gate's self-test mechanism: a mis-prioritized 'priority' cell
    must inflate the replay makespan past the threshold."""
    load, tmp = bench_env
    bt = load("bench_threaded")
    pc = load("perf_compare")
    base_path = tmp / "base.json"
    mis_path = tmp / "mis.json"
    common_args = ["--scale", "0.75", "--matrices", "audi",
                   "--workers", "4", "--repeats", "1",
                   "--schedulers", "priority", "--variants", "opt"]
    bt.main(common_args + ["--out", str(base_path)])
    bt.main(common_args + ["--mis-prioritize", "--out", str(mis_path)])
    capsys.readouterr()
    assert pc.main(["--no-wall", str(base_path), str(mis_path)]) == 1
    assert "REGRESSION(model)" in capsys.readouterr().out


def test_perf_compare_gate_variants(bench_env, capsys):
    """--gate-variants: any ladder rung losing to its reference fails."""
    import copy
    import json

    load, tmp = bench_env
    bt = load("bench_threaded")
    pc = load("perf_compare")
    rep_path = tmp / "rep.json"
    bt.main(["--scale", "0.3", "--matrices", "audi", "--workers", "2",
             "--repeats", "1", "--schedulers", "ws",
             "--out", str(rep_path)])
    capsys.readouterr()

    # Doctor the ladder so each rung clearly wins: the gate must pass.
    data = json.loads(rep_path.read_text())
    factor = {"opt": 0.8, "compiled": 0.7}
    for c in data["cells"]:
        f = factor.get(c["variant"])
        if f is not None:
            c["model_makespan_s"] *= f
            c["wall_s"] *= f
    good_path = tmp / "good.json"
    good_path.write_text(json.dumps(data))
    assert pc.main(["--gate-variants", "--no-wall",
                    str(good_path), str(good_path)]) == 0
    out = capsys.readouterr().out
    assert "every variant rung beats its reference" in out
    assert "opt/base" in out and "compiled/opt" in out

    # Doctor the opt cell to lose to base: the gate must fail even
    # though the baseline diff itself is clean.
    bad = copy.deepcopy(data)
    for c in bad["cells"]:
        if c["variant"] == "opt":
            c["model_makespan_s"] *= 2.0
    bad_path = tmp / "bad.json"
    bad_path.write_text(json.dumps(bad))
    assert pc.main(["--gate-variants", "--no-wall", "--threshold", "3.0",
                    str(bad_path), str(bad_path)]) == 1
    assert "VARIANT REGRESSION" in capsys.readouterr().out

    # Compiled losing to opt trips the second rung the same way.
    bad2 = copy.deepcopy(data)
    for c in bad2["cells"]:
        if c["variant"] == "compiled":
            c["model_makespan_s"] *= 2.0
    bad2_path = tmp / "bad2.json"
    bad2_path.write_text(json.dumps(bad2))
    assert pc.main(["--gate-variants", "--no-wall", "--threshold", "3.0",
                    str(bad2_path), str(bad2_path)]) == 1
    assert "VARIANT REGRESSION" in capsys.readouterr().out

    # A report with no gateable pairs must not silently pass the gate.
    only_base = copy.deepcopy(data)
    only_base["cells"] = [
        c for c in only_base["cells"] if c["variant"] == "base"
    ]
    ob_path = tmp / "only_base.json"
    ob_path.write_text(json.dumps(only_base))
    assert pc.main(["--gate-variants", "--no-wall",
                    str(ob_path), str(ob_path)]) == 1
    assert "no variant cell pairs" in capsys.readouterr().out


def test_perf_compare_gate_adaptive(bench_env, capsys):
    """--gate-adaptive: adaptive losing to priority on replay fails."""
    import copy
    import json

    load, tmp = bench_env
    pc = load("perf_compare")

    def cell(sched, makespan):
        return {"matrix": "audi", "scheduler": sched, "n_workers": 2,
                "scale": 0.3, "variant": "opt", "wall_s": 0.1,
                "model_makespan_s": makespan}

    good = {"bench": "threaded", "calib_gflops": 1.0,
            "cells": [cell("priority", 1.0), cell("adaptive", 0.98)]}
    good_path = tmp / "good.json"
    good_path.write_text(json.dumps(good))
    assert pc.main(["--gate-adaptive", "--no-wall",
                    str(good_path), str(good_path)]) == 0
    assert "adaptive holds priority" in capsys.readouterr().out

    # Adaptive worse than priority beyond the threshold: fail.
    bad = copy.deepcopy(good)
    bad["cells"][1]["model_makespan_s"] = 1.2
    bad_path = tmp / "bad.json"
    bad_path.write_text(json.dumps(bad))
    assert pc.main(["--gate-adaptive", "--no-wall",
                    str(good_path), str(bad_path)]) == 1
    assert "ADAPTIVE REGRESSION" in capsys.readouterr().out
    # ...but a looser threshold tolerates it (self-diff keeps the
    # baseline comparison itself clean).
    assert pc.main(["--gate-adaptive", "--no-wall",
                    "--adaptive-threshold", "0.5",
                    str(bad_path), str(bad_path)]) == 0
    capsys.readouterr()

    # No adaptive/priority pairs at all must not silently pass.
    only_prio = {"bench": "threaded", "calib_gflops": 1.0,
                 "cells": [cell("priority", 1.0)]}
    op_path = tmp / "only_prio.json"
    op_path.write_text(json.dumps(only_prio))
    assert pc.main(["--gate-adaptive", "--no-wall",
                    str(op_path), str(op_path)]) == 1
    assert "no adaptive/priority cell pairs" in capsys.readouterr().out


def test_perf_compare_calibration_warning_and_strict(bench_env, capsys):
    """A missing calibration must be loud, and fatal under
    --strict-calibration (the wall gate silently comparing raw
    cross-host seconds was a bug)."""
    import json

    load, tmp = bench_env
    pc = load("perf_compare")
    cells = [{"matrix": "audi", "scheduler": "fifo", "n_workers": 2,
              "scale": 0.3, "variant": "opt", "wall_s": 0.1,
              "model_makespan_s": 1.0}]
    cal = {"bench": "threaded", "calib_gflops": 2.0, "cells": cells}
    uncal = {"bench": "threaded", "cells": cells}
    cal_path, uncal_path = tmp / "cal.json", tmp / "uncal.json"
    cal_path.write_text(json.dumps(cal))
    uncal_path.write_text(json.dumps(uncal))

    # Calibrated on both sides: silent.
    assert pc.main([str(cal_path), str(cal_path)]) == 0
    assert "WARNING" not in capsys.readouterr().err

    # Uncalibrated side: loud warning naming the report, still exit 0.
    assert pc.main([str(cal_path), str(uncal_path)]) == 0
    err = capsys.readouterr().err
    assert "WARNING" in err and "uncal.json" in err
    assert "RAW wall seconds" in err

    # --strict-calibration turns the fallback into a failure...
    assert pc.main(["--strict-calibration",
                    str(cal_path), str(uncal_path)]) == 1
    assert "strict-calibration" in capsys.readouterr().err
    # ...unless the wall gate is off entirely.
    assert pc.main(["--strict-calibration", "--no-wall",
                    str(cal_path), str(uncal_path)]) == 0
    assert "WARNING" not in capsys.readouterr().err
