"""Supernode detection, row sets, and amalgamation tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ordering import nested_dissection
from repro.ordering.perm import Permutation
from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic.colcount import column_counts
from repro.symbolic.etree import elimination_tree, postorder
from repro.symbolic.supernodes import (
    amalgamate,
    fundamental_supernodes,
    supernode_row_sets,
)
from tests.conftest import random_spd_dense


def postordered_pipeline(mat: SparseMatrixCSC):
    """Permute to postorder; returns (pattern, parent, counts).

    The returned pattern carries the permuted numeric values (symmetric
    SPD inputs only), so tests can cross-check against a dense Cholesky.
    """
    pattern = mat.symmetrize_pattern().with_full_diagonal()
    parent1 = elimination_tree(pattern)
    perm = Permutation.from_iperm(postorder(parent1))
    pat2 = mat.permute(perm.perm).with_full_diagonal()
    parent = elimination_tree(pat2)
    counts = column_counts(pat2, parent, np.arange(pat2.n_cols))
    return pat2, parent, counts


def snode_nnz(snptr, rowsets) -> int:
    return sum(
        int(w := snptr[i + 1] - snptr[i]) * (w + 1) // 2 + w * rowsets[i].size
        for i in range(snptr.size - 1)
    )


class TestFundamental:
    def test_dense_is_one_supernode(self):
        d = random_spd_dense(6, 1.0, 0)
        pat, parent, counts = postordered_pipeline(SparseMatrixCSC.from_dense(d))
        snptr = fundamental_supernodes(parent, counts)
        assert snptr.size == 2 and snptr[1] == 6

    def test_tridiagonal_all_singletons_merge(self):
        # Tridiagonal: parent chain with counts decreasing by one — the
        # whole matrix is one supernode structurally?  No: col j's
        # structure is {j, j+1}; col j+1's is {j+1, j+2}; counts equal (2)
        # so the merge condition count[j] == count[j+1]+1 fails except at
        # the end — supernodes are fine-grained.
        import scipy.sparse as sp

        t = sp.diags([np.ones(5), np.ones(6), np.ones(5)], [-1, 0, 1]).tocsc()
        pat, parent, counts = postordered_pipeline(SparseMatrixCSC.from_scipy(t))
        snptr = fundamental_supernodes(parent, counts)
        widths = np.diff(snptr)
        # last two columns share structure {4,5},{5}: one supernode of 2
        assert widths[-1] == 2

    def test_partition_covers_all_columns(self, grid2d_small):
        pat, parent, counts = postordered_pipeline(grid2d_small)
        snptr = fundamental_supernodes(parent, counts)
        assert snptr[0] == 0 and snptr[-1] == pat.n_cols
        assert np.all(np.diff(snptr) >= 1)

    def test_within_supernode_structure_nested(self, grid2d_small):
        """Columns of a supernode share their below-diagonal structure."""
        pat, parent, counts = postordered_pipeline(grid2d_small)
        snptr = fundamental_supernodes(parent, counts)
        L = np.linalg.cholesky(pat.to_dense())
        struct = np.abs(L) > 1e-14
        for s in range(snptr.size - 1):
            f, l = snptr[s], snptr[s + 1]
            base = np.flatnonzero(struct[:, f])
            base = base[base >= l]
            for j in range(f + 1, l):
                cols = np.flatnonzero(struct[:, j])
                cols = cols[cols >= l]
                assert np.array_equal(cols, base)


class TestRowSets:
    def test_sizes_match_counts(self, grid2d_small):
        pat, parent, counts = postordered_pipeline(grid2d_small)
        snptr = fundamental_supernodes(parent, counts)
        rowsets, parent_sn = supernode_row_sets(pat, snptr, counts)
        # the counts cross-check is built in; also verify directly
        for s in range(snptr.size - 1):
            w = snptr[s + 1] - snptr[s]
            assert rowsets[s].size == counts[snptr[s]] - w

    def test_rowsets_match_dense_factor(self, grid2d_small):
        pat, parent, counts = postordered_pipeline(grid2d_small)
        snptr = fundamental_supernodes(parent, counts)
        rowsets, _ = supernode_row_sets(pat, snptr, counts)
        L = np.linalg.cholesky(pat.to_dense())
        struct = np.abs(L) > 1e-14
        for s in range(snptr.size - 1):
            f, l = snptr[s], snptr[s + 1]
            ref = np.flatnonzero(struct[:, f])
            assert np.array_equal(rowsets[s], ref[ref >= l])

    def test_parent_snode_is_first_row_owner(self, grid2d_small):
        pat, parent, counts = postordered_pipeline(grid2d_small)
        snptr = fundamental_supernodes(parent, counts)
        rowsets, parent_sn = supernode_row_sets(pat, snptr, counts)
        col2sn = np.zeros(pat.n_cols, dtype=np.int64)
        for s in range(snptr.size - 1):
            col2sn[snptr[s]: snptr[s + 1]] = s
        for s in range(snptr.size - 1):
            if rowsets[s].size:
                assert parent_sn[s] == col2sn[rowsets[s][0]]
            else:
                assert parent_sn[s] == -1

    def test_detects_inconsistent_counts(self, grid2d_small):
        pat, parent, counts = postordered_pipeline(grid2d_small)
        snptr = fundamental_supernodes(parent, counts)
        bad = counts.copy()
        bad[snptr[0]] += 1
        with pytest.raises(AssertionError):
            supernode_row_sets(pat, snptr, bad)


class TestAmalgamation:
    def _pipeline(self, mat):
        pat, parent, counts = postordered_pipeline(mat)
        snptr = fundamental_supernodes(parent, counts)
        rowsets, parent_sn = supernode_row_sets(pat, snptr, counts)
        return pat, snptr, rowsets, parent_sn

    def test_zero_ratio_no_fill(self, grid2d_medium):
        pat, snptr, rowsets, psn = self._pipeline(grid2d_medium)
        before = snode_nnz(snptr, rowsets)
        s2, r2 = amalgamate(snptr, rowsets, psn, ratio=0.0)
        assert snode_nnz(s2, r2) == before
        assert s2.size <= snptr.size

    def test_budget_respected(self, grid2d_medium):
        pat, snptr, rowsets, psn = self._pipeline(grid2d_medium)
        exact = snode_nnz(snptr, rowsets)
        for ratio in (0.05, 0.12, 0.3):
            s2, r2 = amalgamate(snptr, rowsets, psn, ratio=ratio)
            assert snode_nnz(s2, r2) <= (1 + ratio) * exact + 1

    def test_more_budget_fewer_supernodes(self, grid2d_medium):
        pat, snptr, rowsets, psn = self._pipeline(grid2d_medium)
        sizes = []
        for ratio in (0.0, 0.1, 0.4):
            s2, _ = amalgamate(snptr, rowsets, psn, ratio=ratio)
            sizes.append(s2.size)
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_partition_stays_contiguous(self, grid2d_medium):
        pat, snptr, rowsets, psn = self._pipeline(grid2d_medium)
        s2, r2 = amalgamate(snptr, rowsets, psn, ratio=0.15)
        assert s2[0] == 0 and s2[-1] == pat.n_cols
        assert np.all(np.diff(s2) >= 1)

    def test_rowsets_stay_sorted_below(self, grid2d_medium):
        pat, snptr, rowsets, psn = self._pipeline(grid2d_medium)
        s2, r2 = amalgamate(snptr, rowsets, psn, ratio=0.15)
        for i in range(s2.size - 1):
            r = r2[i]
            assert np.all(np.diff(r) > 0)
            assert r.size == 0 or r[0] >= s2[i + 1]

    def test_max_width_cap(self, grid2d_medium):
        # The cap limits *merged* widths; fundamental supernodes that are
        # already wider pass through untouched.
        pat, snptr, rowsets, psn = self._pipeline(grid2d_medium)
        cap = 8
        fundamental_max = int(np.diff(snptr).max())
        s2, _ = amalgamate(snptr, rowsets, psn, ratio=1.0, max_width=cap)
        assert np.diff(s2).max() <= max(cap, fundamental_max)
        # And strictly fewer merges than the uncapped run.
        s_free, _ = amalgamate(snptr, rowsets, psn, ratio=1.0)
        assert s2.size >= s_free.size
