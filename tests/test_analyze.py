"""Analyze-phase integration tests."""

import numpy as np
import pytest

from repro.ordering.perm import Permutation
from repro.symbolic import SymbolicOptions, analyze
from repro.symbolic.etree import EliminationTree


class TestAnalyze:
    def test_basic(self, grid2d_small):
        res = analyze(grid2d_small)
        assert res.n == grid2d_small.n_rows
        assert res.symbol.n == res.n
        res.symbol.validate()

    def test_result_is_postordered(self, grid2d_small):
        res = analyze(grid2d_small)
        t = EliminationTree(res.parent, np.arange(res.n))
        assert t.is_postordered()

    def test_nnz_superset_of_exact(self, grid2d_medium):
        res = analyze(grid2d_medium)
        assert res.symbol.nnz() >= res.counts.sum()
        assert res.nnz_factor == res.symbol.nnz()

    def test_amalgamation_budget_end_to_end(self, grid2d_medium):
        exact = analyze(
            grid2d_medium,
            SymbolicOptions(amalgamation_ratio=None, split_max_width=None),
        ).symbol.nnz()
        for ratio in (0.05, 0.12):
            got = analyze(
                grid2d_medium,
                SymbolicOptions(amalgamation_ratio=ratio, split_max_width=None),
            ).symbol.nnz()
            assert exact <= got <= (1 + ratio) * exact + 1

    def test_natural_ordering(self, grid2d_small):
        res = analyze(grid2d_small, SymbolicOptions(ordering="natural"))
        res.symbol.validate()

    def test_explicit_permutation(self, grid2d_small):
        p = Permutation.random(grid2d_small.n_rows, seed=5)
        res = analyze(grid2d_small, SymbolicOptions(ordering=p))
        res.symbol.validate()

    def test_nd_beats_natural_on_grid(self, grid2d_medium):
        opts = dict(amalgamation_ratio=None, split_max_width=None)
        nd = analyze(grid2d_medium, SymbolicOptions(ordering="nd", **opts))
        nat = analyze(grid2d_medium, SymbolicOptions(ordering="natural", **opts))
        assert nd.symbol.nnz() < nat.symbol.nnz()

    def test_rejects_unknown_ordering(self, grid2d_small):
        with pytest.raises(ValueError):
            analyze(grid2d_small, SymbolicOptions(ordering="metis"))

    def test_rejects_rectangular(self):
        from repro.sparse.csc import coo_to_csc

        with pytest.raises(ValueError):
            analyze(coo_to_csc(2, 3, [0], [0], [1.0]))

    def test_complex_pattern(self, helmholtz_small):
        res = analyze(helmholtz_small)
        res.symbol.validate()

    def test_permutation_is_consistent(self, grid2d_small):
        """perm maps the original matrix onto the analyzed pattern."""
        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        a = permuted.symmetrize_pattern().with_full_diagonal()
        assert a.nnz == res.pattern.nnz
        assert np.array_equal(a.rowind, res.pattern.rowind)
        assert np.array_equal(a.colptr, res.pattern.colptr)


from hypothesis import given, settings, strategies as st


@settings(max_examples=15, deadline=None)
@given(n=st.integers(8, 40), seed=st.integers(0, 5000))
def test_property_symbolic_superset_of_exact_fill(n, seed):
    """The block symbolic structure always covers the true fill pattern."""
    from tests.conftest import random_spd_dense, permutation_matrix
    from repro.sparse.csc import SparseMatrixCSC

    d = random_spd_dense(n, 0.3, seed)
    m = SparseMatrixCSC.from_dense(d)
    res = analyze(m)
    P = permutation_matrix(res.perm.perm)
    L = np.linalg.cholesky(P @ d @ P.T)
    actual = set(zip(*np.nonzero(np.abs(L) > 1e-13)))
    sym = res.symbol
    covered = set()
    for k in range(sym.n_cblk):
        f, l = int(sym.cblk_ptr[k]), int(sym.cblk_ptr[k + 1])
        for r in sym.cblk_rows(k):
            for c in range(f, min(l, r + 1)):
                covered.add((int(r), c))
    assert actual <= covered
