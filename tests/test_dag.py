"""Task DAG tests."""

import numpy as np
import pytest

from repro.core.factorization import facing_cblks
from repro.dag import (
    build_dag,
    critical_path,
    dag_summary,
    parallelism_profile,
    to_dot,
    update_couples,
)
from repro.dag.tasks import TaskDAG, TaskKind
from repro.symbolic import SymbolicOptions, analyze


@pytest.fixture(scope="module")
def sym(grid2d_medium):
    return analyze(grid2d_medium).symbol


class TestUpdateCouples:
    def test_couples_match_facing(self, sym):
        src, tgt, m, n = update_couples(sym)
        by_src = {}
        for s, t in zip(src.tolist(), tgt.tolist()):
            by_src.setdefault(s, []).append(t)
        for k in range(sym.n_cblk):
            assert by_src.get(k, []) == [int(x) for x in facing_cblks(sym, k)]

    def test_dims_positive_and_bounded(self, sym):
        src, tgt, m, n = update_couples(sym)
        assert np.all(m >= n)
        assert np.all(n >= 1)
        widths = np.diff(sym.cblk_ptr)
        for i in range(src.size):
            assert n[i] <= widths[tgt[i]]

    def test_targets_above_sources(self, sym):
        src, tgt, _, _ = update_couples(sym)
        assert np.all(tgt > src)


class TestBuild2D:
    def test_structure(self, sym):
        dag = build_dag(sym, "llt", granularity="2d")
        dag.validate()
        n_upd = update_couples(sym)[0].size
        assert dag.n_tasks == sym.n_cblk + n_upd
        assert dag.n_edges == 2 * n_upd

    def test_panel_task_deps_are_updates(self, sym):
        dag = build_dag(sym, "llt")
        # Every panel's in-degree equals the number of couples targeting it.
        _, tgt, _, _ = update_couples(sym)
        expect = np.bincount(tgt, minlength=sym.n_cblk)
        assert np.array_equal(dag.n_deps[: sym.n_cblk], expect)

    def test_update_deps_is_one(self, sym):
        dag = build_dag(sym, "llt")
        assert np.all(dag.n_deps[sym.n_cblk:] == 1)

    def test_mutex_groups(self, sym):
        dag = build_dag(sym, "llt")
        upd = dag.kind == TaskKind.UPDATE
        assert np.array_equal(dag.mutex[upd], dag.target[upd])
        assert np.all(dag.mutex[~upd] == -1)

    def test_sources_are_leaf_panels(self, sym):
        dag = build_dag(sym, "llt")
        srcs = dag.sources()
        assert np.all(dag.kind[srcs] != TaskKind.UPDATE)

    def test_topological_order_valid(self, sym):
        dag = build_dag(sym, "llt")
        order = dag.topological_order()
        pos = np.empty(dag.n_tasks, dtype=np.int64)
        pos[order] = np.arange(dag.n_tasks)
        for t in range(dag.n_tasks):
            for s in dag.successors(t):
                assert pos[t] < pos[s]


class TestBuild1D:
    def test_structure(self, sym):
        dag = build_dag(sym, "llt", granularity="1d")
        dag.validate()
        assert dag.n_tasks == sym.n_cblk
        assert np.all(dag.kind == TaskKind.PANEL1D)

    def test_flops_match_2d(self, sym):
        d1 = build_dag(sym, "llt", granularity="1d")
        d2 = build_dag(sym, "llt", granularity="2d")
        assert d1.total_flops() == pytest.approx(d2.total_flops())

    def test_critical_path_longer_than_2d(self, sym):
        d1 = build_dag(sym, "llt", granularity="1d")
        d2 = build_dag(sym, "llt", granularity="2d")
        cp1, _ = critical_path(d1)
        cp2, _ = critical_path(d2)
        assert cp1 >= cp2

    def test_bad_granularity(self, sym):
        with pytest.raises(ValueError):
            build_dag(sym, "llt", granularity="3d")


class TestAnalysis:
    def test_critical_path_on_chain(self):
        # Hand-built chain DAG: 3 tasks with flops 1,2,3.
        kind = np.zeros(3, dtype=np.int8)
        idx = np.arange(3, dtype=np.int64)
        dag = TaskDAG(
            kind, idx, idx, np.array([1.0, 2.0, 3.0]),
            np.zeros(3, np.int64), np.zeros(3, np.int64), np.zeros(3, np.int64),
            np.array([0, 1, 2, 2], dtype=np.int64), np.array([1, 2], dtype=np.int64),
            np.full(3, -1, dtype=np.int64), "2d",
        )
        length, path = critical_path(dag)
        assert length == 6.0
        assert np.array_equal(path, [0, 1, 2])

    def test_cycle_raises(self):
        kind = np.zeros(2, dtype=np.int8)
        idx = np.arange(2, dtype=np.int64)
        dag = TaskDAG(
            kind, idx, idx, np.ones(2),
            np.zeros(2, np.int64), np.zeros(2, np.int64), np.zeros(2, np.int64),
            np.array([0, 1, 2], dtype=np.int64), np.array([1, 0], dtype=np.int64),
            np.full(2, -1, dtype=np.int64), "2d",
        )
        with pytest.raises(ValueError):
            dag.topological_order()

    def test_summary(self, sym):
        dag = build_dag(sym, "llt")
        s = dag_summary(dag)
        assert s.n_tasks == dag.n_tasks
        assert s.n_panel + s.n_update == s.n_tasks
        assert s.avg_parallelism >= 1.0
        assert s.critical_path_flops <= s.total_flops

    def test_parallelism_profile_sums_to_tasks(self, sym):
        dag = build_dag(sym, "llt")
        assert parallelism_profile(dag).sum() == dag.n_tasks

    def test_dot_export(self, grid2d_small):
        small = analyze(grid2d_small).symbol
        dag = build_dag(small, "llt")
        if dag.n_tasks <= 500:
            dot = to_dot(dag)
            assert dot.startswith("digraph")
            assert dot.count("->") == dag.n_edges

    def test_dot_rejects_large(self, sym):
        dag = build_dag(sym, "llt")
        if dag.n_tasks > 50:
            with pytest.raises(ValueError):
                to_dot(dag, max_tasks=50)

    def test_task_view(self, sym):
        dag = build_dag(sym, "llt")
        t = dag.task(sym.n_cblk)  # first update task
        assert t.is_update
        assert t.flops > 0
