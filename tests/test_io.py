"""Matrix Market I/O tests."""

import io

import numpy as np
import pytest

from repro.sparse.csc import SparseMatrixCSC, coo_to_csc
from repro.sparse.io import read_matrix_market, write_matrix_market


def _roundtrip(mat):
    buf = io.StringIO()
    write_matrix_market(mat, buf, comment="test")
    buf.seek(0)
    return read_matrix_market(buf)


class TestRoundtrip:
    def test_real(self):
        rng = np.random.default_rng(0)
        d = rng.standard_normal((6, 5)) * (rng.random((6, 5)) < 0.5)
        m = SparseMatrixCSC.from_dense(d)
        assert np.allclose(_roundtrip(m).to_dense(), d)

    def test_complex(self):
        d = np.array([[1 + 2j, 0], [0, -3j]])
        m = SparseMatrixCSC.from_dense(d)
        assert np.allclose(_roundtrip(m).to_dense(), d)

    def test_pattern(self):
        m = coo_to_csc(3, 3, [0, 2], [1, 2])
        back = _roundtrip(m)
        assert back.is_pattern
        assert np.array_equal(back.rowind, m.rowind)

    def test_empty(self):
        m = coo_to_csc(3, 3, [], [])
        assert _roundtrip(m).nnz == 0


class TestParsing:
    def test_symmetric_expansion(self):
        text = """%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.0
2 1 1.5
3 3 4.0
"""
        m = read_matrix_market(io.StringIO(text))
        d = m.to_dense()
        assert d[1, 0] == d[0, 1] == 1.5
        assert m.nnz == 4  # diagonal entries not duplicated

    def test_skew_symmetric(self):
        text = """%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
"""
        d = read_matrix_market(io.StringIO(text)).to_dense()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0

    def test_hermitian(self):
        text = """%%MatrixMarket matrix coordinate complex hermitian
2 2 2
1 1 1.0 0.0
2 1 2.0 1.0
"""
        d = read_matrix_market(io.StringIO(text)).to_dense()
        assert d[1, 0] == 2 + 1j and d[0, 1] == 2 - 1j

    def test_comments_skipped(self):
        text = """%%MatrixMarket matrix coordinate real general
% a comment
% another
2 2 1
1 1 5.0
"""
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 0] == 5.0

    def test_rejects_array_format(self):
        text = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"
        with pytest.raises(ValueError, match="unsupported"):
            read_matrix_market(io.StringIO(text))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a MatrixMarket"):
            read_matrix_market(io.StringIO("hello world\n"))

    def test_rejects_wrong_count(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 5.0\n"
        with pytest.raises(ValueError, match="expected 3"):
            read_matrix_market(io.StringIO(text))

    def test_file_paths(self, tmp_path):
        m = SparseMatrixCSC.identity(4)
        path = tmp_path / "m.mtx"
        write_matrix_market(m, path)
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), np.eye(4))


class TestPropertyRoundtrip:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 15), seed=st.integers(0, 5000),
           complex_=st.booleans())
    def test_random_roundtrip(self, n, seed, complex_):
        import numpy as np

        rng = np.random.default_rng(seed)
        d = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.4)
        if complex_:
            d = d + 1j * rng.standard_normal((n, n)) * (d != 0)
        m = SparseMatrixCSC.from_dense(d)
        assert np.allclose(_roundtrip(m).to_dense(), d)
