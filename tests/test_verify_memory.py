"""M4xx memory-auditor tests.

Clean simulator traces must audit clean; each seeded corruption (a
dropped transfer, an inflated residency, a redundant re-send) must be
flagged with the offending task/panel pair; and the replay must stay
fast on a 10k+-task trace (the auditor runs inside benchmark sweeps).
"""

import time

import numpy as np
import pytest

from repro.dag import build_dag
from repro.kernels.cost import panel_bytes
from repro.machine import mirage, simulate
from repro.runtime import get_policy
from repro.runtime.tracing import ExecutionTrace
from repro.sparse.generators import grid_laplacian_2d
from repro.symbolic import SymbolicOptions, analyze
from repro.symbolic.structures import build_symbol
from repro.verify import drop_transfer, overflow_residency, verify_memory
from repro.verify.report import ERROR


def codes(rep):
    return [f.code for f in rep.findings]


def error_codes(rep):
    return [f.code for f in rep.findings if f.severity == ERROR]


# ----------------------------------------------------------------------
# Simulator-produced traces (end-to-end).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def offloaded():
    """A (dag, trace, machine) triple whose schedule really uses a GPU."""
    matrix = grid_laplacian_2d(32, jitter=0.05, seed=0)
    res = analyze(matrix, SymbolicOptions(split_max_width=32))
    # The default threshold keeps this size CPU-only; force offload so
    # the trace carries transfers worth auditing.
    pol = get_policy("parsec", gpu_flops_threshold=1e3)
    dag = build_dag(res.symbol, "llt", granularity=pol.traits.granularity,
                    recompute_ld=pol.traits.recompute_ld)
    machine = mirage(n_cores=4, n_gpus=1, streams_per_gpu=2)
    r = simulate(dag, machine, pol)
    assert any(e.kind == "h2d" for e in r.trace.data_events)
    return dag, r.trace, machine, r


def test_clean_trace_audits_clean(offloaded):
    dag, trace, machine, _ = offloaded
    rep = verify_memory(dag, trace, machine)
    assert rep.ok, rep.format()
    assert rep.stats["h2d_transfers"] > 0
    assert rep.stats["bytes_h2d"] >= rep.stats["h2d_lower_bound"]


def test_auditor_agrees_with_simulator_counters(offloaded):
    dag, trace, machine, r = offloaded
    rep = verify_memory(dag, trace, machine)
    assert rep.stats["bytes_h2d"] == pytest.approx(r.bytes_h2d)
    assert rep.stats["bytes_d2h"] == pytest.approx(r.bytes_d2h)
    assert rep.stats["peak_gpu_bytes"] == pytest.approx(r.peak_gpu_bytes)


def test_cpu_only_trace_is_trivially_clean(offloaded):
    dag, _, _, _ = offloaded
    machine = mirage(n_cores=4, n_gpus=0)
    r = simulate(dag, machine, get_policy("parsec"))
    assert not r.trace.data_events
    rep = verify_memory(dag, r.trace, machine)
    assert rep.ok, rep.format()


def test_drop_transfer_caught_with_task_and_panel(offloaded):
    dag, trace, machine, _ = offloaded
    bad = drop_transfer(trace, dag)
    assert len(bad.data_events) == len(trace.data_events) - 1
    rep = verify_memory(dag, bad, machine)
    assert not rep.ok
    m401 = [f for f in rep.findings if f.code == "M401"]
    assert m401, rep.format()
    # The finding names a concrete task and the missing panel.
    assert m401[0].tasks and "panel" in m401[0].message


def test_overflow_residency_caught_with_gpu_and_panel(offloaded):
    dag, trace, machine, _ = offloaded
    bad = overflow_residency(trace, machine)
    rep = verify_memory(dag, bad, machine)
    assert "M402" in error_codes(rep), rep.format()
    m402 = next(f for f in rep.findings if f.code == "M402")
    assert "gpu" in m402.message and "panel" in m402.message


def test_injections_refuse_transferless_traces(offloaded):
    dag, _, machine, _ = offloaded
    empty = ExecutionTrace()
    with pytest.raises(ValueError):
        drop_transfer(empty, dag)
    with pytest.raises(ValueError):
        overflow_residency(empty, machine)


def test_redundant_transfer_caught(offloaded):
    dag, trace, machine, _ = offloaded
    ev = next(e for e in trace.sorted_data_events() if e.kind == "h2d")
    bad = ExecutionTrace(events=list(trace.events))
    for e in trace.data_events:
        bad.record_data(e.kind, e.cblk, e.gpu, e.nbytes, e.start, e.end,
                        e.reason)
    # Re-send the same panel the instant its first copy lands: the
    # replay sees a valid copy resident and must count the waste.
    bad.record_data("h2d", ev.cblk, ev.gpu, ev.nbytes, ev.end, ev.end)
    rep = verify_memory(dag, bad, machine)
    assert "M403" in codes(rep), rep.format()
    assert rep.stats["redundant_bytes"] == pytest.approx(ev.nbytes)


def test_missing_total_traffic_caught(offloaded):
    """Deleting every h2d transfer trips the M404 traffic lower bound."""
    dag, trace, machine, _ = offloaded
    bad = ExecutionTrace(events=list(trace.events))
    for e in trace.data_events:
        if e.kind == "h2d":
            continue
        bad.record_data(e.kind, e.cblk, e.gpu, e.nbytes, e.start, e.end,
                        e.reason)
    rep = verify_memory(dag, bad, machine)
    found = error_codes(rep)
    assert "M404" in found and "M401" in found, rep.format()
    assert rep.stats["bytes_h2d"] == 0.0
    assert rep.stats["h2d_lower_bound"] > 0


def test_size_mismatch_is_warning_only(offloaded):
    dag, trace, machine, _ = offloaded
    ev = next(e for e in trace.sorted_data_events() if e.kind == "h2d")
    bad = ExecutionTrace(events=list(trace.events))
    for e in trace.data_events:
        nbytes = e.nbytes + 64.0 if e is ev else e.nbytes
        bad.record_data(e.kind, e.cblk, e.gpu, nbytes, e.start, e.end,
                        e.reason)
    rep = verify_memory(dag, bad, machine)
    assert "M405" in codes(rep)
    assert "M405" not in error_codes(rep)
    assert rep.ok  # warnings never gate


# ----------------------------------------------------------------------
# Scale: a 10k+-task trace audits in well under five seconds.
# ----------------------------------------------------------------------
def banded_symbol(n_cblk, width=8, band=3):
    snptr = np.arange(n_cblk + 1, dtype=np.int64) * width
    n = int(snptr[-1])
    rowsets = [
        np.arange(snptr[k + 1], snptr[min(k + 1 + band, n_cblk)],
                  dtype=np.int64)
        for k in range(n_cblk)
    ]
    return build_symbol(n, snptr, rowsets)


def synthetic_gpu_trace(dag, machine):
    """A hand-built trace running every update on gpu0, panels on cpu0.

    Not a feasible *schedule* (dependencies run backwards), but a
    memory-coherent event stream: every panel an update touches is
    fetched before the kernel starts, so the M4xx replay must come out
    clean.  Returns the trace.
    """
    from repro.dag.tasks import TaskKind

    pbytes = panel_bytes(dag.symbol, np.float64, dag.factotype)
    trace = ExecutionTrace()
    t = 0.0
    updates = []
    for task in range(dag.n_tasks):
        if int(dag.kind[task]) == TaskKind.UPDATE:
            updates.append(task)
        else:
            trace.record(task, "cpu0", t, t + 0.5)
            t += 1.0
    on_gpu: set[int] = set()
    for task in updates:
        for c in (int(dag.cblk[task]), int(dag.target[task])):
            if c not in on_gpu:
                trace.record_data("h2d", c, 0, float(pbytes[c]), t, t + 0.1)
                t += 0.1
                on_gpu.add(c)
        trace.record(task, "gpu0", t, t + 0.5)
        t += 1.0
    return trace


def test_memory_auditor_scales_to_10k_tasks():
    sym = banded_symbol(2700)
    dag = build_dag(sym, "llt")
    assert dag.n_tasks >= 10_000
    machine = mirage(n_cores=4, n_gpus=1)
    trace = synthetic_gpu_trace(dag, machine)

    t0 = time.perf_counter()
    rep = verify_memory(dag, trace, machine)
    clean_elapsed = time.perf_counter() - t0
    assert rep.ok, rep.format()

    # Seed a redundant re-send AND a residency overflow in one trace.
    ev = next(e for e in trace.sorted_data_events() if e.kind == "h2d")
    bad = ExecutionTrace(events=list(trace.events))
    for e in trace.data_events:
        bad.record_data(e.kind, e.cblk, e.gpu, e.nbytes, e.start, e.end,
                        e.reason)
    bad.record_data("h2d", ev.cblk, ev.gpu, ev.nbytes, ev.end, ev.end)
    bad = overflow_residency(bad, machine)

    t0 = time.perf_counter()
    rep = verify_memory(dag, bad, machine)
    elapsed = time.perf_counter() - t0
    found = error_codes(rep)
    assert "M403" in found and "M402" in found, rep.format()
    assert clean_elapsed + elapsed < 5.0, (
        f"audit took {clean_elapsed:.2f}s + {elapsed:.2f}s"
    )
