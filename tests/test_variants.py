"""Left-looking variant, 1d-left DAG, and static-pivot perturbation."""

import numpy as np
import pytest

from repro.core.factorization import (
    contributing_cblks,
    facing_cblks,
    factorize_sequential,
)
from repro.core.refinement import iterative_refinement
from repro.core.triangular import solve_factored
from repro.dag import build_dag, critical_path
from repro.kernels.dense import PivotMonitor, getrf_nopiv, ldlt_nopiv
from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic import analyze


class TestLeftLooking:
    @pytest.mark.parametrize("factotype", ["llt", "ldlt", "lu"])
    def test_matches_right_looking(self, grid2d_medium, factotype):
        res = analyze(grid2d_medium)
        permuted = grid2d_medium.permute(res.perm.perm)
        right = factorize_sequential(res.symbol, permuted, factotype)
        left = factorize_sequential(
            res.symbol, permuted, factotype, variant="left"
        )
        for a, b in zip(right.L, left.L):
            assert np.allclose(a, b, atol=1e-10)

    def test_contributing_is_inverse_of_facing(self, grid2d_medium):
        sym = analyze(grid2d_medium).symbol
        for k in range(sym.n_cblk):
            for t in facing_cblks(sym, k):
                assert k in contributing_cblks(sym, int(t))
        for t in range(sym.n_cblk):
            for k in contributing_cblks(sym, t):
                assert t in facing_cblks(sym, int(k))

    def test_unknown_variant(self, grid2d_small):
        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        with pytest.raises(ValueError):
            factorize_sequential(res.symbol, permuted, "llt", variant="up")


class TestLeftDag:
    def test_same_edges_different_weights(self, grid2d_medium):
        sym = analyze(grid2d_medium).symbol
        right = build_dag(sym, "llt", granularity="1d")
        left = build_dag(sym, "llt", granularity="1d-left")
        left.validate()
        assert np.array_equal(right.succ_list, left.succ_list)
        assert right.total_flops() == pytest.approx(left.total_flops())
        assert not np.allclose(right.flops, left.flops)

    def test_left_concentrates_work_up_the_tree(self, grid2d_medium):
        """Left-looking charges updates to their targets, so its critical
        path (through the top of the tree) is at least as long."""
        sym = analyze(grid2d_medium).symbol
        cp_right, _ = critical_path(build_dag(sym, "llt", granularity="1d"))
        cp_left, _ = critical_path(build_dag(sym, "llt", granularity="1d-left"))
        assert cp_left >= cp_right

    def test_components_recorded_for_both(self, grid2d_small):
        sym = analyze(grid2d_small).symbol
        for g in ("1d", "1d-left"):
            dag = build_dag(sym, "llt", granularity=g)
            assert len(dag.fused_components) == dag.n_tasks
            total_updates = sum(
                1 for comps in dag.fused_components.values()
                for c in comps if c[0] == "update"
            )
            from repro.dag import update_couples

            assert total_updates == update_couples(sym)[0].size

    def test_simulates(self, grid2d_small):
        from repro.machine import mirage, simulate
        from repro.runtime import get_policy

        sym = analyze(grid2d_small).symbol
        dag = build_dag(sym, "llt", granularity="1d-left")
        r = simulate(dag, mirage(n_cores=4), get_policy("native"))
        r.trace.validate(dag)


class TestPivotPerturbation:
    def test_monitor_counts(self):
        mon = PivotMonitor(1e-8)
        a = np.diag([1.0, 1e-12, 2.0])
        lu = getrf_nopiv(a, mon)
        assert mon.n_perturbed == 1
        assert abs(lu[1, 1]) == pytest.approx(1e-8)

    def test_zero_pivot_perturbed(self):
        mon = PivotMonitor(1e-6)
        a = np.array([[0.0, 1.0], [1.0, 1.0]])
        lu = getrf_nopiv(a, mon)
        assert mon.n_perturbed == 1
        assert lu[0, 0] == pytest.approx(1e-6)

    def test_strict_mode_still_raises(self):
        with pytest.raises(ZeroDivisionError):
            ldlt_nopiv(np.zeros((2, 2)))

    def test_sign_preserved(self):
        mon = PivotMonitor(1e-4)
        a = np.diag([-1e-9, 1.0])
        L, d = ldlt_nopiv(a, mon)
        assert d[0] == pytest.approx(-1e-4)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            PivotMonitor(-1.0)

    def test_refinement_recovers_perturbed_solve(self, grid2d_small):
        """Perturb a nearly-singular pivot, then refine back to accuracy:
        the full static-pivoting workflow."""
        dense = grid2d_small.to_dense().copy()
        n = dense.shape[0]
        dense[0, 0] = 1e-13  # break a pivot
        # keep SPD-ish dominance elsewhere; use LU path
        mat = SparseMatrixCSC.from_dense(dense)
        res = analyze(mat)
        permuted = mat.permute(res.perm.perm)
        factor = factorize_sequential(
            res.symbol, permuted, "lu", pivot_threshold=1e-8
        )
        rng = np.random.default_rng(0)
        b = rng.standard_normal(n)

        def solve(v):
            pv = res.perm.apply_to_vector(v)
            return res.perm.undo_on_vector(solve_factored(factor, pv))

        result = iterative_refinement(mat, solve, b, tol=1e-9, max_iter=30)
        assert result.residual_norm < 1e-6
