"""NumericFactor storage tests (allocation, assembly, export)."""

import numpy as np
import pytest

from repro.core.factor import NumericFactor
from repro.symbolic import analyze


def scatter_back(factor, sym, *, upper_from_u: bool = False) -> np.ndarray:
    """Rebuild the dense matrix from the assembled (unfactorized) panels."""
    n = sym.n
    out = np.zeros((n, n), dtype=factor.dtype)
    for k in range(sym.n_cblk):
        f, l = int(sym.cblk_ptr[k]), int(sym.cblk_ptr[k + 1])
        rows = factor.rows[k]
        out[np.ix_(rows, np.arange(f, l))] += factor.L[k]
        if upper_from_u:
            w = l - f
            below = rows[w:]
            if below.size:
                out[np.ix_(np.arange(f, l), below)] += factor.U[k][w:, :].T
    return out


class TestAllocate:
    def test_shapes(self, grid2d_small):
        res = analyze(grid2d_small)
        f = NumericFactor.allocate(res.symbol, "llt")
        for k in range(res.symbol.n_cblk):
            assert f.L[k].shape == (
                res.symbol.cblk_height(k),
                res.symbol.cblk_width(k),
            )
        assert f.U is None and f.D is None

    def test_lu_allocates_u(self, grid2d_small):
        res = analyze(grid2d_small)
        f = NumericFactor.allocate(res.symbol, "lu")
        assert f.U is not None
        assert all(u.shape == l.shape for u, l in zip(f.U, f.L))

    def test_ldlt_allocates_d(self, grid2d_small):
        res = analyze(grid2d_small)
        f = NumericFactor.allocate(res.symbol, "ldlt")
        assert f.D is not None
        assert sum(d.size for d in f.D) == res.n

    def test_bad_factotype(self, grid2d_small):
        res = analyze(grid2d_small)
        with pytest.raises(ValueError):
            NumericFactor.allocate(res.symbol, "qr")

    def test_nbytes_positive(self, grid2d_small):
        res = analyze(grid2d_small)
        f = NumericFactor.allocate(res.symbol, "lu", np.complex128)
        assert f.nbytes() > 16 * res.symbol.nnz()


class TestAssemble:
    def test_lower_scatter_exact(self, grid2d_small):
        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        f = NumericFactor.assemble(res.symbol, permuted, "llt")
        rebuilt = scatter_back(f, res.symbol)
        dense = permuted.to_dense()
        assert np.allclose(np.tril(rebuilt), np.tril(dense))

    def test_lu_scatter_exact(self, grid2d_small):
        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        f = NumericFactor.assemble(res.symbol, permuted, "lu")
        rebuilt = scatter_back(f, res.symbol, upper_from_u=True)
        assert np.allclose(rebuilt, permuted.to_dense())

    def test_complex_assembly(self, helmholtz_small):
        res = analyze(helmholtz_small)
        permuted = helmholtz_small.permute(res.perm.perm)
        f = NumericFactor.assemble(res.symbol, permuted, "ldlt")
        assert f.dtype == np.complex128
        rebuilt = scatter_back(f, res.symbol)
        assert np.allclose(np.tril(rebuilt), np.tril(permuted.to_dense()))

    def test_rejects_pattern_matrix(self, grid2d_small):
        res = analyze(grid2d_small)
        with pytest.raises(ValueError):
            NumericFactor.assemble(res.symbol, res.pattern, "llt")

    def test_rejects_size_mismatch(self, grid2d_small, grid3d_small):
        res = analyze(grid2d_small)
        with pytest.raises(ValueError):
            NumericFactor.assemble(res.symbol, grid3d_small, "llt")

    def test_copy_is_deep(self, grid2d_small):
        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        f = NumericFactor.assemble(res.symbol, permuted, "llt")
        g = f.copy()
        g.L[0][0, 0] += 1.0
        assert f.L[0][0, 0] != g.L[0][0, 0]


def assemble_reference(symbol, matrix, factotype):
    """The historical per-entry scatter loop (one searchsorted per
    value), kept verbatim as the oracle for the vectorized assemble."""
    factor = NumericFactor.allocate(symbol, factotype, matrix.values.dtype)
    col2cblk = symbol.col2cblk
    cblk_ptr = symbol.cblk_ptr
    rows_all, cols_all, vals_all = matrix.to_coo()
    for r, c, v in zip(rows_all, cols_all, vals_all):
        k = int(col2cblk[c])
        if r >= cblk_ptr[k]:  # lower-and-diagonal entry
            rloc = int(np.searchsorted(factor.rows[k], r))
            factor.L[k][rloc, c - cblk_ptr[k]] = v
        elif factotype == "lu":  # strict upper: U panel of the row owner
            t = int(col2cblk[r])
            rloc = int(np.searchsorted(factor.rows[t], c))
            factor.U[t][rloc, r - cblk_ptr[t]] = v
    return factor


class TestAssembleVectorized:
    """The grouped fancy-index assemble must be bitwise equal to the
    per-entry searchsorted loop it replaced."""

    @pytest.mark.parametrize("factotype", ["llt", "lu"])
    def test_matches_reference(self, grid2d_small, factotype):
        res = analyze(grid2d_small)
        permuted = grid2d_small.permute(res.perm.perm)
        fast = NumericFactor.assemble(res.symbol, permuted, factotype)
        ref = assemble_reference(res.symbol, permuted, factotype)
        for a, b in zip(ref.L, fast.L):
            assert np.array_equal(a, b)
        if factotype == "lu":
            for a, b in zip(ref.U, fast.U):
                assert np.array_equal(a, b)

    def test_matches_reference_complex(self, helmholtz_small):
        res = analyze(helmholtz_small)
        permuted = helmholtz_small.permute(res.perm.perm)
        fast = NumericFactor.assemble(res.symbol, permuted, "ldlt")
        ref = assemble_reference(res.symbol, permuted, "ldlt")
        assert fast.dtype == ref.dtype == np.complex128
        for a, b in zip(ref.L, fast.L):
            assert np.array_equal(a, b)

    def test_matches_reference_unsymmetric_values(self, grid2d_medium):
        """LU with values that differ across the diagonal (Aᵀ ≠ A)."""
        res = analyze(grid2d_medium)
        permuted = grid2d_medium.permute(res.perm.perm)
        rng = np.random.default_rng(11)
        permuted.values[:] = permuted.values + 0.25 * rng.standard_normal(
            permuted.values.shape
        )
        fast = NumericFactor.assemble(res.symbol, permuted, "lu")
        ref = assemble_reference(res.symbol, permuted, "lu")
        for a, b in zip(ref.L, fast.L):
            assert np.array_equal(a, b)
        for a, b in zip(ref.U, fast.U):
            assert np.array_equal(a, b)
