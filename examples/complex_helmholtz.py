"""Complex-symmetric systems: LDLᵀ and LU on a Helmholtz-like problem.

The paper's FilterV2 and pmlDF matrices are double-complex; PaStiX
factors them with LDLᵀ (complex *symmetric*, plain transposes — not a
Hermitian factorization) or LU under static pivoting.  This example
solves a PML-damped frequency-domain problem both ways and compares
factor sizes and flops.

    python examples/complex_helmholtz.py [grid_size]
"""

import sys

import numpy as np

from repro import SolverOptions, SparseSolver
from repro.sparse import helmholtz_like_2d


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    A = helmholtz_like_2d(nx, seed=3)
    print(f"complex Helmholtz: n = {A.n_rows}, nnz = {A.nnz}, "
          f"dtype = {A.dtype}")

    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.n_rows) + 1j * rng.standard_normal(A.n_rows)

    for factotype in ("ldlt", "lu"):
        solver = SparseSolver(A, SolverOptions(factotype=factotype))
        info = solver.factorize()
        x = solver.solve(b)
        print(
            f"{factotype:>5}: nnz = {info.nnz_factor:>9}, "
            f"flops = {info.flops / 1e9:6.2f} GFlop (complex x4), "
            f"residual = {solver.residual_norm(x, b):.2e}"
        )

    # LDLᵀ stores one triangle: about half the memory of LU.
    ldlt = SparseSolver(A, SolverOptions(factotype="ldlt"))
    lu = SparseSolver(A, SolverOptions(factotype="lu"))
    ldlt.factorize()
    lu.factorize()
    ratio = lu.factor.nbytes() / ldlt.factor.nbytes()
    print(f"LU factor storage / LDLT factor storage = {ratio:.2f}x")


if __name__ == "__main__":
    main()
