"""Real parallel factorization on a thread pool.

Unlike the other examples (which *simulate* scheduling on a modelled
machine), this one executes the factorization DAG for real: worker
threads pull ready tasks and call the NumPy/BLAS kernels, which release
the GIL, so panels genuinely factor in parallel.  The result is checked
against the sequential driver and used to solve a system.

    python examples/threaded_factorization.py [grid] [workers]
"""

import sys
import time

import numpy as np

from repro.core.factorization import factorize_sequential
from repro.core.triangular import solve_factored
from repro.runtime.threaded import factorize_threaded
from repro.runtime.tracing import ExecutionTrace
from repro.sparse import grid_laplacian_3d
from repro.symbolic import SymbolicOptions, analyze


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    A = grid_laplacian_3d(nx, jitter=0.05, seed=1)
    print(f"3D Poisson, n = {A.n_rows}")
    res = analyze(A, SymbolicOptions(split_max_width=96))
    permuted = A.permute(res.perm.perm)

    t0 = time.perf_counter()
    ref = factorize_sequential(res.symbol, permuted, "llt")
    t_seq = time.perf_counter() - t0
    print(f"sequential factorization: {t_seq:.2f} s")

    trace = ExecutionTrace()
    t0 = time.perf_counter()
    par = factorize_threaded(
        res.symbol, permuted, "llt", n_workers=workers, trace=trace
    )
    t_par = time.perf_counter() - t0
    print(f"threaded ({workers} workers): {t_par:.2f} s "
          f"(speedup {t_seq / t_par:.2f}x)")

    worst = max(
        float(np.max(np.abs(a - b))) if a.size else 0.0
        for a, b in zip(ref.L, par.L)
    )
    print(f"max |L_seq - L_par| = {worst:.2e}")

    b = np.ones(A.n_rows)
    x = res.perm.undo_on_vector(
        solve_factored(par, res.perm.apply_to_vector(b))
    )
    resid = np.linalg.norm(b - A.matvec(x)) / np.linalg.norm(b)
    print(f"residual of threaded factor solve: {resid:.2e}")

    print(f"\nthread schedule ({len(trace.events)} tasks):")
    print(trace.gantt(width=80))


if __name__ == "__main__":
    main()
