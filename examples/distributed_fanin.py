"""Distributed factorization with fan-in accumulation (paper §VI).

Simulates the factorization of a collection analogue on a cluster of
twelve-core nodes, comparing the fan-in communication scheme (one
accumulated buffer per remote supernode) against naive per-update
messages, across network latencies — the bandwidth-for-latency trade
the paper's future-work section describes.

    python examples/distributed_fanin.py [matrix] [scale]
"""

import sys

from repro.distributed import ClusterSpec, map_cblks, simulate_distributed
from repro.sparse.collection import MATRIX_COLLECTION, load_matrix
from repro.symbolic import SymbolicOptions, analyze


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Geo1438"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.8
    info = MATRIX_COLLECTION[name]
    ft = info.method.lower()
    matrix = load_matrix(name, scale=scale)
    res = analyze(matrix, SymbolicOptions(split_max_width=96))
    sym = res.symbol
    print(f"{name} analogue: n = {matrix.n_rows}, "
          f"{sym.n_cblk} panels, {info.method}\n")

    print("strong scaling (fan-in, subtree mapping):")
    print(f"{'nodes':>6} | {'GF/s':>7} | {'msgs':>6} | {'MB':>7} | imbalance")
    for nodes in (1, 2, 4, 8):
        owner = map_cblks(sym, nodes, factotype=ft)
        r = simulate_distributed(
            sym, owner, ClusterSpec(n_nodes=nodes, cores_per_node=12),
            factotype=ft,
        )
        print(f"{nodes:>6} | {r.gflops:7.1f} | {r.n_messages:>6} | "
              f"{r.bytes_on_wire / 1e6:7.1f} | {r.load_imbalance:.2f}")

    print("\nfan-in vs per-update messages (4 nodes):")
    print(f"{'latency':>8} | {'fan-in':>8} | {'per-update':>10}")
    owner = map_cblks(sym, 4, factotype=ft)
    for lat_us in (2, 50, 250):
        cells = []
        for fanin in (True, False):
            cluster = ClusterSpec(
                n_nodes=4, cores_per_node=12, net_latency_s=lat_us * 1e-6
            )
            r = simulate_distributed(
                sym, owner, cluster, factotype=ft, fanin=fanin
            )
            cells.append(r.gflops)
        print(f"{lat_us:>5} us | {cells[0]:8.1f} | {cells[1]:10.1f}")
    print("\nFan-in sends two orders of magnitude fewer messages; the gap "
          "widens as\nper-message latency grows — trading bandwidth for "
          "latency, as §VI argues.")


if __name__ == "__main__":
    main()
