"""Compare the three scheduler policies on one matrix (Figure-2 style).

Runs the factorization DAG of a collection analogue through the machine
simulator under the native PaStiX scheduler, the StarPU-like policy, and
the PaRSEC-like policy, from 1 to 12 cores, and prints the GFlop/s table
plus an ASCII Gantt chart of the 4-core PaRSEC schedule.

    python examples/scheduler_comparison.py [matrix] [scale]
"""

import sys

from repro.dag import build_dag, dag_summary
from repro.machine import mirage, simulate
from repro.runtime import get_policy
from repro.sparse.collection import MATRIX_COLLECTION, load_matrix
from repro.symbolic import SymbolicOptions, analyze


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "audi"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.7
    info = MATRIX_COLLECTION[name]
    matrix = load_matrix(name, scale=scale)
    print(f"{name} analogue ({info.description})")
    print(f"n = {matrix.n_rows}, nnz = {matrix.nnz}, "
          f"factorization = {info.method}\n")

    res = analyze(matrix, SymbolicOptions(split_max_width=96))
    ft = info.method.lower()

    print(f"{'scheduler':>10} | " + " | ".join(f"{c:>2} cores" for c in (1, 3, 6, 9, 12)))
    print("-" * 64)
    for policy_name in ("native", "starpu", "parsec"):
        policy = get_policy(policy_name)
        dag = build_dag(
            res.symbol, ft,
            granularity=policy.traits.granularity,
            dtype=info.dtype,
            recompute_ld=policy.traits.recompute_ld,
        )
        cells = []
        for cores in (1, 3, 6, 9, 12):
            r = simulate(dag, mirage(n_cores=cores), get_policy(policy_name),
                         dtype=info.dtype, collect_trace=False)
            cells.append(f"{r.gflops:8.2f}")
        print(f"{policy_name:>10} | " + " | ".join(cells))

    # Show what the schedule actually looks like on 4 cores.
    policy = get_policy("parsec")
    dag = build_dag(res.symbol, ft, dtype=info.dtype)
    r = simulate(dag, mirage(n_cores=4), policy, dtype=info.dtype)
    s = dag_summary(dag)
    print(f"\nDAG: {s.n_tasks} tasks ({s.n_panel} panel + {s.n_update} update), "
          f"average parallelism {s.avg_parallelism:.1f}")
    print("\nPaRSEC schedule on 4 cores (each row is a core):")
    print(r.trace.gantt(width=88))


if __name__ == "__main__":
    main()
