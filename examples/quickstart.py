"""Quickstart: solve a sparse SPD system with the supernodal solver.

Builds a 3D Poisson problem, runs the three solver phases (analyze /
factorize / solve), and checks the residual — the ten-line tour of the
public API.

    python examples/quickstart.py [grid_size]
"""

import sys

import numpy as np

from repro import SolverOptions, SparseSolver
from repro.sparse import grid_laplacian_3d


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    A = grid_laplacian_3d(nx, jitter=0.05, seed=0)
    print(f"3D Poisson system: n = {A.n_rows}, nnz = {A.nnz}")

    solver = SparseSolver(A, SolverOptions(factotype="llt"))

    analysis = solver.analyze()
    sym = analysis.symbol
    print(
        f"analysis: {sym.n_cblk} panels, {sym.n_blok} blocks, "
        f"nnz(L) = {sym.nnz()} "
        f"(fill {sym.nnz() / A.lower_triangle().nnz:.1f}x)"
    )

    info = solver.factorize()
    print(
        f"factorization: {info.flops / 1e9:.2f} GFlop "
        f"in {info.elapsed:.2f} s ({info.gflops:.2f} GFlop/s effective)"
    )

    rng = np.random.default_rng(7)
    x_true = rng.standard_normal(A.n_rows)
    b = A.matvec(x_true)
    x = solver.solve(b)

    print(f"residual  ||b - Ax|| / ||b|| = {solver.residual_norm(x, b):.2e}")
    print(f"error     ||x - x*|| / ||x*|| = "
          f"{np.linalg.norm(x - x_true) / np.linalg.norm(x_true):.2e}")
    assert solver.residual_norm(x, b) < 1e-10
    print("OK")


if __name__ == "__main__":
    main()
