"""Heterogeneous execution: how GPUs accelerate the factorization.

Figure-4 in miniature: one large and one flop-poor matrix, simulated on
12 cores plus 0–3 GPUs under the StarPU-like and PaRSEC-like policies,
with the transfer traffic and device utilisation the runtimes achieve.
Shows the paper's two headline effects: big factorizations gain a lot,
and afshell-style matrices gain nothing ("the amount of Flop produced is
too small to efficiently benefit from the GPUs").

    python examples/hybrid_gpu_speedup.py [scale]
"""

import sys

from repro.dag import build_dag
from repro.machine import mirage, simulate
from repro.runtime import get_policy
from repro.sparse.collection import MATRIX_COLLECTION, load_matrix
from repro.symbolic import SymbolicOptions, analyze


def run(name: str, scale: float) -> None:
    info = MATRIX_COLLECTION[name]
    matrix = load_matrix(name, scale=scale)
    res = analyze(matrix, SymbolicOptions(split_max_width=96))
    ft = info.method.lower()
    print(f"\n=== {name}: n = {matrix.n_rows}, {info.method}, "
          f"{res.symbol.nnz()} nnz(L) ===")
    header = f"{'config':>12} | " + " | ".join(f"{g} GPU" for g in range(4))
    print(header)
    print("-" * len(header))
    for policy_name, streams, label in (
        ("starpu", 1, "starpu"),
        ("parsec", 1, "parsec-1s"),
        ("parsec", 3, "parsec-3s"),
    ):
        policy = get_policy(policy_name)
        dag = build_dag(
            res.symbol, ft, dtype=info.dtype,
            recompute_ld=policy.traits.recompute_ld,
        )
        cells = []
        for gpus in range(4):
            r = simulate(
                dag,
                mirage(n_cores=12, n_gpus=gpus,
                       streams_per_gpu=streams if gpus else 1),
                get_policy(policy_name),
                dtype=info.dtype,
                collect_trace=False,
            )
            cells.append(f"{r.gflops:5.1f}")
        print(f"{label:>12} | " + " | ".join(cells))

    # Detail of the best hybrid run: where did the time go?
    policy = get_policy("parsec")
    dag = build_dag(res.symbol, ft, dtype=info.dtype)
    r = simulate(dag, mirage(12, n_gpus=3, streams_per_gpu=3),
                 policy, dtype=info.dtype)
    gpu_busy = {k: v / r.makespan for k, v in r.busy.items()
                if k.startswith("gpu")}
    cpu_busy = sum(v for k, v in r.busy.items() if k.startswith("cpu"))
    print(f"parsec-3s @3 GPUs: makespan {r.makespan * 1e3:.1f} ms, "
          f"CPU util {cpu_busy / 12 / r.makespan:.0%}, "
          f"GPU util {', '.join(f'{k}={v:.0%}' for k, v in sorted(gpu_busy.items()))}")
    print(f"PCIe traffic: {r.bytes_h2d / 1e6:.1f} MB h2d, "
          f"{r.bytes_d2h / 1e6:.1f} MB d2h")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.8
    run("Serena", scale)     # flop-rich: GPUs pay off
    run("afshell10", scale)  # flop-poor: GPUs cannot help


if __name__ == "__main__":
    main()
