"""Iterative solves: the factorization and ILU(k) as preconditioners.

PaStiX doubles as a preconditioner engine: the exact factorization gives
one-iteration Krylov convergence, while the incomplete ILU(k) family
(whose approximate-supernode amalgamation the paper reuses, §V) trades
factorization cost for iteration count.  This example sweeps the level
of fill on a 3D Poisson problem and reports nnz, CG iterations, and the
estimated condition number of the system.

    python examples/preconditioned_iterative.py [grid_size]
"""

import sys

import numpy as np

from repro import SparseSolver
from repro.core.krylov import conjugate_gradient
from repro.precond import IncompleteLU
from repro.sparse import grid_laplacian_3d


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    A = grid_laplacian_3d(nx, jitter=0.05, seed=4)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.n_rows)
    print(f"3D Poisson: n = {A.n_rows}, nnz = {A.nnz}")

    solver = SparseSolver(A)
    solver.factorize()
    print(f"estimated kappa_1(A) = {solver.condest():.2e}\n")

    plain = conjugate_gradient(A, b, tol=1e-10, max_iter=2000)
    print(f"{'preconditioner':>22} | {'nnz':>8} | {'CG iters':>8} | residual")
    print("-" * 60)
    print(f"{'none':>22} | {A.nnz:>8} | {plain.iterations:>8} | "
          f"{plain.residual_norm:.1e}")

    for level in (0, 1, 2):
        ilu = IncompleteLU(A, level=level)
        r = conjugate_gradient(
            A, b, precondition=ilu.solve, tol=1e-10, max_iter=2000
        )
        print(f"{f'ILU({level})':>22} | {ilu.nnz:>8} | {r.iterations:>8} | "
              f"{r.residual_norm:.1e}")

    exact = conjugate_gradient(
        A, b, precondition=solver._raw_solve, tol=1e-10
    )
    nnz_exact = solver.analysis.symbol.nnz()
    print(f"{'exact factorization':>22} | {nnz_exact:>8} | "
          f"{exact.iterations:>8} | {exact.residual_norm:.1e}")
    print("\nMore fill, fewer iterations — the exact factor converges "
          "immediately,\nILU(k) interpolates between it and plain CG.")


if __name__ == "__main__":
    main()
