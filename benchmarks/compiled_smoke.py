"""Compiled-kernel smoke gate (``make compiled-smoke``).

Factorizes a small SPD grid problem three ways — the numpy reference,
``kernels="compiled"`` sequentially, and ``kernels="compiled"`` on the
threaded runtime with a 2D row split — and checks the factors:

* with numba installed, the compiled factors must match the reference
  to a pinned roundoff bound (the jit kernels reorder no reductions in
  the sequential path, but the threaded run legitimately does);
* without numba, ``kernels="compiled"`` must degrade gracefully to the
  numpy path and the sequential factor must be *byte-identical* to the
  reference (the degradation contract the tier-1 tests also pin).

Exit status 0 on success; any mismatch or stamping error is fatal.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.factorization import factorize_sequential
from repro.kernels.compiled import HAVE_NUMBA
from repro.runtime.threaded import factorize_threaded
from repro.runtime.tracing import ExecutionTrace
from repro.sparse.generators import grid_laplacian_2d
from repro.symbolic import SymbolicOptions, analyze

RTOL, ATOL = 1e-9, 1e-12


def _compare(ref, got, label: str, *, exact: bool) -> None:
    for k in range(ref.n_cblk):
        if exact:
            if not np.array_equal(ref.L[k], got.L[k]):
                sys.exit(f"{label}: panel {k} is not byte-identical to "
                         "the numpy reference")
        elif not np.allclose(ref.L[k], got.L[k], rtol=RTOL, atol=ATOL):
            err = float(np.max(np.abs(ref.L[k] - got.L[k])))
            sys.exit(f"{label}: panel {k} deviates from the reference "
                     f"by {err:.3e} (bound rtol={RTOL}, atol={ATOL})")
    if ref.D is not None:
        for k in range(ref.n_cblk):
            same = (np.array_equal(ref.D[k], got.D[k]) if exact else
                    np.allclose(ref.D[k], got.D[k], rtol=RTOL, atol=ATOL))
            if not same:
                sys.exit(f"{label}: D block {k} deviates")


def main() -> None:
    backend = "compiled" if HAVE_NUMBA else "numpy"
    print(f"compiled-smoke: numba {'present' if HAVE_NUMBA else 'absent'}"
          f" -- kernels='compiled' resolves to '{backend}'")

    matrix = grid_laplacian_2d(24, jitter=0.05, seed=0)
    res = analyze(matrix, SymbolicOptions(split_max_width=16))
    permuted = matrix.permute(res.perm.perm)

    ref = factorize_sequential(res.symbol, permuted, "llt")
    seq = factorize_sequential(res.symbol, permuted, "llt",
                               kernels="compiled")
    if seq.kernels != backend:
        sys.exit(f"sequential factor stamped kernels={seq.kernels!r}, "
                 f"expected {backend!r}")
    # Sequential order is identical, so the jit path itself must agree
    # to roundoff; the numpy fallback must agree bitwise.
    _compare(ref, seq, "sequential compiled", exact=not HAVE_NUMBA)
    print("compiled-smoke: sequential factor "
          + ("bit-identical" if not HAVE_NUMBA else "within bound"))

    trace = ExecutionTrace()
    thr = factorize_threaded(
        res.symbol, permuted, "llt", n_workers=4, trace=trace,
        kernels="compiled", split_rows=8,
    )
    if trace.meta.get("kernels") != backend:
        sys.exit(f"trace stamped kernels={trace.meta.get('kernels')!r}, "
                 f"expected {backend!r}")
    if trace.meta.get("kernels_requested") != "compiled":
        sys.exit("trace lost the requested-kernels stamp")
    if int(trace.meta.get("split_rows", -1)) != 8:
        sys.exit("trace lost the split_rows stamp")
    _compare(ref, thr, "threaded compiled + 2D split", exact=False)
    print("compiled-smoke: threaded 2D-split factor within bound "
          f"({len(trace.events)} tasks traced)")


if __name__ == "__main__":
    main()
