"""Extension bench — factorization under injected faults.

Not a paper figure: the paper argues that delegating scheduling to a
generic runtime also delegates *robustness* concerns.  This bench
quantifies what the resilience layer (:mod:`repro.resilience`) costs:

* a fault-rate sweep (task + transfer fault probability 0 → 10%) per
  scheduler policy, reporting makespan inflation over the fault-free
  run, faults injected, tasks re-executed, and bytes retransmitted;
* ``--chaos``: a deterministic fault matrix (worker crash, GPU loss,
  transfer failures, limplock) x (native, starpu, parsec) where every
  cell must complete all tasks and — with ``--verify`` — produce a
  trace that is clean under the R6xx resilience auditor, the S2xx
  schedule verifier, and (limplock cells) the R7xx degradation
  auditor.  The chaos run ends with a hedging A/B: the same limplock
  scenario with health monitoring armed, hedging off vs on, and the
  bench *asserts* (not eyeballs) that hedging shortens the makespan.

Run ``python benchmarks/bench_resilience.py [--chaos] [--verify]``.
Results land in ``results/BENCH_resilience.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import format_table, write_bench_json, write_csv

from repro.dag import build_dag
from repro.machine import mirage, simulate
from repro.resilience import (
    FaultModel,
    FaultSpec,
    HealthPolicy,
    RecoveryPolicy,
)
from repro.runtime import get_policy
from repro.sparse.generators import grid_laplacian_2d
from repro.symbolic import SymbolicOptions, analyze

POLICIES = ("native", "starpu", "parsec")
FAULT_RATES = (0.0, 0.02, 0.05, 0.1)
CHAOS_KINDS = ("worker-crash", "gpu-loss", "transfer-fail", "limplock")


def _policy(name: str):
    # Low offload threshold so the bench problem exercises the GPU fault
    # paths; the native policy is CPU-only and takes no threshold.
    if name == "native":
        return get_policy(name)
    return get_policy(name, gpu_flops_threshold=1e3)


def _setup(grid: int, split: int):
    matrix = grid_laplacian_2d(grid, jitter=0.05, seed=0)
    res = analyze(matrix, SymbolicOptions(split_max_width=split))
    # 4 cores vs 2 GPUs: small enough a CPU pool that both cost-model
    # schedulers actually offload the bench problem, so transfer and
    # device-loss fault paths carry real traffic.
    machine = mirage(n_cores=4, n_gpus=2, streams_per_gpu=2)
    return res.symbol, machine


def _dag_for(symbol, name: str):
    pol = _policy(name)
    return pol, build_dag(
        symbol, "llt",
        granularity=pol.traits.granularity,
        recompute_ld=pol.traits.recompute_ld,
    )


def _check_trace(name: str, label: str, dag, result, *,
                 health: bool = False) -> None:
    from repro.verify import verify_health, verify_resilience, verify_schedule

    if len(result.trace.events) != dag.n_tasks:
        raise RuntimeError(
            f"{name}/{label}: {len(result.trace.events)} of "
            f"{dag.n_tasks} tasks completed"
        )
    reps = [verify_resilience(result.trace, dag),
            verify_schedule(dag, result.trace)]
    if health:
        reps.append(verify_health(result.trace))
    for rep in reps:
        if not rep.ok:
            raise RuntimeError(
                f"{name}/{label} produced a dirty trace:\n" + rep.format()
            )


# ----------------------------------------------------------------------
# fault-rate sweep
# ----------------------------------------------------------------------
def sweep_rows(grid: int, split: int, seed: int, verify: bool):
    symbol, machine = _setup(grid, split)
    rows, cells = [], []
    for name in POLICIES:
        baseline = None
        for rate in FAULT_RATES:
            pol, dag = _dag_for(symbol, name)
            if rate == 0.0:
                r = simulate(dag, machine, pol, collect_trace=True)
                baseline = r.makespan
            else:
                faults = FaultModel(
                    seed=seed, task_fail_rate=rate,
                    transfer_fail_rate=rate, straggler_rate=rate / 2,
                )
                # A generous retry budget: at a 10% fault rate a task
                # losing 4 consecutive coin flips is expected in a sweep
                # this size, and the sweep measures cost, not budgets.
                r = simulate(dag, machine, pol, faults=faults,
                             recovery=RecoveryPolicy(max_retries=8),
                             collect_trace=True)
            if verify:
                _check_trace(name, f"rate={rate:g}", dag, r)
            inflation = r.makespan / baseline if baseline else float("nan")
            rows.append([
                name, f"{rate:.2f}", f"{r.makespan * 1e3:.3f}",
                f"{inflation:.3f}", r.n_faults, r.n_reexecuted,
                f"{r.bytes_retransferred / 1e6:.3f}",
            ])
            cells.append({
                "policy": name,
                "fault_rate": rate,
                "makespan_s": r.makespan,
                "makespan_inflation": inflation,
                "n_faults": r.n_faults,
                "n_reexecuted": r.n_reexecuted,
                "bytes_retransferred": r.bytes_retransferred,
                "gflops": r.gflops,
                "verified": verify,
            })
    return rows, cells


SWEEP_HEADERS = ["policy", "rate", "makespan (ms)", "inflation",
                 "faults", "re-exec", "MB resent"]


# ----------------------------------------------------------------------
# chaos matrix
# ----------------------------------------------------------------------
def _chaos_faults(kind: str, seed: int, horizon: float) -> FaultModel:
    if kind == "worker-crash":
        # One crash only: starpu's dedicated-GPU-worker trait leaves a
        # 2-worker CPU pool on this machine, and losing every CPU
        # worker is (correctly) unrecoverable.
        specs = [FaultSpec("worker-crash", time=0.0, resource=0)]
        return FaultModel(specs, seed=seed, task_fail_rate=0.01)
    if kind == "gpu-loss":
        specs = [FaultSpec("gpu-loss", time=0.25 * horizon, resource=0)]
        return FaultModel(specs, seed=seed)
    if kind == "limplock":
        # Persistent 50x slowdown of CPU worker 0 from 10% of the clean
        # makespan on: not a crash, so nothing re-executes — the health
        # monitor has to notice and route around it.
        specs = [FaultSpec("limplock", time=0.1 * horizon, resource=0,
                           factor=50.0)]
        return FaultModel(specs, seed=seed)
    specs = [FaultSpec("transfer-fail", time=0.0)]
    return FaultModel(specs, seed=seed, transfer_fail_rate=0.05)


def _health_policy(horizon: float, hedge: bool) -> HealthPolicy:
    return HealthPolicy(
        min_samples=3, suspect_ratio=2.0, degraded_ratio=4.0,
        quarantine_ratio=3.0, quarantine_s=0.6 * horizon,
        hedge=hedge, hedge_ratio=3.0,
    )


def chaos_rows(grid: int, split: int, seed: int, verify: bool):
    symbol, machine = _setup(grid, split)
    rows, cells = [], []
    for kind in CHAOS_KINDS:
        for name in POLICIES:
            pol, dag = _dag_for(symbol, name)
            clean = simulate(dag, machine, pol)
            faults = _chaos_faults(kind, seed, clean.makespan)
            health = (_health_policy(clean.makespan, hedge=True)
                      if kind == "limplock" else None)
            r = simulate(dag, machine, _policy(name), faults=faults,
                         recovery=RecoveryPolicy(), health=health,
                         collect_trace=True)
            label = f"chaos[{kind}]"
            if verify:
                _check_trace(name, label, dag, r,
                             health=health is not None)
            elif len(r.trace.events) != dag.n_tasks:
                raise RuntimeError(
                    f"{name}/{label}: {len(r.trace.events)} of "
                    f"{dag.n_tasks} tasks completed"
                )
            rows.append([
                kind, name, dag.n_tasks, r.n_faults, r.n_reexecuted,
                f"{r.makespan / clean.makespan:.3f}",
                "yes" if verify else "-",
            ])
            cells.append({
                "kind": kind,
                "policy": name,
                "n_tasks": dag.n_tasks,
                "n_faults": r.n_faults,
                "n_reexecuted": r.n_reexecuted,
                "makespan_inflation": r.makespan / clean.makespan,
                "bytes_retransferred": r.bytes_retransferred,
                "n_health_transitions": r.n_health_transitions,
                "n_hedges": r.n_hedges,
                "verified": verify,
            })
    return rows, cells


CHAOS_HEADERS = ["fault", "policy", "tasks", "faults", "re-exec",
                 "inflation", "verified"]


# ----------------------------------------------------------------------
# hedging A/B
# ----------------------------------------------------------------------
#: The A/B runs a pinned demonstration configuration instead of the
#: chaos machine: a CPU-only pool (the health monitor observes CPU
#: workers) at a scale where the limping worker's in-flight task binds
#: the critical path for the native schedule.  Whether hedging *wins*
#: depends on exactly that — a duplicate only shortens the makespan if
#: the stuck primary was on the critical path; otherwise hedging is a
#: small capacity tax.  The assertions below encode both halves.
HEDGE_GRID = 40
#: Hedging must never cost more than this factor over no-hedging.
HEDGE_HARM_BOUND = 1.02
#: And for the critical-path policy it must win by at least this much.
HEDGE_WIN_BOUND = 1.2


def hedge_rows(split: int, seed: int, verify: bool):
    """Limplock scenario, health monitoring armed, hedging off vs on.

    The simulator is deterministic, so the comparison is exact — the
    run *asserts* that hedging shortens the native-policy makespan by
    at least :data:`HEDGE_WIN_BOUND` and never inflates any policy's
    makespan beyond :data:`HEDGE_HARM_BOUND`."""
    matrix = grid_laplacian_2d(HEDGE_GRID, jitter=0.05, seed=0)
    symbol = analyze(matrix,
                     SymbolicOptions(split_max_width=split)).symbol
    machine = mirage(n_cores=4, n_gpus=0)
    rows, cells = [], []
    speedups = {}
    for name in POLICIES:
        pol, dag = _dag_for(symbol, name)
        clean = simulate(dag, machine, pol)
        mk = clean.makespan
        results = {}
        for hedge in (False, True):
            faults = _chaos_faults("limplock", seed, mk)
            r = simulate(dag, machine, _policy(name), faults=faults,
                         health=_health_policy(mk, hedge=hedge),
                         collect_trace=True)
            if verify:
                _check_trace(name, f"hedge={hedge}", dag, r, health=True)
            results[hedge] = r
        off, on = results[False], results[True]
        if on.n_hedges < 1:
            raise RuntimeError(
                f"{name}/hedge-ab: hedging armed but no duplicate "
                "launched — the scenario no longer exercises hedging"
            )
        speedup = off.makespan / on.makespan
        speedups[name] = speedup
        if speedup < 1.0 / HEDGE_HARM_BOUND:
            raise RuntimeError(
                f"{name}/hedge-ab: hedging inflates the makespan "
                f"{1.0 / speedup:.3f}x (harm bound {HEDGE_HARM_BOUND})"
            )
        rows.append([
            name, f"{off.makespan / mk:.3f}", f"{on.makespan / mk:.3f}",
            f"{speedup:.3f}", on.n_hedges, on.n_health_transitions,
            "yes" if verify else "-",
        ])
        cells.append({
            "policy": name,
            "clean_makespan_s": mk,
            "unhedged_inflation": off.makespan / mk,
            "hedged_inflation": on.makespan / mk,
            "hedge_speedup": speedup,
            "n_hedges": on.n_hedges,
            "n_health_transitions": on.n_health_transitions,
            "verified": verify,
        })
    if speedups["native"] <= 1.0:
        raise RuntimeError(
            f"native/hedge-ab: hedged makespan is not shorter "
            f"(speedup {speedups['native']:.3f})"
        )
    if max(speedups.values()) < HEDGE_WIN_BOUND:
        raise RuntimeError(
            f"hedge-ab: best speedup {max(speedups.values()):.3f} is "
            f"below the {HEDGE_WIN_BOUND} demonstration bound"
        )
    return rows, cells


HEDGE_HEADERS = ["policy", "no-hedge infl", "hedge infl", "speedup",
                 "hedges", "transitions", "verified"]


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse

    p = argparse.ArgumentParser(
        description="factorization under injected faults"
    )
    p.add_argument("--grid", type=int, default=48,
                   help="2-D Laplacian grid size (default 48)")
    p.add_argument("--split", type=int, default=32,
                   help="panel split width (default 32)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--chaos", action="store_true",
                   help="run the fault-kind x policy chaos matrix "
                        "instead of the rate sweep")
    p.add_argument("--verify", action="store_true",
                   help="run the R6xx resilience auditor and the S2xx "
                        "schedule verifier on every faulted trace")
    args = p.parse_args(argv)

    payload = {"grid": args.grid, "split": args.split, "seed": args.seed}
    if args.chaos:
        rows, cells = chaos_rows(args.grid, args.split, args.seed,
                                 args.verify)
        print(format_table(CHAOS_HEADERS, rows))
        write_csv("resilience_chaos.csv", CHAOS_HEADERS, rows)
        payload["chaos"] = cells
        hrows, hcells = hedge_rows(args.split, args.seed, args.verify)
        print()
        print(format_table(HEDGE_HEADERS, hrows))
        write_csv("resilience_hedge.csv", HEDGE_HEADERS, hrows)
        payload["hedge_ab"] = hcells
    else:
        rows, cells = sweep_rows(args.grid, args.split, args.seed,
                                 args.verify)
        print(format_table(SWEEP_HEADERS, rows))
        write_csv("resilience_sweep.csv", SWEEP_HEADERS, rows)
        payload["sweep"] = cells
    path = write_bench_json("resilience", payload)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
