"""Extension bench — factorization under injected faults.

Not a paper figure: the paper argues that delegating scheduling to a
generic runtime also delegates *robustness* concerns.  This bench
quantifies what the resilience layer (:mod:`repro.resilience`) costs:

* a fault-rate sweep (task + transfer fault probability 0 → 10%) per
  scheduler policy, reporting makespan inflation over the fault-free
  run, faults injected, tasks re-executed, and bytes retransmitted;
* ``--chaos``: a deterministic fault matrix (worker crash, GPU loss,
  transfer failures) x (native, starpu, parsec) where every cell must
  complete all tasks and — with ``--verify`` — produce a trace that is
  clean under the R6xx resilience auditor and the S2xx schedule
  verifier.

Run ``python benchmarks/bench_resilience.py [--chaos] [--verify]``.
Results land in ``results/BENCH_resilience.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import format_table, write_bench_json, write_csv

from repro.dag import build_dag
from repro.machine import mirage, simulate
from repro.resilience import FaultModel, FaultSpec, RecoveryPolicy
from repro.runtime import get_policy
from repro.sparse.generators import grid_laplacian_2d
from repro.symbolic import SymbolicOptions, analyze

POLICIES = ("native", "starpu", "parsec")
FAULT_RATES = (0.0, 0.02, 0.05, 0.1)
CHAOS_KINDS = ("worker-crash", "gpu-loss", "transfer-fail")


def _policy(name: str):
    # Low offload threshold so the bench problem exercises the GPU fault
    # paths; the native policy is CPU-only and takes no threshold.
    if name == "native":
        return get_policy(name)
    return get_policy(name, gpu_flops_threshold=1e3)


def _setup(grid: int, split: int):
    matrix = grid_laplacian_2d(grid, jitter=0.05, seed=0)
    res = analyze(matrix, SymbolicOptions(split_max_width=split))
    # 4 cores vs 2 GPUs: small enough a CPU pool that both cost-model
    # schedulers actually offload the bench problem, so transfer and
    # device-loss fault paths carry real traffic.
    machine = mirage(n_cores=4, n_gpus=2, streams_per_gpu=2)
    return res.symbol, machine


def _dag_for(symbol, name: str):
    pol = _policy(name)
    return pol, build_dag(
        symbol, "llt",
        granularity=pol.traits.granularity,
        recompute_ld=pol.traits.recompute_ld,
    )


def _check_trace(name: str, label: str, dag, result) -> None:
    from repro.verify import verify_resilience, verify_schedule

    if len(result.trace.events) != dag.n_tasks:
        raise RuntimeError(
            f"{name}/{label}: {len(result.trace.events)} of "
            f"{dag.n_tasks} tasks completed"
        )
    for rep in (verify_resilience(result.trace, dag),
                verify_schedule(dag, result.trace)):
        if not rep.ok:
            raise RuntimeError(
                f"{name}/{label} produced a dirty trace:\n" + rep.format()
            )


# ----------------------------------------------------------------------
# fault-rate sweep
# ----------------------------------------------------------------------
def sweep_rows(grid: int, split: int, seed: int, verify: bool):
    symbol, machine = _setup(grid, split)
    rows, cells = [], []
    for name in POLICIES:
        baseline = None
        for rate in FAULT_RATES:
            pol, dag = _dag_for(symbol, name)
            if rate == 0.0:
                r = simulate(dag, machine, pol, collect_trace=True)
                baseline = r.makespan
            else:
                faults = FaultModel(
                    seed=seed, task_fail_rate=rate,
                    transfer_fail_rate=rate, straggler_rate=rate / 2,
                )
                # A generous retry budget: at a 10% fault rate a task
                # losing 4 consecutive coin flips is expected in a sweep
                # this size, and the sweep measures cost, not budgets.
                r = simulate(dag, machine, pol, faults=faults,
                             recovery=RecoveryPolicy(max_retries=8),
                             collect_trace=True)
            if verify:
                _check_trace(name, f"rate={rate:g}", dag, r)
            inflation = r.makespan / baseline if baseline else float("nan")
            rows.append([
                name, f"{rate:.2f}", f"{r.makespan * 1e3:.3f}",
                f"{inflation:.3f}", r.n_faults, r.n_reexecuted,
                f"{r.bytes_retransferred / 1e6:.3f}",
            ])
            cells.append({
                "policy": name,
                "fault_rate": rate,
                "makespan_s": r.makespan,
                "makespan_inflation": inflation,
                "n_faults": r.n_faults,
                "n_reexecuted": r.n_reexecuted,
                "bytes_retransferred": r.bytes_retransferred,
                "gflops": r.gflops,
                "verified": verify,
            })
    return rows, cells


SWEEP_HEADERS = ["policy", "rate", "makespan (ms)", "inflation",
                 "faults", "re-exec", "MB resent"]


# ----------------------------------------------------------------------
# chaos matrix
# ----------------------------------------------------------------------
def _chaos_faults(kind: str, seed: int, horizon: float) -> FaultModel:
    if kind == "worker-crash":
        # One crash only: starpu's dedicated-GPU-worker trait leaves a
        # 2-worker CPU pool on this machine, and losing every CPU
        # worker is (correctly) unrecoverable.
        specs = [FaultSpec("worker-crash", time=0.0, resource=0)]
        return FaultModel(specs, seed=seed, task_fail_rate=0.01)
    if kind == "gpu-loss":
        specs = [FaultSpec("gpu-loss", time=0.25 * horizon, resource=0)]
        return FaultModel(specs, seed=seed)
    specs = [FaultSpec("transfer-fail", time=0.0)]
    return FaultModel(specs, seed=seed, transfer_fail_rate=0.05)


def chaos_rows(grid: int, split: int, seed: int, verify: bool):
    symbol, machine = _setup(grid, split)
    rows, cells = [], []
    for kind in CHAOS_KINDS:
        for name in POLICIES:
            pol, dag = _dag_for(symbol, name)
            clean = simulate(dag, machine, pol)
            faults = _chaos_faults(kind, seed, clean.makespan)
            r = simulate(dag, machine, _policy(name), faults=faults,
                         recovery=RecoveryPolicy(), collect_trace=True)
            label = f"chaos[{kind}]"
            if verify:
                _check_trace(name, label, dag, r)
            elif len(r.trace.events) != dag.n_tasks:
                raise RuntimeError(
                    f"{name}/{label}: {len(r.trace.events)} of "
                    f"{dag.n_tasks} tasks completed"
                )
            rows.append([
                kind, name, dag.n_tasks, r.n_faults, r.n_reexecuted,
                f"{r.makespan / clean.makespan:.3f}",
                "yes" if verify else "-",
            ])
            cells.append({
                "kind": kind,
                "policy": name,
                "n_tasks": dag.n_tasks,
                "n_faults": r.n_faults,
                "n_reexecuted": r.n_reexecuted,
                "makespan_inflation": r.makespan / clean.makespan,
                "bytes_retransferred": r.bytes_retransferred,
                "verified": verify,
            })
    return rows, cells


CHAOS_HEADERS = ["fault", "policy", "tasks", "faults", "re-exec",
                 "inflation", "verified"]


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse

    p = argparse.ArgumentParser(
        description="factorization under injected faults"
    )
    p.add_argument("--grid", type=int, default=48,
                   help="2-D Laplacian grid size (default 48)")
    p.add_argument("--split", type=int, default=32,
                   help="panel split width (default 32)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--chaos", action="store_true",
                   help="run the fault-kind x policy chaos matrix "
                        "instead of the rate sweep")
    p.add_argument("--verify", action="store_true",
                   help="run the R6xx resilience auditor and the S2xx "
                        "schedule verifier on every faulted trace")
    args = p.parse_args(argv)

    payload = {"grid": args.grid, "split": args.split, "seed": args.seed}
    if args.chaos:
        rows, cells = chaos_rows(args.grid, args.split, args.seed,
                                 args.verify)
        print(format_table(CHAOS_HEADERS, rows))
        write_csv("resilience_chaos.csv", CHAOS_HEADERS, rows)
        payload["chaos"] = cells
    else:
        rows, cells = sweep_rows(args.grid, args.split, args.seed,
                                 args.verify)
        print(format_table(SWEEP_HEADERS, rows))
        write_csv("resilience_sweep.csv", SWEEP_HEADERS, rows)
        payload["sweep"] = cells
    path = write_bench_json("resilience", payload)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
