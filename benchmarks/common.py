"""Shared infrastructure for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper:
run it as a script for the full sweep (``python benchmarks/bench_fig2_cpu_scaling.py
--scale 1.0``), or through ``pytest benchmarks/ --benchmark-only`` for a
quick timed subset.  Results are printed as aligned text tables (the
paper's rows/series) and written as CSV under ``results/``.

Analysis results are memoised on disk (``benchmarks/.cache``) because the
same nine matrices feed several figures.
"""

from __future__ import annotations

import argparse
import pickle
import sys
import time
from pathlib import Path

import numpy as np

from repro.dag import build_dag
from repro.kernels.cost import flops_total
from repro.machine import mirage, simulate
from repro.runtime import get_policy
from repro.sparse.collection import MATRIX_COLLECTION, load_matrix
from repro.symbolic import SymbolicOptions, analyze

CACHE_DIR = Path(__file__).resolve().parent / ".cache"
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Split width used across the performance figures (96 balances panel
#: size against parallelism at the analogues' reduced scale).
SPLIT_WIDTH = 96

_memory_cache: dict = {}


def analyzed(name: str, scale: float = 1.0, *, split_width: int = SPLIT_WIDTH):
    """Analysis of a collection matrix, cached in memory and on disk."""
    key = (name, round(scale, 4), split_width)
    if key in _memory_cache:
        return _memory_cache[key]
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{name}_{scale:g}_{split_width}.pkl"
    if path.exists():
        with open(path, "rb") as fh:
            res = pickle.load(fh)
    else:
        matrix = load_matrix(name, scale=scale)
        res = analyze(
            matrix,
            SymbolicOptions(split_max_width=split_width),
        )
        with open(path, "wb") as fh:
            pickle.dump(res, fh)
    _memory_cache[key] = res
    return res


def matrix_factotype(name: str) -> str:
    return MATRIX_COLLECTION[name].method.lower()


def matrix_dtype(name: str):
    return MATRIX_COLLECTION[name].dtype


def simulate_cell(
    name: str,
    policy_name: str,
    *,
    scale: float = 1.0,
    n_cores: int = 12,
    n_gpus: int = 0,
    streams: int = 1,
    split_width: int = SPLIT_WIDTH,
    verify: bool = False,
) -> dict:
    """Simulate one (matrix, policy, machine) cell.

    Returns a flat dict of the cell's configuration and measurements —
    the rows of the ``results/BENCH_*.json`` reports.  With
    ``verify=True`` the produced trace is additionally run through the
    S2xx schedule verifier and the M4xx memory auditor; a dirty trace
    raises ``RuntimeError`` with the offending report, so a benchmark
    sweep cannot quietly publish numbers from an infeasible schedule.
    """
    res = analyzed(name, scale, split_width=split_width)
    policy = get_policy(policy_name)
    ft = matrix_factotype(name)
    dt = matrix_dtype(name)
    dag = build_dag(
        res.symbol,
        ft,
        granularity=policy.traits.granularity,
        dtype=dt,
        recompute_ld=policy.traits.recompute_ld,
    )
    machine = mirage(
        n_cores=n_cores,
        n_gpus=n_gpus,
        streams_per_gpu=streams if n_gpus else 1,
    )
    sim = simulate(dag, machine, policy, dtype=dt, collect_trace=verify)
    cell = {
        "matrix": name,
        "policy": policy_name,
        "scale": scale,
        "n_cores": n_cores,
        "n_gpus": n_gpus,
        "streams": streams,
        "gflops": sim.gflops,
        "makespan_s": sim.makespan,
        "bytes_h2d": sim.bytes_h2d,
        "bytes_d2h": sim.bytes_d2h,
        "peak_gpu_bytes": sim.peak_gpu_bytes,
    }
    if verify:
        from repro.verify import verify_memory, verify_schedule

        for rep in (
            verify_schedule(dag, sim.trace),
            verify_memory(dag, sim.trace, machine, dtype=dt),
        ):
            if not rep.ok:
                raise RuntimeError(
                    f"{name}/{policy_name} produced a dirty trace:\n"
                    + rep.format()
                )
        cell["verified"] = True
        # Canonical same-seed replay fingerprint (D8xx): lets a later
        # run diff this cell's schedule bit-for-bit against the report.
        cell["fingerprint"] = sim.trace.fingerprint()
    return cell


def simulate_config(
    name: str,
    policy_name: str,
    *,
    scale: float = 1.0,
    n_cores: int = 12,
    n_gpus: int = 0,
    streams: int = 1,
    split_width: int = SPLIT_WIDTH,
    verify: bool = False,
):
    """Simulate one (matrix, policy, machine) cell; returns GFlop/s."""
    return simulate_cell(
        name, policy_name, scale=scale, n_cores=n_cores, n_gpus=n_gpus,
        streams=streams, split_width=split_width, verify=verify,
    )["gflops"]


def paper_flops(name: str, scale: float = 1.0) -> float:
    res = analyzed(name, scale)
    return flops_total(res.symbol, matrix_factotype(name), matrix_dtype(name))


# ----------------------------------------------------------------------
# reporting helpers
# ----------------------------------------------------------------------


def format_table(headers: list[str], rows: list[list]) -> str:
    cols = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cols) for i in range(len(headers))]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in cols[1:]:
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def write_csv(filename: str, headers: list[str], rows: list[list]) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    with open(path, "w") as fh:
        fh.write(",".join(headers) + "\n")
        for row in rows:
            fh.write(",".join(str(c) for c in row) + "\n")
    return path


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one machine-readable benchmark report.

    Every ``bench_*`` script dumps its measurements (GFlop/s, bytes
    moved over PCIe, peak device-memory footprint, ...) as
    ``results/BENCH_<name>.json`` next to the human-readable CSV, so
    downstream tooling can diff runs without re-parsing tables.
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def standard_parser(description: str) -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(description=description)
    p.add_argument(
        "--scale", type=float, default=1.0,
        help="linear scale of the matrix analogues (default 1.0)",
    )
    p.add_argument(
        "--matrices", nargs="*", default=None,
        help="subset of collection names (default: all nine)",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="run the S2xx schedule verifier and M4xx memory auditor "
             "on every produced trace (fails fast on a dirty trace)",
    )
    return p


class StageTimer:
    """Prints progress lines with elapsed times during long sweeps."""

    def __init__(self) -> None:
        self.t0 = time.time()

    def note(self, msg: str) -> None:
        print(f"[{time.time() - self.t0:7.1f}s] {msg}", file=sys.stderr)
