"""Render the paper's figures as SVG from the benchmark CSVs.

Run the sweeps first (``bench_fig2_cpu_scaling.py`` etc.), then::

    python benchmarks/make_figures.py

Outputs ``results/fig2_*.svg``, ``results/fig3.svg``,
``results/fig4_*.svg`` — the visual counterparts of the paper's
Figures 2–4, drawn with the dependency-free :mod:`repro.viz` renderer.
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import RESULTS_DIR
from repro.machine.perfmodel import CUBLAS_PEAK_GFLOPS
from repro.viz import SvgChart


def _read(name: str) -> tuple[list[str], list[list[str]]]:
    path = RESULTS_DIR / name
    with open(path) as fh:
        rows = list(csv.reader(fh))
    return rows[0], rows[1:]


def figure2() -> list[Path]:
    headers, rows = _read("fig2_cpu_scaling.csv")
    cores = [int(h.split()[0]) for h in headers[2:]]
    by_matrix: dict[str, dict[str, list[float]]] = {}
    for row in rows:
        by_matrix.setdefault(row[0], {})[row[1]] = [float(v) for v in row[2:]]
    out = []
    for matrix in ("audi", "Serena", "pmlDF"):
        chart = SvgChart(
            title=f"Figure 2 — CPU scaling, {matrix} analogue",
            xlabel="cores", ylabel="GFlop/s",
        )
        for sched, vals in by_matrix[matrix].items():
            chart.add_line(cores, vals, sched)
        path = RESULTS_DIR / f"fig2_{matrix}.svg"
        chart.save(path)
        out.append(path)
    # Overview: 12-core bars for every matrix.
    cats = list(by_matrix)
    series = {
        sched: [by_matrix[m][sched][-1] for m in cats]
        for sched in ("native", "starpu", "parsec")
    }
    chart = SvgChart(
        title="Figure 2 — 12 cores, all matrices",
        ylabel="GFlop/s", width=760,
    )
    chart.add_bar_groups(cats, series)
    path = RESULTS_DIR / "fig2_12cores.svg"
    chart.save(path)
    out.append(path)
    return out


def figure3() -> list[Path]:
    headers, rows = _read("fig3_gemm_streams.csv")
    ms = [int(r[0]) for r in rows]
    chart = SvgChart(
        title="Figure 3 — DGEMM kernels, N=K=128",
        xlabel="M", ylabel="GFlop/s", log_x=True, width=720,
    )
    for j, h in enumerate(headers[1:], start=1):
        chart.add_line(ms, [float(r[j]) for r in rows], h)
    chart.add_hline(CUBLAS_PEAK_GFLOPS, "cuBLAS peak")
    path = RESULTS_DIR / "fig3.svg"
    chart.save(path)
    return [path]


def figure4() -> list[Path]:
    headers, rows = _read("fig4_gpu_scaling.csv")
    gpus = [int(h.split()[0]) for h in headers[2:]]
    by_matrix: dict[str, dict[str, list]] = {}
    for row in rows:
        vals = [None if v == "-" else float(v) for v in row[2:]]
        by_matrix.setdefault(row[0], {})[row[1]] = vals
    out = []
    for matrix in ("Serena", "afshell10", "Geo1438"):
        chart = SvgChart(
            title=f"Figure 4 — GPU scaling, {matrix} analogue (12 cores)",
            xlabel="GPUs", ylabel="GFlop/s",
        )
        for config, vals in by_matrix[matrix].items():
            xs = [g for g, v in zip(gpus, vals) if v is not None]
            ys = [v for v in vals if v is not None]
            if len(xs) == 1:   # the CPU-only PaStiX reference bar
                chart.add_hline(ys[0], config)
            else:
                chart.add_line(xs, ys, config)
        path = RESULTS_DIR / f"fig4_{matrix}.svg"
        chart.save(path)
        out.append(path)
    return out


def main(argv=None) -> None:
    import argparse

    argparse.ArgumentParser(description=__doc__).parse_args(argv)
    written = []
    for fn, csv_name in ((figure2, "fig2_cpu_scaling.csv"),
                         (figure3, "fig3_gemm_streams.csv"),
                         (figure4, "fig4_gpu_scaling.csv")):
        if (RESULTS_DIR / csv_name).exists():
            written += fn()
        else:
            print(f"skipped {fn.__name__}: missing {csv_name}",
                  file=sys.stderr)
    for path in written:
        print(f"written: {path}")


if __name__ == "__main__":
    main()
