"""Figure 2 — CPU strong-scaling study.

GFlop/s of the factorization step on the nine collection analogues with
the three schedulers (native PaStiX, StarPU, PaRSEC) from 1 to 12 cores
on the simulated Mirage node.

Shapes to reproduce (paper §V-A):

* the three schedulers are comparable on shared memory;
* PaRSEC is mostly ahead of StarPU, increasingly so with more cores
  (StarPU lacks a CPU cache-reuse policy);
* on the LDLᵀ matrices (pmlDF, Serena) the generic runtimes trail the
  native scheduler, which keeps a temporary ``DLᵀ`` buffer.

Run ``python benchmarks/bench_fig2_cpu_scaling.py`` for the full sweep,
or ``pytest benchmarks/bench_fig2_cpu_scaling.py --benchmark-only`` for
a timed subset.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from common import (
    StageTimer,
    format_table,
    simulate_cell,
    simulate_config,
    standard_parser,
    write_bench_json,
    write_csv,
)
from repro.sparse.collection import collection_names

CORE_COUNTS = (1, 3, 6, 9, 12)
POLICIES = ("native", "starpu", "parsec")


def figure2_rows(scale: float = 1.0, names=None, *,
                 verify: bool = False) -> tuple[list[list], list[dict]]:
    timer = StageTimer()
    rows = []
    cells = []
    for name in names or collection_names():
        for policy in POLICIES:
            row = [name, policy]
            for cores in CORE_COUNTS:
                cell = simulate_cell(
                    name, policy, scale=scale, n_cores=cores,
                    verify=verify,
                )
                cells.append(cell)
                row.append(f"{cell['gflops']:.2f}")
            rows.append(row)
            timer.note(f"fig2 {name}/{policy}: " + " ".join(row[2:]))
    return rows, cells


HEADERS = ["Matrix", "Scheduler"] + [f"{c} cores" for c in CORE_COUNTS]


def main(argv=None) -> None:
    args = standard_parser(__doc__).parse_args(argv)
    rows, cells = figure2_rows(args.scale, args.matrices,
                               verify=args.verify)
    print(format_table(HEADERS, rows))
    path = write_csv("fig2_cpu_scaling.csv", HEADERS, rows)
    print(f"\nwritten: {path}")
    path = write_bench_json("fig2_cpu_scaling", {
        "figure": "fig2_cpu_scaling",
        "scale": args.scale,
        "verified": args.verify,
        "cells": cells,
    })
    print(f"written: {path}")


# ----------------------------------------------------------------------
# pytest-benchmark entries
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", POLICIES)
def test_simulate_12_cores(benchmark, policy):
    """Time one 12-core simulation cell on a reduced-scale analogue."""
    g = benchmark(
        simulate_config, "Geo1438", policy, scale=0.5, n_cores=12
    )
    assert g > 0


def test_scaling_shape_quick():
    """Smoke-check the headline Fig. 2 shapes at reduced scale."""
    g1 = simulate_config("Geo1438", "parsec", scale=0.5, n_cores=1)
    g12 = simulate_config("Geo1438", "parsec", scale=0.5, n_cores=12)
    assert g12 > 2.5 * g1  # strong scaling happens
    s12 = simulate_config("Geo1438", "starpu", scale=0.5, n_cores=12)
    assert g12 >= s12 * 0.95  # PaRSEC >= StarPU (cache reuse)


if __name__ == "__main__":
    main()
