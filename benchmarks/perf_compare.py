"""Perf-regression gate for the threaded runtime.

Diffs a fresh ``bench_threaded.py`` report against the committed
baseline (``results/BENCH_threaded.json``) and **fails (exit 1) on a
>15% slowdown** in any cell the two runs share.  Two metrics are gated
independently:

* **replay makespan** — the deterministic schedule-quality metric
  (flops-weighted replay of the executed order).  Machine-independent,
  so it is gated unconditionally; this is the check that catches a
  mis-prioritized or otherwise degraded scheduler even when raw wall
  time looks fine (``make selftest`` proves it does).
* **normalized wall clock** — wall seconds scaled by each run's dense
  GEMM calibration (``wall_s * calib_gflops``), cancelling first-order
  machine-speed differences between the baseline host and the current
  one.  Raw wall time is inherently noisy on shared/undersized CI
  boxes (measured run-to-run spread ~30% on a busy single-core host),
  so the wall gate uses its own, laxer threshold (``--wall-threshold``,
  default 50%): it is a gross-failure backstop — an accidental sleep,
  lock convoy or quadratic blowup — not a fine regression detector.
  Disable with ``--no-wall`` when comparing across very different
  machines.

When either report lacks a usable calibration (``calib_gflops``
missing/zero), the wall gate silently used to fall back to comparing
*raw* wall seconds across hosts — exactly the machine-dependent noise
the calibration exists to cancel.  The fallback still happens (old
baselines stay comparable) but it is now **loud**: a warning on stderr
names the uncalibrated report(s), and ``--strict-calibration`` turns
the condition into a hard failure for CI lanes that must never gate on
raw cross-host wall clock.

``--gate-variants`` adds a third, *within-report* check on the NEW
report alone: every rung of the variant ladder must not be slower than
the rung below it (``VARIANT_PAIRS``) — every ``opt`` cell (cached
scatter maps + fan-in accumulation + DLᵀ buffer) against its ``base``
(uncached) sibling, and every ``compiled`` cell (jit kernels + 2D row
split) against its ``opt`` sibling — on replay makespan and on raw
wall clock; same host, same run, so no calibration is needed.  This is
the gate that keeps the hot-path optimizations actually optimizing
(each path must never fall behind the path it exists to beat).

``--gate-adaptive`` adds a fourth, *within-report* check on the NEW
report alone: for every (matrix, workers, scale, variant) group that
has both, the ``adaptive`` scheduler's replay makespan must stay
within ``--adaptive-threshold`` of the static ``priority`` cell's.
The adaptive scheduler ranks by measured expected durations plus a
transfer-cost term (the dmda idea); this gate is the proof it never
loses to the static critical-path ranking it refines.  Only the
deterministic replay metric is gated — both cells share a host, but
adaptive's whole point is a *schedule* improvement, and wall noise on
small quick-sweep problems would drown it.

Usage::

    python benchmarks/perf_compare.py BASELINE.json NEW.json
    python benchmarks/perf_compare.py --threshold 0.10 base.json new.json
    python benchmarks/perf_compare.py --gate-variants base.json new.json

``make perf-smoke`` runs the quick sweep and gates it against the
committed baseline (with ``--gate-variants --gate-adaptive``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from common import format_table

#: Default tolerated slowdown (ratio - 1) before a cell is a regression.
DEFAULT_THRESHOLD = 0.15

#: Default wall-clock tolerance — deliberately lax (see module docstring).
DEFAULT_WALL_THRESHOLD = 0.50

#: Cell identity: one comparable configuration across runs.  ``variant``
#: defaults to ``"base"`` so schema-1 baselines (no variant field, all
#: cells uncached-era) keep comparing against today's base cells.
_KEY_FIELDS = ("matrix", "scheduler", "n_workers", "scale", "variant")

#: Tolerated within-pair slowdown for ``--gate-variants``.  Tight on
#: model (deterministic replay must show the win); wall gets the usual
#: noise allowance but both cells ran on the same host in the same
#: process, so the lax cross-host threshold is not needed.
DEFAULT_VARIANT_THRESHOLD = 0.02
DEFAULT_VARIANT_WALL_THRESHOLD = 0.25

#: The variant ladder's gated rungs, as (variant, reference,
#: extra_model_allowance) triples: each variant cell must not be slower
#: than its reference sibling.  ``opt/base`` replays the *same* DAG, so
#: it gets the tight base threshold alone; ``compiled/opt`` compares
#: the 2D-split DAG's replay against the unsplit one's — two different
#: task sets whose executed orders wiggle the ratio by a few percent
#: run-to-run (measured spread ~4% on the quick cell) — so its model
#: gate gets a +3% allowance on top of ``--variant-threshold``.
#: Mirrors ``bench_threaded.VARIANT_PAIRS``.
VARIANT_PAIRS = (("opt", "base", 0.0), ("compiled", "opt", 0.03))

#: Tolerated adaptive-vs-priority replay slowdown for
#: ``--gate-adaptive``.  Looser than the variant gate: on quick-sweep
#: problem sizes the two schedules are near-identical and the replay
#: model quantizes small ordering differences.
DEFAULT_ADAPTIVE_THRESHOLD = 0.05


def is_calibrated(report: dict) -> bool:
    """Does the report carry a usable dense-GEMM calibration?"""
    return float(report.get("calib_gflops") or 0.0) > 0.0


def load_report(path) -> dict:
    with open(path) as fh:
        report = json.load(fh)
    if report.get("bench") != "threaded" or "cells" not in report:
        raise ValueError(f"{path} is not a bench_threaded report")
    return report


def index_cells(report: dict) -> dict[tuple, dict]:
    return {
        tuple(c.get(f, "base") for f in _KEY_FIELDS): c
        for c in report["cells"]
    }


def compare(
    baseline: dict,
    new: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    check_wall: bool = True,
) -> tuple[bool, list[dict]]:
    """Compare two reports cell-by-cell.

    Returns ``(ok, rows)``; ``rows`` has one entry per common cell with
    the two ratios and a verdict.  ``ok`` is False when any gated ratio
    exceeds ``1 + threshold`` — or when the runs share no cells at all
    (a silently-empty comparison must not pass a CI gate).
    """
    base_cells = index_cells(baseline)
    new_cells = index_cells(new)
    common = sorted(set(base_cells) & set(new_cells), key=str)
    rows: list[dict] = []
    ok = True
    if not common:
        return False, rows

    base_calib = float(baseline.get("calib_gflops") or 0.0)
    new_calib = float(new.get("calib_gflops") or 0.0)
    calibrated = is_calibrated(baseline) and is_calibrated(new)

    for key in common:
        b, n = base_cells[key], new_cells[key]
        model_ratio = (
            n["model_makespan_s"] / b["model_makespan_s"]
            if b["model_makespan_s"] > 0 else 1.0
        )
        if calibrated:
            # wall * calib ~ machine-free "work units": a run on a 2x
            # faster host halves wall_s but doubles calib_gflops.
            wall_ratio = (
                (n["wall_s"] * new_calib) / (b["wall_s"] * base_calib)
                if b["wall_s"] > 0 else 1.0
            )
        else:
            wall_ratio = (
                n["wall_s"] / b["wall_s"] if b["wall_s"] > 0 else 1.0
            )
        bad_model = model_ratio > 1.0 + threshold
        bad_wall = check_wall and wall_ratio > 1.0 + wall_threshold
        if bad_model or bad_wall:
            ok = False
        rows.append({
            "key": key,
            "model_ratio": model_ratio,
            "wall_ratio": wall_ratio,
            "regression": bool(bad_model or bad_wall),
            "gated_on": "model" if bad_model else "wall" if bad_wall else "",
        })
    return ok, rows


def compare_variants(
    report: dict,
    *,
    threshold: float = DEFAULT_VARIANT_THRESHOLD,
    wall_threshold: float = DEFAULT_VARIANT_WALL_THRESHOLD,
) -> tuple[bool, list[dict]]:
    """Within one report: gate every rung of the variant ladder.

    For each ``VARIANT_PAIRS`` entry ``(var, ref, extra)`` the ratio is
    var/ref, so a model ratio above ``1 + threshold + extra`` means that
    rung lost to the path it replaces (opt to uncached base, compiled
    to opt; ``extra`` is the pair's cross-DAG replay allowance).  Both
    cells came from the same process on the same host, so wall seconds
    are compared raw (no calibration) with a noise allowance.  Returns
    ``(ok, rows)``; each row carries the ``pair`` it gates.  ``ok`` is
    False on any regression — or when the report has no gateable pairs
    at all (an empty gate must not pass).
    """
    cells = index_cells(report)
    rows: list[dict] = []
    ok = True
    for var, ref_var, extra in VARIANT_PAIRS:
        for key in sorted(cells, key=str):
            if key[-1] != var:
                continue
            ref = cells.get(key[:-1] + (ref_var,))
            if ref is None:
                continue
            c = cells[key]
            model_ratio = (
                c["model_makespan_s"] / ref["model_makespan_s"]
                if ref["model_makespan_s"] > 0 else 1.0
            )
            wall_ratio = (
                c["wall_s"] / ref["wall_s"] if ref["wall_s"] > 0 else 1.0
            )
            bad_model = model_ratio > 1.0 + threshold + extra
            bad_wall = wall_ratio > 1.0 + wall_threshold
            if bad_model or bad_wall:
                ok = False
            rows.append({
                "key": key[:-1],
                "pair": f"{var}/{ref_var}",
                "model_ratio": model_ratio,
                "wall_ratio": wall_ratio,
                "regression": bool(bad_model or bad_wall),
                "gated_on":
                    "model" if bad_model else "wall" if bad_wall else "",
            })
    if not rows:
        ok = False
    return ok, rows


def compare_adaptive(
    report: dict,
    *,
    threshold: float = DEFAULT_ADAPTIVE_THRESHOLD,
) -> tuple[bool, list[dict]]:
    """Within one report: gate every ``adaptive`` cell against the
    ``priority`` cell of the same (matrix, workers, scale, variant).

    Ratio is adaptive/priority on the deterministic replay makespan; a
    ratio above ``1 + threshold`` means the history-driven ranking lost
    to the static critical-path ranking it refines.  Returns
    ``(ok, rows)``; ``ok`` is False on any regression — or when the
    report has no adaptive/priority pairs at all (an empty gate must
    not pass).
    """
    cells = index_cells(report)
    rows: list[dict] = []
    ok = True
    for key in sorted(cells, key=str):
        if key[1] != "adaptive":
            continue
        static = cells.get((key[0], "priority") + key[2:])
        if static is None:
            continue
        c = cells[key]
        model_ratio = (
            c["model_makespan_s"] / static["model_makespan_s"]
            if static["model_makespan_s"] > 0 else 1.0
        )
        bad = model_ratio > 1.0 + threshold
        if bad:
            ok = False
        rows.append({
            "key": (key[0],) + key[2:],
            "model_ratio": model_ratio,
            "regression": bool(bad),
            "gated_on": "model" if bad else "",
        })
    if not rows:
        ok = False
    return ok, rows


def main(argv=None) -> int:
    p = argparse.ArgumentParser(
        description="fail on >threshold slowdown vs the committed baseline"
    )
    p.add_argument("baseline", type=Path,
                   help="committed report (results/BENCH_threaded.json)")
    p.add_argument("new", type=Path, help="freshly produced report")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   help="tolerated replay-makespan slowdown fraction "
                        f"(default {DEFAULT_THRESHOLD:.2f} = 15%%)")
    p.add_argument("--wall-threshold", type=float,
                   default=DEFAULT_WALL_THRESHOLD,
                   help="tolerated normalized-wall slowdown fraction "
                        f"(default {DEFAULT_WALL_THRESHOLD:.2f}; lax on "
                        "purpose — wall is a gross-failure backstop)")
    p.add_argument("--no-wall", action="store_true",
                   help="gate only the deterministic replay metric "
                        "(use across very different hosts)")
    p.add_argument("--strict-calibration", action="store_true",
                   help="fail (exit 1) when the wall gate would fall "
                        "back to raw cross-host wall seconds because "
                        "either report lacks calib_gflops")
    p.add_argument("--gate-variants", action="store_true",
                   help="also fail if, WITHIN the new report, any "
                        "variant-ladder rung is slower than its "
                        "reference sibling (opt vs base, compiled vs "
                        "opt): each path must not lose to the one it "
                        "replaces")
    p.add_argument("--variant-threshold", type=float,
                   default=DEFAULT_VARIANT_THRESHOLD,
                   help="tolerated within-pair replay slowdown fraction "
                        f"(default {DEFAULT_VARIANT_THRESHOLD:.2f})")
    p.add_argument("--variant-wall-threshold", type=float,
                   default=DEFAULT_VARIANT_WALL_THRESHOLD,
                   help="tolerated within-pair wall slowdown fraction "
                        f"(default {DEFAULT_VARIANT_WALL_THRESHOLD:.2f})")
    p.add_argument("--gate-adaptive", action="store_true",
                   help="also fail if, WITHIN the new report, any "
                        "'adaptive' cell's replay makespan is worse "
                        "than the 'priority' cell of the same group "
                        "(measured history must not lose to the static "
                        "ranking it refines)")
    p.add_argument("--adaptive-threshold", type=float,
                   default=DEFAULT_ADAPTIVE_THRESHOLD,
                   help="tolerated adaptive-vs-priority replay "
                        "slowdown fraction "
                        f"(default {DEFAULT_ADAPTIVE_THRESHOLD:.2f})")
    args = p.parse_args(argv)

    baseline = load_report(args.baseline)
    new = load_report(args.new)

    calib_ok = True
    if not args.no_wall:
        uncal = [str(path) for path, rep in
                 ((args.baseline, baseline), (args.new, new))
                 if not is_calibrated(rep)]
        if uncal:
            print(
                "WARNING: no calib_gflops in "
                + ", ".join(uncal)
                + " — the wall gate is comparing RAW wall seconds "
                "across hosts (machine-dependent; the calibrated gate "
                "exists to cancel exactly this).  Re-run the bench to "
                "refresh calibration, or pass --no-wall.",
                file=sys.stderr,
            )
            if args.strict_calibration:
                print("FAIL: --strict-calibration forbids the raw-wall "
                      "fallback", file=sys.stderr)
                calib_ok = False

    ok, rows = compare(
        baseline, new,
        threshold=args.threshold,
        wall_threshold=args.wall_threshold,
        check_wall=not args.no_wall,
    )

    if not rows:
        print("FAIL: the two reports share no comparable cells "
              f"(keys: {', '.join(_KEY_FIELDS)})")
        return 1

    headers = ["matrix", "sched", "workers", "scale", "variant",
               "model_ratio", "wall_ratio", "verdict"]
    table = []
    for r in rows:
        matrix, sched, workers, scale, variant = r["key"]
        table.append([
            matrix, sched, workers, scale, variant,
            f"{r['model_ratio']:.3f}", f"{r['wall_ratio']:.3f}",
            f"REGRESSION({r['gated_on']})" if r["regression"] else "ok",
        ])
    print(format_table(headers, table))
    n_bad = sum(1 for r in rows if r["regression"])
    limits = (f"model {1.0 + args.threshold:.2f}x, "
              f"wall {1.0 + args.wall_threshold:.2f}x")
    if ok:
        print(f"PASS: {len(rows)} cell(s) within the baseline limits "
              f"({limits})")
    else:
        print(f"REGRESSION: {n_bad}/{len(rows)} cell(s) over the limits "
              f"({limits})")

    if args.gate_variants:
        v_ok, v_rows = compare_variants(
            new,
            threshold=args.variant_threshold,
            wall_threshold=args.variant_wall_threshold,
        )
        print()
        if not v_rows:
            pairs = ", ".join(f"{v}/{r}" for v, r, _ in VARIANT_PAIRS)
            print("FAIL: --gate-variants found no variant cell pairs "
                  f"({pairs}) in the new report")
        else:
            v_table = []
            for r in v_rows:
                matrix, sched, workers, scale = r["key"]
                v_table.append([
                    matrix, sched, workers, scale, r["pair"],
                    f"{r['model_ratio']:.3f}", f"{r['wall_ratio']:.3f}",
                    f"REGRESSION({r['gated_on']})"
                    if r["regression"] else "ok",
                ])
            print(format_table(
                ["matrix", "sched", "workers", "scale", "pair",
                 "pair_model", "pair_wall", "verdict"],
                v_table,
            ))
            v_limits = (
                f"model {1.0 + args.variant_threshold:.2f}x, "
                f"wall {1.0 + args.variant_wall_threshold:.2f}x"
            )
            n_vbad = sum(1 for r in v_rows if r["regression"])
            if v_ok:
                print(f"PASS: every variant rung beats its reference "
                      f"in {len(v_rows)} pair(s) (limits {v_limits})")
            else:
                print(f"VARIANT REGRESSION: {n_vbad}/{len(v_rows)} "
                      f"pair(s) over the limits ({v_limits})")
        ok = ok and v_ok

    if args.gate_adaptive:
        a_ok, a_rows = compare_adaptive(
            new, threshold=args.adaptive_threshold,
        )
        print()
        if not a_rows:
            print("FAIL: --gate-adaptive found no adaptive/priority "
                  "cell pairs in the new report")
        else:
            a_table = []
            for r in a_rows:
                matrix, workers, scale, variant = r["key"]
                a_table.append([
                    matrix, workers, scale, variant,
                    f"{r['model_ratio']:.3f}",
                    f"REGRESSION({r['gated_on']})"
                    if r["regression"] else "ok",
                ])
            print(format_table(
                ["matrix", "workers", "scale", "variant",
                 "adaptive/priority_model", "verdict"],
                a_table,
            ))
            n_abad = sum(1 for r in a_rows if r["regression"])
            if a_ok:
                print(f"PASS: adaptive holds priority's replay "
                      f"makespan in {len(a_rows)} pair(s) (limit "
                      f"{1.0 + args.adaptive_threshold:.2f}x)")
            else:
                print(f"ADAPTIVE REGRESSION: {n_abad}/{len(a_rows)} "
                      f"pair(s) over the limit "
                      f"({1.0 + args.adaptive_threshold:.2f}x)")
        ok = ok and a_ok

    return 0 if ok and calib_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
