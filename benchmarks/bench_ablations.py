"""Ablation studies on the design choices the paper calls out.

A. Amalgamation fill ratio (§V: the default "has been slightly increased
   to allow up to 12 % more fill-in to build larger blocks"): sweep the
   ratio, report nnz(L), block statistics, and simulated GFlop/s.
B. Panel split width (§III: "supernodes of the higher levels are split
   vertically prior to the factorization"): task-granularity trade-off.
C. Stream count on one GPU (§V-C / Fig. 3).
D. Scheduler micro-features: cache-reuse, dedicated GPU workers,
   per-task overhead — each toggled on the PaRSEC/StarPU policies.
E. Leaf-subtree task fusion (§VI future work: "merging leaves or
   subtrees together yields bigger, more computationally intensive
   tasks").
F. GPU kernel what-if: the hybrid run with each Figure-3 kernel model,
   quantifying what the sparse scatter kernel costs end-to-end.
G. Left- vs right-looking update grouping (SIII's two variants).

Run ``python benchmarks/bench_ablations.py`` for all seven tables.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np
import pytest

from common import SPLIT_WIDTH, format_table, write_csv
from repro.dag import build_dag, dag_summary
from repro.machine import mirage, simulate
from repro.machine.model import CpuSpec, MachineSpec
from repro.runtime import get_policy
from repro.sparse.collection import load_matrix
from repro.symbolic import SymbolicOptions, analyze

MATRIX = "audi"
SCALE = 0.8


def _analysis(ratio=0.12, split=SPLIT_WIDTH):
    matrix = load_matrix(MATRIX, scale=SCALE)
    return analyze(
        matrix,
        SymbolicOptions(amalgamation_ratio=ratio, split_max_width=split),
    )


def _gflops(res, policy="parsec", **machine_kw):
    dag = build_dag(res.symbol, "llt", granularity="2d")
    machine = mirage(**{"n_cores": 12, **machine_kw})
    return simulate(
        dag, machine, get_policy(policy), collect_trace=False
    ).gflops


# ----------------------------------------------------------------------
# A. amalgamation sweep
# ----------------------------------------------------------------------

def amalgamation_rows() -> list[list]:
    rows = []
    for ratio in (None, 0.0, 0.05, 0.12, 0.25, 0.40):
        res = _analysis(ratio=ratio)
        sym = res.symbol
        dag = build_dag(sym, "llt")
        rows.append([
            "exact" if ratio is None else f"{ratio:.2f}",
            sym.nnz(),
            sym.n_cblk,
            dag.n_tasks,
            f"{np.diff(sym.cblk_ptr).mean():.1f}",
            f"{_gflops(res):.2f}",
        ])
    return rows


A_HEADERS = ["ratio", "nnzL", "cblks", "tasks", "avg width", "GFlop/s @12c"]


# ----------------------------------------------------------------------
# B. split-width sweep
# ----------------------------------------------------------------------

def split_rows() -> list[list]:
    rows = []
    for split in (None, 32, 64, 96, 128, 256):
        res = _analysis(split=split)
        dag = build_dag(res.symbol, "llt")
        s = dag_summary(dag)
        rows.append([
            "none" if split is None else split,
            res.symbol.n_cblk,
            dag.n_tasks,
            f"{s.avg_parallelism:.2f}",
            f"{_gflops(res, n_cores=1):.2f}",
            f"{_gflops(res, n_cores=12):.2f}",
        ])
    return rows


B_HEADERS = ["split", "cblks", "tasks", "avg ||ism", "GF/s @1c", "GF/s @12c"]


# ----------------------------------------------------------------------
# C. stream-count sweep
# ----------------------------------------------------------------------

def stream_rows() -> list[list]:
    # Streams pay off when the GPU queue holds many kernels too small to
    # fill the device alone: the largest collection matrix shows it best.
    matrix = load_matrix("Serena", scale=1.0)
    res = analyze(
        matrix,
        SymbolicOptions(amalgamation_ratio=0.12, split_max_width=96),
    )
    dag = build_dag(res.symbol, "ldlt", granularity="2d")
    rows = []
    for streams in (1, 2, 3):
        g = simulate(
            dag, mirage(n_cores=12, n_gpus=1, streams_per_gpu=streams),
            get_policy("parsec"), collect_trace=False,
        ).gflops
        rows.append([streams, f"{g:.2f}"])
    return rows


C_HEADERS = ["streams", "GFlop/s @12c+1GPU (Serena)"]


# ----------------------------------------------------------------------
# D. policy micro-features
# ----------------------------------------------------------------------

def feature_rows() -> list[list]:
    res = _analysis()
    dag = build_dag(res.symbol, "llt")
    rows = []

    # Cache-reuse bonus on/off (PaRSEC multicore).
    for bonus, label in ((1.10, "parsec + cache reuse"),
                         (1.0, "parsec, reuse disabled")):
        machine = MachineSpec(n_cores=12, cpu=CpuSpec(cache_reuse_bonus=bonus))
        g = simulate(dag, machine, get_policy("parsec"),
                     collect_trace=False).gflops
        rows.append([label, f"{g:.2f}"])

    # Dedicated GPU workers (StarPU) vs shared cores (PaRSEC), 3 GPUs.
    for policy in ("starpu", "parsec"):
        g = simulate(dag, mirage(12, n_gpus=3), get_policy(policy),
                     collect_trace=False).gflops
        rows.append([f"{policy} @12c+3GPU", f"{g:.2f}"])

    # Per-task overhead sensitivity on the StarPU policy.
    for ovh in (1e-6, 3e-6, 10e-6):
        g = simulate(dag, mirage(12),
                     get_policy("starpu", task_overhead_s=ovh),
                     collect_trace=False).gflops
        rows.append([f"starpu overhead {ovh * 1e6:.0f}us", f"{g:.2f}"])
    return rows


D_HEADERS = ["configuration", "GFlop/s"]


# ----------------------------------------------------------------------
# E. leaf-subtree fusion (the paper's §VI future work)
# ----------------------------------------------------------------------

def fusion_rows() -> list[list]:
    res = _analysis()
    rows = []
    for thr in (None, 1e4, 1e5, 1e6, 1e7):
        dag = build_dag(res.symbol, "llt", fuse_subtree_flops=thr)
        g = simulate(
            dag, mirage(n_cores=12),
            get_policy("parsec", task_overhead_s=5e-6),
            collect_trace=False,
        ).gflops
        rows.append([
            "off" if thr is None else f"{thr:.0e}",
            dag.n_tasks,
            f"{g:.2f}",
        ])
    return rows


E_HEADERS = ["fuse threshold (flop)", "tasks", "GFlop/s @12c (5us overhead)"]


# ----------------------------------------------------------------------
# F. GPU kernel what-if: how much does the sparse scatter kernel cost?
# ----------------------------------------------------------------------

def gpu_kernel_rows() -> list[list]:
    """Re-run the hybrid simulation with each Figure-3 kernel model —
    'sparse' is the only one a real solver can use on gappy panels;
    'cublas' bounds what a dense-writable layout could buy."""
    from repro.machine.perfmodel import GpuKernelModel

    matrix = load_matrix("Serena", scale=1.0)
    res = analyze(
        matrix, SymbolicOptions(amalgamation_ratio=0.12, split_max_width=96)
    )
    dag = build_dag(res.symbol, "ldlt", granularity="2d")
    rows = []
    # The schedulers adapt the CPU/GPU balance to the kernel speed, so
    # report both the end-to-end rate and the achieved GPU throughput.
    for kernel in ("sparse", "astra", "cublas"):
        r = simulate(
            dag, mirage(n_cores=4, n_gpus=3, streams_per_gpu=3),
            get_policy("parsec"),
            gpu_model=GpuKernelModel(kernel),
        )
        gpu_busy = sum(v for k, v in r.busy.items() if k.startswith("gpu"))
        gpu_flops = sum(
            dag.flops[e.task]
            for e in r.trace.events
            if e.resource.startswith("gpu")
        )
        gpu_rate = gpu_flops / gpu_busy / 1e9 if gpu_busy else 0.0
        rows.append([kernel, f"{r.gflops:.2f}", f"{gpu_rate:.1f}"])
    return rows


F_HEADERS = ["GPU kernel model", "GFlop/s @4c+3GPU", "achieved GPU GF/s"]


# ----------------------------------------------------------------------
# G. left- vs right-looking update grouping (paper SIII)
# ----------------------------------------------------------------------

def looking_rows() -> list[list]:
    """Right-looking (PaStiX's choice) applies a panel's updates eagerly;
    left-looking gathers them at the target.  Same dependency edges,
    different work placement: the right-looking variant's shorter
    critical path shows as better scaling."""
    from repro.dag import critical_path

    res = _analysis()
    rows = []
    for gran, label in (("1d", "right-looking"), ("1d-left", "left-looking")):
        dag = build_dag(res.symbol, "llt", granularity=gran)
        cp, _ = critical_path(dag)
        cells = [label, f"{cp / 1e6:.1f}"]
        for cores in (1, 12):
            g = simulate(dag, mirage(n_cores=cores), get_policy("native"),
                         collect_trace=False).gflops
            cells.append(f"{g:.2f}")
        rows.append(cells)
    return rows


G_HEADERS = ["variant", "crit. path (MFlop)", "GF/s @1c", "GF/s @12c"]


def main(argv=None) -> None:
    import argparse

    argparse.ArgumentParser(description=__doc__).parse_args(argv)
    for title, headers, rows, csv in (
        ("A. amalgamation ratio", A_HEADERS, amalgamation_rows(), "ablation_amalgamation.csv"),
        ("B. split width", B_HEADERS, split_rows(), "ablation_split.csv"),
        ("C. stream count", C_HEADERS, stream_rows(), "ablation_streams.csv"),
        ("D. policy features", D_HEADERS, feature_rows(), "ablation_features.csv"),
        ("E. leaf-subtree fusion", E_HEADERS, fusion_rows(), "ablation_fusion.csv"),
        ("F. GPU kernel what-if", F_HEADERS, gpu_kernel_rows(), "ablation_gpu_kernel.csv"),
        ("G. left vs right looking", G_HEADERS, looking_rows(), "ablation_looking.csv"),
    ):
        print(f"\n=== {title} ===")
        print(format_table(headers, rows))
        write_csv(csv, headers, rows)


# ----------------------------------------------------------------------
# pytest-benchmark entries
# ----------------------------------------------------------------------


def test_amalgamation_sweep(benchmark):
    rows = benchmark.pedantic(amalgamation_rows, rounds=1, iterations=1)
    nnz = [int(r[1]) for r in rows]
    assert nnz == sorted(nnz)  # more budget, more fill


def test_split_sweep(benchmark):
    rows = benchmark.pedantic(split_rows, rounds=1, iterations=1)
    tasks = [int(r[2]) for r in rows]
    assert tasks[1] >= tasks[-1]  # finer split => more tasks


def test_stream_sweep(benchmark):
    rows = benchmark.pedantic(stream_rows, rounds=1, iterations=1)
    assert float(rows[1][1]) >= float(rows[0][1]) * 0.95


def test_subtree_fusion(benchmark):
    rows = benchmark.pedantic(fusion_rows, rounds=1, iterations=1)
    tasks = [int(r[1]) for r in rows]
    assert tasks[0] >= tasks[-1]  # fusion shrinks the DAG


def test_gpu_kernel_whatif(benchmark):
    rows = benchmark.pedantic(gpu_kernel_rows, rounds=1, iterations=1)
    by = {r[0]: float(r[2]) for r in rows}  # achieved GPU throughput
    assert by["cublas"] >= by["astra"] >= by["sparse"]


def test_looking_variants(benchmark):
    rows = benchmark.pedantic(looking_rows, rounds=1, iterations=1)
    by = {r[0]: r for r in rows}
    # Same serial work; right-looking scales at least as well.
    assert float(by["right-looking"][3]) >= 0.95 * float(by["left-looking"][3])


def test_policy_features(benchmark):
    rows = benchmark.pedantic(feature_rows, rounds=1, iterations=1)
    by_label = {r[0]: float(r[1]) for r in rows}
    # The bonus shortens tasks but can also perturb the schedule; allow a
    # small noise band around "reuse helps".
    assert (
        by_label["parsec + cache reuse"]
        >= 0.97 * by_label["parsec, reuse disabled"]
    )
    assert (
        by_label["starpu overhead 1us"] >= by_label["starpu overhead 10us"]
    )


if __name__ == "__main__":
    main()
