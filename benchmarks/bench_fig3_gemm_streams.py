"""Figure 3 — multi-stream DGEMM kernel study.

Average throughput of 100 kernel calls (``C -= A·Bᵀ``, N = K = 128)
distributed round-robin over 1–3 streams, for the three kernels of the
paper: the cuBLAS library, the auto-tuned ASTRA kernel, and the sparse
adaptation of ASTRA that scatters directly into a gappy panel twice as
tall as the product.

Shapes to reproduce (paper §V-B):

* the cuBLAS square-matrix peak (~302 GFlop/s) is never reached on this
  rectangular shape;
* ASTRA sits ~15 % under cuBLAS; the sparse adaptation lower still, and
  the taller the destination panel the lower its throughput;
* one stream is always worst; a second stream helps everywhere and
  especially small M; a third helps only below M ≈ 1000.

Run ``python benchmarks/bench_fig3_gemm_streams.py`` for the full sweep.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import argparse

import pytest

from dataclasses import asdict

from common import format_table, write_bench_json, write_csv
from repro.machine.perfmodel import CUBLAS_PEAK_GFLOPS
from repro.machine.streamsim import simulate_kernel_burst

M_SWEEP = (128, 256, 512, 1000, 2000, 3000, 5000, 7500, 10000)
KERNELS = ("cublas", "astra", "sparse")
STREAMS = (1, 2, 3)


def figure3_rows(m_sweep=M_SWEEP) -> tuple[list[list], list[dict]]:
    rows = []
    cells = []
    for m in m_sweep:
        row = [m]
        for kernel in KERNELS:
            for streams in STREAMS:
                r = simulate_kernel_burst(
                    kernel, m, streams=streams, height_ratio=2.0
                )
                cells.append(asdict(r))
                row.append(f"{r.gflops:.1f}")
        rows.append(row)
    return rows, cells


HEADERS = ["M"] + [f"{k}-{s}s" for k in KERNELS for s in STREAMS]


def main(argv=None) -> None:
    argparse.ArgumentParser(description=__doc__).parse_args(argv)
    print(f"cuBLAS square-matrix peak: {CUBLAS_PEAK_GFLOPS} GFlop/s\n")
    rows, cells = figure3_rows()
    print(format_table(HEADERS, rows))
    path = write_csv("fig3_gemm_streams.csv", HEADERS, rows)
    print(f"\nwritten: {path}")
    path = write_bench_json("fig3_gemm_streams", {
        "figure": "fig3_gemm_streams",
        "cublas_peak_gflops": CUBLAS_PEAK_GFLOPS,
        "cells": cells,
    })
    print(f"written: {path}")


# ----------------------------------------------------------------------
# pytest-benchmark entries
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", KERNELS)
def test_burst_simulation(benchmark, kernel):
    """Time the 100-call burst simulation itself."""
    r = benchmark(simulate_kernel_burst, kernel, 2000, streams=3)
    assert 0 < r.gflops <= CUBLAS_PEAK_GFLOPS


def test_figure3_invariants_quick():
    for m in (256, 2000):
        c1 = simulate_kernel_burst("cublas", m, streams=1).gflops
        c2 = simulate_kernel_burst("cublas", m, streams=2).gflops
        a1 = simulate_kernel_burst("astra", m, streams=1).gflops
        s1 = simulate_kernel_burst("sparse", m, streams=1).gflops
        assert c2 > c1 and c1 > a1 > s1


if __name__ == "__main__":
    main()
