"""Micro-benchmark of the numeric hot-path kernels (PR: compiled backend).

Times the three kernels :mod:`repro.kernels.compiled` accelerates —
the fused GEMM+scatter update, the fan-in merge, and the assembly
gather — on synthetic operands across a ladder of update shapes, and
reports each shape's measured rate.  Runs against whatever backend is
available: with numba installed the jit kernels are exercised (after a
warmup call so compilation never pollutes a timing), without it the
bit-identical numpy fallbacks are timed instead; the report records
which backend produced the numbers.

Besides the human-readable table/CSV the script emits
``results/BENCH_kernels.json`` carrying a top-level ``"buckets"``
section — ``{bucket_key(UPDATE, flops): [n, sum_flops, sum_seconds]}``
— which :meth:`repro.runtime.adaptive.PerfHistory.seed_from_results`
consumes directly, so the adaptive scheduler's duration model (and
:func:`repro.runtime.adaptive.suggest_blocking`'s split thresholds)
can be seeded from *measured* per-size GEMM rates instead of one
global average.
"""

from __future__ import annotations

import time

import numpy as np

from common import StageTimer, format_table, write_bench_json, write_csv
from repro.dag.tasks import TaskKind
from repro.kernels.compiled import (
    HAVE_NUMBA,
    fused_gemm_scatter,
    gather_assign,
    merge_add,
)
from repro.resilience.health import bucket_key

SCHEMA_VERSION = 1

#: Update-shaped GEMM ladder: (m, n, w) with m = 4w, n = w — the tall
#: couple shapes the 2D row splitter carves into parts.
SHAPES = [(64, 16, 16), (128, 32, 32), (256, 64, 64), (384, 96, 96)]


def _operands(m: int, n: int, w: int, seed: int):
    """Synthetic couple operands with a realistic gappy row map."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, w))
    b = rng.standard_normal((n, w))
    height = 2 * m + n
    out = np.zeros((height, n))
    rows = np.sort(rng.choice(height, size=m, replace=False)).astype(np.int64)
    cols = np.arange(n, dtype=np.int64)
    return a, b, out, rows, cols


def _time_calls(fn, repeats: int, flops_per_call: float):
    """Total seconds over ``repeats`` batches; returns (n_calls, secs).

    Each batch loops the call enough times that tiny kernels are not
    timed at clock resolution (~2^22 flops per batch).
    """
    inner = max(1, int(2**22 / max(flops_per_call, 1.0)))
    fn()  # warmup: jit compilation (numba) / cache warming (numpy)
    total = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        total += time.perf_counter() - t0
    return repeats * inner, total


def run(repeats: int = 5, seed: int = 0) -> dict:
    timer = StageTimer()
    cells: list[dict] = []
    buckets: dict[str, list[float]] = {}
    for m, n, w in SHAPES:
        a, b, out, rows, cols = _operands(m, n, w, seed)
        acc = np.zeros_like(out)
        contrib = a @ b.T
        vals = contrib[:, 0].copy()
        rloc = rows.copy()
        cloc = np.zeros(m, dtype=np.int64)

        gemm_flops = 2.0 * m * n * w
        merge_flops = float(m * n)          # one add per touched entry
        gather_flops = float(m)             # one store per entry

        kernels = [
            ("gemm-scatter", gemm_flops,
             lambda: fused_gemm_scatter(a, b, out, rows, cols)),
            ("merge-add", merge_flops,
             lambda: merge_add(acc, rows, cols, contrib)),
            ("gather-assign", gather_flops,
             lambda: gather_assign(out, rloc, cloc, vals)),
        ]
        for kname, flops, fn in kernels:
            n_calls, secs = _time_calls(fn, repeats, flops)
            rate = n_calls * flops / secs if secs > 0 else 0.0
            cells.append({
                "kernel": kname,
                "m": m, "n": n, "w": w,
                "flops_per_call": flops,
                "calls": n_calls,
                "seconds": secs,
                "gflops": rate / 1e9,
            })
            if kname == "gemm-scatter":
                # Only the GEMM rates seed the UPDATE duration model:
                # merge/gather are memory-bound bookkeeping whose
                # flop-rates would distort the nearest-bucket fallback.
                key = bucket_key(int(TaskKind.UPDATE), flops)
                bk = buckets.setdefault(key, [0.0, 0.0, 0.0])
                bk[0] += n_calls
                bk[1] += n_calls * flops
                bk[2] += secs
        timer.note(f"shape {m}x{n}x{w} done")

    payload = {
        "bench": "kernels",
        "schema_version": SCHEMA_VERSION,
        "have_numba": bool(HAVE_NUMBA),
        "kernels_backend": "compiled" if HAVE_NUMBA else "numpy",
        "repeats": repeats,
        "seed": seed,
        "buckets": buckets,
        "cells": cells,
    }
    return payload


def main() -> None:
    import argparse

    p = argparse.ArgumentParser(
        description="micro-benchmark the compiled/numpy numeric kernels"
    )
    p.add_argument("--repeats", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    args = p.parse_args()

    payload = run(repeats=args.repeats, seed=args.seed)
    headers = ["kernel", "m", "n", "w", "GFlop/s"]
    rows = [
        [c["kernel"], c["m"], c["n"], c["w"], f"{c['gflops']:.3f}"]
        for c in payload["cells"]
    ]
    print(f"backend: {payload['kernels_backend']} "
          f"(numba {'present' if payload['have_numba'] else 'absent'})")
    print(format_table(headers, rows))
    write_csv("bench_kernels.csv", headers, rows)
    path = write_bench_json("kernels", payload)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
