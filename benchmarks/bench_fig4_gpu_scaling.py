"""Figure 4 — GPU scaling study.

GFlop/s of the factorization with twelve CPU cores plus zero to three
GPUs, for StarPU and PaRSEC (the latter with 1 and 3 CUDA streams), on
the nine collection analogues.  The native PaStiX run (CPU-only) is the
reference bar.

Shapes to reproduce (paper §V-C):

* the runtimes exploit the GPUs: large matrices speed up substantially;
* afshell10 produces too few flops to benefit from GPUs at all;
* PaRSEC's multiple streams compensate StarPU's prefetching;
* StarPU dedicates a CPU core per GPU (its CPU pool shrinks), PaRSEC
  does not.

Run ``python benchmarks/bench_fig4_gpu_scaling.py`` for the full sweep.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from common import (
    StageTimer,
    format_table,
    simulate_cell,
    simulate_config,
    standard_parser,
    write_bench_json,
    write_csv,
)
from repro.sparse.collection import collection_names

GPU_COUNTS = (0, 1, 2, 3)
CONFIGS = (
    ("native", 1, "pastix(cpu)"),
    ("starpu", 1, "starpu"),
    ("parsec", 1, "parsec-1s"),
    ("parsec", 3, "parsec-3s"),
)


def figure4_rows(scale: float = 1.0, names=None, *,
                 verify: bool = False) -> tuple[list[list], list[dict]]:
    timer = StageTimer()
    rows = []
    cells = []
    for name in names or collection_names():
        for policy, streams, label in CONFIGS:
            row = [name, label]
            counts = (0,) if policy == "native" else GPU_COUNTS
            for g in GPU_COUNTS:
                if g not in counts:
                    row.append("-")
                    continue
                cell = simulate_cell(
                    name, policy, scale=scale, n_cores=12,
                    n_gpus=g, streams=streams, verify=verify,
                )
                cell["label"] = label
                cells.append(cell)
                row.append(f"{cell['gflops']:.2f}")
            rows.append(row)
            timer.note(f"fig4 {name}/{label}: " + " ".join(row[2:]))
    return rows, cells


HEADERS = ["Matrix", "Config"] + [f"{g} GPU" for g in GPU_COUNTS]


def main(argv=None) -> None:
    args = standard_parser(__doc__).parse_args(argv)
    rows, cells = figure4_rows(args.scale, args.matrices,
                               verify=args.verify)
    print(format_table(HEADERS, rows))
    path = write_csv("fig4_gpu_scaling.csv", HEADERS, rows)
    print(f"\nwritten: {path}")
    path = write_bench_json("fig4_gpu_scaling", {
        "figure": "fig4_gpu_scaling",
        "scale": args.scale,
        "verified": args.verify,
        "cells": cells,
    })
    print(f"written: {path}")


# ----------------------------------------------------------------------
# pytest-benchmark entries
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy,streams", [("starpu", 1), ("parsec", 3)])
def test_simulate_hybrid(benchmark, policy, streams):
    """Time one 12-core + 2-GPU simulation cell at reduced scale."""
    g = benchmark(
        simulate_config, "Geo1438", policy, scale=0.5,
        n_cores=12, n_gpus=2, streams=streams,
    )
    assert g > 0


def test_gpu_shapes_quick():
    """Smoke-check the headline Fig. 4 shapes at reduced scale."""
    big_cpu = simulate_config("Serena", "parsec", scale=0.6, n_cores=12)
    big_gpu = simulate_config(
        "Serena", "parsec", scale=0.6, n_cores=12, n_gpus=3, streams=3
    )
    assert big_gpu > 1.1 * big_cpu  # big matrices gain from GPUs
    shell_cpu = simulate_config("afshell10", "parsec", scale=0.6, n_cores=12)
    shell_gpu = simulate_config(
        "afshell10", "parsec", scale=0.6, n_cores=12, n_gpus=3
    )
    assert shell_gpu < 1.6 * shell_cpu  # afshell gains little


if __name__ == "__main__":
    main()
