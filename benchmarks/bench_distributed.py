"""Extension bench — distributed factorization with fan-in (paper §VI).

Not a paper figure: the paper names the distributed heterogeneous
extension and its fan-in communication scheme as future work.  This
bench quantifies the scheme on the simulated cluster:

* strong scaling of the Serena analogue over 1–8 twelve-core nodes;
* fan-in vs. per-update messages across network latencies — "by locally
  accumulating the updates … we trade bandwidth for latency";
* mapping-strategy comparison (proportional subtree vs. block/cyclic).

Run ``python benchmarks/bench_distributed.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from common import analyzed, format_table, matrix_factotype, write_csv
from repro.distributed import ClusterSpec, map_cblks, simulate_distributed

MATRIX = "Serena"


def _sym(scale=1.0):
    return analyzed(MATRIX, scale).symbol


def scaling_rows(scale: float = 1.0) -> list[list]:
    sym = _sym(scale)
    ft = matrix_factotype(MATRIX)
    rows = []
    for nodes in (1, 2, 4, 8):
        owner = map_cblks(sym, nodes, factotype=ft)
        cluster = ClusterSpec(n_nodes=nodes, cores_per_node=12)
        for fanin in (True, False):
            r = simulate_distributed(
                sym, owner, cluster, factotype=ft, fanin=fanin
            )
            rows.append([
                nodes,
                "fan-in" if fanin else "per-update",
                f"{r.gflops:.1f}",
                r.n_messages,
                f"{r.bytes_on_wire / 1e6:.1f}",
                f"{r.load_imbalance:.2f}",
            ])
    return rows


SCALING_HEADERS = ["nodes", "comm", "GFlop/s", "messages", "MB on wire", "imbalance"]


def latency_rows(scale: float = 1.0) -> list[list]:
    sym = _sym(scale)
    ft = matrix_factotype(MATRIX)
    owner = map_cblks(sym, 4, factotype=ft)
    rows = []
    for lat_us in (2, 20, 100, 500):
        cells = [f"{lat_us}"]
        for fanin in (True, False):
            cluster = ClusterSpec(
                n_nodes=4, cores_per_node=12, net_latency_s=lat_us * 1e-6
            )
            r = simulate_distributed(
                sym, owner, cluster, factotype=ft, fanin=fanin
            )
            cells.append(f"{r.gflops:.1f}")
        rows.append(cells)
    return rows


LATENCY_HEADERS = ["latency (us)", "fan-in GF/s", "per-update GF/s"]


def mapping_rows(scale: float = 1.0) -> list[list]:
    sym = _sym(scale)
    ft = matrix_factotype(MATRIX)
    cluster = ClusterSpec(n_nodes=4, cores_per_node=12)
    rows = []
    for strategy in ("subtree", "block", "cyclic"):
        owner = map_cblks(sym, 4, strategy=strategy, factotype=ft)
        r = simulate_distributed(sym, owner, cluster, factotype=ft)
        rows.append([
            strategy,
            f"{r.gflops:.1f}",
            r.n_messages,
            f"{r.bytes_on_wire / 1e6:.1f}",
            f"{r.load_imbalance:.2f}",
        ])
    return rows


MAPPING_HEADERS = ["mapping", "GFlop/s", "messages", "MB on wire", "imbalance"]


def main(argv=None) -> None:
    import argparse

    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--scale", type=float, default=1.0)
    args = p.parse_args(argv)
    for title, headers, rows, csv in (
        ("strong scaling", SCALING_HEADERS, scaling_rows(args.scale),
         "distributed_scaling.csv"),
        ("latency sensitivity (4 nodes)", LATENCY_HEADERS,
         latency_rows(args.scale), "distributed_latency.csv"),
        ("mapping strategies (4 nodes)", MAPPING_HEADERS,
         mapping_rows(args.scale), "distributed_mapping.csv"),
    ):
        print(f"\n=== {title} ({MATRIX} analogue) ===")
        print(format_table(headers, rows))
        write_csv(csv, headers, rows)


# ----------------------------------------------------------------------
# pytest-benchmark entries
# ----------------------------------------------------------------------


@pytest.mark.parametrize("fanin", [True, False])
def test_distributed_simulation(benchmark, fanin):
    sym = _sym(0.5)
    ft = matrix_factotype(MATRIX)
    owner = map_cblks(sym, 4, factotype=ft)
    cluster = ClusterSpec(n_nodes=4, cores_per_node=12)
    r = benchmark(
        simulate_distributed, sym, owner, cluster, factotype=ft, fanin=fanin
    )
    assert r.gflops > 0


def test_fanin_tradeoff_quick():
    rows = latency_rows(0.5)
    # At the highest latency, fan-in must be strictly ahead.
    last = rows[-1]
    assert float(last[1]) > float(last[2])


if __name__ == "__main__":
    main()
