"""Wall-clock benchmark of the *real* threaded runtime's schedulers.

Where ``bench_fig2_cpu_scaling.py`` reproduces the paper's Fig. 2 on the
simulated machine, this sweep runs the same scheduler-policy comparison
on live threads: ``scheduler x n_workers x matrix`` cells, each a real
:func:`repro.runtime.threaded.factorize_threaded` call timed on
wall-clock.  Results go to ``results/BENCH_threaded.json`` — the
committed copy of that file is the baseline ``perf_compare.py`` gates
regressions against (``make perf-smoke``).

Besides wall seconds, every cell records a **deterministic replay
makespan**: the order the real run started tasks in is list-scheduled
onto ``n_workers`` virtual workers with flops-proportional durations,
honouring DAG dependencies.  The replay isolates *schedule quality*
(the order a policy releases work in) from machine speed, BLAS jitter
and GIL-placement accidents — it is what lets the regression gate catch
a mis-prioritized scheduler even on a noisy or differently-sized host,
and what shows the scheduling headroom on boxes with too few cores to
measure a wall-clock gap.  The faithful per-worker placement replay is
kept alongside as ``model_placement_s`` (informational, not gated).

Every (matrix, scheduler, workers) cell is measured in three
**variants** — a ladder where each rung keeps the previous one's knobs
and adds its own:

* ``base`` — the uncached hot path (``index_cache=False``, no fan-in
  accumulation, no DLᵀ buffer): every update re-derives its scatter
  maps, and LDLᵀ recomputes ``L·D`` per couple.  Its replay durations
  charge each update the modelled index-work overhead
  (:func:`repro.kernels.cost.index_overhead_flops`) on top of its GEMM
  flops, and its DAG carries the ``recompute_ld`` LDLᵀ counts;
* ``opt`` — the cached + accumulated path (``index_cache=True``,
  ``accumulate=True``, ``dl_buffer=True``): pure GEMM flops, reduced
  LDLᵀ counts;
* ``compiled`` — opt's knobs plus ``kernels="compiled"`` (the numba
  fused update/merge/gather backend of :mod:`repro.kernels.compiled`,
  degrading to the bit-identical numpy path when numba is absent) and
  the 2D tall-panel row split (``build_dag(split_rows=SPLIT_ROWS)``),
  so one tall couple yields several independent update tasks.  Its
  replay DAG is built with the same ``split_rows`` so replay task ids
  match the traced run.

``perf_compare.py --gate-variants`` asserts each rung never falls
behind the one below it (``opt`` vs ``base``, ``compiled`` vs ``opt``)
within one report — the regression gate for this repo's hot-path
optimizations.

The ``adaptive`` cells exercise the measured-history scheduler
(``repro.runtime.adaptive``): one :class:`PerfHistory` instance, seeded
from the committed ``results/`` corpus, is shared across a cell's
repeats so later repeats rank from the durations earlier ones fed back.
``perf_compare.py --gate-adaptive`` asserts the adaptive replay
makespan never loses to the static ``priority`` ranking it refines.

``--mis-prioritize`` is fault injection for the gate's self-test: the
``priority`` cells silently run the inverse (anti-critical-path)
scheduler while still reporting themselves as ``priority``; ``make
selftest`` asserts ``perf_compare.py`` flags the resulting regression.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from common import (
    StageTimer,
    analyzed,
    format_table,
    matrix_dtype,
    matrix_factotype,
    standard_parser,
    write_bench_json,
)
from repro.dag.analysis import critical_path
from repro.kernels.cost import flops_total, index_overhead_flops
from repro.runtime.scheduling import get_thread_scheduler
from repro.runtime.threaded import factorize_threaded
from repro.runtime.tracing import ExecutionTrace
from repro.sparse.collection import load_matrix

#: Schedulers every sweep covers: the legacy global-FIFO baseline, the
#: three paper twins (PaStiX work stealing, dmda critical path, PaRSEC
#: last-panel affinity), and the history-driven ``adaptive`` ranking
#: (dmda's measured-model loop; see ``repro.runtime.adaptive``).
SCHEDULERS = ["fifo", "ws", "priority", "affinity", "adaptive"]

#: Hot-path variants: the uncached baseline, the cached+accumulated
#: optimized path, and the compiled-kernel + 2D-row-split path (see
#: module docstring).
VARIANTS = ["base", "opt", "compiled"]

#: Row-block threshold of the ``compiled`` variant's 2D split: couples
#: taller than this are carved into independent update parts.  Matches
#: the order of magnitude ``suggest_blocking`` derives from measured
#: rates at the default task-size target on the committed corpus.
SPLIT_ROWS = 128

#: Replay rate (flops/s).  Arbitrary: only *ratios* of replay makespans
#: are ever compared, and a fixed constant keeps them machine-free.
REPLAY_RATE = 1e9

DEFAULT_MATRICES = ["afshell10", "audi", "Serena"]
DEFAULT_WORKERS = [1, 2, 4, 8]
QUICK_MATRICES = ["audi"]
QUICK_WORKERS = [4]


def calibrate(n: int = 384, repeats: int = 10) -> float:
    """GFlop/s of one fixed seeded dense GEMM — a machine-speed yardstick.

    ``perf_compare.py`` multiplies wall seconds by the producing run's
    calibration so baselines from differently-fast hosts stay
    comparable (perfectly so for BLAS-bound cells, approximately
    otherwise).  One warmup call is discarded (cold BLAS init skews the
    first GEMM by ~2x) and the best of ``repeats`` is kept; measured
    spread of the best-of-10 on a busy single-core box is ~3%.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    a @ b
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - t0)
    return 2.0 * n**3 / best / 1e9


def replay_makespan(dag, trace: ExecutionTrace, n_workers: int,
                    rate: float = REPLAY_RATE,
                    costs: np.ndarray | None = None) -> float:
    """Deterministic makespan of the executed task *order*.

    Greedy list-schedule: tasks are taken in the order the real run
    started them and placed on the earliest-free of ``n_workers``
    virtual workers, with flops-proportional durations and DAG edges
    honoured.  Measuring order rather than the executed placement keeps
    the metric stable across hosts — on a box with fewer physical cores
    than workers the GIL makes *placement* an accident of preemption
    timing, but the order a scheduler releases work in is exactly the
    thing a priority/stealing policy controls.  Processing events in
    wall-clock start order is safe because the real execution already
    respected the dependencies.

    ``costs`` overrides the per-task durations (default ``dag.flops``) —
    the ``base`` variant charges updates their index-work overhead here.
    """
    w_task = dag.flops if costs is None else costs
    end_model = np.zeros(dag.n_tasks)
    free = [0.0] * max(1, int(n_workers))
    for e in trace.sorted_events():
        dur = max(float(w_task[e.task]), 1.0) / rate
        w = min(range(len(free)), key=free.__getitem__)
        t_start = free[w]
        preds = dag.predecessors(int(e.task))
        if preds.size:
            t_start = max(t_start, float(end_model[preds].max()))
        end_model[e.task] = t_start + dur
        free[w] = end_model[e.task]
    return float(end_model.max()) if dag.n_tasks else 0.0


def replay_placement_makespan(dag, trace: ExecutionTrace,
                              rate: float = REPLAY_RATE,
                              costs: np.ndarray | None = None) -> float:
    """Deterministic makespan of the executed schedule *as placed*.

    Like :func:`replay_makespan` but each task replays on the worker
    that really ran it.  Faithful to the run, and therefore sensitive to
    GIL-placement accidents on undersized hosts — recorded for analysis
    (``model_placement_s``) but not gated by ``perf_compare.py``.
    """
    w_task = dag.flops if costs is None else costs
    end_model = np.zeros(dag.n_tasks)
    worker_free: dict[str, float] = {}
    for e in trace.sorted_events():
        dur = max(float(w_task[e.task]), 1.0) / rate
        t_start = worker_free.get(e.resource, 0.0)
        preds = dag.predecessors(int(e.task))
        if preds.size:
            t_start = max(t_start, float(end_model[preds].max()))
        end_model[e.task] = t_start + dur
        worker_free[e.resource] = end_model[e.task]
    return float(end_model.max()) if dag.n_tasks else 0.0


def run_cell(
    name: str,
    scheduler: str,
    n_workers: int,
    *,
    scale: float = 1.0,
    repeats: int = 2,
    variant: str = "opt",
    mis_prioritize: bool = False,
    verify: bool = False,
) -> dict:
    """Measure one (matrix, scheduler, n_workers, variant) cell.

    Wall seconds and the replay makespan are each the minimum over
    ``repeats`` runs (minimum is the standard noise-robust pick); the
    best-order run also supplies the placement replay and trace stats.

    ``variant="base"`` runs the uncached hot path and replays with the
    index-work overhead added to every update task's cost (on the
    ``recompute_ld`` LDLᵀ DAG); ``variant="opt"`` runs cached +
    accumulated + DLᵀ-buffered and replays pure GEMM costs;
    ``variant="compiled"`` adds ``kernels="compiled"`` and the 2D row
    split (``SPLIT_ROWS``) on top of opt's knobs — its replay DAG is
    built with the same split so replay task ids match the trace.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    opt = variant != "base"
    compiled = variant == "compiled"
    split = SPLIT_ROWS if compiled else None
    res = analyzed(name, scale)
    permuted = load_matrix(name, scale=scale).permute(res.perm.perm)
    ft = matrix_factotype(name)
    dt = matrix_dtype(name)
    flops = flops_total(res.symbol, ft, dt)

    from repro.dag import build_dag

    dag = build_dag(res.symbol, ft, granularity="2d", dtype=dt,
                    recompute_ld=not opt, split_rows=split)
    costs = dag.flops if opt else dag.flops + index_overhead_flops(dag)

    effective = scheduler
    if mis_prioritize and scheduler == "priority":
        effective = "inverse-priority"

    # The adaptive cells share ONE duration model across repeats,
    # seeded from the committed corpus: repeat 1 ranks from the seeded
    # global rate, later repeats from the durations repeat 1 fed back —
    # the measured-history loop this scheduler exists to close.
    history = None
    if effective == "adaptive":
        from repro.runtime.adaptive import DEFAULT_RESULTS, PerfHistory

        history = PerfHistory()
        history.seed_from_results(DEFAULT_RESULTS)

    best_wall = float("inf")
    best_model = float("inf")
    best_trace = None
    best_stats: dict = {}
    for _ in range(max(1, repeats)):
        if history is not None:
            from repro.runtime.adaptive import AdaptiveScheduler

            sched = AdaptiveScheduler(history=history)
        else:
            sched = get_thread_scheduler(effective)
        trace = ExecutionTrace()
        t0 = time.perf_counter()
        factor = factorize_threaded(
            res.symbol, permuted, ft, n_workers=n_workers, dtype=dt,
            trace=trace, scheduler=sched,
            index_cache=opt, accumulate=opt, dl_buffer=opt,
            kernels="compiled" if compiled else "numpy",
            split_rows=split,
            record_sync=verify,
        )
        wall = time.perf_counter() - t0
        del factor
        best_wall = min(best_wall, wall)
        if verify:
            # C7xx happens-before audit on *every* traced run (not just
            # the best one): a race is a bug whichever repeat it bit.
            from repro.verify.concurrency import verify_concurrency

            crep = verify_concurrency(dag, trace)
            if not crep.ok:
                raise RuntimeError(
                    f"{name}/{scheduler} x{n_workers} [{variant}] "
                    "failed the concurrency audit:\n" + crep.format()
                )
        model = replay_makespan(dag, trace, n_workers, costs=costs)
        if model < best_model:
            best_model = model
            best_trace = trace
            best_stats = sched.stats()

    cell = {
        "matrix": name,
        "scheduler": scheduler,
        "n_workers": n_workers,
        "scale": scale,
        "variant": variant,
        "wall_s": best_wall,
        "gflops": flops / best_wall / 1e9,
        "model_makespan_s": best_model,
        "model_placement_s":
            replay_placement_makespan(dag, best_trace, costs=costs),
        "model_cp_s": critical_path(dag, weights=costs)[0] / REPLAY_RATE,
        "n_tasks": dag.n_tasks,
        "flops": flops,
        # Effective backend (trace meta: "compiled" only when numba is
        # importable) and the 2D split threshold, if any.
        "kernels": best_trace.meta.get("kernels", "numpy"),
        "split_rows": split,
    }
    cell.update(best_stats)
    if verify:
        from repro.verify import verify_schedule

        rep = verify_schedule(
            dag, best_trace, exclusive_resources=[],
            check_mutex=False, tol=1e-5,
        )
        if not rep.ok:
            raise RuntimeError(
                f"{name}/{scheduler} produced a dirty trace:\n"
                + rep.format()
            )
        cell["verified"] = True
        # Wall-clock trace: the fingerprint covers the task set and
        # fault/recovery decisions only (meta["clock"] == "wall"), so
        # same-seed reruns of the report remain comparable.
        cell["fingerprint"] = best_trace.fingerprint()
    return cell


def summarize(cells: list[dict]) -> list[dict]:
    """Per (matrix, n_workers, variant): scheduler speedup over fifo."""
    base = {
        (c["matrix"], c["n_workers"], c.get("variant", "base")): c
        for c in cells if c["scheduler"] == "fifo"
    }
    out = []
    for c in cells:
        if c["scheduler"] == "fifo":
            continue
        ref = base.get(
            (c["matrix"], c["n_workers"], c.get("variant", "base"))
        )
        if ref is None:
            continue
        out.append({
            "matrix": c["matrix"],
            "n_workers": c["n_workers"],
            "scheduler": c["scheduler"],
            "variant": c.get("variant", "base"),
            "wall_speedup_vs_fifo": ref["wall_s"] / c["wall_s"],
            "model_speedup_vs_fifo":
                ref["model_makespan_s"] / c["model_makespan_s"],
        })
    return out


#: The variant ladder's gated rungs: each (variant, reference) pair
#: must satisfy variant <= reference.  Mirrored by
#: ``perf_compare.VARIANT_PAIRS``.
VARIANT_PAIRS = (("opt", "base"), ("compiled", "opt"))


def summarize_variants(cells: list[dict]) -> list[dict]:
    """Per (matrix, n_workers, scheduler): each ladder rung's speedup.

    One row per ``VARIANT_PAIRS`` entry with a sibling cell present —
    the ratios ``perf_compare.py --gate-variants`` checks, printed here
    so a plain bench run already shows whether each rung pays off.
    """
    by_variant: dict[str, dict] = {}
    for c in cells:
        key = (c["matrix"], c["n_workers"], c["scheduler"],
               c.get("variant", "base"))
        by_variant[key] = c
    out = []
    for var, ref_var in VARIANT_PAIRS:
        for key, c in by_variant.items():
            if key[-1] != var:
                continue
            ref = by_variant.get(key[:-1] + (ref_var,))
            if ref is None:
                continue
            out.append({
                "matrix": c["matrix"],
                "n_workers": c["n_workers"],
                "scheduler": c["scheduler"],
                "pair": f"{var}/{ref_var}",
                "wall_speedup": ref["wall_s"] / c["wall_s"],
                "model_speedup":
                    ref["model_makespan_s"] / c["model_makespan_s"],
            })
    return out


def main(argv=None) -> int:
    p = standard_parser(__doc__.splitlines()[0])
    p.add_argument("--workers", type=int, nargs="*", default=None,
                   help=f"worker counts to sweep (default {DEFAULT_WORKERS})")
    p.add_argument("--schedulers", nargs="*", default=None,
                   choices=SCHEDULERS,
                   help=f"schedulers to sweep (default {SCHEDULERS})")
    p.add_argument("--repeats", type=int, default=None,
                   help="wall-clock repetitions per cell (keeps the min)")
    p.add_argument("--quick", action="store_true",
                   help="small subset for the perf-smoke gate: "
                        f"{QUICK_MATRICES} x workers {QUICK_WORKERS}")
    p.add_argument("--out", default=None,
                   help="write the JSON report here instead of "
                        "results/BENCH_threaded.json")
    p.add_argument("--variants", nargs="*", default=None,
                   choices=VARIANTS,
                   help="hot-path variants to sweep (default all: "
                        f"{VARIANTS})")
    p.add_argument("--mis-prioritize", action="store_true",
                   help="FAULT INJECTION: run 'priority' cells with the "
                        "inverse (anti-critical-path) heap while "
                        "reporting them as 'priority' — exists so make "
                        "selftest can prove perf_compare.py catches a "
                        "wrecked schedule")
    args = p.parse_args(argv)

    matrices = args.matrices or (
        QUICK_MATRICES if args.quick else DEFAULT_MATRICES
    )
    workers = args.workers or (
        QUICK_WORKERS if args.quick else DEFAULT_WORKERS
    )
    schedulers = args.schedulers or SCHEDULERS
    variants = args.variants or VARIANTS
    repeats = args.repeats or (2 if args.quick else 3)

    if args.mis_prioritize:
        print("WARNING: --mis-prioritize active; 'priority' cells run "
              "the inverse heap (gate self-test mode)", file=sys.stderr)

    timer = StageTimer()
    calib = calibrate()
    timer.note(f"calibration: {calib:.2f} GFlop/s dense GEMM")

    cells = []
    for name in matrices:
        for nw in workers:
            for sched in schedulers:
                for var in variants:
                    cells.append(run_cell(
                        name, sched, nw, scale=args.scale,
                        repeats=repeats, variant=var,
                        mis_prioritize=args.mis_prioritize,
                        verify=args.verify,
                    ))
                    c = cells[-1]
                    timer.note(
                        f"{name} x{nw} {sched} [{var}]: "
                        f"{c['wall_s']:.3f}s wall, "
                        f"{c['model_makespan_s']:.4f}s model"
                    )

    headers = ["matrix", "workers", "scheduler", "variant", "wall_s",
               "gflops", "model_s", "model_cp_s"]
    rows = [
        [c["matrix"], c["n_workers"], c["scheduler"], c["variant"],
         f"{c['wall_s']:.3f}", f"{c['gflops']:.2f}",
         f"{c['model_makespan_s']:.4f}", f"{c['model_cp_s']:.4f}"]
        for c in cells
    ]
    print(format_table(headers, rows))

    summary = summarize(cells)
    if summary:
        print()
        print(format_table(
            ["matrix", "workers", "scheduler", "variant",
             "wall_speedup", "model_speedup"],
            [[s["matrix"], s["n_workers"], s["scheduler"], s["variant"],
              f"{s['wall_speedup_vs_fifo']:.2f}x",
              f"{s['model_speedup_vs_fifo']:.2f}x"] for s in summary],
        ))

    variant_summary = summarize_variants(cells)
    if variant_summary:
        print()
        print(format_table(
            ["matrix", "workers", "scheduler", "pair",
             "wall_speedup", "model_speedup"],
            [[s["matrix"], s["n_workers"], s["scheduler"], s["pair"],
              f"{s['wall_speedup']:.2f}x",
              f"{s['model_speedup']:.2f}x"]
             for s in variant_summary],
        ))

    import os

    payload = {
        "bench": "threaded",
        "schema_version": 3,
        "quick": bool(args.quick),
        "n_cores": os.cpu_count(),
        "calib_gflops": calib,
        "replay_rate": REPLAY_RATE,
        "cells": cells,
        "summary": summary,
        "variant_summary": variant_summary,
    }
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    else:
        out_path = write_bench_json("threaded", payload)
    timer.note(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
