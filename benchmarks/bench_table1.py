"""Table I — matrix description.

Regenerates the paper's Table I for the synthetic analogues: size,
nnz(A), nnz(L), and flop count of the factorization, next to the paper's
published values for the original UFL matrices.  The analogues are
~1000× smaller in flops by design (documented in DESIGN.md); what must
match is the *ordering* and the qualitative spread.

Run ``python benchmarks/bench_table1.py [--scale S]`` for the table, or
``pytest benchmarks/bench_table1.py --benchmark-only`` to time the
analyze phase itself.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np
import pytest

from common import (
    analyzed,
    format_table,
    matrix_factotype,
    paper_flops,
    standard_parser,
    write_bench_json,
    write_csv,
)
from repro.sparse.collection import MATRIX_COLLECTION, collection_names, load_matrix


def table1_rows(scale: float = 1.0, names=None, *,
                verify: bool = False) -> tuple[list[list], list[dict]]:
    rows = []
    cells = []
    for name in names or collection_names():
        info = MATRIX_COLLECTION[name]
        matrix = load_matrix(name, scale=scale)
        res = analyzed(name, scale)
        flops = paper_flops(name, scale)
        if verify:
            # N5xx cross-check: the stored symbolic structure must
            # dominate the column-count recomputation (amalgamation
            # only *adds* fill, never loses entries).
            from repro.verify import verify_symbolic

            rep = verify_symbolic(matrix, res, exact=False,
                                  name=f"symbolic[{name}]")
            if not rep.ok:
                raise RuntimeError(
                    f"{name} failed the symbolic audit:\n" + rep.format()
                )
        rows.append([
            name,
            info.prec,
            info.method,
            matrix.n_rows,
            matrix.nnz,
            res.symbol.nnz(),
            f"{flops / 1e9:.2f}",
            f"{info.paper_size:.1e}",
            f"{info.paper_nnz_l:.0e}",
            f"{info.paper_tflop:g}",
        ])
        cells.append({
            "matrix": name,
            "scale": scale,
            "n": int(matrix.n_rows),
            "nnz_a": int(matrix.nnz),
            "nnz_l": int(res.symbol.nnz()),
            "flops": float(flops),
            "gflop": flops / 1e9,
            "verified": verify,
        })
    return rows, cells


HEADERS = [
    "Matrix", "Prec", "Method", "n", "nnzA", "nnzL", "GFlop",
    "paper n", "paper nnzL", "paper TFlop",
]


def main(argv=None) -> None:
    args = standard_parser(__doc__).parse_args(argv)
    rows, cells = table1_rows(args.scale, args.matrices,
                              verify=args.verify)
    print(format_table(HEADERS, rows))
    path = write_csv("table1.csv", HEADERS, rows)
    print(f"\nwritten: {path}")
    path = write_bench_json("table1", {
        "figure": "table1",
        "scale": args.scale,
        "verified": args.verify,
        "cells": cells,
    })
    print(f"written: {path}")


# ----------------------------------------------------------------------
# pytest-benchmark entries
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ["afshell10", "audi", "MHD"])
def test_analyze_phase(benchmark, name):
    """Time the full analyze phase on a reduced-scale analogue."""
    from repro.symbolic import SymbolicOptions, analyze

    matrix = load_matrix(name, scale=0.4)
    result = benchmark(analyze, matrix, SymbolicOptions(split_max_width=96))
    result.symbol.validate()


def test_table_row_generation(benchmark):
    """Time one full Table-I row (generation + analysis + stats)."""
    rows, cells = benchmark(table1_rows, 0.3, ["Geo1438"])
    assert len(rows) == 1 and len(cells) == 1


if __name__ == "__main__":
    main()
