"""Table I — matrix description.

Regenerates the paper's Table I for the synthetic analogues: size,
nnz(A), nnz(L), and flop count of the factorization, next to the paper's
published values for the original UFL matrices.  The analogues are
~1000× smaller in flops by design (documented in DESIGN.md); what must
match is the *ordering* and the qualitative spread.

Run ``python benchmarks/bench_table1.py [--scale S]`` for the table, or
``pytest benchmarks/bench_table1.py --benchmark-only`` to time the
analyze phase itself.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np
import pytest

from common import (
    analyzed,
    format_table,
    matrix_factotype,
    paper_flops,
    standard_parser,
    write_csv,
)
from repro.sparse.collection import MATRIX_COLLECTION, collection_names, load_matrix


def table1_rows(scale: float = 1.0, names=None) -> list[list]:
    rows = []
    for name in names or collection_names():
        info = MATRIX_COLLECTION[name]
        matrix = load_matrix(name, scale=scale)
        res = analyzed(name, scale)
        flops = paper_flops(name, scale)
        rows.append([
            name,
            info.prec,
            info.method,
            matrix.n_rows,
            matrix.nnz,
            res.symbol.nnz(),
            f"{flops / 1e9:.2f}",
            f"{info.paper_size:.1e}",
            f"{info.paper_nnz_l:.0e}",
            f"{info.paper_tflop:g}",
        ])
    return rows


HEADERS = [
    "Matrix", "Prec", "Method", "n", "nnzA", "nnzL", "GFlop",
    "paper n", "paper nnzL", "paper TFlop",
]


def main(argv=None) -> None:
    args = standard_parser(__doc__).parse_args(argv)
    rows = table1_rows(args.scale, args.matrices)
    print(format_table(HEADERS, rows))
    path = write_csv("table1.csv", HEADERS, rows)
    print(f"\nwritten: {path}")


# ----------------------------------------------------------------------
# pytest-benchmark entries
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ["afshell10", "audi", "MHD"])
def test_analyze_phase(benchmark, name):
    """Time the full analyze phase on a reduced-scale analogue."""
    from repro.symbolic import SymbolicOptions, analyze

    matrix = load_matrix(name, scale=0.4)
    result = benchmark(analyze, matrix, SymbolicOptions(split_max_width=96))
    result.symbol.validate()


def test_table_row_generation(benchmark):
    """Time one full Table-I row (generation + analysis + stats)."""
    rows = benchmark(table1_rows, 0.3, ["Geo1438"])
    assert len(rows) == 1


if __name__ == "__main__":
    main()
