# Development targets.  Everything runs offline; ruff and mypy are
# optional (not pinned as dependencies) and are skipped with a notice
# when the tools are not installed.

PYTHON     ?= python
PYTHONPATH := src
export PYTHONPATH

.PHONY: test verify lint hazards typecheck bench figures

test:
	$(PYTHON) -m pytest -x -q

# The full static-analysis gate: project linter + DAG hazard coverage +
# schedule feasibility (python -m repro verify), plus ruff/mypy when
# available, plus the test suite.
verify: lint hazards typecheck test

lint:
	$(PYTHON) -m repro verify --no-hazards --no-schedule
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed -- skipped (pip install ruff)"; \
	fi

hazards:
	$(PYTHON) -m repro verify --matrix lap2d --size 30 --no-lint

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else \
		echo "mypy not installed -- skipped (pip install mypy)"; \
	fi

bench:
	$(PYTHON) benchmarks/bench_table1.py
	$(PYTHON) benchmarks/bench_fig2_cpu_scaling.py
	$(PYTHON) benchmarks/bench_fig3_gemm_streams.py
	$(PYTHON) benchmarks/bench_fig4_gpu_scaling.py

figures:
	$(PYTHON) benchmarks/make_figures.py
