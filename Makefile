# Development targets.  Everything runs offline; ruff and mypy are
# optional (not pinned as dependencies) and are skipped with a notice
# when the tools are not installed.

PYTHON     ?= python
PYTHONPATH := src
export PYTHONPATH

.PHONY: test verify lint hazards typecheck bench figures selftest chaos \
	chaos-smoke perf-smoke race-smoke determinism-smoke compiled-smoke ci

test:
	$(PYTHON) -m pytest -x -q

# The full static-analysis gate: project linter + DAG hazard coverage +
# schedule feasibility + memory/symbolic audits (python -m repro
# verify), plus ruff/mypy when available, plus the test suite.
verify: lint hazards typecheck test

# Fault-injection self-tests: every corruption must make the verifier
# exit non-zero.  A mode that slips through means an analyzer has been
# lobotomized, so the target fails loudly on the first silent pass.
# The memory injections need a problem large enough that the scheduler
# actually offloads (hence --size 32).
selftest:
	@for inj in drop-edge overlap-trace break-mutex skew-flops stale-cache \
			stale-split; do \
		if $(PYTHON) -m repro verify --matrix lap2d --size 20 \
			--no-lint --no-resilience --no-health --no-concurrency \
			--no-determinism --no-adaptive \
			--inject $$inj >/dev/null 2>&1; then \
			echo "inject $$inj: NOT caught"; exit 1; \
		else \
			echo "inject $$inj: caught"; \
		fi; \
	done
	@for inj in drop-transfer overflow-residency; do \
		if $(PYTHON) -m repro verify --matrix lap2d --size 32 \
			--no-lint --no-hazards --no-symbolic --no-resilience \
			--no-health --no-concurrency --no-determinism \
			--no-adaptive --inject $$inj >/dev/null 2>&1; then \
			echo "inject $$inj: NOT caught"; exit 1; \
		else \
			echo "inject $$inj: caught"; \
		fi; \
	done
	@for inj in drop-recovery double-complete; do \
		if $(PYTHON) -m repro verify --matrix lap2d --size 16 \
			--no-lint --no-hazards --no-symbolic --no-schedule \
			--no-health --no-concurrency --no-determinism \
			--no-adaptive --inject $$inj >/dev/null 2>&1; then \
			echo "inject $$inj: NOT caught"; exit 1; \
		else \
			echo "inject $$inj: caught"; \
		fi; \
	done
	@for inj in drop-sync-event unlocked-scatter swallow-wakeup; do \
		if $(PYTHON) -m repro verify --matrix lap2d --size 16 \
			--no-lint --no-hazards --no-schedule --no-symbolic \
			--no-resilience --no-health --no-determinism \
			--no-adaptive --inject $$inj >/dev/null 2>&1; then \
			echo "inject $$inj: NOT caught"; exit 1; \
		else \
			echo "inject $$inj: caught"; \
		fi; \
	done
	@for inj in reorder-ties reseed-midrun drop-seq; do \
		if $(PYTHON) -m repro verify --matrix lap2d --size 16 \
			--no-lint --no-hazards --no-schedule --no-symbolic \
			--no-resilience --no-health --no-concurrency \
			--no-adaptive --inject $$inj >/dev/null 2>&1; then \
			echo "inject $$inj: NOT caught"; exit 1; \
		else \
			echo "inject $$inj: caught"; \
		fi; \
	done
	@for inj in double-commit-hedge steal-from-quarantined \
			illegal-transition; do \
		if $(PYTHON) -m repro verify --matrix lap2d --size 20 \
			--no-lint --no-hazards --no-schedule --no-symbolic \
			--no-resilience --no-concurrency --no-determinism \
			--no-adaptive --inject $$inj >/dev/null 2>&1; then \
			echo "inject $$inj: NOT caught"; exit 1; \
		else \
			echo "inject $$inj: caught"; \
		fi; \
	done
	@# A forged adaptive model stamp (one bucket count inflated) must
	@# trip the A9xx provenance audit.
	@for inj in skew-model; do \
		if $(PYTHON) -m repro verify --matrix lap2d --size 16 \
			--no-lint --no-hazards --no-schedule --no-symbolic \
			--no-resilience --no-health --no-concurrency \
			--no-determinism \
			--inject $$inj >/dev/null 2>&1; then \
			echo "inject $$inj: NOT caught"; exit 1; \
		else \
			echo "inject $$inj: caught"; \
		fi; \
	done
	@# A deliberately mis-prioritized schedule (priority cells silently
	@# running the anti-critical-path heap) must trip the perf gate's
	@# replay-makespan check against the committed baseline.
	@PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_threaded.py \
		--quick --mis-prioritize --out results/_misprio.json >/dev/null 2>&1
	@if PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/perf_compare.py \
		--no-wall results/BENCH_threaded.json results/_misprio.json \
		>/dev/null 2>&1; then \
		rm -f results/_misprio.json; \
		echo "inject mis-prioritize: NOT caught"; exit 1; \
	else \
		rm -f results/_misprio.json; \
		echo "inject mis-prioritize: caught"; \
	fi

# Chaos matrix: every (fault kind x scheduler policy) cell must finish
# all tasks and produce a trace the R6xx resilience auditor, the S2xx
# schedule verifier, and (limplock cells) the R7xx degradation auditor
# all accept; the run ends with the asserted hedging A/B.
chaos:
	$(PYTHON) benchmarks/bench_resilience.py --chaos --verify

# Bounded chaos gate for CI: the same matrix + hedging A/B on a smaller
# problem so the whole run stays in smoke-test territory.
chaos-smoke:
	@$(PYTHON) benchmarks/bench_resilience.py --chaos --verify \
		--grid 32 >/dev/null; \
	status=$$?; \
	if [ $$status -eq 0 ]; then echo "chaos-smoke: clean"; \
	else echo "chaos-smoke: FAILED"; fi; exit $$status

# Perf-regression gate: quick threaded-scheduler sweep, diffed against
# the committed baseline.  The deterministic replay-makespan metric is
# gated at 15%; normalized wall clock is a lax (50%) gross-failure
# backstop; --gate-variants additionally requires the cached hot path
# ('opt') to beat the uncached one ('base') within the fresh report;
# --gate-adaptive requires the history-driven 'adaptive' scheduler to
# hold the static 'priority' replay makespan -- see
# benchmarks/perf_compare.py.
perf-smoke:
	@PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_threaded.py \
		--quick --out results/_perfsmoke.json
	@PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/perf_compare.py \
		--gate-variants --gate-adaptive \
		results/BENCH_threaded.json results/_perfsmoke.json; \
	status=$$?; rm -f results/_perfsmoke.json; exit $$status

# Quick concurrency gate: a real threaded sweep (every scheduler, both
# fan-in accumulation variants) with sync tracing on, every traced run
# checked by the C7xx happens-before auditor (bench_threaded --verify).
race-smoke:
	@PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_threaded.py \
		--quick --verify --repeats 1 --out results/_racesmoke.json \
		>/dev/null; \
	status=$$?; rm -f results/_racesmoke.json; \
	if [ $$status -eq 0 ]; then echo "race-smoke: clean"; \
	else echo "race-smoke: FAILED"; fi; exit $$status

# Compiled-kernel gate: factorize a small problem with
# kernels="compiled" (sequential and threaded, with a 2D row split) and
# check the factors against the numpy reference.  With numba installed
# this exercises the jit kernels; without it the toggle must degrade
# gracefully to the bit-identical numpy fallback (reported as such).
compiled-smoke:
	@$(PYTHON) benchmarks/compiled_smoke.py; \
	status=$$?; \
	if [ $$status -eq 0 ]; then echo "compiled-smoke: clean"; \
	else echo "compiled-smoke: FAILED"; fi; exit $$status

# D8xx determinism gate: a seeded same-seed double-run of the machine
# simulator (with the fault scenario) and of the stream-burst simulator
# on a small matrix; their canonical trace fingerprints must match
# bit-for-bit and every tie-break/provenance audit must pass.
determinism-smoke:
	@$(PYTHON) -m repro verify --matrix lap2d --size 16 \
		--no-lint --no-hazards --no-schedule --no-symbolic \
		--no-resilience --no-health --no-concurrency \
		--no-adaptive >/dev/null; \
	status=$$?; \
	if [ $$status -eq 0 ]; then echo "determinism-smoke: clean"; \
	else echo "determinism-smoke: FAILED"; fi; exit $$status

# Everything CI runs: tier-1 tests, the static-analysis gate
# (lint/hazards/schedule/memory/symbolic/concurrency/determinism +
# ruff/mypy when installed), the fault-injection self-tests, the
# live-race gate, the determinism gate, the bounded chaos gate, and
# the perf-regression gate.
ci: verify selftest race-smoke determinism-smoke chaos-smoke perf-smoke \
	compiled-smoke

lint:
	$(PYTHON) -m repro verify --no-hazards --no-schedule --no-resilience \
		--no-health --no-concurrency --no-determinism --no-adaptive
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed -- skipped (pip install ruff)"; \
	fi

hazards:
	$(PYTHON) -m repro verify --matrix lap2d --size 30 --no-lint

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else \
		echo "mypy not installed -- skipped (pip install mypy)"; \
	fi

bench:
	$(PYTHON) benchmarks/bench_table1.py
	$(PYTHON) benchmarks/bench_fig2_cpu_scaling.py
	$(PYTHON) benchmarks/bench_fig3_gemm_streams.py
	$(PYTHON) benchmarks/bench_fig4_gpu_scaling.py

figures:
	$(PYTHON) benchmarks/make_figures.py
