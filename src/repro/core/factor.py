"""Numeric factor storage (block CSC, PaStiX's ``SolverMatrix`` analogue).

Each cblk ``k`` owns a dense tall-and-skinny panel ``L[k]`` of shape
``(height_k, width_k)`` whose rows are the factor rows of the panel
(``symbol.cblk_rows(k)``: the ``width`` diagonal columns first, then the
below rows).  LU keeps a second panel ``U[k]`` of identical shape holding
``Uᵀ`` (the packed diagonal block lives in ``L[k]``'s top square); LDLᵀ
keeps the diagonal ``D[k]``.

Storing each panel as one contiguous array is exactly the paper's §III
design: "each panel is stored as a single tall and skinny matrix, such
that the TRSM granularity can be decided at runtime and is independent of
the data storage".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic.structures import SymbolMatrix

__all__ = ["NumericFactor"]

_FACTOTYPES = ("llt", "ldlt", "lu")


@dataclass
class NumericFactor:
    """Block storage of the numerical factor(s)."""

    symbol: SymbolMatrix
    factotype: str
    dtype: np.dtype
    L: list[np.ndarray]
    U: Optional[list[np.ndarray]]
    D: Optional[list[np.ndarray]]
    rows: list[np.ndarray]
    #: Optional :class:`repro.kernels.dense.PivotMonitor` enabling
    #: static-pivot perturbation during panel factorizations.
    pivot_monitor: Optional[object] = None
    #: Optional :class:`repro.kernels.indexcache.CoupleMapCache` holding
    #: the precomputed per-couple scatter maps; the panel kernels use it
    #: when present instead of re-deriving the maps per update.
    index_cache: Optional[object] = None
    #: When True, ``panel_factorize`` fills ``DL[k] = L21 · D`` (LDLᵀ
    #: only) so updates read the persistent DLᵀ buffer instead of
    #: recomputing ``L·D`` per couple (paper §V-A, Figure 2).
    dl_buffer: bool = False
    #: The per-panel DLᵀ buffers (``None`` entries until factorized).
    DL: Optional[list] = None
    #: Effective numeric kernel backend (``"numpy"`` or ``"compiled"``,
    #: see :mod:`repro.kernels.compiled`).  The update kernels consult it
    #: to route through the fused jit path.
    kernels: str = "numpy"

    # ------------------------------------------------------------------
    @classmethod
    def allocate(
        cls, symbol: SymbolMatrix, factotype: str, dtype=np.float64
    ) -> "NumericFactor":
        """Allocate zeroed panels for the given symbol structure."""
        if factotype not in _FACTOTYPES:
            raise ValueError(f"factotype must be one of {_FACTOTYPES}")
        dtype = np.dtype(dtype)
        rows = [symbol.cblk_rows(k) for k in range(symbol.n_cblk)]
        widths = np.diff(symbol.cblk_ptr)
        L = [
            np.zeros((rows[k].size, int(widths[k])), dtype=dtype)
            for k in range(symbol.n_cblk)
        ]
        U = (
            [np.zeros_like(panel) for panel in L]
            if factotype == "lu"
            else None
        )
        D = (
            [np.zeros(int(widths[k]), dtype=dtype) for k in range(symbol.n_cblk)]
            if factotype == "ldlt"
            else None
        )
        return cls(symbol, factotype, dtype, L, U, D, rows)

    @classmethod
    def assemble(
        cls,
        symbol: SymbolMatrix,
        matrix: SparseMatrixCSC,
        factotype: str,
        dtype=None,
        kernels: str = "numpy",
    ) -> "NumericFactor":
        """Allocate and scatter the (already permuted) matrix values in.

        ``matrix`` must be ordered consistently with ``symbol`` (i.e. the
        output of ``pattern.permute`` with the analysis permutation, with
        values).  For ``llt``/``ldlt`` only the lower triangle is read;
        for ``lu`` both triangles are scattered (L and U sides).

        ``kernels="compiled"`` routes the per-panel gather through the
        jit loop of :func:`repro.kernels.compiled.gather_assign` — pure
        assignment at distinct positions, bit-identical to the
        fancy-index form (and a no-op change when numba is absent).
        """
        if matrix.values is None:
            raise ValueError("assemble needs numeric values")
        if matrix.n_rows != symbol.n:
            raise ValueError("matrix size does not match symbol")
        dtype = np.dtype(dtype or matrix.values.dtype)
        factor = cls.allocate(symbol, factotype, dtype)

        col2cblk = symbol.col2cblk
        cblk_ptr = symbol.cblk_ptr
        rows_all, cols_all, vals_all = matrix.to_coo()
        owner = col2cblk[cols_all]
        fcol = cblk_ptr[owner]
        n = symbol.n
        K = symbol.n_cblk

        # One keyed row index over all panels: key(k, r) = k·n + r is
        # strictly increasing along the concatenated per-panel row
        # arrays, so a single global searchsorted localizes every entry
        # (replacing the per-cblk searchsorted loop).
        sizes = np.array([factor.rows[k].size for k in range(K)],
                         dtype=np.int64)
        row_ptr = np.zeros(K + 1, dtype=np.int64)
        np.cumsum(sizes, out=row_ptr[1:])
        keyed = (
            np.concatenate(factor.rows)
            + n * np.repeat(np.arange(K, dtype=np.int64), sizes)
            if K else np.empty(0, dtype=np.int64)
        )

        from repro.kernels.compiled import gather_assign

        use_compiled = kernels == "compiled"

        def _scatter(panels, tgt, grow, gcol, gval):
            """Grouped fancy-index assignment of (tgt, grow, gcol) = gval."""
            order = np.argsort(tgt, kind="stable")
            tgt, grow, gcol = tgt[order], grow[order], gcol[order]
            gval = gval[order].astype(dtype, copy=False)
            rloc = np.searchsorted(keyed, tgt * n + grow) - row_ptr[tgt]
            cloc = gcol - cblk_ptr[tgt]
            bounds = np.searchsorted(tgt, np.arange(K + 1))
            for k in range(K):
                s, e = bounds[k], bounds[k + 1]
                if s == e:
                    continue
                if use_compiled:
                    gather_assign(
                        panels[k], rloc[s:e], cloc[s:e], gval[s:e]
                    )
                else:
                    panels[k][rloc[s:e], cloc[s:e]] = gval[s:e]

        # Lower-and-diagonal part: entries with row inside the owner's
        # factor rows (row >= first column of the owning cblk).
        low = rows_all >= fcol
        _scatter(factor.L, owner[low], rows_all[low], cols_all[low],
                 vals_all[low])

        if factotype == "lu":
            # Strict upper cross-cblk entries go to the row-owner's U panel
            # (stored transposed).  In-diagonal-block upper entries were
            # already placed by the lower pass (row >= fcol covers them).
            # Entry (i, j), i < j: U[i, j] -> Uᵀ panel row j, col i.
            up = ~low
            _scatter(factor.U, col2cblk[rows_all[up]], cols_all[up],
                     rows_all[up], vals_all[up])
        return factor

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.symbol.n

    @property
    def n_cblk(self) -> int:
        return self.symbol.n_cblk

    def nbytes(self) -> int:
        """Total bytes of panel storage."""
        total = sum(p.nbytes for p in self.L)
        if self.U is not None:
            total += sum(p.nbytes for p in self.U)
        if self.D is not None:
            total += sum(d.nbytes for d in self.D)
        return total

    def copy(self) -> "NumericFactor":
        out = NumericFactor(
            self.symbol,
            self.factotype,
            self.dtype,
            [p.copy() for p in self.L],
            None if self.U is None else [p.copy() for p in self.U],
            None if self.D is None else [d.copy() for d in self.D],
            self.rows,
        )
        out.index_cache = self.index_cache
        out.dl_buffer = self.dl_buffer
        out.kernels = self.kernels
        if self.DL is not None:
            out.DL = [None if p is None else p.copy() for p in self.DL]
        return out

    def enable_dl_buffer(self) -> None:
        """Switch on the persistent DLᵀ buffer (LDLᵀ only; no-op else).

        Allocates the per-panel slots; ``panel_factorize`` fills
        ``DL[k]`` when it factorizes panel ``k``, and the update kernels
        read it instead of recomputing ``L·D`` per couple.
        """
        if self.factotype != "ldlt":
            return
        self.dl_buffer = True
        if self.DL is None:
            self.DL = [None] * self.n_cblk

    # ------------------------------------------------------------------
    def lower_csc(self) -> SparseMatrixCSC:
        """Export the L factor as a CSC matrix (unit/non-unit as stored).

        For ``lu`` the unit diagonal is materialised and the packed upper
        part of the diagonal block is excluded.  Mainly for tests and
        small-problem inspection.
        """
        rows_out: list[np.ndarray] = []
        cols_out: list[np.ndarray] = []
        vals_out: list[np.ndarray] = []
        for k in range(self.n_cblk):
            f = int(self.symbol.cblk_ptr[k])
            w = self.symbol.cblk_width(k)
            panel = self.L[k]
            rws = self.rows[k]
            for j in range(w):
                col_rows = rws[j:]
                col_vals = panel[j:, j].copy()
                if self.factotype == "lu":
                    col_vals[0] = 1.0
                elif self.factotype == "ldlt":
                    col_vals[0] = 1.0
                else:
                    col_vals = panel[j:, j]
                rows_out.append(col_rows)
                cols_out.append(np.full(col_rows.size, f + j, dtype=np.int64))
                vals_out.append(col_vals)
        from repro.sparse.csc import coo_to_csc

        return coo_to_csc(
            self.n,
            self.n,
            np.concatenate(rows_out),
            np.concatenate(cols_out),
            np.concatenate(vals_out),
            sum_duplicates=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mb = self.nbytes() / 1e6
        return (
            f"NumericFactor({self.factotype}, n={self.n}, "
            f"cblks={self.n_cblk}, {mb:.1f} MB)"
        )
