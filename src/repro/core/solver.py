"""Public solver API.

Typical use::

    from repro import SparseSolver
    from repro.sparse import grid_laplacian_3d

    A = grid_laplacian_3d(20)
    solver = SparseSolver(A)          # llt by default
    solver.analyze()
    info = solver.factorize()
    x = solver.solve(b)

The three phases mirror PaStiX: *analyze* (ordering + symbolic, pattern
only), *factorize* (numeric, re-runnable for new values), *solve*
(triangular solves + iterative refinement).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.factor import NumericFactor
from repro.core.factorization import factorize_sequential
from repro.core.options import SolverOptions
from repro.core.refinement import RefinementResult, iterative_refinement
from repro.core.triangular import solve_factored
from repro.kernels.cost import flops_total
from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic.analyze import AnalysisResult, analyze

__all__ = ["SparseSolver", "FactorizationInfo"]


@dataclass(frozen=True)
class FactorizationInfo:
    """Metrics of one factorization run."""

    factotype: str
    runtime: str
    n: int
    nnz_factor: int
    flops: float
    elapsed: float
    n_pivots_perturbed: int = 0

    @property
    def gflops(self) -> float:
        """Achieved GFlop/s (paper-convention flops / wall time)."""
        return self.flops / self.elapsed / 1e9 if self.elapsed > 0 else 0.0


class SparseSolver:
    """Supernodal sparse direct solver (Cholesky / LDLᵀ / LU).

    Parameters
    ----------
    matrix:
        Square sparse matrix.  LLᵀ/LDLᵀ expect symmetric values; LU only
        a symmetric *pattern* is required (it is symmetrised internally,
        as PaStiX works on ``A + Aᵀ``).
    options:
        :class:`SolverOptions`; defaults give Cholesky + nested dissection.
    """

    def __init__(
        self,
        matrix: SparseMatrixCSC,
        options: SolverOptions | None = None,
    ) -> None:
        if not matrix.is_square:
            raise ValueError("solver requires a square matrix")
        if matrix.values is None:
            raise ValueError("solver requires numeric values")
        self.matrix = matrix
        self.options = options or SolverOptions()
        self.analysis: Optional[AnalysisResult] = None
        self.factor: Optional[NumericFactor] = None
        self._permuted: Optional[SparseMatrixCSC] = None
        self.last_info: Optional[FactorizationInfo] = None
        self.last_refinement: Optional[RefinementResult] = None

    # ------------------------------------------------------------------
    def analyze(self) -> AnalysisResult:
        """Run (or return the cached) analyze phase."""
        if self.analysis is None:
            self.analysis = analyze(self.matrix, self.options.symbolic)
        return self.analysis

    def _permuted_matrix(self) -> SparseMatrixCSC:
        if self._permuted is None:
            analysis = self.analyze()
            self._permuted = self.matrix.permute(analysis.perm.perm)
        return self._permuted

    # ------------------------------------------------------------------
    def factorize(self) -> FactorizationInfo:
        """Numeric factorization with the configured runtime."""
        analysis = self.analyze()
        permuted = self._permuted_matrix()
        opts = self.options
        flops = flops_total(
            analysis.symbol, opts.factotype, self.matrix.values.dtype
        )

        start = time.perf_counter()
        if opts.runtime in ("sequential", "native", "starpu", "parsec"):
            # The scheduler policies change *simulated* performance, not
            # numerics; real execution uses the reference driver.
            self.factor = factorize_sequential(
                analysis.symbol,
                permuted,
                opts.factotype,
                workspace=opts.workspace_update,
                pivot_threshold=opts.pivot_threshold,
                index_cache=opts.index_cache,
                dl_buffer=opts.dl_buffer,
                kernels=opts.kernels,
            )
        elif opts.runtime == "threaded":
            from repro.runtime.threaded import factorize_threaded

            self.factor = factorize_threaded(
                analysis.symbol,
                permuted,
                opts.factotype,
                n_workers=opts.n_workers,
                workspace=opts.workspace_update,
                pivot_threshold=opts.pivot_threshold,
                index_cache=opts.index_cache,
                dl_buffer=opts.dl_buffer,
                accumulate=opts.accumulate,
                kernels=opts.kernels,
            )
        else:  # pragma: no cover - guarded by SolverOptions
            raise ValueError(f"unknown runtime {opts.runtime!r}")
        elapsed = time.perf_counter() - start

        monitor = getattr(self.factor, "pivot_monitor", None)
        self.last_info = FactorizationInfo(
            factotype=opts.factotype,
            runtime=opts.runtime,
            n=analysis.n,
            nnz_factor=analysis.symbol.nnz(factotype=opts.factotype),
            flops=flops,
            elapsed=elapsed,
            n_pivots_perturbed=0 if monitor is None else monitor.n_perturbed,
        )
        return self.last_info

    # ------------------------------------------------------------------
    def _raw_solve(self, b: np.ndarray) -> np.ndarray:
        assert self.factor is not None and self.analysis is not None
        perm = self.analysis.perm
        pb = perm.apply_to_vector(np.asarray(b, dtype=self.factor.dtype))
        if self.options.runtime == "threaded" and pb.ndim == 1:
            from repro.runtime.threaded import solve_threaded

            px = solve_threaded(
                self.factor, pb, n_workers=self.options.n_workers
            )
        else:
            px = solve_factored(self.factor, pb)
        return perm.undo_on_vector(px)

    def solve(self, b: np.ndarray, *, method: str = "refine") -> np.ndarray:
        """Solve ``A x = b`` (factorizing first if needed).

        ``method`` selects the outer iteration around the factorization
        (mirroring PaStiX's refinement choices):

        * ``"refine"`` — simple iterative refinement (default);
        * ``"gmres"`` / ``"bicgstab"`` — Krylov solves with the
          factorization as right preconditioner (useful when the factor
          is only approximate or the system is ill-conditioned);
        * ``"cg"`` — preconditioned conjugate gradients (SPD only);
        * ``"none"`` — a single forward/backward solve.
        """
        if self.factor is None:
            self.factorize()
        b = np.asarray(b)
        if b.ndim not in (1, 2) or b.shape[0] != self.matrix.n_rows:
            raise ValueError("right-hand side has wrong shape")
        if b.ndim == 2 and method not in ("refine", "none"):
            raise ValueError(
                "block right-hand sides support methods 'refine' and 'none'"
            )
        if method == "none" or (method == "refine" and not self.options.refine):
            return self._raw_solve(b)
        if method == "refine":
            result = iterative_refinement(
                self.matrix,
                self._raw_solve,
                b,
                tol=self.options.refine_tol,
                max_iter=self.options.refine_max_iter,
            )
            self.last_refinement = result
            return result.x
        from repro.core.krylov import bicgstab, conjugate_gradient, gmres

        solvers = {"gmres": gmres, "cg": conjugate_gradient, "bicgstab": bicgstab}
        if method not in solvers:
            raise ValueError(f"unknown solve method {method!r}")
        result = solvers[method](
            self.matrix,
            b,
            precondition=self._raw_solve,
            tol=self.options.refine_tol,
            max_iter=self.options.refine_max_iter * 10,
        )
        self.last_refinement = result
        return result.x

    # ------------------------------------------------------------------
    def update_values(self, matrix: SparseMatrixCSC) -> None:
        """Swap in new numeric values with the *same* sparsity pattern.

        The expensive analyze phase (ordering + symbolic) is reused — the
        standard direct-solver workflow for sequences of systems sharing
        one structure (time steps, Newton iterations).  The next
        :meth:`factorize`/:meth:`solve` call refactorizes the new values.
        """
        if matrix.shape != self.matrix.shape:
            raise ValueError("new matrix has a different shape")
        if matrix.values is None:
            raise ValueError("new matrix has no values")
        if not (
            np.array_equal(matrix.colptr, self.matrix.colptr)
            and np.array_equal(matrix.rowind, self.matrix.rowind)
        ):
            raise ValueError(
                "sparsity pattern changed: build a new SparseSolver"
            )
        self.matrix = matrix
        self._permuted = None   # invalidate the permuted values
        self.factor = None      # force refactorization
        self.last_info = None

    def condest(self) -> float:
        """Estimated 1-norm condition number (Hager–Higham, symmetric
        factorizations use the same solve for Aᵀ)."""
        from repro.core.condest import condest as _condest

        if self.factor is None:
            self.factorize()
        return _condest(self.matrix, self._raw_solve)

    def residual_norm(self, x: np.ndarray, b: np.ndarray) -> float:
        """Relative residual ‖b − A x‖₂ / ‖b‖₂."""
        r = np.asarray(b) - self.matrix.matvec(x)
        bn = float(np.linalg.norm(b))
        return float(np.linalg.norm(r)) / (bn if bn else 1.0)
