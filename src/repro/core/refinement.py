"""Iterative refinement.

Static pivoting can lose a few digits on ill-conditioned systems; PaStiX
(like SuperLU) recovers them with simple iterative refinement on the
original matrix.  The loop runs in the *original* ordering; the caller's
solve closure hides the permutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sparse.csc import SparseMatrixCSC

__all__ = ["iterative_refinement", "RefinementResult"]


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of iterative refinement."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    history: tuple[float, ...]


def iterative_refinement(
    matrix: SparseMatrixCSC,
    solve: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    *,
    tol: float = 1e-12,
    max_iter: int = 10,
) -> RefinementResult:
    """Refine ``solve``'s answer to ``A x = b``.

    ``solve`` applies the (approximately) factored operator; the loop is
    ``r = b − A x``, ``x += solve(r)`` until the relative residual drops
    under ``tol`` or stops improving.
    """
    b = np.asarray(b)
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return RefinementResult(np.zeros_like(b), 0, 0.0, True, ())

    x = solve(b)
    history: list[float] = []
    resnorm = float("inf")
    for it in range(max_iter):
        r = b - matrix.matvec(x)
        resnorm = float(np.linalg.norm(r)) / bnorm
        history.append(resnorm)
        if resnorm <= tol:
            return RefinementResult(x, it, resnorm, True, tuple(history))
        if len(history) >= 2 and resnorm >= history[-2] * 0.5:
            # Stagnation: further sweeps will not help.
            break
        x = x + solve(r)
    return RefinementResult(x, len(history), resnorm, resnorm <= tol, tuple(history))
