"""1-norm condition estimation (Hager–Higham).

Direct solvers conventionally report an estimate of ``κ₁(A) = ‖A‖₁ ·
‖A⁻¹‖₁`` after factorizing; ``‖A⁻¹‖₁`` is estimated without forming the
inverse by Hager's power iteration on the dual norm, using only a few
solves with ``A`` and ``Aᵀ`` (Higham's Algorithm 4.1 — the LAPACK
``xLACON`` approach, simplified to the single-vector variant).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sparse.csc import SparseMatrixCSC

__all__ = ["norm1", "inverse_norm1_estimate", "condest"]


def norm1(matrix: SparseMatrixCSC) -> float:
    """Exact 1-norm (maximum absolute column sum)."""
    if matrix.values is None:
        raise ValueError("pattern-only matrix")
    sums = np.zeros(matrix.n_cols)
    cols = np.repeat(
        np.arange(matrix.n_cols, dtype=np.int64), np.diff(matrix.colptr)
    )
    np.add.at(sums, cols, np.abs(matrix.values))
    return float(sums.max(initial=0.0))


def inverse_norm1_estimate(
    solve: Callable[[np.ndarray], np.ndarray],
    solve_transpose: Callable[[np.ndarray], np.ndarray],
    n: int,
    *,
    max_iter: int = 5,
) -> float:
    """Hager's estimator for ``‖A⁻¹‖₁`` given solves with A and Aᵀ.

    Guaranteed to be a lower bound; in practice within a small factor of
    the truth (the tests check a factor of 3 against dense inverses).
    """
    x = np.full(n, 1.0 / n)
    est = 0.0
    for _ in range(max_iter):
        y = solve(x)
        new_est = float(np.abs(y).sum())
        xi = np.sign(y)
        xi[xi == 0] = 1.0
        z = solve_transpose(xi)
        j = int(np.argmax(np.abs(z)))
        if new_est <= est:
            break
        est = new_est
        if np.abs(z[j]) <= z @ x:
            break
        x = np.zeros(n)
        x[j] = 1.0
    return est


def condest(
    matrix: SparseMatrixCSC,
    solve: Callable[[np.ndarray], np.ndarray],
    solve_transpose: Callable[[np.ndarray], np.ndarray] | None = None,
    *,
    max_iter: int = 5,
) -> float:
    """Estimate ``κ₁(A)`` using a factorization's solve.

    ``solve_transpose`` defaults to ``solve`` (exact for the symmetric
    factorizations LLᵀ/LDLᵀ; for LU pass the transpose solve or accept a
    symmetric-pattern approximation).
    """
    inv = inverse_norm1_estimate(
        solve, solve_transpose or solve, matrix.n_rows, max_iter=max_iter
    )
    return norm1(matrix) * inv
