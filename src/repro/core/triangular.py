"""Block triangular solves on a :class:`NumericFactor`.

Forward substitution walks the panels in ascending order, backward in
descending order; within a panel the dense diagonal triangle is solved
and the tall part applied as a GEMV/GEMM.  Plain (non-conjugated)
transposes throughout — the complex collection entries are complex
*symmetric*.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.core.factor import NumericFactor

__all__ = ["forward_solve", "backward_solve", "solve_factored"]


def _diag_lower(factor: NumericFactor, k: int) -> tuple[np.ndarray, bool]:
    """Lower-triangular diagonal block of panel ``k`` and its unit flag."""
    w = factor.symbol.cblk_width(k)
    diag = factor.L[k][:w, :w]
    unit = factor.factotype in ("ldlt", "lu")
    return diag, unit


def forward_solve(factor: NumericFactor, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` (L as stored: unit lower for LDLᵀ/LU)."""
    x = np.array(b, dtype=factor.dtype, copy=True)
    sym = factor.symbol
    for k in range(sym.n_cblk):
        f, l = int(sym.cblk_ptr[k]), int(sym.cblk_ptr[k + 1])
        w = l - f
        diag, unit = _diag_lower(factor, k)
        y = sla.solve_triangular(
            diag, x[f:l], lower=True, unit_diagonal=unit, check_finite=False
        )
        x[f:l] = y
        panel = factor.L[k]
        if panel.shape[0] > w:
            below = factor.rows[k][w:]
            x[below] -= panel[w:, :] @ y
    return x


def backward_solve(factor: NumericFactor, y: np.ndarray) -> np.ndarray:
    """Solve the upper system: ``Lᵀ x = y`` (llt/ldlt) or ``U x = y`` (lu)."""
    x = np.array(y, dtype=factor.dtype, copy=True)
    sym = factor.symbol
    for k in range(sym.n_cblk - 1, -1, -1):
        f, l = int(sym.cblk_ptr[k]), int(sym.cblk_ptr[k + 1])
        w = l - f
        if factor.factotype == "lu":
            upanel = factor.U[k]
            diag = factor.L[k][:w, :w]  # packed LU: upper triangle is U11
            if upanel.shape[0] > w:
                below = factor.rows[k][w:]
                # U[cols, below] = Uᵀ-panel rows: subtract U12 · x2.
                x[f:l] -= upanel[w:, :].T @ x[below]
            x[f:l] = sla.solve_triangular(
                diag, x[f:l], lower=False, check_finite=False
            )
        else:
            panel = factor.L[k]
            diag, unit = _diag_lower(factor, k)
            if panel.shape[0] > w:
                below = factor.rows[k][w:]
                x[f:l] -= panel[w:, :].T @ x[below]
            x[f:l] = sla.solve_triangular(
                diag, x[f:l], lower=True, unit_diagonal=unit,
                trans="T", check_finite=False
            )
    return x


def solve_factored(factor: NumericFactor, b: np.ndarray) -> np.ndarray:
    """Full solve through the factor: forward, (diagonal,) backward.

    ``b`` may be one right-hand side (shape ``(n,)``) or a block of them
    (shape ``(n, k)``) — the block variant amortises the factor traversal,
    as in the solvers' multiple-RHS interfaces.
    """
    y = forward_solve(factor, b)
    if factor.factotype == "ldlt":
        d = np.concatenate(factor.D)
        y = y / (d if y.ndim == 1 else d[:, None])
    return backward_solve(factor, y)
