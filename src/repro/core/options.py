"""Solver-level options bundle."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.symbolic.analyze import SymbolicOptions

__all__ = ["SolverOptions"]

_FACTOTYPES = ("llt", "ldlt", "lu")
_RUNTIMES = ("sequential", "native", "starpu", "parsec", "threaded")
_KERNELS = ("numpy", "compiled")


@dataclass(frozen=True)
class SolverOptions:
    """Options of :class:`repro.core.solver.SparseSolver`.

    Attributes
    ----------
    factotype:
        ``"llt"``, ``"ldlt"`` or ``"lu"``.
    symbolic:
        Analyze-phase options (ordering, amalgamation, splitting).
    runtime:
        Which engine executes the factorization DAG: ``"sequential"``
        (reference driver), ``"threaded"`` (real thread-pool execution),
        or one of the scheduler policies (``"native"``, ``"starpu"``,
        ``"parsec"``) when simulating.
    n_workers:
        Worker threads for the threaded runtime.
    workspace_update:
        CPU two-step update kernel (True) vs. direct-scatter GPU twin.
    index_cache:
        Precompute each couple's scatter maps once per symbolic
        structure and reuse them in every update (bit-identical to the
        uncached path; see :mod:`repro.kernels.indexcache`).
    dl_buffer:
        LDLᵀ only: keep the persistent DLᵀ buffer filled at panel
        time instead of recomputing ``L·D`` inside each update (the
        paper's generic-runtime penalty, §V-A).  Off by default so the
        Figure-2 penalty curve stays reproducible.
    accumulate:
        Threaded runtime only: merge same-target update contributions
        in a per-worker accumulator and take the target mutex once per
        batch instead of once per couple (fan-in accumulation).
    kernels:
        Numeric kernel backend: ``"numpy"`` (the bit-identity reference)
        or ``"compiled"`` (numba-jit fused update/merge/gather kernels,
        :mod:`repro.kernels.compiled`).  ``"compiled"`` degrades
        gracefully to numpy when numba is not installed; the *effective*
        backend is stamped into ``trace.meta["kernels"]``.
    refine:
        Run iterative refinement inside :meth:`SparseSolver.solve`.
    refine_tol / refine_max_iter:
        Refinement stopping criteria.
    pivot_threshold:
        When > 0, pivots smaller in magnitude are perturbed to
        ±threshold instead of failing (static-pivoting recovery; the
        perturbation count is reported on the factorization info).
    """

    factotype: str = "llt"
    symbolic: SymbolicOptions = field(default_factory=SymbolicOptions)
    runtime: str = "sequential"
    n_workers: int = 4
    workspace_update: bool = True
    index_cache: bool = True
    dl_buffer: bool = False
    accumulate: bool = False
    kernels: str = "numpy"
    refine: bool = True
    refine_tol: float = 1e-12
    refine_max_iter: int = 10
    pivot_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.factotype not in _FACTOTYPES:
            raise ValueError(f"factotype must be one of {_FACTOTYPES}")
        if self.runtime not in _RUNTIMES:
            raise ValueError(f"runtime must be one of {_RUNTIMES}")
        if self.kernels not in _KERNELS:
            raise ValueError(f"kernels must be one of {_KERNELS}")
        if self.n_workers < 1:
            raise ValueError("n_workers must be positive")
        if self.pivot_threshold < 0:
            raise ValueError("pivot_threshold must be >= 0")
