"""Preconditioned Krylov solvers.

PaStiX exposes its factorization both as a direct solver and as a
preconditioner for iterative refinement of tougher systems (simple
refinement, GMRES, CG, BiCGstab).  This module provides the Krylov side:
right-preconditioned GMRES(m) and BiCGstab, plus CG for SPD systems,
each taking an arbitrary ``precondition`` closure — typically
``SparseSolver._raw_solve`` or an incomplete-factorization analogue.

All solvers are matrix-free (they only call ``matvec``) and work for
real and complex systems (plain inner products with conjugation where
mathematically required).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.sparse.csc import SparseMatrixCSC

__all__ = ["KrylovResult", "gmres", "conjugate_gradient", "bicgstab"]


@dataclass(frozen=True)
class KrylovResult:
    """Outcome of a Krylov solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    history: tuple[float, ...]


def _identity(v: np.ndarray) -> np.ndarray:
    return v


def gmres(
    matrix: SparseMatrixCSC,
    b: np.ndarray,
    *,
    precondition: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    restart: int = 30,
    tol: float = 1e-10,
    max_iter: int = 200,
    x0: Optional[np.ndarray] = None,
) -> KrylovResult:
    """Right-preconditioned restarted GMRES(m).

    Minimises ``‖b − A M⁻¹ u‖`` over the Krylov space of ``A M⁻¹`` and
    returns ``x = M⁻¹ u``; with the direct factorization as ``M`` it
    converges in one or two iterations, which the tests assert.
    """
    M = precondition or _identity
    b = np.asarray(b)
    n = b.size
    dtype = np.result_type(b.dtype, np.float64, matrix.values.dtype)
    x = np.zeros(n, dtype=dtype) if x0 is None else np.array(x0, dtype=dtype)
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return KrylovResult(np.zeros(n, dtype=dtype), 0, 0.0, True, ())

    history: list[float] = []
    total_iters = 0
    while total_iters < max_iter:
        r = b - matrix.matvec(x)
        beta = float(np.linalg.norm(r))
        history.append(beta / bnorm)
        if beta / bnorm <= tol:
            return KrylovResult(x, total_iters, beta / bnorm, True,
                                tuple(history))
        m = min(restart, max_iter - total_iters)
        # Arnoldi with modified Gram-Schmidt.
        V = np.zeros((n, m + 1), dtype=dtype)
        H = np.zeros((m + 1, m), dtype=dtype)
        V[:, 0] = r / beta
        # Givens rotations applied to H on the fly.
        cs = np.zeros(m, dtype=dtype)
        sn = np.zeros(m, dtype=dtype)
        g = np.zeros(m + 1, dtype=dtype)
        g[0] = beta
        k_done = 0
        for k in range(m):
            w = matrix.matvec(M(V[:, k]))
            for i in range(k + 1):
                H[i, k] = np.vdot(V[:, i], w)
                w = w - H[i, k] * V[:, i]
            H[k + 1, k] = np.linalg.norm(w)
            if abs(H[k + 1, k]) > 1e-300:
                V[:, k + 1] = w / H[k + 1, k]
            # Apply previous rotations to the new column.
            for i in range(k):
                temp = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                H[i + 1, k] = -np.conj(sn[i]) * H[i, k] + cs[i] * H[i + 1, k]
                H[i, k] = temp
            # New rotation to annihilate H[k+1, k].
            denom = np.sqrt(abs(H[k, k]) ** 2 + abs(H[k + 1, k]) ** 2)
            if denom == 0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k] = abs(H[k, k]) / denom
                phase = H[k, k] / abs(H[k, k]) if H[k, k] != 0 else 1.0
                sn[k] = phase * np.conj(H[k + 1, k]) / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            g[k + 1] = -np.conj(sn[k]) * g[k]
            g[k] = cs[k] * g[k]
            k_done = k + 1
            total_iters += 1
            resnorm = abs(g[k + 1]) / bnorm
            history.append(float(resnorm))
            if resnorm <= tol:
                break
        # Solve the small triangular system and update x.
        y = np.zeros(k_done, dtype=dtype)
        for i in range(k_done - 1, -1, -1):
            y[i] = (g[i] - H[i, i + 1: k_done] @ y[i + 1:]) / H[i, i]
        x = x + M(V[:, :k_done] @ y)
        if history[-1] <= tol:
            r = b - matrix.matvec(x)
            final = float(np.linalg.norm(r)) / bnorm
            return KrylovResult(x, total_iters, final, final <= 10 * tol,
                                tuple(history))
    r = b - matrix.matvec(x)
    final = float(np.linalg.norm(r)) / bnorm
    return KrylovResult(x, total_iters, final, final <= tol, tuple(history))


def conjugate_gradient(
    matrix: SparseMatrixCSC,
    b: np.ndarray,
    *,
    precondition: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    tol: float = 1e-10,
    max_iter: int = 500,
    x0: Optional[np.ndarray] = None,
) -> KrylovResult:
    """Preconditioned conjugate gradients (SPD matrices only)."""
    M = precondition or _identity
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return KrylovResult(np.zeros_like(b), 0, 0.0, True, ())
    r = b - matrix.matvec(x)
    z = M(r)
    p = z.copy()
    rz = float(r @ z)
    history: list[float] = []
    for it in range(max_iter):
        resnorm = float(np.linalg.norm(r)) / bnorm
        history.append(resnorm)
        if resnorm <= tol:
            return KrylovResult(x, it, resnorm, True, tuple(history))
        Ap = matrix.matvec(p)
        alpha = rz / float(p @ Ap)
        x = x + alpha * p
        r = r - alpha * Ap
        z = M(r)
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    resnorm = float(np.linalg.norm(b - matrix.matvec(x))) / bnorm
    return KrylovResult(x, max_iter, resnorm, resnorm <= tol, tuple(history))


def bicgstab(
    matrix: SparseMatrixCSC,
    b: np.ndarray,
    *,
    precondition: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    tol: float = 1e-10,
    max_iter: int = 500,
    x0: Optional[np.ndarray] = None,
) -> KrylovResult:
    """Right-preconditioned BiCGstab (general square systems)."""
    M = precondition or _identity
    b = np.asarray(b)
    dtype = np.result_type(b.dtype, np.float64, matrix.values.dtype)
    b = b.astype(dtype)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=dtype)
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return KrylovResult(np.zeros_like(b), 0, 0.0, True, ())
    r = b - matrix.matvec(x)
    r_hat = r.copy()
    rho = alpha = omega = 1.0 + 0.0j if np.iscomplexobj(b) else 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    history: list[float] = []
    for it in range(max_iter):
        resnorm = float(np.linalg.norm(r)) / bnorm
        history.append(resnorm)
        if resnorm <= tol:
            return KrylovResult(x, it, resnorm, True, tuple(history))
        rho_new = np.vdot(r_hat, r)
        if rho_new == 0:
            break  # breakdown
        beta = (rho_new / rho) * (alpha / omega)
        rho = rho_new
        p = r + beta * (p - omega * v)
        ph = M(p)
        v = matrix.matvec(ph)
        alpha = rho / np.vdot(r_hat, v)
        s = r - alpha * v
        if float(np.linalg.norm(s)) / bnorm <= tol:
            x = x + alpha * ph
            resnorm = float(np.linalg.norm(b - matrix.matvec(x))) / bnorm
            history.append(resnorm)
            return KrylovResult(x, it + 1, resnorm, True, tuple(history))
        sh = M(s)
        t = matrix.matvec(sh)
        tt = np.vdot(t, t)
        if tt == 0:
            break
        omega = np.vdot(t, s) / tt
        x = x + alpha * ph + omega * sh
        r = s - omega * t
        if omega == 0:
            break
    resnorm = float(np.linalg.norm(b - matrix.matvec(x))) / bnorm
    return KrylovResult(x, len(history), resnorm, resnorm <= tol,
                        tuple(history))
