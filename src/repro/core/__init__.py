"""Core solver: numeric factor storage, factorization drivers, triangular
solves, iterative refinement, and the public :class:`SparseSolver` API.
"""

from repro.core.factor import NumericFactor
from repro.core.factorization import factorize_sequential, factorization_order
from repro.core.triangular import solve_factored, forward_solve, backward_solve
from repro.core.refinement import iterative_refinement, RefinementResult
from repro.core.krylov import gmres, conjugate_gradient, bicgstab, KrylovResult
from repro.core.condest import condest, norm1, inverse_norm1_estimate
from repro.core.options import SolverOptions
from repro.core.solver import SparseSolver, FactorizationInfo

__all__ = [
    "NumericFactor",
    "factorize_sequential",
    "factorization_order",
    "solve_factored",
    "forward_solve",
    "backward_solve",
    "iterative_refinement",
    "RefinementResult",
    "gmres",
    "conjugate_gradient",
    "bicgstab",
    "KrylovResult",
    "condest",
    "norm1",
    "inverse_norm1_estimate",
    "SolverOptions",
    "SparseSolver",
    "FactorizationInfo",
]
