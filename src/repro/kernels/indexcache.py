"""Symbolic scatter-map cache for the numeric hot path.

Every update couple ``(k, t)`` needs the same four pieces of index
bookkeeping before its GEMM can scatter into the facing panel:

* ``i0, i1`` — the slice of ``k``'s below-diagonal rows that lands
  inside ``t``'s column range (two ``searchsorted`` calls);
* ``cols_local`` — those rows rebased to ``t``-local column indices;
* ``rows_local`` — the position of every tail row of ``k`` (at and
  after ``i0``) inside ``t``'s factor-row array (one ``searchsorted``
  over the whole tail).

All four are **purely symbolic**: they depend only on the
:class:`~repro.symbolic.structures.SymbolMatrix`, never on numeric
values, so recomputing them inside every ``panel_update_compute`` call —
on every factorization of the same pattern — is redundant work.  The
paper's sparse-GEMM discussion (§V) singles out exactly this scatter
bookkeeping as the non-BLAS cost of the update task; real supernodal
codes precompute the block index maps once at analysis time (PaStiX's
``blok``/``cblk`` solver structures play the same role).

:class:`CoupleMapCache` builds the maps once per symbol and is attached
to a :class:`~repro.core.factor.NumericFactor` (``factor.index_cache``),
where :func:`repro.kernels.panel.panel_update_compute` and
:func:`~repro.kernels.panel.panel_update` pick it up.  Because the maps
are symbol-owned, **repeated factorizations of the same pattern with new
values reuse the same cache** (:func:`get_couple_cache` memoizes on the
symbol object).

The cache is audited: ``repro.verify.symbols.verify_couple_cache``
(N507/N508) re-derives every map from the symbol through *different*
primitives and fails on any mismatch, so a stale or corrupted cache can
never silently produce a wrong factor (``make selftest`` proves the
audit fires).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.symbolic.structures import SymbolMatrix

__all__ = ["CoupleMap", "CoupleMapCache", "get_couple_cache"]


@dataclass(frozen=True)
class CoupleMap:
    """Precomputed scatter maps of one update couple ``(k, t)``.

    ``rows_local`` spans ``k``'s whole tail from ``i0`` (the L-side
    scatter rows); its first ``i1 - i0`` entries are the facing slice
    and the remainder (``rows_local[i1 - i0:]``) is exactly the LU
    U-side map — the searchsorted the uncached path recomputes.
    ``rk_size`` is the length of ``k``'s below-diagonal row array, so
    callers can test ``i1 < rk_size`` without touching the rows.
    """

    i0: int
    i1: int
    rows_local: np.ndarray
    cols_local: np.ndarray
    rk_size: int


class CoupleMapCache:
    """All couple scatter maps of one symbol, built in one pass.

    ``maps[(k, t)]`` holds the :class:`CoupleMap` of every true couple
    (every ``(source, facing)`` pair with at least one facing row);
    ``facing[k]`` is the ascending array of targets panel ``k`` updates
    (the same enumeration as
    :func:`repro.core.factorization.facing_cblks`, precomputed).

    ``hits``/``misses`` are best-effort counters (racy under threads, by
    design — they feed benchmark stats, not control flow).
    """

    def __init__(self, symbol: SymbolMatrix) -> None:
        t0 = time.perf_counter()
        self.symbol = symbol
        self.maps: dict[tuple[int, int], CoupleMap] = {}
        self.facing: list[np.ndarray] = []
        self.hits = 0
        self.misses = 0
        self._build()
        self.n_couples = len(self.maps)
        self.build_s = time.perf_counter() - t0

    def _build(self) -> None:
        sym = self.symbol
        ptr = sym.cblk_ptr
        rows = [sym.cblk_rows(k) for k in range(sym.n_cblk)]
        for k in range(sym.n_cblk):
            w = sym.cblk_width(k)
            rk = rows[k][w:]
            b0, b1 = int(sym.blok_ptr[k]) + 1, int(sym.blok_ptr[k + 1])
            if b0 >= b1:
                self.facing.append(np.empty(0, dtype=np.int64))
                continue
            faces = sym.blok_face[b0:b1]
            keep = np.ones(faces.size, dtype=bool)
            keep[1:] = faces[1:] != faces[:-1]
            targets = faces[keep].astype(np.int64, copy=False)
            self.facing.append(targets)
            for t in targets:
                t = int(t)
                i0 = int(np.searchsorted(rk, ptr[t]))
                i1 = int(np.searchsorted(rk, ptr[t + 1]))
                self.maps[(k, t)] = CoupleMap(
                    i0,
                    i1,
                    np.searchsorted(rows[t], rk[i0:]).astype(
                        np.int64, copy=False
                    ),
                    (rk[i0:i1] - ptr[t]).astype(np.int64, copy=False),
                    int(rk.size),
                )

    # ------------------------------------------------------------------
    def lookup(self, k: int, t: int) -> CoupleMap | None:
        """The couple's maps, or ``None`` when ``k`` does not face ``t``."""
        cm = self.maps.get((k, t))
        if cm is None:
            self.misses += 1
        else:
            self.hits += 1
        return cm

    def nbytes(self) -> int:
        return sum(
            cm.rows_local.nbytes + cm.cols_local.nbytes
            for cm in self.maps.values()
        ) + sum(f.nbytes for f in self.facing)

    def stats(self) -> dict:
        """Counters for ``ExecutionTrace.meta`` / benchmark reports."""
        return {
            "couples": int(self.n_couples),
            "hits": int(self.hits),
            "misses": int(self.misses),
            "build_s": float(self.build_s),
            "nbytes": int(self.nbytes()),
        }

    def clone(self) -> "CoupleMapCache":
        """Shallow clone with an independent ``maps`` dict (injectors)."""
        out = object.__new__(CoupleMapCache)
        out.symbol = self.symbol
        out.maps = dict(self.maps)
        out.facing = list(self.facing)
        out.hits = 0
        out.misses = 0
        out.n_couples = self.n_couples
        out.build_s = self.build_s
        return out


def get_couple_cache(symbol: SymbolMatrix) -> CoupleMapCache:
    """The symbol's couple cache, built on first use and memoized.

    The cache lives on the symbol object itself (``_couple_cache``), so
    two factorizations of the same pattern — and the sequential driver,
    the threaded runtime, and the verify audit — all share one build.
    A lost race between concurrent first callers at worst builds twice;
    both results are identical, so either may win.
    """
    cache = getattr(symbol, "_couple_cache", None)
    if cache is None or cache.symbol is not symbol:
        cache = CoupleMapCache(symbol)
        symbol._couple_cache = cache
    return cache
