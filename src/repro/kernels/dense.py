"""Dense kernels on contiguous blocks.

The solver performs *static pivoting* (the paper, §III: "PASTIX doesn't
perform dynamic pivoting … which allows the factorized matrix structure
to be fully known at the analysis step"), so the LDLᵀ and LU kernels here
deliberately do **not** pivot.  The generators guarantee diagonal
dominance, making that numerically safe, as in the paper's test set.

All kernels operate on NumPy arrays and lean on BLAS/LAPACK through NumPy
and SciPy (which release the GIL — the threaded runtime depends on this).
"""

from __future__ import annotations

import threading

import numpy as np
import scipy.linalg as sla

__all__ = [
    "potrf",
    "ldlt_nopiv",
    "getrf_nopiv",
    "trsm_lower_right",
    "trsm_unit_lower_left",
]


def potrf(block: np.ndarray) -> np.ndarray:
    """Cholesky factorization: returns lower ``L`` with ``L Lᵀ = block``.

    Real SPD blocks only (the complex collection entries use LDLᵀ or LU).
    """
    if np.iscomplexobj(block):
        raise TypeError("potrf is for real SPD blocks; use ldlt_nopiv/getrf_nopiv")
    return np.linalg.cholesky(block)


class PivotMonitor:
    """Static-pivoting safety net.

    PaStiX-style solvers do not exchange rows at factorization time;
    instead, a pivot whose magnitude falls under ``threshold`` is
    *perturbed* to ``±threshold`` and counted, and iterative refinement
    recovers the lost digits afterwards (the SuperLU-dist / PaStiX
    static-pivoting recipe).  One monitor instance is threaded through a
    factorization; ``n_perturbed`` reports how often it fired.  The
    counter is lock-protected: the threaded runtime factorizes panels
    concurrently and ``+=`` on an attribute is not atomic in Python.
    """

    def __init__(self, threshold: float = 0.0) -> None:
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = threshold
        self.n_perturbed = 0
        self._count_lock = threading.Lock()

    def fix(self, pivot, where: str):
        """Return a safe pivot, perturbing (or raising) as configured."""
        if pivot != 0 and abs(pivot) >= self.threshold:
            return pivot
        if self.threshold == 0.0:
            raise ZeroDivisionError(
                f"zero pivot at {where} (static pivoting failed)"
            )
        with self._count_lock:
            self.n_perturbed += 1
        if pivot == 0:
            return self.threshold
        return pivot / abs(pivot) * self.threshold


_STRICT = PivotMonitor(0.0)


def ldlt_nopiv(
    block: np.ndarray, monitor: PivotMonitor | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """LDLᵀ factorization without pivoting.

    Returns ``(L, d)`` with ``L`` unit lower triangular and ``d`` the
    diagonal of ``D``, such that ``L·diag(d)·Lᵀ = block``.  Works for real
    symmetric and *complex symmetric* (not Hermitian) blocks — the
    transpose is plain, never conjugated, matching the paper's Z-LDLᵀ
    matrices.  ``monitor`` enables tiny-pivot perturbation.

    Right-looking column loop: O(w) Python iterations of vectorised
    rank-1 updates, fine for panel widths up to a few hundred.
    """
    monitor = monitor or _STRICT
    a = np.array(block)  # working copy
    w = a.shape[0]
    d = np.empty(w, dtype=a.dtype)
    for j in range(w):
        dj = monitor.fix(a[j, j], f"column {j}")
        d[j] = dj
        col = a[j + 1:, j] / dj
        a[j + 1:, j] = col
        # Trailing update: A22 -= col * dj * colᵀ  (plain transpose).
        a[j + 1:, j + 1:] -= np.outer(col * dj, col)
    L = np.tril(a, -1)
    np.fill_diagonal(L, 1.0)
    return L, d


def getrf_nopiv(
    block: np.ndarray, monitor: PivotMonitor | None = None
) -> np.ndarray:
    """LU factorization without pivoting, packed in one array.

    Returns ``LU`` with the strict lower triangle holding ``L`` (unit
    diagonal implicit) and the upper triangle holding ``U``.
    ``monitor`` enables tiny-pivot perturbation.
    """
    monitor = monitor or _STRICT
    a = np.array(block)
    w = a.shape[0]
    for j in range(w):
        piv = monitor.fix(a[j, j], f"column {j}")
        a[j, j] = piv
        a[j + 1:, j] /= piv
        a[j + 1:, j + 1:] -= np.outer(a[j + 1:, j], a[j, j + 1:])
    return a


def trsm_lower_right(diag_l: np.ndarray, b: np.ndarray, *, unit: bool = False) -> np.ndarray:
    """Solve ``X · diag_lᵀ = b`` for ``X`` (right-side lower-transpose TRSM).

    This is the panel TRSM of the factorization: ``L21 = A21 · L11^{-T}``.
    Plain transpose (complex-symmetric safe).  ``unit`` marks a unit
    diagonal.
    """
    # X L^T = B  <=>  L X^T = B^T
    xt = sla.solve_triangular(
        diag_l, b.T, lower=True, unit_diagonal=unit, check_finite=False
    )
    return xt.T


def trsm_unit_lower_left(diag_l: np.ndarray, b: np.ndarray, *, unit: bool = True) -> np.ndarray:
    """Solve ``diag_l · X = b`` (left lower TRSM), unit diagonal by default.

    Used for the U panel of the LU factorization: ``U12 = L11^{-1} A12``.
    """
    return sla.solve_triangular(
        diag_l, b, lower=True, unit_diagonal=unit, check_finite=False
    )
