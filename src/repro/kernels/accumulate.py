"""Per-worker fan-in accumulation for same-target update batches.

Several source panels usually contribute to one facing panel; the
threaded runtime's lock narrowing still takes the target mutex once per
couple to apply each scatter-add.  Fan-both style solvers (Jacquelin et
al.) instead *accumulate* the contributions of a batch locally and
commit them with one locked write — fewer mutex acquisitions and one
dense row-slab subtraction instead of many gappy ones.

:class:`WorkspacePool` is a per-worker reusable arena (one allocation,
grown monotonically) so batching never allocates on the hot path;
:class:`FanInAccumulator` owns two pools (L and U sides) and implements
the two-phase protocol the runtime drives:

* :meth:`FanInAccumulator.load` — **outside** the target lock: zero the
  arena and scatter-add every batched contribution into it, tracking
  the touched row span;
* :meth:`FanInAccumulator.apply` — **under** the target lock: subtract
  the touched slab (``L[t][r0:r1, :] -= acc[r0:r1, :]``) in one
  contiguous write.

Accumulation reorders the floating-point reduction into the target
panel (contributions are summed in the accumulator before hitting the
panel), so — like any change of update execution order across threads —
results agree with the sequential factor to roundoff, not bitwise.
That is why the threaded runtime keeps it opt-in (``accumulate=True``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:
    from numpy.typing import DTypeLike

    from repro.core.factor import NumericFactor

    #: One ``panel_update_compute`` result: ``(rows_local, cols_local,
    #: contrib, rows_u, contrib_u)`` — the U-side pair is ``None``/empty
    #: for factorizations without a distinct U.
    UpdateParts = tuple[
        np.ndarray, np.ndarray, np.ndarray, np.ndarray,
        Optional[np.ndarray],
    ]

__all__ = ["WorkspacePool", "FanInAccumulator"]


class WorkspacePool:
    """A reusable dense scratch buffer, grown monotonically.

    ``get(shape, dtype)`` hands back a zeroed view of the arena shaped
    ``shape``; the arena is reallocated only when the request outgrows
    it (or changes dtype), so steady-state batches are allocation-free.
    Single-owner: each worker thread holds its own pool.
    """

    def __init__(self) -> None:
        self._arena: np.ndarray | None = None
        self.n_grows = 0

    def get(self, shape: tuple[int, int], dtype: DTypeLike) -> np.ndarray:
        size = int(shape[0]) * int(shape[1])
        arena = self._arena
        if arena is None or arena.size < size or arena.dtype != dtype:
            self._arena = arena = np.empty(size, dtype=dtype)
            self.n_grows += 1
        buf = arena[:size].reshape(shape)
        buf[...] = 0
        return buf


class FanInAccumulator:
    """One worker's accumulator for same-target update batches."""

    def __init__(self) -> None:
        self._pool_l = WorkspacePool()
        self._pool_u = WorkspacePool()
        self._acc_l: np.ndarray | None = None
        self._acc_u: np.ndarray | None = None
        self._span = (0, 0)
        self._span_u = (0, 0)
        self.n_batches = 0
        self.n_merged = 0

    # -- phase 1: outside the target lock ------------------------------
    def load(self, factor: NumericFactor, t: int,
             parts_list: Sequence[UpdateParts]) -> None:
        """Merge a batch of ``panel_update_compute`` parts locally.

        When the factor runs the compiled backend the merge routes
        through :func:`repro.kernels.compiled.merge_add` — the same adds
        at the same distinct positions as the ``np.ix_`` form (one
        contribution never repeats a ``(row, col)`` pair), so compiled
        and numpy merges are bit-identical.
        """
        from repro.kernels.compiled import HAVE_NUMBA, merge_add

        use_compiled = (
            getattr(factor, "kernels", "numpy") == "compiled" and HAVE_NUMBA
        )
        shape = factor.L[t].shape
        dtype = factor.L[t].dtype
        acc_l = self._pool_l.get(shape, dtype)
        acc_u = None
        r_lo, r_hi = shape[0], 0
        ur_lo, ur_hi = shape[0], 0
        for rows_local, cols_local, contrib, rows_u, contrib_u in parts_list:
            if use_compiled:
                merge_add(acc_l, rows_local, cols_local, contrib)
            else:
                acc_l[np.ix_(rows_local, cols_local)] += contrib
            r_lo = min(r_lo, int(rows_local[0]))
            r_hi = max(r_hi, int(rows_local[-1]) + 1)
            if contrib_u is not None and rows_u.size:
                if acc_u is None:
                    acc_u = self._pool_u.get(shape, dtype)
                if use_compiled:
                    merge_add(acc_u, rows_u, cols_local, contrib_u)
                else:
                    acc_u[np.ix_(rows_u, cols_local)] += contrib_u
                ur_lo = min(ur_lo, int(rows_u[0]))
                ur_hi = max(ur_hi, int(rows_u[-1]) + 1)
        self._acc_l, self._span = acc_l, (r_lo, r_hi)
        self._acc_u, self._span_u = acc_u, (ur_lo, ur_hi)
        self.n_batches += 1
        self.n_merged += len(parts_list)

    # -- phase 2: under the target lock --------------------------------
    def apply(self, factor: NumericFactor, t: int) -> None:
        """Commit the loaded batch into panel ``t`` (caller holds its
        mutex): one contiguous row-slab subtraction per side."""
        r0, r1 = self._span
        if r1 > r0 and self._acc_l is not None:
            factor.L[t][r0:r1, :] -= self._acc_l[r0:r1, :]
        if self._acc_u is not None:
            u0, u1 = self._span_u
            if u1 > u0:
                factor.U[t][u0:u1, :] -= self._acc_u[u0:u1, :]
        self._acc_l = self._acc_u = None

    def stats(self) -> dict:
        return {
            "batches": int(self.n_batches),
            "merged_updates": int(self.n_merged),
            "pool_grows": int(
                self._pool_l.n_grows + self._pool_u.n_grows
            ),
        }
