"""Supernodal panel kernels.

The two task bodies of the factorization DAG (paper §V):

* :func:`panel_factorize` — factorize a panel's diagonal block and apply
  the TRSM to its off-diagonal rows (one task per cblk);
* :func:`panel_update` — apply a factorized panel's contribution to one
  facing panel: the sparse GEMM with scatter into the gappy destination
  (one task per (panel, facing panel) couple).

Both operate in place on a :class:`repro.core.factor.NumericFactor`-like
object (duck-typed: ``L``, ``U``, ``D``, ``rows``, ``symbol``,
``factotype`` attributes), so they are equally callable from the
sequential driver, the threaded runtime, and the tests.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.kernels.dense import (
    getrf_nopiv,
    ldlt_nopiv,
    potrf,
    trsm_lower_right,
    trsm_unit_lower_left,
)

__all__ = [
    "panel_factorize",
    "panel_update",
    "panel_update_compute",
    "panel_update_scatter",
    "update_slice",
]


def panel_factorize(factor, k: int) -> None:
    """Factorize panel ``k`` in place (diagonal block + panel TRSM)."""
    sym = factor.symbol
    w = sym.cblk_width(k)
    Lk = factor.L[k]
    diag = Lk[:w, :w]
    monitor = getattr(factor, "pivot_monitor", None)

    if factor.factotype == "llt":
        ld = potrf(diag)
        Lk[:w, :w] = np.tril(ld)
        if Lk.shape[0] > w:
            Lk[w:, :] = trsm_lower_right(ld, Lk[w:, :])
    elif factor.factotype == "ldlt":
        ld, d = ldlt_nopiv(diag, monitor)
        Lk[:w, :w] = ld
        factor.D[k] = d
        if Lk.shape[0] > w:
            # L21 = A21 · L11^{-T} · D^{-1}
            Lk[w:, :] = trsm_lower_right(ld, Lk[w:, :], unit=True) / d
        if getattr(factor, "dl_buffer", False):
            # Persistent DLᵀ buffer (PaStiX's native LDLᵀ update path):
            # (L·D) for the whole tail is formed once here, so no update
            # task ever recomputes it.  The generic-runtime variant the
            # paper penalizes in Figure 2 is dl_buffer=False.
            factor.DL[k] = Lk[w:, :] * d
    elif factor.factotype == "lu":
        lu = getrf_nopiv(diag, monitor)
        Lk[:w, :w] = lu  # packed L\U diagonal block
        Uk = factor.U[k]
        if Lk.shape[0] > w:
            # L21 = A21 · U11^{-1}  ⇔  U11ᵀ · L21ᵀ = A21ᵀ
            u11 = np.triu(lu)
            Lk[w:, :] = sla.solve_triangular(
                u11, Lk[w:, :].T, lower=False, trans="T", check_finite=False
            ).T
            # U12ᵀ = A12ᵀ · L11^{-T}  (unit lower diagonal)
            Uk[w:, :] = trsm_lower_right(lu, Uk[w:, :], unit=True)
    else:
        raise ValueError(f"unknown factotype {factor.factotype!r}")


def update_slice(factor, k: int, t: int) -> tuple[int, int, np.ndarray]:
    """Locate panel ``k``'s rows facing panel ``t``.

    Returns ``(i0, i1, rk)`` where ``rk`` is ``k``'s below-diagonal global
    row array and ``rk[i0:i1]`` the (contiguous) slice of rows inside
    ``t``'s column range.
    """
    sym = factor.symbol
    w = sym.cblk_width(k)
    rk = factor.rows[k][w:]
    f_t, l_t = int(sym.cblk_ptr[t]), int(sym.cblk_ptr[t + 1])
    i0 = int(np.searchsorted(rk, f_t))
    i1 = int(np.searchsorted(rk, l_t))
    return i0, i1, rk


def _update_maps(factor, k: int, t: int):
    """Scatter maps of couple ``(k, t)``: cached lookup or fallback.

    Returns ``None`` when ``k`` does not face ``t``, else
    ``(i0, i1, rows_local, cols_local, rk_size)`` — the same arrays a
    :class:`repro.kernels.indexcache.CoupleMap` carries.

    The uncached fallback exploits the target's layout instead of binary
    searching the whole tail: the facing rows ``rk[i0:i1]`` land in the
    target's diagonal block, whose factor-row positions are contiguous
    (``rows[t][:w_t] == arange(f_t, l_t)``), so their local rows *are*
    the column map ``rk[i0:i1] - f_t`` — no search.  Only the
    strictly-below tail ``rk[i1:]`` needs a ``searchsorted``, and only
    against the target's below-diagonal rows.  The resulting arrays are
    bit-identical to a full ``searchsorted(rows[t], rk[i0:])``.
    """
    cache = getattr(factor, "index_cache", None)
    if cache is not None:
        cm = cache.lookup(k, t)
        if cm is None:
            return None  # k does not actually face t
        return cm.i0, cm.i1, cm.rows_local, cm.cols_local, cm.rk_size
    i0, i1, rk = update_slice(factor, k, t)
    if i0 == i1:
        return None  # k does not actually face t
    sym = factor.symbol
    w_t = sym.cblk_width(t)
    cols_local = (rk[i0:i1] - sym.cblk_ptr[t]).astype(np.int64, copy=False)
    tail = np.searchsorted(factor.rows[t][w_t:], rk[i1:]).astype(
        np.int64, copy=False
    )
    rows_local = np.concatenate([cols_local, tail + w_t])
    return i0, i1, rows_local, cols_local, int(rk.size)


def panel_update_compute(factor, k: int, t: int, part=None):
    """Compute half of the workspace update: the GEMM, no writes.

    Forms panel ``k``'s contribution to facing panel ``t`` in contiguous
    temporaries ("the outer product is computed in a contiguous
    temporary buffer").  Reads only panel ``k``'s numerics and ``t``'s
    *static* row structure — never ``t``'s values — so concurrent
    callers may run it without holding ``t``'s mutex.  The threaded
    runtime's lock narrowing hinges on that: the expensive GEMM happens
    outside the panel lock, and only the cheap scatter-add
    (:func:`panel_update_scatter`) serializes.

    Returns ``None`` when ``k`` does not actually face ``t``, else an
    opaque parts tuple for :func:`panel_update_scatter`.

    ``part=(lo, hi)`` restricts the contribution to tail rows
    ``rk[i0+lo : i0+hi]`` — one row-block of a 2D-split update (see
    :func:`repro.symbolic.splitting.plan_update_rowblocks`).  The parts
    of a tiling of ``[0, m)`` sum to exactly the unsplit contribution.

    When the factor carries a couple index cache
    (:class:`repro.kernels.indexcache.CoupleMapCache`, attached as
    ``factor.index_cache``) the symbolic bookkeeping — both
    ``searchsorted`` maps and the column rebase — is looked up instead
    of recomputed, leaving only the GEMM; the maps are identical arrays,
    so cached and uncached runs produce bit-identical factors.
    """
    sym = factor.symbol
    w = sym.cblk_width(k)
    maps = _update_maps(factor, k, t)
    if maps is None:
        return None  # k does not actually face t
    i0, i1, rows_local, cols_local, rk_size = maps
    Lk = factor.L[k]

    lo, hi = (0, rk_size - i0) if part is None else (int(part[0]), int(part[1]))
    a_tail = Lk[w + i0 + lo: w + i0 + hi, :]
    rows_part = rows_local[lo:hi]
    b_mid = Lk[w + i0: w + i1, :]
    if factor.factotype == "ldlt":
        DL = getattr(factor, "DL", None)
        if DL is not None and DL[k] is not None:
            # Persistent DLᵀ buffer filled at panel_factorize time.
            b_mid = DL[k][i0:i1, :]
        else:
            # Recompute (L·D) for the facing rows — the generic-runtime
            # variant the paper discusses (no persistent DLᵀ buffer).
            b_mid = b_mid * factor.D[k]
    elif factor.factotype == "lu":
        b_mid = factor.U[k][w + i0: w + i1, :]

    contrib = a_tail @ b_mid.T

    rows_local_u = None
    contrib_u = None
    nn = i1 - i0
    if factor.factotype == "lu" and hi > nn:
        # U-side update: strictly-below rows of the target's U panel —
        # tail rows past the facing slice, clipped to this part.  Its
        # row map is the tail of the L-side map — no second searchsorted.
        u0 = max(lo, nn)
        u_tail = factor.U[k][w + i0 + u0: w + i0 + hi, :]
        l_mid = Lk[w + i0: w + i1, :]
        rows_local_u = rows_local[u0:hi]
        contrib_u = u_tail @ l_mid.T
    return rows_part, cols_local, contrib, rows_local_u, contrib_u


def panel_update_scatter(factor, t: int, parts) -> None:
    """Scatter half: dispatch a precomputed contribution into ``t``.

    ``parts`` comes from :func:`panel_update_compute`.  This is the only
    half that writes panel ``t``, so concurrent callers must hold ``t``'s
    mutex around *this call only*.
    """
    rows_local, cols_local, contrib, rows_local_u, contrib_u = parts
    factor.L[t][np.ix_(rows_local, cols_local)] -= contrib
    if contrib_u is not None:
        factor.U[t][np.ix_(rows_local_u, cols_local)] -= contrib_u


def panel_update(
    factor, k: int, t: int, *, workspace: bool = True, part=None
) -> None:
    """Apply the update of factorized panel ``k`` onto facing panel ``t``.

    ``workspace=True`` computes the outer product into a contiguous
    temporary and scatters it afterwards (the paper's CPU strategy,
    split into :func:`panel_update_compute` + :func:`panel_update_scatter`
    so the threaded runtime can lock only the scatter);
    ``workspace=False`` routes through the blok-wise direct-scatter kernel
    (the GPU-style kernel twin, see :mod:`repro.kernels.sparse_gemm`).

    When the factor requests the compiled backend
    (``factor.kernels == "compiled"`` and numba is importable), the
    workspace path runs the fused compute+scatter kernel instead —
    callers must then hold ``t``'s mutex around the whole call, as with
    ``workspace=False``.

    ``part=(lo, hi)`` applies one row-block of a 2D-split update (see
    :func:`panel_update_compute`).
    """
    if workspace:
        from repro.kernels import compiled

        if (
            getattr(factor, "kernels", "numpy") == "compiled"
            and compiled.HAVE_NUMBA
        ):
            compiled.panel_update_fused(factor, k, t, part=part)
            return
        parts = panel_update_compute(factor, k, t, part=part)
        if parts is not None:
            panel_update_scatter(factor, t, parts)
        return

    sym = factor.symbol
    w = sym.cblk_width(k)
    maps = _update_maps(factor, k, t)
    if maps is None:
        return  # k does not actually face t
    i0, i1, rows_local, cols_local, rk_size = maps
    Lk = factor.L[k]

    lo, hi = (0, rk_size - i0) if part is None else (int(part[0]), int(part[1]))
    a_tail = Lk[w + i0 + lo: w + i0 + hi, :]
    b_mid = Lk[w + i0: w + i1, :]
    if factor.factotype == "ldlt":
        DL = getattr(factor, "DL", None)
        if DL is not None and DL[k] is not None:
            b_mid = DL[k][i0:i1, :]
        else:
            b_mid = b_mid * factor.D[k]
    elif factor.factotype == "lu":
        b_mid = factor.U[k][w + i0: w + i1, :]

    from repro.kernels.sparse_gemm import sparse_gemm_scatter

    sparse_gemm_scatter(
        a_tail, b_mid, factor.L[t], rows_local[lo:hi], cols_local
    )

    nn = i1 - i0
    if factor.factotype == "lu" and hi > nn:
        u0 = max(lo, nn)
        u_tail = factor.U[k][w + i0 + u0: w + i0 + hi, :]
        l_mid = Lk[w + i0: w + i1, :]
        sparse_gemm_scatter(
            u_tail, l_mid, factor.U[t], rows_local[u0:hi], cols_local
        )
