"""Optional compiled (numba-jit) numeric kernels.

The paper's premise is that the numeric kernels — not the runtime — set
the GFlop/s ceiling.  This module provides jit-compiled twins of the
three scatter-gather hot spots, selected with the
``kernels="numpy"|"compiled"`` toggle on
:func:`repro.core.factorization.factorize_sequential`,
:func:`repro.runtime.threaded.factorize_threaded` and
:class:`repro.core.options.SolverOptions`:

* :func:`fused_gemm_scatter` — the update GEMM fused with its scatter:
  ``contrib`` is written straight into the target panel through the
  :class:`repro.kernels.indexcache.CoupleMap` index arrays, no
  ``np.ix_`` temporaries, one ``prange`` loop, GIL released so threaded
  workers overlap updates for real;
* :func:`merge_add` — the fan-in merge of
  :class:`repro.kernels.accumulate.FanInAccumulator` as an elementwise
  scatter-add (bit-identical to the ``np.ix_`` form it replaces);
* :func:`gather_assign` — the :meth:`NumericFactor.assemble` gather as
  an elementwise loop (pure assignment, bit-identical).

numba is an *optional* dependency (the ``[compiled]`` extra in
``pyproject.toml``).  When it is absent every entry point falls back to
the pure-numpy path, and :func:`resolve_kernels` reports the effective
backend as ``"numpy"`` — which the runtimes stamp into ``trace.meta`` so
a trace always says which kernels really ran.  ``kernels="numpy"`` is
the bit-identity reference: it never routes through this module's fused
kernel, whose per-element dot products re-associate the reduction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "resolve_kernels",
    "fused_gemm_scatter",
    "merge_add",
    "gather_assign",
    "panel_update_fused",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the offline default
    HAVE_NUMBA = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Identity decorator so the kernels stay importable sans numba."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap

    prange = range


def resolve_kernels(requested: str) -> str:
    """Effective kernel backend for a requested one.

    ``"compiled"`` resolves to itself only when numba is importable;
    otherwise it *gracefully* degrades to ``"numpy"`` (no error — the
    request is a preference, the stamp in ``trace.meta`` is the truth).
    """
    if requested not in ("numpy", "compiled"):
        raise ValueError(f"unknown kernels backend {requested!r}")
    if requested == "compiled" and not HAVE_NUMBA:
        return "numpy"
    return requested


# ----------------------------------------------------------------------
# jit bodies.  Each has a numpy twin used when numba is absent; the
# numpy twins of merge_add / gather_assign are the exact expressions the
# call sites used before this module existed, so the fallback is
# bit-identical by construction.  The fused kernel's fallback materializes
# the contribution (BLAS GEMM) and scatters it — same values as the
# two-phase path, only the jit version re-associates.
# ----------------------------------------------------------------------


@njit(nogil=True, parallel=True, cache=True)
def _fused_gemm_scatter_nb(a, b, out, rows, cols):  # pragma: no cover
    m = a.shape[0]
    n = b.shape[0]
    w = a.shape[1]
    for i in prange(m):
        r = rows[i]
        for j in range(n):
            acc = a[i, 0] * b[j, 0]
            for p in range(1, w):
                acc += a[i, p] * b[j, p]
            out[r, cols[j]] -= acc


@njit(nogil=True, cache=True)
def _merge_add_nb(acc, rows, cols, contrib):  # pragma: no cover
    for i in range(rows.shape[0]):
        r = rows[i]
        for j in range(cols.shape[0]):
            acc[r, cols[j]] += contrib[i, j]


@njit(nogil=True, cache=True)
def _gather_assign_nb(panel, rloc, cloc, vals):  # pragma: no cover
    for i in range(rloc.shape[0]):
        panel[rloc[i], cloc[i]] = vals[i]


def fused_gemm_scatter(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
) -> None:
    """``out[rows, cols] -= a @ b.T`` with no ``np.ix_`` temporary.

    The compiled form runs one GIL-free ``prange`` over the ``m`` rows,
    each iteration dotting against the ``n`` facing rows and subtracting
    in place.  The fallback forms the contribution with BLAS and
    scatters it — numerically the two re-associate, hence the pinned
    ``allclose`` bound in the tolerance tests rather than bit equality.
    """
    if HAVE_NUMBA:
        _fused_gemm_scatter_nb(a, b, out, rows, cols)
    else:
        out[np.ix_(rows, cols)] -= a @ b.T


def merge_add(
    acc: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    contrib: np.ndarray,
) -> None:
    """``acc[rows, cols] += contrib`` — the fan-in merge.

    One contribution lands on distinct ``(row, col)`` pairs, so the
    elementwise loop performs the *same* adds in the same order as the
    ``np.ix_`` fancy-index form: compiled and numpy merges are
    bit-identical.
    """
    if HAVE_NUMBA:
        _merge_add_nb(acc, rows, cols, contrib)
    else:
        acc[np.ix_(rows, cols)] += contrib


def gather_assign(
    panel: np.ndarray,
    rloc: np.ndarray,
    cloc: np.ndarray,
    vals: np.ndarray,
) -> None:
    """``panel[rloc, cloc] = vals`` — the assemble gather.

    Pure assignment at distinct positions: the compiled loop and the
    fancy-index form are bit-identical.
    """
    if HAVE_NUMBA:
        _gather_assign_nb(panel, rloc, cloc, vals)
    else:
        panel[rloc, cloc] = vals


def panel_update_fused(factor, k: int, t: int, part=None) -> None:
    """Fused compute+scatter of couple ``(k, t)`` into panel ``t``.

    The compiled twin of ``panel_update_compute`` +
    ``panel_update_scatter`` collapsed into one kernel: the contribution
    is never materialized — each ``(row, col)`` product is subtracted
    straight from the target through the couple's index maps.  Writes
    panel ``t``, so callers must hold ``t``'s mutex around the whole
    call (the GIL is released inside the jit region, which is what lets
    other workers' fused updates to *other* panels overlap).

    ``part=(lo, hi)`` applies one row-block of a 2D-split update.
    """
    from repro.kernels.panel import _update_maps

    sym = factor.symbol
    w = sym.cblk_width(k)
    maps = _update_maps(factor, k, t)
    if maps is None:
        return  # k does not actually face t
    i0, i1, rows_local, cols_local, rk_size = maps
    Lk = factor.L[k]

    lo, hi = (0, rk_size - i0) if part is None else (int(part[0]), int(part[1]))
    a_tail = Lk[w + i0 + lo: w + i0 + hi, :]
    b_mid = Lk[w + i0: w + i1, :]
    if factor.factotype == "ldlt":
        DL = getattr(factor, "DL", None)
        if DL is not None and DL[k] is not None:
            b_mid = DL[k][i0:i1, :]
        else:
            b_mid = b_mid * factor.D[k]
    elif factor.factotype == "lu":
        b_mid = factor.U[k][w + i0: w + i1, :]

    fused_gemm_scatter(
        np.ascontiguousarray(a_tail), np.ascontiguousarray(b_mid),
        factor.L[t], rows_local[lo:hi], cols_local,
    )

    nn = i1 - i0
    if factor.factotype == "lu" and hi > nn:
        u0 = max(lo, nn)
        u_tail = factor.U[k][w + i0 + u0: w + i0 + hi, :]
        l_mid = Lk[w + i0: w + i1, :]
        fused_gemm_scatter(
            np.ascontiguousarray(u_tail), np.ascontiguousarray(l_mid),
            factor.U[t], rows_local[u0:hi], cols_local,
        )
