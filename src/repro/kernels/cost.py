"""Flop-count models.

These feed three consumers: the performance figures (GFlop/s = paper
flops / measured-or-simulated time), the native scheduler's static cost
model, and the machine simulator's kernel durations.  Counts follow the
standard LAPACK working notes conventions; complex arithmetic costs 4×
the real flops (a complex multiply-add is 4 real multiplies + 4 adds,
conventionally counted as a factor 4 on fused counts, as the paper's
Table I TFlop column does).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "complex_multiplier",
    "flops_potrf",
    "flops_ldlt",
    "flops_getrf",
    "flops_trsm",
    "flops_gemm",
    "flops_panel",
    "flops_update",
    "flops_update_part",
    "flops_total",
    "index_overhead_flops",
    "panel_bytes",
]

#: Flop-equivalents charged per scalar index operation (a searchsorted
#: comparison step or an index copy/rebase).  Integer bookkeeping is
#: branchy and cache-unfriendly next to a BLAS GEMM, so one "op" is
#: modelled as several flop-equivalents; 8 matches the measured ratio of
#: the uncached index work to GEMM throughput on the bench hosts.
INDEX_OP_FLOPS = 8.0


def complex_multiplier(dtype) -> int:
    """4 for complex dtypes, 1 for real."""
    return 4 if np.issubdtype(np.dtype(dtype), np.complexfloating) else 1


def panel_bytes(symbol, dtype=np.float64, factotype: str = "llt") -> np.ndarray:
    """Per-panel storage in bytes (length ``n_cblk``, float64 array).

    LU panels carry both the L and U sides, so they cost twice the
    entries of a Cholesky/LDLᵀ panel.  This is the unit of host↔device
    traffic: a panel always crosses the PCIe link whole (the simulator
    and the M4xx memory auditor must agree on it).
    """
    widths = np.diff(symbol.cblk_ptr).astype(np.int64)
    heights = np.array(
        [symbol.cblk_height(k) for k in range(symbol.n_cblk)], dtype=np.int64
    )
    per_entry = np.dtype(dtype).itemsize * (2 if factotype == "lu" else 1)
    return (heights * widths * per_entry).astype(np.float64)


def flops_potrf(w: int) -> float:
    """Cholesky of a ``w×w`` block: w³/3 + w²/2 + w/6."""
    return w**3 / 3.0 + w**2 / 2.0 + w / 6.0


def flops_ldlt(w: int) -> float:
    """LDLᵀ of a ``w×w`` block (same cubic term as Cholesky)."""
    return w**3 / 3.0 + w**2


def flops_getrf(w: int) -> float:
    """LU of a ``w×w`` block: 2w³/3 − w²/2 − w/6."""
    return 2.0 * w**3 / 3.0 - w**2 / 2.0 - w / 6.0


def flops_trsm(w: int, h: int) -> float:
    """Triangular solve of an ``h×w`` panel against a ``w×w`` triangle."""
    return float(h) * w * w


def flops_gemm(m: int, n: int, k: int) -> float:
    """``m×n`` += ``m×k`` · ``k×n``: 2mnk."""
    return 2.0 * m * n * k


def flops_panel(w: int, below: int, factotype: str) -> float:
    """One panel task: diagonal factorization + panel TRSM(s).

    ``below`` is the number of rows under the diagonal block.  LU panels
    do the TRSM twice (L and U sides); LDLᵀ adds the D scaling.
    """
    if factotype == "llt":
        return flops_potrf(w) + flops_trsm(w, below)
    if factotype == "ldlt":
        return flops_ldlt(w) + flops_trsm(w, below) + float(w) * below
    if factotype == "lu":
        return flops_getrf(w) + 2.0 * flops_trsm(w, below)
    raise ValueError(f"unknown factotype {factotype!r}")


def flops_update(
    m: int, n: int, w: int, factotype: str, *, recompute_ld: bool = True
) -> float:
    """One update task from a panel of width ``w``.

    ``n`` is the number of source rows facing the target panel, ``m`` the
    number of source rows at-and-after the first facing row (so the GEMM
    is ``m×n×w``).  For LU, the U-side GEMM covers the strictly-below part
    (``(m-n)×n×w``).  For LDLᵀ, ``recompute_ld`` adds the ``n·w``
    multiplies of rebuilding ``(L·D)`` inside each update — the overhead
    the paper attributes to the generic runtimes, which cannot afford
    PaStiX's per-panel temporary ``DLᵀ`` buffer (§V-A).
    """
    if factotype == "llt":
        return flops_gemm(m, n, w)
    if factotype == "ldlt":
        extra = float(n) * w if recompute_ld else 0.0
        return flops_gemm(m, n, w) + extra
    if factotype == "lu":
        return flops_gemm(m, n, w) + flops_gemm(max(m - n, 0), n, w)
    raise ValueError(f"unknown factotype {factotype!r}")


def flops_update_part(
    m: int,
    n: int,
    w: int,
    factotype: str,
    lo: int,
    hi: int,
    *,
    recompute_ld: bool = True,
) -> float:
    """One row-block ``[lo, hi)`` of a 2D-split update task.

    The parts of any tiling of ``[0, m)`` sum *exactly* to
    :func:`flops_update`: the L-side GEMM splits by rows; the LDLᵀ
    ``(L·D)`` rebuild is charged once, to the part containing row 0; the
    LU U-side GEMM covers tail rows ``[n, m)``, so a part is charged its
    overlap with that range.  The symbolic auditor's N509 check holds
    split DAGs to this identity.
    """
    if factotype == "llt":
        return flops_gemm(hi - lo, n, w)
    if factotype == "ldlt":
        extra = float(n) * w if recompute_ld and lo == 0 else 0.0
        return flops_gemm(hi - lo, n, w) + extra
    if factotype == "lu":
        u_rows = max(0, min(hi, m) - max(lo, n))
        return flops_gemm(hi - lo, n, w) + flops_gemm(u_rows, n, w)
    raise ValueError(f"unknown factotype {factotype!r}")


def index_overhead_flops(dag) -> np.ndarray:
    """Modelled per-task cost (flop-equivalents) of *uncached* index work.

    Each update task re-derives its scatter maps when no couple index
    cache is attached: two binary searches locate the facing slice, one
    ``searchsorted`` over the ``m`` tail rows maps them into the target
    (each ``log2(h_t)`` comparisons against the target's ``h_t`` factor
    rows), and the column rebase plus the int64 conversions copy
    ``m + n`` indices twice.  With a cache all of it disappears, so the
    replay/simulator duration of an uncached update is its GEMM flops
    *plus* this overhead — the reduced-traffic count the benchmarks'
    ``base`` vs ``opt`` variants compare.  Non-update tasks cost 0.

    Returns a float array of length ``dag.n_tasks``.
    """
    out = np.zeros(dag.n_tasks, dtype=np.float64)
    sym = dag.symbol
    if sym is None or not dag.n_tasks:
        return out
    from repro.dag.tasks import TaskKind

    heights = np.array(
        [sym.cblk_height(k) for k in range(sym.n_cblk)], dtype=np.float64
    )
    is_upd = dag.kind == TaskKind.UPDATE
    if not is_upd.any():
        return out
    m = dag.gemm_m[is_upd].astype(np.float64)
    n = dag.gemm_n[is_upd].astype(np.float64)
    h_t = heights[dag.target[is_upd]]
    searches = (m + 2.0) * np.ceil(np.log2(np.maximum(h_t, 2.0)))
    copies = 2.0 * (m + n)
    out[is_upd] = INDEX_OP_FLOPS * (searches + copies)
    return out


def flops_total(symbol, factotype: str, dtype=np.float64) -> float:
    """Total factorization flops for a :class:`SymbolMatrix`.

    Sums the panel and update tasks exactly as the DAG will execute them
    (with ``recompute_ld=False`` — the canonical count, matching how the
    paper computes GFlop/s from a fixed per-matrix flop count).
    """
    mult = complex_multiplier(dtype)
    total = 0.0
    K = symbol.n_cblk
    widths = np.diff(symbol.cblk_ptr)
    for k in range(K):
        w = int(widths[k])
        below = symbol.cblk_below(k)
        total += flops_panel(w, below, factotype)
        # Group off-diagonal bloks by facing cblk.
        b0, b1 = int(symbol.blok_ptr[k]) + 1, int(symbol.blok_ptr[k + 1])
        if b0 >= b1:
            continue
        sizes = symbol.blok_lrow[b0:b1] - symbol.blok_frow[b0:b1]
        faces = symbol.blok_face[b0:b1]
        # Suffix row counts: rows at-and-after each blok.
        suffix = np.cumsum(sizes[::-1])[::-1]
        i = 0
        nb = b1 - b0
        while i < nb:
            j = i
            n = 0
            while j < nb and faces[j] == faces[i]:
                n += int(sizes[j])
                j += 1
            m = int(suffix[i])
            total += flops_update(m, n, w, factotype, recompute_ld=False)
            i = j
    return total * mult
