"""Sparse-target GEMM with direct scatter (GPU-kernel functional twin).

The paper's GPU kernel (§V-B) extends the ASTRA DGEMM so the addition
step lands *directly* in the gappy destination panel — trading memory
coalescence for the elimination of the per-kernel temporary buffer that a
GPU cannot afford.  This module is the CPU functional twin: instead of
one big temporary + dispatch, the product is computed and subtracted one
*run of consecutive target rows* at a time, writing straight into the
destination storage.

Numerically it produces exactly what the workspace path produces (tests
assert this); the machine simulator models its different *performance*
profile separately (:mod:`repro.machine.perfmodel`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparse_gemm_scatter", "row_runs"]


def row_runs(rows_local: np.ndarray) -> list[tuple[int, int, int]]:
    """Decompose target row indices into runs of consecutive rows.

    Returns ``(src_start, dst_start, length)`` triples: source rows
    ``src_start:src_start+length`` map to destination rows
    ``dst_start:dst_start+length``.
    """
    if rows_local.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(rows_local) != 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks + 1, [rows_local.size]))
    return [
        (int(s), int(rows_local[s]), int(e - s)) for s, e in zip(starts, ends)
    ]


def sparse_gemm_scatter(
    a_tail: np.ndarray,
    b_mid: np.ndarray,
    c_panel: np.ndarray,
    rows_local: np.ndarray,
    cols_local: np.ndarray,
) -> None:
    """Compute ``C[rows_local, cols_local] -= a_tail · b_midᵀ`` in place.

    ``a_tail`` is ``m×w``, ``b_mid`` is ``n×w``, ``rows_local`` has length
    ``m`` (strictly increasing), ``cols_local`` length ``n`` (strictly
    increasing).  Consecutive destination rows are processed as blocks so
    each partial product is written directly to the destination without a
    full ``m×n`` temporary.
    """
    m, w = a_tail.shape
    n = b_mid.shape[0]
    if rows_local.size != m or cols_local.size != n:
        raise ValueError("index arrays do not match operand shapes")
    if n == 0 or m == 0:
        return
    bt = b_mid.T
    # Column runs let us use plain slices on contiguous destinations.
    col_slices = row_runs(cols_local)
    for src_r, dst_r, len_r in row_runs(rows_local):
        a_blk = a_tail[src_r: src_r + len_r, :]
        prod = a_blk @ bt  # len_r × n, the largest live temporary
        for src_c, dst_c, len_c in col_slices:
            c_panel[dst_r: dst_r + len_r, dst_c: dst_c + len_c] -= (
                prod[:, src_c: src_c + len_c]
            )
