"""Numerical kernels.

Dense building blocks (POTRF / LDLᵀ / GETRF without pivoting, TRSM) used
by the panel tasks, the supernodal update kernels (the sparse GEMM of the
paper, in both the CPU two-step "temp buffer + dispatch" variant and the
GPU-style direct scatter variant), and the flop-count models that drive
both the static scheduler and the machine simulator.
"""

from repro.kernels.dense import (
    potrf,
    ldlt_nopiv,
    getrf_nopiv,
    trsm_lower_right,
    trsm_unit_lower_left,
)
from repro.kernels.panel import (
    panel_factorize,
    panel_update,
)
from repro.kernels.sparse_gemm import sparse_gemm_scatter
from repro.kernels.cost import (
    flops_potrf,
    flops_trsm,
    flops_gemm,
    flops_panel,
    flops_update,
    flops_total,
    complex_multiplier,
)

__all__ = [
    "potrf",
    "ldlt_nopiv",
    "getrf_nopiv",
    "trsm_lower_right",
    "trsm_unit_lower_left",
    "panel_factorize",
    "panel_update",
    "sparse_gemm_scatter",
    "flops_potrf",
    "flops_trsm",
    "flops_gemm",
    "flops_panel",
    "flops_update",
    "flops_total",
    "complex_multiplier",
]
