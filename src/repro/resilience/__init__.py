"""Fault-injection and recovery subsystem.

Deterministic fault models (:class:`~repro.resilience.faults.FaultModel`)
plug into the machine and distributed simulators; bounded-retry recovery
policies (:class:`~repro.resilience.recovery.RecoveryPolicy`) decide how
each fault is absorbed.  Every injected fault and its recovery land in
the :class:`~repro.runtime.tracing.ExecutionTrace` as first-class
events, which the R6xx auditor (:mod:`repro.verify.resilience`) checks
for pairing, double completion, and makespan accounting.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    PERSISTENT_KINDS,
    FaultModel,
    FaultSpec,
    window_factor,
)
from repro.resilience.health import (
    HEALTH_RANK,
    HEALTH_STATES,
    LEGAL_TRANSITIONS,
    HealthMonitor,
    HealthPolicy,
    bucket_key,
)
from repro.resilience.recovery import RecoveryPolicy, UnrecoverableError

__all__ = [
    "FAULT_KINDS",
    "PERSISTENT_KINDS",
    "FaultModel",
    "FaultSpec",
    "window_factor",
    "HEALTH_STATES",
    "HEALTH_RANK",
    "LEGAL_TRANSITIONS",
    "HealthMonitor",
    "HealthPolicy",
    "bucket_key",
    "RecoveryPolicy",
    "UnrecoverableError",
]
