"""Fault-injection and recovery subsystem.

Deterministic fault models (:class:`~repro.resilience.faults.FaultModel`)
plug into the machine and distributed simulators; bounded-retry recovery
policies (:class:`~repro.resilience.recovery.RecoveryPolicy`) decide how
each fault is absorbed.  Every injected fault and its recovery land in
the :class:`~repro.runtime.tracing.ExecutionTrace` as first-class
events, which the R6xx auditor (:mod:`repro.verify.resilience`) checks
for pairing, double completion, and makespan accounting.
"""

from repro.resilience.faults import FAULT_KINDS, FaultModel, FaultSpec
from repro.resilience.recovery import RecoveryPolicy, UnrecoverableError

__all__ = [
    "FAULT_KINDS",
    "FaultModel",
    "FaultSpec",
    "RecoveryPolicy",
    "UnrecoverableError",
]
