"""Seeded, deterministic fault model for the simulators and runtimes.

The paper's argument is that a generic task-based runtime owns the
scheduling concerns a solver used to hand-tune — and a production
runtime also owns *failure*: crashed workers, lost accelerators, dropped
transfers, stragglers, dead cluster nodes.  This module describes those
failures declaratively so the machine simulator
(:mod:`repro.machine.simulator`) and the distributed simulator
(:mod:`repro.distributed.simulator`) can inject them at their execution
hooks, and so two runs with the same seed inject *exactly* the same
faults (the R6xx auditor and the chaos matrix depend on that).

Two sources of faults compose:

* **specs** — explicit one-shot :class:`FaultSpec` records ("worker 0
  crashes on its first task after t=0", "GPU 1 is lost at t=1e-3");
  each spec fires at most once and is consumed when it triggers;
* **rates** — seeded Bernoulli draws per task execution / transfer /
  straggler opportunity.  Draws come from one
  ``np.random.default_rng(seed)`` consumed in simulator event order,
  which is itself deterministic, so a (seed, rate) pair always yields
  the same fault sequence for the same schedule.

A :class:`FaultModel` is stateful (specs are consumed, the RNG
advances): build a fresh one per run, or call :meth:`FaultModel.fresh`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "FaultSpec",
    "FaultModel",
    "FAULT_KINDS",
    "PERSISTENT_KINDS",
    "window_factor",
]


def window_factor(
    spans: list[tuple[float, float, float]] | None, now: float
) -> float:
    """Slowdown factor in effect at ``now`` for one resource's
    persistent-condition windows (``1.0`` when none applies).

    ``spans`` is one value of :meth:`FaultModel.pop_windows`; overlapping
    windows compound multiplicatively (two 2x limps = 4x).
    """
    if not spans:
        return 1.0
    factor = 1.0
    for t0, t1, f in spans:
        if t0 <= now < t1:
            factor *= f
    return factor

#: Fault kinds a spec may declare.
FAULT_KINDS = (
    "worker-crash",   # a CPU worker dies mid-task (permanently)
    "task-fault",     # one task attempt fails; the worker survives
    "gpu-loss",       # a GPU device disappears at a point in time
    "transfer-fail",  # one PCIe/NIC transfer attempt fails
    "straggler",      # a task runs `factor` times slower than modelled
    "node-fail",      # a distributed node dies and restarts
    "limplock",       # a worker/node runs `factor`x slow from `time` on
    "degraded-link",  # a link's bandwidth divides by `factor` from `time`
)

#: Kinds that describe a *persistent* condition over ``[time, until)``
#: rather than a one-shot event.  They are extracted whole with
#: :meth:`FaultModel.pop_timed` and managed by the engine, never matched
#: per-attempt.
PERSISTENT_KINDS = ("limplock", "degraded-link")


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    ``time`` is the earliest activation time (device/node losses fire
    exactly then; task/transfer faults hit the first matching attempt at
    or after it).  ``task`` restricts task-level kinds to one DAG task
    (``-1`` = any); ``resource`` names the worker / GPU / node / link
    index the fault targets (``-1`` = any).  ``factor`` is the
    slowdown multiplier (straggler and limplock) or the bandwidth
    divisor (degraded-link).  ``until`` bounds the persistent kinds
    (:data:`PERSISTENT_KINDS`): the condition holds over
    ``[time, until)`` and clears afterwards — the default ``inf`` means
    the resource limps for the rest of the run.
    """

    kind: str
    time: float = 0.0
    task: int = -1
    resource: int = -1
    factor: float = 4.0
    until: float = float("inf")

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.kind in PERSISTENT_KINDS:
            if self.resource < 0:
                raise ValueError(
                    f"{self.kind} spec must pin a resource index"
                )
            if not self.until > self.time:
                raise ValueError(
                    f"{self.kind} spec needs until > time "
                    f"(got [{self.time}, {self.until}])"
                )


class FaultModel:
    """Deterministic fault oracle the simulators consult at their hooks.

    ``task_fail_rate`` / ``transfer_fail_rate`` / ``straggler_rate`` add
    seeded Bernoulli faults on top of the explicit ``specs``.  All query
    methods consume state (specs fire once; rate draws advance the RNG),
    so reuse a model across runs only through :meth:`fresh`.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        *,
        seed: int = 0,
        task_fail_rate: float = 0.0,
        transfer_fail_rate: float = 0.0,
        straggler_rate: float = 0.0,
        straggler_factor: float = 4.0,
    ) -> None:
        self._config = (
            tuple(specs), seed, task_fail_rate, transfer_fail_rate,
            straggler_rate, straggler_factor,
        )
        self.specs: list[FaultSpec] = list(specs)
        self.seed = seed
        self.task_fail_rate = task_fail_rate
        self.transfer_fail_rate = transfer_fail_rate
        self.straggler_rate = straggler_rate
        self.straggler_factor = straggler_factor
        self._rng = np.random.default_rng(seed)
        #: Rate draws consumed so far — stamped into trace meta as
        #: ``{"rng": {"seed": ..., "draws": ...}}`` so the D803 audit can
        #: check that a replay consumed the RNG identically.
        self.n_draws = 0

    def _draw(self) -> float:
        """One Bernoulli draw from the run's single seeded RNG."""
        self.n_draws += 1
        return float(self._rng.random())

    def backoff_jitter(self) -> float:
        """Uniform ``[0, 1)`` variate for jittered recovery backoff.

        Comes from the same seeded stream as the fault draws (and counts
        toward ``n_draws``), so a replay that pays the same backoffs
        consumes the RNG identically — the D803 provenance audit holds
        with jitter on.
        """
        return self._draw()

    def fresh(self) -> "FaultModel":
        """A new model with the same configuration and no consumed state."""
        specs, seed, tf, xf, sr, sf = self._config
        return FaultModel(
            specs, seed=seed, task_fail_rate=tf, transfer_fail_rate=xf,
            straggler_rate=sr, straggler_factor=sf,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultModel(specs={len(self.specs)}, seed={self.seed}, "
            f"task={self.task_fail_rate}, transfer={self.transfer_fail_rate}, "
            f"straggler={self.straggler_rate})"
        )

    # ------------------------------------------------------------------
    # spec matching
    # ------------------------------------------------------------------
    def _take(self, kind: str, *, task: int = -1, resource: int = -1,
              now: float = 0.0) -> FaultSpec | None:
        """Pop and return the first matching un-fired spec, if any."""
        for i, s in enumerate(self.specs):
            if s.kind != kind or now < s.time:
                continue
            if s.task >= 0 and s.task != task:
                continue
            if s.resource >= 0 and s.resource != resource:
                continue
            return self.specs.pop(i)
        return None

    def pop_timed(self, kind: str) -> list[FaultSpec]:
        """Remove and return every spec of a purely time-driven kind
        (``gpu-loss`` / ``node-fail`` / the persistent kinds) so the
        caller can pre-schedule the onset events."""
        taken = [s for s in self.specs if s.kind == kind]
        self.specs = [s for s in self.specs if s.kind != kind]
        return taken

    def pop_windows(self, kind: str) -> dict[int, list[tuple[float, float, float]]]:
        """Consume every persistent spec of ``kind`` and return its
        condition windows keyed by resource index: each entry is a
        time-sorted list of ``(time, until, factor)`` triples.  Engines
        call this once at init and then evaluate
        :func:`window_factor` locally — persistent conditions never
        advance the RNG, so D803 draw accounting is unaffected.
        """
        if kind not in PERSISTENT_KINDS:
            raise ValueError(f"{kind!r} is not a persistent fault kind")
        windows: dict[int, list[tuple[float, float, float]]] = {}
        for s in self.pop_timed(kind):
            windows.setdefault(s.resource, []).append(
                (s.time, s.until, max(s.factor, 1.0))
            )
        for spans in windows.values():
            spans.sort()
        return windows

    # ------------------------------------------------------------------
    # simulator-facing queries
    # ------------------------------------------------------------------
    def task_fault(self, task: int, worker: int, now: float) -> str | None:
        """Does this task attempt fail?  Returns the fault kind or None.

        ``worker`` is the CPU worker index (``-1`` for a GPU attempt).
        A ``worker-crash`` spec takes the worker down with the task; a
        ``task-fault`` (spec or rate draw) is transient.
        """
        if worker >= 0:
            spec = self._take("worker-crash", task=task, resource=worker,
                              now=now)
            if spec is not None:
                return "worker-crash"
        spec = self._take("task-fault", task=task, resource=worker, now=now)
        if spec is not None:
            return "task-fault"
        if self.task_fail_rate > 0.0 and \
                self._draw() < self.task_fail_rate:
            return "task-fault"
        return None

    def transfer_fails(self, resource: int, cblk: int, now: float) -> bool:
        """Does this transfer attempt fail?  ``resource`` is the GPU link
        (machine sim) or destination node (distributed sim)."""
        if self._take("transfer-fail", task=cblk, resource=resource,
                      now=now) is not None:
            return True
        return self.transfer_fail_rate > 0.0 and \
            self._draw() < self.transfer_fail_rate

    def straggler(self, task: int, now: float) -> float:
        """Slowdown factor for this task attempt (1.0 = none)."""
        spec = self._take("straggler", task=task, now=now)
        if spec is not None:
            return max(spec.factor, 1.0)
        if self.straggler_rate > 0.0 and \
                self._draw() < self.straggler_rate:
            return max(self.straggler_factor, 1.0)
        return 1.0
