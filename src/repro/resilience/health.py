"""Worker health tracking and graceful degradation.

The resilience layer (PR 3) models *binary* failures: a worker is alive
or crashed.  A limping worker is a distinct and nastier class — it keeps
accepting (and stealing) work it executes 10-100x too slowly, silently
inflating makespan, whereas a dead one is detected and routed around.
This module supplies the detection half of graceful degradation; the
engines supply the reaction half (dispatch skipping, steal filtering,
backpressure, hedged re-execution):

* :class:`HealthPolicy` — the knobs: EWMA smoothing, the slowdown
  ratios that drive state transitions, quarantine/probation dwell
  parameters, and the hedging thresholds;
* :class:`HealthMonitor` — a per-resource state machine

  .. code-block:: text

      healthy -> suspect -> degraded -> quarantined -> probation
         ^---------/            \\----------------------^    |
         ^------------------------------------------ (clean) |
         \\<------------------------------------- (relapse)

  driven by an EWMA of observed-over-expected task duration per
  resource, where the expectation is per-(kernel, size-bucket): either
  supplied by the caller (the simulators know their duration model) or
  learned online as a running mean over currently-healthy workers (the
  real threaded runtime).

Every transition the monitor takes is returned to the caller, which
records it as a :class:`~repro.runtime.tracing.HealthEvent`; the R702
audit replays the recorded chain against :data:`LEGAL_TRANSITIONS`.
The monitor is deterministic — no RNG, no wall clock; time is always
passed in by the engine — so seeded simulator runs with monitoring on
replay bit-identically (D801).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = [
    "HEALTH_STATES",
    "LEGAL_TRANSITIONS",
    "HEALTH_RANK",
    "HealthPolicy",
    "HealthMonitor",
    "bucket_key",
]


def bucket_key(kind: int, flops: float) -> str:
    """Canonical per-(kernel, size-bucket) expectation key.

    ``"<kind>:<log2 bucket>"`` where the bucket is the floor of
    ``log2(flops)`` (flops clamped to >= 1, so a costless task lands in
    bucket 0).  Every consumer of per-kernel duration statistics — the
    threaded runtime's health monitor, the machine simulator's, and the
    adaptive scheduler's :class:`~repro.runtime.adaptive.PerfHistory` —
    must key through this one helper so their buckets can never drift
    apart (a drifted key would silently reset a worker's EWMA or fork
    the duration model per engine).
    """
    return f"{int(kind)}:{int(math.log2(max(float(flops), 1.0)))}"

#: States of the per-resource health machine, in degradation order.
HEALTH_STATES = (
    "healthy",      # EWMA near 1.0: full scheduling participation
    "suspect",      # mildly slow: still scheduled, in-flight work hedged
    "degraded",     # badly slow: de-prioritized, no stealing, backpressured
    "quarantined",  # pathological: receives no work until a probe window
    "probation",    # recovering: must run `probation_tasks` clean tasks
)

#: Legal edges of the state machine (the R702 contract).
LEGAL_TRANSITIONS = frozenset({
    ("healthy", "suspect"),
    ("suspect", "healthy"),
    ("suspect", "degraded"),
    ("degraded", "quarantined"),
    ("degraded", "probation"),
    ("quarantined", "probation"),
    ("probation", "healthy"),
    ("probation", "suspect"),
})

#: Scheduling severity: 0 = full participation (hedging aside),
#: 1 = de-prioritize / no stealing / backpressure, 2 = no dispatch.
HEALTH_RANK = {
    "healthy": 0,
    "suspect": 0,
    "probation": 0,
    "degraded": 1,
    "quarantined": 2,
}


@dataclass(frozen=True)
class HealthPolicy:
    """Detection and reaction knobs for :class:`HealthMonitor`.

    The ratio thresholds are EWMA values of observed/expected duration;
    with the default EWMA weight a persistent ``factor``x limplock
    converges to an EWMA of ``factor`` within a handful of tasks.
    """

    #: EWMA weight of the newest observation.
    ewma_alpha: float = 0.4
    #: Observations on a resource before any transition may fire.
    min_samples: int = 3
    #: healthy -> suspect when the EWMA crosses this.
    suspect_ratio: float = 2.0
    #: suspect -> degraded.
    degraded_ratio: float = 4.0
    #: degraded -> quarantined.
    quarantine_ratio: float = 8.0
    #: Falling below this recovers (suspect -> healthy,
    #: degraded -> probation).
    recover_ratio: float = 1.5
    #: Signal floor: an observation whose duration *and* expectation
    #: both sit below this carries no health signal (on microsecond
    #: tasks, scheduler jitter alone exceeds every ratio threshold)
    #: and is only used to learn the expectation.  The wall-clock
    #: runtime sets this to a few OS-scheduling quanta; the simulators
    #: keep the 0.0 default (their virtual durations are exact).
    min_duration_s: float = 0.0
    #: Dwell time in quarantine before the probe into probation.
    quarantine_s: float = 0.05
    #: Clean observations required in probation before healthy.
    probation_tasks: int = 3
    #: Permit the quarantined state at all (the distributed simulator
    #: disables it: its tasks are owner-bound, so starving a node of
    #: dispatch entirely would deadlock the run — R703 stays trivially
    #: satisfied there and backpressure is the strongest reaction).
    allow_quarantine: bool = True
    #: Arm speculative (hedged) re-execution of in-flight tasks stuck
    #: on suspect-or-worse workers.
    hedge: bool = False
    #: Hedge when in-flight time exceeds ``hedge_ratio`` x expectation.
    hedge_ratio: float = 3.0
    #: Floor on the hedge threshold (suppresses hedging noise-length
    #: tasks; also the fallback when no expectation is known yet).
    hedge_min_s: float = 0.0
    #: Max concurrently running tasks on a degraded distributed node.
    backpressure_limit: int = 1


class HealthMonitor:
    """Per-resource health state machine over duration observations.

    Engines call :meth:`observe` after every completed task and
    :meth:`tick` from their dispatch loop; both return the list of
    transitions taken (``(resource, src, dst, time, ratio, reason)``)
    for the caller to record as trace :class:`HealthEvent` rows.  All
    mutating entry points take an internal lock, so the threaded
    runtime may observe from many workers concurrently.
    """

    def __init__(
        self,
        resources: Iterable[str] = (),
        *,
        policy: Optional[HealthPolicy] = None,
    ) -> None:
        self.policy = policy or HealthPolicy()
        self._state: dict[str, str] = {}
        self._ewma: dict[str, float] = {}
        self._count: dict[str, int] = {}
        self._probation_left: dict[str, int] = {}
        self._quarantined_at: dict[str, float] = {}
        #: Learned expectation per (kernel, size-bucket) key:
        #: key -> [n_samples, running mean].
        self._means: dict[str, list[float]] = {}
        self.n_observations = 0
        self.n_transitions = 0
        self._lock = threading.Lock()
        for r in resources:
            self.register(r)

    # ------------------------------------------------------------------
    # registration and queries
    # ------------------------------------------------------------------
    def register(self, resource: str) -> None:
        """Register a monitored resource (idempotent; starts healthy)."""
        with self._lock:
            if resource not in self._state:
                self._state[resource] = "healthy"
                self._ewma[resource] = 1.0
                self._count[resource] = 0

    def state(self, resource: str) -> str:
        return self._state.get(resource, "healthy")

    def rank(self, resource: str) -> int:
        """Scheduling severity of ``resource`` (see :data:`HEALTH_RANK`)."""
        return HEALTH_RANK[self.state(resource)]

    def ewma(self, resource: str) -> float:
        return self._ewma.get(resource, 1.0)

    def snapshot(self) -> dict[str, tuple[str, float]]:
        """``resource -> (state, ewma)`` for diagnostics / watchdogs."""
        with self._lock:
            return {r: (s, self._ewma.get(r, 1.0))
                    for r, s in sorted(self._state.items())}

    def counts(self) -> dict[str, int]:
        """Number of resources currently in each state."""
        out = {s: 0 for s in HEALTH_STATES}
        for s in self._state.values():
            out[s] += 1
        return out

    # ------------------------------------------------------------------
    # expectation model
    # ------------------------------------------------------------------
    def expected(self, key: str) -> Optional[float]:
        """Learned expected duration for a (kernel, size-bucket) key."""
        m = self._means.get(key)
        return m[1] if m else None

    def _learn(self, resource: str, key: str, duration: float) -> None:
        """Fold one observation into the learned expectation — only from
        rank-0 resources, so a limping worker cannot drag the baseline
        up after detection (before detection it contributes like anyone,
        which merely makes the detector slightly conservative)."""
        if HEALTH_RANK[self._state.get(resource, "healthy")] != 0:
            return
        m = self._means.setdefault(key, [0.0, 0.0])
        m[0] += 1.0
        m[1] += (duration - m[1]) / m[0]

    def hedge_after(self, key: str) -> Optional[float]:
        """In-flight age beyond which a task with this key should be
        hedged, or ``None`` when hedging is off / no basis exists."""
        p = self.policy
        if not p.hedge:
            return None
        exp = self.expected(key)
        if exp is not None and exp > 0.0:
            return max(p.hedge_ratio * exp, p.hedge_min_s)
        return p.hedge_min_s if p.hedge_min_s > 0.0 else None

    # ------------------------------------------------------------------
    # the state machine
    # ------------------------------------------------------------------
    def _transition(
        self,
        out: list[tuple[str, str, str, float, float, str]],
        resource: str,
        dst: str,
        now: float,
        ratio: float,
        reason: str,
    ) -> None:
        src = self._state[resource]
        if (src, dst) not in LEGAL_TRANSITIONS:  # pragma: no cover
            raise AssertionError(f"illegal health transition {src}->{dst}")
        self._state[resource] = dst
        self.n_transitions += 1
        if dst == "quarantined":
            self._quarantined_at[resource] = now
        elif dst == "probation":
            self._quarantined_at.pop(resource, None)
            self._probation_left[resource] = self.policy.probation_tasks
            self._ewma[resource] = 1.0
        out.append((resource, src, dst, now, ratio, reason))

    def _can_quarantine(self) -> bool:
        """Never quarantine the last dispatchable resource: with every
        worker starved of work the run would deadlock."""
        n_quar = sum(1 for s in self._state.values() if s == "quarantined")
        return n_quar + 1 < len(self._state)

    def observe(
        self,
        resource: str,
        key: str,
        duration: float,
        now: float,
        expected: Optional[float] = None,
    ) -> list[tuple[str, str, str, float, float, str]]:
        """Fold one completed-task duration into ``resource``'s EWMA and
        step its state machine; returns the transitions taken.

        ``expected`` is the modelled duration when the engine has one
        (the simulators); ``None`` uses the learned per-key mean.
        """
        p = self.policy
        with self._lock:
            self.register_locked(resource)
            self.n_observations += 1
            exp = expected
            if exp is None:
                exp = self.expected(key)
            self._learn(resource, key, duration)
            if exp is None or exp <= 0.0:
                return []
            if duration < p.min_duration_s and exp < p.min_duration_s:
                # Below the signal floor both ways: pure noise.  (A
                # duration *above* the floor against a tiny expectation
                # is exactly the limplock signature, so that still
                # counts.)
                return []
            ratio = duration / exp
            ew = self._ewma[resource]
            ew += p.ewma_alpha * (ratio - ew)
            self._ewma[resource] = ew
            self._count[resource] += 1
            if self._count[resource] < p.min_samples:
                return []
            out: list[tuple[str, str, str, float, float, str]] = []
            state = self._state[resource]
            if state == "healthy":
                if ew >= p.suspect_ratio:
                    self._transition(out, resource, "suspect", now, ew, "ewma")
            elif state == "suspect":
                if ew >= p.degraded_ratio:
                    self._transition(out, resource, "degraded", now, ew, "ewma")
                elif ew < p.recover_ratio:
                    self._transition(out, resource, "healthy", now, ew, "ewma")
            elif state == "degraded":
                if (ew >= p.quarantine_ratio and p.allow_quarantine
                        and self._can_quarantine()):
                    self._transition(out, resource, "quarantined", now, ew,
                                     "ewma")
                elif ew < p.recover_ratio:
                    self._transition(out, resource, "probation", now, ew,
                                     "ewma")
            elif state == "probation":
                if ew >= p.suspect_ratio:
                    self._transition(out, resource, "suspect", now, ew,
                                     "relapse")
                else:
                    left = self._probation_left.get(resource, 0) - 1
                    self._probation_left[resource] = left
                    if left <= 0:
                        self._transition(out, resource, "healthy", now, ew,
                                         "probation")
            # quarantined: exits only via the timer in tick().
            return out

    def register_locked(self, resource: str) -> None:
        """Registration for callers already holding the lock."""
        if resource not in self._state:
            self._state[resource] = "healthy"
            self._ewma[resource] = 1.0
            self._count[resource] = 0

    def tick(self, now: float) -> list[tuple[str, str, str, float, float, str]]:
        """Time-driven transitions: quarantine dwell expiry -> probation.

        Engines call this from their dispatch loop; cheap no-op when
        nothing is quarantined.
        """
        if not self._quarantined_at:
            return []
        with self._lock:
            out: list[tuple[str, str, str, float, float, str]] = []
            due = [r for r, t0 in sorted(self._quarantined_at.items())
                   if now - t0 >= self.policy.quarantine_s]
            for r in due:
                self._transition(out, r, "probation", now,
                                 self._ewma.get(r, 1.0), "probe")
            return out
