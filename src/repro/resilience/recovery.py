"""Recovery policies: what a runtime does when a fault fires.

The knobs mirror what PaRSEC/StarPU-class runtimes expose:

* **bounded task re-execution** — a failed task attempt is re-queued
  after an exponential backoff, at most ``max_retries`` times; beyond
  that the run raises :class:`UnrecoverableError` naming the task
  (silent infinite retry would turn every permanent fault into a hang);
* **transfer retry** — a failed PCIe/NIC transfer is retried with the
  same backoff schedule; each attempt is bounded by
  ``transfer_timeout_s`` of link occupancy so a black-holed link cannot
  absorb unbounded time;
* **GPU blacklisting** — a lost device is never scheduled again; its
  queued and in-flight tasks re-route (to surviving GPUs or the CPU
  duration tables) and its resident panels are invalidated;
* **checkpoint writeback** — while resilience is armed, every GPU task
  writes its target panel back to the host on completion, so device
  loss never loses committed results (panel-granularity checkpointing —
  the distributed simulator applies the same idea per node, where a
  crashed node restarts after ``node_restart_s`` and recomputes only
  the work that was in flight).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecoveryPolicy", "UnrecoverableError"]


class UnrecoverableError(RuntimeError):
    """A fault exhausted its retry budget; names the offending unit."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded-retry recovery configuration (see module docstring)."""

    #: Re-execution attempts per task / transfer beyond the first.
    max_retries: int = 3
    #: First backoff delay; attempt ``k`` waits ``backoff_s * factor**k``.
    backoff_s: float = 1e-4
    backoff_factor: float = 2.0
    #: Jitter fraction in ``[0, 1]``: the computed delay is interpolated
    #: between its deterministic value (``0.0``, the default) and an
    #: AWS-style *full jitter* draw ``uniform(0, delay)`` (``1.0``).
    #: Jitter de-synchronizes retry storms when several workers fail in
    #: one window; the uniform variate comes from the run's single
    #: seeded :class:`~repro.resilience.faults.FaultModel` RNG
    #: (:meth:`~repro.resilience.faults.FaultModel.backoff_jitter`), so
    #: the D803 draw-count audit still balances.
    jitter: float = 0.0
    #: Link-occupancy cap per failed transfer attempt.
    transfer_timeout_s: float = 5e-3
    #: Blacklist a lost GPU and re-route its work (vs. fail the run).
    gpu_blacklist: bool = True
    #: Write GPU task outputs back to the host on completion while
    #: resilience is armed (device loss then loses no committed panel).
    checkpoint_writeback: bool = True
    #: Reboot-and-restore delay after a distributed node failure.
    node_restart_s: float = 5e-3

    def backoff(self, attempt: int, u: float | None = None) -> float:
        """Backoff delay before retry ``attempt`` (0-based).

        ``u`` is a uniform ``[0, 1)`` variate from the fault model's
        seeded RNG; it is required exactly when ``jitter > 0`` (the
        deterministic schedule never consumes a draw, so zero-jitter
        runs replay bit-identically to pre-jitter traces).
        """
        base = self.backoff_s * self.backoff_factor ** attempt
        if self.jitter <= 0.0:
            return base
        if u is None:
            raise ValueError("jittered backoff needs a uniform draw u")
        return base * (1.0 - self.jitter) + base * self.jitter * u
