"""Panel splitting.

Wide supernodes — the separators at the top of the elimination tree, of
order :math:`N^{2/3}` columns for 3D problems — would serialise the whole
factorization if kept as single tasks.  The paper splits them vertically
during analysis ("supernodes of the higher levels are split vertically
prior to the factorization to limit the task granularity and create more
parallelism", §III), which also provides the classic look-ahead pipeline
on heterogeneous runs (§V-B).

Splitting supernode ``[f, l)`` with below-rows ``R`` into panels
``P_1 … P_m`` gives panel ``P_i`` the rowset ``cols(P_{i+1..m}) ∪ R`` —
after which panels are ordinary cblks and the downstream machinery needs
no special casing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["split_supernodes", "rowblock_bounds", "plan_update_rowblocks"]


def split_supernodes(
    snptr: np.ndarray,
    rowsets: list[np.ndarray],
    *,
    max_width: int = 128,
    min_panels: int = 1,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Split every supernode wider than ``max_width`` into near-equal panels.

    ``min_panels`` forces at least that many panels for any splittable
    supernode (used by ablations to over-decompose).  Returns the new
    ``(snptr, rowsets)``.
    """
    if max_width < 1:
        raise ValueError("max_width must be >= 1")
    K = snptr.size - 1
    new_bounds: list[int] = [0]
    new_rowsets: list[np.ndarray] = []
    for k in range(K):
        f, l = int(snptr[k]), int(snptr[k + 1])
        w = l - f
        m = max(min_panels if w > max_width or min_panels > 1 else 1,
                -(-w // max_width))
        m = min(m, w)  # at most one column per panel
        if m == 1:
            new_bounds.append(l)
            new_rowsets.append(rowsets[k])
            continue
        # Near-equal widths: the first (w % m) panels get one extra column.
        base, extra = divmod(w, m)
        start = f
        for i in range(m):
            width = base + (1 if i < extra else 0)
            end = start + width
            if end < l:
                tail = np.arange(end, l, dtype=np.int64)
                rows = np.concatenate([tail, rowsets[k]])
            else:
                rows = rowsets[k]
            new_bounds.append(end)
            new_rowsets.append(rows)
            start = end
        assert start == l
    return np.asarray(new_bounds, dtype=np.int64), new_rowsets


def rowblock_bounds(m: int, max_rows: int) -> list[tuple[int, int]]:
    """Near-equal tiling of ``[0, m)`` into blocks of at most ``max_rows``.

    The first ``m % p`` blocks get one extra row (the same convention as
    :func:`split_supernodes`'s column widths), so the partition is a
    deterministic function of ``(m, max_rows)`` — what lets the hazard
    and symbolic auditors re-derive a DAG's split structure
    independently of the builder.
    """
    if max_rows < 1:
        raise ValueError("max_rows must be >= 1")
    if m <= 0:
        return []
    p = -(-m // max_rows)
    base, extra = divmod(m, p)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for i in range(p):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    assert lo == m
    return bounds


def plan_update_rowblocks(
    symbol, *, max_rows: int
) -> dict[tuple[int, int], list[tuple[int, int]]]:
    """2D (row-block) split plan for every update couple of ``symbol``.

    Tall panels produce updates whose GEMM height ``m`` dwarfs the facing
    width; splitting those into row blocks yields several *independent*
    tasks per couple — they write disjoint target rows, so they still
    share the target's mutex but parallelize their GEMMs (the A64FX
    sparse-Cholesky 2D decomposition).  Returns ``{(src, tgt): [(lo, hi),
    ...]}`` with tail-relative bounds for **every** couple — a single
    whole-range part when ``m <= max_rows`` — so consumers (DAG builder,
    auditors, couple cache users) agree on one canonical plan.
    """
    from repro.dag.builder import update_couples

    src, tgt, ms, _ns = update_couples(symbol)
    plan: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for i in range(src.size):
        plan[(int(src[i]), int(tgt[i]))] = rowblock_bounds(
            int(ms[i]), max_rows
        )
    return plan
