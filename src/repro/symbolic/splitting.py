"""Panel splitting.

Wide supernodes — the separators at the top of the elimination tree, of
order :math:`N^{2/3}` columns for 3D problems — would serialise the whole
factorization if kept as single tasks.  The paper splits them vertically
during analysis ("supernodes of the higher levels are split vertically
prior to the factorization to limit the task granularity and create more
parallelism", §III), which also provides the classic look-ahead pipeline
on heterogeneous runs (§V-B).

Splitting supernode ``[f, l)`` with below-rows ``R`` into panels
``P_1 … P_m`` gives panel ``P_i`` the rowset ``cols(P_{i+1..m}) ∪ R`` —
after which panels are ordinary cblks and the downstream machinery needs
no special casing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["split_supernodes"]


def split_supernodes(
    snptr: np.ndarray,
    rowsets: list[np.ndarray],
    *,
    max_width: int = 128,
    min_panels: int = 1,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Split every supernode wider than ``max_width`` into near-equal panels.

    ``min_panels`` forces at least that many panels for any splittable
    supernode (used by ablations to over-decompose).  Returns the new
    ``(snptr, rowsets)``.
    """
    if max_width < 1:
        raise ValueError("max_width must be >= 1")
    K = snptr.size - 1
    new_bounds: list[int] = [0]
    new_rowsets: list[np.ndarray] = []
    for k in range(K):
        f, l = int(snptr[k]), int(snptr[k + 1])
        w = l - f
        m = max(min_panels if w > max_width or min_panels > 1 else 1,
                -(-w // max_width))
        m = min(m, w)  # at most one column per panel
        if m == 1:
            new_bounds.append(l)
            new_rowsets.append(rowsets[k])
            continue
        # Near-equal widths: the first (w % m) panels get one extra column.
        base, extra = divmod(w, m)
        start = f
        for i in range(m):
            width = base + (1 if i < extra else 0)
            end = start + width
            if end < l:
                tail = np.arange(end, l, dtype=np.int64)
                rows = np.concatenate([tail, rowsets[k]])
            else:
                rows = rowsets[k]
            new_bounds.append(end)
            new_rowsets.append(rows)
            start = end
        assert start == l
    return np.asarray(new_bounds, dtype=np.int64), new_rowsets
