"""Supernode detection, supernodal row structures, and amalgamation.

All functions here assume the matrix has already been permuted into a
postorder of its elimination tree, so ``parent[j] > j`` and every
supernode is a contiguous column range.

Amalgamation implements the paper's §V requirement: PaStiX reuses the
approximate-supernode algorithm of Hénon–Ramet–Roman to build *larger*
blocks at the cost of extra fill-in ("the default parameter … has been
slightly increased to allow up to 12 % more fill-in to build larger
blocks"), which is what makes GPU offload worthwhile.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import SparseMatrixCSC

__all__ = ["fundamental_supernodes", "supernode_row_sets", "amalgamate"]


def fundamental_supernodes(
    parent: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Partition columns into fundamental supernodes.

    Columns ``j-1`` and ``j`` share a supernode iff ``parent[j-1] == j``
    and ``count[j-1] == count[j] + 1`` (their below-diagonal structures
    coincide).  Requires a postordered matrix.

    Returns ``snptr`` of length ``K+1``: supernode ``s`` owns columns
    ``snptr[s]:snptr[s+1]``.
    """
    n = parent.size
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    starts = [0]
    for j in range(1, n):
        if not (parent[j - 1] == j and counts[j - 1] == counts[j] + 1):
            starts.append(j)
    starts.append(n)
    return np.asarray(starts, dtype=np.int64)


def supernode_row_sets(
    pattern: SparseMatrixCSC,
    snptr: np.ndarray,
    counts: np.ndarray | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Block symbolic factorization: below-supernode row structure.

    For each supernode ``s`` with columns ``[f, l)``, computes the sorted
    row indices ``R_s`` of ``L`` strictly below row ``l-1`` in those
    columns, by the quotient-graph recurrence

    ``R_s = rows(A[:, f:l]) ∪ ( ⋃_{children c} R_c )  minus rows < l``

    where the children are the supernodes whose first below row falls in
    ``s``.  When ``counts`` is given, the identity
    ``|R_s| == counts[f] - width`` is asserted (a strong cross-check
    between two independent algorithms).

    Returns ``(rowsets, parent_snode)``.
    """
    n = pattern.n_cols
    K = snptr.size - 1
    col2sn = np.empty(n, dtype=np.int64)
    for s in range(K):
        col2sn[snptr[s]: snptr[s + 1]] = s

    rowsets: list[np.ndarray] = [None] * K  # type: ignore[list-item]
    parent_snode = np.full(K, -1, dtype=np.int64)
    contrib: list[list[np.ndarray]] = [[] for _ in range(K)]

    colptr, rowind = pattern.colptr, pattern.rowind
    for s in range(K):
        f, l = int(snptr[s]), int(snptr[s + 1])
        pieces = contrib[s]
        arows = rowind[colptr[f]: colptr[l]]
        pieces.append(arows[arows >= l])
        merged = np.unique(np.concatenate(pieces)) if pieces else np.empty(0, np.int64)
        merged = merged[merged >= l]
        rowsets[s] = merged
        contrib[s] = []  # free the inputs eagerly
        if counts is not None and merged.size != counts[f] - (l - f):
            raise AssertionError(
                f"supernode {s}: row set size {merged.size} != "
                f"count-derived {counts[f] - (l - f)}"
            )
        if merged.size:
            p = int(col2sn[merged[0]])
            parent_snode[s] = p
            # Contribution to the parent: rows beyond the parent's columns.
            beyond = merged[merged >= snptr[p + 1]]
            if beyond.size:
                contrib[p].append(beyond)
    return rowsets, parent_snode


def _sn_nnz(width: int, nrows: int) -> int:
    """nnz of one supernode of the (lower) factor."""
    return width * (width + 1) // 2 + width * nrows


def amalgamate(
    snptr: np.ndarray,
    rowsets: list[np.ndarray],
    parent_snode: np.ndarray,
    *,
    ratio: float = 0.12,
    max_width: int | None = None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Merge supernodes with their parents to build larger blocks.

    A child may merge into its parent when their column ranges are
    contiguous.  Merges are performed cheapest-fill-first (a heap with
    lazy invalidation) and the *total* extra structural fill is capped at
    ``ratio × nnz(L)`` — matching the paper's "allow up to 12 % more
    fill-in to build larger blocks" (a global budget, not a per-merge
    ratio, which would compound without bound).

    ``ratio = 0`` performs only zero-fill merges.  ``max_width`` caps the
    merged supernode width (useful when the splitting stage is disabled).

    Returns the new ``(snptr, rowsets)``.
    """
    import heapq

    K = snptr.size - 1
    fcol = snptr[:-1].astype(np.int64).copy()
    lcol = snptr[1:].astype(np.int64).copy()   # exclusive
    rows: list[np.ndarray] = list(rowsets)
    parent = parent_snode.copy()
    alive = np.ones(K, dtype=bool)
    version = np.zeros(K, dtype=np.int64)
    children: list[list[int]] = [[] for _ in range(K)]
    for s in range(K):
        if parent[s] >= 0:
            children[parent[s]].append(s)

    nnz_exact = sum(
        _sn_nnz(int(lcol[s] - fcol[s]), rows[s].size) for s in range(K)
    )
    budget = ratio * nnz_exact

    def merge_cost(c: int, p: int) -> tuple[int, np.ndarray]:
        wc = int(lcol[c] - fcol[c])
        wp = int(lcol[p] - fcol[p])
        old = _sn_nnz(wc, rows[c].size) + _sn_nnz(wp, rows[p].size)
        merged_rows = np.union1d(rows[p], rows[c][rows[c] >= lcol[p]])
        new = _sn_nnz(wc + wp, merged_rows.size)
        return new - old, merged_rows

    heap: list[tuple[int, int, int, int, int]] = []

    def push_candidate(c: int, p: int) -> None:
        if max_width is not None and (
            (lcol[p] - fcol[p]) + (lcol[c] - fcol[c]) > max_width
        ):
            return
        fill, _ = merge_cost(c, p)
        heapq.heappush(heap, (fill, c, p, int(version[c]), int(version[p])))

    for s in range(K):
        p = parent[s]
        if p >= 0 and lcol[s] == fcol[p]:
            push_candidate(s, p)

    while heap:
        fill, c, p, vc, vp = heapq.heappop(heap)
        if not (alive[c] and alive[p]):
            continue
        if version[c] != vc or version[p] != vp:
            continue
        if fill > budget:
            # Cheapest remaining merge exceeds the budget: done.
            break
        # Recompute rows (cheap) and merge c into p.
        _, merged_rows = merge_cost(c, p)
        budget -= fill
        fcol[p] = fcol[c]
        rows[p] = merged_rows
        alive[c] = False
        version[p] += 1
        for g in children[c]:
            if alive[g]:
                parent[g] = p
                children[p].append(g)
        children[c] = []
        # New candidate pairs involving the grown parent.
        gp = parent[p]
        if gp >= 0 and alive[gp] and lcol[p] == fcol[gp]:
            push_candidate(p, gp)
        for g in children[p]:
            if alive[g] and lcol[g] == fcol[p]:
                push_candidate(g, p)

    keep = np.flatnonzero(alive)
    order = keep[np.argsort(fcol[keep])]
    new_snptr = np.concatenate([fcol[order], [lcol[order[-1]]]]) if order.size else np.zeros(1, np.int64)
    # Sanity: contiguous partition.
    if order.size and not np.array_equal(new_snptr[1:-1], lcol[order[:-1]]):
        raise AssertionError("amalgamation produced a non-contiguous partition")
    new_rowsets = [rows[s] for s in order]
    return new_snptr.astype(np.int64), new_rowsets
