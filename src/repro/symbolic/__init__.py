"""Symbolic analysis: elimination tree, column counts, supernodes,
amalgamation, splitting, and the block symbolic structure (``SymbolMatrix``).

This is the PaStiX *analyze* phase.  Pipeline (see :func:`analyze`):

1. fill-reducing permutation (caller supplies it, usually nested dissection);
2. elimination tree of the permuted pattern + postorder refinement;
3. Gilbert–Ng–Peyton column counts (nnz of each column of L, no L built);
4. fundamental supernodes, amalgamated up to a fill ratio (paper §V: the
   default is raised to allow ~12 % extra fill so GPU blocks get larger);
5. wide supernodes split into vertical panels to create parallelism;
6. block symbolic factorization → :class:`SymbolMatrix` (cblk/blok arrays),
   the structure both runtimes unroll into a task DAG.
"""

from repro.symbolic.etree import elimination_tree, postorder, tree_depths, EliminationTree
from repro.symbolic.colcount import column_counts
from repro.symbolic.supernodes import (
    fundamental_supernodes,
    supernode_row_sets,
    amalgamate,
)
from repro.symbolic.structures import SymbolMatrix, CBlk, Blok, build_symbol
from repro.symbolic.splitting import split_supernodes
from repro.symbolic.analyze import analyze, SymbolicOptions, AnalysisResult
from repro.symbolic.persistence import save_analysis, load_analysis

__all__ = [
    "elimination_tree",
    "postorder",
    "tree_depths",
    "EliminationTree",
    "column_counts",
    "fundamental_supernodes",
    "supernode_row_sets",
    "amalgamate",
    "SymbolMatrix",
    "CBlk",
    "Blok",
    "build_symbol",
    "split_supernodes",
    "analyze",
    "SymbolicOptions",
    "AnalysisResult",
    "save_analysis",
    "load_analysis",
]
