"""Column counts of the Cholesky factor (Gilbert–Ng–Peyton).

Computes ``count[j] = nnz(L[:, j])`` (including the diagonal) in
``O(nnz · α(n))`` without forming ``L``, using the skeleton-graph /
row-subtree-leaf characterisation: an off-diagonal entry ``A(i, j)`` with
``i > j`` contributes to ``count[j]`` exactly when ``j`` is a *leaf* of
row ``i``'s subtree, and double counting along the tree is corrected by
subtracting at the least common ancestor of consecutive leaves.

This is the ``cs_counts`` algorithm of Davis' "Direct Methods for Sparse
Linear Systems", reimplemented from the book's description.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import SparseMatrixCSC

__all__ = ["column_counts"]


def column_counts(
    pattern: SparseMatrixCSC,
    parent: np.ndarray,
    post: np.ndarray,
) -> np.ndarray:
    """Column counts of L for a symmetric-pattern matrix.

    Parameters
    ----------
    pattern:
        Symmetric pattern of ``A`` (both triangles present).
    parent, post:
        Elimination tree and a postorder of it.
    """
    n = pattern.n_cols
    colptr, rowind = pattern.colptr, pattern.rowind

    delta = np.zeros(n, dtype=np.int64)
    first = np.full(n, -1, dtype=np.int64)    # first descendant (postorder rank)
    maxfirst = np.full(n, -1, dtype=np.int64)
    prevleaf = np.full(n, -1, dtype=np.int64)
    ancestor = np.arange(n, dtype=np.int64)   # union-find for LCAs

    # Pass 1: first descendants and leaf deltas.
    for k in range(n):
        j = post[k]
        delta[j] = 1 if first[j] == -1 else 0  # j is a leaf of the etree
        while j != -1 and first[j] == -1:
            first[j] = k
            j = parent[j]

    # Pass 2: process nodes in postorder; for each neighbour i > j decide
    # whether j is a (first or subsequent) leaf of i's row subtree.
    for k in range(n):
        j = post[k]
        if parent[j] != -1:
            delta[parent[j]] -= 1
        for p in range(colptr[j], colptr[j + 1]):
            i = rowind[p]
            if i <= j or first[j] <= maxfirst[i]:
                continue  # j is not a new leaf for row i
            maxfirst[i] = first[j]
            jprev = prevleaf[i]
            prevleaf[i] = j
            delta[j] += 1
            if jprev != -1:
                # Find the LCA of jprev and j with path compression.
                q = jprev
                while q != ancestor[q]:
                    q = ancestor[q]
                s = jprev
                while s != q:
                    s, ancestor[s] = ancestor[s], q
                delta[q] -= 1
        if parent[j] != -1:
            ancestor[j] = parent[j]

    # Pass 3: accumulate deltas up the tree in postorder.
    counts = delta
    for k in range(n):
        j = post[k]
        if parent[j] != -1:
            counts[parent[j]] += counts[j]
    return counts
