"""Block symbolic structure (PaStiX-style ``SymbolMatrix``).

After supernode detection, amalgamation, and splitting, the factor is
described by *column blocks* (cblks — the panels) and *blocks* (bloks —
dense sub-blocks of a panel, each facing exactly one other cblk).  This is
the structure both runtimes unroll into the task DAG: one panel task per
cblk, one update task per (cblk, facing cblk) couple.

Layout conventions (mirroring PaStiX):

* cblk ``k`` owns columns ``cblk_ptr[k]:cblk_ptr[k+1]``;
* its bloks are ``blok_ptr[k]:blok_ptr[k+1]``, the first being the
  diagonal blok; bloks are sorted by first row;
* blok ``b`` covers rows ``blok_frow[b]:blok_lrow[b]`` (exclusive end) and
  faces cblk ``blok_face[b]`` (every blok lies inside one facing cblk).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["SymbolMatrix", "CBlk", "Blok", "build_symbol"]


@dataclass(frozen=True)
class CBlk:
    """View of one column block (panel)."""

    index: int
    fcol: int
    lcol: int   # exclusive
    blok_range: tuple[int, int]

    @property
    def width(self) -> int:
        return self.lcol - self.fcol


@dataclass(frozen=True)
class Blok:
    """View of one dense block of a panel."""

    index: int
    frow: int
    lrow: int   # exclusive
    face: int   # facing cblk
    owner: int  # owning cblk

    @property
    def nrows(self) -> int:
        return self.lrow - self.frow


@dataclass
class SymbolMatrix:
    """Block symbolic structure of the factor.

    Attributes (all NumPy arrays, see module docstring for conventions):

    * ``cblk_ptr``  — column partition, length ``K+1``;
    * ``blok_ptr``  — cblk → blok range, length ``K+1``;
    * ``blok_frow``, ``blok_lrow``, ``blok_face``, ``blok_owner``;
    * ``col2cblk`` — column → owning cblk, length ``n``;
    * ``face_ptr`` / ``face_list`` — for each cblk, the bloks facing it
      (the in-edges of the update DAG), excluding diagonal bloks.
    """

    n: int
    cblk_ptr: np.ndarray
    blok_ptr: np.ndarray
    blok_frow: np.ndarray
    blok_lrow: np.ndarray
    blok_face: np.ndarray
    blok_owner: np.ndarray
    col2cblk: np.ndarray
    face_ptr: np.ndarray = field(default=None)  # type: ignore[assignment]
    face_list: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.face_ptr is None:
            self._build_facing_index()

    # ------------------------------------------------------------------
    @property
    def n_cblk(self) -> int:
        return int(self.cblk_ptr.size - 1)

    @property
    def n_blok(self) -> int:
        return int(self.blok_frow.size)

    def cblk(self, k: int) -> CBlk:
        return CBlk(
            k,
            int(self.cblk_ptr[k]),
            int(self.cblk_ptr[k + 1]),
            (int(self.blok_ptr[k]), int(self.blok_ptr[k + 1])),
        )

    def blok(self, b: int) -> Blok:
        return Blok(
            b,
            int(self.blok_frow[b]),
            int(self.blok_lrow[b]),
            int(self.blok_face[b]),
            int(self.blok_owner[b]),
        )

    def cblk_width(self, k: int) -> int:
        return int(self.cblk_ptr[k + 1] - self.cblk_ptr[k])

    def cblk_widths(self) -> np.ndarray:
        return np.diff(self.cblk_ptr)

    def cblk_rows(self, k: int) -> np.ndarray:
        """All factor rows of panel ``k`` (own columns then below rows)."""
        b0, b1 = int(self.blok_ptr[k]), int(self.blok_ptr[k + 1])
        return np.concatenate(
            [
                np.arange(self.blok_frow[b], self.blok_lrow[b], dtype=np.int64)
                for b in range(b0, b1)
            ]
        )

    def cblk_height(self, k: int) -> int:
        """Total number of factor rows of panel ``k`` (incl. the diagonal)."""
        b0, b1 = int(self.blok_ptr[k]), int(self.blok_ptr[k + 1])
        return int(
            (self.blok_lrow[b0:b1] - self.blok_frow[b0:b1]).sum()
        )

    def cblk_below(self, k: int) -> int:
        """Rows strictly below the diagonal blok of panel ``k``."""
        return self.cblk_height(k) - self.cblk_width(k)

    def off_diagonal_bloks(self, k: int) -> range:
        return range(int(self.blok_ptr[k]) + 1, int(self.blok_ptr[k + 1]))

    def facing_bloks(self, k: int) -> np.ndarray:
        """Off-diagonal bloks (by index) whose rows fall inside cblk ``k``."""
        return self.face_list[self.face_ptr[k]: self.face_ptr[k + 1]]

    def iter_cblks(self) -> Iterator[CBlk]:
        for k in range(self.n_cblk):
            yield self.cblk(k)

    # ------------------------------------------------------------------
    def nnz(self, *, factotype: str = "llt") -> int:
        """Structural nonzeros of the factor(s).

        ``llt``/``ldlt`` count the lower factor; ``lu`` counts L and U
        (the diagonal is shared: counted once).
        """
        widths = np.diff(self.cblk_ptr).astype(np.int64)
        heights = np.array(
            [self.cblk_height(k) for k in range(self.n_cblk)], dtype=np.int64
        )
        below = heights - widths
        lower = int((widths * (widths + 1) // 2 + widths * below).sum())
        if factotype in ("llt", "ldlt"):
            return lower
        if factotype == "lu":
            return 2 * lower - self.n
        raise ValueError(f"unknown factotype {factotype!r}")

    # ------------------------------------------------------------------
    def _build_facing_index(self) -> None:
        offdiag = np.flatnonzero(self.blok_face != self.blok_owner)
        order = offdiag[np.argsort(self.blok_face[offdiag], kind="stable")]
        face_ptr = np.zeros(self.n_cblk + 1, dtype=np.int64)
        np.add.at(face_ptr, self.blok_face[offdiag] + 1, 1)
        np.cumsum(face_ptr, out=face_ptr)
        self.face_ptr = face_ptr
        self.face_list = order.astype(np.int64)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all structural invariants; raises ``AssertionError``.

        Most importantly the *facing-subset* property: for any panel, the
        rows at and below any of its off-diagonal bloks must be contained
        in the structure of the facing panel — this is exactly what makes
        every GEMM update land on allocated storage.
        """
        K = self.n_cblk
        assert self.cblk_ptr[0] == 0 and self.cblk_ptr[-1] == self.n
        assert np.all(np.diff(self.cblk_ptr) > 0), "empty cblk"
        for k in range(K):
            b0, b1 = int(self.blok_ptr[k]), int(self.blok_ptr[k + 1])
            assert b1 > b0, f"cblk {k} has no bloks"
            d = self.blok(b0)
            assert d.frow == self.cblk_ptr[k] and d.lrow == self.cblk_ptr[k + 1], (
                f"cblk {k}: first blok is not the diagonal blok"
            )
            prev_end = -1
            for b in range(b0, b1):
                blk = self.blok(b)
                assert blk.owner == k
                assert blk.frow >= prev_end, f"blok {b} overlaps/unsorted"
                prev_end = blk.lrow
                assert blk.nrows > 0
                fk = blk.face
                assert (
                    self.cblk_ptr[fk] <= blk.frow
                    and blk.lrow <= self.cblk_ptr[fk + 1]
                ), f"blok {b} crosses cblk boundary"
                assert fk == self.col2cblk[blk.frow]

        # Facing-subset property.
        struct_cache: dict[int, np.ndarray] = {}

        def rows_of(k: int) -> np.ndarray:
            if k not in struct_cache:
                struct_cache[k] = self.cblk_rows(k)
            return struct_cache[k]

        for k in range(K):
            rows_k = rows_of(k)
            below = rows_k[self.cblk_width(k):]
            for b in self.off_diagonal_bloks(k):
                fk = int(self.blok_face[b])
                target = rows_of(fk)
                frow = int(self.blok_frow[b])
                tail = below[np.searchsorted(below, frow):]
                missing = np.setdiff1d(tail, target, assume_unique=True)
                assert missing.size == 0, (
                    f"update {k}->{fk}: rows {missing[:5]} absent from target"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SymbolMatrix(n={self.n}, cblks={self.n_cblk}, "
            f"bloks={self.n_blok}, nnz={self.nnz()})"
        )


def build_symbol(
    n: int,
    snptr: np.ndarray,
    rowsets: list[np.ndarray],
) -> SymbolMatrix:
    """Assemble a :class:`SymbolMatrix` from a column partition and the
    per-supernode below rows.

    Each rowset is cut into maximal runs of consecutive rows lying in a
    single facing cblk; runs become off-diagonal bloks.
    """
    K = snptr.size - 1
    col2cblk = np.empty(n, dtype=np.int64)
    for k in range(K):
        col2cblk[snptr[k]: snptr[k + 1]] = k

    frows: list[int] = []
    lrows: list[int] = []
    faces: list[int] = []
    owners: list[int] = []
    blok_ptr = np.zeros(K + 1, dtype=np.int64)

    for k in range(K):
        f, l = int(snptr[k]), int(snptr[k + 1])
        frows.append(f)
        lrows.append(l)
        faces.append(k)
        owners.append(k)
        nblk = 1
        r = rowsets[k]
        if r.size:
            # Break runs on gaps or facing-cblk changes.
            breaks = np.flatnonzero(
                (np.diff(r) != 1) | (col2cblk[r[1:]] != col2cblk[r[:-1]])
            )
            starts = np.concatenate(([0], breaks + 1))
            ends = np.concatenate((breaks, [r.size - 1]))
            for s, e in zip(starts, ends):
                frows.append(int(r[s]))
                lrows.append(int(r[e]) + 1)
                faces.append(int(col2cblk[r[s]]))
                owners.append(k)
            nblk += starts.size
        blok_ptr[k + 1] = blok_ptr[k] + nblk

    return SymbolMatrix(
        n=n,
        cblk_ptr=snptr.astype(np.int64).copy(),
        blok_ptr=blok_ptr,
        blok_frow=np.asarray(frows, dtype=np.int64),
        blok_lrow=np.asarray(lrows, dtype=np.int64),
        blok_face=np.asarray(faces, dtype=np.int64),
        blok_owner=np.asarray(owners, dtype=np.int64),
        col2cblk=col2cblk,
    )
