"""The analyze phase: ordering + symbolic factorization in one call.

Mirrors ``pastix_task_analyze``: everything that depends only on the
pattern happens here, once; factorizations with different values (or
different runtimes/machines) all reuse the resulting
:class:`AnalysisResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ordering.nested_dissection import (
    NestedDissectionOptions,
    nested_dissection,
)
from repro.ordering.perm import Permutation
from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic.colcount import column_counts
from repro.symbolic.etree import EliminationTree, elimination_tree, postorder
from repro.symbolic.splitting import split_supernodes
from repro.symbolic.structures import SymbolMatrix, build_symbol
from repro.symbolic.supernodes import (
    amalgamate,
    fundamental_supernodes,
    supernode_row_sets,
)

__all__ = ["SymbolicOptions", "AnalysisResult", "analyze"]


@dataclass(frozen=True)
class SymbolicOptions:
    """Knobs of the analyze phase.

    Attributes
    ----------
    ordering:
        ``"nd"`` (nested dissection, default), ``"natural"`` (no
        reordering — tests/ablations), or a pre-computed
        :class:`Permutation` in scatter form.
    amalgamation_ratio:
        Allowed relative structural fill when merging supernodes.  The
        paper raises PaStiX's default to ~0.12 for GPU-friendly blocks.
        ``None`` disables amalgamation.
    split_max_width:
        Panels wider than this are split vertically.  ``None`` disables
        splitting (PaStiX's original 1D tasks).
    min_panels:
        Force at least this many panels per splittable supernode.
    """

    ordering: object = "nd"
    amalgamation_ratio: float | None = 0.12
    split_max_width: int | None = 128
    min_panels: int = 1
    nd_options: NestedDissectionOptions = field(
        default_factory=NestedDissectionOptions
    )


@dataclass
class AnalysisResult:
    """Everything the numerical phases need from the analysis.

    ``perm`` maps original indices to factorization order (scatter form);
    ``pattern`` is the permuted symmetrised pattern with full diagonal;
    ``symbol`` the block structure; ``parent``/``counts`` the elimination
    tree and factor column counts of the permuted matrix.
    """

    perm: Permutation
    pattern: SparseMatrixCSC
    symbol: SymbolMatrix
    parent: np.ndarray
    counts: np.ndarray

    @property
    def n(self) -> int:
        return int(self.pattern.n_rows)

    @property
    def nnz_factor(self) -> int:
        return self.symbol.nnz()


def analyze(
    matrix: SparseMatrixCSC,
    options: SymbolicOptions | None = None,
) -> AnalysisResult:
    """Run the full analyze phase on ``matrix``.

    Steps: symmetrise the pattern, apply the fill-reducing ordering,
    postorder the elimination tree (so supernodes are contiguous), compute
    column counts, detect/amalgamate/split supernodes, and build the block
    symbol structure.
    """
    opts = options or SymbolicOptions()
    if not matrix.is_square:
        raise ValueError("analyze requires a square matrix")
    n = matrix.n_rows

    pattern = matrix.symmetrize_pattern().with_full_diagonal()

    if isinstance(opts.ordering, Permutation):
        perm1 = opts.ordering
    elif opts.ordering == "nd":
        perm1 = nested_dissection(pattern, opts.nd_options)
    elif opts.ordering == "natural":
        perm1 = Permutation.identity(n)
    else:
        raise ValueError(f"unknown ordering {opts.ordering!r}")

    permuted = pattern.permute(perm1.perm)

    # Postorder the elimination tree so that supernodes are contiguous
    # column ranges and parent[j] > j everywhere.
    parent1 = elimination_tree(permuted)
    post = postorder(parent1)
    perm2 = Permutation.from_iperm(post)
    final_pattern = permuted.permute(perm2.perm)
    parent = np.full(n, -1, dtype=np.int64)
    nonroot = parent1 >= 0
    parent[perm2.perm[np.flatnonzero(nonroot)]] = perm2.perm[parent1[nonroot]]

    etree = EliminationTree(parent, np.arange(n, dtype=np.int64))
    if not etree.is_postordered():
        raise AssertionError("postorder relabelling failed")

    counts = column_counts(final_pattern, parent, etree.post)

    snptr = fundamental_supernodes(parent, counts)
    rowsets, parent_snode = supernode_row_sets(final_pattern, snptr, counts)

    if opts.amalgamation_ratio is not None:
        snptr, rowsets = amalgamate(
            snptr, rowsets, parent_snode, ratio=opts.amalgamation_ratio
        )
    if opts.split_max_width is not None:
        snptr, rowsets = split_supernodes(
            snptr,
            rowsets,
            max_width=opts.split_max_width,
            min_panels=opts.min_panels,
        )

    symbol = build_symbol(n, snptr, rowsets)
    return AnalysisResult(
        perm=perm1 @ perm2,
        pattern=final_pattern,
        symbol=symbol,
        parent=parent,
        counts=counts,
    )
