"""Persist the analyze phase.

The analysis (ordering + block symbolic structure) depends only on the
sparsity pattern and often dwarfs the numeric factorization in wall time
at Python speed; applications solving many systems with one structure
save it once and reload it per run.  The container is a single ``.npz``
(portable, versioned, no pickle — loading cannot execute code).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.ordering.perm import Permutation
from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic.analyze import AnalysisResult
from repro.symbolic.structures import SymbolMatrix

__all__ = ["save_analysis", "load_analysis"]

_FORMAT_VERSION = 1


def save_analysis(result: AnalysisResult, path: Union[str, Path]) -> None:
    """Write an :class:`AnalysisResult` to ``path`` (``.npz``)."""
    sym = result.symbol
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        n=np.int64(result.n),
        perm=result.perm.perm,
        parent=result.parent,
        counts=result.counts,
        pattern_colptr=result.pattern.colptr,
        pattern_rowind=result.pattern.rowind,
        cblk_ptr=sym.cblk_ptr,
        blok_ptr=sym.blok_ptr,
        blok_frow=sym.blok_frow,
        blok_lrow=sym.blok_lrow,
        blok_face=sym.blok_face,
        blok_owner=sym.blok_owner,
        col2cblk=sym.col2cblk,
    )


def load_analysis(path: Union[str, Path]) -> AnalysisResult:
    """Load an :class:`AnalysisResult` written by :func:`save_analysis`."""
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported analysis format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        n = int(data["n"])
        pattern = SparseMatrixCSC(
            n, n, data["pattern_colptr"], data["pattern_rowind"]
        )
        symbol = SymbolMatrix(
            n=n,
            cblk_ptr=data["cblk_ptr"],
            blok_ptr=data["blok_ptr"],
            blok_frow=data["blok_frow"],
            blok_lrow=data["blok_lrow"],
            blok_face=data["blok_face"],
            blok_owner=data["blok_owner"],
            col2cblk=data["col2cblk"],
        )
        return AnalysisResult(
            perm=Permutation(data["perm"]),
            pattern=pattern,
            symbol=symbol,
            parent=data["parent"],
            counts=data["counts"],
        )
