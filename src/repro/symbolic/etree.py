"""Elimination tree (Liu's algorithm) and tree utilities.

The elimination tree of a symmetric pattern has ``parent[j]`` = the row of
the first sub-diagonal nonzero of column ``j`` of the Cholesky factor; it
encodes every column dependency of the factorization and is the backbone
of the whole analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csc import SparseMatrixCSC

__all__ = ["elimination_tree", "postorder", "tree_depths", "EliminationTree"]


def elimination_tree(pattern: SparseMatrixCSC) -> np.ndarray:
    """Compute the elimination tree of a symmetric-pattern square matrix.

    Liu's algorithm with path compression (the ``ancestor`` array): for
    each column ``k`` and entry ``i < k``, walk from ``i`` toward the root,
    compressing, and graft the top of the walk onto ``k``.  Runs in
    ``O(nnz · α(n))``.

    Returns ``parent`` with ``-1`` marking roots.
    """
    n = pattern.n_cols
    if not pattern.is_square:
        raise ValueError("elimination tree needs a square matrix")
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    colptr = pattern.colptr
    rowind = pattern.rowind
    for k in range(n):
        for p in range(colptr[k], colptr[k + 1]):
            i = rowind[p]
            # Walk from i up to the root of its current subtree.
            while i != -1 and i < k:
                nxt = ancestor[i]
                ancestor[i] = k  # path compression
                if nxt == -1:
                    parent[i] = k
                i = nxt
    return parent


def postorder(parent: np.ndarray) -> np.ndarray:
    """Postorder permutation of a forest.

    Returns ``post`` such that ``post[k]`` is the node visited k-th; every
    node appears after all of its descendants.  Children are visited in
    ascending index order, giving a deterministic result.
    """
    n = parent.size
    # Build child lists as a linked structure (head/next arrays) so the
    # traversal allocates nothing per node.
    head = np.full(n, -1, dtype=np.int64)
    nxt = np.full(n, -1, dtype=np.int64)
    # Iterate in reverse so each head list ends up in ascending order.
    for v in range(n - 1, -1, -1):
        p = parent[v]
        if p >= 0:
            nxt[v] = head[p]
            head[p] = v
    post = np.empty(n, dtype=np.int64)
    k = 0
    stack: list[int] = []
    for root in range(n):
        if parent[root] != -1:
            continue
        stack.append(root)
        while stack:
            node = stack[-1]
            child = head[node]
            if child != -1:
                head[node] = nxt[child]  # consume the child edge
                stack.append(child)
            else:
                post[k] = node
                k += 1
                stack.pop()
    if k != n:
        raise ValueError("parent array contains a cycle")
    return post


def tree_depths(parent: np.ndarray) -> np.ndarray:
    """Depth of every node (roots have depth 0)."""
    n = parent.size
    depth = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        # Walk up until a node with a known depth, then unwind.
        path = []
        u = v
        while u != -1 and depth[u] < 0:
            path.append(u)
            u = parent[u]
        d = 0 if u == -1 else depth[u] + 1
        for node in reversed(path):
            depth[node] = d
            d += 1
    return depth


@dataclass(frozen=True)
class EliminationTree:
    """Elimination tree bundle: parent links plus a postorder.

    ``parent`` is indexed by column of the (already permuted) matrix.  In
    a postordered matrix ``parent[j] > j`` for every non-root — the
    invariant the supernode detector relies on.
    """

    parent: np.ndarray
    post: np.ndarray

    @property
    def n(self) -> int:
        return int(self.parent.size)

    @property
    def n_roots(self) -> int:
        return int(np.count_nonzero(self.parent == -1))

    def is_postordered(self) -> bool:
        """True when the identity order is already a postorder."""
        nonroot = self.parent >= 0
        return bool(np.all(self.parent[nonroot] > np.flatnonzero(nonroot)))

    @classmethod
    def from_pattern(cls, pattern: SparseMatrixCSC) -> "EliminationTree":
        parent = elimination_tree(pattern)
        return cls(parent, postorder(parent))
