"""Build the factorization task DAG from a :class:`SymbolMatrix`."""

from __future__ import annotations

import numpy as np

from repro.dag.tasks import TaskDAG, TaskKind
from repro.kernels.cost import (
    complex_multiplier,
    flops_panel,
    flops_update,
    flops_update_part,
)
from repro.symbolic.structures import SymbolMatrix

__all__ = ["update_couples", "build_dag"]


def update_couples(
    symbol: SymbolMatrix,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Enumerate the (source panel, facing panel) update couples.

    Returns ``(src, tgt, m, n)`` arrays: for each couple, ``n`` is the
    number of source rows inside the target panel and ``m`` the number of
    source rows at-and-after the first of them (the GEMM is ``m×n×w``).
    """
    src: list[int] = []
    tgt: list[int] = []
    ms: list[int] = []
    ns: list[int] = []
    for k in range(symbol.n_cblk):
        b0, b1 = int(symbol.blok_ptr[k]) + 1, int(symbol.blok_ptr[k + 1])
        if b0 >= b1:
            continue
        sizes = (symbol.blok_lrow[b0:b1] - symbol.blok_frow[b0:b1]).astype(np.int64)
        faces = symbol.blok_face[b0:b1]
        suffix = np.cumsum(sizes[::-1])[::-1]
        # Group maximal runs of equal face.
        change = np.flatnonzero(faces[1:] != faces[:-1])
        starts = np.concatenate(([0], change + 1))
        ends = np.concatenate((change + 1, [faces.size]))
        for s, e in zip(starts, ends):
            src.append(k)
            tgt.append(int(faces[s]))
            ns.append(int(sizes[s:e].sum()))
            ms.append(int(suffix[s]))
    return (
        np.asarray(src, dtype=np.int64),
        np.asarray(tgt, dtype=np.int64),
        np.asarray(ms, dtype=np.int64),
        np.asarray(ns, dtype=np.int64),
    )


def _csr_from_edges(n: int, heads: np.ndarray, tails: np.ndarray):
    """CSR successor lists from edge arrays (head → tail)."""
    order = np.argsort(heads, kind="stable")
    heads, tails = heads[order], tails[order]
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(ptr, heads + 1, 1)
    np.cumsum(ptr, out=ptr)
    return ptr, tails.astype(np.int64)


def build_dag(
    symbol: SymbolMatrix,
    factotype: str = "llt",
    *,
    granularity: str = "2d",
    dtype=np.float64,
    recompute_ld: bool = True,
    fuse_subtree_flops: float | None = None,
    split_rows: int | None = None,
) -> TaskDAG:
    """Unroll ``symbol`` into a :class:`TaskDAG`.

    ``granularity="2d"`` (runtimes): one panel task per cblk + one update
    task per couple.  ``granularity="1d"`` (native PaStiX): panel and its
    updates fused into a single task, dependencies panel→panel.

    ``recompute_ld`` matches the runtime-style LDLᵀ update kernel (see
    :func:`repro.kernels.cost.flops_update`).

    ``fuse_subtree_flops`` implements the paper's future-work granularity
    coarsening (§VI: "merging leaves or subtrees together yields bigger,
    more computationally intensive tasks"): every maximal subtree of the
    supernode tree whose total work is at most the threshold becomes one
    CPU task, removing its internal scheduling overhead; updates leaving
    the subtree stay individual tasks (2D granularity only).

    ``split_rows`` enables tall-panel 2D row-block splitting (2D
    granularity only): every couple whose GEMM height exceeds the
    threshold becomes several independent update tasks, one per row
    block of :func:`repro.symbolic.splitting.plan_update_rowblocks`.
    Parts write disjoint target rows but keep the target-panel mutex;
    their flop counts tile :func:`flops_update` exactly (N509).
    """
    K = symbol.n_cblk
    widths = np.diff(symbol.cblk_ptr).astype(np.int64)
    below = np.array([symbol.cblk_below(k) for k in range(K)], dtype=np.int64)
    mult = complex_multiplier(dtype)
    src, tgt, ms, ns = update_couples(symbol)
    n_upd = src.size

    panel_flops = np.array(
        [mult * flops_panel(int(widths[k]), int(below[k]), factotype) for k in range(K)]
    )
    upd_flops = np.array(
        [
            mult
            * flops_update(
                int(ms[i]), int(ns[i]), int(widths[src[i]]), factotype,
                recompute_ld=recompute_ld,
            )
            for i in range(n_upd)
        ]
    )

    if split_rows is not None and (granularity != "2d" or fuse_subtree_flops):
        raise ValueError(
            "split_rows requires plain 2d granularity (no subtree fusing)"
        )
    if granularity == "2d" and fuse_subtree_flops:
        return _build_fused(
            symbol, factotype, dtype, widths, below, src, tgt, ms, ns,
            panel_flops, upd_flops, fuse_subtree_flops,
        )
    if granularity == "2d" and split_rows is not None:
        return _build_split(
            symbol, factotype, widths, src, tgt, ms, ns,
            panel_flops, split_rows, recompute_ld, mult,
        )
    if granularity == "2d":
        n_tasks = K + n_upd
        kind = np.empty(n_tasks, dtype=np.int8)
        kind[:K] = TaskKind.PANEL
        kind[K:] = TaskKind.UPDATE
        cblk = np.concatenate([np.arange(K, dtype=np.int64), src])
        target = np.concatenate([np.arange(K, dtype=np.int64), tgt])
        flops = np.concatenate([panel_flops, upd_flops])
        gm = np.concatenate([np.zeros(K, np.int64), ms])
        gn = np.concatenate([np.zeros(K, np.int64), ns])
        gk = np.concatenate([np.zeros(K, np.int64), widths[src]])
        upd_ids = K + np.arange(n_upd, dtype=np.int64)
        # Edges: panel(src) -> update, update -> panel(tgt).
        heads = np.concatenate([src, upd_ids])
        tails = np.concatenate([upd_ids, tgt])
        mutex = np.full(n_tasks, -1, dtype=np.int64)
        mutex[K:] = tgt
    elif granularity in ("1d", "1d-left"):
        # One task per panel.  "1d" (right-looking, PaStiX) charges each
        # panel's own updates to it; "1d-left" charges the *incoming*
        # updates (§III's left-looking grouping: many inputs, one in-out).
        # The dependency edges are identical — only when the update work
        # executes differs, which is what the scheduling ablation probes.
        n_tasks = K
        kind = np.full(K, TaskKind.PANEL1D, dtype=np.int8)
        cblk = np.arange(K, dtype=np.int64)
        target = cblk.copy()
        flops = panel_flops.copy()
        charge = src if granularity == "1d" else tgt
        np.add.at(flops, charge, upd_flops)
        fused_components = {
            k: [("panel", int(widths[k]), int(below[k]))] for k in range(K)
        }
        for i in range(n_upd):
            fused_components[int(charge[i])].append(
                ("update", int(ms[i]), int(ns[i]), int(widths[src[i]]))
            )
        gm = np.zeros(K, np.int64)
        gn = np.zeros(K, np.int64)
        gk = widths.copy()
        heads, tails = src, tgt  # already deduplicated per couple
        mutex = np.full(K, -1, dtype=np.int64)
        succ_ptr, succ_list = _csr_from_edges(n_tasks, heads, tails)
        return TaskDAG(
            kind=kind, cblk=cblk, target=target, flops=flops,
            gemm_m=gm, gemm_n=gn, gemm_k=gk,
            succ_ptr=succ_ptr, succ_list=succ_list, mutex=mutex,
            granularity=granularity, symbol=symbol, factotype=factotype,
            fused_components=fused_components,
        )
    else:
        raise ValueError(f"unknown granularity {granularity!r}")

    succ_ptr, succ_list = _csr_from_edges(n_tasks, heads, tails)
    return TaskDAG(
        kind=kind,
        cblk=cblk,
        target=target,
        flops=flops,
        gemm_m=gm,
        gemm_n=gn,
        gemm_k=gk,
        succ_ptr=succ_ptr,
        succ_list=succ_list,
        mutex=mutex,
        granularity=granularity,
        symbol=symbol,
        factotype=factotype,
    )


def _build_fused(
    symbol, factotype, dtype, widths, below, src, tgt, ms, ns,
    panel_flops, upd_flops, threshold,
):
    """2D DAG with leaf subtrees under ``threshold`` flops fused.

    Group assignment: a cblk belongs to a fused group iff its whole
    subtree costs at most the threshold; the group's id is the subtree's
    topmost such cblk.  Because work only flows upward, a fused subtree
    is complete (no external dependency enters it) and every surviving
    update leaves a group toward an unfused ancestor panel.
    """
    K = symbol.n_cblk
    n_upd = src.size

    # Supernode-tree parent: the first (lowest) facing cblk.
    parent = np.full(K, -1, dtype=np.int64)
    for i in range(n_upd - 1, -1, -1):  # first couple of each src wins
        parent[src[i]] = tgt[i]

    own = panel_flops.copy()
    np.add.at(own, src, upd_flops)
    subtree = own.copy()
    for k in range(K):  # ascending is bottom-up (parent > child)
        if parent[k] >= 0:
            subtree[parent[k]] += subtree[k]

    group = np.full(K, -1, dtype=np.int64)
    for k in range(K - 1, -1, -1):
        if subtree[k] > threshold:
            continue
        p = parent[k]
        if p >= 0 and group[p] >= 0:
            group[k] = group[p]
        else:
            group[k] = k  # topmost fused node of its subtree

    # Task layout: one task per "unit" (unfused panel or group root), then
    # the surviving update tasks.
    owner_task = np.full(K, -1, dtype=np.int64)
    kinds: list[int] = []
    cblks: list[int] = []
    flops_list: list[float] = []
    fused_components: dict[int, list] = {}
    for k in range(K):
        if group[k] == -1:
            owner_task[k] = len(kinds)
            kinds.append(int(TaskKind.PANEL))
            cblks.append(k)
            flops_list.append(float(panel_flops[k]))
        elif group[k] == k:
            owner_task[k] = len(kinds)
            kinds.append(int(TaskKind.SUBTREE))
            cblks.append(k)
            flops_list.append(0.0)  # accumulated below
            fused_components[owner_task[k]] = []
    # Members point at their group root's task.
    for k in range(K):
        if group[k] != -1 and group[k] != k:
            owner_task[k] = owner_task[group[k]]
    for k in range(K):
        if group[k] != -1:
            t = int(owner_task[k])
            flops_list[t] += float(panel_flops[k])
            fused_components[t].append(
                ("panel", int(widths[k]), int(below[k]))
            )

    n_units = len(kinds)
    keep_upd: list[int] = []
    for i in range(n_upd):
        s, t = int(src[i]), int(tgt[i])
        if group[s] != -1 and group[s] == group[t]:
            # Internal update: absorbed into the subtree task.
            ut = int(owner_task[s])
            flops_list[ut] += float(upd_flops[i])
            fused_components[ut].append(
                ("update", int(ms[i]), int(ns[i]), int(widths[s]))
            )
        else:
            keep_upd.append(i)

    keep = np.asarray(keep_upd, dtype=np.int64)
    n_tasks = n_units + keep.size
    kind = np.asarray(kinds + [int(TaskKind.UPDATE)] * keep.size, dtype=np.int8)
    cblk = np.concatenate([np.asarray(cblks, dtype=np.int64), src[keep]])
    target = np.concatenate([np.asarray(cblks, dtype=np.int64), tgt[keep]])
    flops = np.concatenate([np.asarray(flops_list), upd_flops[keep]])
    gm = np.concatenate([np.zeros(n_units, np.int64), ms[keep]])
    gn = np.concatenate([np.zeros(n_units, np.int64), ns[keep]])
    gk = np.concatenate([np.zeros(n_units, np.int64), widths[src[keep]]])
    mutex = np.full(n_tasks, -1, dtype=np.int64)
    mutex[n_units:] = tgt[keep]

    upd_ids = n_units + np.arange(keep.size, dtype=np.int64)
    heads = np.concatenate([owner_task[src[keep]], upd_ids])
    tails = np.concatenate([upd_ids, owner_task[tgt[keep]]])
    succ_ptr, succ_list = _csr_from_edges(n_tasks, heads, tails)
    return TaskDAG(
        kind=kind,
        cblk=cblk,
        target=target,
        flops=flops,
        gemm_m=gm,
        gemm_n=gn,
        gemm_k=gk,
        succ_ptr=succ_ptr,
        succ_list=succ_list,
        mutex=mutex,
        granularity="2d",
        symbol=symbol,
        factotype=factotype,
        fused_components=fused_components,
    )


def _build_split(
    symbol, factotype, widths, src, tgt, ms, ns,
    panel_flops, split_rows, recompute_ld, mult,
):
    """2D DAG with tall couples split into row-block update tasks.

    Each row block is an independent task: disjoint target rows, same
    target mutex (the scatter still serializes per panel), dependencies
    panel(src) → part → panel(tgt) exactly as for unsplit updates.  The
    per-part ``(row_lo, row_hi)`` bounds come from the canonical plan
    (:func:`repro.symbolic.splitting.plan_update_rowblocks`), which the
    hazard/symbolic auditors re-derive to check the DAG against.
    """
    from repro.symbolic.splitting import rowblock_bounds

    K = symbol.n_cblk
    n_upd = src.size
    p_src: list[int] = []
    p_tgt: list[int] = []
    p_m: list[int] = []
    p_n: list[int] = []
    p_k: list[int] = []
    p_lo: list[int] = []
    p_hi: list[int] = []
    p_flops: list[float] = []
    for i in range(n_upd):
        m, n, w = int(ms[i]), int(ns[i]), int(widths[src[i]])
        for lo, hi in rowblock_bounds(m, split_rows):
            p_src.append(int(src[i]))
            p_tgt.append(int(tgt[i]))
            p_m.append(hi - lo)
            p_n.append(n)
            p_k.append(w)
            p_lo.append(lo)
            p_hi.append(hi)
            p_flops.append(mult * flops_update_part(
                m, n, w, factotype, lo, hi, recompute_ld=recompute_ld,
            ))

    n_parts = len(p_src)
    n_tasks = K + n_parts
    kind = np.empty(n_tasks, dtype=np.int8)
    kind[:K] = TaskKind.PANEL
    kind[K:] = TaskKind.UPDATE
    psrc = np.asarray(p_src, dtype=np.int64)
    ptgt = np.asarray(p_tgt, dtype=np.int64)
    cblk = np.concatenate([np.arange(K, dtype=np.int64), psrc])
    target = np.concatenate([np.arange(K, dtype=np.int64), ptgt])
    flops = np.concatenate([panel_flops, np.asarray(p_flops)])
    gm = np.concatenate([np.zeros(K, np.int64), np.asarray(p_m, np.int64)])
    gn = np.concatenate([np.zeros(K, np.int64), np.asarray(p_n, np.int64)])
    gk = np.concatenate([np.zeros(K, np.int64), np.asarray(p_k, np.int64)])
    row_lo = np.full(n_tasks, -1, dtype=np.int64)
    row_hi = np.full(n_tasks, -1, dtype=np.int64)
    row_lo[K:] = np.asarray(p_lo, dtype=np.int64)
    row_hi[K:] = np.asarray(p_hi, dtype=np.int64)
    upd_ids = K + np.arange(n_parts, dtype=np.int64)
    heads = np.concatenate([psrc, upd_ids])
    tails = np.concatenate([upd_ids, ptgt])
    mutex = np.full(n_tasks, -1, dtype=np.int64)
    mutex[K:] = ptgt
    succ_ptr, succ_list = _csr_from_edges(n_tasks, heads, tails)
    return TaskDAG(
        kind=kind,
        cblk=cblk,
        target=target,
        flops=flops,
        gemm_m=gm,
        gemm_n=gn,
        gemm_k=gk,
        succ_ptr=succ_ptr,
        succ_list=succ_list,
        mutex=mutex,
        granularity="2d",
        symbol=symbol,
        factotype=factotype,
        row_lo=row_lo,
        row_hi=row_hi,
        split_rows=int(split_rows),
    )
