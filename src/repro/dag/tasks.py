"""Task and DAG containers.

Tasks are stored struct-of-arrays (NumPy) so hundred-thousand-task DAGs
stay cheap to build and walk; :class:`Task` is a light per-task view used
at API boundaries and in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

__all__ = ["TaskKind", "Task", "TaskDAG"]


class TaskKind(IntEnum):
    """Task flavours.

    ``PANEL``  — diagonal-block factorization + panel TRSM of one cblk;
    ``UPDATE`` — sparse GEMM of one (panel → facing panel) couple;
    ``PANEL1D`` — PaStiX 1D task: PANEL plus all its UPDATEs fused;
    ``SUBTREE`` — a whole leaf subtree of the supernode tree fused into
    one task (the paper's future-work granularity coarsening, §VI).
    """

    PANEL = 0
    UPDATE = 1
    PANEL1D = 2
    SUBTREE = 3


@dataclass(frozen=True)
class Task:
    """View of one task."""

    index: int
    kind: TaskKind
    cblk: int           # source panel
    target: int         # facing panel (== cblk for panel tasks)
    flops: float
    m: int              # GEMM rows (update tasks; 0 otherwise)
    n: int              # GEMM cols
    k: int              # GEMM depth == panel width

    @property
    def is_update(self) -> bool:
        return self.kind == TaskKind.UPDATE


class TaskDAG:
    """The factorization DAG (struct-of-arrays).

    Attributes
    ----------
    kind, cblk, target, flops, gemm_m, gemm_n, gemm_k:
        Per-task arrays (see :class:`Task`).
    succ_ptr / succ_list:
        CSR adjacency of *successor* edges.
    n_deps:
        In-degree of each task (number of predecessors).
    mutex:
        Per-task mutual-exclusion group (the target panel for updates,
        ``-1`` otherwise): two tasks in the same group must not run
        concurrently, modelling the in-out access to the facing panel.
    granularity:
        ``"1d"`` or ``"2d"``.
    """

    def __init__(
        self,
        kind: np.ndarray,
        cblk: np.ndarray,
        target: np.ndarray,
        flops: np.ndarray,
        gemm_m: np.ndarray,
        gemm_n: np.ndarray,
        gemm_k: np.ndarray,
        succ_ptr: np.ndarray,
        succ_list: np.ndarray,
        mutex: np.ndarray,
        granularity: str,
        symbol=None,
        factotype: str = "llt",
        fused_components: dict | None = None,
        row_lo: np.ndarray | None = None,
        row_hi: np.ndarray | None = None,
        split_rows: int | None = None,
    ) -> None:
        self.kind = kind
        self.cblk = cblk
        self.target = target
        self.flops = flops
        self.gemm_m = gemm_m
        self.gemm_n = gemm_n
        self.gemm_k = gemm_k
        self.succ_ptr = succ_ptr
        self.succ_list = succ_list
        self.mutex = mutex
        self.granularity = granularity
        self.symbol = symbol
        self.factotype = factotype
        #: "facto" (default) or "solve" — selects the simulator's kernel
        #: efficiency model and GPU eligibility.
        self.phase = "facto"
        #: For SUBTREE tasks: task id -> list of kernel components, each
        #: ("panel", width, below) or ("update", m, n, w) — used by the
        #: simulator's duration models.
        self.fused_components = fused_components or {}
        #: 2D row-block splitting (``build_dag(split_rows=...)``): the
        #: tail-relative ``[row_lo, row_hi)`` bounds of each update task
        #: (``-1`` for non-update tasks) and the ``max_rows`` threshold
        #: the plan was derived from.  ``split_rows is None`` means the
        #: classic one-task-per-couple DAG; the auditors treat duplicate
        #: couples in that case as a hazard (H110).
        self.row_lo = row_lo
        self.row_hi = row_hi
        self.split_rows = split_rows
        # In-degrees from the successor lists.
        n_deps = np.zeros(kind.size, dtype=np.int64)
        np.add.at(n_deps, succ_list, 1)
        self.n_deps = n_deps

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return int(self.kind.size)

    @property
    def n_edges(self) -> int:
        return int(self.succ_list.size)

    def task(self, i: int) -> Task:
        return Task(
            i,
            TaskKind(int(self.kind[i])),
            int(self.cblk[i]),
            int(self.target[i]),
            float(self.flops[i]),
            int(self.gemm_m[i]),
            int(self.gemm_n[i]),
            int(self.gemm_k[i]),
        )

    def successors(self, i: int) -> np.ndarray:
        return self.succ_list[self.succ_ptr[i]: self.succ_ptr[i + 1]]

    def _build_preds(self) -> None:
        heads = np.repeat(
            np.arange(self.n_tasks, dtype=np.int64), np.diff(self.succ_ptr)
        )
        order = np.argsort(self.succ_list, kind="stable")
        ptr = np.zeros(self.n_tasks + 1, dtype=np.int64)
        np.add.at(ptr, self.succ_list + 1, 1)
        np.cumsum(ptr, out=ptr)
        self._pred_ptr, self._pred_list = ptr, heads[order]

    def predecessors(self, i: int) -> np.ndarray:
        """Predecessor task ids of ``i`` (reverse CSR, built lazily)."""
        if not hasattr(self, "_pred_ptr"):
            self._build_preds()
        return self._pred_list[self._pred_ptr[i]: self._pred_ptr[i + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Is there a direct dependency edge ``u -> v``?"""
        return bool(np.any(self.successors(u) == v))

    def sources(self) -> np.ndarray:
        """Tasks with no predecessors."""
        return np.flatnonzero(self.n_deps == 0)

    def total_flops(self) -> float:
        return float(self.flops.sum())

    # ------------------------------------------------------------------
    def topological_order(self) -> np.ndarray:
        """Kahn topological order; raises on cycles."""
        indeg = self.n_deps.copy()
        order = np.empty(self.n_tasks, dtype=np.int64)
        stack = list(np.flatnonzero(indeg == 0))
        pos = 0
        while stack:
            t = stack.pop()
            order[pos] = t
            pos += 1
            for s in self.successors(t):
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(int(s))
        if pos != self.n_tasks:
            raise ValueError("task graph contains a cycle")
        return order

    def validate(self) -> None:
        """Structural checks (acyclicity, edge sanity, mutex sanity)."""
        self.topological_order()
        assert self.succ_ptr[0] == 0
        assert self.succ_ptr[-1] == self.succ_list.size
        if self.succ_list.size:
            assert self.succ_list.min() >= 0
            assert self.succ_list.max() < self.n_tasks
        upd = self.kind == TaskKind.UPDATE
        if self.phase == "facto":
            assert np.all(self.mutex[upd] == self.target[upd])
        assert np.all(self.mutex[~upd] == -1)
        if self.split_rows is not None:
            assert self.row_lo is not None and self.row_hi is not None
            assert np.all(self.row_hi[upd] > self.row_lo[upd])
            assert np.all(
                self.gemm_m[upd] == self.row_hi[upd] - self.row_lo[upd]
            )
            assert np.all(self.row_lo[~upd] == -1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskDAG({self.granularity}, tasks={self.n_tasks}, "
            f"edges={self.n_edges}, flops={self.total_flops():.3e})"
        )
