"""DAG analysis: critical path, parallelism profile, DOT export.

These quantify what the paper argues qualitatively: the 1D DAG has a
longer critical path (bounded parallelism on many-core), the 2D split
shortens it at the price of more tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.tasks import TaskDAG, TaskKind

__all__ = [
    "critical_path",
    "longest_path_levels",
    "parallelism_profile",
    "dag_summary",
    "to_dot",
]


def longest_path_levels(
    dag: TaskDAG, *, weights: np.ndarray | None = None
) -> np.ndarray:
    """Longest-path-to-sink (bottom level) of every task.

    ``levels[t]`` is the heaviest-path weight from ``t`` to any sink,
    *including* ``t`` itself; ``weights`` defaults to task flops.  The
    maximum over all tasks equals :func:`critical_path`'s length.  This
    is the classic critical-path list-scheduling priority: running the
    highest level first keeps the longest dependency chain moving.  Both
    the simulated policies (:func:`repro.runtime.base.bottom_levels`)
    and the real threaded :class:`repro.runtime.scheduling.\
CriticalPathScheduler` rank tasks by it.
    """
    w = dag.flops.astype(np.float64) if weights is None \
        else np.asarray(weights, dtype=np.float64)
    order = dag.topological_order()
    levels = w.copy()
    for t in order[::-1]:
        succ = dag.successors(int(t))
        if succ.size:
            levels[t] = w[t] + levels[succ].max()
    return levels


def critical_path(dag: TaskDAG, *, weights: np.ndarray | None = None) -> tuple[float, np.ndarray]:
    """Longest path through the DAG.

    ``weights`` defaults to task flops.  Returns ``(length, path)`` where
    ``path`` lists the task indices of one critical path in order.
    """
    w = dag.flops if weights is None else np.asarray(weights, dtype=np.float64)
    order = dag.topological_order()
    dist = np.zeros(dag.n_tasks, dtype=np.float64)
    pred = np.full(dag.n_tasks, -1, dtype=np.int64)
    for t in order:
        dt = dist[t] + w[t]
        for s in dag.successors(int(t)):
            if dt > dist[s]:
                dist[s] = dt
                pred[s] = t
    end = int(np.argmax(dist + w))
    length = float(dist[end] + w[end])
    path = [end]
    while pred[path[-1]] != -1:
        path.append(int(pred[path[-1]]))
    return length, np.asarray(path[::-1], dtype=np.int64)


def parallelism_profile(dag: TaskDAG) -> np.ndarray:
    """Tasks per dependency level (a width profile of the DAG)."""
    order = dag.topological_order()
    level = np.zeros(dag.n_tasks, dtype=np.int64)
    for t in order:
        for s in dag.successors(int(t)):
            level[s] = max(level[s], level[t] + 1)
    return np.bincount(level)


@dataclass(frozen=True)
class DagSummary:
    """Aggregate DAG statistics."""

    n_tasks: int
    n_panel: int
    n_update: int
    n_edges: int
    total_flops: float
    critical_path_flops: float
    avg_parallelism: float
    max_level_width: int


def dag_summary(dag: TaskDAG) -> DagSummary:
    """Compute a :class:`DagSummary` for reporting and tests."""
    cp, _ = critical_path(dag)
    prof = parallelism_profile(dag)
    n_panel = int(np.count_nonzero(dag.kind != TaskKind.UPDATE))
    return DagSummary(
        n_tasks=dag.n_tasks,
        n_panel=n_panel,
        n_update=dag.n_tasks - n_panel,
        n_edges=dag.n_edges,
        total_flops=dag.total_flops(),
        critical_path_flops=cp,
        avg_parallelism=dag.total_flops() / cp if cp else 0.0,
        max_level_width=int(prof.max()) if prof.size else 0,
    )


def to_dot(dag: TaskDAG, *, max_tasks: int = 500) -> str:
    """GraphViz DOT text of the DAG (small graphs only)."""
    if dag.n_tasks > max_tasks:
        raise ValueError(
            f"DAG too large for DOT export ({dag.n_tasks} > {max_tasks})"
        )
    colors = {
        int(TaskKind.PANEL): "lightblue",
        int(TaskKind.UPDATE): "lightsalmon",
        int(TaskKind.PANEL1D): "lightgreen",
    }
    lines = ["digraph factorization {", "  rankdir=TB;"]
    for i in range(dag.n_tasks):
        kind = TaskKind(int(dag.kind[i]))
        if kind == TaskKind.UPDATE:
            label = f"U {dag.cblk[i]}:{dag.target[i]}"
        else:
            label = f"P {dag.cblk[i]}"
        lines.append(
            f'  t{i} [label="{label}", style=filled, '
            f'fillcolor={colors[int(dag.kind[i])]}];'
        )
    for i in range(dag.n_tasks):
        for s in dag.successors(i):
            lines.append(f"  t{i} -> t{s};")
    lines.append("}")
    return "\n".join(lines)
