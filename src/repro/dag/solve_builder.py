"""Task DAG of the solve phase (block triangular solves).

PaStiX schedules the forward and backward substitutions through the same
runtimes as the factorization.  The structure mirrors the factorization
DAG at 2D granularity, once in each direction:

* forward: ``Pf(k)`` (diagonal tri-solve of panel ``k``) feeds
  ``Uf(k, t)`` (the GEMV slice of ``k``'s below rows landing in panel
  ``t``), which feeds ``Pf(t)``;
* backward: edges reversed — ``Pb(t)`` feeds ``Ub(k, t)`` feeds
  ``Pb(k)``; and ``Pf(k) → Pb(k)`` joins the phases.

Tasks are tiny (O(w²) and O(n·w) flops), which is exactly why the solve
step scales poorly compared with the factorization — the simulation
reproduces that, using a bandwidth-bound efficiency model
(``dag.phase == "solve"``).
"""

from __future__ import annotations

import numpy as np

from repro.dag.builder import _csr_from_edges, update_couples
from repro.dag.tasks import TaskDAG, TaskKind
from repro.kernels.cost import complex_multiplier
from repro.symbolic.structures import SymbolMatrix

__all__ = ["build_solve_dag"]


def build_solve_dag(
    symbol: SymbolMatrix,
    factotype: str = "llt",
    *,
    dtype=np.float64,
    nrhs: int = 1,
) -> TaskDAG:
    """Unroll the forward+backward solve of ``symbol`` into a DAG.

    ``nrhs`` scales every task's flops (block right-hand sides).
    The returned DAG has ``dag.phase == "solve"``; the simulator uses its
    bandwidth-bound efficiency model and keeps everything on CPUs (the
    paper does not offload the solve).
    """
    K = symbol.n_cblk
    widths = np.diff(symbol.cblk_ptr).astype(np.int64)
    src, tgt, ms, ns = update_couples(symbol)
    n_upd = src.size
    mult = complex_multiplier(dtype) * float(nrhs)

    # Panel tasks: triangular solve on the diagonal block (both phases).
    panel_flops = mult * widths.astype(np.float64) ** 2
    if factotype == "lu":
        pass  # forward uses L, backward uses U: same cost per phase
    upd_flops = mult * 2.0 * ns.astype(np.float64) * widths[src]

    # Layout: [Pf(0..K-1) | Uf(couples) | Pb(0..K-1) | Ub(couples)].
    pf = np.arange(K, dtype=np.int64)
    uf = K + np.arange(n_upd, dtype=np.int64)
    pb = K + n_upd + np.arange(K, dtype=np.int64)
    ub = 2 * K + n_upd + np.arange(n_upd, dtype=np.int64)
    n_tasks = 2 * (K + n_upd)

    kind = np.empty(n_tasks, dtype=np.int8)
    kind[pf] = TaskKind.PANEL
    kind[uf] = TaskKind.UPDATE
    kind[pb] = TaskKind.PANEL
    kind[ub] = TaskKind.UPDATE

    cblk = np.concatenate([pf, src, pf, src])
    target = np.concatenate([pf, tgt, pf, tgt])
    flops = np.concatenate([panel_flops, upd_flops, panel_flops, upd_flops])
    zeros_k = np.zeros(K, dtype=np.int64)
    zeros_u = np.zeros(n_upd, dtype=np.int64)
    gm = np.concatenate([zeros_k, ns, zeros_k, ns])
    gn = np.concatenate([zeros_k, np.ones(n_upd, np.int64) * nrhs,
                         zeros_k, np.ones(n_upd, np.int64) * nrhs])
    gk = np.concatenate([zeros_k, widths[src], zeros_k, widths[src]])

    # Mutexes: forward updates write into x-rows of the target panel;
    # backward updates accumulate into the *source* panel's columns.
    mutex = np.full(n_tasks, -1, dtype=np.int64)
    mutex[uf] = tgt            # forward fan-in at the facing panel
    mutex[ub] = K + src        # backward fan-in at the source panel
    #                            (offset K: distinct group namespace)

    heads = np.concatenate([
        pf[src], uf,           # Pf(k) -> Uf(k,t) -> Pf(t)
        pb[tgt], ub,           # Pb(t) -> Ub(k,t) -> Pb(k)
        pf,                    # Pf(k) -> Pb(k)
        uf,                    # Uf(k,t) -> Pb(k): the backward sweep may
        #                        only overwrite x[cols k] once every
        #                        forward update sourced from k has read it
    ])
    tails = np.concatenate([
        uf, pf[tgt],
        ub, pb[src],
        pb,
        pb[src],
    ])
    succ_ptr, succ_list = _csr_from_edges(n_tasks, heads, tails)

    dag = TaskDAG(
        kind=kind,
        cblk=cblk,
        target=target,
        flops=flops,
        gemm_m=gm,
        gemm_n=gn,
        gemm_k=gk,
        succ_ptr=succ_ptr,
        succ_list=succ_list,
        mutex=mutex,
        granularity="2d",
        symbol=symbol,
        factotype=factotype,
    )
    dag.phase = "solve"
    # Explicit per-task direction flag.  Consumers (the threaded solve,
    # the verifiers) must use this rather than re-deriving the phase
    # from the [Pf | Uf | Pb | Ub] index layout — the layout is an
    # implementation detail of this builder and free to change.
    solve_backward = np.zeros(n_tasks, dtype=bool)
    solve_backward[pb] = True
    solve_backward[ub] = True
    dag.solve_backward = solve_backward
    return dag
