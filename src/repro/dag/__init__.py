"""Factorization task DAG.

The symbol structure is unrolled into a DAG of tasks at one of two
granularities (paper §V):

* ``"1d"`` — PaStiX's original tasks: one task per panel bundling the
  diagonal factorization, the panel TRSM, *and every update the panel
  generates*.  Fewer, bigger tasks; what the native scheduler consumes.
* ``"2d"`` — the split used for PaRSEC and StarPU: one *panel task*
  (POTRF + TRSM) per cblk plus one *update task* per (panel, facing
  panel) couple, "the number of tasks is bound by the number of blocks in
  the symbolic structure".
"""

from repro.dag.tasks import Task, TaskKind, TaskDAG
from repro.dag.builder import build_dag, update_couples
from repro.dag.solve_builder import build_solve_dag
from repro.dag.analysis import (
    critical_path,
    longest_path_levels,
    parallelism_profile,
    dag_summary,
    to_dot,
)

__all__ = [
    "Task",
    "TaskKind",
    "TaskDAG",
    "build_dag",
    "update_couples",
    "build_solve_dag",
    "critical_path",
    "longest_path_levels",
    "parallelism_profile",
    "dag_summary",
    "to_dot",
]
