"""Level-of-fill incomplete LU factorization, ILU(k).

The classic two-phase construction:

1. **symbolic** (:func:`ilu_symbolic`) — row-wise level-of-fill: an entry
   ``(i, j)`` enters the pattern with level
   ``min(lev(i,k) + lev(k,j) + 1)`` over eliminated pivots ``k``; entries
   with level ≤ k survive.  ILU(0) keeps exactly A's pattern; growing k
   approaches the exact factor.
2. **numeric** — IKJ elimination restricted to the fixed pattern, without
   pivoting (consistent with the static-pivoting solver; the generators'
   diagonal dominance keeps it stable).

:class:`IncompleteLU` wraps both phases plus the triangular application,
and plugs straight into :mod:`repro.core.krylov` via its
:meth:`IncompleteLU.solve` closure.  Real and complex (plain-transpose)
systems are supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.ordering.perm import Permutation
from repro.sparse.csc import SparseMatrixCSC

__all__ = ["ilu_symbolic", "IncompleteLU"]


def ilu_symbolic(
    matrix: SparseMatrixCSC, level: int = 0
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Level-of-fill pattern of ILU(k).

    Returns ``(lower, upper)``: for each row ``i``, the sorted column
    indices strictly left of the diagonal (``lower[i]``) and from the
    diagonal rightward (``upper[i]``, always including ``i``).
    """
    if not matrix.is_square:
        raise ValueError("ILU needs a square matrix")
    if level < 0:
        raise ValueError("level must be >= 0")
    n = matrix.n_rows
    csr = matrix.to_scipy().tocsr()
    csr.sort_indices()

    lower: list[np.ndarray] = []
    upper: list[np.ndarray] = []
    # Levels of the U part of every processed row (dict per row).
    u_levels: list[dict[int, int]] = []

    for i in range(n):
        cols = csr.indices[csr.indptr[i]: csr.indptr[i + 1]]
        row_lev: dict[int, int] = {int(j): 0 for j in cols}
        row_lev.setdefault(i, 0)  # structurally full diagonal
        # Eliminate pivots in ascending column order; the active set can
        # grow while iterating, so re-scan a sorted snapshot each time.
        done: set[int] = set()
        while True:
            cands = sorted(
                j for j in row_lev
                if j < i and j not in done and row_lev[j] <= level
            )
            if not cands:
                break
            k = cands[0]
            done.add(k)
            lev_ik = row_lev[k]
            for j, lev_kj in u_levels[k].items():
                if j <= k:
                    continue
                new = lev_ik + lev_kj + 1
                if new <= level and (j not in row_lev or row_lev[j] > new):
                    row_lev[j] = min(row_lev.get(j, new), new)
        keep = {j: l for j, l in row_lev.items() if l <= level}
        lo = np.array(sorted(j for j in keep if j < i), dtype=np.int64)
        up = np.array(sorted(j for j in keep if j >= i), dtype=np.int64)
        lower.append(lo)
        upper.append(up)
        u_levels.append({int(j): keep[j] for j in up})
    return lower, upper


@dataclass
class IncompleteLU:
    """ILU(k) preconditioner.

    Parameters
    ----------
    matrix:
        Square sparse matrix with values.
    level:
        Level of fill (0 = A's own pattern).
    ordering:
        Optional :class:`Permutation` applied symmetrically before the
        factorization (a fill-reducing ordering also helps ILU quality);
        ``solve`` handles the permutation transparently.

    Attributes
    ----------
    nnz:
        Stored entries of L (strict) + U (with diagonal).
    """

    matrix: SparseMatrixCSC
    level: int = 0
    ordering: Optional[Permutation] = None

    def __post_init__(self) -> None:
        work = (
            self.matrix
            if self.ordering is None
            else self.matrix.permute(self.ordering.perm)
        )
        lower, upper = ilu_symbolic(work, self.level)
        self._factorize(work, lower, upper)

    # ------------------------------------------------------------------
    def _factorize(self, work, lower, upper) -> None:
        n = work.n_rows
        dtype = work.values.dtype
        csr = work.to_scipy().tocsr()
        csr.sort_indices()

        # U rows stored as dicts during elimination for O(1) access.
        u_rows: list[dict[int, complex]] = []
        l_rows: list[dict[int, complex]] = []
        for i in range(n):
            cols = csr.indices[csr.indptr[i]: csr.indptr[i + 1]]
            vals = csr.data[csr.indptr[i]: csr.indptr[i + 1]]
            row = {int(j): v for j, v in zip(cols, vals)}
            # Ensure pattern entries exist (fill positions start at 0).
            for j in lower[i]:
                row.setdefault(int(j), 0.0)
            for j in upper[i]:
                row.setdefault(int(j), 0.0)
            for k in lower[i]:
                k = int(k)
                piv = u_rows[k].get(k, 0.0)
                if piv == 0:
                    raise ZeroDivisionError(
                        f"zero pivot in ILU at row {k}"
                    )
                lik = row[k] / piv
                row[k] = lik
                for j, ukj in u_rows[k].items():
                    if j > k and j in row:
                        row[j] -= lik * ukj
            l_rows.append({int(j): row[int(j)] for j in lower[i]})
            u_rows.append({int(j): row[int(j)] for j in upper[i]})
        # Compress to CSR triangles.
        self._L = self._to_csr(l_rows, n, dtype, unit=True)
        self._U = self._to_csr(u_rows, n, dtype, unit=False)
        self.nnz = int(self._L.nnz + self._U.nnz)

    @staticmethod
    def _to_csr(rows, n, dtype, *, unit: bool):
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices: list[int] = []
        data: list = []
        for i, row in enumerate(rows):
            cols = sorted(row)
            indices.extend(cols)
            data.extend(row[j] for j in cols)
            indptr[i + 1] = len(indices)
        mat = sp.csr_matrix(
            (np.asarray(data, dtype=dtype),
             np.asarray(indices, dtype=np.int64), indptr),
            shape=(n, n),
        )
        return mat

    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Apply the preconditioner: solve ``L U x = b`` on the pattern."""
        b = np.asarray(b)
        if self.ordering is not None:
            b = self.ordering.apply_to_vector(b)
        y = sp.linalg.spsolve_triangular(
            self._L + sp.eye(self._L.shape[0], format="csr",
                             dtype=self._L.dtype),
            b, lower=True, unit_diagonal=True,
        )
        x = sp.linalg.spsolve_triangular(self._U, y, lower=False)
        if self.ordering is not None:
            x = self.ordering.undo_on_vector(x)
        return x

    def factors(self) -> tuple[SparseMatrixCSC, SparseMatrixCSC]:
        """L (strict lower, unit diagonal implicit) and U as CSC."""
        return (
            SparseMatrixCSC.from_scipy(self._L.tocsc()),
            SparseMatrixCSC.from_scipy(self._U.tocsc()),
        )

    def residual_operator_norm(self, samples: int = 8, seed: int = 0) -> float:
        """Rough estimate of ``‖I − (LU)⁻¹A‖`` by random probing —
        a quality measure that shrinks as the level grows."""
        rng = np.random.default_rng(seed)
        n = self.matrix.n_rows
        worst = 0.0
        for _ in range(samples):
            v = rng.standard_normal(n)
            v /= np.linalg.norm(v)
            r = v - self.solve(self.matrix.matvec(v))
            worst = max(worst, float(np.linalg.norm(r)))
        return worst
