"""Incomplete factorizations (preconditioners).

The paper's amalgamation stage is "reused from the implementation of an
incomplete factorization" (§V, citing Hénon–Ramet–Roman's approximate
supernodes for ILU(k)).  This package provides that other half of the
lineage: level-of-fill incomplete LU / incomplete Cholesky, usable
directly as preconditioners for the Krylov solvers in
:mod:`repro.core.krylov`.
"""

from repro.precond.ilu import IncompleteLU, ilu_symbolic

__all__ = ["IncompleteLU", "ilu_symbolic"]
