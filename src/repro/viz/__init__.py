"""Dependency-free visualisation helpers.

The environment has no plotting library, so :mod:`repro.viz.svgchart`
renders line and grouped-bar charts directly as SVG — enough to redraw
the paper's figures from the benchmark CSVs
(``python benchmarks/make_figures.py``).
"""

from repro.viz.svgchart import SvgChart

__all__ = ["SvgChart"]
