"""Minimal SVG chart renderer (lines + grouped bars).

No dependencies beyond the standard library; designed for the shapes the
paper's figures need: GFlop/s-vs-cores lines, GFlop/s-vs-M kernel curves
(log x), and grouped bars per matrix.  Styling is intentionally plain —
readable axes, a palette distinguishable in grayscale, a legend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["SvgChart"]

_PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
    "#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2",
]
_DASHES = ["", "6,3", "2,2", "8,2,2,2"]


def _nice_ticks(lo: float, hi: float, n: int = 6) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n - 1, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    start = math.floor(lo / step) * step
    ticks = [round(start, 10)]
    while ticks[-1] < hi - 1e-12:
        ticks.append(round(ticks[-1] + step, 10))
    return ticks


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e6:
        return str(int(v))
    return f"{v:g}"


@dataclass
class _Line:
    xs: Sequence[float]
    ys: Sequence[float]
    label: str
    color: str
    dash: str


@dataclass
class SvgChart:
    """A single chart; add series then :meth:`save`."""

    title: str = ""
    xlabel: str = ""
    ylabel: str = ""
    width: int = 640
    height: int = 400
    log_x: bool = False
    y_min: Optional[float] = None
    y_max: Optional[float] = None
    _lines: list = field(default_factory=list)
    _hlines: list = field(default_factory=list)
    _bars: Optional[tuple] = None

    # ------------------------------------------------------------------
    def add_line(self, xs, ys, label: str = "") -> None:
        if len(xs) != len(ys):
            raise ValueError("x and y lengths differ")
        if self.log_x and any(x <= 0 for x in xs):
            raise ValueError("log_x requires strictly positive x values")
        i = len(self._lines)
        self._lines.append(_Line(
            list(map(float, xs)), list(map(float, ys)), label,
            _PALETTE[i % len(_PALETTE)], _DASHES[(i // len(_PALETTE)) % len(_DASHES)],
        ))

    def add_hline(self, y: float, label: str = "") -> None:
        self._hlines.append((float(y), label))

    def add_bar_groups(self, categories: Sequence[str], series: dict) -> None:
        """Grouped bars: one group per category, one bar per series."""
        for name, vals in series.items():
            if len(vals) != len(categories):
                raise ValueError(f"series {name!r} length mismatch")
        self._bars = (list(categories), {k: list(map(float, v))
                                         for k, v in series.items()})

    # ------------------------------------------------------------------
    def _x_transform(self, lo: float, hi: float, plot_w: float):
        if self.log_x:
            llo, lhi = math.log10(lo), math.log10(hi)
            span = (lhi - llo) or 1.0
            return lambda x: (math.log10(x) - llo) / span * plot_w
        span = (hi - lo) or 1.0
        return lambda x: (x - lo) / span * plot_w

    def render(self) -> str:
        W, H = self.width, self.height
        ml, mr, mt, mb = 62, 150, 34, 48
        pw, ph = W - ml - mr, H - mt - mb
        out = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{W}" '
            f'height="{H}" viewBox="0 0 {W} {H}" '
            f'font-family="Helvetica, Arial, sans-serif">',
            f'<rect width="{W}" height="{H}" fill="white"/>',
        ]
        if self.title:
            out.append(
                f'<text x="{ml + pw / 2}" y="20" text-anchor="middle" '
                f'font-size="14" font-weight="bold">{self.title}</text>'
            )

        # Collect y range.
        ys = [y for ln in self._lines for y in ln.ys]
        ys += [y for y, _ in self._hlines]
        if self._bars:
            ys += [v for vals in self._bars[1].values() for v in vals]
        y_lo = self.y_min if self.y_min is not None else min(ys + [0.0])
        y_hi = self.y_max if self.y_max is not None else max(ys) * 1.05
        yticks = _nice_ticks(y_lo, y_hi)
        y_lo, y_hi = yticks[0], yticks[-1]

        def ty(y: float) -> float:
            return mt + ph - (y - y_lo) / (y_hi - y_lo) * ph

        # Axes + y grid.
        for yt in yticks:
            py = ty(yt)
            out.append(
                f'<line x1="{ml}" y1="{py}" x2="{ml + pw}" y2="{py}" '
                f'stroke="#dddddd" stroke-width="1"/>'
            )
            out.append(
                f'<text x="{ml - 6}" y="{py + 4}" text-anchor="end" '
                f'font-size="11">{_fmt(yt)}</text>'
            )
        out.append(
            f'<rect x="{ml}" y="{mt}" width="{pw}" height="{ph}" '
            f'fill="none" stroke="#333333"/>'
        )
        if self.ylabel:
            out.append(
                f'<text x="14" y="{mt + ph / 2}" font-size="12" '
                f'transform="rotate(-90 14 {mt + ph / 2})" '
                f'text-anchor="middle">{self.ylabel}</text>'
            )
        if self.xlabel:
            out.append(
                f'<text x="{ml + pw / 2}" y="{H - 10}" text-anchor="middle" '
                f'font-size="12">{self.xlabel}</text>'
            )

        legend_items: list[tuple[str, str, str]] = []

        if self._bars:
            cats, series = self._bars
            ngroups, nseries = len(cats), len(series)
            group_w = pw / max(ngroups, 1)
            bar_w = group_w * 0.8 / max(nseries, 1)
            for si, (name, vals) in enumerate(series.items()):
                color = _PALETTE[si % len(_PALETTE)]
                legend_items.append((name, color, ""))
                for gi, v in enumerate(vals):
                    x = ml + gi * group_w + group_w * 0.1 + si * bar_w
                    out.append(
                        f'<rect x="{x:.2f}" y="{ty(v):.2f}" '
                        f'width="{bar_w:.2f}" '
                        f'height="{(mt + ph - ty(v)):.2f}" fill="{color}"/>'
                    )
            for gi, cat in enumerate(cats):
                cx = ml + (gi + 0.5) * group_w
                out.append(
                    f'<text x="{cx:.2f}" y="{mt + ph + 16}" font-size="10" '
                    f'text-anchor="middle">{cat}</text>'
                )

        if self._lines:
            xs_all = [x for ln in self._lines for x in ln.xs]
            x_lo, x_hi = min(xs_all), max(xs_all)
            fx = self._x_transform(x_lo, x_hi, pw)
            xticks = (
                [10 ** e for e in range(
                    math.floor(math.log10(x_lo)),
                    math.ceil(math.log10(x_hi)) + 1,
                )]
                if self.log_x
                else _nice_ticks(x_lo, x_hi)
            )
            for xt in xticks:
                if xt < x_lo * 0.999 or xt > x_hi * 1.001:
                    continue
                px = ml + fx(xt)
                out.append(
                    f'<line x1="{px:.2f}" y1="{mt + ph}" x2="{px:.2f}" '
                    f'y2="{mt + ph + 4}" stroke="#333333"/>'
                )
                out.append(
                    f'<text x="{px:.2f}" y="{mt + ph + 16}" font-size="10" '
                    f'text-anchor="middle">{_fmt(xt)}</text>'
                )
            for ln in self._lines:
                pts = " ".join(
                    f"{ml + fx(x):.2f},{ty(y):.2f}"
                    for x, y in zip(ln.xs, ln.ys)
                )
                dash = f' stroke-dasharray="{ln.dash}"' if ln.dash else ""
                out.append(
                    f'<polyline points="{pts}" fill="none" '
                    f'stroke="{ln.color}" stroke-width="1.8"{dash}/>'
                )
                for x, y in zip(ln.xs, ln.ys):
                    out.append(
                        f'<circle cx="{ml + fx(x):.2f}" cy="{ty(y):.2f}" '
                        f'r="2.4" fill="{ln.color}"/>'
                    )
                if ln.label:
                    legend_items.append((ln.label, ln.color, ln.dash))

        for y, label in self._hlines:
            out.append(
                f'<line x1="{ml}" y1="{ty(y):.2f}" x2="{ml + pw}" '
                f'y2="{ty(y):.2f}" stroke="#000000" stroke-width="1.2" '
                f'stroke-dasharray="4,3"/>'
            )
            if label:
                legend_items.append((label, "#000000", "4,3"))

        # Legend in the right margin.
        for i, (label, color, dash) in enumerate(legend_items):
            ly = mt + 10 + i * 16
            dd = f' stroke-dasharray="{dash}"' if dash else ""
            out.append(
                f'<line x1="{ml + pw + 8}" y1="{ly}" x2="{ml + pw + 30}" '
                f'y2="{ly}" stroke="{color}" stroke-width="2.5"{dd}/>'
            )
            out.append(
                f'<text x="{ml + pw + 34}" y="{ly + 4}" '
                f'font-size="10">{label}</text>'
            )
        out.append("</svg>")
        return "\n".join(out)

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.render())
