"""Multi-stream kernel-burst simulation (the Figure-3 experiment).

The paper measures the average throughput of 100 back-to-back DGEMM
kernel calls distributed round-robin over 1–3 CUDA streams, for three
kernels (cuBLAS, ASTRA, sparse-adapted ASTRA) across M ∈ [128, 10000]
with N = K = 128.  This module reruns that experiment against the same
GPU model the DAG simulator uses: kernels receive device capacity FIFO
by start time (earlier kernels up to their occupancy, later ones fill
the remainder), so small kernels genuinely overlap across streams while
large ones serialize.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.perfmodel import (
    astra_rate,
    cublas_rate,
    gemm_occupancy,
    sparse_astra_rate,
)
from repro.runtime.tracing import ExecutionTrace

__all__ = ["simulate_kernel_burst", "BurstResult"]


@dataclass(frozen=True)
class BurstResult:
    """Average throughput of one burst configuration."""

    kernel: str
    m: int
    n: int
    k: int
    streams: int
    n_calls: int
    elapsed: float
    gflops: float
    #: Device bytes read+written across the burst: the A (m×k), B (n×k)
    #: and C (m×n) operands per call, with C inflated by the destination
    #: ``height_ratio`` for the sparse-scatter kernel (it walks the full
    #: gappy panel).  Feeds the BENCH_* arithmetic-intensity reports.
    bytes_touched: float = 0.0


def _solo_rate(kernel: str, m: int, n: int, k: int, streams: int,
               height_ratio: float) -> float:
    if kernel == "cublas":
        return cublas_rate(m, n, k)
    if kernel == "astra":
        return astra_rate(m, n, k, textures=streams <= 1)
    if kernel == "sparse":
        return sparse_astra_rate(m, n, k, height_ratio=height_ratio)
    raise ValueError(f"unknown kernel {kernel!r}")


def simulate_kernel_burst(
    kernel: str,
    m: int,
    n: int = 128,
    k: int = 128,
    *,
    streams: int = 1,
    n_calls: int = 100,
    height_ratio: float = 2.0,
    launch_overhead_s: float = 4e-6,
    trace: ExecutionTrace | None = None,
) -> BurstResult:
    """Simulate ``n_calls`` identical kernels round-robin over ``streams``.

    ``height_ratio`` only affects the ``sparse`` kernel (the paper's
    Fig. 3 uses a destination panel twice as tall as the product).
    Returns the average achieved GFlop/s, the paper's y-axis.

    ``trace`` (optional) receives one event per kernel call — task id =
    submission index, resource = ``"stream{s}"`` — plus the D8xx
    provenance stamps, so a seeded double-run of the burst can be
    fingerprint-compared like the other simulators' traces.
    """
    if trace is not None:
        trace.meta["producer"] = "machine.streamsim"
        trace.meta["clock"] = "virtual"
        trace.meta["rng"] = None    # the burst makes no stochastic choices
    flops = 2.0 * m * n * k
    rate = _solo_rate(kernel, m, n, k, streams, height_ratio) * 1e9
    occ = gemm_occupancy(m, n, k)
    if rate <= 0:
        raise ValueError("degenerate kernel shape")

    # Streams are FIFO: each stream runs its kernels in submission order;
    # the device shares capacity FIFO across the currently running heads.
    remaining = [n_calls // streams + (1 if s < n_calls % streams else 0)
                 for s in range(streams)]
    # Active head kernel per stream: remaining flops, start time.
    active: dict[int, float] = {}
    started: dict[int, float] = {}
    call_id: dict[int, int] = {}
    n_submitted = 0
    time = 0.0
    for s in range(streams):
        if remaining[s]:
            active[s] = flops
            started[s] = time + launch_overhead_s * s
            call_id[s] = n_submitted
            n_submitted += 1
            remaining[s] -= 1

    from repro.machine.perfmodel import STREAM_OVERLAP_DECAY

    while active:
        # FIFO capacity shares with decaying overlap efficiency.
        order = sorted(active, key=lambda s: started[s])
        capacity = 1.0
        rates = {}
        for i, s in enumerate(order):
            share = min(occ * STREAM_OVERLAP_DECAY**i, max(capacity, 0.0))
            capacity -= share
            rates[s] = rate * max(share / occ, 0.02)
        # Advance to the earliest completion.
        dt = min(active[s] / rates[s] for s in order)
        time += dt
        finished = []
        for s in order:
            active[s] -= rates[s] * dt
            if active[s] <= flops * 1e-12:
                finished.append(s)
        for s in finished:
            if trace is not None:
                trace.record(call_id[s], f"stream{s}", started[s], time)
            del active[s]
            if remaining[s]:
                active[s] = flops
                started[s] = time + launch_overhead_s
                call_id[s] = n_submitted
                n_submitted += 1
                remaining[s] -= 1

    total_flops = flops * n_calls
    c_ratio = height_ratio if kernel == "sparse" else 1.0
    bytes_per_call = 8.0 * (m * k + n * k + c_ratio * m * n)
    return BurstResult(
        kernel=kernel,
        m=m,
        n=n,
        k=k,
        streams=streams,
        n_calls=n_calls,
        elapsed=time,
        gflops=total_flops / time / 1e9,
        bytes_touched=bytes_per_call * n_calls,
    )
