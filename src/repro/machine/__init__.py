"""Simulated heterogeneous machines.

The paper's performance results (Figures 2–4) come from a 12-core
Westmere node with three Tesla M2070 GPUs.  Without that hardware, this
package provides a calibrated *discrete-event simulator*: the very task
DAG the solver builds is executed under each scheduler policy against
kernel-duration and transfer models, reproducing the mechanisms the paper
identifies (granularity, cache reuse, per-task overhead, PCIe transfers,
stream overlap) and hence the shapes of its figures.
"""

from repro.machine.model import CpuSpec, GpuSpec, MachineSpec, mirage
from repro.machine.perfmodel import (
    CpuPerfModel,
    GpuKernelModel,
    cublas_rate,
    astra_rate,
    sparse_astra_rate,
    gemm_occupancy,
)
from repro.machine.simulator import simulate, SimulationResult

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "MachineSpec",
    "mirage",
    "CpuPerfModel",
    "GpuKernelModel",
    "cublas_rate",
    "astra_rate",
    "sparse_astra_rate",
    "gemm_occupancy",
    "simulate",
    "SimulationResult",
]
