"""Kernel performance models.

Two families:

* **CPU** — per-core rates for the panel and update kernels, saturating
  with block size (small blocks can't keep the FPU pipelines full).
* **GPU** — the three DGEMM kernels of the paper's Figure 3, for the
  panel-update shape ``C(M×N) −= A(M×K)·B(N×K)ᵀ``:

  - ``cublas_rate`` — the closed-source reference; its shape-dependent
    throughput never reaches the square-matrix peak in this configuration;
  - ``astra_rate`` — the auto-tuned open kernel: ~15 % below cuBLAS on
    this rectangular shape (tuned on squares), a further 5 % lost when
    textures are disabled for multi-stream concurrency;
  - ``sparse_astra_rate`` — the paper's modified kernel writing directly
    into the gappy destination panel: loses memory coalescence as the
    destination panel grows relative to the product ("the taller the
    panel, the lower the performance").

  ``gemm_occupancy`` gives the fraction of the GPU one kernel can occupy
  alone; the simulator's processor-sharing GPU model turns that into the
  multi-stream gains of Figure 3.

All rates are in GFlop/s; flops are paper-convention (complex ×4 handled
upstream).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CpuPerfModel",
    "GpuKernelModel",
    "TransferCostModel",
    "cublas_rate",
    "astra_rate",
    "sparse_astra_rate",
    "gemm_occupancy",
]


@dataclass(frozen=True)
class TransferCostModel:
    """Latency + bandwidth cost of moving panel bytes over PCIe.

    The defining ingredient of StarPU's ``dmda`` ("data-aware") ranking:
    a task's expected completion on a device is its kernel time *plus*
    the time to stage its operands across the link.  Defaults mirror
    :class:`repro.machine.model.GpuSpec` (6 GB/s effective PCIe x16 gen2,
    15 µs per-transfer latency); the adaptive scheduler uses this model
    to charge each task its simulated-GPU staging cost when ranking by
    expected completion (see :mod:`repro.runtime.adaptive`).
    """

    #: Per-transfer fixed latency in seconds.
    latency_s: float = 15e-6
    #: Effective link bandwidth, GB/s (both directions modelled as one).
    gbps: float = 6.0

    def cost(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across the link (one transfer)."""
        if nbytes <= 0.0:
            return 0.0
        return self.latency_s + float(nbytes) / (self.gbps * 1e9)

    @classmethod
    def from_spec(cls, spec: "object") -> "TransferCostModel":
        """Build from a :class:`~repro.machine.model.GpuSpec`."""
        return cls(
            latency_s=float(getattr(spec, "transfer_latency_s", 15e-6)),
            gbps=float(getattr(spec, "h2d_gbps", 6.0)),
        )

# ----------------------------------------------------------------------
# GPU kernel models (Figure 3)
# ----------------------------------------------------------------------

#: Square-matrix cuBLAS DGEMM peak on an M2070 ("cuBLAS peak" line).
CUBLAS_PEAK_GFLOPS = 302.0

#: Saturation half-sizes of the rectangular-shape throughput curve.
_M_HALF = 420.0
_N_HALF = 26.0
_K_HALF = 26.0
#: Asymptote chosen so M=10000, N=K=128 lands near the paper's ~250 GF/s.
_R_INF = 415.0

#: Overlap efficiency decay: the i-th concurrent kernel contributes its
#: occupancy × DECAY^i (scheduling friction makes stream gains sub-linear,
#: as the measured Fig. 3 two→three stream steps show).
STREAM_OVERLAP_DECAY = 0.8


def cublas_rate(m: float, n: float, k: float) -> float:
    """cuBLAS DGEMM GFlop/s for the update shape (clamped at peak)."""
    if min(m, n, k) <= 0:
        return 0.0
    r = (
        _R_INF
        * (m / (m + _M_HALF))
        * (n / (n + _N_HALF))
        * (k / (k + _K_HALF))
    )
    return float(min(r, CUBLAS_PEAK_GFLOPS))


def astra_rate(m: float, n: float, k: float, *, textures: bool = True) -> float:
    """ASTRA auto-tuned kernel: 15 % under cuBLAS on this shape; disabling
    textures (required for concurrent streams) costs another 5 %."""
    r = 0.85 * cublas_rate(m, n, k)
    return r if textures else 0.95 * r


def sparse_astra_rate(
    m: float, n: float, k: float, *, height_ratio: float = 1.0
) -> float:
    """The paper's sparse (scatter) kernel.

    ``height_ratio`` = destination panel height / product height ``m``;
    the extra C-panel memory traffic lowers the flop-per-byte ratio
    roughly in that proportion (Fig. 3 measured C twice as tall as A and
    lost ~30 % at large M).
    """
    if height_ratio < 1.0:
        height_ratio = 1.0
    penalty = 1.0 / (1.0 + 0.45 * (height_ratio - 1.0))
    return astra_rate(m, n, k, textures=False) * penalty


def gemm_occupancy(m: float, n: float, k: float) -> float:
    """Fraction of the GPU a single kernel instance can occupy.

    Driven by the number of resident thread blocks along M; small update
    kernels leave most multiprocessors idle, which is what multiple
    streams reclaim.  Defined as exactly the M-saturation factor of the
    throughput curves, so a kernel's solo rate factors as
    ``shape_asymptote(n, k) × occupancy(m)`` — the identity the
    processor-sharing model relies on.
    """
    occ = m / (m + _M_HALF)
    return float(min(1.0, max(occ, 1e-3)))


@dataclass(frozen=True)
class GpuKernelModel:
    """Bundle of GPU kernel model + spec-level scaling.

    ``kernel`` selects the Figure-3 curve used for update tasks;
    simulations of the solver always use ``"sparse"`` (the only kernel
    that can run on the gappy panels); ``"cublas"``/``"astra"`` exist for
    the Figure-3 bench itself.
    """

    kernel: str = "sparse"

    def rate(
        self, m: float, n: float, k: float, *, height_ratio: float = 1.0,
        streams: int = 1,
    ) -> float:
        if self.kernel == "cublas":
            return cublas_rate(m, n, k)
        if self.kernel == "astra":
            return astra_rate(m, n, k, textures=streams <= 1)
        if self.kernel == "sparse":
            return sparse_astra_rate(m, n, k, height_ratio=height_ratio)
        raise ValueError(f"unknown GPU kernel {self.kernel!r}")

    def occupancy(self, m: float, n: float, k: float) -> float:
        return gemm_occupancy(m, n, k)


# ----------------------------------------------------------------------
# CPU kernel model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CpuPerfModel:
    """Per-core CPU kernel efficiencies.

    ``eff(kernel, sizes)`` returns the fraction of per-core peak the
    kernel achieves; durations are ``flops / (peak · eff)``.  The numbers
    are calibrated to MKL-on-Westmere behaviour: large GEMMs ~90 % of
    peak, panel factorizations lower, everything degrading on small
    blocks.
    """

    gemm_eff_max: float = 0.92
    gemm_half_dim: float = 40.0
    panel_eff_max: float = 0.62
    panel_half_dim: float = 64.0
    scatter_penalty: float = 0.88   # temp-buffer + dispatch of the update
    ldlt_recompute_penalty: float = 0.88  # full LDLᵀ op per update
    #                                       (generic runtimes, §V-A)
    index_penalty: float = 0.93     # per-update scatter-map re-derivation
    #                                 (runtimes without precomputed maps)

    def gemm_eff(self, m: float, n: float, k: float) -> float:
        """Efficiency of an ``m×n×k`` GEMM (geometric-mean size law)."""
        if min(m, n, k) <= 0:
            return self.gemm_eff_max
        s = (m * n * k) ** (1.0 / 3.0)
        return self.gemm_eff_max * s / (s + self.gemm_half_dim)

    def update_eff(
        self, m: float, n: float, k: float, *, factotype: str = "llt",
        recompute_ld: bool = False, index_cache: bool = True,
    ) -> float:
        eff = self.gemm_eff(m, n, k) * self.scatter_penalty
        if factotype == "ldlt" and recompute_ld:
            eff *= self.ldlt_recompute_penalty
        if not index_cache:
            # Symbolic index bookkeeping re-derived inside every task
            # (searchsorted maps + rebases) — removed entirely when the
            # runtime carries precomputed couple maps.
            eff *= self.index_penalty
        return eff

    solve_eff_max: float = 0.12   # triangular solves / GEMV are
    #                               bandwidth-bound: ~1 flop per byte

    def solve_eff(self, size: float) -> float:
        """Efficiency of solve-phase kernels (tri-solve / GEMV slices)."""
        s = max(size, 1.0)
        return self.solve_eff_max * s / (s + 32.0)

    def panel_eff(self, width: float, below: float) -> float:
        """Efficiency of a panel task (POTRF + TRSM)."""
        s = max(width, 1.0)
        base = self.panel_eff_max * s / (s + self.panel_half_dim)
        # A tall TRSM part behaves closer to GEMM: blend by row share.
        total = width + below
        if total > 0 and below > 0:
            gemm_like = self.gemm_eff(below, width, width) * 0.9
            base = (width * base + below * gemm_like) / total
        return base
