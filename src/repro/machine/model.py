"""Machine specifications.

The default :func:`mirage` factory models a node of the PLAFRIM Mirage
cluster used throughout the paper's evaluation: two hexa-core Westmere
Xeon X5650 (2.67 GHz, 4 DP flops/cycle/core → 10.68 GFlop/s/core peak)
and three NVIDIA Tesla M2070 GPUs (515 GFlop/s DP peak, ~5.25 GB usable,
PCIe 2.0 x16).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["CpuSpec", "GpuSpec", "MachineSpec", "mirage"]


@dataclass(frozen=True)
class CpuSpec:
    """One CPU core class.

    ``peak_gflops`` is the per-core double-precision peak; efficiency
    factors live in :class:`repro.machine.perfmodel.CpuPerfModel`.
    """

    peak_gflops: float = 10.68
    cache_reuse_bonus: float = 1.10   # locality gain when the scheduler
    #                                   keeps a panel's updates on one core


@dataclass(frozen=True)
class GpuSpec:
    """One GPU class (defaults: Tesla M2070).

    ``h2d_gbps`` covers both directions of the PCIe link (modelled as one
    exclusive channel per GPU, as transfers through a single copy engine).
    """

    peak_gflops: float = 515.0
    memory_bytes: int = int(5.25e9)
    h2d_gbps: float = 6.0
    transfer_latency_s: float = 15e-6
    max_streams: int = 3


@dataclass(frozen=True)
class MachineSpec:
    """A node: ``n_cores`` CPU cores plus ``n_gpus`` GPUs."""

    n_cores: int = 12
    n_gpus: int = 0
    cpu: CpuSpec = field(default_factory=CpuSpec)
    gpu: GpuSpec = field(default_factory=GpuSpec)
    streams_per_gpu: int = 1

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.n_gpus < 0:
            raise ValueError("n_gpus must be >= 0")
        if not (1 <= self.streams_per_gpu <= self.gpu.max_streams):
            raise ValueError(
                f"streams_per_gpu must be in [1, {self.gpu.max_streams}]"
            )

    def with_(self, **kw) -> "MachineSpec":
        """Functional update (``spec.with_(n_gpus=2, streams_per_gpu=3)``)."""
        return replace(self, **kw)


def mirage(
    n_cores: int = 12, n_gpus: int = 0, streams_per_gpu: int = 1
) -> MachineSpec:
    """A Mirage node (the paper's testbed) with the given resources."""
    return MachineSpec(
        n_cores=n_cores, n_gpus=n_gpus, streams_per_gpu=streams_per_gpu
    )
