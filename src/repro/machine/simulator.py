"""Discrete-event simulation of a factorization DAG on a hybrid machine.

The simulator owns the mechanics; a
:class:`repro.runtime.base.SchedulerPolicy` owns the decisions.  Modelled
mechanics:

* **dependencies** — a task becomes ready when all predecessors complete;
* **mutexes** — updates targeting one panel are serialized (the in-out
  panel access of the right-looking variant, §III);
* **CPU workers** — exclusive, per-task overhead + duration from
  :class:`CpuPerfModel`, with a cache-reuse bonus when the policy keeps
  consecutive updates of a panel on one core;
* **GPUs** — up to ``streams_per_gpu`` concurrent kernels under
  *processor sharing*: each kernel alone runs at its Figure-3 model rate;
  concurrent kernels share the device in proportion to their occupancy,
  which is precisely how multiple streams raise small-kernel throughput;
* **transfers** — one exclusive PCIe link per GPU (latency + bandwidth),
  LRU device memory, MSI-style panel coherence (a write invalidates other
  copies; a read from a device lacking the newest copy pays a transfer).

Panel-factorization tasks always run on CPU (the paper offloads only the
compute-heavy GEMM updates, §V-B).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.dag.tasks import TaskDAG, TaskKind
from repro.machine.model import MachineSpec
from repro.machine.perfmodel import CpuPerfModel, GpuKernelModel
from repro.resilience import (
    FaultModel,
    HealthMonitor,
    HealthPolicy,
    RecoveryPolicy,
    UnrecoverableError,
    bucket_key,
    window_factor,
)
from repro.runtime.seq import monotonic_counter
from repro.runtime.tracing import ExecutionTrace

__all__ = ["simulate", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulated factorization."""

    policy: str
    machine: MachineSpec
    makespan: float
    flops: float
    trace: Optional[ExecutionTrace]
    n_cpu_workers: int
    bytes_h2d: float
    bytes_d2h: float
    busy: dict
    #: Largest device-memory footprint reached on any single GPU.
    peak_gpu_bytes: float = 0.0
    #: Faults injected during the run (0 when resilience is off).
    n_faults: int = 0
    #: Task attempts re-executed after a fault.
    n_reexecuted: int = 0
    #: Bytes of failed transfer attempts that had to be re-sent.
    bytes_retransferred: float = 0.0
    #: Health-state transitions taken (0 when monitoring is off).
    n_health_transitions: int = 0
    #: Speculative duplicates launched (0 when hedging is off).
    n_hedges: int = 0

    @property
    def gflops(self) -> float:
        return self.flops / self.makespan / 1e9 if self.makespan > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult({self.policy}, cores={self.n_cpu_workers}, "
            f"gpus={self.machine.n_gpus}, makespan={self.makespan:.4f}s, "
            f"{self.gflops:.1f} GFlop/s)"
        )


class _GpuState:
    """Per-GPU runtime state (streams, sharing, link, residency).

    A task accepted by the GPU first *stages* (its transfers run while
    other kernels compute — the prefetch pipeline every real runtime
    implements), then occupies one of the ``streams`` compute slots.
    """

    #: Extra tasks whose transfers may be in flight beyond the streams.
    PREFETCH_DEPTH = 2

    __slots__ = (
        "index", "streams", "staging", "ready_queue", "active_rem",
        "active_rate", "active_base", "active_occ", "last_time", "version",
        "link_free", "resident", "resident_bytes", "peak_bytes", "pinned",
        "arrival",
    )

    def __init__(self, index: int, streams: int) -> None:
        self.index = index
        self.streams = streams
        self.staging = 0                 # tasks with transfers in flight
        self.ready_queue: list[int] = []  # data ready, waiting for a stream
        self.active_rem: dict[int, float] = {}
        self.active_rate: dict[int, float] = {}
        self.active_base: dict[int, float] = {}   # solo rate (flops/s)
        self.active_occ: dict[int, float] = {}
        self.last_time = 0.0
        self.version = 0
        self.link_free = 0.0
        self.resident: "OrderedDict[int, int]" = OrderedDict()  # cblk -> bytes
        self.resident_bytes = 0
        self.peak_bytes = 0
        self.pinned: dict[int, int] = {}  # cblk -> pin count
        self.arrival: dict[int, float] = {}  # cblk -> transfer completion

    @property
    def free_streams(self) -> int:
        return self.streams - len(self.active_rem)

    def free_slots(self) -> int:
        """How many more tasks the GPU will accept right now."""
        committed = len(self.active_rem) + self.staging + len(self.ready_queue)
        return self.streams + self.PREFETCH_DEPTH - committed


class _Simulator:
    """One simulation run (see :func:`simulate`)."""

    HOST = -1

    def __init__(
        self,
        dag: TaskDAG,
        machine: MachineSpec,
        policy,
        *,
        dtype=np.float64,
        cpu_model: CpuPerfModel | None = None,
        gpu_model: GpuKernelModel | None = None,
        collect_trace: bool = True,
        faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
        health: HealthPolicy | None = None,
    ) -> None:
        self.dag = dag
        self.machine = machine
        self.policy = policy
        self.dtype = np.dtype(dtype)
        self.cpu_model = cpu_model or CpuPerfModel()
        self.gpu_model = gpu_model or GpuKernelModel("sparse")
        self.trace = ExecutionTrace() if collect_trace else None
        if self.trace is not None:
            self.trace.meta["producer"] = "machine.simulator"
            self.trace.meta["clock"] = "virtual"
            self.trace.meta["policy"] = policy.traits.name

        # Resilience.  Every fault hook below is gated on
        # ``self.faults is not None`` so a run without a fault model goes
        # through byte-identical code paths (no overhead, same trace).
        self.faults = faults
        self.recovery = recovery or RecoveryPolicy()
        self.attempts: dict[int, int] = {}
        self.dead_gpus: set[int] = set()
        self.dead_workers: set[int] = set()
        self.n_faults = 0
        self.n_reexecuted = 0
        self.bytes_retransferred = 0.0

        traits = policy.traits
        self.n_cpu_workers = machine.n_cores
        if traits.dedicated_gpu_workers:
            self.n_cpu_workers = max(1, machine.n_cores - machine.n_gpus)

        self.time = 0.0
        self._heap: list = []
        self._seq = monotonic_counter()

        n = dag.n_tasks
        self.deps_left = dag.n_deps.copy()
        self.done = np.zeros(n, dtype=bool)
        self.n_done = 0

        # Mutexes: holder per group, parked tasks per group.
        self._mutex_holder: dict[int, int] = {}
        self._mutex_wait: dict[int, list[int]] = {}

        # CPU workers.
        self.idle_workers: set[int] = set(range(self.n_cpu_workers))
        self.worker_last_target = np.full(self.n_cpu_workers, -1, dtype=np.int64)
        self._last_writer_core: dict[int, int] = {}

        # GPUs.
        self.gpus = [
            _GpuState(g, machine.streams_per_gpu)
            for g in range(machine.n_gpus)
        ]

        # Coherence: newest location and valid-copy sets per cblk.
        self._newest: dict[int, int] = {}
        self._valid: dict[int, set[int]] = {}

        self.bytes_h2d = 0.0
        self.bytes_d2h = 0.0

        # Health monitoring / graceful degradation.  Like the fault
        # hooks, everything below is gated on ``self.health is not None``
        # so a monitoring-off run keeps byte-identical code paths and
        # trace fingerprints (the R705/D8xx identity).
        self.health: HealthMonitor | None = None
        if health is not None:
            self.health = HealthMonitor(
                (f"cpu{w}" for w in range(self.n_cpu_workers)),
                policy=health,
            )
            #: Live CPU attempts: ``(task, worker) -> start time``.  With
            #: hedging a task may have two; the first to finish commits.
            self._live_attempt: dict[tuple[int, int], float] = {}
            #: Hedged tasks: ``task -> primary resource`` (one hedge max).
            self._hedged: dict[int, str] = {}
            #: Overstayed tasks waiting for a healthy worker to duplicate
            #: them (served ahead of fresh policy work).
            self._hedge_wanted: list[int] = []
            if self.trace is not None:
                self.trace.meta["health"] = {"hedge": health.hedge}
        self.n_hedges = 0

        # Persistent slowdown windows (consumed whole at init; they are
        # declarative state, not per-attempt draws).
        self._limp: dict[int, list] = {}
        self._linkdeg: dict[int, list] = {}

        self._precompute()
        policy.bind(self)

        if faults is not None:
            # Device losses are purely time-driven: pre-schedule them.
            for spec in faults.pop_timed("gpu-loss"):
                gidx = spec.resource if spec.resource >= 0 else 0
                if gidx < len(self.gpus):
                    self._schedule(spec.time, self._device_loss, gidx)
            # Persistent conditions: pre-schedule the onset events so
            # the limp/degradation is trace-visible as a fault the R6xx
            # auditor can pair.
            self._limp = faults.pop_windows("limplock")
            self._linkdeg = faults.pop_windows("degraded-link")
            for w, spans in sorted(self._limp.items()):
                for (t0, _t1, _f) in spans:
                    self._schedule(t0, self._limp_onset, "limplock",
                                   f"cpu{w}", t0)
            for l, spans in sorted(self._linkdeg.items()):
                for (t0, _t1, _f) in spans:
                    self._schedule(t0, self._limp_onset, "degraded-link",
                                   f"link{l}", t0)

    # ------------------------------------------------------------------
    # static models
    # ------------------------------------------------------------------
    def _precompute(self) -> None:
        from repro.kernels.cost import panel_bytes

        dag, sym = self.dag, self.dag.symbol
        K = sym.n_cblk
        widths = np.diff(sym.cblk_ptr).astype(np.int64)
        heights = np.array([sym.cblk_height(k) for k in range(K)], dtype=np.int64)
        self.panel_bytes = panel_bytes(sym, self.dtype, dag.factotype)
        self.cblk_height = heights

        peak = self.machine.cpu.peak_gflops * 1e9
        traits = self.policy.traits
        n = dag.n_tasks
        cpu_dur = np.empty(n, dtype=np.float64)
        gpu_dur = np.full(n, np.inf, dtype=np.float64)
        gpu_occ = np.zeros(n, dtype=np.float64)
        is_update = dag.kind == TaskKind.UPDATE
        below = heights - widths

        if getattr(dag, "phase", "facto") == "solve":
            # Solve-phase kernels are bandwidth-bound; nothing offloads.
            for t in range(n):
                size = float(dag.gemm_k[t]) if is_update[t] else float(
                    widths[int(dag.cblk[t])]
                )
                eff = self.cpu_model.solve_eff(size)
                cpu_dur[t] = dag.flops[t] / (peak * eff)
            self.cpu_duration = cpu_dur
            self.gpu_duration = gpu_dur
            self.gpu_occupancy = gpu_occ
            self.gpu_eligible = np.zeros(n, dtype=bool)
            return

        for t in range(n):
            k = int(dag.cblk[t])
            if is_update[t]:
                m, nn, kk = int(dag.gemm_m[t]), int(dag.gemm_n[t]), int(dag.gemm_k[t])
                eff = self.cpu_model.update_eff(
                    m, nn, kk, factotype=dag.factotype,
                    recompute_ld=traits.recompute_ld,
                    index_cache=traits.index_cache,
                )
                cpu_dur[t] = dag.flops[t] / (peak * eff)
                tgt = int(dag.target[t])
                hr = float(heights[tgt]) / max(m, 1)
                rate = self.gpu_model.rate(m, nn, kk, height_ratio=hr)
                if dag.factotype == "ldlt":
                    # The LDLT extension of the GPU kernel (C -= L·D·Lᵀ)
                    # "decreases the performance by 5%" (paper §V-B).
                    rate *= 0.95
                if rate > 0:
                    gpu_dur[t] = dag.flops[t] / (rate * 1e9)
                gpu_occ[t] = self.gpu_model.occupancy(m, nn, kk)
            elif dag.kind[t] == TaskKind.PANEL:
                eff = self.cpu_model.panel_eff(float(widths[k]), float(below[k]))
                cpu_dur[t] = dag.flops[t] / (peak * eff)
            elif dag.kind[t] == TaskKind.SUBTREE:
                # Fused leaf subtree: sum the component kernel durations.
                cpu_dur[t] = self._components_duration(
                    dag.fused_components[t], peak, traits
                )
            elif t in dag.fused_components:
                # PANEL1D with recorded components (1d / 1d-left builders).
                cpu_dur[t] = self._components_duration(
                    dag.fused_components[t], peak, traits
                )
            else:  # PANEL1D without components: blended efficiency
                w = float(widths[k])
                eff_p = self.cpu_model.panel_eff(w, float(below[k]))
                eff_u = self.cpu_model.update_eff(
                    float(below[k]), max(w, 1.0), w,
                    factotype=dag.factotype, recompute_ld=traits.recompute_ld,
                    index_cache=traits.index_cache,
                )
                # Panel flops share vs update share within the fused task.
                from repro.kernels.cost import complex_multiplier, flops_panel

                mult = complex_multiplier(self.dtype)
                fp = mult * flops_panel(int(w), int(below[k]), dag.factotype)
                fu = max(dag.flops[t] - fp, 0.0)
                cpu_dur[t] = fp / (peak * eff_p) + fu / (peak * max(eff_u, 1e-3))

        self.cpu_duration = cpu_dur
        self.gpu_duration = gpu_dur
        self.gpu_occupancy = gpu_occ
        self.gpu_eligible = is_update & (self.machine.n_gpus > 0) & np.isfinite(gpu_dur)

    def _components_duration(self, components, peak: float, traits) -> float:
        """CPU duration of a fused task from its kernel components."""
        from repro.kernels.cost import (
            complex_multiplier,
            flops_panel,
            flops_update,
        )

        mult = complex_multiplier(self.dtype)
        total = 0.0
        for comp in components:
            if comp[0] == "panel":
                _, w, bl = comp
                eff = self.cpu_model.panel_eff(float(w), float(bl))
                total += mult * flops_panel(w, bl, self.dag.factotype) / (
                    peak * eff
                )
            else:
                _, m, nn, w = comp
                eff = self.cpu_model.update_eff(
                    m, nn, w, factotype=self.dag.factotype,
                    recompute_ld=traits.recompute_ld,
                    index_cache=traits.index_cache,
                )
                total += mult * flops_update(
                    m, nn, w, self.dag.factotype,
                    recompute_ld=traits.recompute_ld,
                ) / (peak * eff)
        return total

    # ------------------------------------------------------------------
    # event machinery
    # ------------------------------------------------------------------
    def _schedule(self, when: float, fn: Callable, *args) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), fn, args))

    def run(self) -> SimulationResult:
        n_total = self.dag.n_tasks
        for t in self.dag.sources():
            self._task_ready(int(t))
        self._kick()
        while self._heap:
            when, _, fn, args = heapq.heappop(self._heap)
            if (
                self.faults is not None
                and self.n_done == n_total
                and fn in (self._device_loss, self._limp_onset)
            ):
                # A device loss (or limp onset) scheduled past the end
                # of the run must not drag the makespan out to its (now
                # moot) time.
                continue
            if (
                self.health is not None
                and self.n_done == n_total
                and fn == self._hedge_check
            ):
                continue
            self.time = when
            fn(*args)
        if self.n_done != n_total:
            if (
                self.faults is not None
                and len(self.dead_workers) >= self.n_cpu_workers
            ):
                raise UnrecoverableError(
                    f"all {self.n_cpu_workers} CPU worker(s) crashed with "
                    f"{n_total - self.n_done} task(s) outstanding; no "
                    "resource can run the CPU-only frontier"
                )
            raise RuntimeError(self._stall_message())
        if self.trace is not None:
            # D8xx provenance: the one RNG every stochastic decision of
            # this run came from, and how many draws it served (ties are
            # broken by self._seq, whose total is the trace's next_seq).
            self.trace.meta["rng"] = (
                {"seed": self.faults.seed, "draws": self.faults.n_draws}
                if self.faults is not None else None
            )
        busy = self.trace.busy_time() if self.trace else {}
        return SimulationResult(
            policy=self.policy.traits.name,
            machine=self.machine,
            makespan=self.time,
            flops=self.dag.total_flops(),
            trace=self.trace,
            n_cpu_workers=self.n_cpu_workers,
            bytes_h2d=self.bytes_h2d,
            bytes_d2h=self.bytes_d2h,
            busy=busy,
            peak_gpu_bytes=float(
                max((g.peak_bytes for g in self.gpus), default=0)
            ),
            n_faults=self.n_faults,
            n_reexecuted=self.n_reexecuted,
            bytes_retransferred=self.bytes_retransferred,
            n_health_transitions=(
                self.health.n_transitions if self.health is not None else 0
            ),
            n_hedges=self.n_hedges,
        )

    def _stall_message(self) -> str:
        """Diagnose a stalled run: which tasks *should* be runnable?

        The blocked frontier — pending tasks whose predecessors all
        completed — is where a scheduler bug hides: a task there with
        ``deps_left == 0`` was released but never dispatched (a policy
        lost it), while nonzero ``deps_left`` means the completion
        bookkeeping itself is wrong.
        """
        pending = np.flatnonzero(~self.done)
        frontier = [
            int(t) for t in pending
            if all(bool(self.done[int(p)])
                   for p in self.dag.predecessors(int(t)))
        ]
        shown = ", ".join(
            f"{t}(deps_left={int(self.deps_left[t])})" for t in frontier[:15]
        )
        msg = (
            f"simulation stalled: {self.n_done}/{self.dag.n_tasks} done; "
            f"{len(frontier)} task(s) in the blocked frontier "
            f"(all predecessors completed): [{shown}"
            + (" ...]" if len(frontier) > 15 else "]")
        )
        if self._mutex_holder:
            held = {int(g): int(t)
                    for g, t in sorted(self._mutex_holder.items())[:10]}
            msg += f"; mutexes held (group -> task): {held}"
        if self.dead_gpus or self.dead_workers:
            msg += (f"; dead GPUs {sorted(self.dead_gpus)}, "
                    f"dead workers {sorted(self.dead_workers)}")
        return msg

    # ------------------------------------------------------------------
    # readiness / dispatch
    # ------------------------------------------------------------------
    def _task_ready(self, t: int) -> None:
        self.policy.on_ready(t)

    def _kick(self) -> None:
        self._kick_cpus()
        self._kick_gpus()

    def _cpu_poll_order(self) -> list[int]:
        """Idle workers in dispatch order.  With monitoring on, degraded
        workers are polled last (healthy ones drain the queue first) and
        quarantined workers are not polled at all (the R703 contract)."""
        if self.health is None:
            return sorted(self.idle_workers)
        self._record_health(self.health.tick(self.time))
        ranked = sorted(
            self.idle_workers,
            key=lambda w: (self.health.rank(f"cpu{w}"), w),
        )
        return [w for w in ranked if self.health.rank(f"cpu{w}") < 2]

    def _kick_cpus(self) -> None:
        progressed = True
        while progressed and self.idle_workers:
            progressed = False
            for w in self._cpu_poll_order():
                if self.health is not None and self._launch_hedge_for(w):
                    progressed = True
                    continue
                t = self.policy.next_cpu_task(w)
                while t is not None and not self._try_lock(t):
                    t = self.policy.next_cpu_task(w)
                if t is None:
                    continue
                self.idle_workers.discard(w)
                self._start_cpu(t, w)
                progressed = True

    def _kick_gpus(self) -> None:
        for g in self.gpus:
            if self.faults is not None and g.index in self.dead_gpus:
                continue
            while g.free_slots() > 0:
                t = self.policy.next_gpu_task(g.index)
                while t is not None and not self._try_lock(t):
                    t = self.policy.next_gpu_task(g.index)
                if t is None:
                    break
                g.staging += 1
                self._start_gpu(t, g)

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def _fail_task(
        self,
        t: int,
        kind: str,
        resource: str,
        start: float,
        end: float,
        *,
        recovery: str = "requeue",
    ) -> None:
        """Record a failed task attempt and schedule its re-execution.

        The failed attempt appears ONLY as a :class:`FaultEvent` — never
        as a TraceEvent — so the S201 "every task exactly once" invariant
        keeps holding on recovered traces.  Raises
        :class:`UnrecoverableError` once the retry budget is exhausted.
        """
        attempt = self.attempts.get(t, 0) + 1
        self.attempts[t] = attempt
        self.n_faults += 1
        cblk = int(self.dag.cblk[t])
        if self.trace is not None:
            self.trace.record_fault(kind, t, cblk, resource, start, end,
                                    attempt)
        if attempt > self.recovery.max_retries:
            raise UnrecoverableError(
                f"task {t} failed {attempt} attempt(s) (last: {kind} on "
                f"{resource} at t={end:.6g}); retry budget "
                f"max_retries={self.recovery.max_retries} exhausted"
            )
        # The failed attempt still holds its mutex (locked at dispatch):
        # release it before requeueing or the retry deadlocks on itself.
        self._unlock(t)
        delay = self._backoff(attempt - 1)
        if self.trace is not None:
            self.trace.record_recovery(recovery, t, cblk, resource, end,
                                       attempt, delay)
        self.n_reexecuted += 1
        self._schedule(end + delay, self._requeue_task, t)

    def _backoff(self, attempt: int) -> float:
        """Recovery backoff; jitter (when configured) draws from the
        run's single fault RNG so D803 draw accounting balances."""
        if self.recovery.jitter > 0.0 and self.faults is not None:
            return self.recovery.backoff(attempt,
                                         self.faults.backoff_jitter())
        return self.recovery.backoff(attempt)

    def _requeue_task(self, t: int) -> None:
        self.policy.on_ready(t)
        self._kick()

    def _limp_onset(self, kind: str, resource: str, t0: float) -> None:
        """A persistent condition (limplock / degraded-link) begins.

        The slowdown itself is applied where durations are computed;
        this event only makes the onset trace-visible as a paired
        fault/recovery (kind ``"degrade"``: the runtime tolerates the
        condition in place and degrades around it).
        """
        self.n_faults += 1
        if self.trace is not None:
            self.trace.record_fault(kind, -1, -1, resource, t0, t0)
            self.trace.record_recovery("degrade", -1, -1, resource, t0)

    def _record_health(self, transitions) -> None:
        if self.trace is not None:
            for (res, src, dst, when, ratio, reason) in transitions:
                self.trace.record_health(res, src, dst, when, ratio, reason)

    def _cpu_fault(self, t: int, w: int, kind: str, start: float) -> None:
        """A CPU task attempt dies mid-execution (scheduled by
        :meth:`_start_cpu` when the fault model says the attempt fails)."""
        if self.health is not None:
            if self._live_attempt.pop((t, w), None) is None:
                return  # attempt already cancelled at a hedge commit
        if kind == "worker-crash":
            self.dead_workers.add(w)  # the worker never rejoins the pool
        else:
            self.idle_workers.add(w)
        if self.health is not None:
            others = [ww for (tt, ww) in self._live_attempt if tt == t]
            if t in self._hedged and self.trace is not None:
                # A hedged attempt died without committing: that *is*
                # the cancelled loser (R704 accounting).
                self.trace.record_hedge("cancel", t, f"cpu{w}", self.time,
                                        self._hedged[t])
            if others:
                # A duplicate is still running: absorb the fault in
                # place instead of re-queueing (the survivor commits;
                # a requeue would race it for the task's mutex).
                self.n_faults += 1
                cblk = int(self.dag.cblk[t])
                att = self.attempts.get(t, 0) + 1
                self.attempts[t] = att
                if self.trace is not None:
                    self.trace.record_fault(kind, t, cblk, f"cpu{w}",
                                            start, self.time, att)
                    self.trace.record_recovery("absorb", t, cblk, f"cpu{w}",
                                               self.time, att)
                self._kick()
                return
        self._fail_task(t, kind, f"cpu{w}", start, self.time)
        self._kick()

    def _unpin(self, t: int, g: _GpuState) -> None:
        for cblk in (int(self.dag.cblk[t]), int(self.dag.target[t])):
            if g.pinned.get(cblk, 0) > 0:
                g.pinned[cblk] -= 1
                if g.pinned[cblk] == 0:
                    del g.pinned[cblk]

    def _device_loss(self, gidx: int) -> None:
        """GPU ``gidx`` disappears: blacklist it, fail its in-flight
        tasks, invalidate its residency, and re-route everything."""
        if gidx in self.dead_gpus:
            return
        g = self.gpus[gidx]
        self.dead_gpus.add(gidx)
        self.n_faults += 1
        # Outbound (d2h) transfers already committed to the link drain
        # normally — the DMA queue survives long enough to flush, which
        # is what makes the optimistic host-validity marks honest.
        # Inbound (h2d) transfers still in the pipe deliver bytes nobody
        # may ever read: cancel their data events and refund the bytes.
        drain = max(self.time, g.link_free)
        if self.trace is not None:
            cancelled = [
                d for d in self.trace.data_events
                if d.gpu == gidx and d.kind == "h2d" and d.end > self.time
            ]
            for d in cancelled:
                self.bytes_h2d -= d.nbytes
            if cancelled:
                dropped = set(map(id, cancelled))
                self.trace.data_events = [
                    d for d in self.trace.data_events
                    if id(d) not in dropped
                ]
            # The fault window spans the loss instant through the link
            # drain; the R6xx auditor treats traffic inside the window
            # as the drain, traffic after it as use of a dead device.
            self.trace.record_fault("gpu-loss", -1, -1, f"gpu{gidx}",
                                    self.time, drain)
        if not self.recovery.gpu_blacklist:
            raise UnrecoverableError(
                f"GPU {gidx} lost at t={self.time:.6g} and gpu_blacklist "
                f"recovery is disabled"
            )
        if self.trace is not None:
            self.trace.record_recovery("reroute-cpu", -1, -1, f"gpu{gidx}",
                                       drain)
        # Account partial progress before killing the active kernels.
        self._gpu_progress(g)
        active = list(g.active_rem)
        queued = list(g.ready_queue)
        # Tasks whose transfers are in flight have a pending
        # _gpu_data_ready event in the heap; the dead-GPU guard there
        # makes the event a no-op, and we fail the task here.
        staged = [a[0] for (_, _, fn, a) in self._heap
                  if fn == self._gpu_data_ready and a[1] is g]
        for d in (g.active_rem, g.active_rate, g.active_base, g.active_occ):
            d.clear()
        g.ready_queue.clear()
        g.staging = 0
        g.version += 1  # stales out every pending _finish_gpu event
        g.pinned.clear()
        g.arrival.clear()
        # Invalidate residency.  Checkpoint writeback guarantees the
        # host holds every committed panel, so newest pointers flip home
        # and later readers re-fetch from there.
        for cblk, nb in list(g.resident.items()):
            if self.trace is not None:
                self.trace.record_data("evict", cblk, gidx, nb,
                                       self.time, self.time, "device-loss")
            self._valid.get(cblk, set()).discard(gidx)
            if self._newest_loc(cblk) == gidx:
                if not self._loc_valid(cblk, self.HOST):
                    raise UnrecoverableError(
                        f"GPU {gidx} lost at t={self.time:.6g} holding the "
                        f"only copy of panel {cblk} (enable "
                        f"checkpoint_writeback to survive device loss)"
                    )
                self._newest[cblk] = self.HOST
                self._valid[cblk] = {self.HOST}
        g.resident.clear()
        g.resident_bytes = 0
        for t in active:
            start = self._gpu_start_time.pop(t, self.time)
            self._fail_task(t, "gpu-loss", f"gpu{gidx}", start, self.time)
        for t in queued + staged:
            self._fail_task(t, "gpu-loss", f"gpu{gidx}", self.time, self.time)
        # Tasks still parked inside the policy's per-GPU structures never
        # started (no mutex held, no fault to record): the policy drains
        # them and we re-route each as a plain ready task.
        for t in self.policy.on_device_loss(gidx):
            self.policy.on_ready(t)
        if all(gg.index in self.dead_gpus for gg in self.gpus):
            # CPU-only degradation: nothing may target a GPU any more.
            self.gpu_eligible[:] = False
        if self.policy.traits.dedicated_gpu_workers:
            # The core that drove this GPU returns to the CPU pool.
            w = self.n_cpu_workers
            self.n_cpu_workers += 1
            self.worker_last_target = np.append(self.worker_last_target, -1)
            self.idle_workers.add(w)
        self._kick()

    # ------------------------------------------------------------------
    # mutexes
    # ------------------------------------------------------------------
    def _try_lock(self, t: int) -> bool:
        grp = int(self.dag.mutex[t])
        if grp < 0:
            return True
        if grp in self._mutex_holder:
            self._mutex_wait.setdefault(grp, []).append(t)
            return False
        self._mutex_holder[grp] = t
        return True

    def _unlock(self, t: int) -> None:
        grp = int(self.dag.mutex[t])
        if grp < 0:
            return
        assert self._mutex_holder.get(grp) == t
        del self._mutex_holder[grp]
        waiters = self._mutex_wait.pop(grp, [])
        for w in waiters:
            self.policy.on_ready(w)

    # ------------------------------------------------------------------
    # coherence / transfers
    # ------------------------------------------------------------------
    def _loc_valid(self, cblk: int, loc: int) -> bool:
        if cblk not in self._valid:
            return loc == self.HOST  # untouched panels live in host memory
        return loc in self._valid[cblk]

    def _newest_loc(self, cblk: int) -> int:
        return self._newest.get(cblk, self.HOST)

    def _mark_write(self, cblk: int, loc: int) -> None:
        self._newest[cblk] = loc
        self._valid[cblk] = {loc}
        if loc == self.HOST:
            for g in self.gpus:
                nb = g.resident.pop(cblk, None)
                if nb is not None:
                    g.resident_bytes -= nb

    def _mark_copy(self, cblk: int, loc: int) -> None:
        self._valid.setdefault(cblk, {self.HOST}).add(loc)

    def _link_transfer(
        self, g: _GpuState, cblk: int, nbytes: float, kind: str, reason: str
    ) -> float:
        """Occupy GPU ``g``'s PCIe link; returns completion time."""
        spec = self.machine.gpu
        start = max(self.time, g.link_free)
        dur = spec.transfer_latency_s + nbytes / (spec.h2d_gbps * 1e9)
        if self.faults is not None:
            # Degraded link: bandwidth divides by the window's factor.
            deg = window_factor(self._linkdeg.get(g.index), start)
            if deg > 1.0:
                dur = spec.transfer_latency_s + deg * nbytes / (
                    spec.h2d_gbps * 1e9
                )
        if self.faults is not None:
            attempt = 1
            while self.faults.transfer_fails(g.index, cblk, start):
                # Each failed attempt occupies the link for at most the
                # per-attempt timeout, then backs off exponentially.  No
                # DataEvent is emitted for failed attempts (the bytes
                # never landed), so the M4xx replay stays consistent.
                cost = min(dur, self.recovery.transfer_timeout_s)
                self.n_faults += 1
                self.bytes_retransferred += nbytes
                if self.trace is not None:
                    self.trace.record_fault(
                        "transfer-fail", -1, cblk, f"link{g.index}",
                        start, start + cost, attempt, nbytes,
                    )
                if attempt > self.recovery.max_retries:
                    raise UnrecoverableError(
                        f"transfer of panel {cblk} on link {g.index} failed "
                        f"{attempt} attempt(s); retry budget "
                        f"max_retries={self.recovery.max_retries} exhausted"
                    )
                delay = self._backoff(attempt - 1)
                if self.trace is not None:
                    self.trace.record_recovery(
                        "retry-transfer", -1, cblk, f"link{g.index}",
                        start + cost, attempt, delay,
                    )
                start = start + cost + delay
                attempt += 1
        g.link_free = start + dur
        if kind == "h2d":
            self.bytes_h2d += nbytes
        else:
            self.bytes_d2h += nbytes
        if self.trace is not None:
            self.trace.record_data(
                kind, cblk, g.index, nbytes, start, start + dur, reason
            )
        return g.link_free

    def _fetch_to_host(self, cblk: int) -> float:
        """Ensure the newest copy of ``cblk`` is in host memory."""
        loc = self._newest_loc(cblk)
        if loc == self.HOST or self._loc_valid(cblk, self.HOST):
            return self.time
        g = self.gpus[loc]
        done = self._link_transfer(
            g, cblk, self.panel_bytes[cblk], "d2h", "writeback"
        )
        self._mark_copy(cblk, self.HOST)
        return done

    def _fetch_to_gpu(self, cblk: int, g: _GpuState, reason: str = "demand") -> float:
        """Ensure the newest copy of ``cblk`` is on GPU ``g``."""
        if self._loc_valid(cblk, g.index):
            g.resident.move_to_end(cblk, last=True)
            # The copy may still be in flight (a fetch another task
            # initiated): data is usable only once the link delivers it.
            return max(self.time, g.arrival.get(cblk, self.time))
        ready = self.time
        loc = self._newest_loc(cblk)
        if loc != self.HOST and not self._loc_valid(cblk, self.HOST):
            ready = self._fetch_to_host(cblk)
        # NOTE: a strictly ordered model would delay the h2d until the
        # d2h completed; the link-FIFO ordering already enforces that
        # when both use the same link, and cross-GPU routes are rare
        # enough that the optimistic overlap is acceptable.
        done = self._link_transfer(
            g, cblk, self.panel_bytes[cblk], "h2d", reason
        )
        self._register_resident(cblk, g)
        self._mark_copy(cblk, g.index)
        g.arrival[cblk] = max(ready, done)
        return max(ready, done)

    def _register_resident(self, cblk: int, g: _GpuState) -> None:
        nbytes = int(self.panel_bytes[cblk])
        if cblk in g.resident:
            g.resident.move_to_end(cblk, last=True)
            return
        limit = self.machine.gpu.memory_bytes
        while g.resident_bytes + nbytes > limit and g.resident:
            # Evict the least recently used unpinned, non-newest panel.
            victim = None
            for c in g.resident:
                if g.pinned.get(c, 0) == 0 and self._newest_loc(c) != g.index:
                    victim = c
                    break
            if victim is None:
                break  # everything pinned/dirty: over-subscribe gracefully
            vbytes = g.resident.pop(victim)
            g.resident_bytes -= vbytes
            self._valid.get(victim, set()).discard(g.index)
            if self.trace is not None:
                self.trace.record_data(
                    "evict", victim, g.index, vbytes,
                    self.time, self.time, "capacity",
                )
        g.resident[cblk] = nbytes
        g.resident_bytes += nbytes
        if g.resident_bytes > g.peak_bytes:
            g.peak_bytes = g.resident_bytes

    def transfer_estimate(self, gpu: int, task: int) -> float:
        """Seconds of PCIe traffic task ``task`` would need on GPU ``gpu``
        right now (used by cost-model policies)."""
        if self.faults is not None and gpu in self.dead_gpus:
            return float("inf")
        g = self.gpus[gpu]
        spec = self.machine.gpu
        total = 0.0
        for cblk in (int(self.dag.cblk[task]), int(self.dag.target[task])):
            if not self._loc_valid(cblk, g.index):
                total += spec.transfer_latency_s + self.panel_bytes[cblk] / (
                    spec.h2d_gbps * 1e9
                )
        return total

    def prefetch(self, gpu: int, cblk: int) -> None:
        """Start an input transfer early (StarPU's prefetch)."""
        if self.faults is not None and gpu in self.dead_gpus:
            return
        g = self.gpus[gpu]
        if not self._loc_valid(cblk, g.index):
            self._fetch_to_gpu(cblk, g, reason="prefetch")

    def last_writer_core(self, cblk: int) -> int:
        return self._last_writer_core.get(cblk, -1)

    # ------------------------------------------------------------------
    # CPU execution
    # ------------------------------------------------------------------
    def _start_cpu(self, t: int, w: int) -> None:
        dag = self.dag
        data_ready = self.time
        # Reads and writes must see the newest copy in host memory.
        needed = {int(dag.cblk[t]), int(dag.target[t])}
        for cblk in sorted(needed):
            data_ready = max(data_ready, self._fetch_to_host(cblk))

        dur = self.cpu_duration[t] + self.policy.traits.task_overhead_s
        tgt = int(dag.target[t])
        if (
            self.policy.traits.cache_reuse
            and dag.kind[t] == TaskKind.UPDATE
            and self.worker_last_target[w] == tgt
        ):
            dur /= self.machine.cpu.cache_reuse_bonus
        start = data_ready
        if self.faults is not None:
            factor = self.faults.straggler(t, start)
            if factor > 1.0:
                # Straggler: the attempt still succeeds, just slower.
                # The runtime absorbs it in place (no re-execution).
                self.n_faults += 1
                if self.trace is not None:
                    cblk = int(dag.cblk[t])
                    att = self.attempts.get(t, 0) + 1
                    self.trace.record_fault(
                        "straggler", t, cblk, f"cpu{w}",
                        start, start + dur * factor, att,
                    )
                    self.trace.record_recovery(
                        "absorb", t, cblk, f"cpu{w}", start, att,
                    )
                dur *= factor
            # Persistent limplock: every attempt inside the window slows.
            dur *= window_factor(self._limp.get(w), start)
            if self.health is not None:
                self._live_attempt[(t, w)] = start
            kind = self.faults.task_fault(t, w, start)
            if kind is not None:
                # The attempt dies halfway through: the wasted time is
                # the fault window, and no TraceEvent is recorded (the
                # task did not complete here — it will re-execute).
                self._schedule(start + 0.5 * dur, self._cpu_fault,
                               t, w, kind, start)
                return
        end = start + dur
        if self.health is None:
            if self.trace is not None:
                self.trace.record(t, f"cpu{w}", start, end)
            self._schedule(end, self._finish_cpu, t, w)
            return
        # Monitoring on: the TraceEvent is recorded at *commit* (a hedge
        # duplicate may beat this attempt to it), and an overstay check
        # is armed so a suspect worker's in-flight task can be hedged.
        self._live_attempt.setdefault((t, w), start)
        p = self.health.policy
        if p.hedge:
            expected = (self.cpu_duration[t]
                        + self.policy.traits.task_overhead_s)
            after = max(p.hedge_ratio * expected, p.hedge_min_s)
            self._schedule(start + after, self._hedge_check, t)
        self._schedule(end, self._finish_cpu, t, w)

    def _hedge_check(self, t: int) -> None:
        """The in-flight attempt of ``t`` overstayed its hedge threshold:
        launch a duplicate on an idle healthy worker if the primary sits
        on a suspect-or-worse one (first commit wins, loser cancelled).
        While the attempt is still live but its worker has not been
        flagged yet, the check re-arms itself (it dies with the commit);
        when no healthy worker is idle, the task parks on the
        hedge-wanted queue, which idle healthy workers serve ahead of
        fresh policy work."""
        live = sorted(ww for (tt, ww) in self._live_attempt if tt == t)
        if not live or t in self._hedged or self.done[t]:
            return
        w = live[0]
        if self.health.rank(f"cpu{w}") == 0 and \
                self.health.state(f"cpu{w}") != "suspect":
            # The primary's worker looks fine (so far): check back later.
            p = self.health.policy
            expected = (self.cpu_duration[t]
                        + self.policy.traits.task_overhead_s)
            retry = max(p.hedge_ratio * expected, p.hedge_min_s)
            self._schedule(self.time + retry, self._hedge_check, t)
            return
        spare = [h for h in sorted(self.idle_workers)
                 if self.health.rank(f"cpu{h}") == 0]
        if spare:
            self.idle_workers.discard(spare[0])
            self._launch_duplicate(t, spare[0], w)
        elif t not in self._hedge_wanted:
            self._hedge_wanted.append(t)
            self._kick_cpus()

    def _launch_hedge_for(self, w: int) -> bool:
        """Idle healthy worker ``w`` serves the hedge-wanted queue;
        returns True when it picked up a duplicate."""
        if not self._hedge_wanted or self.health.rank(f"cpu{w}") != 0:
            return False
        while self._hedge_wanted:
            t = self._hedge_wanted.pop(0)
            live = sorted(ww for (tt, ww) in self._live_attempt if tt == t)
            if not live or t in self._hedged or self.done[t]:
                continue
            self.idle_workers.discard(w)
            self._launch_duplicate(t, w, live[0])
            return True
        return False

    def _launch_duplicate(self, t: int, h: int, primary: int) -> None:
        """Start the speculative duplicate of ``t`` on worker ``h``."""
        self._hedged[t] = f"cpu{primary}"
        self.n_hedges += 1
        if self.trace is not None:
            self.trace.record_hedge("launch", t, f"cpu{h}", self.time,
                                    f"cpu{primary}")
        dur = self.cpu_duration[t] + self.policy.traits.task_overhead_s
        if self.faults is not None:
            dur *= window_factor(self._limp.get(h), self.time)
        self._live_attempt[(t, h)] = self.time
        self._schedule(self.time + dur, self._finish_cpu, t, h)

    def _finish_cpu(self, t: int, w: int) -> None:
        if self.health is not None:
            start = self._live_attempt.pop((t, w), None)
            if start is None:
                return  # this attempt was cancelled at the winner's commit
            hedged = t in self._hedged
            if hedged and self.trace is not None:
                self.trace.record_hedge("win", t, f"cpu{w}", self.time,
                                        self._hedged[t])
            # Idempotent commit gate: cancel every other live attempt of
            # this task *now* — its worker frees immediately and its side
            # effects are never applied (no TraceEvent, no completion).
            expected = (self.cpu_duration[t]
                        + self.policy.traits.task_overhead_s)
            losers = sorted(ww for (tt, ww) in self._live_attempt if tt == t)
            for ww in losers:
                lstart = self._live_attempt.pop((t, ww))
                if self.trace is not None:
                    self.trace.record_hedge("cancel", t, f"cpu{ww}",
                                            self.time, self._hedged.get(t, ""))
                if ww not in self.dead_workers:
                    self.idle_workers.add(ww)
                # Censored observation: the loser ran this long without
                # finishing, so its true duration is at least that.
                # Without it a worker that always loses its hedges never
                # completes anything, its EWMA freezes, and it keeps
                # black-holing fresh dispatches as "suspect" forever.
                self._record_health(self.health.observe(
                    f"cpu{ww}", self._health_key(t), self.time - lstart,
                    self.time, expected=expected,
                ))
            if self.trace is not None:
                self.trace.record(t, f"cpu{w}", start, self.time)
            self._record_health(self.health.observe(
                f"cpu{w}", self._health_key(t), self.time - start,
                self.time, expected=expected,
            ))
        tgt = int(self.dag.target[t])
        self.worker_last_target[w] = tgt
        self._last_writer_core[tgt] = w
        self._mark_write(tgt, self.HOST)
        if self.dag.kind[t] != TaskKind.UPDATE:
            self._mark_write(int(self.dag.cblk[t]), self.HOST)
        self.idle_workers.add(w)
        self._complete(t, f"cpu{w}")

    def _health_key(self, t: int) -> str:
        """(kernel, size-bucket) expectation key for task ``t``."""
        return bucket_key(int(self.dag.kind[t]), float(self.dag.flops[t]))

    # ------------------------------------------------------------------
    # GPU execution
    # ------------------------------------------------------------------
    def _start_gpu(self, t: int, g: _GpuState) -> None:
        dag = self.dag
        src, tgt = int(dag.cblk[t]), int(dag.target[t])
        for cblk in (src, tgt):
            g.pinned[cblk] = g.pinned.get(cblk, 0) + 1
        data_ready = max(
            self._fetch_to_gpu(src, g), self._fetch_to_gpu(tgt, g)
        )
        self._schedule(max(data_ready, self.time), self._gpu_data_ready, t, g)

    def _gpu_data_ready(self, t: int, g: _GpuState) -> None:
        if self.faults is not None and g.index in self.dead_gpus:
            return  # the device loss already failed and re-routed `t`
        g.staging -= 1
        if g.free_streams > 0:
            self._begin_gpu_compute(t, g)
        else:
            g.ready_queue.append(t)

    def _begin_gpu_compute(self, t: int, g: _GpuState) -> None:
        if self.faults is not None:
            kind = self.faults.task_fault(t, -1, self.time)
            if kind is not None:
                # Kernel-launch failure: instant (the launch bounced),
                # the inputs stay resident, the task re-queues.
                self._unpin(t, g)
                self._fail_task(t, "task-fault", f"gpu{g.index}",
                                self.time, self.time)
                return
        self._gpu_progress(g)
        g.active_rem[t] = float(self.dag.flops[t])
        g.active_base[t] = 1e9 * self.dag.flops[t] / max(
            self.gpu_duration[t] * 1e9, 1e-12
        )
        g.active_occ[t] = float(self.gpu_occupancy[t])
        g.active_rate[t] = 0.0
        if not hasattr(self, "_gpu_start_time"):
            self._gpu_start_time = {}
        self._gpu_start_time[t] = self.time
        self._gpu_recompute(g)

    def _gpu_progress(self, g: _GpuState) -> None:
        elapsed = self.time - g.last_time
        if elapsed > 0:
            for t, rate in g.active_rate.items():
                g.active_rem[t] = max(0.0, g.active_rem[t] - rate * elapsed)
        g.last_time = self.time

    def _gpu_recompute(self, g: _GpuState) -> None:
        """Re-plan kernel rates under the CUDA block scheduler model.

        Kernels receive device capacity FIFO (by start time): an earlier
        kernel gets up to its occupancy, later kernels fill what is left.
        Big kernels therefore serialize (as on real hardware) while small
        kernels genuinely overlap — the multi-stream effect of Fig. 3.
        A small floor keeps starved kernels creeping forward so the event
        loop cannot deadlock.
        """
        g.version += 1
        if not g.active_rem:
            return
        from repro.machine.perfmodel import STREAM_OVERLAP_DECAY

        order = sorted(g.active_rem, key=lambda t: self._gpu_start_time[t])
        capacity = 1.0
        soonest, soonest_t = np.inf, None
        for i, t in enumerate(order):
            occ = g.active_occ[t]
            share = min(occ * STREAM_OVERLAP_DECAY**i, max(capacity, 0.0))
            capacity -= share
            frac = max(share / occ, 0.02)
            rate = g.active_base[t] * frac
            g.active_rate[t] = rate
            eta = g.active_rem[t] / rate if rate > 0 else np.inf
            if eta < soonest:
                soonest, soonest_t = eta, t
        if soonest_t is not None:
            self._schedule(
                self.time + soonest, self._finish_gpu, soonest_t, g, g.version
            )

    def _finish_gpu(self, t: int, g: _GpuState, version: int) -> None:
        if version != g.version or t not in g.active_rem:
            return  # stale event
        self._gpu_progress(g)
        if g.active_rem[t] > 1e-6 * self.dag.flops[t]:
            # Sharing changed since scheduling: re-plan.
            self._gpu_recompute(g)
            return
        for d in (g.active_rem, g.active_rate, g.active_base, g.active_occ):
            d.pop(t, None)
        src, tgt = int(self.dag.cblk[t]), int(self.dag.target[t])
        for cblk in (src, tgt):
            g.pinned[cblk] -= 1
            if g.pinned[cblk] == 0:
                del g.pinned[cblk]
        self._mark_write(tgt, g.index)
        g.resident.move_to_end(tgt, last=True)
        if self.faults is not None and self.recovery.checkpoint_writeback:
            # Panel-granularity checkpoint: committed results reach the
            # host immediately, so a later device loss loses nothing.
            self._fetch_to_host(tgt)
        start = self._gpu_start_time.pop(t)
        if self.trace is not None:
            self.trace.record(t, f"gpu{g.index}", start, self.time)
        # A freed stream immediately picks up a staged (data-ready) task.
        while g.ready_queue and g.free_streams > 0:
            self._begin_gpu_compute(g.ready_queue.pop(0), g)
        self._gpu_recompute(g)
        self._complete(t, f"gpu{g.index}")

    # ------------------------------------------------------------------
    def _complete(self, t: int, resource: str) -> None:
        assert not self.done[t]
        self.done[t] = True
        self.n_done += 1
        self._unlock(t)
        self.policy.on_complete(t, resource)
        for s in self.dag.successors(t):
            self.deps_left[s] -= 1
            if self.deps_left[s] == 0:
                self._task_ready(int(s))
        self._kick()


def simulate(
    dag: TaskDAG,
    machine: MachineSpec,
    policy,
    *,
    dtype=np.float64,
    cpu_model: CpuPerfModel | None = None,
    gpu_model: GpuKernelModel | None = None,
    collect_trace: bool = True,
    faults: FaultModel | None = None,
    recovery: RecoveryPolicy | None = None,
    health: HealthPolicy | None = None,
) -> SimulationResult:
    """Simulate the execution of ``dag`` on ``machine`` under ``policy``.

    ``dtype`` only influences data volumes (complex panels are twice the
    bytes) — the flops in the DAG already carry the complex multiplier.

    ``faults`` arms the resilience layer: the fault model is consulted at
    every execution hook and recoveries follow ``recovery`` (defaults to
    :class:`repro.resilience.RecoveryPolicy`).  With ``faults=None`` the
    run is bit-identical to a build without the resilience layer.

    ``health`` arms worker health monitoring and graceful degradation
    (see :class:`repro.resilience.HealthPolicy`): an EWMA detector over
    CPU task durations drives a per-worker state machine, degraded
    workers are polled last and quarantined ones not at all, and — with
    ``health.hedge`` — in-flight tasks stuck on suspect workers are
    speculatively re-executed on a healthy one (first commit wins).
    With ``health=None`` the run is bit-identical to pre-monitoring
    builds (the R705 identity).
    """
    sim = _Simulator(
        dag,
        machine,
        policy,
        dtype=dtype,
        cpu_model=cpu_model,
        gpu_model=gpu_model,
        collect_trace=collect_trace,
        faults=faults,
        recovery=recovery,
        health=health,
    )
    return sim.run()
