"""Matrix Market I/O.

A from-scratch reader/writer for the MatrixMarket ``coordinate`` format
(real / complex / integer / pattern, general / symmetric / skew-symmetric /
hermitian).  Only the features the solver needs are implemented; ``array``
(dense) format is rejected explicitly.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.sparse.csc import SparseMatrixCSC, coo_to_csc

__all__ = ["read_matrix_market", "write_matrix_market"]

_FIELD_DTYPES = {
    "real": np.float64,
    "integer": np.float64,
    "complex": np.complex128,
    "pattern": None,
}


def _open(source: Union[str, Path, TextIO], mode: str):
    if hasattr(source, "read") or hasattr(source, "write"):
        return source, False
    return open(source, mode), True


def read_matrix_market(source: Union[str, Path, TextIO]) -> SparseMatrixCSC:
    """Parse a MatrixMarket coordinate file into CSC form.

    Symmetric / hermitian / skew-symmetric storage is expanded to the full
    pattern (diagonal entries are not duplicated).
    """
    fh, should_close = _open(source, "r")
    try:
        header = fh.readline().strip().split()
        if len(header) != 5 or header[0] != "%%MatrixMarket":
            raise ValueError("not a MatrixMarket file")
        _, obj, fmt, field, symmetry = (s.lower() for s in header)
        if obj != "matrix" or fmt != "coordinate":
            raise ValueError(f"unsupported MatrixMarket kind: {obj}/{fmt}")
        if field not in _FIELD_DTYPES:
            raise ValueError(f"unsupported field: {field}")
        if symmetry not in ("general", "symmetric", "skew-symmetric", "hermitian"):
            raise ValueError(f"unsupported symmetry: {symmetry}")

        line = fh.readline()
        while line.startswith("%") or not line.strip():
            line = fh.readline()
            if not line:
                raise ValueError("truncated MatrixMarket file")
        n_rows, n_cols, nnz = (int(tok) for tok in line.split())

        dtype = _FIELD_DTYPES[field]
        if nnz == 0:
            rows = np.empty(0, dtype=np.int64)
            cols = np.empty(0, dtype=np.int64)
            vals = None if dtype is None else np.empty(0, dtype=dtype)
            return coo_to_csc(n_rows, n_cols, rows, cols, vals)

        body = fh.read()
        data = np.loadtxt(io.StringIO(body), ndmin=2)
        if data.shape[0] != nnz:
            raise ValueError(f"expected {nnz} entries, found {data.shape[0]}")
        rows = data[:, 0].astype(np.int64) - 1
        cols = data[:, 1].astype(np.int64) - 1
        if dtype is None:
            vals = None
        elif field == "complex":
            if data.shape[1] < 4:
                raise ValueError("complex entries need re and im columns")
            vals = data[:, 2] + 1j * data[:, 3]
        else:
            if data.shape[1] < 3:
                raise ValueError("real entries need a value column")
            vals = data[:, 2].astype(np.float64)

        if symmetry != "general":
            off = rows != cols
            mr, mc = rows[off], cols[off]
            rows = np.concatenate([rows, mc])
            cols = np.concatenate([cols, mr])
            if vals is not None:
                mv = vals[off]
                if symmetry == "skew-symmetric":
                    mv = -mv
                elif symmetry == "hermitian":
                    mv = np.conj(mv)
                vals = np.concatenate([vals, mv])
        return coo_to_csc(n_rows, n_cols, rows, cols, vals)
    finally:
        if should_close:
            fh.close()


def write_matrix_market(
    mat: SparseMatrixCSC,
    target: Union[str, Path, TextIO],
    *,
    comment: str = "",
) -> None:
    """Write a matrix in MatrixMarket ``coordinate general`` format."""
    rows, cols, vals = mat.to_coo()
    if vals is None:
        field = "pattern"
    elif np.issubdtype(vals.dtype, np.complexfloating):
        field = "complex"
    else:
        field = "real"

    fh, should_close = _open(target, "w")
    try:
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
        fh.write(f"{mat.n_rows} {mat.n_cols} {mat.nnz}\n")
        if field == "pattern":
            for r, c in zip(rows, cols):
                fh.write(f"{r + 1} {c + 1}\n")
        elif field == "complex":
            for r, c, v in zip(rows, cols, vals):
                fh.write(f"{r + 1} {c + 1} {v.real:.17g} {v.imag:.17g}\n")
        else:
            for r, c, v in zip(rows, cols, vals):
                fh.write(f"{r + 1} {c + 1} {v:.17g}\n")
    finally:
        if should_close:
            fh.close()
