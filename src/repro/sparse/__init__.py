"""Sparse-matrix substrate: containers, generators, I/O, and the Table-I
matrix collection analogues.

The solver works on compressed-sparse-column (CSC) matrices.  The container
here is deliberately small and NumPy-backed: three flat arrays (``colptr``,
``rowind``, ``values``) plus a shape, mirroring what PaStiX consumes.  All
structural algorithms downstream (ordering, symbolic factorization) operate
on these arrays directly, vectorised where possible.
"""

from repro.sparse.csc import SparseMatrixCSC, coo_to_csc
from repro.sparse.generators import (
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_pattern_spd,
    elasticity_like_3d,
    helmholtz_like_2d,
    shell_like_2d,
)
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.sparse.collection import (
    MATRIX_COLLECTION,
    MatrixInfo,
    load_matrix,
    collection_names,
)

__all__ = [
    "SparseMatrixCSC",
    "coo_to_csc",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "random_pattern_spd",
    "elasticity_like_3d",
    "helmholtz_like_2d",
    "shell_like_2d",
    "read_matrix_market",
    "write_matrix_market",
    "MATRIX_COLLECTION",
    "MatrixInfo",
    "load_matrix",
    "collection_names",
]
