"""Synthetic analogues of the Table-I matrix collection.

The paper evaluates on nine University of Florida matrices.  Those files
are not redistributable here (and no network access is available), so this
module provides *deterministic synthetic analogues*: each entry matches
the original's arithmetic (D = double real, Z = double complex), its
factorization kind (LU / LLᵀ / LDLᵀ), and its qualitative structure
(2D shell vs. 3D volume vs. FE elasticity blocks vs. complex Helmholtz),
at a flop scale reduced ~10⁴× so the full pipeline runs in seconds.

The paper's published statistics are kept alongside each entry so the
Table-I benchmark can print paper-vs-analogue rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.sparse.csc import SparseMatrixCSC
from repro.sparse import generators as gen

__all__ = ["MatrixInfo", "MATRIX_COLLECTION", "load_matrix", "collection_names"]


@dataclass(frozen=True)
class MatrixInfo:
    """Metadata for one collection entry.

    ``paper_*`` fields are the values published in Table I of the paper
    (size, nnz(A), nnz(L), TFlop); the generator produces the analogue.
    """

    name: str
    prec: str                 # "D" (float64) or "Z" (complex128)
    method: str               # "LU", "LLT" or "LDLT"
    description: str
    generator: Callable[[float, int], SparseMatrixCSC]
    paper_size: float
    paper_nnz_a: float
    paper_nnz_l: float
    paper_tflop: float

    @property
    def dtype(self):
        return np.complex128 if self.prec == "Z" else np.float64

    def build(self, scale: float = 1.0, seed: int = 0) -> SparseMatrixCSC:
        """Generate the analogue matrix.  ``scale`` multiplies the linear
        grid dimensions (so flops grow roughly like ``scale**6`` for 3D
        problems)."""
        return self.generator(scale, seed)


# Grid dimensions below are tuned so the analogues' factorization flops
# *order* matches Table I (afshell10 smallest ... Serena largest) at
# scale = 1.0; absolute flops are ~10⁴× below the paper's TFlop column
# (see DESIGN.md on scale reduction).


def _shell(scale: float, seed: int) -> SparseMatrixCSC:
    nx = max(8, round(170 * scale))
    ny = max(8, round(120 * scale))
    return gen.shell_like_2d(nx, ny, seed=seed)


def _filter(scale: float, seed: int) -> SparseMatrixCSC:
    nx = max(4, round(13 * scale))
    return gen.grid_laplacian_3d(
        nx, stencil=27, dtype=np.complex128, jitter=0.05, seed=seed
    )


def _flan(scale: float, seed: int) -> SparseMatrixCSC:
    nx = max(3, round(15 * scale))
    return gen.elasticity_like_3d(nx, dofs_per_node=3, seed=seed)


def _audi(scale: float, seed: int) -> SparseMatrixCSC:
    nx = max(3, round(16 * scale))
    return gen.elasticity_like_3d(nx, dofs_per_node=3, seed=seed)


def _mhd(scale: float, seed: int) -> SparseMatrixCSC:
    nx = max(4, round(19 * scale))
    return gen.grid_laplacian_3d(nx, stencil=27, jitter=0.05, seed=seed)


def _geo(scale: float, seed: int) -> SparseMatrixCSC:
    nx = max(4, round(29 * scale))
    return gen.grid_laplacian_3d(nx, stencil=7, jitter=0.05, seed=seed)


def _pmldf(scale: float, seed: int) -> SparseMatrixCSC:
    nx = max(4, round(17 * scale))
    return gen.grid_laplacian_3d(
        nx, stencil=27, dtype=np.complex128, jitter=0.05, seed=seed
    )


def _hook(scale: float, seed: int) -> SparseMatrixCSC:
    nx = max(4, round(30 * scale))
    return gen.grid_laplacian_3d(nx, stencil=7, jitter=0.05, seed=seed)


def _serena(scale: float, seed: int) -> SparseMatrixCSC:
    nx = max(4, round(34 * scale))
    return gen.grid_laplacian_3d(nx, stencil=7, jitter=0.05, seed=seed)


MATRIX_COLLECTION: Dict[str, MatrixInfo] = {
    info.name: info
    for info in [
        MatrixInfo(
            "afshell10", "D", "LU",
            "2D sheet-metal shell (cheap factor, low flop/nnz)",
            _shell, 1.5e6, 27e6, 610e6, 0.12,
        ),
        MatrixInfo(
            "FilterV2", "Z", "LU",
            "complex frequency-domain filter analogue (27-pt 3D, LU)",
            _filter, 0.6e6, 12e6, 536e6, 3.6,
        ),
        MatrixInfo(
            "Flan", "D", "LLT",
            "3D FE elasticity, 3 dof/node",
            _flan, 1.6e6, 59e6, 1712e6, 5.3,
        ),
        MatrixInfo(
            "audi", "D", "LLT",
            "3D FE elasticity, 3 dof/node (crankshaft analogue)",
            _audi, 0.9e6, 39e6, 1325e6, 6.5,
        ),
        MatrixInfo(
            "MHD", "D", "LU",
            "magnetohydrodynamics analogue (dense 27-pt 3D stencil)",
            _mhd, 0.5e6, 24e6, 1133e6, 6.6,
        ),
        MatrixInfo(
            "Geo1438", "D", "LLT",
            "3D geomechanical volume (7-pt)",
            _geo, 1.4e6, 32e6, 2768e6, 23.0,
        ),
        MatrixInfo(
            "pmlDF", "Z", "LDLT",
            "complex-symmetric PML analogue (27-pt 3D, LDLT)",
            _pmldf, 1.0e6, 8e6, 1105e6, 28.0,
        ),
        MatrixInfo(
            "HOOK", "D", "LU",
            "3D volume, LU (hook analogue)",
            _hook, 1.5e6, 31e6, 4168e6, 35.0,
        ),
        MatrixInfo(
            "Serena", "D", "LDLT",
            "3D gas-reservoir volume, LDLT (largest factor)",
            _serena, 1.4e6, 32e6, 3365e6, 47.0,
        ),
    ]
}


def collection_names() -> list[str]:
    """Names in the paper's Table-I order (ascending flops)."""
    return list(MATRIX_COLLECTION.keys())


def load_matrix(name: str, scale: float = 1.0, seed: int = 0) -> SparseMatrixCSC:
    """Generate the analogue for collection entry ``name``."""
    try:
        info = MATRIX_COLLECTION[name]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; available: {collection_names()}"
        ) from None
    return info.build(scale=scale, seed=seed)
