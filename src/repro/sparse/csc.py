"""Compressed-sparse-column matrix container.

The container is intentionally minimal: the downstream pipeline (ordering,
symbolic factorization, numerical factorization) reads the three flat
arrays directly.  Construction and structural transformations are
vectorised — per-entry Python loops are avoided throughout, following the
profile-first/vectorise idioms of the project coding guides.

Conventions
-----------
* ``colptr`` has length ``n + 1``; column ``j`` owns entries
  ``rowind[colptr[j]:colptr[j+1]]``.
* Row indices are sorted within each column and contain no duplicates
  (duplicates are summed at construction time).
* ``values`` may be ``None`` for pattern-only matrices (the symbolic
  pipeline never touches values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SparseMatrixCSC", "coo_to_csc"]


def coo_to_csc(
    n_rows: int,
    n_cols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    values: Optional[np.ndarray] = None,
    *,
    sum_duplicates: bool = True,
) -> "SparseMatrixCSC":
    """Build a :class:`SparseMatrixCSC` from coordinate triplets.

    Entries are sorted into column-major order; duplicate ``(row, col)``
    coordinates are summed when ``sum_duplicates`` is true (the Matrix
    Market convention), otherwise they raise ``ValueError``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise ValueError("rows and cols must have identical shapes")
    if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
        raise ValueError("row index out of range")
    if cols.size and (cols.min() < 0 or cols.max() >= n_cols):
        raise ValueError("column index out of range")

    # Column-major sort: key = col * n_rows + row fits in int64 for any
    # matrix we can hold in memory.
    order = np.lexsort((rows, cols))
    rows = rows[order]
    cols = cols[order]
    vals = None if values is None else np.asarray(values)[order]

    if rows.size:
        dup = np.flatnonzero((rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1]))
        if dup.size:
            if not sum_duplicates:
                raise ValueError(f"{dup.size} duplicate coordinates")
            keep = np.ones(rows.size, dtype=bool)
            keep[dup + 1] = False
            if vals is not None:
                # Accumulate runs of duplicates onto the first entry of
                # each run via a segmented reduction.
                seg = np.cumsum(keep) - 1
                acc = np.zeros(int(seg[-1]) + 1, dtype=vals.dtype)
                np.add.at(acc, seg, vals)
                vals = acc
            rows = rows[keep]
            cols = cols[keep]

    colptr = np.zeros(n_cols + 1, dtype=np.int64)
    np.add.at(colptr, cols + 1, 1)
    np.cumsum(colptr, out=colptr)
    return SparseMatrixCSC(n_rows, n_cols, colptr, rows, vals)


@dataclass
class SparseMatrixCSC:
    """A CSC sparse matrix with optional values.

    Attributes
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    colptr:
        ``int64`` array of length ``n_cols + 1``.
    rowind:
        ``int64`` array of row indices, sorted within each column.
    values:
        Numeric array aligned with ``rowind``, or ``None`` for a
        pattern-only matrix.
    """

    n_rows: int
    n_cols: int
    colptr: np.ndarray
    rowind: np.ndarray
    values: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return int(self.rowind.size)

    @property
    def dtype(self):
        return None if self.values is None else self.values.dtype

    @property
    def is_square(self) -> bool:
        return self.n_rows == self.n_cols

    @property
    def is_pattern(self) -> bool:
        return self.values is None

    def col(self, j: int) -> np.ndarray:
        """Row indices of column ``j`` (a view, do not mutate)."""
        return self.rowind[self.colptr[j] : self.colptr[j + 1]]

    def col_values(self, j: int) -> np.ndarray:
        if self.values is None:
            raise ValueError("pattern-only matrix has no values")
        return self.values[self.colptr[j] : self.colptr[j + 1]]

    def check(self) -> None:
        """Validate structural invariants; raises ``ValueError`` on breakage."""
        if self.colptr.shape != (self.n_cols + 1,):
            raise ValueError("colptr has wrong length")
        if self.colptr[0] != 0 or self.colptr[-1] != self.rowind.size:
            raise ValueError("colptr endpoints inconsistent with rowind")
        if np.any(np.diff(self.colptr) < 0):
            raise ValueError("colptr must be non-decreasing")
        if self.rowind.size:
            if self.rowind.min() < 0 or self.rowind.max() >= self.n_rows:
                raise ValueError("row index out of range")
        for j in range(self.n_cols):
            c = self.col(j)
            if c.size > 1 and np.any(np.diff(c) <= 0):
                raise ValueError(f"column {j} not strictly sorted")
        if self.values is not None and self.values.shape != self.rowind.shape:
            raise ValueError("values misaligned with rowind")

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_coo(self) -> tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Return ``(rows, cols, values)`` coordinate arrays."""
        cols = np.repeat(
            np.arange(self.n_cols, dtype=np.int64), np.diff(self.colptr)
        )
        return self.rowind.copy(), cols, (
            None if self.values is None else self.values.copy()
        )

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array (tests / small problems only)."""
        dtype = self.dtype if self.values is not None else np.float64
        out = np.zeros((self.n_rows, self.n_cols), dtype=dtype)
        rows, cols, vals = self.to_coo()
        out[rows, cols] = 1.0 if vals is None else vals
        return out

    def to_scipy(self):
        """Convert to ``scipy.sparse.csc_matrix`` (validation only)."""
        import scipy.sparse as sp

        vals = (
            np.ones(self.nnz, dtype=np.float64)
            if self.values is None
            else self.values
        )
        return sp.csc_matrix(
            (vals, self.rowind, self.colptr), shape=self.shape
        )

    @classmethod
    def from_scipy(cls, mat) -> "SparseMatrixCSC":
        """Build from any scipy sparse matrix (validation only)."""
        m = mat.tocsc()
        m.sum_duplicates()
        m.sort_indices()
        return cls(
            m.shape[0],
            m.shape[1],
            m.indptr.astype(np.int64),
            m.indices.astype(np.int64),
            m.data.copy(),
        )

    @classmethod
    def from_dense(cls, arr: np.ndarray, *, tol: float = 0.0) -> "SparseMatrixCSC":
        arr = np.asarray(arr)
        rows, cols = np.nonzero(np.abs(arr) > tol)
        return coo_to_csc(
            arr.shape[0], arr.shape[1], rows, cols, arr[rows, cols]
        )

    @classmethod
    def identity(cls, n: int, dtype=np.float64) -> "SparseMatrixCSC":
        idx = np.arange(n, dtype=np.int64)
        return cls(
            n, n, np.arange(n + 1, dtype=np.int64), idx, np.ones(n, dtype=dtype)
        )

    # ------------------------------------------------------------------
    # structural transforms
    # ------------------------------------------------------------------
    def transpose(self) -> "SparseMatrixCSC":
        """Return :math:`A^T` (O(nnz) counting transpose)."""
        rows, cols, vals = self.to_coo()
        return coo_to_csc(
            self.n_cols, self.n_rows, cols, rows, vals, sum_duplicates=False
        )

    def pattern(self) -> "SparseMatrixCSC":
        """Drop values, keep the structure."""
        return SparseMatrixCSC(
            self.n_rows, self.n_cols, self.colptr.copy(), self.rowind.copy()
        )

    def symmetrize_pattern(self) -> "SparseMatrixCSC":
        """Pattern of :math:`A + A^T` (no values).

        This is the graph the solver analyses: PaStiX always works on the
        symmetrised pattern so the symbolic structure is independent of the
        numerical values (static pivoting).
        """
        if not self.is_square:
            raise ValueError("symmetrize requires a square matrix")
        rows, cols, _ = self.to_coo()
        allr = np.concatenate([rows, cols])
        allc = np.concatenate([cols, rows])
        m = coo_to_csc(self.n_rows, self.n_cols, allr, allc,
                       np.zeros(allr.size), sum_duplicates=True)
        return m.pattern()

    def symmetrize_values(self) -> "SparseMatrixCSC":
        """Numeric :math:`(A + A^T) / 2` — handy for building SPD tests."""
        if self.values is None:
            raise ValueError("pattern-only matrix")
        rows, cols, vals = self.to_coo()
        allr = np.concatenate([rows, cols])
        allc = np.concatenate([cols, rows])
        allv = np.concatenate([vals, vals]) * 0.5
        return coo_to_csc(self.n_rows, self.n_cols, allr, allc, allv)

    def lower_triangle(self, *, strict: bool = False) -> "SparseMatrixCSC":
        """Keep entries with ``row >= col`` (or ``>`` when strict)."""
        rows, cols, vals = self.to_coo()
        keep = rows > cols if strict else rows >= cols
        return coo_to_csc(
            self.n_rows,
            self.n_cols,
            rows[keep],
            cols[keep],
            None if vals is None else vals[keep],
            sum_duplicates=False,
        )

    def with_full_diagonal(self, fill_value: float = 0.0) -> "SparseMatrixCSC":
        """Ensure every diagonal entry is structurally present."""
        if not self.is_square:
            raise ValueError("square matrices only")
        rows, cols, vals = self.to_coo()
        have = np.zeros(self.n_rows, dtype=bool)
        have[rows[rows == cols]] = True
        missing = np.flatnonzero(~have).astype(np.int64)
        if missing.size == 0:
            return self
        rows = np.concatenate([rows, missing])
        cols = np.concatenate([cols, missing])
        if vals is not None:
            vals = np.concatenate(
                [vals, np.full(missing.size, fill_value, dtype=vals.dtype)]
            )
        return coo_to_csc(self.n_rows, self.n_cols, rows, cols, vals)

    def permute(self, perm: np.ndarray) -> "SparseMatrixCSC":
        """Symmetric permutation :math:`P A P^T`.

        ``perm`` maps *old* index → *new* index (scatter convention):
        row/column ``i`` of ``A`` becomes row/column ``perm[i]``.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.n_rows,) or not self.is_square:
            raise ValueError("perm must have length n for a square matrix")
        rows, cols, vals = self.to_coo()
        return coo_to_csc(
            self.n_rows,
            self.n_cols,
            perm[rows],
            perm[cols],
            vals,
            sum_duplicates=False,
        )

    # ------------------------------------------------------------------
    # numeric helpers
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` without materialising a dense matrix.

        ``x`` may be a vector of length ``n_cols`` or a block of
        right-hand sides of shape ``(n_cols, k)``.
        """
        if self.values is None:
            raise ValueError("pattern-only matrix")
        x = np.asarray(x)
        dtype = np.result_type(self.values.dtype, x.dtype)
        cols = np.repeat(
            np.arange(self.n_cols, dtype=np.int64), np.diff(self.colptr)
        )
        if x.ndim == 1:
            out = np.zeros(self.n_rows, dtype=dtype)
            np.add.at(out, self.rowind, self.values * x[cols])
        else:
            out = np.zeros((self.n_rows, x.shape[1]), dtype=dtype)
            np.add.at(out, self.rowind, self.values[:, None] * x[cols])
        return out

    def diagonal(self) -> np.ndarray:
        """Extract the diagonal as a dense vector (missing entries = 0)."""
        if self.values is None:
            raise ValueError("pattern-only matrix")
        n = min(self.n_rows, self.n_cols)
        out = np.zeros(n, dtype=self.values.dtype)
        rows, cols, vals = self.to_coo()
        mask = rows == cols
        out[rows[mask]] = vals[mask]
        return out

    def scale_diagonal_dominant(self, factor: float = 1.1) -> "SparseMatrixCSC":
        """Return a copy whose diagonal dominates each column's 1-norm.

        Used by generators to make LU-without-pivoting numerically safe
        (the paper's solvers rely on static pivoting, which presumes the
        reordered matrix is factorisable without row exchanges).
        """
        if self.values is None:
            raise ValueError("pattern-only matrix")
        rows, cols, vals = self.to_coo()
        colsum = np.zeros(self.n_cols, dtype=np.float64)
        off = rows != cols
        np.add.at(colsum, cols[off], np.abs(vals[off]))
        newvals = vals.copy()
        diag_mask = ~off
        newvals[diag_mask] = (
            np.sign(vals[diag_mask].real + (vals[diag_mask].real == 0))
            * (np.abs(vals[diag_mask]) + factor * colsum[cols[diag_mask]])
        ).astype(vals.dtype)
        return coo_to_csc(
            self.n_rows, self.n_cols, rows, cols, newvals, sum_duplicates=False
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "pattern" if self.values is None else str(self.values.dtype)
        return (
            f"SparseMatrixCSC(shape={self.shape}, nnz={self.nnz}, {kind})"
        )
