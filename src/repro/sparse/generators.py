"""Deterministic sparse-matrix generators.

These produce the synthetic workloads used throughout the test suite and
as analogues of the University of Florida matrices of Table I (see
:mod:`repro.sparse.collection`).  Every generator is deterministic given
its arguments (seeded RNG), returns a :class:`~repro.sparse.csc.SparseMatrixCSC`
with a *symmetric pattern* and a structurally full diagonal — the
invariants the analysis pipeline expects.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import SparseMatrixCSC, coo_to_csc

__all__ = [
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "random_pattern_spd",
    "elasticity_like_3d",
    "helmholtz_like_2d",
    "shell_like_2d",
]


def _grid_edges_2d(nx: int, ny: int, stencil: int) -> tuple[np.ndarray, np.ndarray]:
    """Undirected edge list of a 2D grid graph (5- or 9-point stencil)."""
    idx = np.arange(nx * ny, dtype=np.int64).reshape(ny, nx)
    pairs = [
        (idx[:, :-1].ravel(), idx[:, 1:].ravel()),   # east
        (idx[:-1, :].ravel(), idx[1:, :].ravel()),   # south
    ]
    if stencil == 9:
        pairs.append((idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()))   # SE diag
        pairs.append((idx[:-1, 1:].ravel(), idx[1:, :-1].ravel()))   # SW diag
    elif stencil != 5:
        raise ValueError("2D stencil must be 5 or 9")
    u = np.concatenate([p[0] for p in pairs])
    v = np.concatenate([p[1] for p in pairs])
    return u, v


def _grid_edges_3d(nx: int, ny: int, nz: int, stencil: int) -> tuple[np.ndarray, np.ndarray]:
    """Undirected edge list of a 3D grid graph (7- or 27-point stencil)."""
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nz, ny, nx)
    pairs = [
        (idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()),
        (idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()),
        (idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()),
    ]
    if stencil == 27:
        # All 13 forward neighbour offsets of the 27-point stencil.
        offsets = [
            (0, 1, 1), (0, 1, -1),
            (1, 0, 1), (1, 0, -1), (1, 1, 0), (1, -1, 0),
            (1, 1, 1), (1, 1, -1), (1, -1, 1), (1, -1, -1),
        ]
        for dz, dy, dx in offsets:
            zs = slice(None, -dz) if dz else slice(None)
            zd = slice(dz, None) if dz else slice(None)
            ys = slice(None, -dy) if dy > 0 else (slice(-dy, None) if dy < 0 else slice(None))
            yd = slice(dy, None) if dy > 0 else (slice(None, dy) if dy < 0 else slice(None))
            xs = slice(None, -dx) if dx > 0 else (slice(-dx, None) if dx < 0 else slice(None))
            xd = slice(dx, None) if dx > 0 else (slice(None, dx) if dx < 0 else slice(None))
            pairs.append((idx[zs, ys, xs].ravel(), idx[zd, yd, xd].ravel()))
    elif stencil != 7:
        raise ValueError("3D stencil must be 7 or 27")
    u = np.concatenate([p[0] for p in pairs])
    v = np.concatenate([p[1] for p in pairs])
    return u, v


def _assemble_laplacian(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    dtype,
    rng: np.random.Generator,
    jitter: float,
) -> SparseMatrixCSC:
    """Assemble an SPD (or complex-symmetric) graph Laplacian + identity.

    Off-diagonal weights are ``-1`` perturbed by ``jitter`` to avoid exact
    ties in pivot magnitudes; the diagonal is the (weighted) degree plus
    one, which makes the real variant strictly diagonally dominant, hence
    SPD, hence safe for Cholesky/LDLᵀ/LU without pivoting.
    """
    w = np.ones(u.size, dtype=np.float64)
    if jitter:
        w += jitter * rng.random(u.size)
    if np.issubdtype(np.dtype(dtype), np.complexfloating):
        wc = w.astype(np.complex128)
        if jitter:
            wc = wc + 1j * jitter * rng.random(u.size)
        w = wc
    rows = np.concatenate([u, v, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([v, u, np.arange(n, dtype=np.int64)])
    deg = np.zeros(n, dtype=w.dtype)
    np.add.at(deg, u, w)
    np.add.at(deg, v, w)
    vals = np.concatenate([-w, -w, deg + 1.0])
    return coo_to_csc(n, n, rows, cols, vals.astype(dtype))


def grid_laplacian_2d(
    nx: int,
    ny: int | None = None,
    *,
    stencil: int = 5,
    dtype=np.float64,
    jitter: float = 0.0,
    seed: int = 0,
) -> SparseMatrixCSC:
    """SPD Laplacian of an ``nx × ny`` grid (5- or 9-point stencil)."""
    ny = nx if ny is None else ny
    rng = np.random.default_rng(seed)
    u, v = _grid_edges_2d(nx, ny, stencil)
    return _assemble_laplacian(nx * ny, u, v, dtype, rng, jitter)


def grid_laplacian_3d(
    nx: int,
    ny: int | None = None,
    nz: int | None = None,
    *,
    stencil: int = 7,
    dtype=np.float64,
    jitter: float = 0.0,
    seed: int = 0,
) -> SparseMatrixCSC:
    """SPD Laplacian of an ``nx × ny × nz`` grid (7- or 27-point stencil)."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    rng = np.random.default_rng(seed)
    u, v = _grid_edges_3d(nx, ny, nz, stencil)
    return _assemble_laplacian(nx * ny * nz, u, v, dtype, rng, jitter)


def random_pattern_spd(
    n: int,
    avg_nnz_per_col: float = 8.0,
    *,
    dtype=np.float64,
    seed: int = 0,
    locality: float = 0.0,
) -> SparseMatrixCSC:
    """Random symmetric-pattern SPD matrix.

    ``locality`` in ``[0, 1)`` biases off-diagonal entries toward the
    diagonal band (1 → very banded, 0 → uniform), which controls fill-in:
    banded patterns factor cheaply, uniform ones fill heavily.
    """
    rng = np.random.default_rng(seed)
    m = max(0, int(n * avg_nnz_per_col / 2))
    u = rng.integers(0, n, size=m, dtype=np.int64)
    if locality > 0.0:
        span = np.maximum(1, (n * (1.0 - locality) ** 2).astype(int) if False else int(max(1, n * (1.0 - locality) ** 2)))
        delta = rng.integers(1, span + 1, size=m, dtype=np.int64)
        v = np.minimum(n - 1, u + delta)
    else:
        v = rng.integers(0, n, size=m, dtype=np.int64)
    keep = u != v
    u, v = u[keep], v[keep]
    return _assemble_laplacian(n, u, v, dtype, rng, jitter=0.05)


def elasticity_like_3d(
    nx: int,
    *,
    dofs_per_node: int = 3,
    dtype=np.float64,
    seed: int = 0,
) -> SparseMatrixCSC:
    """3D elasticity-like matrix: grid graph with a dense block per node.

    Mimics the structure of FE elasticity problems (Audi/Flan-style):
    each grid node carries ``dofs_per_node`` unknowns, fully coupled within
    a node and along grid edges.  Built as the Kronecker-style expansion of
    the 3D 7-point Laplacian with dense ``d×d`` blocks.
    """
    rng = np.random.default_rng(seed)
    u, v = _grid_edges_3d(nx, nx, nx, 7)
    d = dofs_per_node
    nn = nx ** 3
    # Expand each graph edge (u,v) into a dense d×d block pair.
    di, dj = np.meshgrid(np.arange(d), np.arange(d), indexing="ij")
    di = di.ravel()
    dj = dj.ravel()
    eu = (u[:, None] * d + di[None, :]).ravel()
    ev = (v[:, None] * d + dj[None, :]).ravel()
    # Intra-node coupling: strict upper pairs within each node block.
    iu, iv = np.triu_indices(d, k=1)
    nu = (np.arange(nn, dtype=np.int64)[:, None] * d + iu[None, :]).ravel()
    nv = (np.arange(nn, dtype=np.int64)[:, None] * d + iv[None, :]).ravel()
    allu = np.concatenate([eu, nu])
    allv = np.concatenate([ev, nv])
    return _assemble_laplacian(nn * d, allu, allv, dtype, rng, jitter=0.05)


def helmholtz_like_2d(
    nx: int,
    *,
    dtype=np.complex128,
    seed: int = 0,
) -> SparseMatrixCSC:
    """Complex-symmetric Helmholtz-like 2D problem (9-point stencil).

    Analogue of PML-damped frequency-domain problems (FilterV2/pmlDF
    style): complex symmetric (not Hermitian), factorised with LDLᵀ or LU.
    The imaginary diagonal shift keeps LDLᵀ without pivoting stable.
    """
    rng = np.random.default_rng(seed)
    u, v = _grid_edges_2d(nx, nx, 9)
    mat = _assemble_laplacian(nx * nx, u, v, dtype, rng, jitter=0.05)
    # Add an absorbing complex shift to the diagonal.
    rows, cols, vals = mat.to_coo()
    diag = rows == cols
    vals = vals.astype(np.complex128)
    vals[diag] += 1j * (1.0 + rng.random(int(diag.sum())))
    return coo_to_csc(mat.n_rows, mat.n_cols, rows, cols, vals.astype(dtype),
                      sum_duplicates=False)


def shell_like_2d(
    nx: int,
    ny: int,
    *,
    dtype=np.float64,
    seed: int = 0,
) -> SparseMatrixCSC:
    """Thin-shell-like matrix: long skinny 2D 9-point grid, 6 dof/node feel.

    Analogue of ``af_shell10``: a 2D-dominated structure whose factor is
    comparatively cheap (low flop per nonzero), the case the paper shows
    gains nothing from GPUs.
    """
    rng = np.random.default_rng(seed)
    u, v = _grid_edges_2d(nx, ny, 9)
    return _assemble_laplacian(nx * ny, u, v, dtype, rng, jitter=0.05)
