"""Discrete-event simulation of the distributed factorization.

Execution model (the fan-in scheme of the paper's §VI, and PaStiX's MPI
layer):

* every panel lives on its owner node; the panel task and all update
  tasks *sourced* from it run there (compute-at-source — the factorized
  panel never travels);
* an update into a panel owned by the same node scatters directly
  (serialized per target by the usual mutex);
* an update into a *remote* panel accumulates into a node-local fan-in
  buffer; when the last local contribution to that panel completes, one
  message carries the whole buffer to the owner, where a cheap
  accumulate task (mutex-serialized like an update) applies it.  With
  ``fanin=False`` every remote update sends its own message immediately
  instead — more, smaller messages: the latency/bandwidth trade the
  paper describes.

The interconnect has one full-duplex NIC per node: sends serialize at
the sender, receives at the receiver.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.dag.builder import build_dag, update_couples
from repro.distributed.cluster import ClusterSpec
from repro.machine.perfmodel import CpuPerfModel
from repro.resilience import (
    FaultModel,
    HealthMonitor,
    HealthPolicy,
    RecoveryPolicy,
    UnrecoverableError,
    window_factor,
)
from repro.runtime.base import bottom_levels
from repro.runtime.seq import monotonic_counter
from repro.runtime.tracing import ExecutionTrace
from repro.symbolic.structures import SymbolMatrix

__all__ = ["simulate_distributed", "DistributedResult"]

#: Effective memory bandwidth for applying a received fan-in buffer.
_ACCUMULATE_GBPS = 4.0


@dataclass
class DistributedResult:
    """Outcome of one distributed simulation."""

    cluster: ClusterSpec
    fanin: bool
    makespan: float
    flops: float
    n_messages: int
    bytes_on_wire: float
    node_busy: list
    trace: Optional[ExecutionTrace]
    #: Faults injected during the run (0 when resilience is off).
    n_faults: int = 0
    #: Task attempts re-executed after a fault.
    n_reexecuted: int = 0
    #: Bytes of failed/lost messages that had to be re-sent.
    bytes_retransferred: float = 0.0
    #: Health state transitions taken (0 when monitoring is off).
    n_health_transitions: int = 0

    @property
    def gflops(self) -> float:
        return self.flops / self.makespan / 1e9 if self.makespan > 0 else 0.0

    @property
    def load_imbalance(self) -> float:
        """max(node busy) / mean(node busy) — 1.0 is perfect."""
        busy = np.asarray(self.node_busy)
        return float(busy.max() / busy.mean()) if busy.mean() > 0 else 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedResult(nodes={self.cluster.n_nodes}, "
            f"fanin={self.fanin}, {self.gflops:.1f} GFlop/s, "
            f"{self.n_messages} msgs, {self.bytes_on_wire / 1e6:.1f} MB)"
        )


class _DistSim:
    def __init__(
        self,
        symbol: SymbolMatrix,
        owner: np.ndarray,
        cluster: ClusterSpec,
        *,
        factotype: str,
        dtype,
        fanin: bool,
        cpu_model: CpuPerfModel | None,
        task_overhead_s: float,
        collect_trace: bool,
        faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
        health: HealthPolicy | None = None,
    ) -> None:
        self.symbol = symbol
        self.owner = np.asarray(owner, dtype=np.int64)
        self.cluster = cluster
        self.factotype = factotype
        self.dtype = np.dtype(dtype)
        self.fanin = fanin
        self.cpu_model = cpu_model or CpuPerfModel()
        self.overhead = task_overhead_s
        self.trace = ExecutionTrace() if collect_trace else None
        if self.trace is not None:
            self.trace.meta["producer"] = "distributed.simulator"
            self.trace.meta["clock"] = "virtual"
            self.trace.meta["fanin"] = bool(fanin)

        # Resilience.  Every fault hook below is gated on
        # ``self.faults is not None`` so a run without a fault model goes
        # through byte-identical code paths.
        self.faults = faults
        self.recovery = recovery or RecoveryPolicy()
        self.attempts: dict = {}
        self.n_faults = 0
        self.n_reexecuted = 0
        self.bytes_retransferred = 0.0

        # Health monitoring.  Tasks are owner-bound here (the factorized
        # panel never travels), so quarantining a node outright would
        # starve its panels and deadlock the run: quarantine is forced
        # off and *backpressure* (capping concurrent dispatch on a
        # degraded node, see ``_kick``) is the strongest reaction.
        # Hedged re-execution is likewise not applicable — there is no
        # healthy peer that could run an owner-bound duplicate.
        self.health: HealthMonitor | None = None
        if health is not None:
            policy = dataclasses.replace(
                health, allow_quarantine=False, hedge=False)
            self.health = HealthMonitor(
                (f"n{n}" for n in range(cluster.n_nodes)), policy=policy)
            if self.trace is not None:
                self.trace.meta["health"] = {"hedge": False}

        K = symbol.n_cblk
        if self.owner.shape != (K,):
            raise ValueError("owner array must have one entry per cblk")
        if self.owner.size and (
            self.owner.min() < 0 or self.owner.max() >= cluster.n_nodes
        ):
            raise ValueError("owner out of node range")

        self._precompute()
        self._init_state()

        # Persistent slowdown windows (consumed whole at init; they are
        # declarative state, not per-attempt draws).
        self._limp: dict[int, list] = {}
        self._linkdeg: dict[int, list] = {}

        if faults is not None:
            # Node failures are purely time-driven: pre-schedule them.
            for spec in faults.pop_timed("node-fail"):
                nidx = spec.resource if spec.resource >= 0 else 0
                if nidx < cluster.n_nodes:
                    self._schedule(spec.time, self._node_loss, nidx)
            # Persistent conditions: pre-schedule the onset events so
            # the limp/degradation is trace-visible as a fault the R6xx
            # auditor can pair.  A limplock resource index is a node; a
            # degraded-link index is the sending node's NIC.
            self._limp = faults.pop_windows("limplock")
            self._linkdeg = faults.pop_windows("degraded-link")
            for n, spans in sorted(self._limp.items()):
                for (t0, _t1, _f) in spans:
                    self._schedule(t0, self._limp_onset, "limplock",
                                   f"n{n}", t0)
            for n, spans in sorted(self._linkdeg.items()):
                for (t0, _t1, _f) in spans:
                    self._schedule(t0, self._limp_onset, "degraded-link",
                                   f"net{n}", t0)

    # ------------------------------------------------------------------
    def _precompute(self) -> None:
        symbol, factotype = self.symbol, self.factotype
        K = symbol.n_cblk
        # Reuse the 2D DAG for flops and priorities.
        dag = build_dag(symbol, factotype, granularity="2d",
                        dtype=self.dtype, recompute_ld=False)
        self.total_flops = dag.total_flops()
        bl = bottom_levels(dag)
        self.panel_prio = bl[:K]
        self.upd_prio = bl[K:]

        widths = np.diff(symbol.cblk_ptr).astype(np.int64)
        below = np.array([symbol.cblk_below(k) for k in range(K)])
        peak = self.cluster.cpu.peak_gflops * 1e9
        self.panel_dur = np.array([
            dag.flops[k] / (peak * self.cpu_model.panel_eff(
                float(widths[k]), float(below[k])))
            for k in range(K)
        ]) + self.overhead

        self.src, self.tgt, ms, ns = update_couples(symbol)
        n_upd = self.src.size
        self.upd_dur = np.empty(n_upd)
        per_entry = self.dtype.itemsize * (2 if factotype == "lu" else 1)
        self.contrib_bytes = (
            ms.astype(np.float64) * ns.astype(np.float64) * per_entry
        )
        heights = np.array([symbol.cblk_height(k) for k in range(K)])
        self.panel_bytes = heights * widths * float(per_entry)
        for i in range(n_upd):
            eff = self.cpu_model.update_eff(
                int(ms[i]), int(ns[i]), int(widths[self.src[i]]),
                factotype=factotype, recompute_ld=False,
            )
            self.upd_dur[i] = dag.flops[K + i] / (peak * eff) + self.overhead

        own = self.owner
        self.is_local = own[self.src] == own[self.tgt]

        # Dependency counts for each panel.
        self.panel_deps = np.zeros(K, dtype=np.int64)
        np.add.at(self.panel_deps, self.tgt[self.is_local], 1)
        if self.fanin:
            senders: dict[int, set[int]] = {}
            for i in np.flatnonzero(~self.is_local):
                senders.setdefault(int(self.tgt[i]), set()).add(
                    int(own[self.src[i]])
                )
            for t, s in senders.items():
                self.panel_deps[t] += len(s)
            # Fan-in buffers: (sender node, target) -> [pending, bytes].
            self.buffers: dict[tuple[int, int], list] = {}
            for i in np.flatnonzero(~self.is_local):
                key = (int(own[self.src[i]]), int(self.tgt[i]))
                entry = self.buffers.setdefault(key, [0, 0.0])
                entry[0] += 1
                entry[1] = min(
                    entry[1] + self.contrib_bytes[i],
                    float(self.panel_bytes[self.tgt[i]]),
                )
        else:
            np.add.at(self.panel_deps, self.tgt[~self.is_local], 1)

        # Updates of panel k, for release when the panel completes.
        self.updates_of: list[list[int]] = [[] for _ in range(K)]
        for i in range(n_upd):
            self.updates_of[self.src[i]].append(i)

    # ------------------------------------------------------------------
    def _init_state(self) -> None:
        n_nodes = self.cluster.n_nodes
        self.time = 0.0
        self._heap: list = []
        self._seq = monotonic_counter()
        self.ready: list[list[tuple[float, int, tuple]]] = [
            [] for _ in range(n_nodes)
        ]
        self.idle: list[set[int]] = [
            set(range(self.cluster.cores_per_node)) for _ in range(n_nodes)
        ]
        self.mutex_held: set[int] = set()
        self.mutex_wait: dict[int, list[tuple]] = {}
        self.send_free = [0.0] * n_nodes
        self.recv_free = [0.0] * n_nodes
        self.node_busy = [0.0] * n_nodes
        self.n_messages = 0
        self.bytes_on_wire = 0.0
        self.panels_done = 0
        self._tick = monotonic_counter()
        # Resilience bookkeeping (only consulted when faults are armed).
        self.node_up = [True] * n_nodes
        self.node_epoch = [0] * n_nodes
        self.node_restore_at = [0.0] * n_nodes
        self.running: dict[tuple[int, int], tuple] = {}
        # Health bookkeeping: (node, core) -> start time of the attempt
        # whose completion the monitor will observe.
        self._hstart: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def _push_ready(self, node: int, prio: float, task: tuple) -> None:
        heapq.heappush(self.ready[node], (-prio, next(self._tick), task))
        self._kick(node)

    def _kick(self, node: int) -> None:
        if self.faults is not None and not self.node_up[node]:
            return  # the node is down; _node_restored re-kicks it
        cap = None
        if self.health is not None and self.health.rank(f"n{node}") >= 1:
            # Backpressure: a degraded node runs at most
            # ``backpressure_limit`` tasks at once, so a limping node
            # drains its owner-bound queue slowly instead of hogging a
            # full complement of (slow) cores while remote consumers
            # starve.  The cap is >= 1, so progress is never lost.
            cap = max(1, self.health.policy.backpressure_limit)
        while self.idle[node] and self.ready[node]:
            if cap is not None and (
                    self.cluster.cores_per_node - len(self.idle[node])
                    >= cap):
                break
            _, _, task = heapq.heappop(self.ready[node])
            grp = self._mutex_group(task)
            if grp is not None and grp in self.mutex_held:
                self.mutex_wait.setdefault(grp, []).append(task)
                continue
            if grp is not None:
                self.mutex_held.add(grp)
            core = min(self.idle[node])
            self.idle[node].discard(core)
            self._start(node, core, task)

    def _mutex_group(self, task: tuple) -> int | None:
        kind = task[0]
        if kind == "update":
            return int(self.tgt[task[1]])
        if kind == "acc":
            return int(task[2])
        return None

    def _duration(self, task: tuple) -> float:
        kind = task[0]
        if kind == "panel":
            return float(self.panel_dur[task[1]])
        if kind == "update":
            return float(self.upd_dur[task[1]])
        # ("acc", sender, target, bytes)
        return self.overhead + task[3] / (_ACCUMULATE_GBPS * 1e9)

    def _tid(self, task: tuple) -> int:
        """The trace task id of one (kind, index, ...) task tuple.

        Accumulate tasks are keyed by (sender, target) — keying by
        sender alone would alias every acc from one node to a single
        id, and the R602 double-completion audit (rightly) rejects a
        task id that completes twice without an interleaved fault.
        """
        kind = task[0]
        if kind == "panel":
            return int(task[1])
        if kind == "update":
            return 10**8 + int(task[1])
        # ("acc", sender, target, bytes)
        return (2 * 10**8 + int(task[2]) * self.cluster.n_nodes
                + int(task[1]))

    def _start(self, node: int, core: int, task: tuple) -> None:
        dur = self._duration(task)
        if self.health is not None:
            self._hstart[(node, core)] = self.time
        if self.faults is not None:
            tid = self._tid(task)
            factor = self.faults.straggler(tid, self.time)
            if factor > 1.0:
                self.n_faults += 1
                if self.trace is not None:
                    att = self.attempts.get(tid, 0) + 1
                    self.trace.record_fault(
                        "straggler", tid, -1, f"n{node}c{core}",
                        self.time, self.time + dur * factor, att,
                    )
                    self.trace.record_recovery(
                        "absorb", tid, -1, f"n{node}c{core}",
                        self.time, att,
                    )
                dur *= factor
            if self._limp:
                dur *= window_factor(self._limp.get(node), self.time)
            if self.faults.task_fault(tid, -1, self.time) is not None:
                # The attempt dies halfway through; no TraceEvent — the
                # task will re-execute after the backoff.
                self._schedule(self.time + 0.5 * dur, self._task_fault,
                               node, core, task, self.time)
                return
            end = self.time + dur
            self.node_busy[node] += dur
            self.running[(node, core)] = (task, self.time)
            self._schedule(end, self._finish, node, core, task,
                           self.node_epoch[node])
            return
        end = self.time + dur
        self.node_busy[node] += dur
        if self.trace is not None:
            self.trace.record(
                self._tid(task), f"n{node}c{core}", self.time, end,
            )
        self._schedule(end, self._finish, node, core, task)

    def _schedule(self, when, fn, *args) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), fn, args))

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def _task_fault(self, node: int, core: int, task: tuple,
                    start: float) -> None:
        """A task attempt dies mid-execution (transient fault)."""
        tid = self._tid(task)
        att = self.attempts.get(tid, 0) + 1
        self.attempts[tid] = att
        self.n_faults += 1
        self.node_busy[node] += self.time - start  # the wasted half
        if self.trace is not None:
            self.trace.record_fault("task-fault", tid, -1,
                                    f"n{node}c{core}", start, self.time, att)
        if att > self.recovery.max_retries:
            raise UnrecoverableError(
                f"distributed task {task!r} failed {att} attempt(s) on "
                f"node {node}; retry budget "
                f"max_retries={self.recovery.max_retries} exhausted"
            )
        grp = self._mutex_group(task)
        if grp is not None:
            self.mutex_held.discard(grp)
        delay = self._backoff(att - 1)
        if self.trace is not None:
            self.trace.record_recovery("requeue", tid, -1,
                                       f"n{node}c{core}", self.time, att,
                                       delay)
        self.n_reexecuted += 1
        if self.node_up[node]:
            self.idle[node].add(core)
        retry = max(self.time + delay, self.node_restore_at[node])
        self._schedule(retry, self._requeue, node, task)
        self._kick(node)

    def _requeue(self, node: int, task: tuple) -> None:
        self._push_ready(node, self._task_prio(task), task)

    def _backoff(self, attempt: int) -> float:
        """Recovery backoff; jitter (when configured) draws from the
        run's single fault RNG so D803 draw accounting balances."""
        if self.recovery.jitter > 0.0 and self.faults is not None:
            return self.recovery.backoff(attempt,
                                         self.faults.backoff_jitter())
        return self.recovery.backoff(attempt)

    def _limp_onset(self, kind: str, resource: str, t0: float) -> None:
        """A persistent condition (limplock / degraded-link) begins.

        The slowdown itself is applied where durations are computed;
        this event only makes the onset trace-visible as a paired
        fault/recovery (kind ``"degrade"``: the runtime tolerates the
        condition in place and degrades around it).
        """
        self.n_faults += 1
        if self.trace is not None:
            self.trace.record_fault(kind, -1, -1, resource, t0, t0)
            self.trace.record_recovery("degrade", -1, -1, resource, t0)

    def _record_health(self, transitions) -> None:
        if self.trace is not None:
            for (res, src, dst, when, ratio, reason) in transitions:
                self.trace.record_health(res, src, dst, when, ratio, reason)

    def _node_loss(self, node: int) -> None:
        """Node ``node`` crashes: panel-granularity checkpointing means
        completed work persists; only in-flight tasks re-execute after
        the node restarts."""
        if not self.node_up[node]:
            return
        self.node_up[node] = False
        self.node_epoch[node] += 1
        restore = self.time + self.recovery.node_restart_s
        self.node_restore_at[node] = restore
        self.n_faults += 1
        if self.trace is not None:
            self.trace.record_fault("node-fail", -1, -1, f"n{node}",
                                    self.time, self.time)
            self.trace.record_recovery("restart", -1, -1, f"n{node}",
                                       self.time,
                                       delay_s=self.recovery.node_restart_s)
        lost: list[tuple] = []
        for (nd, core), (task, start) in list(self.running.items()):
            if nd != node:
                continue
            del self.running[(nd, core)]
            tid = self._tid(task)
            att = self.attempts.get(tid, 0) + 1
            self.attempts[tid] = att
            self.n_faults += 1
            self.node_busy[node] -= start + self._duration(task) - self.time
            if self.trace is not None:
                self.trace.record_fault("node-fail", tid, -1,
                                        f"n{node}c{core}", start, self.time,
                                        att)
            if att > self.recovery.max_retries:
                raise UnrecoverableError(
                    f"distributed task {task!r} failed {att} attempt(s) "
                    f"(node {node} crashed); retry budget "
                    f"max_retries={self.recovery.max_retries} exhausted"
                )
            grp = self._mutex_group(task)
            if grp is not None:
                self.mutex_held.discard(grp)
            if self.trace is not None:
                self.trace.record_recovery(
                    "restart", tid, -1, f"n{node}c{core}", self.time, att,
                    self.recovery.node_restart_s,
                )
            self.n_reexecuted += 1
            lost.append(task)
        self._schedule(restore, self._node_restored, node, tuple(lost))

    def _node_restored(self, node: int, lost: tuple) -> None:
        self.node_up[node] = True
        self.idle[node] = set(range(self.cluster.cores_per_node))
        for task in lost:
            self._push_ready(node, self._task_prio(task), task)
        self._kick(node)

    # ------------------------------------------------------------------
    def _finish(self, node: int, core: int, task: tuple,
                epoch: int = 0) -> None:
        if self.faults is not None:
            if not self.node_up[node] or epoch != self.node_epoch[node]:
                return  # stale: the node died while this task ran
            start = self.running.pop((node, core))[1]
            if self.trace is not None:
                self.trace.record(self._tid(task), f"n{node}c{core}",
                                  start, self.time)
        if self.health is not None:
            hstart = self._hstart.pop((node, core), None)
            if hstart is not None:
                self._record_health(self.health.observe(
                    f"n{node}", task[0], self.time - hstart, self.time,
                    expected=self._duration(task),
                ))
        self.idle[node].add(core)
        grp = self._mutex_group(task)
        if grp is not None:
            self.mutex_held.discard(grp)
            for waiting in self.mutex_wait.pop(grp, []):
                w_node = self._task_node(waiting)
                prio = self._task_prio(waiting)
                self._push_ready(w_node, prio, waiting)

        kind = task[0]
        if kind == "panel":
            k = task[1]
            self.panels_done += 1
            for i in self.updates_of[k]:
                self._push_ready(node, float(self.upd_prio[i]), ("update", i))
        elif kind == "update":
            i = task[1]
            t = int(self.tgt[i])
            if self.is_local[i]:
                self._panel_contribution(t)
            elif self.fanin:
                key = (node, t)
                entry = self.buffers[key]
                entry[0] -= 1
                if entry[0] == 0:
                    self._send(node, int(self.owner[t]), t, entry[1])
            else:
                self._send(node, int(self.owner[t]), t,
                           float(self.contrib_bytes[i]))
        else:  # acc
            self._panel_contribution(int(task[2]))
        self._kick(node)

    def _task_node(self, task: tuple) -> int:
        if task[0] == "update":
            return int(self.owner[self.src[task[1]]])
        if task[0] == "acc":
            return int(self.owner[task[2]])
        return int(self.owner[task[1]])

    def _task_prio(self, task: tuple) -> float:
        if task[0] == "update":
            return float(self.upd_prio[task[1]])
        if task[0] == "acc":
            return float(self.panel_prio[task[2]])
        return float(self.panel_prio[task[1]])

    def _panel_contribution(self, t: int) -> None:
        self.panel_deps[t] -= 1
        if self.panel_deps[t] == 0:
            node = int(self.owner[t])
            self._push_ready(node, float(self.panel_prio[t]), ("panel", t))

    def _send(self, a: int, b: int, target: int, nbytes: float) -> None:
        start = max(self.time, self.send_free[a])
        wire = self.cluster.transfer_time(nbytes)
        if self._linkdeg:
            # A degraded link divides the sender NIC's bandwidth; the
            # per-message latency is unaffected.
            deg = window_factor(self._linkdeg.get(a), start)
            if deg > 1.0:
                wire = self.cluster.net_latency_s + deg * nbytes / (
                    self.cluster.net_gbps * 1e9)
        if self.faults is not None:
            attempt = 1
            while self.faults.transfer_fails(b, target, start):
                # A failed wire attempt occupies the NIC for at most the
                # per-attempt timeout, then backs off exponentially.
                cost = min(wire, self.recovery.transfer_timeout_s)
                self.n_faults += 1
                self.bytes_retransferred += nbytes
                if self.trace is not None:
                    self.trace.record_fault(
                        "transfer-fail", -1, target, f"net{a}->{b}",
                        start, start + cost, attempt, nbytes,
                    )
                if attempt > self.recovery.max_retries:
                    raise UnrecoverableError(
                        f"message for panel {target} on net{a}->{b} failed "
                        f"{attempt} attempt(s); retry budget "
                        f"max_retries={self.recovery.max_retries} exhausted"
                    )
                delay = self._backoff(attempt - 1)
                if self.trace is not None:
                    self.trace.record_recovery(
                        "retry-transfer", -1, target, f"net{a}->{b}",
                        start + cost, attempt, delay,
                    )
                start = start + cost + delay
                attempt += 1
        self.send_free[a] = start + wire
        arrival = max(start + wire, self.recv_free[b])
        self.recv_free[b] = arrival
        self.n_messages += 1
        self.bytes_on_wire += nbytes
        if self.trace is not None:
            self.trace.record_transfer(target, f"net{a}->{b}", start, arrival)
        self._schedule(arrival, self._arrive, a, b, target, nbytes)

    def _arrive(self, a: int, b: int, target: int, nbytes: float) -> None:
        if self.faults is not None and not self.node_up[b]:
            # The destination is down: the message is lost and must be
            # retransmitted once the node is back (the runtime knows the
            # restart delay, so the resend is timed to land after it).
            key = ("msg", a, b, target)
            att = self.attempts.get(key, 0) + 1
            self.attempts[key] = att
            self.n_faults += 1
            self.bytes_retransferred += nbytes
            if self.trace is not None:
                self.trace.record_fault(
                    "message-loss", -1, target, f"net{a}->{b}",
                    self.time, self.time, att, nbytes,
                )
            if att > self.recovery.max_retries:
                raise UnrecoverableError(
                    f"message for panel {target} to node {b} lost "
                    f"{att} time(s); retry budget "
                    f"max_retries={self.recovery.max_retries} exhausted"
                )
            retry = max(self.time + self._backoff(att - 1),
                        self.node_restore_at[b])
            if self.trace is not None:
                self.trace.record_recovery(
                    "resend", -1, target, f"net{a}->{b}", self.time, att,
                    retry - self.time,
                )
            self._schedule(retry, self._send, a, b, target, nbytes)
            return
        self._push_ready(
            b, float(self.panel_prio[target]), ("acc", a, target, nbytes)
        )

    # ------------------------------------------------------------------
    def run(self) -> DistributedResult:
        for k in np.flatnonzero(self.panel_deps == 0):
            self._push_ready(
                int(self.owner[k]), float(self.panel_prio[k]),
                ("panel", int(k)),
            )
        while self._heap:
            when, _, fn, args = heapq.heappop(self._heap)
            if (self.panels_done == self.symbol.n_cblk
                    and fn == self._limp_onset):
                continue  # a limp beginning after completion is moot
            self.time = when
            fn(*args)
        if self.panels_done != self.symbol.n_cblk:
            raise RuntimeError(
                f"distributed simulation stalled: "
                f"{self.panels_done}/{self.symbol.n_cblk} panels"
            )
        if self.trace is not None:
            # D8xx provenance: the run's single RNG and its consumption.
            self.trace.meta["rng"] = (
                {"seed": self.faults.seed, "draws": self.faults.n_draws}
                if self.faults is not None else None
            )
        return DistributedResult(
            cluster=self.cluster,
            fanin=self.fanin,
            makespan=self.time,
            flops=self.total_flops,
            n_messages=self.n_messages,
            bytes_on_wire=self.bytes_on_wire,
            node_busy=self.node_busy,
            trace=self.trace,
            n_faults=self.n_faults,
            n_reexecuted=self.n_reexecuted,
            bytes_retransferred=self.bytes_retransferred,
            n_health_transitions=(
                self.health.n_transitions if self.health is not None else 0
            ),
        )


def simulate_distributed(
    symbol: SymbolMatrix,
    owner: np.ndarray,
    cluster: ClusterSpec,
    *,
    factotype: str = "llt",
    dtype=np.float64,
    fanin: bool = True,
    cpu_model: CpuPerfModel | None = None,
    task_overhead_s: float = 1e-6,
    collect_trace: bool = False,
    faults: FaultModel | None = None,
    recovery: RecoveryPolicy | None = None,
    health: HealthPolicy | None = None,
) -> DistributedResult:
    """Simulate the distributed factorization of ``symbol``.

    ``owner`` maps each cblk to a node (see
    :func:`repro.distributed.mapping.map_cblks`); ``fanin`` selects the
    accumulated-buffer communication scheme vs. per-update messages.
    ``faults`` arms the resilience layer (node failures, lost messages,
    task faults, and the persistent ``limplock`` / ``degraded-link``
    conditions); with ``faults=None`` the run is bit-identical to a
    build without it.

    ``health`` arms per-node health monitoring: an EWMA detector over
    task durations drives each node's state machine, and dispatch to a
    degraded node is backpressured (at most
    ``health.backpressure_limit`` concurrent tasks).  Tasks are
    owner-bound here, so quarantine and hedging are forced off — see
    the :class:`~repro.resilience.HealthPolicy` notes.  With
    ``health=None`` the run is bit-identical to a build without
    monitoring.
    """
    sim = _DistSim(
        symbol,
        owner,
        cluster,
        factotype=factotype,
        dtype=dtype,
        fanin=fanin,
        cpu_model=cpu_model,
        task_overhead_s=task_overhead_s,
        collect_trace=collect_trace,
        faults=faults,
        recovery=recovery,
        health=health,
    )
    return sim.run()
