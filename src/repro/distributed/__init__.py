"""Distributed-memory extension (the paper's §VI future work).

PaStiX is MPI+threads; the paper's runtime port targets single
heterogeneous nodes and names the distributed extension as future work,
specifically the **fan-in** communication scheme: "when a supernode
updates another non-local supernode, the update blocks are stored in a
local extra-memory space … by locally accumulating the updates until the
last updates to the supernode are available, we trade bandwidth for
latency".

This package builds that extension on the simulator substrate:

* :mod:`repro.distributed.mapping` — cblk → node mappings (proportional
  subtree mapping, block, cyclic);
* :mod:`repro.distributed.cluster` — cluster specifications (nodes ×
  cores + an interconnect);
* :mod:`repro.distributed.simulator` — a discrete-event simulation of
  the distributed factorization with either per-update messages
  (fan-out) or fan-in accumulation, reporting makespan, message counts,
  and bytes on the wire.
"""

from repro.distributed.cluster import ClusterSpec
from repro.distributed.mapping import map_cblks, subtree_loads
from repro.distributed.simulator import (
    simulate_distributed,
    DistributedResult,
)

__all__ = [
    "ClusterSpec",
    "map_cblks",
    "subtree_loads",
    "simulate_distributed",
    "DistributedResult",
]
