"""cblk → node mappings.

The quality of a distributed supernodal factorization hinges on the data
mapping: PaStiX uses *proportional subtree mapping* — the supernode tree
is walked from the root, each subtree receiving a set of nodes sized
proportionally to its workload; a subtree owned by a single node keeps
all its panels local (zero communication inside), while the panels above
the "fork points" are distributed across their subtree's node set.
Block and cyclic mappings are included as baselines.
"""

from __future__ import annotations

import numpy as np

from repro.dag.builder import update_couples
from repro.kernels.cost import flops_panel, flops_update
from repro.symbolic.structures import SymbolMatrix

__all__ = ["subtree_loads", "map_cblks"]


def _snode_tree(symbol: SymbolMatrix) -> np.ndarray:
    """Parent of each cblk in the supernode tree (first facing cblk)."""
    K = symbol.n_cblk
    src, tgt, _, _ = update_couples(symbol)
    parent = np.full(K, -1, dtype=np.int64)
    for i in range(src.size - 1, -1, -1):
        parent[src[i]] = tgt[i]
    return parent


def subtree_loads(symbol: SymbolMatrix, factotype: str = "llt") -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-cblk own work, subtree work, and the supernode-tree parents."""
    K = symbol.n_cblk
    widths = np.diff(symbol.cblk_ptr).astype(np.int64)
    src, tgt, ms, ns = update_couples(symbol)
    own = np.array(
        [
            flops_panel(int(widths[k]), symbol.cblk_below(k), factotype)
            for k in range(K)
        ]
    )
    for i in range(src.size):
        own[src[i]] += flops_update(
            int(ms[i]), int(ns[i]), int(widths[src[i]]), factotype
        )
    parent = _snode_tree(symbol)
    subtree = own.copy()
    for k in range(K):
        if parent[k] >= 0:
            subtree[parent[k]] += subtree[k]
    return own, subtree, parent


def map_cblks(
    symbol: SymbolMatrix,
    n_nodes: int,
    *,
    strategy: str = "subtree",
    factotype: str = "llt",
) -> np.ndarray:
    """Owner node of every cblk.

    ``"subtree"`` — proportional subtree mapping (default);
    ``"block"``  — contiguous column ranges;
    ``"cyclic"`` — round-robin (a communication worst case).
    """
    K = symbol.n_cblk
    if n_nodes == 1:
        return np.zeros(K, dtype=np.int64)
    if strategy == "cyclic":
        return (np.arange(K, dtype=np.int64)) % n_nodes
    if strategy == "block":
        # Split columns (not cblks) evenly so loads roughly balance.
        bounds = np.linspace(0, symbol.n, n_nodes + 1)
        mids = (symbol.cblk_ptr[:-1] + symbol.cblk_ptr[1:]) / 2.0
        return np.clip(
            np.searchsorted(bounds, mids, side="right") - 1, 0, n_nodes - 1
        ).astype(np.int64)
    if strategy != "subtree":
        raise ValueError(f"unknown mapping strategy {strategy!r}")

    own, subtree, parent = subtree_loads(symbol, factotype)
    children: list[list[int]] = [[] for _ in range(K)]
    roots: list[int] = []
    for k in range(K):
        if parent[k] >= 0:
            children[parent[k]].append(k)
        else:
            roots.append(k)

    owner = np.full(K, -1, dtype=np.int64)
    # Work queue of (cblk, node_lo, node_hi): the subtree at cblk owns
    # node range [lo, hi).
    stack: list[tuple[int, int, int]] = [(r, 0, n_nodes) for r in roots]
    rr = 0
    while stack:
        k, lo, hi = stack.pop()
        span = hi - lo
        if span <= 1:
            # Whole subtree on one node: mark and skip recursion (all
            # descendants inherit it below).
            owner[k] = lo
            for c in children[k]:
                stack.append((c, lo, hi))
            continue
        # Panels above fork points are spread over their node set
        # round-robin (they are the top, wide panels).
        owner[k] = lo + (rr % span)
        rr += 1
        # Distribute node sub-ranges to children proportionally to load.
        kids = sorted(children[k], key=lambda c: -subtree[c])
        total = sum(subtree[c] for c in kids) or 1.0
        cursor = float(lo)
        for i, c in enumerate(kids):
            share = span * subtree[c] / total
            c_lo = int(round(cursor))
            cursor += share
            c_hi = int(round(cursor)) if i < len(kids) - 1 else hi
            c_hi = max(c_hi, c_lo + 1)
            c_hi = min(c_hi, hi)
            c_lo = min(c_lo, c_hi - 1)
            stack.append((c, c_lo, c_hi))
    assert owner.min() >= 0
    return owner
