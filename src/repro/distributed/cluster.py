"""Cluster specification for the distributed simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.model import CpuSpec

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of multicore nodes.

    The interconnect is modelled as one full-duplex NIC per node
    (serialized sends, serialized receives) with ``net_latency_s`` per
    message and ``net_gbps`` bandwidth — an InfiniBand-class network of
    the paper's era.  GPUs inside nodes are out of scope here (the
    single-node simulator covers them); the distributed layer isolates
    the communication-scheme question.
    """

    n_nodes: int = 4
    cores_per_node: int = 12
    cpu: CpuSpec = field(default_factory=CpuSpec)
    net_gbps: float = 3.0
    net_latency_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.cores_per_node < 1:
            raise ValueError("need at least one core per node")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    def transfer_time(self, nbytes: float) -> float:
        """One message of ``nbytes`` on the wire (latency + bandwidth)."""
        return self.net_latency_s + nbytes / (self.net_gbps * 1e9)
