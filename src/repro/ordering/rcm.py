"""Reverse Cuthill–McKee ordering (bandwidth reduction)."""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.bfs import bfs_levels, pseudo_peripheral_vertex
from repro.ordering.perm import Permutation

__all__ = ["reverse_cuthill_mckee"]


def reverse_cuthill_mckee(graph: Graph) -> Permutation:
    """RCM ordering of ``graph``.

    Components are processed in index order; within a component, vertices
    are visited in BFS order from a pseudo-peripheral vertex, neighbours
    expanded in ascending-degree order, and the final sequence is
    reversed.  Returned as scatter-form :class:`Permutation`.
    """
    n = graph.n
    deg = graph.degrees()
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    xadj, adjncy = graph.xadj, graph.adjncy

    for comp_seed in range(n):
        if visited[comp_seed]:
            continue
        # Restrict the pseudo-peripheral search to this component via BFS.
        comp_levels = bfs_levels(graph, comp_seed)
        comp = np.flatnonzero((comp_levels >= 0) & ~visited)
        sub, mapping = graph.subgraph(comp)
        start_local, _ = pseudo_peripheral_vertex(sub, 0)
        start = int(mapping[start_local])

        queue = [start]
        visited[start] = True
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            order.append(v)
            nbrs = adjncy[xadj[v]: xadj[v + 1]]
            fresh = nbrs[~visited[nbrs]]
            if fresh.size:
                fresh = fresh[np.argsort(deg[fresh], kind="stable")]
                visited[fresh] = True
                queue.extend(int(u) for u in fresh)

    iperm = np.asarray(order[::-1], dtype=np.int64)
    return Permutation.from_iperm(iperm)
