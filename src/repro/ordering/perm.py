"""Permutation objects.

Two equivalent encodings exist for a permutation and confusing them is the
classic ordering bug, so both live behind one type:

* ``perm[old] = new`` — scatter convention (where does row ``old`` go);
* ``iperm[new] = old`` — gather convention (which row lands at ``new``).

:class:`Permutation` stores the scatter form and derives the gather form
on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Permutation"]


@dataclass(frozen=True)
class Permutation:
    """A permutation of ``n`` indices, stored as ``perm[old] = new``."""

    perm: np.ndarray

    def __post_init__(self) -> None:
        p = np.asarray(self.perm, dtype=np.int64)
        object.__setattr__(self, "perm", p)
        n = p.size
        seen = np.zeros(n, dtype=bool)
        if n and (p.min() < 0 or p.max() >= n):
            raise ValueError("permutation values out of range")
        seen[p] = True
        if not seen.all():
            raise ValueError("not a permutation (duplicate targets)")

    @property
    def n(self) -> int:
        return int(self.perm.size)

    @property
    def iperm(self) -> np.ndarray:
        """Gather form: ``iperm[new] = old``."""
        inv = np.empty_like(self.perm)
        inv[self.perm] = np.arange(self.n, dtype=np.int64)
        return inv

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        return cls(np.arange(n, dtype=np.int64))

    @classmethod
    def from_iperm(cls, iperm: np.ndarray) -> "Permutation":
        """Build from gather form (new → old)."""
        iperm = np.asarray(iperm, dtype=np.int64)
        perm = np.empty_like(iperm)
        perm[iperm] = np.arange(iperm.size, dtype=np.int64)
        return cls(perm)

    @classmethod
    def random(cls, n: int, seed: int = 0) -> "Permutation":
        rng = np.random.default_rng(seed)
        return cls(rng.permutation(n).astype(np.int64))

    def inverse(self) -> "Permutation":
        return Permutation(self.iperm)

    def compose(self, other: "Permutation") -> "Permutation":
        """Return the permutation applying ``self`` then ``other``.

        ``(self @ other).perm[i] == other.perm[self.perm[i]]``.
        """
        if other.n != self.n:
            raise ValueError("size mismatch")
        return Permutation(other.perm[self.perm])

    def __matmul__(self, other: "Permutation") -> "Permutation":
        return self.compose(other)

    def apply_to_vector(self, x: np.ndarray) -> np.ndarray:
        """Permute a vector: result[perm[i]] = x[i] (i.e. ``P x``)."""
        out = np.empty_like(np.asarray(x))
        out[self.perm] = x
        return out

    def undo_on_vector(self, y: np.ndarray) -> np.ndarray:
        """Inverse action: result[i] = y[perm[i]] (i.e. ``P^T y``)."""
        return np.asarray(y)[self.perm]

    def __eq__(self, other) -> bool:
        return isinstance(other, Permutation) and np.array_equal(
            self.perm, other.perm
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Permutation(n={self.n})"
