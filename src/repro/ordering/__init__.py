"""Fill-reducing orderings.

The analysis phase of the solver permutes the matrix with a fill-reducing
ordering before symbolic factorization.  Nested dissection is the paper's
ordering (PaStiX uses Scotch); minimum degree and reverse Cuthill–McKee
are provided as alternatives for leaves, small problems, and ablations.
"""

from repro.ordering.perm import Permutation
from repro.ordering.rcm import reverse_cuthill_mckee
from repro.ordering.mindeg import minimum_degree
from repro.ordering.nested_dissection import (
    nested_dissection,
    NestedDissectionOptions,
)

__all__ = [
    "Permutation",
    "reverse_cuthill_mckee",
    "minimum_degree",
    "nested_dissection",
    "NestedDissectionOptions",
]
