"""Minimum-degree ordering with element absorption.

A quotient-graph minimum-degree: eliminated vertices become *elements*;
the reachable set of a vertex is its remaining plain neighbours plus the
union of the variables of its adjacent elements.  Adjacent elements are
absorbed when a new element is formed, which keeps element lists shallow.

This is the exact-external-degree variant (no approximation, no
supervariable detection): asymptotically slower than AMD but simple and
correct.  It is used for nested-dissection leaves (a few hundred vertices)
and as a standalone ordering on small matrices; both fit its O(n·d²)
envelope comfortably.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.adjacency import Graph
from repro.ordering.perm import Permutation

__all__ = ["minimum_degree"]


def minimum_degree(graph: Graph, *, tie_break: str = "index") -> Permutation:
    """Minimum-degree ordering of ``graph`` (scatter-form permutation).

    ``tie_break`` is ``"index"`` (deterministic, lowest id first) —
    kept as a parameter so ablations can plug alternatives in.
    """
    if tie_break != "index":
        raise ValueError("only 'index' tie-breaking is implemented")
    n = graph.n
    # Plain (uneliminated) neighbour sets, and per-vertex element lists.
    nbr: list[set[int]] = [
        set(graph.neighbors(v).tolist()) for v in range(n)
    ]
    elems: list[set[int]] = [set() for _ in range(n)]
    # element id -> variable set (element ids are the eliminated vertices)
    elem_vars: dict[int, set[int]] = {}
    eliminated = np.zeros(n, dtype=bool)

    def reach(v: int) -> set[int]:
        r = set(nbr[v])
        for e in sorted(elems[v]):
            r |= elem_vars[e]
        r.discard(v)
        return r

    heap: list[tuple[int, int]] = [(len(nbr[v]), v) for v in range(n)]
    heapq.heapify(heap)
    degree = [len(nbr[v]) for v in range(n)]

    iperm = np.empty(n, dtype=np.int64)
    for k in range(n):
        # Pop until a live, up-to-date entry surfaces (lazy deletion).
        while True:
            d, v = heapq.heappop(heap)
            if not eliminated[v] and d == degree[v]:
                break
        eliminated[v] = True
        iperm[k] = v

        r = reach(v)
        # Absorb v's adjacent elements into the new element v.
        absorbed = elems[v]
        elem_vars[v] = r
        for e in absorbed:
            del elem_vars[e]
        for u in sorted(r):
            nbr[u].discard(v)
            # u's plain neighbours inside the new element become redundant.
            nbr[u] -= r
            elems[u] -= absorbed
            elems[u].add(v)
            degree[u] = len(reach(u))
            heapq.heappush(heap, (degree[u], u))
        nbr[v].clear()
        elems[v] = set()

    return Permutation.from_iperm(iperm)
