"""Nested-dissection ordering.

The top of the analysis pipeline.  Recursively: find a small balanced
vertex separator, order the two halves first and the separator last, and
recurse into the halves.  Separator vertices ordered last become the large
supernodes at the top of the elimination tree — exactly the blocks the
paper offloads to GPUs.

PaStiX delegates this to Scotch; here it is built on
:mod:`repro.graph`.  Two separator engines are available:

* ``"levelset"`` (default) — BFS level-set separator, cheap and robust;
* ``"multilevel"`` — multilevel edge bisection + vertex cover, better
  separators at higher cost (used in the ordering-quality ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.bfs import bfs_levels
from repro.graph.partition import multilevel_bisection
from repro.graph.separator import level_set_separator, separator_from_edge_cut
from repro.ordering.mindeg import minimum_degree
from repro.ordering.perm import Permutation
from repro.sparse.csc import SparseMatrixCSC

__all__ = ["nested_dissection", "NestedDissectionOptions"]


@dataclass(frozen=True)
class NestedDissectionOptions:
    """Tuning knobs for :func:`nested_dissection`.

    Attributes
    ----------
    leaf_size:
        Subgraphs at or below this size stop recursing and are ordered
        with ``leaf_ordering``.
    leaf_ordering:
        ``"mindeg"`` (default), ``"natural"`` or ``"rcm"``.
    separator:
        ``"levelset"`` or ``"multilevel"``.
    seed:
        Seed for the multilevel engine's randomised matching.
    """

    leaf_size: int = 96
    leaf_ordering: str = "mindeg"
    separator: str = "levelset"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.leaf_ordering not in ("mindeg", "natural", "rcm"):
            raise ValueError(f"unknown leaf ordering {self.leaf_ordering!r}")
        if self.separator not in ("levelset", "multilevel"):
            raise ValueError(f"unknown separator engine {self.separator!r}")


def _order_leaf(sub: Graph, opts: NestedDissectionOptions) -> np.ndarray:
    """Local ordering of a leaf subgraph; returns local iperm (new→old)."""
    if opts.leaf_ordering == "natural" or sub.n <= 2:
        return np.arange(sub.n, dtype=np.int64)
    if opts.leaf_ordering == "rcm":
        from repro.ordering.rcm import reverse_cuthill_mckee

        return reverse_cuthill_mckee(sub).iperm
    return minimum_degree(sub).iperm


def _split_components(sub: Graph, mapping: np.ndarray) -> list[np.ndarray]:
    """Split a subgraph's vertices into connected components (original ids)."""
    comp = np.full(sub.n, -1, dtype=np.int64)
    cid = 0
    while True:
        rest = np.flatnonzero(comp < 0)
        if rest.size == 0:
            break
        levels = bfs_levels(sub, int(rest[0]))
        comp[levels >= 0] = cid
        cid += 1
    return [mapping[comp == c] for c in range(cid)]


def nested_dissection(
    source: Graph | SparseMatrixCSC,
    options: NestedDissectionOptions | None = None,
) -> Permutation:
    """Compute a nested-dissection permutation (scatter form).

    Accepts a :class:`Graph` or a square sparse matrix (whose symmetrised
    pattern is used).  The returned permutation sends each region's
    interior before its separator, recursively, so separators stack at the
    end of the ordering.
    """
    opts = options or NestedDissectionOptions()
    graph = (
        source
        if isinstance(source, Graph)
        else Graph.from_matrix(source)
    )
    n = graph.n
    iperm = np.empty(n, dtype=np.int64)

    # Work stack of (original-vertex-ids, lo, hi): fill iperm[lo:hi].
    stack: list[tuple[np.ndarray, int, int]] = [
        (np.arange(n, dtype=np.int64), 0, n)
    ]
    while stack:
        vertices, lo, hi = stack.pop()
        size = vertices.size
        assert hi - lo == size
        if size == 0:
            continue
        sub, mapping = graph.subgraph(vertices)

        # Disconnected regions: dissect each component independently.
        comps = _split_components(sub, mapping)
        if len(comps) > 1:
            pos = lo
            for comp_vertices in comps:
                stack.append((comp_vertices, pos, pos + comp_vertices.size))
                pos += comp_vertices.size
            continue

        if size <= opts.leaf_size:
            local = _order_leaf(sub, opts)
            iperm[lo:hi] = mapping[local]
            continue

        if opts.separator == "multilevel":
            part = multilevel_bisection(sub, seed=opts.seed)
            sep, pa, pb = separator_from_edge_cut(sub, part)
        else:
            sep, pa, pb = level_set_separator(sub)

        if sep.size == 0 or pa.size == 0 or pb.size == 0:
            # Separation failed (dense or tiny graph): order locally.
            local = _order_leaf(sub, opts)
            iperm[lo:hi] = mapping[local]
            continue

        # Layout: [A | B | separator]; separator gets the last positions.
        sep_lo = hi - sep.size
        iperm[sep_lo:hi] = mapping[sep]
        stack.append((mapping[pa], lo, lo + pa.size))
        stack.append((mapping[pb], lo + pa.size, sep_lo))

    return Permutation.from_iperm(iperm)
