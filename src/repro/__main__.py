"""Command-line interface: solve a MatrixMarket system or inspect a
collection analogue.

Examples
--------
Solve ``A x = b`` with b read from a file (or all-ones)::

    python -m repro solve matrix.mtx --factotype llt --rhs b.mtx

Analyze only (ordering + symbolic statistics)::

    python -m repro analyze matrix.mtx --split 96

Simulate the factorization on a Mirage-like node::

    python -m repro simulate --collection Serena --policy parsec \
        --cores 12 --gpus 3 --streams 3

Run the static-analysis passes (DAG hazard coverage, simulated-schedule
feasibility, project lint)::

    python -m repro verify --matrix lap2d --size 30
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load_matrix(args):
    if args.collection:
        from repro.sparse.collection import load_matrix

        return load_matrix(args.collection, scale=args.scale)
    if not args.matrix:
        raise SystemExit("either a matrix file or --collection is required")
    from repro.sparse.io import read_matrix_market

    return read_matrix_market(args.matrix)


def _symbolic_options(args):
    from repro.symbolic import SymbolicOptions

    return SymbolicOptions(
        ordering=args.ordering,
        amalgamation_ratio=args.amalgamation,
        split_max_width=args.split,
    )


def _add_matrix_args(p: argparse.ArgumentParser, positional: bool) -> None:
    if positional:
        p.add_argument("matrix", nargs="?", help="MatrixMarket file")
    p.add_argument("--collection", help="use a Table-I analogue by name")
    p.add_argument("--scale", type=float, default=1.0,
                   help="collection analogue scale")
    p.add_argument("--ordering", default="nd", choices=["nd", "natural"])
    p.add_argument("--amalgamation", type=float, default=0.12,
                   help="amalgamation fill ratio (default 0.12)")
    p.add_argument("--split", type=int, default=128,
                   help="panel split width (default 128)")


def cmd_analyze(args) -> int:
    from repro.dag import build_dag, dag_summary
    from repro.kernels.cost import flops_total
    from repro.symbolic import analyze

    matrix = _load_matrix(args)
    res = analyze(matrix, _symbolic_options(args))
    sym = res.symbol
    dag = build_dag(sym, args.factotype)
    s = dag_summary(dag)
    print(f"n            : {matrix.n_rows}")
    print(f"nnz(A)       : {matrix.nnz}")
    print(f"nnz(L)       : {sym.nnz(factotype=args.factotype)}")
    print(f"panels       : {sym.n_cblk}")
    print(f"blocks       : {sym.n_blok}")
    print(f"flops        : {flops_total(sym, args.factotype, matrix.dtype) / 1e9:.3f} GFlop")
    print(f"tasks (2D)   : {s.n_tasks} ({s.n_panel} panel + {s.n_update} update)")
    print(f"parallelism  : {s.avg_parallelism:.2f} (flop-weighted)")
    return 0


def cmd_solve(args) -> int:
    from repro import SolverOptions, SparseSolver
    from repro.sparse.io import read_matrix_market

    matrix = _load_matrix(args)
    solver = SparseSolver(
        matrix,
        SolverOptions(
            factotype=args.factotype,
            symbolic=_symbolic_options(args),
            runtime="threaded" if args.workers > 1 else "sequential",
            n_workers=args.workers,
        ),
    )
    if args.rhs:
        rhs_mat = read_matrix_market(args.rhs)
        b = rhs_mat.to_dense().ravel()[: matrix.n_rows]
    else:
        b = np.ones(matrix.n_rows, dtype=matrix.dtype)
    info = solver.factorize()
    x = solver.solve(b)
    print(f"factorized in {info.elapsed:.3f} s "
          f"({info.flops / 1e9:.3f} GFlop, {info.gflops:.2f} GFlop/s)")
    print(f"residual: {solver.residual_norm(x, b):.3e}")
    if args.output:
        np.savetxt(args.output, np.column_stack([x.real, x.imag])
                   if np.iscomplexobj(x) else x)
        print(f"solution written to {args.output}")
    return 0


def cmd_simulate(args) -> int:
    from repro.dag import build_dag
    from repro.machine import mirage, simulate
    from repro.runtime import get_policy
    from repro.symbolic import analyze

    matrix = _load_matrix(args)
    res = analyze(matrix, _symbolic_options(args))
    policy = get_policy(args.policy)
    dag = build_dag(
        res.symbol,
        args.factotype,
        granularity=policy.traits.granularity,
        dtype=matrix.dtype,
        recompute_ld=policy.traits.recompute_ld,
    )
    machine = mirage(n_cores=args.cores, n_gpus=args.gpus,
                     streams_per_gpu=args.streams if args.gpus else 1)
    r = simulate(dag, machine, policy, dtype=matrix.dtype,
                 collect_trace=args.gantt)
    print(f"policy       : {args.policy}")
    print(f"machine      : {args.cores} cores, {args.gpus} GPUs "
          f"({args.streams} streams)")
    print(f"makespan     : {r.makespan * 1e3:.2f} ms")
    print(f"performance  : {r.gflops:.2f} GFlop/s")
    if args.gpus:
        print(f"PCIe traffic : {r.bytes_h2d / 1e6:.1f} MB h2d, "
              f"{r.bytes_d2h / 1e6:.1f} MB d2h")
    if args.gantt:
        print(r.trace.gantt(width=90))
    return 0


def cmd_verify(args) -> int:
    from repro.verify.cli import run_verify

    return run_verify(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="ordering + symbolic statistics")
    _add_matrix_args(p, positional=True)
    p.add_argument("--factotype", default="llt", choices=["llt", "ldlt", "lu"])
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("solve", help="factorize and solve")
    _add_matrix_args(p, positional=True)
    p.add_argument("--factotype", default="llt", choices=["llt", "ldlt", "lu"])
    p.add_argument("--rhs", help="right-hand side MatrixMarket file")
    p.add_argument("--workers", type=int, default=1,
                   help="threads for the factorization (default 1)")
    p.add_argument("--output", help="write the solution vector here")
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("simulate", help="simulate on a Mirage-like node")
    _add_matrix_args(p, positional=True)
    p.add_argument("--factotype", default="llt", choices=["llt", "ldlt", "lu"])
    p.add_argument("--policy", default="parsec",
                   choices=["native", "starpu", "parsec"])
    p.add_argument("--cores", type=int, default=12)
    p.add_argument("--gpus", type=int, default=0)
    p.add_argument("--streams", type=int, default=1)
    p.add_argument("--gantt", action="store_true",
                   help="print an ASCII Gantt chart")
    p.set_defaults(func=cmd_simulate)

    from repro.verify.cli import add_verify_arguments

    p = sub.add_parser(
        "verify",
        help="static analysis: DAG hazards, schedule feasibility, lint",
    )
    add_verify_arguments(p)
    p.set_defaults(func=cmd_verify)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
