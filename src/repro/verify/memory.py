"""Memory & data-movement auditor (M4xx): replay a trace's data events.

The simulator's device memory is a model the rest of the repo *trusts* —
the Figure 2/4 GFlop/s numbers assume the transfer volumes and residency
decisions it reports are coherent.  This pass re-checks that trust from
the :class:`~repro.runtime.tracing.ExecutionTrace` alone: it replays the
``data_events`` stream (h2d/d2h/evict) against the task events and the
DAG, maintaining its own per-GPU residency ledger, independent of the
simulator internals that produced the trace.

Checks:

* **M401 residency at start** — every GPU task's source and facing
  panels hold a valid device copy when the kernel starts;
* **M402 capacity** — per-GPU reserved bytes (copies in flight or
  resident) never exceed :class:`~repro.machine.model.GpuSpec` memory;
* **M403 redundant traffic** — no panel is re-transferred to a device
  that still holds a valid copy of it (reported with the bytes wasted);
* **M404 traffic lower bound** — observed host→device traffic is at
  least the statically derived per-panel lower bound: every distinct
  panel a GPU task touches must cross the PCIe link at least once;
* **M405 size mismatch** — a transfer's byte count disagrees with the
  symbolic per-panel storage (:func:`repro.kernels.cost.panel_bytes`);
  warning severity, since inflated volumes are modelling drift rather
  than a schedule-correctness bug.

The replay distinguishes *reserved* bytes (device memory allocated to a
panel: counted from transfer initiation, exactly when the simulator's
LRU reserves space) from *valid* copies (usable data: counted from
transfer completion).  Writes are derived from the DAG — a task writes
its ``target`` panel, and non-UPDATE tasks also (re)write their own
panel — so the invalidation logic here shares no code with the
simulator's MSI bookkeeping.
"""

from __future__ import annotations

import numpy as np

from repro.dag.tasks import TaskDAG, TaskKind
from repro.kernels.cost import panel_bytes
from repro.machine.model import MachineSpec
from repro.runtime.tracing import ExecutionTrace
from repro.verify.report import Report, WARNING

__all__ = ["verify_memory", "drop_transfer", "overflow_residency"]

# Replay priorities at equal timestamps: transfer completions land
# before evictions, evictions before task starts, task ends before the
# transfers they trigger.  This mirrors the simulator's causal order
# (a kernel only starts once its fetches completed).
_PRI_H2D_END = 0
_PRI_EVICT = 1
_PRI_TASK_START = 2
_PRI_TASK_END = 3
_PRI_XFER_START = 4


def _gpu_of(resource: str) -> int:
    """``"gpu3"`` -> 3; anything else -> -1."""
    if resource.startswith("gpu"):
        try:
            return int(resource[3:])
        except ValueError:
            return -1
    return -1


def verify_memory(
    dag: TaskDAG,
    trace: ExecutionTrace,
    machine: MachineSpec,
    *,
    dtype=np.float64,
    max_reported: int = 50,
    name: str = "memory",
) -> Report:
    """Audit ``trace``'s data movement against ``dag`` and ``machine``."""
    report = Report(name)
    pbytes = panel_bytes(dag.symbol, dtype, dag.factotype)
    limit = float(machine.gpu.memory_bytes)
    n = dag.n_tasks

    # ------------------------------------------------------------------
    # Build the merged replay stream.  Each entry:
    #   (time, priority, payload...)
    # ------------------------------------------------------------------
    stream: list[tuple] = []
    n_h2d = n_d2h = n_evict = 0
    bytes_h2d = bytes_d2h = 0.0
    for ev in trace.data_events:
        if ev.kind == "h2d":
            n_h2d += 1
            bytes_h2d += ev.nbytes
            stream.append((ev.start, _PRI_XFER_START, "h2d0", ev))
            stream.append((ev.end, _PRI_H2D_END, "h2d1", ev))
        elif ev.kind == "d2h":
            n_d2h += 1
            bytes_d2h += ev.nbytes
            # Writebacks copy device->host; device residency unchanged.
            stream.append((ev.start, _PRI_XFER_START, "d2h0", ev))
        elif ev.kind == "evict":
            n_evict += 1
            stream.append((ev.start, _PRI_EVICT, "evict", ev))
        else:
            report.add("M405", f"unknown data-event kind {ev.kind!r} "
                               f"for panel {ev.cblk}")
    for te in trace.events:
        if not 0 <= te.task < n:
            continue  # S207 territory; the schedule pass reports it
        stream.append((te.start, _PRI_TASK_START, "t0", te))
        stream.append((te.end, _PRI_TASK_END, "t1", te))
    stream.sort(key=lambda e: (e[0], e[1]))

    # ------------------------------------------------------------------
    # Replay.
    # ------------------------------------------------------------------
    n_gpus = machine.n_gpus
    reserved: list[dict[int, float]] = [{} for _ in range(n_gpus)]
    reserved_bytes = [0.0] * n_gpus
    peak_bytes = [0.0] * n_gpus
    valid: list[set[int]] = [set() for _ in range(n_gpus)]
    redundant_bytes = 0.0
    n_401 = n_402 = n_403 = n_405 = 0

    def _report(code: str, count: int, msg: str, tasks=()) -> int:
        if count < max_reported:
            report.add(code, msg, tasks=tasks)
        elif count == max_reported:
            report.add(code, f"... further {code} findings suppressed")
        return count + 1

    def _warn(count: int, msg: str) -> int:
        if count < max_reported:
            report.add("M405", msg, severity=WARNING)
        elif count == max_reported:
            report.add("M405", "... further M405 findings suppressed",
                       severity=WARNING)
        return count + 1

    for entry in stream:
        when, _, tag, ev = entry
        if tag in ("h2d0", "d2h0"):
            g = ev.gpu
            if not 0 <= g < n_gpus:
                report.add("M402", f"transfer names unknown gpu{g} "
                                   f"(panel {ev.cblk})")
                continue
            expect = float(pbytes[ev.cblk])
            if abs(ev.nbytes - expect) > 0.5:
                n_405 = _warn(
                    n_405,
                    f"{ev.kind} of panel {ev.cblk} moved "
                    f"{ev.nbytes:.0f} B but the symbol says the panel is "
                    f"{expect:.0f} B",
                )
            if tag == "d2h0":
                continue
            # h2d start: redundant-traffic check, then reserve space.
            if ev.cblk in valid[g]:
                redundant_bytes += ev.nbytes
                n_403 = _report(
                    "M403", n_403,
                    f"redundant transfer: panel {ev.cblk} re-sent to "
                    f"gpu{g} at t={when:.6g} while a valid copy was "
                    f"resident ({ev.nbytes:.0f} B wasted)",
                )
            if ev.cblk not in reserved[g]:
                reserved[g][ev.cblk] = ev.nbytes
                reserved_bytes[g] += ev.nbytes
                if reserved_bytes[g] > peak_bytes[g]:
                    peak_bytes[g] = reserved_bytes[g]
                if reserved_bytes[g] > limit:
                    n_402 = _report(
                        "M402", n_402,
                        f"gpu{g} over capacity at t={when:.6g}: panel "
                        f"{ev.cblk} brings resident bytes to "
                        f"{reserved_bytes[g]:.0f} > {limit:.0f}",
                    )
        elif tag == "h2d1":
            g = ev.gpu
            # Only copies still holding their reservation become valid —
            # a prefetch evicted (or invalidated) mid-flight delivers
            # bytes nobody may read.
            if 0 <= g < n_gpus and ev.cblk in reserved[g]:
                valid[g].add(ev.cblk)
        elif tag == "evict":
            g = ev.gpu
            if not 0 <= g < n_gpus:
                continue
            nb = reserved[g].pop(ev.cblk, None)
            if nb is not None:
                reserved_bytes[g] -= nb
            valid[g].discard(ev.cblk)
        elif tag == "t0":
            g = _gpu_of(ev.resource)
            if g < 0:
                continue
            for cblk, role in (
                (int(dag.cblk[ev.task]), "source"),
                (int(dag.target[ev.task]), "facing"),
            ):
                if g >= n_gpus or cblk not in valid[g]:
                    n_401 = _report(
                        "M401", n_401,
                        f"task {ev.task} started on gpu{g} at "
                        f"t={when:.6g} without a valid device copy of "
                        f"its {role} panel {cblk}",
                        tasks=(int(ev.task),),
                    )
        elif tag == "t1":
            g = _gpu_of(ev.resource)
            kind = TaskKind(int(dag.kind[ev.task]))
            writes = {int(dag.target[ev.task])}
            if kind != TaskKind.UPDATE:
                writes.add(int(dag.cblk[ev.task]))
            if g >= 0:
                # GPU write: this device holds the only valid copy.
                # Stale copies elsewhere lose validity but their bytes
                # stay allocated until evicted (matching real runtimes).
                for cblk in sorted(writes):
                    for i in range(n_gpus):
                        if i != g:
                            valid[i].discard(cblk)
                    if g < n_gpus:
                        valid[g].add(cblk)
            else:
                # CPU write: device copies are invalidated and freed.
                for cblk in sorted(writes):
                    for i in range(n_gpus):
                        valid[i].discard(cblk)
                        nb = reserved[i].pop(cblk, None)
                        if nb is not None:
                            reserved_bytes[i] -= nb

    # ------------------------------------------------------------------
    # M404: static per-panel lower bound on h2d traffic.
    # ------------------------------------------------------------------
    touched: set[int] = set()
    for te in trace.events:
        if _gpu_of(te.resource) >= 0 and 0 <= te.task < n:
            touched.add(int(dag.cblk[te.task]))
            touched.add(int(dag.target[te.task]))
    lower_bound = float(sum(pbytes[c] for c in sorted(touched)))
    if bytes_h2d < lower_bound - 0.5:
        report.add(
            "M404",
            f"observed h2d traffic {bytes_h2d:.0f} B is below the "
            f"symbolic lower bound {lower_bound:.0f} B ({len(touched)} "
            "distinct panels must each cross the link at least once)",
        )

    report.stats["data_events"] = len(trace.data_events)
    report.stats["h2d_transfers"] = n_h2d
    report.stats["d2h_transfers"] = n_d2h
    report.stats["evictions"] = n_evict
    report.stats["bytes_h2d"] = bytes_h2d
    report.stats["bytes_d2h"] = bytes_d2h
    report.stats["h2d_lower_bound"] = lower_bound
    report.stats["redundant_bytes"] = redundant_bytes
    report.stats["peak_gpu_bytes"] = max(peak_bytes, default=0.0)
    return report


# ----------------------------------------------------------------------
# Fault injections (for --inject self-tests)
# ----------------------------------------------------------------------
def drop_transfer(trace: ExecutionTrace, dag: TaskDAG) -> ExecutionTrace:
    """Remove one h2d transfer a later GPU task depends on.

    Picks the first h2d event whose panel is read by a GPU task starting
    at-or-after the transfer completes, and deletes it — M401 must then
    flag that task/panel pair (and usually M404 notices the missing
    bytes too).  Returns a new trace; the input is not modified.
    """
    gpu_events = sorted(
        (te for te in trace.events if _gpu_of(te.resource) >= 0),
        key=lambda te: (te.start, te.end),
    )
    victim = None
    for ev in trace.sorted_data_events():
        if ev.kind != "h2d":
            continue
        # The earliest dependent kernel: it starts after this transfer
        # completes and before any re-transfer could restore validity.
        for te in gpu_events:
            if te.start < ev.end or _gpu_of(te.resource) != ev.gpu:
                continue
            if ev.cblk in (int(dag.cblk[te.task]), int(dag.target[te.task])):
                victim = ev
                break
        if victim is not None:
            break
    if victim is None:
        raise ValueError("trace has no h2d transfer feeding a GPU task; "
                         "run with at least one GPU")
    out = ExecutionTrace(events=list(trace.events))
    for ev in trace.data_events:
        if ev is victim:
            continue
        out.record_data(ev.kind, ev.cblk, ev.gpu, ev.nbytes,
                        ev.start, ev.end, ev.reason)
    return out


def overflow_residency(
    trace: ExecutionTrace, machine: MachineSpec
) -> ExecutionTrace:
    """Inflate one h2d transfer past the device memory size.

    The largest h2d event is rewritten to move 1.25× the GPU's total
    memory, so the replayed reserved-bytes ledger must cross the
    capacity limit the moment the transfer starts — M402 names the
    panel/GPU pair (M405 also warns about the size mismatch).
    """
    first: dict[tuple[int, int], object] = {}
    for ev in trace.sorted_data_events():
        if ev.kind == "h2d":
            first.setdefault((ev.cblk, ev.gpu), ev)
    if not first:
        raise ValueError("trace has no h2d transfers; run with at least "
                         "one GPU")
    # First transfer of its (panel, gpu) pair: a re-transfer would be
    # idempotent in the reserved-bytes ledger and never trip M402.
    victim = max(first.values(), key=lambda ev: (ev.nbytes, -ev.start))
    inflated = 1.25 * float(machine.gpu.memory_bytes)
    out = ExecutionTrace(events=list(trace.events))
    for ev in trace.data_events:
        nbytes = inflated if ev is victim else ev.nbytes
        out.record_data(ev.kind, ev.cblk, ev.gpu, nbytes,
                        ev.start, ev.end, ev.reason)
    return out
