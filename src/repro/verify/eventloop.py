"""Event-loop-discipline linter (RV5xx): static determinism rules for
the discrete-event simulators (AST-based, stdlib only).

The D8xx pass (:mod:`repro.verify.determinism`) convicts replay
divergence from recorded traces; this pass convicts the *source shapes*
that breed it, over the modules that hand-roll event loops —
``machine.simulator``, ``machine.streamsim``, ``distributed.simulator``
and the ``repro.resilience`` fault layer by default.  Five rules,
suppressible like the other lints with ``# noqa: RV5xx`` on the
offending line:

* **RV501 heap push without a tie-breaker** — a ``heapq.heappush``
  whose tuple has no monotonic ``next(<counter>)`` element: two
  simultaneous events then compare by payload (or not at all), so pop
  order depends on push order, hash order, or worse.  The blessed
  shape is ``(key, next(self._seq), payload...)`` with the counter
  from :func:`repro.runtime.seq.monotonic_counter`;
* **RV502 float equality on a simulated clock** — ``==``/``!=``
  against a clock-named value (``time``/``now``/``when``/``clock``/
  ``deadline``): simulated times are sums of float durations, so
  equality is representation-dependent; order comparisons and
  tolerances are fine;
* **RV503 unordered choice feeding the event order** — iteration over
  a ``set``/``frozenset`` (literal, constructor, set-typed name, or an
  element of a set-typed container) without ``sorted()``, or a bare
  ``.pop()`` on one: set order varies with hash seeding, so whichever
  task/core/node it picks diverges between runs;
* **RV504 wall clock or unseeded RNG in a simulation step** — any
  ``time.time``/``perf_counter``/``monotonic``, ``datetime.now``,
  ``random.*`` module call, direct ``np.random.*`` legacy call, or a
  seedless ``default_rng()``: simulated runs must be a pure function
  of their inputs and one seeded RNG;
* **RV505 payload compared before the tie-breaker** — a heap tuple
  whose ``next(...)`` tie-breaker is not element 1 (or that carries a
  ``lambda``): the payload — often a callback — then participates in
  comparisons before ties are broken, and callables compare by
  identity, i.e. by registration order.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional, Sequence

from repro.verify.lint import (
    LintFinding,
    _NOQA_RE,
    _set_container_names,
    _set_typed_names,
)
from repro.verify.report import Report

__all__ = [
    "eventloop_sources",
    "eventloop_paths",
    "eventloop_report",
    "DEFAULT_SCOPE",
]

#: Terminal attribute/variable names treated as simulated-clock values.
_CLOCK_NAMES = {"time", "now", "when", "clock", "deadline"}

#: ``time`` module members that read the host's wall clock.
_WALL_CLOCK_FNS = {"time", "perf_counter", "monotonic", "process_time",
                   "clock_gettime", "time_ns", "perf_counter_ns",
                   "monotonic_ns"}


def _terminal_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` -> ``"c"``; ``name`` -> ``"name"``; else ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_next_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "next")


class _FileLinter(ast.NodeVisitor):
    """Lint one simulator source file against the RV5xx rules."""

    def __init__(self, path: str, source: str,
                 findings: list[LintFinding]) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.findings = findings
        self.set_names: set[str] = set()
        self.set_container_names: set[str] = set()

    def run(self, tree: ast.Module) -> None:
        self.set_names = _set_typed_names(tree)
        self.set_container_names = _set_container_names(tree)
        self.visit(tree)

    # -- plumbing ------------------------------------------------------
    def _suppressed(self, line: int, code: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        m = _NOQA_RE.search(self.lines[line - 1])
        if not m:
            return False
        codes = m.group("codes")
        if codes is None:
            return True
        return code in {c.strip().upper() for c in codes.split(",")}

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if self._suppressed(line, code):
            return
        self.findings.append(
            LintFinding(self.path, line,
                        getattr(node, "col_offset", 0), code, message)
        )

    # -- RV501 / RV505: heap pushes ------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr in ("heappush", "heappushpop")
            and isinstance(f.value, ast.Name)
            and f.value.id == "heapq"
            and len(node.args) >= 2
        ):
            self._check_heap_item(node, node.args[1])
        self._check_wall_clock(node)
        self._check_set_pop(node)
        self.generic_visit(node)

    def _check_heap_item(self, call: ast.Call, item: ast.expr) -> None:
        if not isinstance(item, ast.Tuple):
            self._emit(
                call, "RV501",
                "heap push of a non-tuple item: simultaneous events "
                "need an explicit (key, next(<counter>), ...) shape so "
                "ties have a total, reproducible order",
            )
            return
        next_at = [i for i, el in enumerate(item.elts)
                   if _is_next_call(el)]
        if not next_at:
            self._emit(
                call, "RV501",
                "heap push without a monotonic next(<counter>) "
                "tie-breaker: simultaneous events compare by payload, "
                "so pop order depends on push/hash order "
                "(use repro.runtime.seq.monotonic_counter)",
            )
            return
        if next_at[0] != 1:
            self._emit(
                call, "RV505",
                f"heap tuple's next(...) tie-breaker is element "
                f"{next_at[0]}, not element 1: the payload before it "
                "participates in comparisons before ties are broken",
            )
        for el in item.elts:
            if isinstance(el, ast.Lambda):
                self._emit(
                    el, "RV505",
                    "lambda inside a heap tuple: callables compare by "
                    "identity, i.e. by registration order",
                )

    # -- RV502: float equality on clocks -------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        clockish = [
            operand for operand in [node.left, *node.comparators]
            if _terminal_name(operand) in _CLOCK_NAMES
        ]
        if clockish and any(isinstance(op, (ast.Eq, ast.NotEq))
                            for op in node.ops):
            name = _terminal_name(clockish[0])
            self._emit(
                node, "RV502",
                f"float equality against simulated clock value "
                f"{name!r}: simulated times are float sums; compare "
                "with an order relation or a tolerance",
            )
        self.generic_visit(node)

    # -- RV503: unordered iteration / choice ---------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return True
        if isinstance(node, ast.Subscript):
            # ``self.idle[node]`` where ``idle`` is a container of sets.
            return _terminal_name(node.value) in self.set_container_names
        return _terminal_name(node) in self.set_names

    def _check_iter(self, itr: ast.expr) -> None:
        if self._is_set_expr(itr):
            self._emit(
                itr, "RV503",
                "iteration over an unordered set feeds the event "
                "order: wrap in sorted(...) (or use min/max)",
            )

    def _check_set_pop(self, node: ast.Call) -> None:
        f = node.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr == "pop"
            and not node.args and not node.keywords
            and self._is_set_expr(f.value)
        ):
            self._emit(
                node, "RV503",
                "set.pop() takes a hash-order-dependent element: pick "
                "deterministically (min(...) then discard)",
            )

    # -- RV504: wall clocks and unseeded RNGs --------------------------
    def _check_wall_clock(self, node: ast.Call) -> None:
        f = node.func
        if not isinstance(f, ast.Attribute):
            return
        base = f.value
        if isinstance(base, ast.Name) and base.id == "time" \
                and f.attr in _WALL_CLOCK_FNS:
            self._emit(
                node, "RV504",
                f"time.{f.attr}() inside a simulation step: simulated "
                "runs must not read the host's wall clock",
            )
            return
        if f.attr == "now" and _terminal_name(base) in ("datetime", "date"):
            self._emit(
                node, "RV504",
                "datetime.now() inside a simulation step: simulated "
                "runs must not read the host's wall clock",
            )
            return
        if isinstance(base, ast.Name) and base.id == "random":
            self._emit(
                node, "RV504",
                f"random.{f.attr}() uses the global unseeded RNG: draw "
                "from the run's one seeded FaultModel/scheduler RNG",
            )
            return
        if (
            _terminal_name(base) == "random"
            and isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in ("np", "numpy")
            and f.attr != "default_rng"
        ):
            self._emit(
                node, "RV504",
                f"np.random.{f.attr}() uses the legacy global RNG: "
                "draw from one seeded default_rng(seed)",
            )
            return
        if f.attr == "default_rng" and not node.args and not node.keywords:
            self._emit(
                node, "RV504",
                "default_rng() without a seed: the run is no longer a "
                "function of its inputs",
            )


def eventloop_sources(sources: dict[str, str]) -> list[LintFinding]:
    """Lint a ``{path: source}`` mapping; returns sorted findings."""
    findings: list[LintFinding] = []
    for path, src in sorted(sources.items()):
        try:
            tree = ast.parse(src, filename=path)
        except SyntaxError as exc:
            findings.append(LintFinding(
                path, exc.lineno or 0, exc.offset or 0,
                "RV500", f"syntax error: {exc.msg}",
            ))
            continue
        linter = _FileLinter(path, src, findings)
        linter.run(tree)
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


#: Modules the event-loop lint covers by default: the three hand-rolled
#: discrete-event loops and the fault layer whose RNG they consume.
#: (The threaded runtime legitimately reads wall clocks and is audited
#: by RV4xx/C7xx instead.)
DEFAULT_SCOPE = (
    "src/repro/machine/simulator.py",
    "src/repro/machine/streamsim.py",
    "src/repro/distributed/simulator.py",
    "src/repro/resilience",
)


def _default_paths() -> list[Path]:
    """Resolve :data:`DEFAULT_SCOPE` relative to the installed package
    (works from any CWD, including an installed tree)."""
    import repro

    pkg = Path(repro.__file__).resolve().parent
    return [
        pkg / "machine" / "simulator.py",
        pkg / "machine" / "streamsim.py",
        pkg / "distributed" / "simulator.py",
        pkg / "resilience",
    ]


def eventloop_paths(
    paths: Optional[Sequence[str | Path]] = None,
) -> list[LintFinding]:
    """Lint ``*.py`` files under the given paths (default: the three
    simulator modules plus ``repro.resilience``)."""
    targets = ([Path(p) for p in paths] if paths is not None
               else _default_paths())
    files: list[Path] = []
    for p in targets:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.exists():
            files.append(p)
    sources = {str(f): f.read_text() for f in files}
    return eventloop_sources(sources)


def eventloop_report(
    paths: Optional[Sequence[str | Path]] = None,
) -> Report:
    """Run the RV5xx lint and wrap findings in a :class:`Report`."""
    findings = eventloop_paths(paths)
    report = Report("eventloop")
    report.stats["findings"] = float(len(findings))
    for f in findings:
        report.add(f.code, f.message, location=f.location)
    return report
